// Textcluster: the paper's Yahoo! Answers experiment in miniature.
// Generates a topic-labelled question corpus, runs the paper's pipeline
// (tokenise → per-topic TF-IDF → threshold vocabulary → binary
// word-presence items), then clusters the questions back into topics
// with exact K-Modes and MH-K-Modes 1b1r, reporting purity and timings.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lshcluster"
)

func main() {
	topics := flag.Int("topics", 100, "number of topics")
	perTopic := flag.Int("per-topic", 80, "questions per topic")
	threshold := flag.Float64("threshold", 0.5, "TF-IDF vocabulary threshold")
	flag.Parse()

	corpus, err := lshcluster.GenerateCorpus(lshcluster.CorpusConfig{
		Topics:            *topics,
		QuestionsPerTopic: *perTopic,
		MislabelProb:      0.2, // users sometimes file under the wrong topic
		Seed:              11,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("corpus: %d questions across %d topics\n", len(corpus.Questions), *topics)

	// Per-topic TF-IDF: each topic's questions form one document; words
	// scoring above the threshold enter the vocabulary.
	scorer := lshcluster.NewScorer()
	byTopic := make([][]string, *topics)
	for _, q := range corpus.Questions {
		byTopic[q.Topic] = append(byTopic[q.Topic], q.Tokens...)
	}
	for i, toks := range byTopic {
		scorer.AddTopic(corpus.TopicNames[i], toks)
	}
	vocab, err := scorer.SelectVocabulary(lshcluster.VocabConfig{
		Threshold:        *threshold,
		MaxWordsPerTopic: 10000,
		Stopwords:        lshcluster.DefaultStopwords(),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("vocabulary at threshold %.2f: %d words -> %d binary attributes per item\n",
		*threshold, vocab.Size(), vocab.Size())

	docs := make([]lshcluster.Document, len(corpus.Questions))
	for i, q := range corpus.Questions {
		docs[i] = lshcluster.Document{Tokens: q.Tokens, Label: q.Topic}
	}
	ds, err := lshcluster.BuildBinaryDataset(docs, vocab)
	if err != nil {
		log.Fatal(err)
	}

	for _, cfg := range []struct {
		name string
		lsh  *lshcluster.Params
	}{
		{"MH-K-Modes 1b 1r", &lshcluster.Params{Bands: 1, Rows: 1}},
		{"K-Modes (exact)", nil},
	} {
		start := time.Now()
		res, err := lshcluster.Cluster(ds, lshcluster.Config{K: *topics, Seed: 5, LSH: cfg.lsh})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %d iterations, %v total, purity %.4f\n",
			cfg.name, res.Stats.NumIterations(), time.Since(start).Round(time.Millisecond),
			res.Stats.Purity)
	}
	fmt.Println("\nNote: purity is capped by the injected label noise, mirroring the")
	fmt.Println("paper's observation that user-chosen topics make ground truth imperfect.")
}
