// Streaming: the paper's further-work extension to online clustering.
// Trains a batch MH-K-Modes model on an initial chunk of a synthetic
// workload, then consumes the remainder as a stream: each arriving item
// is assigned through the LSH index in one shot and folded into its
// cluster's mode incrementally. Reports stream-side statistics and the
// purity of the streamed assignments.
package main

import (
	"flag"
	"fmt"
	"log"

	"lshcluster"
)

func main() {
	items := flag.Int("items", 6000, "total items (batch chunk + stream)")
	clusters := flag.Int("clusters", 200, "number of clusters")
	warm := flag.Int("warm", 1500, "items used for the initial batch training")
	flag.Parse()

	ds, err := lshcluster.GenerateSynthetic(lshcluster.SyntheticConfig{
		Items:    *items,
		Clusters: *clusters,
		Attrs:    60,
		Domain:   40000,
		Seed:     23,
	})
	if err != nil {
		log.Fatal(err)
	}

	// Phase 1: batch-train modes on the first chunk. (Items are
	// interleaved across clusters by the generator, so the chunk covers
	// every cluster.)
	warmRows := make([]lshcluster.Value, 0, *warm*ds.NumAttrs())
	warmLabels := make([]int32, *warm)
	for i := 0; i < *warm; i++ {
		warmRows = append(warmRows, ds.Row(i)...)
		warmLabels[i] = int32(ds.Label(i))
	}
	warmDS, err := lshcluster.NewDatasetFromValues(ds.AttrNames(), warmRows, warmLabels)
	if err != nil {
		log.Fatal(err)
	}
	params := lshcluster.Params{Bands: 20, Rows: 3}
	batch, err := lshcluster.Cluster(warmDS, lshcluster.Config{K: *clusters, Seed: 7, LSH: &params})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("batch phase: %d items, %d iterations, purity %.4f\n",
		*warm, batch.Stats.NumIterations(), batch.Stats.Purity)

	// Phase 2: stream the rest through the trained model.
	sc, err := lshcluster.StreamFromModel(batch.Model, params, 99)
	if err != nil {
		log.Fatal(err)
	}
	streamLabels := make([]int32, 0, ds.NumItems()-*warm)
	for i := *warm; i < ds.NumItems(); i++ {
		if _, err := sc.Add(ds.Row(i), nil); err != nil {
			log.Fatal(err)
		}
		streamLabels = append(streamLabels, int32(ds.Label(i)))
	}
	purity, err := lshcluster.Purity(sc.Assignments(), streamLabels)
	if err != nil {
		log.Fatal(err)
	}
	st := sc.Stats()
	fmt.Printf("stream phase: %d items assigned online, purity %.4f\n", st.Items, purity)
	fmt.Printf("  avg candidates per item: %.2f (k = %d)\n",
		float64(st.CandidatesTotal)/float64(st.Items), *clusters)
	fmt.Printf("  full-scan fallbacks: %d (%.1f%%, mostly at stream start)\n",
		st.FullScans, 100*float64(st.FullScans)/float64(st.Items))
	fmt.Printf("  distance comparisons per item: %.2f (exact algorithm would do %d)\n",
		float64(st.Comparisons)/float64(st.Items), *clusters)
}
