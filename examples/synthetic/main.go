// Synthetic: the paper's headline experiment in miniature. Generates a
// datgen-style workload (many clusters defined by conjunctive rules),
// clusters it with exact K-Modes and with MH-K-Modes at the paper's
// parameter choices, and prints the per-iteration comparison — time,
// shortlist size, moves — plus total speedup and purity.
//
// Flags scale the workload; the defaults run in a few seconds.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"lshcluster"
)

func main() {
	items := flag.Int("items", 4500, "number of items")
	clusters := flag.Int("clusters", 1000, "number of clusters")
	attrs := flag.Int("attrs", 100, "number of attributes")
	flag.Parse()

	fmt.Printf("generating synthetic workload: n=%d, k=%d, m=%d, domain=40000\n",
		*items, *clusters, *attrs)
	ds, err := lshcluster.GenerateSynthetic(lshcluster.SyntheticConfig{
		Items:    *items,
		Clusters: *clusters,
		Attrs:    *attrs,
		Domain:   40000,
		Seed:     7,
	})
	if err != nil {
		log.Fatal(err)
	}

	configs := []struct {
		name string
		lsh  *lshcluster.Params
	}{
		{"MH-K-Modes 20b 2r", &lshcluster.Params{Bands: 20, Rows: 2}},
		{"MH-K-Modes 20b 5r", &lshcluster.Params{Bands: 20, Rows: 5}},
		{"K-Modes (exact)", nil},
	}
	var runs []*lshcluster.Run
	var baseline *lshcluster.Run
	for _, c := range configs {
		fmt.Printf("running %s ...\n", c.name)
		res, err := lshcluster.Cluster(ds, lshcluster.Config{
			K: *clusters, Seed: 99, LSH: c.lsh,
			OnIteration: func(it lshcluster.Iteration) {
				fmt.Printf("  iter %d: %v, %d moves, avg shortlist %.2f\n",
					it.Index, it.Duration.Round(time.Millisecond), it.Moves, it.AvgShortlist)
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		run := res.Stats
		run.Name = c.name
		runs = append(runs, &run)
		if c.lsh == nil {
			baseline = &run
		}
	}

	fmt.Println("\ncomparison:")
	if err := lshcluster.WriteRunSummary(os.Stdout, runs); err != nil {
		log.Fatal(err)
	}
	for _, r := range runs {
		if r != baseline {
			fmt.Printf("%s speedup over exact K-Modes: %.2fx\n", r.Name, r.Speedup(baseline))
		}
	}
}
