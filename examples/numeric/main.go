// Numeric: the paper's further-work extension — the same acceleration
// framework applied to numeric data. Clusters Gaussian blobs with exact
// K-Means and with SimHash-accelerated K-Means (random-hyperplane LSH in
// place of MinHash) and compares quality and per-iteration work.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lshcluster"
)

func main() {
	points := flag.Int("points", 20000, "number of points")
	clusters := flag.Int("clusters", 400, "number of blobs/clusters")
	dim := flag.Int("dim", 16, "dimensionality")
	flag.Parse()

	pts, labels, err := lshcluster.GenerateBlobs(lshcluster.BlobsConfig{
		Points:   *points,
		Clusters: *clusters,
		Dim:      *dim,
		Seed:     13,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blobs: n=%d, k=%d, dim=%d\n", *points, *clusters, *dim)

	for _, cfg := range []struct {
		name string
		lsh  *lshcluster.Params
	}{
		// With sign-bit rows, r must be large enough that vectors at
		// wide angles (unrelated blobs) rarely agree on a whole band:
		// at 90° a band of 12 bits collides with probability 0.5^12.
		{"SimHash-K-Means 12b 12r", &lshcluster.Params{Bands: 12, Rows: 12}},
		{"K-Means (exact)", nil},
	} {
		res, err := lshcluster.ClusterNumeric(pts, *dim, lshcluster.Config{
			K: *clusters, Seed: 21, LSH: cfg.lsh,
		})
		if err != nil {
			log.Fatal(err)
		}
		purity, err := lshcluster.Purity(res.Assign, labels)
		if err != nil {
			log.Fatal(err)
		}
		var avgShort float64
		if n := res.Stats.NumIterations(); n > 0 {
			avgShort = res.Stats.Iterations[n-1].AvgShortlist
		}
		fmt.Printf("%-24s %d iterations, total %v, mean iter %v, last shortlist %.2f, purity %.4f\n",
			cfg.name, res.Stats.NumIterations(),
			res.Stats.Total().Round(time.Millisecond),
			res.Stats.MeanIterationTime().Round(time.Millisecond),
			avgShort, purity)
	}
}
