// Tuning: how to choose the bands (b) and rows (r) parameters, following
// the paper's §III-D analysis. Prints the S-curve for a few
// configurations, the cluster-level hit probabilities that make loose
// parameters viable for MH-K-Modes, the cheapest configuration for a
// target, and the §III-C error bound.
package main

import (
	"fmt"

	"lshcluster"
)

func main() {
	sims := []float64{0.05, 0.1, 0.2, 0.3, 0.5, 0.8}
	configs := []lshcluster.Params{
		{Bands: 1, Rows: 1},
		{Bands: 20, Rows: 2},
		{Bands: 20, Rows: 5},
		{Bands: 50, Rows: 5},
	}

	fmt.Println("candidate-pair probability 1-(1-s^r)^b:")
	fmt.Printf("%8s", "J \\ cfg")
	for _, p := range configs {
		fmt.Printf("%12v", p)
	}
	fmt.Println()
	for _, s := range sims {
		fmt.Printf("%8.2f", s)
		for _, p := range configs {
			fmt.Printf("%12.4f", p.CandidateProb(s))
		}
		fmt.Println()
	}

	fmt.Println("\ncluster-hit probability with 10 similar items (the paper's point:")
	fmt.Println("one collision per relevant cluster suffices, so loose parameters work):")
	for _, s := range sims {
		fmt.Printf("%8.2f", s)
		for _, p := range configs {
			fmt.Printf("%12.4f", p.ClusterHitProb(s, 10))
		}
		fmt.Println()
	}

	fmt.Println("\nsteepest-rise similarity (1/b)^(1/r):")
	for _, p := range configs {
		fmt.Printf("  %v -> %.4f\n", p, p.ThresholdSimilarity())
	}

	if p, ok := lshcluster.SearchParams(0.25, 5, 0.99, 256, 8); ok {
		fmt.Printf("\ncheapest configuration reaching 99%% cluster-hit at J=0.25 with 5 items: %v (%d hashes)\n",
			p, p.SignatureLen())
	}

	p := lshcluster.Params{Bands: 25, Rows: 1}
	fmt.Printf("\npaper §III-C worked example: m=100 attributes, %v, clusters of 20 items\n", p)
	fmt.Printf("  probability the best cluster misses the shortlist ≤ %.4f (paper: ≈ 0.08)\n",
		p.ErrorBound(100, 20))
}
