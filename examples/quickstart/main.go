// Quickstart: cluster a small categorical dataset with MH-K-Modes and
// inspect the result. This is the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"

	"lshcluster"
)

func main() {
	// Build a categorical dataset: animals described by three attributes.
	b := lshcluster.NewBuilder([]string{"habitat", "diet", "legs"})
	rows := [][]string{
		{"savanna", "carnivore", "4"}, // big cats
		{"savanna", "carnivore", "4"},
		{"savanna", "herbivore", "4"}, // grazers
		{"savanna", "herbivore", "4"},
		{"ocean", "carnivore", "0"}, // marine predators
		{"ocean", "carnivore", "0"},
		{"ocean", "filter", "0"}, // filter feeders
		{"forest", "omnivore", "2"},
		{"forest", "omnivore", "2"},
		{"forest", "herbivore", "4"},
	}
	for _, r := range rows {
		if err := b.Add(r); err != nil {
			log.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		log.Fatal(err)
	}

	// Cluster into 4 groups with the LSH-accelerated K-Modes. For a
	// dataset this small the acceleration is pointless — the point is
	// the API: swap LSH to nil and you get the exact algorithm with the
	// same statistics to compare against.
	res, err := lshcluster.Cluster(ds, lshcluster.Config{
		K:    4,
		Seed: 42,
		LSH:  &lshcluster.Params{Bands: 8, Rows: 2},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%s finished in %d iterations (converged=%v, total %v)\n",
		res.Stats.Name, res.Stats.NumIterations(), res.Stats.Converged,
		res.Stats.Total())
	for i, c := range res.Assign {
		fmt.Printf("  item %d %v -> cluster %d\n", i, rows[i], c)
	}

	// The trained model predicts clusters for new items.
	newRow := []lshcluster.Value{ds.Row(0)[0], ds.Row(2)[1], ds.Row(0)[2]}
	c, d := res.Model.Predict(newRow)
	fmt.Printf("new item (savanna herbivore, 4 legs) -> cluster %d (distance %d)\n", c, d)
}
