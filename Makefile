# Repo gates. `make lint` runs exactly what CI's lint job runs and
# writes the same *-report.txt files CI uploads as artifacts.
# staticcheck and govulncheck are skipped gracefully when the binaries
# are not installed (CI installs them, so there they always run and
# block); lshvet and allocheck build from this repo and always run.

SHELL := /bin/bash
GO ?= go

.PHONY: build test lint lshvet allocheck staticcheck govulncheck fuzz-smoke chaos persist-bench clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint: lshvet allocheck staticcheck govulncheck

lshvet:
	set -o pipefail; $(GO) run ./cmd/lshvet ./... | tee lshvet-report.txt

allocheck:
	set -o pipefail; $(GO) run ./scripts/allocheck | tee allocheck-report.txt

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		set -o pipefail; staticcheck ./... | tee staticcheck-report.txt; \
	else \
		echo "staticcheck not installed; skipped (CI installs and enforces it)" | tee staticcheck-report.txt; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		set -o pipefail; govulncheck ./... | tee govulncheck-report.txt; \
	else \
		echo "govulncheck not installed; skipped (CI installs and enforces it)" | tee govulncheck-report.txt; \
	fi

# Fault-injection gate: the resilience/chaos test suite under the race
# detector, then a degraded-mode soak — 100k items at S=4 with 5%
# transient backend errors and one permanently dead shard — which must
# complete and report its degradation accounting in
# chaos-soak-stats.csv (shard_retries … skipped_shards columns; CI
# uploads it as an artifact).
chaos:
	$(GO) test -race -count=1 \
		-run 'Backend|Chaos|Serve|Stream|Resilien|Degraded' \
		./internal/lsh/ ./internal/lsh/serve/ ./internal/core/ ./internal/stream/ ./cmd/lshcluster/ .
	$(GO) run ./cmd/datagen -items 100000 -clusters 2000 -attrs 60 -domain 20000 -seed 1 -o chaos-soak-in.csv
	$(GO) run ./cmd/lshcluster -in chaos-soak-in.csv -k 2000 -bands 20 -rows 5 -shards 4 \
		-chaos-spec "seed=1;err=0.05;shard2.dead" -maxiter 10 -stats chaos-soak-stats.csv
	rm -f chaos-soak-in.csv
	@grep -q ',skipped_shards' chaos-soak-stats.csv || { echo "chaos: stats CSV missing resilience columns"; exit 1; }

fuzz-smoke:
	$(GO) test ./internal/lsh -run='^$$' -fuzz=FuzzBuildFrozenIdentity -fuzztime=30s
	$(GO) test ./internal/lsh -run='^$$' -fuzz=FuzzForeignSlotSpans -fuzztime=30s
	$(GO) test ./internal/core -run='^$$' -fuzz=FuzzReorderIdentity -fuzztime=30s
	$(GO) test ./internal/lsh -run='^$$' -fuzz=FuzzPersistRoundTrip -fuzztime=30s

# Warm-start A/B: the cold save-and-scan bootstrap against the mmap and
# heap warm starts on the 100k/S=4 workload, with the derived headline
# numbers (warm_start_speedup, mmap_vs_heap) in BENCH_10.json — the
# same capture CI uploads as an artifact.
persist-bench:
	set -o pipefail; $(GO) test -run XXX -bench 'BenchmarkPersist' -benchtime 2x . | tee bench-persist.txt
	$(GO) run ./scripts/benchjson -in bench-persist.txt -out BENCH_10.json

clean:
	rm -f *-report.txt bench-*.txt BENCH_*.json chaos-soak-in.csv chaos-soak-stats.csv
