# Repo gates. `make lint` runs exactly what CI's lint job runs and
# writes the same *-report.txt files CI uploads as artifacts.
# staticcheck and govulncheck are skipped gracefully when the binaries
# are not installed (CI installs them, so there they always run and
# block); lshvet and allocheck build from this repo and always run.

SHELL := /bin/bash
GO ?= go

.PHONY: build test lint lshvet allocheck staticcheck govulncheck fuzz-smoke clean

build:
	$(GO) build ./...

test:
	$(GO) test ./...

lint: lshvet allocheck staticcheck govulncheck

lshvet:
	set -o pipefail; $(GO) run ./cmd/lshvet ./... | tee lshvet-report.txt

allocheck:
	set -o pipefail; $(GO) run ./scripts/allocheck | tee allocheck-report.txt

staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		set -o pipefail; staticcheck ./... | tee staticcheck-report.txt; \
	else \
		echo "staticcheck not installed; skipped (CI installs and enforces it)" | tee staticcheck-report.txt; \
	fi

govulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		set -o pipefail; govulncheck ./... | tee govulncheck-report.txt; \
	else \
		echo "govulncheck not installed; skipped (CI installs and enforces it)" | tee govulncheck-report.txt; \
	fi

fuzz-smoke:
	$(GO) test ./internal/lsh -run='^$$' -fuzz=FuzzBuildFrozenIdentity -fuzztime=30s
	$(GO) test ./internal/lsh -run='^$$' -fuzz=FuzzForeignSlotSpans -fuzztime=30s

clean:
	rm -f *-report.txt bench-*.txt
