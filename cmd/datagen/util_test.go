package main

import (
	"os"
	"strings"
)

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
