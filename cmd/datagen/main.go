// Command datagen generates the paper's synthetic categorical workloads
// (§IV-A, datgen-style conjunctive-rule clusters) as CSV on stdout or a
// file. The CSV carries a trailing _label column with the generating
// cluster, which cmd/lshcluster can use to report purity.
//
// Example:
//
//	datagen -items 9000 -clusters 2000 -attrs 100 -o synth.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("datagen", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var cfg datagen.Config
	fs.IntVar(&cfg.Items, "items", 9000, "number of items (n)")
	fs.IntVar(&cfg.Clusters, "clusters", 2000, "number of clusters (k)")
	fs.IntVar(&cfg.Attrs, "attrs", 100, "number of attributes (m)")
	fs.IntVar(&cfg.Domain, "domain", 40000, "categorical domain size")
	fs.Float64Var(&cfg.MinRuleFrac, "min-rule", 0.4, "minimum fraction of attributes fixed by a cluster rule")
	fs.Float64Var(&cfg.MaxRuleFrac, "max-rule", 0.8, "maximum fraction of attributes fixed by a cluster rule")
	fs.Float64Var(&cfg.FlipProb, "flip", 0, "probability of corrupting each rule attribute")
	fs.Int64Var(&cfg.Seed, "seed", 1, "random seed")
	out := fs.String("o", "", "output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ds, err := datagen.Generate(cfg)
	if err != nil {
		return err
	}
	w := stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := dataset.WriteCSV(w, ds); err != nil {
		return err
	}
	fmt.Fprintf(stderr, "datagen: wrote %s\n", ds)
	return nil
}
