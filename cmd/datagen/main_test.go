package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"lshcluster/internal/dataset"
)

func TestRunStdout(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-items", "60", "-clusters", "6", "-attrs", "10", "-domain", "100"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := dataset.ReadCSV(&out)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumItems() != 60 || ds.NumAttrs() != 10 || !ds.Labeled() {
		t.Fatalf("generated %v", ds)
	}
	if !strings.Contains(errw.String(), "wrote") {
		t.Fatalf("missing status line: %q", errw.String())
	}
}

func TestRunToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.csv")
	var out, errw bytes.Buffer
	err := run([]string{"-items", "20", "-clusters", "2", "-attrs", "4", "-domain", "10", "-o", path}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 0 {
		t.Fatal("stdout should be empty when -o is given")
	}
	f, err := readFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(f, "a0,") {
		t.Fatalf("file content: %q", firstLine(f))
	}
}

func TestRunBadFlags(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-items", "0"}, &out, &errw); err == nil {
		t.Fatal("expected error for invalid config")
	}
	if err := run([]string{"-bogus"}, &out, &errw); err == nil {
		t.Fatal("expected flag parse error")
	}
}
