// Command lshcluster clusters a categorical CSV dataset with K-Modes,
// either exact or accelerated with the paper's MinHash LSH framework
// (MH-K-Modes).
//
// The input CSV must have a header row of attribute names; a trailing
// _label column, when present, is treated as ground truth and reported as
// cluster purity. Assignments are written as CSV (item,cluster), and a
// per-iteration statistics summary is printed to stderr.
//
// Examples:
//
//	lshcluster -in synth.csv -k 2000 -bands 20 -rows 5 -assign out.csv
//	lshcluster -in synth.csv -k 2000 -exact
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"sync"
	"time"

	"lshcluster/internal/core"
	"lshcluster/internal/dataset"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/lsh/persist"
	"lshcluster/internal/lsh/serve"
	"lshcluster/internal/metrics"
	"lshcluster/internal/runstats"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lshcluster:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lshcluster", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "", "input CSV file (default stdin)")
	inBinary := fs.String("in-binary", "", "input binary dataset file (written by -write-binary; memory-mapped, so rows never occupy the heap)")
	writeBinary := fs.String("write-binary", "", "convert the input dataset to the binary columnar format at this path and continue")
	k := fs.Int("k", 0, "number of clusters (required)")
	bands := fs.Int("bands", 20, "LSH bands (b)")
	rows := fs.Int("rows", 5, "LSH rows per band (r)")
	exact := fs.Bool("exact", false, "run exact K-Modes (no LSH acceleration)")
	seed := fs.Int64("seed", 1, "random seed")
	maxIter := fs.Int("maxiter", core.DefaultMaxIterations, "iteration cap")
	assignOut := fs.String("assign", "", "write item,cluster assignments to this CSV file")
	modelOut := fs.String("model", "", "write the trained modes (gob) to this file")
	statsCSV := fs.String("stats", "", "write per-iteration statistics CSV to this file")
	workers := fs.Int("workers", 1, "parallel assignment workers (forces deferred updates)")
	shards := fs.Int("shards", 1, "item-partitioned LSH index shards (1 = unsharded oracle; results are identical for every value)")
	foreignBudget := fs.Int64("foreign-slot-budget", 0, "byte budget for materialised cross-shard fan-out arrays (0 = 64 MiB default, negative = unlimited; over budget the index keeps key probing)")
	noForeign := fs.Bool("no-foreign-slots", false, "keep cross-shard fan-out on the key-probe path (A/B baseline; results are identical)")
	scalarKernels := fs.Bool("scalar-kernels", false, "use scalar reference distance kernels instead of the unrolled ones (A/B baseline; results are identical)")
	seeded := fs.Bool("seeded-bootstrap", false, "use the seeded-index bootstrap instead of a full first pass")
	abandon := fs.Bool("early-abandon", false, "enable early-abandon distance evaluation")
	lowestTie := fs.Bool("lowest-index-ties", false, "break distance ties to the lowest cluster index (numpy-style)")
	noIncremental := fs.Bool("no-incremental", false, "recompute centroids and cost from scratch each pass instead of incrementally (A/B baseline; results are identical; implies -no-active-filter)")
	noActive := fs.Bool("no-active-filter", false, "evaluate every item each pass instead of only the active set (A/B baseline; results are identical)")
	noParallelBoot := fs.Bool("no-parallel-bootstrap", false, "run the serial per-item bootstrap instead of the parallel sign/build/assign pipeline (A/B baseline; results are identical)")
	noImmediateBatch := fs.Bool("no-immediate-batching", false, "evaluate immediate-update passes item by item instead of in move-bounded blocks (A/B baseline; results are identical)")
	noReorder := fs.Bool("no-reorder", false, "build the LSH index in original item order instead of the locality-preserving permutation (A/B baseline; results are identical)")
	chaosSpec := fs.String("chaos-spec", "", "route cross-shard queries through fault-injecting backends with this spec (e.g. \"seed=1;err=0.05;shard2.dead\"); empty spec = direct fan-out, zero-fault spec (\"seed=1\") = resilient path, bit-identical results")
	retryBudget := fs.Int("retry-budget", 0, "retries after a failed shard-backend call (0 = default, negative = none; needs -chaos-spec)")
	hedgeAfter := fs.Duration("hedge-after", 0, "straggler threshold before hedging a shard call to its mirror (0 = default, negative disables; needs -chaos-spec)")
	noHedging := fs.Bool("no-hedging", false, "disable hedged shard-backend requests, keeping deadlines and retries (A/B baseline; results are identical)")
	saveIndex := fs.String("save-index", "", "persist the frozen LSH index (and first assignment) into this directory after a cold bootstrap; later runs warm-start from it")
	loadIndex := fs.String("load-index", "", "warm-start from the saved index in this directory (must exist; stale indexes are rejected, bit-identical results)")
	mmapIndex := fs.Bool("mmap-index", true, "memory-map the persisted index zero-copy; -mmap-index=false copies it onto the heap (A/B baseline; results are identical)")
	memBudget := fs.Int64("shard-memory-budget", 0, "resident-byte cap for the memory-mapped index; whole shards page out past it and page back in on demand (0 = unlimited)")
	snapshotEvery := fs.Int("snapshot-every", 0, "checkpoint the run state into the index directory every N iterations and resume interrupted runs from it (0 = off; needs -save-index/-load-index)")
	serveQueries := fs.Int("serve-queries", 0, "after clustering, serve this many shortlist queries through the concurrent multi-shard server demo (0 = off; needs LSH acceleration)")
	serveClients := fs.Int("serve-clients", 4, "concurrent client goroutines for -serve-queries")
	serveInflight := fs.Int("serve-inflight", 2, "per-shard in-flight call bound (backpressure) for -serve-queries")
	initMethod := fs.String("init", "random", "initial centroid selection: random | huang | cao")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *k < 1 {
		return fmt.Errorf("-k is required and must be ≥ 1")
	}

	indexDir := ""
	switch {
	case *saveIndex != "" && *loadIndex != "" && *saveIndex != *loadIndex:
		return fmt.Errorf("-save-index and -load-index name different directories; use one (or the same)")
	case *saveIndex != "":
		indexDir = *saveIndex
	case *loadIndex != "":
		if !lsh.IndexSaved(*loadIndex) {
			return fmt.Errorf("-load-index: no saved index in %s (run with -save-index first)", *loadIndex)
		}
		indexDir = *loadIndex
	}

	var ds *dataset.Dataset
	var err error
	if *inBinary != "" {
		if *in != "" {
			return fmt.Errorf("-in and -in-binary are mutually exclusive")
		}
		var closeDS func() error
		ds, closeDS, err = dataset.OpenBinary(*inBinary, *mmapIndex && persist.MmapSupported)
		if err != nil {
			return err
		}
		defer closeDS()
	} else {
		var r io.Reader = os.Stdin
		if *in != "" {
			f, err := os.Open(*in)
			if err != nil {
				return err
			}
			defer f.Close()
			r = f
		}
		if ds, err = dataset.ReadCSV(r); err != nil {
			return err
		}
	}
	fmt.Fprintf(stderr, "lshcluster: loaded %s\n", ds)
	if *writeBinary != "" {
		if err := dataset.WriteBinary(ds, *writeBinary); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "lshcluster: wrote binary dataset to %s\n", *writeBinary)
	}

	var space *kmodes.Space
	switch *initMethod {
	case "random":
		space, err = kmodes.NewSpace(ds, kmodes.Config{K: *k, Seed: *seed})
	case "huang":
		var seeds []int32
		if seeds, err = kmodes.InitHuang(ds, *k, *seed); err == nil {
			space, err = kmodes.NewSpaceFromSeeds(ds, seeds, kmodes.Config{Seed: *seed})
		}
	case "cao":
		var seeds []int32
		if seeds, err = kmodes.InitCao(ds, *k); err == nil {
			space, err = kmodes.NewSpaceFromSeeds(ds, seeds, kmodes.Config{Seed: *seed})
		}
	default:
		return fmt.Errorf("unknown -init %q (want random, huang or cao)", *initMethod)
	}
	if err != nil {
		return err
	}
	opts := core.Options{
		MaxIterations:            *maxIter,
		EarlyAbandon:             *abandon,
		Workers:                  *workers,
		Shards:                   *shards,
		ForeignSlotBudget:        *foreignBudget,
		DisableForeignSlots:      *noForeign,
		ScalarKernels:            *scalarKernels,
		DisableIncremental:       *noIncremental,
		DisableActiveFilter:      *noActive,
		DisableParallelBootstrap: *noParallelBoot,
		DisableImmediateBatching: *noImmediateBatch,
		DisableReorder:           *noReorder,
		IndexDir:                 indexDir,
		DisableMmap:              !*mmapIndex,
		ShardMemoryBudget:        *memBudget,
		SnapshotEvery:            *snapshotEvery,
		ChaosSpec:                *chaosSpec,
		RetryBudget:              *retryBudget,
		HedgeAfter:               *hedgeAfter,
		DisableHedging:           *noHedging,
		OnIteration: func(it runstats.Iteration) {
			fmt.Fprintf(stderr, "lshcluster: iter %d: %v, %d moves, avg shortlist %.2f\n",
				it.Index, it.Duration.Round(it.Duration/100+1), it.Moves, it.AvgShortlist)
		},
	}
	if *lowestTie {
		opts.TieBreak = core.TieBreakLowestIndex
	}
	if *seeded {
		opts.Bootstrap = core.BootstrapSeeded
	}
	var accel *core.MinHashAccelerator
	if !*exact {
		accel, err = core.NewMinHashAccelerator(ds, lsh.Params{Bands: *bands, Rows: *rows}, uint64(*seed))
		if err != nil {
			return err
		}
		opts.Accelerator = accel
		if *workers > 1 {
			opts.Update = core.UpdateDeferred
		}
	}
	if *serveQueries > 0 && *exact {
		return fmt.Errorf("-serve-queries needs LSH acceleration (drop -exact)")
	}
	res, err := core.Run(space, opts)
	if err != nil {
		return err
	}
	run := res.Stats
	fmt.Fprintf(stderr, "lshcluster: bootstrap %v (sign %v, build %v, assign %v)\n",
		run.Bootstrap.Round(time.Millisecond),
		run.BootstrapSign.Round(time.Millisecond),
		run.BootstrapBuild.Round(time.Millisecond),
		run.BootstrapAssign.Round(time.Millisecond))
	if run.Shards > 1 {
		slowest := 0
		for s, d := range run.BootstrapBuildShards {
			if d > run.BootstrapBuildShards[slowest] {
				slowest = s
			}
		}
		var slowestBuild time.Duration
		if len(run.BootstrapBuildShards) > 0 {
			slowestBuild = run.BootstrapBuildShards[slowest]
		}
		fanOut := "key-probe fan-out"
		if run.ForeignSlotBytes > 0 {
			fanOut = fmt.Sprintf("foreign-slot fan-out, %d KiB", run.ForeignSlotBytes/1024)
		}
		locality := ""
		if frac := run.ShardLocalFrac(); !math.IsNaN(frac) {
			locality = fmt.Sprintf("; shard-local candidate fraction %.2f", frac)
		}
		fmt.Fprintf(stderr, "lshcluster: %d index shards (slowest build: shard %d at %v; cross-shard merge %v; %s, probe fraction %.2f%s)\n",
			run.Shards, slowest, slowestBuild.Round(time.Millisecond),
			run.CrossShardMerge.Round(time.Millisecond),
			fanOut, run.CrossShardProbeFrac(), locality)
	}
	if run.WarmStart {
		fmt.Fprintf(stderr, "lshcluster: warm start: index loaded from %s in %v (skipped signing, build and first scan)\n",
			indexDir, run.IndexLoadTime.Round(time.Millisecond))
	} else if indexDir != "" {
		fmt.Fprintf(stderr, "lshcluster: cold start: index built and saved to %s in %v\n",
			indexDir, run.IndexSaveTime.Round(time.Millisecond))
	}
	if run.MmapBytes > 0 {
		fmt.Fprintf(stderr, "lshcluster: index served zero-copy from a %d KiB memory mapping\n", run.MmapBytes/1024)
	}
	if run.ShardPromotions > 0 || run.ShardDemotions > 0 {
		fmt.Fprintf(stderr, "lshcluster: residency: %d shard(s) resident at end under the %d KiB budget (%d promotions, %d demotions)\n",
			run.ResidentShards, *memBudget/1024, run.ShardPromotions, run.ShardDemotions)
	}
	if run.ResumedAt > 1 {
		fmt.Fprintf(stderr, "lshcluster: resumed from checkpoint at iteration %d\n", run.ResumedAt)
	}
	if run.ReorderTime > 0 {
		fmt.Fprintf(stderr, "lshcluster: locality reorder %v (items permuted so co-colliding IDs are contiguous; output stays in original-ID space)\n",
			run.ReorderTime.Round(time.Millisecond))
	}
	if run.DegradedItems > 0 || run.SkippedShards > 0 || run.ShardRetries > 0 || run.HedgedCalls > 0 {
		fmt.Fprintf(stderr, "lshcluster: DEGRADED: %d item evaluations on partial shortlists; %d shard(s) failed past the retry budget (%d retries, %d timeouts, %d hedged calls, %d hedge wins)\n",
			run.DegradedItems, run.SkippedShards,
			run.ShardRetries, run.ShardTimeouts, run.HedgedCalls, run.HedgeWins)
	}
	if *exact {
		run.Name = "K-Modes"
	} else {
		run.Name = fmt.Sprintf("MH-K-Modes %db %dr", *bands, *rows)
	}
	if ds.Labeled() {
		p, err := metrics.Purity(res.Assign, ds.Labels())
		if err != nil {
			return err
		}
		run.Purity = p
	}
	if err := runstats.WriteSummaryMarkdown(stdout, []*runstats.Run{&run}); err != nil {
		return err
	}

	if *assignOut != "" {
		if err := writeAssignments(*assignOut, res.Assign); err != nil {
			return err
		}
	}
	if *modelOut != "" {
		f, err := os.Create(*modelOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := space.Model().Save(f); err != nil {
			return err
		}
	}
	if *statsCSV != "" {
		f, err := os.Create(*statsCSV)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := runstats.WriteCSV(f, []*runstats.Run{&run}); err != nil {
			return err
		}
	}
	if *serveQueries > 0 {
		if err := serveDemo(stderr, accel, ds.NumItems(), *chaosSpec, *serveQueries, *serveClients, *serveInflight); err != nil {
			return err
		}
	}
	return nil
}

// serveDemo drives the concurrent multi-shard serving layer over the
// just-built index: client goroutines issue shortlist queries
// round-robin over the items, each query fanning out through the
// server's goroutine-isolated, backpressured shard backends
// (chaos-wrapped when a spec is given, with an injection stream
// independent of the clustering run's), and the served buckets are
// compared against a direct fan-out over the same shards to measure
// the recall the faults cost.
func serveDemo(stderr io.Writer, accel *core.MinHashAccelerator, n int, spec string, queries, clients, inflight int) error {
	ix := accel.Index()
	bands := accel.Params().Bands
	locals := ix.LocalBackends()
	backends := locals
	if spec != "" {
		cs, err := serve.ParseChaosSpec(spec)
		if err != nil {
			return err
		}
		// Salt 2: independent of the clustering run's primaries (salt 0)
		// and hedge mirrors (salt 1).
		backends = cs.Wrap(locals, 2)
	}
	srv := serve.NewServer(backends, bands, inflight)
	if clients < 1 {
		clients = 1
	}
	// served/oracle count emitted buckets through the server versus the
	// direct fan-out; partial counts queries that lost ≥ 1 shard.
	type clientStats struct {
		served, oracle int64
		partial, done  int64
	}
	stats := make([]clientStats, clients)
	ctx := context.Background()
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			st := &stats[c]
			keys := make([]uint64, bands)
			for q := c; q < queries; q += clients {
				item := int32(q % n)
				if !ix.ItemKeysOf(item, keys) {
					continue
				}
				served := 0
				skipped, err := srv.Candidates(ctx, keys, func(int, []int32) { served++ })
				if err != nil {
					continue
				}
				oracle := 0
				for _, b := range locals {
					_ = b.Candidates(ctx, keys, func(int, []int32) { oracle++ })
				}
				st.served += int64(served)
				st.oracle += int64(oracle)
				if skipped > 0 {
					st.partial++
				}
				st.done++
			}
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var served, oracle, partial, done int64
	for i := range stats {
		served += stats[i].served
		oracle += stats[i].oracle
		partial += stats[i].partial
		done += stats[i].done
	}
	recall := 1.0
	if oracle > 0 {
		recall = float64(served) / float64(oracle)
	}
	fmt.Fprintf(stderr, "lshcluster: serve: %d queries via %d clients in %v (%.0f qps); %d partial; bucket recall %.4f\n",
		done, clients, elapsed.Round(time.Millisecond),
		float64(done)/elapsed.Seconds(), partial, recall)
	for s, rep := range srv.Report() {
		fmt.Fprintf(stderr, "lshcluster: serve: shard %d: %d calls, %d errors, %d stragglers, mean %v, max %v\n",
			s, rep.Calls, rep.Errors, rep.Stragglers,
			rep.Mean.Round(time.Microsecond), rep.Max.Round(time.Microsecond))
	}
	fmt.Fprintf(stderr, "lshcluster: serve: straggler order (worst first): %v\n", srv.Slowest())
	return nil
}

func writeAssignments(path string, assign []int32) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	cw := csv.NewWriter(f)
	if err := cw.Write([]string{"item", "cluster"}); err != nil {
		return err
	}
	for i, c := range assign {
		if err := cw.Write([]string{strconv.Itoa(i), strconv.Itoa(int(c))}); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
