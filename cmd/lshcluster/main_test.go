package main

import (
	"bytes"
	"encoding/csv"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/kmodes"
)

func writeWorkload(t *testing.T) string {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Items: 200, Clusters: 10, Attrs: 16, Domain: 500,
		MinRuleFrac: 0.6, MaxRuleFrac: 0.9, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "in.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := dataset.WriteCSV(f, ds); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestClusterAccelerated(t *testing.T) {
	in := writeWorkload(t)
	dir := t.TempDir()
	assign := filepath.Join(dir, "assign.csv")
	stats := filepath.Join(dir, "stats.csv")
	model := filepath.Join(dir, "model.gob")
	var out, errw bytes.Buffer
	err := run([]string{
		"-in", in, "-k", "10", "-bands", "10", "-rows", "2",
		"-assign", assign, "-stats", stats, "-model", model,
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "MH-K-Modes 10b 2r") {
		t.Fatalf("summary missing run name: %q", out.String())
	}

	f, err := os.Open(assign)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := csv.NewReader(f).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 201 { // header + 200 items
		t.Fatalf("assignment rows = %d", len(recs))
	}

	sf, err := os.ReadFile(stats)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(sf), "run,iteration") {
		t.Fatal("stats CSV missing header")
	}

	mf, err := os.Open(model)
	if err != nil {
		t.Fatal(err)
	}
	defer mf.Close()
	m, err := kmodes.LoadModel(mf)
	if err != nil {
		t.Fatal(err)
	}
	if m.K != 10 || m.M != 16 {
		t.Fatalf("model shape (%d,%d)", m.K, m.M)
	}
}

func TestClusterExact(t *testing.T) {
	in := writeWorkload(t)
	var out, errw bytes.Buffer
	err := run([]string{"-in", in, "-k", "10", "-exact"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "K-Modes") {
		t.Fatalf("summary missing: %q", out.String())
	}
	// Purity column should be a real number for labelled input.
	if strings.Contains(out.String(), "NaN") {
		t.Fatalf("purity not computed: %q", out.String())
	}
}

func TestClusterFlagsRejected(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-k", "0"}, &out, &errw); err == nil {
		t.Fatal("expected error for missing -k")
	}
	if err := run([]string{"-in", "/nonexistent.csv", "-k", "3"}, &out, &errw); err == nil {
		t.Fatal("expected error for missing input")
	}
	in := writeWorkload(t)
	if err := run([]string{"-in", in, "-k", "3", "-init", "bogus"}, &out, &errw); err == nil {
		t.Fatal("expected error for unknown init method")
	}
}

func TestClusterInitMethods(t *testing.T) {
	in := writeWorkload(t)
	for _, init := range []string{"random", "huang", "cao"} {
		var out, errw bytes.Buffer
		err := run([]string{"-in", in, "-k", "10", "-exact", "-init", init}, &out, &errw)
		if err != nil {
			t.Fatalf("init %s: %v", init, err)
		}
		if !strings.Contains(out.String(), "K-Modes") {
			t.Fatalf("init %s: no summary", init)
		}
	}
}

// TestClusterBootstrapModes runs the parallel bootstrap pipeline and
// its serial oracle on the same input and checks identical assignments
// plus the per-phase bootstrap report.
func TestClusterBootstrapModes(t *testing.T) {
	in := writeWorkload(t)
	dir := t.TempDir()
	assigns := map[string]string{}
	for _, mode := range []string{"parallel", "serial"} {
		args := []string{"-in", in, "-k", "10", "-bands", "10", "-rows", "2",
			"-workers", "2", "-seed", "3"}
		out := filepath.Join(dir, mode+".csv")
		if mode == "serial" {
			args = append(args, "-no-parallel-bootstrap")
		}
		args = append(args, "-assign", out)
		var stdout, stderr bytes.Buffer
		if err := run(args, &stdout, &stderr); err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !strings.Contains(stderr.String(), "bootstrap") ||
			!strings.Contains(stderr.String(), "sign") {
			t.Fatalf("%s: stderr missing bootstrap phase report: %q", mode, stderr.String())
		}
		b, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		assigns[mode] = string(b)
	}
	if assigns["parallel"] != assigns["serial"] {
		t.Fatal("parallel and serial bootstrap produced different assignments")
	}
}
