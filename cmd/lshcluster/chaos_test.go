package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestClusterChaosDegradedReport pins the CLI's degraded-mode surface:
// a chaos spec with a dead shard completes the run and prints the
// DEGRADED accounting line on stderr.
func TestClusterChaosDegradedReport(t *testing.T) {
	in := writeWorkload(t)
	var out, errw bytes.Buffer
	err := run([]string{
		"-in", in, "-k", "10", "-bands", "10", "-rows", "2",
		"-shards", "4", "-chaos-spec", "seed=1;err=0.05;shard2.dead",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "DEGRADED:") {
		t.Fatalf("stderr missing DEGRADED line:\n%s", errw.String())
	}
}

// TestClusterChaosZeroFaultQuiet: a zero-fault spec must not print the
// degraded line, and must produce the same summary as the direct path.
func TestClusterChaosZeroFaultQuiet(t *testing.T) {
	in := writeWorkload(t)
	runOnce := func(extra ...string) (string, string) {
		var out, errw bytes.Buffer
		args := append([]string{"-in", in, "-k", "10", "-bands", "10", "-rows", "2", "-shards", "3"}, extra...)
		if err := run(args, &out, &errw); err != nil {
			t.Fatal(err)
		}
		return out.String(), errw.String()
	}
	refOut, _ := runOnce()
	gotOut, gotErr := runOnce("-chaos-spec", "seed=3", "-no-hedging", "-retry-budget", "1", "-hedge-after", "1ms")
	if strings.Contains(gotErr, "DEGRADED:") {
		t.Fatalf("zero-fault run printed DEGRADED:\n%s", gotErr)
	}
	// Compare the summary row minus its wall-clock columns (bootstrap,
	// mean iter, total are indices 4–6 of the markdown row).
	row := func(out string) []string {
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "MH-K-Modes") {
				cells := strings.Split(line, "|")
				return append(cells[:4:4], cells[7:]...)
			}
		}
		t.Fatalf("summary row missing:\n%s", out)
		return nil
	}
	ref, got := row(refOut), row(gotOut)
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("summaries diverged at cell %d: direct %q, chaos %q", i, ref[i], got[i])
		}
	}
}

// TestClusterChaosSpecRejected pins CLI spec validation.
func TestClusterChaosSpecRejected(t *testing.T) {
	in := writeWorkload(t)
	var out, errw bytes.Buffer
	err := run([]string{
		"-in", in, "-k", "10", "-bands", "10", "-rows", "2",
		"-shards", "2", "-chaos-spec", "bogus=1",
	}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "invalid chaos spec") {
		t.Fatalf("err = %v, want invalid chaos spec", err)
	}
}

// TestServeDemo pins the multi-shard server demo: it serves the
// requested queries, reports per-shard accounting and straggler order,
// and composes with chaos injection (dead shard → partial queries).
func TestServeDemo(t *testing.T) {
	in := writeWorkload(t)
	var out, errw bytes.Buffer
	err := run([]string{
		"-in", in, "-k", "10", "-bands", "10", "-rows", "2",
		"-shards", "3", "-serve-queries", "40", "-serve-clients", "3", "-serve-inflight", "2",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	stderr := errw.String()
	for _, want := range []string{"serve: 40 queries via 3 clients", "bucket recall 1.0000", "shard 0:", "straggler order"} {
		if !strings.Contains(stderr, want) {
			t.Fatalf("serve report missing %q:\n%s", want, stderr)
		}
	}

	errw.Reset()
	out.Reset()
	err = run([]string{
		"-in", in, "-k", "10", "-bands", "10", "-rows", "2",
		"-shards", "3", "-serve-queries", "40", "-chaos-spec", "seed=2;shard1.dead",
	}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(errw.String(), "partial") {
		t.Fatalf("chaos serve report missing partial count:\n%s", errw.String())
	}
}

// TestServeDemoNeedsAcceleration: -serve-queries with -exact is a
// usage error.
func TestServeDemoNeedsAcceleration(t *testing.T) {
	in := writeWorkload(t)
	var out, errw bytes.Buffer
	err := run([]string{"-in", in, "-k", "10", "-exact", "-serve-queries", "10"}, &out, &errw)
	if err == nil || !strings.Contains(err.Error(), "-serve-queries") {
		t.Fatalf("err = %v, want -serve-queries usage error", err)
	}
}
