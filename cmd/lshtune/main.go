// Command lshtune explores LSH banding parameters the way the paper's
// §III-D does: it prints Tables I and II, evaluates custom (bands, rows)
// points, and searches for the cheapest configuration reaching a target
// cluster-hit probability.
//
// Examples:
//
//	lshtune -table 1
//	lshtune -bands 20 -rows 5 -sim 0.3 -cluster-items 10
//	lshtune -search -sim 0.25 -cluster-items 5 -target 0.95
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"lshcluster/internal/lsh"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "lshtune:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("lshtune", flag.ContinueOnError)
	fs.SetOutput(stderr)
	table := fs.Int("table", 0, "print the paper's probability table (1 or 2)")
	bands := fs.Int("bands", 0, "bands of a custom configuration")
	rows := fs.Int("rows", 1, "rows per band of a custom configuration")
	sim := fs.Float64("sim", 0.1, "Jaccard similarity of interest")
	clusterItems := fs.Int("cluster-items", 10, "similar items assumed per cluster")
	attrs := fs.Int("attrs", 0, "attributes per item (enables the §III-C error bound)")
	search := fs.Bool("search", false, "search the cheapest configuration reaching -target")
	target := fs.Float64("target", 0.95, "target cluster-hit probability for -search")
	maxBands := fs.Int("max-bands", 1024, "search limit for bands")
	maxRows := fs.Int("max-rows", 10, "search limit for rows")
	if err := fs.Parse(args); err != nil {
		return err
	}

	switch *table {
	case 0:
	case 1:
		printTable(stdout, "Table I (1 row per band, 10 items per cluster)", lsh.TableI())
		return nil
	case 2:
		printTable(stdout, "Table II (5 rows per band, 10 items per cluster)", lsh.TableII())
		return nil
	default:
		return fmt.Errorf("no table %d in the paper", *table)
	}

	if *search {
		p, ok := lsh.SearchParams(*sim, *clusterItems, *target, *maxBands, *maxRows)
		if !ok {
			return fmt.Errorf("no configuration within %d bands × %d rows reaches %.2f",
				*maxBands, *maxRows, *target)
		}
		fmt.Fprintf(stdout, "cheapest configuration: %v (%d hash functions)\n", p, p.SignatureLen())
		describe(stdout, p, *sim, *clusterItems, *attrs)
		return nil
	}

	if *bands > 0 {
		p := lsh.Params{Bands: *bands, Rows: *rows}
		if err := p.Validate(); err != nil {
			return err
		}
		describe(stdout, p, *sim, *clusterItems, *attrs)
		return nil
	}
	return fmt.Errorf("nothing to do: pass -table, -bands or -search (see -h)")
}

func describe(w io.Writer, p lsh.Params, sim float64, clusterItems, attrs int) {
	fmt.Fprintf(w, "configuration %v: signature length %d\n", p, p.SignatureLen())
	fmt.Fprintf(w, "  candidate-pair probability at J=%.4g: %.4f\n", sim, p.CandidateProb(sim))
	fmt.Fprintf(w, "  cluster-hit probability (%d similar items): %.4f\n",
		clusterItems, p.ClusterHitProb(sim, clusterItems))
	fmt.Fprintf(w, "  steepest-rise similarity (1/b)^(1/r): %.4f\n", p.ThresholdSimilarity())
	if attrs > 0 {
		fmt.Fprintf(w, "  §III-C error bound (m=%d, %d items/cluster): %.4f\n",
			attrs, clusterItems, p.ErrorBound(attrs, clusterItems))
	}
}

func printTable(w io.Writer, title string, rows []lsh.TableRow) {
	fmt.Fprintln(w, title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Bands\tJaccard-similarity\tProbability\tMH-K-Modes Probability")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%g\t%.4f\t%.4f\n", r.Bands, r.Jaccard, r.PairProb, r.ClusterProb)
	}
	tw.Flush()
}
