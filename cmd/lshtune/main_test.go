package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTables(t *testing.T) {
	for _, tbl := range []string{"1", "2"} {
		var out, errw bytes.Buffer
		if err := run([]string{"-table", tbl}, &out, &errw); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(out.String(), "Bands") {
			t.Fatalf("table %s output: %q", tbl, out.String())
		}
	}
	var out, errw bytes.Buffer
	if err := run([]string{"-table", "9"}, &out, &errw); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

func TestDescribe(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-bands", "25", "-rows", "1", "-sim", "0.005", "-cluster-items", "20", "-attrs", "100"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"25b1r", "error bound", "0.08"} {
		if !strings.Contains(s, want) {
			t.Fatalf("describe output missing %q: %q", want, s)
		}
	}
}

func TestSearch(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-search", "-sim", "0.25", "-cluster-items", "5", "-target", "0.95"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "cheapest configuration") {
		t.Fatalf("search output: %q", out.String())
	}
	// Impossible target.
	if err := run([]string{"-search", "-sim", "0.0000001", "-target", "0.999", "-max-bands", "2", "-max-rows", "1"}, &out, &errw); err == nil {
		t.Fatal("expected search failure")
	}
}

func TestNothingToDo(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(nil, &out, &errw); err == nil {
		t.Fatal("expected usage error")
	}
	if err := run([]string{"-bands", "0", "-rows", "0"}, &out, &errw); err == nil {
		t.Fatal("expected usage error")
	}
}
