package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestTablesOnly(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run([]string{"-table", "1,2", "-quiet"}, &out, &errw); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "Table I") || !strings.Contains(s, "Table II") {
		t.Fatalf("output: %q", s)
	}
}

func TestSingleFigureTinyScale(t *testing.T) {
	var out, errw bytes.Buffer
	err := run([]string{"-fig", "5", "-scale", "0.005", "-quiet", "-seed", "3"}, &out, &errw)
	if err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"Figure 5", "5a:", "5b:", "K-Modes"} {
		if !strings.Contains(s, want) {
			t.Fatalf("output missing %q", want)
		}
	}
}

func TestErrors(t *testing.T) {
	var out, errw bytes.Buffer
	if err := run(nil, &out, &errw); err == nil {
		t.Fatal("expected usage error")
	}
	if err := run([]string{"-fig", "99", "-quiet"}, &out, &errw); err == nil {
		t.Fatal("expected unknown-figure error")
	}
	if err := run([]string{"-fig", "abc"}, &out, &errw); err == nil {
		t.Fatal("expected flag parse error")
	}
}

func TestIntListFlag(t *testing.T) {
	var l intList
	if err := l.Set("2, 3,4"); err != nil {
		t.Fatal(err)
	}
	if l.String() != "2,3,4" {
		t.Fatalf("intList = %q", l.String())
	}
}
