// Command experiments regenerates the paper's evaluation: Tables I–II
// and Figures 2–10, printing the same rows and series the paper reports.
//
// Workloads are scaled-down replicas by default (-scale 0.05); pass
// -scale 1 for paper-sized runs (hours of CPU). Raw per-iteration series
// can additionally be dumped as CSV with -csv.
//
// Examples:
//
//	experiments -all
//	experiments -fig 2 -scale 0.1
//	experiments -table 1 -table 2
//	experiments -fig 7 -fig 8 -csv out/
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lshcluster/internal/experiments"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

type intList []int

func (l *intList) String() string {
	parts := make([]string, len(*l))
	for i, v := range *l {
		parts[i] = strconv.Itoa(v)
	}
	return strings.Join(parts, ",")
}

func (l *intList) Set(s string) error {
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return err
		}
		*l = append(*l, v)
	}
	return nil
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var figs, tables intList
	fs.Var(&figs, "fig", "figure to regenerate (2–10); repeatable or comma-separated")
	fs.Var(&tables, "table", "table to regenerate (1 or 2); repeatable")
	all := fs.Bool("all", false, "regenerate both tables and all figures")
	scale := fs.Float64("scale", 0.05, "workload scale relative to the paper (1 = paper size)")
	seed := fs.Int64("seed", 1, "random seed")
	maxIter := fs.Int("maxiter", 30, "iteration cap for synthetic figures")
	csvDir := fs.String("csv", "", "directory for raw per-iteration CSV dumps")
	quiet := fs.Bool("quiet", false, "suppress progress logging")
	if err := fs.Parse(args); err != nil {
		return err
	}
	suite := experiments.NewSuite(experiments.Config{
		Scale:         *scale,
		Seed:          *seed,
		MaxIterations: *maxIter,
		Out:           stdout,
		CSVDir:        *csvDir,
		Quiet:         *quiet,
	})
	if *all {
		return suite.All()
	}
	if len(figs) == 0 && len(tables) == 0 {
		return fmt.Errorf("nothing to do: pass -all, -fig or -table (see -h)")
	}
	for _, t := range tables {
		if err := suite.Table(t); err != nil {
			return err
		}
	}
	for _, f := range figs {
		if err := suite.Figure(f); err != nil {
			return err
		}
	}
	return nil
}
