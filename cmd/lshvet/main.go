// Command lshvet is the repo's multichecker: it loads the requested
// packages and runs every analyzer in internal/analysis over them,
// printing findings one per line and exiting non-zero when any exist.
//
// Usage:
//
//	go run ./cmd/lshvet ./...
//	go run ./cmd/lshvet -dir /path/to/module ./internal/... ./cmd/...
//
// The suite (see internal/README.md for the full contracts):
//
//	oraclecheck   Disable*/ScalarKernels toggles reach Config, CLI, tests
//	kernelcheck   hot loops route through internal/kernel
//	ctxpollcheck  per-item driver loops poll Options.Context
//	statscheck    runstats structs and the CSV columns table agree
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"lshcluster/internal/analysis"
	"lshcluster/internal/analysis/ctxpollcheck"
	"lshcluster/internal/analysis/kernelcheck"
	"lshcluster/internal/analysis/oraclecheck"
	"lshcluster/internal/analysis/statscheck"
)

// Suite is every analyzer lshvet runs, in reporting-name order.
var Suite = []*analysis.Analyzer{
	ctxpollcheck.Analyzer,
	kernelcheck.Analyzer,
	oraclecheck.Analyzer,
	statscheck.Analyzer,
}

func main() {
	dir := flag.String("dir", ".", "module directory to analyse")
	list := flag.Bool("list", false, "print the analyzer suite and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: lshvet [-dir module] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		for _, a := range Suite {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	os.Exit(Main(*dir, patterns, os.Stdout, os.Stderr))
}

// Main loads dir's packages matching patterns, runs the suite, writes
// findings to stdout, and returns the process exit code: 0 clean, 1
// findings, 2 load or analysis failure.
func Main(dir string, patterns []string, stdout, stderr io.Writer) int {
	prog, err := analysis.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "lshvet: %v\n", err)
		return 2
	}
	diags, err := analysis.Run(prog, Suite)
	if err != nil {
		fmt.Fprintf(stderr, "lshvet: %v\n", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s\n", d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "lshvet: %d finding(s)\n", len(diags))
		return 1
	}
	return 0
}
