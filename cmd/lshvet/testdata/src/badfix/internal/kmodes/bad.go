// Package kmodes is lshvet's known-bad fixture: it hand-rolls a
// mismatch count, the canonical kernelcheck violation.
package kmodes

// Mismatches counts positions where a and b differ, bypassing the
// kernel on purpose so cmd/lshvet has a guaranteed finding.
func Mismatches(a, b []uint16) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}
