package main

import (
	"bytes"
	"strings"
	"testing"
)

// TestMainFlagsKnownBadFixture locks the gate itself: on a module with
// a seeded kernel violation the multichecker must report it and return
// a non-zero exit code.
func TestMainFlagsKnownBadFixture(t *testing.T) {
	var out, errb bytes.Buffer
	code := Main("testdata/src/badfix", []string{"./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "kernelcheck") ||
		!strings.Contains(out.String(), "mismatch-count") {
		t.Fatalf("findings missing the seeded kernel violation:\n%s", out.String())
	}
}

// TestMainLoadFailure distinguishes "findings" from "could not analyse".
func TestMainLoadFailure(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main("testdata/does-not-exist", []string{"./..."}, &out, &errb); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}

// TestRepoIsClean runs the full suite over the repository itself: the
// tree must stay lshvet-clean, the same gate CI enforces.
func TestRepoIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := Main("../..", []string{"./..."}, &out, &errb); code != 0 {
		t.Fatalf("lshvet is not clean over the repo (exit %d):\n%s%s", code, out.String(), errb.String())
	}
}
