// Package lshcluster accelerates large-scale centroid-based clustering
// with locality sensitive hashing.
//
// It is a from-scratch Go reproduction of McConville, Cao, Liu & Miller,
// "Accelerating Large Scale Centroid-based Clustering with Locality
// Sensitive Hashing" (ICDE 2016): a framework that indexes every item
// once with an LSH scheme and, on each assignment step, compares the item
// only against the clusters of its colliding neighbours — a shortlist
// that is typically orders of magnitude smaller than the full cluster
// set, with a provable bound on the probability of missing the best
// cluster.
//
// Two instantiations ship with the library:
//
//   - MH-K-Modes (the paper's evaluation): categorical data, K-Modes
//     dissimilarity, MinHash banding for Jaccard similarity. Run it with
//     Cluster and a non-nil LSH configuration.
//
//   - SimHash K-Means (the paper's stated further work): dense numeric
//     vectors, squared Euclidean K-Means, random-hyperplane banding.
//     Run it with ClusterNumeric.
//
// Quick start:
//
//	ds, _ := lshcluster.ReadCSV(f)
//	res, err := lshcluster.Cluster(ds, lshcluster.Config{
//		K:   2000,
//		LSH: &lshcluster.Params{Bands: 20, Rows: 5},
//	})
//	// res.Assign[i] is item i's cluster; res.Stats has per-iteration
//	// timings, move counts and shortlist sizes.
//
// Passing a nil LSH runs the exact baseline algorithm, which considers
// every cluster for every item — useful for verifying that acceleration
// preserves quality (the Stats of both runs are directly comparable).
//
// # Incremental hot-path engine
//
// After bootstrap, per-iteration work is proportional to what actually
// changed rather than to the dataset:
//
//   - Both clustering spaces implement the internal IncrementalSpace
//     capability: item moves are folded into per-cluster state as they
//     happen (Huang's frequency-based mode update for K-Modes; running
//     counts with a dirty-cluster refresh for K-Means), and only the
//     clusters whose membership changed have their centroids refreshed
//     at the end of each pass. The per-iteration objective is maintained
//     incrementally too. The incremental path is exact — bit-identical
//     assignments, centroids and costs versus the full-recompute batch
//     path, which is retained as a correctness oracle.
//
//   - The MinHash banding index serves iteration from a frozen layout:
//     flat CSR arrays (offsets + item IDs, with per-item bucket slots
//     resolved up front), so the recurring collision lookups are
//     allocation-free scans of contiguous memory. The index has three
//     construction lifecycles: build-frozen (the batch full-scan
//     bootstrap constructs the frozen layout directly from presigned
//     band keys, never materialising the hash maps),
//     build-map-then-freeze (the seeded bootstrap, whose query/insert
//     interleave needs the mutable builder, compacts it afterwards)
//     and streaming-unfrozen (stream clusterers keep the map-based
//     builder and may insert indefinitely).
//
//   - The bootstrap itself is a parallel pipeline, individually timed
//     per phase (sign → build → assign): signing shards items across
//     Config.Workers goroutines with per-worker scratch into a flat
//     band-key arena; the direct-to-frozen build parallelises across
//     bands, each band an independent shard owning a contiguous
//     bucket-ID range (the groundwork for multi-shard serving); and
//     the exact first assignment shards items like any parallel pass.
//     Results are bit-identical to the serial per-item bootstrap,
//     which Config.DisableParallelBootstrap retains as the
//     correctness oracle; per-phase timings land in
//     Run.BootstrapSign/BootstrapBuild/BootstrapAssign and the stats
//     CSV.
//
//   - Bootstrap signing memoizes per-value MinHash columns when the
//     value dictionary is compact enough to stay cache-resident, so
//     each distinct categorical value is hashed once instead of once
//     per occurrence; the parallel pipeline pre-fills the memo (each
//     column computed exactly once, in parallel), after which all
//     signing workers share it read-only. Streaming clusterers can opt
//     into the same memo (StreamConfig.Memoize).
//
//   - The assignment pass itself is O(active), not O(n): an item is
//     re-evaluated only when its cluster neighbourhood changed — a
//     colliding item moved, or a cluster reachable through its
//     collisions had its centroid updated (cluster-closure-style
//     active-point filtering). The incremental engine reports the
//     changed clusters after each pass and a reverse-collision view
//     over the frozen index expands them into the next pass's active
//     set; late sparse passes typically evaluate a few percent of the
//     items. Results are bit-identical to the full pass, which
//     Config.DisableActiveFilter retains as the correctness oracle.
//
//   - Snapshot-view passes (deferred updates, parallel workers) gather
//     candidate shortlists for blocks of items in one band-major sweep
//     of the frozen index, amortising cache misses and per-item
//     dispatch across the block. Immediate-update passes batch the
//     same way with blocks cut at move boundaries: positions decided
//     before a move saw exactly the live view the per-item loop would
//     have shown them, and positions after a move are discarded and
//     re-gathered, so results stay bit-identical to the per-item
//     oracle (Config.DisableImmediateBatching).
//
// # Item-sharded index
//
// The banding index can be partitioned by item into S independent
// shards (Config.Shards; the default 1 is the unsharded oracle). Each
// shard owns a contiguous global-ID range — shard s holds items
// [s·n/S, (s+1)·n/S), a pure function of n and S — with its own band
// buckets, frozen CSR arrays, key tables and reverse view. Shards
// build concurrently from disjoint slices of the presigned key arena
// (routing is a re-slice, not a scatter), stay individually
// cache-resident where one monolithic table would not, and are
// independently freezable — the unit a future serving layout evicts or
// places on separate machines. The streaming clusterer shards too
// (StreamConfig.Shards), routing item i to shard i mod S so no single
// map builder serialises the stream.
//
// Sharding never changes results. A query planner fans each candidate
// sweep out across shards and merges the shard-local buckets back into
// ascending global-ID order — free concatenation for range shards, an
// S-way merge for stream (stride) shards — and bucket contents are
// kept in ascending ID order as an index invariant, so candidate
// enumeration (and therefore tie-breaking, and therefore every
// assignment) is a function of bucket membership alone, independent of
// the partition. Full runs are bit-identical across shard counts,
// enforced by equivalence tests over both spaces, both bootstrap
// modes, and worker counts. The cost is an explicit, measured fan-out
// tax on queries, reported as Run.CrossShardMerge and the
// crossshard_merge_ms CSV column, alongside the per-shard build
// breakdown (Run.BootstrapBuildShards).
//
// Before the shards are cut, the bulk bootstrap runs a
// locality-reordering stage: items are permuted so that items sharing
// band buckets become contiguous, the range partitioner cuts shards
// over the permuted order, and collisions concentrate in the owning
// shard — shortlist sweeps then scan near-sequential memory instead of
// striding the whole assignment array. The permutation is invisible
// from outside: everything the caller sees stays in original item IDs,
// every tie-break is kept in original-ID order, and results are
// bit-identical to the original-order build, which
// Config.DisableReorder retains as the correctness oracle. See
// internal/README.md, "ID spaces: locality-preserving item
// reordering", for the two-ID-space contract; Run.ReorderTime and
// Run.ShardLocalFrac (reorder_ms, shard_local_frac in the CSV) report
// the stage's cost and effect.
//
// The fan-out tax is paid by one of two mechanisms. By default, once
// every shard is frozen the index materialises foreign-slot arrays —
// for every owner bucket, the matching bucket's span in each foreign
// shard's item array, precomputed at freeze time — so each cross-shard
// resolution is a direct array load straight into the foreign items. Materialisation
// is gated on a byte budget (Config.ForeignSlotBudget; 0 means the
// 64 MiB default, negative means unlimited): over budget, the index
// falls back transparently to probing the other shards' key tables per
// band, the original mechanism, which Config.DisableForeignSlots
// retains as the bit-identical correctness oracle. Both mechanisms
// enumerate the same buckets in the same order; only the lookup cost
// differs. Run.ForeignSlotBytes reports the materialised footprint and
// Run.CrossShardProbes/CrossShardDirect split the resolutions by
// mechanism (foreignslot_bytes and crossshard_probe_frac in the CSV).
//
// # Fault-tolerant shard serving
//
// The sharded index's cross-shard fan-out can be routed through a
// backend interface (internal/lsh's ShardBackend: per-shard key
// resolution, candidate sweeps, block sweeps, reverse spans) instead
// of direct memory access — the seam a networked shard service plugs
// into. The in-process backend is the zero-overhead default and the
// bit-identity oracle. With Config.ChaosSpec set, every backend call
// carries a deadline, failed calls retry under a bounded budget with
// jittered exponential backoff (Config.RetryBudget), straggling calls
// are hedged to a mirror replica after a threshold
// (Config.HedgeAfter; first success wins, the loser is cancelled;
// Config.DisableHedging is the A/B baseline), and a shard that keeps
// failing is held down by a circuit breaker that sheds calls and
// probes for recovery.
//
// Failures degrade, never corrupt: a query that loses shards serves a
// partial shortlist (always a subset of the oracle's), items whose
// own shard is unreachable fall back to exact evaluation, and a
// degraded reverse-collision expansion forces the next pass to run
// full rather than trust an incomplete active set. The accounting
// lands in Run.ShardRetries, ShardTimeouts, HedgedCalls, HedgeWins,
// DegradedItems and SkippedShards (shard_retries … skipped_shards in
// the CSV), and the CLI prints a DEGRADED line whenever a run was
// touched.
//
// Faults are injected by a seeded, deterministic chaos wrapper
// (internal/lsh/serve) scripted by a spec grammar:
// "seed=N;err=P;lat=DUR~JITTER;stall=P:DUR;shardI.dead;shardI.failn=N"
// — bare faults apply to every shard, shardI.-prefixed ones override
// per shard. A zero-fault spec (e.g. "seed=1") exercises the whole
// resilient path bit-identically to the direct fan-out, which the
// equivalence tests pin at every shard count. The same package ships
// a concurrent multi-shard local server (goroutine-isolated shards,
// per-shard in-flight backpressure, straggler accounting) behind the
// CLI's -serve-queries demo. The streaming clusterer takes the same
// spec via StreamConfig.ChaosSpec, counting StreamStats.DegradedQueries.
//
// # Hot-path distance kernels
//
// The innermost distance loops — categorical mismatch counting
// (K-Modes), squared Euclidean distance and dot products (K-Means,
// SimHash signing), and signature Hamming distance — run on unrolled
// kernels in internal/kernel: 8-way unrolled branchless mismatch
// counting, 4-way unrolled floating-point accumulation, and Hamming
// popcount over bit-packed signature words (64 sign bits per uint64,
// counted with bits.OnesCount64). Every kernel has a scalar reference
// twin and
// the floating-point kernels keep a single accumulator in element
// order, so results are bit-identical to the scalar loops — enforced
// by property tests over random lengths (including every tail length)
// and by full-run equivalence under Config.ScalarKernels, which routes
// all spaces and accelerators through the scalar references as the
// correctness oracle.
//
// # Seeded bootstrap semantics
//
// BootstrapSeeded now does what it describes: after the k seeds are
// indexed, every other item queries the growing index with its own
// band keys (presigned, or signed on the spot on the serial oracle
// path) before being inserted, falling back to an exact scan only when
// the shortlist is genuinely empty. Earlier versions queried through
// the inserted-items-only path, so every non-seed shortlist came back
// empty and the exact fallback always ran; seeded-bootstrap
// assignments differ accordingly from those versions (the equivalence
// tests re-baseline, and the serial/parallel and sharded variants
// remain bit-identical to each other).
//
// # Persistent index and warm start
//
// Config.IndexDir makes the accelerator's frozen index durable: a cold
// run signs, builds and saves every frozen shard to
// <dir>/shard-<i>.lshz — a versioned, checksummed section container
// (see internal/README.md for the byte layout) — plus a manifest
// recording the banding, signing seed, shard count, reorder mode and a
// fingerprint of the dataset. A later run with the same configuration
// opens the files instead of rebuilding: the frozen arrays are
// memory-mapped zero-copy by default (pages fault in as iterations
// touch them), or heap-deserialised under Config.DisableMmap, the
// portable oracle — cold, warm-mmap and warm-heap runs are
// bit-identical. Anything stale (different dataset, banding, seed or
// shard count) is rejected with an error, never silently reused. The
// first full-scan assignment is cached next to the index and validated
// by spot recomputation on restore, so a warm start skips signing,
// build and the bootstrap scan entirely. Config.ShardMemoryBudget
// bounds warm-shard residency — shards demote to mapping-only and
// promote back on touch — so a run can execute against an index larger
// than memory. Config.SnapshotEvery checkpoints assignment state every
// N iterations and a restarted run resumes from the last checkpoint
// with final results identical to an uninterrupted run. The CLI wires
// all of this through -save-index, -load-index, -mmap-index,
// -shard-memory-budget and -snapshot-every, and -write-binary /
// -in-binary store the dataset itself in the same mmap-able container.
//
// The cmd/ directory provides datagen (paper-style synthetic workloads),
// lshcluster (clustering CLI), lshtune (banding-parameter exploration,
// Tables I–II), experiments (regenerates every table and figure of
// the paper's evaluation) and lshvet, the repo's own analyzer suite:
// `go run ./cmd/lshvet ./...` mechanically enforces the oracle, kernel
// and context-polling disciplines described above (see
// internal/README.md for the analyzer contracts). See DESIGN.md for
// the architecture and EXPERIMENTS.md for reproduction results.
package lshcluster
