package lshcluster

import (
	"strings"
	"testing"
)

// TestClusterChaosEquivalence is the facade-level resilient-path
// oracle: Config.ChaosSpec with zero faults (with and without hedging)
// must cluster bit-identically to the plain sharded run, and a spec
// with a dead shard must degrade gracefully — run completes, partial
// evaluations counted, skipped shard reported.
func TestClusterChaosEquivalence(t *testing.T) {
	ds := syntheticDataset(t)
	cfg := Config{K: 15, Seed: 2, LSH: &Params{Bands: 10, Rows: 2}, Shards: 3, MaxIterations: 6}
	oracle, err := Cluster(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []struct {
		label string
		mut   func(*Config)
	}{
		{"hedged", func(c *Config) { c.ChaosSpec = "seed=3" }},
		{"no-hedging", func(c *Config) { c.ChaosSpec = "seed=3"; c.DisableHedging = true }},
	} {
		c := cfg
		variant.mut(&c)
		got, err := Cluster(ds, c)
		if err != nil {
			t.Fatal(err)
		}
		for i := range oracle.Assign {
			if oracle.Assign[i] != got.Assign[i] {
				t.Fatalf("%s: assign[%d] = %d, oracle %d", variant.label, i, got.Assign[i], oracle.Assign[i])
			}
		}
		if got.Stats.DegradedItems != 0 || got.Stats.SkippedShards != 0 {
			t.Fatalf("%s: zero-fault chaos degraded the run: %d items, %d shards",
				variant.label, got.Stats.DegradedItems, got.Stats.SkippedShards)
		}
	}

	c := cfg
	c.ChaosSpec = "seed=1;err=0.05;shard1.dead"
	degraded, err := Cluster(ds, c)
	if err != nil {
		t.Fatal(err)
	}
	if degraded.Stats.DegradedItems == 0 || degraded.Stats.SkippedShards < 1 {
		t.Fatalf("dead-shard run not accounted: %d degraded items, %d skipped shards",
			degraded.Stats.DegradedItems, degraded.Stats.SkippedShards)
	}
	if len(degraded.Assign) != ds.NumItems() {
		t.Fatal("degraded run dropped assignments")
	}

	if _, err := Cluster(ds, Config{
		K: 15, Seed: 2, LSH: &Params{Bands: 10, Rows: 2}, Shards: 2, ChaosSpec: "bogus=1",
	}); err == nil || !strings.Contains(err.Error(), "invalid chaos spec") {
		t.Fatalf("invalid spec: err = %v", err)
	}
}
