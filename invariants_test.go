package lshcluster

// Cross-module property-based tests (testing/quick) of the invariants
// DESIGN.md §7 commits to. Each property generates randomised workloads
// end to end — dataset → index → driver — rather than exercising a
// single package.

import (
	"math"
	"testing"
	"testing/quick"

	"lshcluster/internal/core"
	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/minhash"
)

// workloadFromRand maps quick's random bytes onto a small but varied
// clustering workload.
func workloadFromRand(nRaw, kRaw, mRaw, seedRaw uint8) (*dataset.Dataset, int, int64) {
	n := 60 + int(nRaw)%140 // 60–199 items
	k := 3 + int(kRaw)%12   // 3–14 clusters
	m := 6 + int(mRaw)%18   // 6–23 attributes
	seed := int64(seedRaw) + 1
	ds, err := datagen.Generate(datagen.Config{
		Items: n, Clusters: k, Attrs: m, Domain: 200,
		MinRuleFrac: 0.5, MaxRuleFrac: 0.9, Seed: seed,
	})
	if err != nil {
		panic(err)
	}
	return ds, k, seed
}

// Property: after any accelerated run, every item's shortlist contains
// its assigned cluster (the self-collision guarantee the error bound
// relies on), and the assignment is a valid cluster index.
func TestPropertyShortlistSelfContainment(t *testing.T) {
	check := func(nRaw, kRaw, mRaw, seedRaw, bRaw, rRaw uint8) bool {
		ds, k, seed := workloadFromRand(nRaw, kRaw, mRaw, seedRaw)
		params := lsh.Params{Bands: 1 + int(bRaw)%24, Rows: 1 + int(rRaw)%6}
		accel, err := core.NewMinHashAccelerator(ds, params, uint64(seed))
		if err != nil {
			return false
		}
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		res, err := core.Run(space, core.Options{Accelerator: accel, MaxIterations: 6})
		if err != nil {
			return false
		}
		q := accel.NewQuerier()
		// The bulk bootstrap builds the index locality-reordered, so
		// query views must be indexed in internal-ID space.
		view := res.Assign
		if perm, _ := accel.ReorderMap(); perm != nil {
			view = make([]int32, len(res.Assign))
			for i, c := range res.Assign {
				view[perm[i]] = c
			}
		}
		for i := 0; i < ds.NumItems(); i++ {
			c := res.Assign[i]
			if c < 0 || int(c) >= k {
				return false
			}
			found := false
			for _, cand := range q.Candidates(int32(i), view) {
				if cand == c {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: the exact driver's objective never increases across
// iterations, for any workload and any K.
func TestPropertyExactCostMonotone(t *testing.T) {
	check := func(nRaw, kRaw, mRaw, seedRaw uint8) bool {
		ds, k, seed := workloadFromRand(nRaw, kRaw, mRaw, seedRaw)
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		res, err := core.Run(space, core.Options{MaxIterations: 10})
		if err != nil {
			return false
		}
		prev := math.Inf(1)
		for _, it := range res.Stats.Iterations {
			if it.Cost > prev {
				return false
			}
			prev = it.Cost
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: a converged run is a fixed point — rerunning the driver from
// the converged modes and assignment produces zero moves in its first
// iteration. Verified through the public API by re-running with
// MaxIterations large enough to converge, then predicting with the model:
// every item's predicted cluster distance equals its assigned distance.
func TestPropertyConvergedAssignmentsAreNearest(t *testing.T) {
	check := func(nRaw, kRaw, mRaw, seedRaw uint8) bool {
		ds, k, seed := workloadFromRand(nRaw, kRaw, mRaw, seedRaw)
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: seed})
		if err != nil {
			return false
		}
		res, err := core.Run(space, core.Options{MaxIterations: 50})
		if err != nil || !res.Stats.Converged {
			return false
		}
		model := space.Model()
		for i := 0; i < ds.NumItems(); i++ {
			_, bestD := model.Predict(ds.Row(i))
			assignedD := dataset.Mismatches(ds.Row(i), model.Mode(int(res.Assign[i])))
			// The assigned cluster must be no worse than the global
			// nearest (ties allowed: Predict breaks ties by index, the
			// driver by current cluster).
			if assignedD != bestD {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: the MinHash per-position agreement of two dataset rows is an
// estimate of their tagged Jaccard similarity — across random rows of
// random datasets, with a 512-hash scheme the estimate stays within 5
// standard errors of the exact value.
func TestPropertyMinHashEstimatesDatasetJaccard(t *testing.T) {
	scheme := minhash.NewScheme(512, 99)
	sigA := make([]uint64, 512)
	sigB := make([]uint64, 512)
	check := func(nRaw, kRaw, mRaw, seedRaw, iRaw, jRaw uint8) bool {
		ds, _, _ := workloadFromRand(nRaw, kRaw, mRaw, seedRaw)
		i := int(iRaw) % ds.NumItems()
		j := int(jRaw) % ds.NumItems()
		trueJ := ds.Jaccard(i, j)
		scheme.Sign(ds.PresentValues(i, nil), sigA)
		scheme.Sign(ds.PresentValues(j, nil), sigB)
		est := minhash.EstimateJaccard(sigA, sigB)
		se := math.Sqrt(trueJ*(1-trueJ)/512) + 1e-9
		return math.Abs(est-trueJ) <= 5*se+0.02
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: purity of any run lies in (0, 1], and the exact and
// full-shortlist-accelerated drivers agree assignment-for-assignment
// (the "accelerator with perfect recall changes nothing" equivalence).
func TestPropertyPerfectRecallEquivalence(t *testing.T) {
	check := func(nRaw, kRaw, mRaw, seedRaw uint8) bool {
		ds, k, seed := workloadFromRand(nRaw, kRaw, mRaw, seedRaw)
		mk := func() *kmodes.Space {
			s, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: seed})
			if err != nil {
				panic(err)
			}
			return s
		}
		exact, err := core.Run(mk(), core.Options{MaxIterations: 8})
		if err != nil {
			return false
		}
		full, err := core.Run(mk(), core.Options{
			Accelerator:   &fullRecallAccel{},
			MaxIterations: 8,
		})
		if err != nil {
			return false
		}
		for i := range exact.Assign {
			if exact.Assign[i] != full.Assign[i] {
				return false
			}
		}
		p, err := Purity(exact.Assign, ds.Labels())
		if err != nil {
			return false
		}
		return p > 0 && p <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// fullRecallAccel returns every cluster for every item.
type fullRecallAccel struct {
	buf []int32
}

func (a *fullRecallAccel) Reset(k int) error {
	a.buf = make([]int32, k)
	for i := range a.buf {
		a.buf[i] = int32(i)
	}
	return nil
}
func (a *fullRecallAccel) Insert(int32) error { return nil }
func (a *fullRecallAccel) NewQuerier() core.Querier {
	return fullRecallQuerier{buf: a.buf}
}

type fullRecallQuerier struct{ buf []int32 }

func (q fullRecallQuerier) Candidates(int32, []int32) []int32 { return q.buf }
