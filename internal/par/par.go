// Package par holds the one concurrency shape the parallel bootstrap
// pipeline is built from: sharding a contiguous index range across a
// fixed set of worker goroutines. Centralising it keeps the shard
// arithmetic (and any future change: chunking, panic propagation,
// cancellation polling) in one place instead of once per call site.
package par

import "sync"

// Ranges invokes fn(lo, hi) for a partition of [0, n) into at most
// workers contiguous, non-empty shards. With workers < 2 (or n < 2)
// the single shard runs on the calling goroutine; otherwise every
// shard runs on its own goroutine and Ranges returns after all
// complete. fn must confine its writes to the shard it was given.
func Ranges(n, workers int, fn func(lo, hi int)) {
	if workers > n {
		workers = n
	}
	if workers < 2 {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		lo, hi := g*n/workers, (g+1)*n/workers
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}
