package yahoogen

import (
	"strconv"
	"strings"
	"testing"
)

func smallCfg() Config {
	return Config{Topics: 12, QuestionsPerTopic: 20, Seed: 5}
}

func TestGenerateShape(t *testing.T) {
	c, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Questions) != 12*20 {
		t.Fatalf("%d questions, want 240", len(c.Questions))
	}
	if len(c.TopicNames) != 12 {
		t.Fatalf("%d topic names", len(c.TopicNames))
	}
	for i, q := range c.Questions {
		if q.Topic < 0 || int(q.Topic) >= 12 {
			t.Fatalf("question %d topic %d out of range", i, q.Topic)
		}
		if len(q.Tokens) < 8 || len(q.Tokens) > 30 {
			t.Fatalf("question %d has %d tokens, want [8,30]", i, len(q.Tokens))
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Questions {
		if strings.Join(a.Questions[i].Tokens, " ") != strings.Join(b.Questions[i].Tokens, " ") {
			t.Fatalf("question %d differs across identically seeded runs", i)
		}
	}
}

func TestTopicWordsBelongToContentTopic(t *testing.T) {
	c, err := Generate(smallCfg()) // MislabelProb 0 → content topic = label
	if err != nil {
		t.Fatal(err)
	}
	for i, q := range c.Questions {
		prefix := "t" + itoa(int(q.Topic)) + "w"
		for _, tok := range q.Tokens {
			if strings.HasPrefix(tok, "t") && !strings.HasPrefix(tok, prefix) && !strings.HasPrefix(tok, "common") {
				t.Fatalf("question %d (topic %d) contains foreign keyword %q", i, q.Topic, tok)
			}
		}
	}
}

func itoa(n int) string { return strconv.Itoa(n) }

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Topics: 1, QuestionsPerTopic: 5},
		{Topics: 3, QuestionsPerTopic: 0},
		{Topics: 3, QuestionsPerTopic: 5, MinWords: 10, MaxWords: 5},
		{Topics: 3, QuestionsPerTopic: 5, TopicWordProb: 1.5},
		{Topics: 3, QuestionsPerTopic: 5, MislabelProb: 1.0},
	}
	for i, c := range bad {
		if _, err := Generate(c); err == nil {
			t.Errorf("case %d: Generate(%+v) succeeded, want error", i, c)
		}
	}
}

func TestBuildDataset(t *testing.T) {
	c, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	ds, vocab, err := c.BuildDataset(PipelineConfig{Threshold: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumItems() != len(c.Questions) {
		t.Fatalf("dataset has %d items, want %d", ds.NumItems(), len(c.Questions))
	}
	if ds.NumAttrs() != vocab.Size() {
		t.Fatalf("attrs %d != vocab %d", ds.NumAttrs(), vocab.Size())
	}
	if !ds.Labeled() {
		t.Fatal("dataset must carry topic ground truth")
	}
	// The vocabulary should be dominated by topical words, not
	// background chatter.
	topical := 0
	for _, w := range vocab.Words() {
		if strings.HasPrefix(w, "t") && strings.Contains(w, "w") {
			topical++
		}
	}
	if frac := float64(topical) / float64(vocab.Size()); frac < 0.8 {
		t.Fatalf("only %.0f%% of vocabulary is topical", frac*100)
	}
	// Feature vectors must be sparse: far fewer present values than
	// attributes.
	totalPresent := 0
	for i := 0; i < ds.NumItems(); i++ {
		totalPresent += len(ds.PresentValues(i, nil))
	}
	meanPresent := float64(totalPresent) / float64(ds.NumItems())
	if meanPresent >= float64(ds.NumAttrs())/4 {
		t.Fatalf("items not sparse: %.1f present of %d attrs", meanPresent, ds.NumAttrs())
	}
}

func TestThresholdControlsWidth(t *testing.T) {
	c, err := Generate(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	dsHigh, _, err := c.BuildDataset(PipelineConfig{Threshold: 0.7})
	if err != nil {
		t.Fatal(err)
	}
	dsLow, _, err := c.BuildDataset(PipelineConfig{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	// Lowering the threshold widens the vocabulary (paper: 382 attrs at
	// 0.7 → 2 881 at 0.3).
	if dsLow.NumAttrs() <= dsHigh.NumAttrs() {
		t.Fatalf("threshold 0.2 gave %d attrs, 0.7 gave %d — expected growth",
			dsLow.NumAttrs(), dsHigh.NumAttrs())
	}
}

func TestMislabelNoiseKeepsLabels(t *testing.T) {
	cfg := smallCfg()
	cfg.MislabelProb = 0.3
	c, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Labels are still one block per topic.
	perTopic := map[int32]int{}
	for _, q := range c.Questions {
		perTopic[q.Topic]++
	}
	for tpc, n := range perTopic {
		if n != 20 {
			t.Fatalf("topic %d has %d questions, want 20", tpc, n)
		}
	}
	// But some questions now carry foreign keywords.
	foreign := 0
	for _, q := range c.Questions {
		prefix := "t" + itoa(int(q.Topic)) + "w"
		for _, tok := range q.Tokens {
			if strings.HasPrefix(tok, "t") && !strings.HasPrefix(tok, "common") &&
				!strings.HasPrefix(tok, prefix) {
				foreign++
				break
			}
		}
	}
	if foreign == 0 {
		t.Fatal("MislabelProb 0.3 produced no mislabelled content")
	}
}
