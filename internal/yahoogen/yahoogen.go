// Package yahoogen generates a topic-labelled question corpus standing in
// for the Yahoo! Answers Webscope L6 dataset used in the paper's §IV-B
// (the real dataset is distributed under a research license and cannot be
// bundled). The generator reproduces the statistical properties that
// experiment exercises:
//
//   - thousands of fine-grained topics, each contributing up to a fixed
//     number of questions (the paper samples ≤ 100 questions from each of
//     2 916 topics);
//   - each topic owning a small Zipf-distributed keyword vocabulary
//     ("zoologist", "zoo", …) that its questions draw from;
//   - a large shared background vocabulary (function words, generic
//     chatter) that dominates raw token counts and must be suppressed by
//     TF-IDF for clustering to work, mirroring the paper's observation
//     that purity was poor without the TF-IDF step;
//   - noisy ground truth: a configurable fraction of questions is drawn
//     from the *wrong* topic's vocabulary, modelling the user-editable
//     topic labels the paper calls out as a purity ceiling.
//
// The output feeds the identical pipeline the paper uses: tokenise →
// per-topic TF-IDF → threshold vocabulary → binary word-presence items.
package yahoogen

import (
	"fmt"
	"math/rand"

	"lshcluster/internal/dataset"
	"lshcluster/internal/textproc"
)

// Config describes a synthetic Q&A corpus.
type Config struct {
	// Topics is the number of distinct topics (paper: 2 916).
	Topics int
	// QuestionsPerTopic is how many questions each topic contributes
	// (paper: up to 100).
	QuestionsPerTopic int
	// KeywordsPerTopic is the size of each topic's private keyword
	// vocabulary. Zero defaults to 30.
	KeywordsPerTopic int
	// KeywordsPerQuestion is the size of each question's keyword
	// support: a question covers one *aspect* of its topic, drawing its
	// topical tokens uniformly from a Zipf-weighted subset of this size.
	// This keeps questions within a topic diverse (as real questions
	// are) instead of near-identical. Zero defaults to 4.
	KeywordsPerQuestion int
	// BackgroundWords is the size of the shared background vocabulary.
	// Zero defaults to 400.
	BackgroundWords int
	// MinWords and MaxWords bound question length in tokens. Zero values
	// default to 8 and 30.
	MinWords, MaxWords int
	// TopicWordProb is the probability that a token is drawn from the
	// topic's keywords rather than the background. Zero defaults to
	// 0.45.
	TopicWordProb float64
	// MislabelProb is the probability a question's *content* comes from
	// another topic while keeping its original label — simulating user
	// mislabelling. Zero means clean labels.
	MislabelProb float64
	// MislabelNeighbors bounds how far a mislabelled question's content
	// topic strays: content is drawn from topics label+1 … label+N
	// (cyclically). Users confuse *similar* topics, so pollution stays
	// concentrated — which also keeps topical words rare across topics,
	// as in the real corpus. Zero defaults to 1.
	MislabelNeighbors int
	// Seed makes generation deterministic.
	Seed int64
}

func (c Config) withDefaults() (Config, error) {
	if c.Topics < 2 {
		return c, fmt.Errorf("yahoogen: Topics must be ≥ 2, got %d", c.Topics)
	}
	if c.QuestionsPerTopic < 1 {
		return c, fmt.Errorf("yahoogen: QuestionsPerTopic must be ≥ 1, got %d", c.QuestionsPerTopic)
	}
	if c.KeywordsPerTopic == 0 {
		c.KeywordsPerTopic = 30
	}
	if c.KeywordsPerQuestion == 0 {
		c.KeywordsPerQuestion = 4
	}
	if c.KeywordsPerQuestion < 1 || c.KeywordsPerQuestion > c.KeywordsPerTopic {
		return c, fmt.Errorf("yahoogen: KeywordsPerQuestion %d outside [1,%d]",
			c.KeywordsPerQuestion, c.KeywordsPerTopic)
	}
	if c.BackgroundWords == 0 {
		c.BackgroundWords = 400
	}
	if c.MinWords == 0 {
		c.MinWords = 8
	}
	if c.MaxWords == 0 {
		c.MaxWords = 30
	}
	if c.MinWords < 1 || c.MaxWords < c.MinWords {
		return c, fmt.Errorf("yahoogen: word bounds [%d,%d] invalid", c.MinWords, c.MaxWords)
	}
	if c.TopicWordProb == 0 {
		c.TopicWordProb = 0.45
	}
	if c.MislabelNeighbors == 0 {
		c.MislabelNeighbors = 1
	}
	if c.MislabelNeighbors < 0 || c.MislabelNeighbors >= c.Topics {
		return c, fmt.Errorf("yahoogen: MislabelNeighbors %d outside [0,%d)", c.MislabelNeighbors, c.Topics)
	}
	if c.TopicWordProb < 0 || c.TopicWordProb > 1 {
		return c, fmt.Errorf("yahoogen: TopicWordProb %v outside [0,1]", c.TopicWordProb)
	}
	if c.MislabelProb < 0 || c.MislabelProb >= 1 {
		return c, fmt.Errorf("yahoogen: MislabelProb %v outside [0,1)", c.MislabelProb)
	}
	return c, nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// Question is one generated item: its tokens and ground-truth topic.
type Question struct {
	Tokens []string
	Topic  int32
}

// Corpus is a generated question collection.
type Corpus struct {
	Questions  []Question
	TopicNames []string
	cfg        Config
}

// Config returns the (defaulted) generation parameters.
func (c *Corpus) Config() Config { return c.cfg }

// Generate builds the corpus.
func Generate(cfg Config) (*Corpus, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(full.Seed))
	// Zipf samplers: s=1.3 gives a realistic skew; imax is inclusive.
	topicZipf := rand.NewZipf(rng, 1.3, 1, uint64(full.KeywordsPerTopic-1))
	bgZipf := rand.NewZipf(rng, 1.2, 1, uint64(full.BackgroundWords-1))

	corpus := &Corpus{
		TopicNames: make([]string, full.Topics),
		Questions:  make([]Question, 0, full.Topics*full.QuestionsPerTopic),
		cfg:        full,
	}
	for t := 0; t < full.Topics; t++ {
		corpus.TopicNames[t] = fmt.Sprintf("topic%04d", t)
	}
	support := make([]int, 0, full.KeywordsPerQuestion)
	for t := 0; t < full.Topics; t++ {
		for q := 0; q < full.QuestionsPerTopic; q++ {
			contentTopic := t
			if full.MislabelProb > 0 && rng.Float64() < full.MislabelProb {
				contentTopic = (t + 1 + rng.Intn(full.MislabelNeighbors)) % full.Topics
			}
			// Draw the question's keyword support: distinct Zipf-weighted
			// keyword indices of its content topic.
			support := support[:0]
			for len(support) < full.KeywordsPerQuestion {
				kw := int(topicZipf.Uint64())
				if !containsInt(support, kw) {
					support = append(support, kw)
				}
			}
			length := full.MinWords + rng.Intn(full.MaxWords-full.MinWords+1)
			tokens := make([]string, length)
			for i := range tokens {
				if rng.Float64() < full.TopicWordProb {
					kw := support[rng.Intn(len(support))]
					tokens[i] = fmt.Sprintf("t%dw%d", contentTopic, kw)
				} else {
					tokens[i] = fmt.Sprintf("common%d", bgZipf.Uint64())
				}
			}
			corpus.Questions = append(corpus.Questions, Question{
				Tokens: tokens,
				Topic:  int32(t),
			})
		}
	}
	return corpus, nil
}

// PipelineConfig parameterises the corpus→dataset conversion.
type PipelineConfig struct {
	// Threshold is the TF-IDF vocabulary threshold (paper: 0.7 or 0.3).
	Threshold float64
	// MaxWordsPerTopic caps each topic's vocabulary contribution
	// (paper: 10 000). 0 means unlimited.
	MaxWordsPerTopic int
}

// BuildDataset runs the paper's pipeline over the corpus: score words per
// topic with TF-IDF, select the vocabulary at the threshold, and emit the
// binary word-presence dataset with topic ground truth.
func (c *Corpus) BuildDataset(pc PipelineConfig) (*dataset.Dataset, *textproc.Vocabulary, error) {
	scorer := textproc.NewScorer()
	byTopic := make([][]string, len(c.TopicNames))
	for _, q := range c.Questions {
		byTopic[q.Topic] = append(byTopic[q.Topic], q.Tokens...)
	}
	for t, tokens := range byTopic {
		scorer.AddTopic(c.TopicNames[t], tokens)
	}
	vocab, err := scorer.SelectVocabulary(textproc.VocabConfig{
		Threshold:        pc.Threshold,
		MaxWordsPerTopic: pc.MaxWordsPerTopic,
		Stopwords:        textproc.DefaultStopwords(),
	})
	if err != nil {
		return nil, nil, err
	}
	docs := make([]textproc.Document, len(c.Questions))
	for i, q := range c.Questions {
		docs[i] = textproc.Document{Tokens: q.Tokens, Label: q.Topic}
	}
	ds, err := textproc.BuildBinaryDataset(docs, vocab)
	if err != nil {
		return nil, nil, err
	}
	return ds, vocab, nil
}
