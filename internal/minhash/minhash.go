// Package minhash implements min-wise independent permutation signatures
// (Broder 1997), the LSH family for Jaccard similarity adopted by the
// paper (§III-A2, Algorithm 1 "SIGGEN").
//
// A Scheme holds n seeded hash functions h_1 … h_n. The signature of a set
// S is the vector (min_{x∈S} h_1(x), …, min_{x∈S} h_n(x)). For two sets
// X and Y, P[sig_i(X) = sig_i(Y)] equals their Jaccard similarity, so the
// fraction of agreeing signature positions is an unbiased estimator of
// J(X,Y).
package minhash

import (
	"math"

	"lshcluster/internal/hashfamily"
)

// EmptySlot is the signature value assigned to every position when the
// input set is empty (Algorithm 1 line 2 initialises each slot to ∞).
const EmptySlot = math.MaxUint64

// Scheme is an immutable, seeded MinHash signature generator. It is safe
// for concurrent use.
type Scheme struct {
	fam *hashfamily.Family
}

// NewScheme returns a scheme producing signatures of length numHashes,
// derived deterministically from seed.
func NewScheme(numHashes int, seed uint64) *Scheme {
	return &Scheme{fam: hashfamily.New(numHashes, seed)}
}

// SignatureLen returns the number of hash functions (signature positions).
func (s *Scheme) SignatureLen() int { return s.fam.Size() }

// Sign computes the MinHash signature of set into dst and returns dst.
// dst must have length SignatureLen. set is an unordered collection of
// element identifiers (already filtered to present values, per
// Algorithm 2 lines 1–5); duplicates are harmless. An empty set yields
// EmptySlot in every position.
//
// This is Algorithm 1 of the paper: for every element, every hash
// function is evaluated and the per-function minimum retained.
func (s *Scheme) Sign(set []uint64, dst []uint64) []uint64 {
	if len(dst) != s.fam.Size() {
		panic("minhash: Sign dst length mismatch")
	}
	for i := range dst {
		dst[i] = EmptySlot
	}
	funcs := s.fam.Funcs()
	for _, x := range set {
		// Inline Func.Hash over all functions with x reduced once.
		xr := x % hashfamily.MersennePrime61
		for i, f := range funcs {
			h := hashfamily.AddMod61(hashfamily.MulMod61(f.A, xr), f.B)
			if h < dst[i] {
				dst[i] = h
			}
		}
	}
	return dst
}

// Signature allocates and returns the signature of set.
func (s *Scheme) Signature(set []uint64) []uint64 {
	return s.Sign(set, make([]uint64, s.SignatureLen()))
}

// EstimateJaccard returns the fraction of positions on which the two
// signatures agree — the MinHash estimate of the Jaccard similarity of
// the underlying sets. Both signatures must come from the same Scheme and
// have equal length.
func EstimateJaccard(a, b []uint64) float64 {
	if len(a) != len(b) {
		panic("minhash: signatures of different lengths")
	}
	if len(a) == 0 {
		return 0
	}
	eq := 0
	for i := range a {
		if a[i] == b[i] {
			eq++
		}
	}
	return float64(eq) / float64(len(a))
}
