package minhash

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSignatureDeterministic(t *testing.T) {
	s1 := NewScheme(64, 42)
	s2 := NewScheme(64, 42)
	set := []uint64{3, 1, 4, 1, 5, 9, 2, 6}
	a := s1.Signature(set)
	b := s2.Signature(set)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("position %d differs across identically seeded schemes", i)
		}
	}
	s3 := NewScheme(64, 43)
	c := s3.Signature(set)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical signatures")
	}
}

func TestSignatureOrderInvariant(t *testing.T) {
	s := NewScheme(32, 7)
	check := func(elems []uint64, swapA, swapB uint8) bool {
		if len(elems) < 2 {
			return true
		}
		perm := append([]uint64(nil), elems...)
		i := int(swapA) % len(perm)
		j := int(swapB) % len(perm)
		perm[i], perm[j] = perm[j], perm[i]
		a := s.Signature(elems)
		b := s.Signature(perm)
		for k := range a {
			if a[k] != b[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSignatureDuplicatesIgnored(t *testing.T) {
	s := NewScheme(16, 1)
	a := s.Signature([]uint64{1, 2, 3})
	b := s.Signature([]uint64{1, 1, 2, 2, 3, 3, 3})
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("duplicates changed the signature")
		}
	}
}

func TestEmptySetSignature(t *testing.T) {
	s := NewScheme(8, 5)
	sig := s.Signature(nil)
	for i, v := range sig {
		if v != uint64(EmptySlot) {
			t.Fatalf("empty-set signature[%d] = %d, want EmptySlot", i, v)
		}
	}
}

func TestIdenticalSetsFullAgreement(t *testing.T) {
	s := NewScheme(128, 3)
	set := []uint64{10, 20, 30, 40}
	if est := EstimateJaccard(s.Signature(set), s.Signature(set)); est != 1 {
		t.Fatalf("estimate for identical sets = %v, want 1", est)
	}
}

func TestDisjointSetsLowAgreement(t *testing.T) {
	s := NewScheme(256, 9)
	a := make([]uint64, 50)
	b := make([]uint64, 50)
	for i := range a {
		a[i] = uint64(i)
		b[i] = uint64(i + 1000)
	}
	if est := EstimateJaccard(s.Signature(a), s.Signature(b)); est > 0.05 {
		t.Fatalf("estimate for disjoint sets = %v, want ≈ 0", est)
	}
}

// TestEstimatorAccuracy builds random set pairs with a known Jaccard
// similarity and checks the MinHash estimate converges to it. With 512
// hash functions the standard error is sqrt(J(1−J)/512) ≤ 0.023, so a
// 0.08 tolerance gives ≈ 3.5 sigma headroom.
func TestEstimatorAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	s := NewScheme(512, 2024)
	for _, shared := range []int{10, 30, 50, 80} {
		const total = 100 // |A| = |B| = 100, |A∩B| = shared
		a := make([]uint64, 0, total)
		b := make([]uint64, 0, total)
		base := rng.Uint64() >> 1
		for i := 0; i < shared; i++ {
			v := base + uint64(i)
			a = append(a, v)
			b = append(b, v)
		}
		for i := 0; i < total-shared; i++ {
			a = append(a, base+uint64(10_000+i))
			b = append(b, base+uint64(20_000+i))
		}
		trueJ := float64(shared) / float64(2*total-shared)
		est := EstimateJaccard(s.Signature(a), s.Signature(b))
		if math.Abs(est-trueJ) > 0.08 {
			t.Errorf("shared=%d: estimate %.3f, true %.3f", shared, est, trueJ)
		}
	}
}

// TestPerPositionAgreementMatchesJaccard verifies the core MinHash
// property across many independent schemes: a single position agrees with
// probability ≈ J.
func TestPerPositionAgreementMatchesJaccard(t *testing.T) {
	a := []uint64{1, 2, 3, 4, 5, 6}
	b := []uint64{4, 5, 6, 7, 8, 9}
	trueJ := 3.0 / 9.0
	const schemes = 200
	agree, total := 0, 0
	for seed := uint64(0); seed < schemes; seed++ {
		s := NewScheme(8, seed)
		sa, sb := s.Signature(a), s.Signature(b)
		for i := range sa {
			if sa[i] == sb[i] {
				agree++
			}
			total++
		}
	}
	got := float64(agree) / float64(total)
	// 1600 Bernoulli trials, sd ≈ 0.012; allow 4 sigma.
	if math.Abs(got-trueJ) > 0.05 {
		t.Fatalf("per-position agreement %.3f, want ≈ %.3f", got, trueJ)
	}
}

func TestSubsetMonotonicity(t *testing.T) {
	// J(A, A∪B) ≥ J(A, A∪B∪C): adding noise cannot raise the estimate
	// much; check estimates are ordered within tolerance.
	s := NewScheme(512, 77)
	base := []uint64{1, 2, 3, 4, 5, 6, 7, 8}
	small := append(append([]uint64{}, base...), 100, 101)
	big := append(append([]uint64{}, small...), 200, 201, 202, 203, 204, 205, 206, 207)
	estSmall := EstimateJaccard(s.Signature(base), s.Signature(small))
	estBig := EstimateJaccard(s.Signature(base), s.Signature(big))
	if estBig > estSmall+0.05 {
		t.Fatalf("estimate grew when union grew: %v vs %v", estBig, estSmall)
	}
}

func TestSignLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dst length")
		}
	}()
	NewScheme(4, 0).Sign([]uint64{1}, make([]uint64, 3))
}

func TestEstimateLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for mismatched signature lengths")
		}
	}()
	EstimateJaccard(make([]uint64, 2), make([]uint64, 3))
}

func TestEstimateEmpty(t *testing.T) {
	if EstimateJaccard(nil, nil) != 0 {
		t.Fatal("estimate of zero-length signatures should be 0")
	}
}

func BenchmarkSign100Elems100Hashes(b *testing.B) {
	s := NewScheme(100, 1)
	set := make([]uint64, 100)
	for i := range set {
		set[i] = uint64(i) * 2654435761
	}
	dst := make([]uint64, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Sign(set, dst)
	}
}
