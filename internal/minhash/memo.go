package minhash

// Memo caches the per-element hash column (h_1(x) … h_n(x)) of a
// Scheme. Categorical datasets repeat the same interned value across
// many items, so during bootstrap indexing each distinct value's column
// can be computed once and every later occurrence reduced to an
// element-wise min over the cached column — compares instead of
// multiply-mod hashing. Signatures are bit-identical to Scheme.Sign.
//
// Columns are stored in a slice indexed by element ID, which interned
// dataset values keep dense; IDs beyond memoLimit are hashed directly
// without caching so a pathological sparse ID cannot balloon memory.
//
// A Memo is NOT safe for concurrent use (it mutates its cache); create
// one per signing goroutine.
type Memo struct {
	scheme *Scheme
	cols   [][]uint64
	// arena slab-allocates columns (arenaCols at a time) so memoising a
	// large dictionary does not cost one heap allocation per value.
	arena []uint64
}

// arenaCols is how many columns each arena slab holds.
const arenaCols = 256

// memoLimit caps the memo table length; elements with IDs at or above
// it are hashed directly on every occurrence.
const memoLimit = 1 << 26

// NewMemo returns an empty memo over the scheme. capacityHint pre-sizes
// the table for the largest expected element ID (e.g. the dataset's max
// interned value + 1); it may be 0.
func (s *Scheme) NewMemo(capacityHint int) *Memo {
	if capacityHint < 0 {
		capacityHint = 0
	}
	if capacityHint > memoLimit {
		capacityHint = memoLimit
	}
	return &Memo{scheme: s, cols: make([][]uint64, capacityHint)}
}

// Sign computes the MinHash signature of set into dst and returns dst,
// exactly as Scheme.Sign would, memoizing each distinct element's hash
// column along the way.
func (m *Memo) Sign(set []uint64, dst []uint64) []uint64 {
	if len(dst) != m.scheme.SignatureLen() {
		panic("minhash: Sign dst length mismatch")
	}
	for i := range dst {
		dst[i] = EmptySlot
	}
	for _, x := range set {
		col := m.col(x)
		for i, h := range col {
			if h < dst[i] {
				dst[i] = h
			}
		}
	}
	return dst
}

// col returns the cached hash column for x, computing it on first use.
func (m *Memo) col(x uint64) []uint64 {
	if x < uint64(len(m.cols)) {
		if c := m.cols[x]; c != nil {
			return c
		}
	} else if x < memoLimit {
		// Double on growth so ascending IDs stay amortised O(1).
		newLen := 2 * len(m.cols)
		if newLen < int(x)+1 {
			newLen = int(x) + 1
		}
		if newLen > memoLimit {
			newLen = memoLimit
		}
		grown := make([][]uint64, newLen)
		copy(grown, m.cols)
		m.cols = grown
	} else {
		// Out-of-range ID: hash without caching.
		return m.scheme.fam.HashAll(x, make([]uint64, m.scheme.SignatureLen()))
	}
	c := m.scheme.fam.HashAll(x, m.newCol())
	m.cols[x] = c
	return c
}

// newCol carves one column out of the current arena slab.
func (m *Memo) newCol() []uint64 {
	n := m.scheme.SignatureLen()
	if len(m.arena) < n {
		m.arena = make([]uint64, arenaCols*n)
	}
	c := m.arena[:n:n]
	m.arena = m.arena[n:]
	return c
}
