package minhash

import "lshcluster/internal/par"

// Memo caches the per-element hash column (h_1(x) … h_n(x)) of a
// Scheme. Categorical datasets repeat the same interned value across
// many items, so during bootstrap indexing each distinct value's column
// can be computed once and every later occurrence reduced to an
// element-wise min over the cached column — compares instead of
// multiply-mod hashing. Signatures are bit-identical to Scheme.Sign.
//
// Columns are stored in a slice indexed by element ID, which interned
// dataset values keep dense; IDs beyond memoLimit are hashed directly
// without caching so a pathological sparse ID cannot balloon memory.
//
// A Memo is NOT safe for concurrent use (it mutates its cache); create
// one per signing goroutine — or Fill it first, after which Sign is
// read-only (and therefore safe to share across goroutines) for
// element IDs inside the filled table.
type Memo struct {
	scheme *Scheme
	cols   [][]uint64
	// arena slab-allocates columns (arenaCols at a time) so memoising a
	// large dictionary does not cost one heap allocation per value.
	arena []uint64
}

// arenaCols is how many columns each arena slab holds.
const arenaCols = 256

// memoLimit caps the memo table length; elements with IDs at or above
// it are hashed directly on every occurrence.
const memoLimit = 1 << 26

// NewMemo returns an empty memo over the scheme. capacityHint pre-sizes
// the table for the largest expected element ID (e.g. the dataset's max
// interned value + 1); it may be 0.
func (s *Scheme) NewMemo(capacityHint int) *Memo {
	if capacityHint < 0 {
		capacityHint = 0
	}
	if capacityHint > memoLimit {
		capacityHint = memoLimit
	}
	return &Memo{scheme: s, cols: make([][]uint64, capacityHint)}
}

// Fill precomputes every column of the memo table ([0, Len)), sharding
// the work across workers goroutines with per-worker arena slabs. Each
// column is computed exactly once — the same total hashing work a
// serial warm-up would do, divided by workers.
//
// After Fill, Sign never mutates the memo as long as every element ID
// it encounters is below Len, making it safe for concurrent use by
// parallel signing workers (the table was sized from the dataset's
// maximum interned value, so dataset signing qualifies). An
// out-of-table ID degrades safely for IDs ≥ the growth limit (hashed
// directly, no mutation) but must not occur below it.
func (m *Memo) Fill(workers int) {
	if workers < 2 {
		for x := 0; x < len(m.cols); x++ {
			if m.cols[x] == nil {
				m.cols[x] = m.scheme.fam.HashAll(uint64(x), m.newCol())
			}
		}
		return
	}
	sigLen := m.scheme.SignatureLen()
	par.Ranges(len(m.cols), workers, func(lo, hi int) {
		// Workers write disjoint cols entries and carve columns from a
		// private slab, never from the shared arena.
		missing := 0
		for x := lo; x < hi; x++ {
			if m.cols[x] == nil {
				missing++
			}
		}
		slab := make([]uint64, missing*sigLen)
		for x := lo; x < hi; x++ {
			if m.cols[x] != nil {
				continue
			}
			col := slab[:sigLen:sigLen]
			slab = slab[sigLen:]
			m.cols[x] = m.scheme.fam.HashAll(uint64(x), col)
		}
	})
}

// Len returns the memo table length: the exclusive upper bound on
// element IDs that Fill precomputes and that a filled memo can sign
// without mutation.
func (m *Memo) Len() int { return len(m.cols) }

// Sign computes the MinHash signature of set into dst and returns dst,
// exactly as Scheme.Sign would, memoizing each distinct element's hash
// column along the way.
func (m *Memo) Sign(set []uint64, dst []uint64) []uint64 {
	if len(dst) != m.scheme.SignatureLen() {
		panic("minhash: Sign dst length mismatch")
	}
	for i := range dst {
		dst[i] = EmptySlot
	}
	for _, x := range set {
		col := m.col(x)
		for i, h := range col {
			if h < dst[i] {
				dst[i] = h
			}
		}
	}
	return dst
}

// col returns the cached hash column for x, computing it on first use.
func (m *Memo) col(x uint64) []uint64 {
	if x < uint64(len(m.cols)) {
		if c := m.cols[x]; c != nil {
			return c
		}
	} else if x < memoLimit {
		// Double on growth so ascending IDs stay amortised O(1).
		newLen := 2 * len(m.cols)
		if newLen < int(x)+1 {
			newLen = int(x) + 1
		}
		if newLen > memoLimit {
			newLen = memoLimit
		}
		grown := make([][]uint64, newLen)
		copy(grown, m.cols)
		m.cols = grown
	} else {
		// Out-of-range ID: hash without caching.
		return m.scheme.fam.HashAll(x, make([]uint64, m.scheme.SignatureLen()))
	}
	c := m.scheme.fam.HashAll(x, m.newCol())
	m.cols[x] = c
	return c
}

// newCol carves one column out of the current arena slab.
func (m *Memo) newCol() []uint64 {
	n := m.scheme.SignatureLen()
	if len(m.arena) < n {
		m.arena = make([]uint64, arenaCols*n)
	}
	c := m.arena[:n:n]
	m.arena = m.arena[n:]
	return c
}
