package minhash

import (
	"fmt"
	"math/rand"
	"testing"
)

// TestMemoSignMatchesScheme pins the memo's contract: bit-identical
// signatures to Scheme.Sign for arbitrary sets, across repeated use of
// one memo (warm and cold columns).
func TestMemoSignMatchesScheme(t *testing.T) {
	s := NewScheme(40, 1234)
	memo := s.NewMemo(64)
	rng := rand.New(rand.NewSource(5))
	got := make([]uint64, s.SignatureLen())
	want := make([]uint64, s.SignatureLen())
	for trial := 0; trial < 200; trial++ {
		set := make([]uint64, rng.Intn(20))
		for i := range set {
			// Mix small IDs (memoised, heavily repeated) with IDs past
			// the capacity hint (forces table growth).
			if rng.Intn(2) == 0 {
				set[i] = uint64(rng.Intn(30))
			} else {
				set[i] = uint64(rng.Intn(5000))
			}
		}
		memo.Sign(set, got)
		s.Sign(set, want)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d position %d: memo %d, scheme %d", trial, i, got[i], want[i])
			}
		}
	}
}

func TestMemoSignEmptySet(t *testing.T) {
	s := NewScheme(8, 9)
	memo := s.NewMemo(0)
	dst := make([]uint64, 8)
	memo.Sign(nil, dst)
	for i, v := range dst {
		if v != EmptySlot {
			t.Fatalf("empty-set signature[%d] = %d, want EmptySlot", i, v)
		}
	}
}

func TestMemoHugeIDsUncached(t *testing.T) {
	s := NewScheme(16, 77)
	memo := s.NewMemo(16)
	set := []uint64{1 << 40, 1 << 50, 3}
	got := make([]uint64, 16)
	want := make([]uint64, 16)
	memo.Sign(set, got)
	s.Sign(set, want)
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("position %d: memo %d, scheme %d", i, got[i], want[i])
		}
	}
	if len(memo.cols) >= 1<<30 {
		t.Fatalf("memo table ballooned to %d entries", len(memo.cols))
	}
}

// TestMemoFillMatchesScheme pins Fill's contract: every precomputed
// column yields signatures bit-identical to Scheme.Sign, whether the
// fill ran serially or sharded, and whether some columns were already
// warm.
func TestMemoFillMatchesScheme(t *testing.T) {
	s := NewScheme(24, 7)
	for _, workers := range []int{1, 4} {
		memo := s.NewMemo(50)
		memo.Sign([]uint64{3, 9}, make([]uint64, s.SignatureLen())) // warm a couple of columns
		memo.Fill(workers)
		if memo.Len() != 50 {
			t.Fatalf("Len = %d, want 50", memo.Len())
		}
		got := make([]uint64, s.SignatureLen())
		want := make([]uint64, s.SignatureLen())
		for x := uint64(0); x < 50; x++ {
			memo.Sign([]uint64{x}, got)
			s.Sign([]uint64{x}, want)
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("workers=%d value %d position %d: memo %d, scheme %d",
						workers, x, i, got[i], want[i])
				}
			}
		}
	}
}

// TestMemoFillConcurrentSign exercises the read-only-after-Fill
// guarantee under the race detector: many goroutines signing in-table
// IDs through one shared filled memo.
func TestMemoFillConcurrentSign(t *testing.T) {
	s := NewScheme(16, 3)
	memo := s.NewMemo(32)
	memo.Fill(4)
	want := s.Signature([]uint64{1, 5, 30})
	done := make(chan error, 8)
	for g := 0; g < 8; g++ {
		go func() {
			sig := make([]uint64, s.SignatureLen())
			for trial := 0; trial < 100; trial++ {
				memo.Sign([]uint64{1, 5, 30}, sig)
				for i := range sig {
					if sig[i] != want[i] {
						done <- fmt.Errorf("position %d: %d != %d", i, sig[i], want[i])
						return
					}
				}
			}
			done <- nil
		}()
	}
	for g := 0; g < 8; g++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
