// Package kernel holds the innermost distance loops of the hot paths —
// categorical mismatch counting, K-Means squared distance, SimHash dot
// products and Hamming distance — in two forms each: an optimised
// kernel (8-way unrolled, branchless, or bit-packed) and a plain scalar
// reference carrying the Scalar suffix.
//
// The scalar references are the oracles. Every optimised kernel is
// value-identical to its reference — not merely close:
//
//   - The integer kernels (Mismatches, MismatchesBounded, Hamming)
//     count; counting is order-free, so unrolling cannot change the
//     result. MismatchesBounded additionally reproduces the reference's
//     early-exit return value exactly (see its comment).
//   - The floating-point kernels (SquaredDistance, Dot) unroll the
//     loads and the subtract/multiply work but keep a single
//     accumulator updated in the reference's element order, so the
//     rounding sequence — and therefore the bits of the result — is
//     unchanged. Do not "optimise" them into multiple accumulators:
//     that reorders the additions and breaks the full-run bit-identity
//     the equivalence tests pin (core.Options.ScalarKernels runs the
//     references as the oracle).
//
// The property/fuzz tests in this package enforce exact equality on
// random inputs covering every tail remainder; the full-run tests in
// internal/core enforce it end to end.
package kernel

import "math/bits"

// Mismatches counts the positions at which x and y differ. Both slices
// must have the same length (callers enforce this; the kernel indexes y
// by x's length). 8-way unrolled and branchless: each comparison
// becomes two or three ALU ops instead of a data-dependent branch, so
// throughput no longer depends on how predictable the mismatch pattern
// is.
//
//lshvet:noescape
func Mismatches[E ~uint32](x, y []E) int {
	n := len(x)
	d := 0
	i := 0
	for ; i+8 <= n; i += 8 {
		y8 := y[i : i+8 : i+8]
		x8 := x[i : i+8 : i+8]
		d += ne(x8[0], y8[0]) + ne(x8[1], y8[1]) + ne(x8[2], y8[2]) + ne(x8[3], y8[3]) +
			ne(x8[4], y8[4]) + ne(x8[5], y8[5]) + ne(x8[6], y8[6]) + ne(x8[7], y8[7])
	}
	for ; i < n; i++ {
		d += ne(x[i], y[i])
	}
	return d
}

// ne returns 1 when a ≠ b, else 0, without a branch: the XOR is
// non-zero exactly when the values differ, and (v | -v) has its top bit
// set exactly when v is non-zero.
func ne[E ~uint32](a, b E) int {
	v := uint32(a ^ b)
	return int((v | -v) >> 31)
}

// MismatchesScalar is the scalar reference for Mismatches.
//
//lshvet:noescape
func MismatchesScalar[E ~uint32](x, y []E) int {
	d := 0
	for i := range x {
		if x[i] != y[i] {
			d++
		}
	}
	return d
}

// MismatchesBounded counts mismatches but returns early with a value ≥
// bound as soon as the count reaches bound. The return value is
// exactly MismatchesBoundedScalar's: the reference increments one
// mismatch at a time and returns the moment the count reaches bound,
// so an early exit always returns max(bound, 1) — which is what the
// unrolled kernel returns when a whole 8-wide block pushes the count
// past the bound mid-block. (The d ≥ 1 guard covers bound ≤ 0, where
// the reference still scans until the first mismatch.)
//
//lshvet:noescape
func MismatchesBounded[E ~uint32](x, y []E, bound int) int {
	n := len(x)
	d := 0
	i := 0
	for ; i+8 <= n; i += 8 {
		y8 := y[i : i+8 : i+8]
		x8 := x[i : i+8 : i+8]
		d += ne(x8[0], y8[0]) + ne(x8[1], y8[1]) + ne(x8[2], y8[2]) + ne(x8[3], y8[3]) +
			ne(x8[4], y8[4]) + ne(x8[5], y8[5]) + ne(x8[6], y8[6]) + ne(x8[7], y8[7])
		if d >= bound && d >= 1 {
			if bound < 1 {
				return 1
			}
			return bound
		}
	}
	for ; i < n; i++ {
		if x[i] != y[i] {
			d++
			if d >= bound {
				return d
			}
		}
	}
	return d
}

// MismatchesBoundedScalar is the scalar reference for MismatchesBounded.
//
//lshvet:noescape
func MismatchesBoundedScalar[E ~uint32](x, y []E, bound int) int {
	d := 0
	for i := range x {
		if x[i] != y[i] {
			d++
			if d >= bound {
				return d
			}
		}
	}
	return d
}

// SquaredDistance returns the squared Euclidean distance between x and
// y. Both slices must have the same length. The loop is 4-way unrolled
// with a single accumulator updated in element order, so the result is
// bit-identical to SquaredDistanceScalar's.
//
//lshvet:noescape
func SquaredDistance(x, y []float64) float64 {
	n := len(x)
	var sum float64
	i := 0
	for ; i+4 <= n; i += 4 {
		y4 := y[i : i+4 : i+4]
		x4 := x[i : i+4 : i+4]
		d0 := x4[0] - y4[0]
		d1 := x4[1] - y4[1]
		d2 := x4[2] - y4[2]
		d3 := x4[3] - y4[3]
		sum += d0 * d0
		sum += d1 * d1
		sum += d2 * d2
		sum += d3 * d3
	}
	for ; i < n; i++ {
		d := x[i] - y[i]
		sum += d * d
	}
	return sum
}

// SquaredDistanceScalar is the scalar reference for SquaredDistance.
//
//lshvet:noescape
func SquaredDistanceScalar(x, y []float64) float64 {
	var sum float64
	for i := range x {
		d := x[i] - y[i]
		sum += d * d
	}
	return sum
}

// SquaredDistanceBounded accumulates the squared distance but returns
// as soon as the partial sum reaches bound (the sum is monotone in the
// coordinates). The bound is checked once per 4-wide block, so an early
// exit may return a later — therefore larger — partial sum than the
// reference's per-element exit; both are ≥ bound, which is the only
// property bounded-distance callers may rely on (the driver discards
// any result ≥ bound unseen). When no early exit happens the result is
// the full sum, bit-identical to the reference.
//
//lshvet:noescape
func SquaredDistanceBounded(x, y []float64, bound float64) float64 {
	n := len(x)
	var sum float64
	i := 0
	for ; i+4 <= n; i += 4 {
		y4 := y[i : i+4 : i+4]
		x4 := x[i : i+4 : i+4]
		d0 := x4[0] - y4[0]
		d1 := x4[1] - y4[1]
		d2 := x4[2] - y4[2]
		d3 := x4[3] - y4[3]
		sum += d0 * d0
		sum += d1 * d1
		sum += d2 * d2
		sum += d3 * d3
		if sum >= bound {
			return sum
		}
	}
	for ; i < n; i++ {
		d := x[i] - y[i]
		sum += d * d
		if sum >= bound {
			return sum
		}
	}
	return sum
}

// SquaredDistanceBoundedScalar is the scalar reference for
// SquaredDistanceBounded.
//
//lshvet:noescape
func SquaredDistanceBoundedScalar(x, y []float64, bound float64) float64 {
	var sum float64
	for i := range x {
		d := x[i] - y[i]
		sum += d * d
		if sum >= bound {
			return sum
		}
	}
	return sum
}

// Dot returns the inner product of x and y, 4-way unrolled with a
// single accumulator in element order — bit-identical to DotScalar.
// SimHash signing reduces to this (one dot per hyperplane), so the
// sign bits — and every signature-derived structure — are unchanged by
// the unroll.
//
//lshvet:noescape
func Dot(x, y []float64) float64 {
	n := len(x)
	var sum float64
	i := 0
	for ; i+4 <= n; i += 4 {
		y4 := y[i : i+4 : i+4]
		x4 := x[i : i+4 : i+4]
		sum += x4[0] * y4[0]
		sum += x4[1] * y4[1]
		sum += x4[2] * y4[2]
		sum += x4[3] * y4[3]
	}
	for ; i < n; i++ {
		sum += x[i] * y[i]
	}
	return sum
}

// DotScalar is the scalar reference for Dot.
//
//lshvet:noescape
func DotScalar(x, y []float64) float64 {
	var sum float64
	for i := range x {
		sum += x[i] * y[i]
	}
	return sum
}

// PackBits packs a signature stored one bit per uint64 word (each 0 or
// 1, the banding index's row-value format) into dst, 64 bits per word,
// bit i of word w holding sig[w·64+i]. dst is grown as needed and the
// packed prefix returned; PackedWords gives its length up front.
func PackBits(sig []uint64, dst []uint64) []uint64 {
	words := PackedWords(len(sig))
	if cap(dst) < words {
		dst = make([]uint64, words)
	}
	dst = dst[:words]
	for w := range dst {
		var v uint64
		lo := w * 64
		hi := lo + 64
		if hi > len(sig) {
			hi = len(sig)
		}
		for i, bit := range sig[lo:hi] {
			v |= (bit & 1) << uint(i)
		}
		dst[w] = v
	}
	return dst
}

// PackedWords returns the number of uint64 words a packed signature of
// nbits bits occupies.
func PackedWords(nbits int) int { return (nbits + 63) / 64 }

// Hamming returns the number of differing bits between two packed
// signatures (equal length), one XOR + popcount per 64 bits.
//
//lshvet:noescape
func Hamming(a, b []uint64) int {
	n := len(a)
	d := 0
	for i := 0; i < n; i++ {
		d += bits.OnesCount64(a[i] ^ b[i])
	}
	return d
}

// HammingScalar is the scalar reference for Hamming over the *unpacked*
// one-bit-per-word representation: it counts positions where the 0/1
// words differ, which equals Hamming over the packed forms of the same
// signatures.
//
//lshvet:noescape
func HammingScalar(a, b []uint64) int {
	d := 0
	for i := range a {
		if a[i]&1 != b[i]&1 {
			d++
		}
	}
	return d
}
