package kernel

import (
	"math/rand"
	"testing"
)

// Kernel micro-benchmarks: each optimised kernel against its scalar
// reference, at the short row lengths the clustering hot paths use
// (m ≈ 24 categorical attributes, dim ≈ 32 numeric, 100-bit SimHash
// signatures) and one longer length for headroom. CI runs these and
// uploads bench-kernels.txt; the Kernel/Scalar ratio is the measured
// win the ROADMAP records.

const (
	benchShort = 24
	benchLong  = 256
)

func benchPair(n int) (x, y []uint32) {
	rng := rand.New(rand.NewSource(11))
	x = make([]uint32, n)
	y = make([]uint32, n)
	for i := range x {
		x[i] = rng.Uint32() % 64
		if rng.Float64() < 0.5 {
			y[i] = x[i]
		} else {
			y[i] = rng.Uint32() % 64
		}
	}
	return x, y
}

var sinkInt int
var sinkFloat float64

func benchMismatches(b *testing.B, n int, fn func(x, y []uint32) int) {
	x, y := benchPair(n)
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = fn(x, y)
	}
}

func BenchmarkMismatchesScalar24(b *testing.B) {
	benchMismatches(b, benchShort, MismatchesScalar[uint32])
}
func BenchmarkMismatchesKernel24(b *testing.B) {
	benchMismatches(b, benchShort, Mismatches[uint32])
}
func BenchmarkMismatchesScalar256(b *testing.B) {
	benchMismatches(b, benchLong, MismatchesScalar[uint32])
}
func BenchmarkMismatchesKernel256(b *testing.B) {
	benchMismatches(b, benchLong, Mismatches[uint32])
}

func benchMismatchesBounded(b *testing.B, n int, fn func(x, y []uint32, bound int) int) {
	x, y := benchPair(n)
	b.SetBytes(int64(n * 4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A bound above the true count: the no-early-exit case the
		// best-so-far loop hits on every new winner.
		sinkInt = fn(x, y, n+1)
	}
}

func BenchmarkMismatchesBoundedScalar24(b *testing.B) {
	benchMismatchesBounded(b, benchShort, MismatchesBoundedScalar[uint32])
}
func BenchmarkMismatchesBoundedKernel24(b *testing.B) {
	benchMismatchesBounded(b, benchShort, MismatchesBounded[uint32])
}

func benchVecs(n int) (x, y []float64) {
	rng := rand.New(rand.NewSource(12))
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	return x, y
}

func benchFloat(b *testing.B, n int, fn func(x, y []float64) float64) {
	x, y := benchVecs(n)
	b.SetBytes(int64(n * 8))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = fn(x, y)
	}
}

func BenchmarkSquaredDistanceScalar32(b *testing.B) {
	benchFloat(b, 32, SquaredDistanceScalar)
}
func BenchmarkSquaredDistanceKernel32(b *testing.B) {
	benchFloat(b, 32, SquaredDistance)
}
func BenchmarkSquaredDistanceScalar256(b *testing.B) {
	benchFloat(b, benchLong, SquaredDistanceScalar)
}
func BenchmarkSquaredDistanceKernel256(b *testing.B) {
	benchFloat(b, benchLong, SquaredDistance)
}

func BenchmarkDotScalar32(b *testing.B)  { benchFloat(b, 32, DotScalar) }
func BenchmarkDotKernel32(b *testing.B)  { benchFloat(b, 32, Dot) }
func BenchmarkDotScalar256(b *testing.B) { benchFloat(b, benchLong, DotScalar) }
func BenchmarkDotKernel256(b *testing.B) { benchFloat(b, benchLong, Dot) }

// The Hamming pair: the scalar baseline compares the unpacked
// one-bit-per-word signatures (the index's row-value format); the
// kernel runs XOR+popcount over the packed form. Packing is a one-off
// cost paid at signature creation, so it is excluded here.
func BenchmarkHammingScalar100(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x := make([]uint64, 100)
	y := make([]uint64, 100)
	for i := range x {
		x[i] = uint64(rng.Intn(2))
		y[i] = uint64(rng.Intn(2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = HammingScalar(x, y)
	}
}

func BenchmarkHammingPacked100(b *testing.B) {
	rng := rand.New(rand.NewSource(13))
	x := make([]uint64, 100)
	y := make([]uint64, 100)
	for i := range x {
		x[i] = uint64(rng.Intn(2))
		y[i] = uint64(rng.Intn(2))
	}
	px := PackBits(x, nil)
	py := PackBits(y, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkInt = Hamming(px, py)
	}
}
