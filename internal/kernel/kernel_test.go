package kernel

import (
	"math"
	"math/rand"
	"testing"
)

// randPair produces two length-n uint32 slices where each position
// mismatches with probability p — exercising all-match, all-mismatch
// and mixed patterns.
func randPair(rng *rand.Rand, n int, p float64) (x, y []uint32) {
	x = make([]uint32, n)
	y = make([]uint32, n)
	for i := range x {
		x[i] = rng.Uint32() % 16
		if rng.Float64() < p {
			y[i] = x[i] + 1 + rng.Uint32()%8
		} else {
			y[i] = x[i]
		}
	}
	return x, y
}

// lengths covers the empty slice, every tail remainder 1–7, exact
// block multiples and longer mixed cases.
var lengths = []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 11, 15, 16, 17, 23, 24, 31, 32, 63, 64, 100, 257}

// TestMismatchesMatchesScalar pins the unrolled kernel to the scalar
// reference on random inputs across every tail remainder.
func TestMismatchesMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range lengths {
		for _, p := range []float64{0, 0.1, 0.5, 0.9, 1} {
			for trial := 0; trial < 20; trial++ {
				x, y := randPair(rng, n, p)
				want := MismatchesScalar(x, y)
				if got := Mismatches(x, y); got != want {
					t.Fatalf("Mismatches(n=%d, p=%v) = %d, scalar %d", n, p, got, want)
				}
			}
		}
	}
}

// TestMismatchesBoundedMatchesScalar pins the bounded kernel's return
// value — including its early-exit value — exactly to the reference,
// for bounds below, at and above the true count, and bounds ≤ 0.
func TestMismatchesBoundedMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range lengths {
		for _, p := range []float64{0, 0.3, 1} {
			for trial := 0; trial < 20; trial++ {
				x, y := randPair(rng, n, p)
				total := MismatchesScalar(x, y)
				for _, bound := range []int{-1, 0, 1, 2, total - 1, total, total + 1, n, n + 5} {
					want := MismatchesBoundedScalar(x, y, bound)
					if got := MismatchesBounded(x, y, bound); got != want {
						t.Fatalf("MismatchesBounded(n=%d, total=%d, bound=%d) = %d, scalar %d",
							n, total, bound, got, want)
					}
				}
			}
		}
	}
}

func randVecs(rng *rand.Rand, n int) (x, y []float64) {
	x = make([]float64, n)
	y = make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
		y[i] = rng.NormFloat64()
	}
	return x, y
}

// TestSquaredDistanceBitIdentical pins the unrolled squared distance to
// the scalar reference bit for bit: the single-accumulator unroll must
// preserve the rounding sequence, not merely the approximate value.
func TestSquaredDistanceBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range lengths {
		for trial := 0; trial < 20; trial++ {
			x, y := randVecs(rng, n)
			want := SquaredDistanceScalar(x, y)
			got := SquaredDistance(x, y)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("SquaredDistance(n=%d) = %x, scalar %x", n,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestSquaredDistanceBoundedContract checks the bounded kernel against
// the contract bounded-distance callers rely on: results below the
// bound are the exact (bit-identical) full distance, and the kernel
// reaches the bound exactly when the reference does.
func TestSquaredDistanceBoundedContract(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, n := range lengths {
		for trial := 0; trial < 20; trial++ {
			x, y := randVecs(rng, n)
			full := SquaredDistanceScalar(x, y)
			for _, bound := range []float64{0, full * 0.25, full * 0.99, full, full + 1, math.Inf(1)} {
				want := SquaredDistanceBoundedScalar(x, y, bound)
				got := SquaredDistanceBounded(x, y, bound)
				if (got >= bound) != (want >= bound) {
					t.Fatalf("SquaredDistanceBounded(n=%d, bound=%v): kernel %v, scalar %v disagree on reaching the bound",
						n, bound, got, want)
				}
				if want < bound && math.Float64bits(got) != math.Float64bits(want) {
					t.Fatalf("SquaredDistanceBounded(n=%d, bound=%v) = %x below bound, scalar %x",
						n, bound, math.Float64bits(got), math.Float64bits(want))
				}
			}
		}
	}
}

// TestDotBitIdentical pins the unrolled dot product to the scalar
// reference bit for bit — SimHash sign bits depend on it.
func TestDotBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, n := range lengths {
		for trial := 0; trial < 20; trial++ {
			x, y := randVecs(rng, n)
			want := DotScalar(x, y)
			got := Dot(x, y)
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("Dot(n=%d) = %x, scalar %x", n,
					math.Float64bits(got), math.Float64bits(want))
			}
		}
	}
}

// TestPackBitsHamming packs random 0/1 signatures and checks the packed
// popcount Hamming against the scalar per-word comparison, including
// signature lengths that leave a partial final word.
func TestPackBitsHamming(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	var bufA, bufB []uint64
	for _, n := range lengths {
		for trial := 0; trial < 20; trial++ {
			a := make([]uint64, n)
			b := make([]uint64, n)
			for i := range a {
				a[i] = uint64(rng.Intn(2))
				b[i] = uint64(rng.Intn(2))
			}
			want := HammingScalar(a, b)
			bufA = PackBits(a, bufA)
			bufB = PackBits(b, bufB)
			if len(bufA) != PackedWords(n) {
				t.Fatalf("PackBits(n=%d) returned %d words, want %d", n, len(bufA), PackedWords(n))
			}
			if got := Hamming(bufA, bufB); got != want {
				t.Fatalf("Hamming(n=%d) = %d, scalar %d", n, got, want)
			}
		}
	}
}

// FuzzMismatches cross-checks both mismatch kernels against their
// references on arbitrary byte-derived inputs, covering every length
// remainder and arbitrary bounds.
func FuzzMismatches(f *testing.F) {
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{1, 2, 0, 4, 0, 6, 7, 0, 9}, 3)
	f.Add([]byte{}, []byte{}, 0)
	f.Add([]byte{7}, []byte{9}, -2)
	f.Fuzz(func(t *testing.T, xb, yb []byte, bound int) {
		n := len(xb)
		if len(yb) < n {
			n = len(yb)
		}
		x := make([]uint32, n)
		y := make([]uint32, n)
		for i := 0; i < n; i++ {
			x[i] = uint32(xb[i])
			y[i] = uint32(yb[i])
		}
		if got, want := Mismatches(x, y), MismatchesScalar(x, y); got != want {
			t.Fatalf("Mismatches = %d, scalar %d", got, want)
		}
		if got, want := MismatchesBounded(x, y, bound), MismatchesBoundedScalar(x, y, bound); got != want {
			t.Fatalf("MismatchesBounded(bound=%d) = %d, scalar %d", bound, got, want)
		}
	})
}

// FuzzHamming cross-checks the packed Hamming kernel on arbitrary
// byte-derived sign sequences.
func FuzzHamming(f *testing.F) {
	f.Add([]byte{0, 1, 1, 0, 1}, []byte{1, 1, 0, 0, 1})
	f.Add([]byte{}, []byte{})
	f.Fuzz(func(t *testing.T, ab, bb []byte) {
		n := len(ab)
		if len(bb) < n {
			n = len(bb)
		}
		a := make([]uint64, n)
		b := make([]uint64, n)
		for i := 0; i < n; i++ {
			a[i] = uint64(ab[i] & 1)
			b[i] = uint64(bb[i] & 1)
		}
		want := HammingScalar(a, b)
		if got := Hamming(PackBits(a, nil), PackBits(b, nil)); got != want {
			t.Fatalf("Hamming = %d, scalar %d", got, want)
		}
	})
}
