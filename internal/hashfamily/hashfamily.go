// Package hashfamily provides seeded families of universal hash functions
// of the form h(x) = (a·x + b) mod p, with p the Mersenne prime 2^61−1.
//
// The MinHash scheme of Broder (1997), which the paper adopts (§III-A2),
// simulates random permutations of the characteristic matrix rows with
// exactly this kind of hash function: "the random permutations of the
// matrix can be simulated by the use of n randomly chosen hash functions".
// A multiply-add family modulo a large prime is pairwise independent,
// which is sufficient for the min-wise estimates the framework relies on.
//
// All arithmetic is performed in uint64 with an explicit 128-bit
// intermediate product, so results are exact and reproducible across
// platforms for a given seed.
package hashfamily

import "math/bits"

// MersennePrime61 is 2^61 − 1, the modulus of every function in a Family.
const MersennePrime61 uint64 = (1 << 61) - 1

// SplitMix64 is a tiny deterministic PRNG (Steele, Lea & Flood 2014) used
// to derive hash-function coefficients from a seed. It is intentionally
// self-contained so that signatures are stable across Go releases.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a generator seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next 64-bit value in the sequence.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Mix64 applies the SplitMix64 finaliser to x. It is a fast 64-bit mixer
// with full avalanche, used to combine band rows into bucket keys.
func Mix64(x uint64) uint64 {
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// mod61 reduces x (< 2^62) modulo 2^61−1.
func mod61(x uint64) uint64 {
	x = (x & MersennePrime61) + (x >> 61)
	if x >= MersennePrime61 {
		x -= MersennePrime61
	}
	return x
}

// MulMod61 returns (a·b) mod (2^61−1) exactly, for any uint64 inputs
// already reduced below the prime.
func MulMod61(a, b uint64) uint64 {
	hi, lo := bits.Mul64(a, b)
	// a, b < 2^61 so the product is < 2^122 and hi < 2^58: the shifted
	// fold below cannot overflow. 2^61 ≡ 1 (mod p) so z mod p is
	// (z & p) + (z >> 61), folded once more by mod61.
	part := (hi << 3) | (lo >> 61)
	return mod61((lo & MersennePrime61) + mod61(part))
}

// AddMod61 returns (a + b) mod (2^61−1) for inputs below the prime.
func AddMod61(a, b uint64) uint64 {
	s := a + b // a, b < 2^61 so no uint64 overflow.
	if s >= MersennePrime61 {
		s -= MersennePrime61
	}
	return s
}

// Func is a single universal hash function h(x) = (A·x + B) mod 2^61−1.
// The zero value is the identity-to-B constant function and is not useful;
// obtain Funcs from a Family.
type Func struct {
	// A is the multiplier, in [1, p−1].
	A uint64
	// B is the offset, in [0, p−1].
	B uint64
}

// Hash evaluates the function at x. x is first reduced modulo the prime,
// so any uint64 input is legal.
func (f Func) Hash(x uint64) uint64 {
	return AddMod61(MulMod61(f.A, mod61(x)), f.B)
}

// Family is an ordered, seeded collection of n independent hash functions.
// It is immutable after construction and safe for concurrent use.
type Family struct {
	funcs []Func
}

// New returns a family of n hash functions derived deterministically from
// seed. Two families built with the same (n, seed) are identical.
func New(n int, seed uint64) *Family {
	if n < 0 {
		n = 0
	}
	gen := NewSplitMix64(seed)
	funcs := make([]Func, n)
	for i := range funcs {
		a := gen.Next() % (MersennePrime61 - 1)
		funcs[i] = Func{
			A: a + 1, // never zero
			B: gen.Next() % MersennePrime61,
		}
	}
	return &Family{funcs: funcs}
}

// Size returns the number of functions in the family.
func (fam *Family) Size() int { return len(fam.funcs) }

// At returns the i-th function. It panics if i is out of range, matching
// slice-indexing semantics.
func (fam *Family) At(i int) Func { return fam.funcs[i] }

// Funcs returns the underlying functions. The returned slice must not be
// modified.
func (fam *Family) Funcs() []Func { return fam.funcs }

// HashAll evaluates every function in the family at x, storing the results
// in dst, which must have length Size. It returns dst.
//
// This is the hot path of signature generation: the per-function
// composition (reduce, multiply, add) is inlined into a single loop.
func (fam *Family) HashAll(x uint64, dst []uint64) []uint64 {
	if len(dst) != len(fam.funcs) {
		panic("hashfamily: HashAll dst length mismatch")
	}
	xr := mod61(x)
	for i, f := range fam.funcs {
		dst[i] = AddMod61(MulMod61(f.A, xr), f.B)
	}
	return dst
}
