package hashfamily

import (
	"math/big"
	"testing"
	"testing/quick"
)

func TestMulMod61AgainstBig(t *testing.T) {
	p := new(big.Int).SetUint64(MersennePrime61)
	check := func(a, b uint64) bool {
		a %= MersennePrime61
		b %= MersennePrime61
		got := MulMod61(a, b)
		want := new(big.Int).Mul(new(big.Int).SetUint64(a), new(big.Int).SetUint64(b))
		want.Mod(want, p)
		return got == want.Uint64()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestMulMod61Edges(t *testing.T) {
	p := MersennePrime61
	cases := []struct {
		a, b, want uint64
	}{
		{0, 0, 0},
		{1, 1, 1},
		{p - 1, 1, p - 1},
		{p - 1, p - 1, 1}, // (−1)·(−1) ≡ 1
		{2, p - 1, p - 2}, // 2·(−1) ≡ −2
	}
	for _, c := range cases {
		if got := MulMod61(c.a, c.b); got != c.want {
			t.Errorf("MulMod61(%d,%d) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestAddMod61(t *testing.T) {
	p := MersennePrime61
	if got := AddMod61(p-1, 1); got != 0 {
		t.Errorf("AddMod61(p-1,1) = %d, want 0", got)
	}
	if got := AddMod61(p-1, p-1); got != p-2 {
		t.Errorf("AddMod61(p-1,p-1) = %d, want %d", got, p-2)
	}
	if got := AddMod61(0, 0); got != 0 {
		t.Errorf("AddMod61(0,0) = %d, want 0", got)
	}
}

func TestFuncHashInRange(t *testing.T) {
	fam := New(16, 42)
	check := func(x uint64, i uint8) bool {
		f := fam.At(int(i) % fam.Size())
		return f.Hash(x) < MersennePrime61
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFamilyDeterminism(t *testing.T) {
	a := New(32, 7)
	b := New(32, 7)
	for i := 0; i < 32; i++ {
		if a.At(i) != b.At(i) {
			t.Fatalf("function %d differs across identically seeded families", i)
		}
	}
	c := New(32, 8)
	same := 0
	for i := 0; i < 32; i++ {
		if a.At(i) == c.At(i) {
			same++
		}
	}
	if same == 32 {
		t.Fatal("families with different seeds are identical")
	}
}

func TestFamilyMultiplierNonZero(t *testing.T) {
	fam := New(256, 99)
	for i := 0; i < fam.Size(); i++ {
		if fam.At(i).A == 0 {
			t.Fatalf("function %d has zero multiplier", i)
		}
		if fam.At(i).A >= MersennePrime61 {
			t.Fatalf("function %d multiplier out of range", i)
		}
		if fam.At(i).B >= MersennePrime61 {
			t.Fatalf("function %d offset out of range", i)
		}
	}
}

func TestHashAllMatchesAt(t *testing.T) {
	fam := New(20, 123)
	dst := make([]uint64, 20)
	for x := uint64(0); x < 100; x++ {
		fam.HashAll(x*2654435761, dst)
		for i := range dst {
			if want := fam.At(i).Hash(x * 2654435761); dst[i] != want {
				t.Fatalf("HashAll[%d](%d) = %d, want %d", i, x, dst[i], want)
			}
		}
	}
}

func TestHashAllLengthPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for wrong dst length")
		}
	}()
	New(4, 1).HashAll(10, make([]uint64, 3))
}

func TestNewNegativeSize(t *testing.T) {
	if fam := New(-3, 1); fam.Size() != 0 {
		t.Fatalf("Size = %d, want 0", fam.Size())
	}
}

// TestUniformity checks that a single hash function spreads sequential keys
// roughly uniformly over a small number of buckets. The tolerance is loose:
// this is a smoke test against catastrophic structure, not a chi-square test.
func TestUniformity(t *testing.T) {
	fam := New(1, 2024)
	f := fam.At(0)
	const buckets = 16
	const n = 1 << 14
	var counts [buckets]int
	for x := uint64(0); x < n; x++ {
		counts[f.Hash(x)%buckets]++
	}
	want := n / buckets
	for i, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("bucket %d holds %d keys, expected near %d", i, c, want)
		}
	}
}

func TestMix64Distinct(t *testing.T) {
	seen := make(map[uint64]uint64, 4096)
	for x := uint64(0); x < 4096; x++ {
		h := Mix64(x)
		if prev, dup := seen[h]; dup {
			t.Fatalf("Mix64 collision between %d and %d", prev, x)
		}
		seen[h] = x
	}
}

func TestSplitMix64KnownSequence(t *testing.T) {
	// Reference values for seed 0 from the public-domain splitmix64.c.
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	g := NewSplitMix64(0)
	for i, w := range want {
		if got := g.Next(); got != w {
			t.Fatalf("SplitMix64[%d] = %#x, want %#x", i, got, w)
		}
	}
}

func BenchmarkHashAll128(b *testing.B) {
	fam := New(128, 1)
	dst := make([]uint64, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fam.HashAll(uint64(i), dst)
	}
}
