package dataset

import "fmt"

// Dict interns (attribute, raw string value) pairs to dense Value IDs
// starting at 1, and records a presence flag per ID. It is the bridge
// between human-readable data (CSV, text pipelines) and the integer
// representation the algorithms operate on.
//
// Dict is not safe for concurrent mutation; build it fully before sharing.
type Dict struct {
	ids     map[dictKey]Value
	attrs   []int32  // per ID (index = id−1): owning attribute
	raws    []string // per ID: raw string value
	flags   []bool   // per ID: presence flag
	numAttr int
}

type dictKey struct {
	attr int32
	raw  string
}

// NewDict creates an empty dictionary for numAttrs attributes.
func NewDict(numAttrs int) *Dict {
	return &Dict{
		ids:     make(map[dictKey]Value),
		numAttr: numAttrs,
	}
}

// NumAttrs returns the number of attributes the dictionary was built for.
func (d *Dict) NumAttrs() int { return d.numAttr }

// Size returns the number of distinct interned values.
func (d *Dict) Size() int { return len(d.raws) }

// Intern returns the ID for (attr, raw), creating it as a present value if
// unseen. attr must be in [0, NumAttrs).
func (d *Dict) Intern(attr int, raw string) Value {
	return d.InternPresence(attr, raw, true)
}

// InternPresence returns the ID for (attr, raw), creating it with the
// given presence flag if unseen. The presence flag of an existing ID is
// not altered: the first interning wins, so encode presence consistently.
func (d *Dict) InternPresence(attr int, raw string, present bool) Value {
	if attr < 0 || attr >= d.numAttr {
		panic(fmt.Sprintf("dataset: attribute %d out of range [0,%d)", attr, d.numAttr))
	}
	k := dictKey{attr: int32(attr), raw: raw}
	if id, ok := d.ids[k]; ok {
		return id
	}
	d.attrs = append(d.attrs, int32(attr))
	d.raws = append(d.raws, raw)
	d.flags = append(d.flags, present)
	id := Value(len(d.raws)) // IDs start at 1
	d.ids[k] = id
	return id
}

// Lookup returns the ID for (attr, raw) and whether it exists.
func (d *Dict) Lookup(attr int, raw string) (Value, bool) {
	id, ok := d.ids[dictKey{attr: int32(attr), raw: raw}]
	return id, ok
}

// Raw returns the raw string for an interned ID. It panics on the reserved
// zero Value or an unknown ID.
func (d *Dict) Raw(v Value) string {
	return d.raws[d.index(v)]
}

// Attr returns the attribute index that owns ID v.
func (d *Dict) Attr(v Value) int {
	return int(d.attrs[d.index(v)])
}

// present implements the presence table used by Dataset.
func (d *Dict) present(v Value) bool {
	return d.flags[d.index(v)]
}

// Present reports whether ID v is flagged as a present feature.
func (d *Dict) Present(v Value) bool { return d.present(v) }

func (d *Dict) index(v Value) int {
	if v == 0 || int(v) > len(d.raws) {
		panic(fmt.Sprintf("dataset: value ID %d not interned", v))
	}
	return int(v) - 1
}
