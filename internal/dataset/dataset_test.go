package dataset

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func buildToy(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder([]string{"colour", "shape", "size"})
	rows := [][]string{
		{"red", "circle", "small"},
		{"red", "square", "large"},
		{"blue", "circle", "small"},
	}
	for i, r := range rows {
		if err := b.AddLabeled(r, i%2); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestBuilderShape(t *testing.T) {
	ds := buildToy(t)
	if ds.NumItems() != 3 || ds.NumAttrs() != 3 {
		t.Fatalf("shape = (%d,%d), want (3,3)", ds.NumItems(), ds.NumAttrs())
	}
	if !ds.Labeled() {
		t.Fatal("expected labelled dataset")
	}
	if ds.Label(0) != 0 || ds.Label(1) != 1 || ds.Label(2) != 0 {
		t.Fatalf("labels = %v", ds.Labels())
	}
}

func TestInterningTaggedByAttribute(t *testing.T) {
	ds := buildToy(t)
	d := ds.Dict()
	// "circle" under shape must share an ID across rows 0 and 2 …
	if ds.Row(0)[1] != ds.Row(2)[1] {
		t.Fatal("same (attr,value) pair interned to different IDs")
	}
	// … and "small" under size must not equal anything under colour even
	// if the raw strings were equal; verify attribute tagging via Attr.
	for _, v := range ds.Row(0) {
		_ = d.Raw(v)
	}
	if d.Attr(ds.Row(0)[0]) != 0 || d.Attr(ds.Row(0)[2]) != 2 {
		t.Fatal("interned IDs do not record owning attribute")
	}
}

func TestDictRoundTrip(t *testing.T) {
	d := NewDict(2)
	type pair struct {
		attr int
		raw  string
	}
	pairs := []pair{{0, "a"}, {0, "b"}, {1, "a"}, {1, ""}, {0, "a"}}
	ids := make([]Value, len(pairs))
	for i, p := range pairs {
		ids[i] = d.Intern(p.attr, p.raw)
	}
	if ids[0] != ids[4] {
		t.Fatal("re-interning a pair produced a new ID")
	}
	if ids[0] == ids[2] {
		t.Fatal("same raw under different attributes shares an ID")
	}
	for i, p := range pairs {
		if d.Raw(ids[i]) != p.raw || d.Attr(ids[i]) != p.attr {
			t.Fatalf("round trip failed for %+v", p)
		}
	}
	if d.Size() != 4 {
		t.Fatalf("Size = %d, want 4", d.Size())
	}
	if _, ok := d.Lookup(1, "zzz"); ok {
		t.Fatal("Lookup invented an ID")
	}
}

func TestDictZeroValuePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for reserved zero Value")
		}
	}()
	NewDict(1).Raw(0)
}

func TestMismatches(t *testing.T) {
	x := []Value{1, 2, 3, 4}
	y := []Value{1, 9, 3, 8}
	if d := Mismatches(x, y); d != 2 {
		t.Fatalf("Mismatches = %d, want 2", d)
	}
	if d := Mismatches(x, x); d != 0 {
		t.Fatalf("self distance = %d, want 0", d)
	}
}

func TestMismatchesProperties(t *testing.T) {
	// Hamming distance axioms: bounds, identity, symmetry, triangle.
	gen := func(vals []uint8) []Value {
		out := make([]Value, len(vals))
		for i, v := range vals {
			out[i] = Value(v%4) + 1
		}
		return out
	}
	check := func(a, b, c [8]uint8) bool {
		x, y, z := gen(a[:]), gen(b[:]), gen(c[:])
		dxy := Mismatches(x, y)
		dyx := Mismatches(y, x)
		dxz := Mismatches(x, z)
		dzy := Mismatches(z, y)
		return dxy >= 0 && dxy <= len(x) &&
			dxy == dyx &&
			Mismatches(x, x) == 0 &&
			dxy <= dxz+dzy
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestMismatchesBounded(t *testing.T) {
	x := []Value{1, 2, 3, 4, 5, 6}
	y := []Value{9, 9, 9, 9, 9, 9}
	if d := MismatchesBounded(x, y, 3); d != 3 {
		t.Fatalf("bounded distance = %d, want cut-off 3", d)
	}
	if d := MismatchesBounded(x, y, 100); d != 6 {
		t.Fatalf("bounded distance = %d, want 6", d)
	}
	// Bound larger than the true distance must return the exact value.
	z := []Value{1, 2, 3, 4, 5, 9}
	if d := MismatchesBounded(x, z, 4); d != 1 {
		t.Fatalf("bounded distance = %d, want 1", d)
	}
}

func TestMismatchesArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	Mismatches([]Value{1}, []Value{1, 2})
}

func TestJaccardTaggedSemantics(t *testing.T) {
	ds := buildToy(t)
	// Rows 0 and 2 match on shape and size: J = 2/(6−2) = 0.5.
	if got := ds.Jaccard(0, 2); got != 0.5 {
		t.Fatalf("Jaccard(0,2) = %v, want 0.5", got)
	}
	// Row with itself: J = 1.
	if got := ds.Jaccard(1, 1); got != 1 {
		t.Fatalf("Jaccard(1,1) = %v, want 1", got)
	}
	// Rows 1 and 2 match only on nothing: colour differs, shape differs,
	// size differs → J = 0... row1={red,square,large}, row2={blue,circle,small}.
	if got := ds.Jaccard(1, 2); got != 0 {
		t.Fatalf("Jaccard(1,2) = %v, want 0", got)
	}
}

func TestPresentValuesFiltering(t *testing.T) {
	b := NewBuilder([]string{"w1", "w2", "w3"})
	err := b.AddPresence(
		[]string{"w1-1", "w2-0", "w3-1"},
		[]bool{true, false, true}, 0, true)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	vals := ds.PresentValues(0, nil)
	if len(vals) != 2 {
		t.Fatalf("PresentValues returned %d values, want 2", len(vals))
	}
	row := ds.Row(0)
	if !ds.Present(row[0]) || ds.Present(row[1]) || !ds.Present(row[2]) {
		t.Fatal("presence flags wrong")
	}
}

func TestJaccardIgnoresAbsentValues(t *testing.T) {
	b := NewBuilder([]string{"w1", "w2"})
	add := func(r []string, p []bool) {
		t.Helper()
		if err := b.AddPresence(r, p, 0, false); err != nil {
			t.Fatal(err)
		}
	}
	// Item 0: w1 present, w2 absent. Item 1: w1 present, w2 absent.
	// Shared absence must NOT count towards similarity (paper §III-B:
	// "many shared negative features … does not provide particularly
	// useful information").
	add([]string{"y", "n"}, []bool{true, false})
	add([]string{"y", "n"}, []bool{true, false})
	// Item 2: w1 absent, w2 present.
	add([]string{"n", "y"}, []bool{false, true})
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Jaccard(0, 1); got != 1 {
		t.Fatalf("Jaccard over shared present values = %v, want 1", got)
	}
	if got := ds.Jaccard(0, 2); got != 0 {
		t.Fatalf("Jaccard over disjoint present values = %v, want 0", got)
	}
}

func TestMixedLabelledRowsRejected(t *testing.T) {
	b := NewBuilder([]string{"a"})
	if err := b.Add([]string{"x"}); err != nil {
		t.Fatal(err)
	}
	if err := b.AddLabeled([]string{"y"}, 1); err == nil {
		t.Fatal("expected error mixing labelled and unlabelled rows")
	}
}

func TestBuilderArityError(t *testing.T) {
	b := NewBuilder([]string{"a", "b"})
	if err := b.Add([]string{"only-one"}); err == nil {
		t.Fatal("expected arity error")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil, nil, nil); err == nil {
		t.Fatal("expected error for zero attributes")
	}
	if _, err := New([]string{"a", "b"}, make([]Value, 3), nil, nil); err == nil {
		t.Fatal("expected error for ragged values")
	}
	if _, err := New([]string{"a"}, make([]Value, 3), make([]int32, 2), nil); err == nil {
		t.Fatal("expected error for label count mismatch")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	ds := buildToy(t)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumItems() != ds.NumItems() || back.NumAttrs() != ds.NumAttrs() {
		t.Fatalf("round trip shape = (%d,%d)", back.NumItems(), back.NumAttrs())
	}
	for i := 0; i < ds.NumItems(); i++ {
		if back.Label(i) != ds.Label(i) {
			t.Fatalf("label %d = %d, want %d", i, back.Label(i), ds.Label(i))
		}
		for a := 0; a < ds.NumAttrs(); a++ {
			want := ds.Dict().Raw(ds.Row(i)[a])
			got := back.Dict().Raw(back.Row(i)[a])
			if got != want {
				t.Fatalf("item %d attr %d = %q, want %q", i, a, got, want)
			}
		}
	}
}

func TestCSVUnlabelled(t *testing.T) {
	in := "a,b\nx,y\nz,y\n"
	ds, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if ds.Labeled() {
		t.Fatal("dataset should be unlabelled")
	}
	if ds.Label(0) != -1 {
		t.Fatal("Label on unlabelled dataset should be -1")
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != in {
		t.Fatalf("unlabelled round trip = %q, want %q", got, in)
	}
}

func TestCSVErrors(t *testing.T) {
	cases := []string{
		"",                 // no header
		"a,b,_label\n",     // no items
		"a,_label\nx,oops", // bad label
	}
	for _, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("ReadCSV(%q) succeeded, want error", c)
		}
	}
}

func TestCSVNumericIDDataset(t *testing.T) {
	// A dict-less dataset (as produced by synthetic generators) must
	// serialise IDs as decimal and survive a round trip as categories.
	vals := []Value{5, 6, 7, 8}
	ds, err := New([]string{"a", "b"}, vals, []int32{0, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCSV(&buf, ds); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumItems() != 2 || back.Dict().Raw(back.Row(0)[0]) != "5" {
		t.Fatalf("numeric round trip failed: %v", buf.String())
	}
}

func TestMaxValue(t *testing.T) {
	ds, err := New([]string{"a"}, []Value{3, 9, 2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ds.MaxValue() != 9 {
		t.Fatalf("MaxValue = %d, want 9", ds.MaxValue())
	}
}

func TestRowAliasesBackingStore(t *testing.T) {
	ds, err := New([]string{"a", "b"}, []Value{1, 2, 3, 4}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if &ds.Row(1)[0] != &ds.Values()[2] {
		t.Fatal("Row must alias the flat backing store (no copies)")
	}
}

func TestJaccardRandomisedAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const m = 24
	mk := func() []string {
		row := make([]string, m)
		for a := range row {
			row[a] = string(rune('a' + rng.Intn(3)))
		}
		return row
	}
	b := NewBuilder(make([]string, m))
	for i := 0; i < 40; i++ {
		if err := b.Add(mk()); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		i, j := rng.Intn(40), rng.Intn(40)
		match := 0
		for a := 0; a < m; a++ {
			if ds.Row(i)[a] == ds.Row(j)[a] {
				match++
			}
		}
		want := float64(match) / float64(2*m-match)
		if got := ds.Jaccard(i, j); got != want {
			t.Fatalf("Jaccard(%d,%d) = %v, want %v", i, j, got, want)
		}
	}
}
