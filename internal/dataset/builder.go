package dataset

import "fmt"

// Builder incrementally assembles a Dataset from raw string rows,
// interning values as they arrive.
type Builder struct {
	attrNames []string
	dict      *Dict
	values    []Value
	labels    []int32
	labelled  bool
	rows      int
}

// NewBuilder creates a builder for items with the given attributes.
func NewBuilder(attrNames []string) *Builder {
	return &Builder{
		attrNames: attrNames,
		dict:      NewDict(len(attrNames)),
	}
}

// Dict exposes the builder's dictionary, e.g. to pre-intern absence
// markers with InternPresence before adding rows.
func (b *Builder) Dict() *Dict { return b.dict }

// Add appends an unlabelled item. row must have one raw value per
// attribute.
func (b *Builder) Add(row []string) error {
	return b.add(row, -1, false)
}

// AddLabeled appends an item with a ground-truth label. Mixing Add and
// AddLabeled in one builder is an error.
func (b *Builder) AddLabeled(row []string, label int) error {
	return b.add(row, label, true)
}

// AddPresence appends an item whose values carry explicit presence flags
// (used by text pipelines, where "word absent" values must be invisible
// to MinHash). present must parallel row.
func (b *Builder) AddPresence(row []string, present []bool, label int, labelled bool) error {
	if len(row) != len(b.attrNames) {
		return fmt.Errorf("dataset: row has %d values, want %d", len(row), len(b.attrNames))
	}
	if len(present) != len(row) {
		return fmt.Errorf("dataset: presence mask has %d entries, want %d", len(present), len(row))
	}
	if err := b.checkLabelled(labelled); err != nil {
		return err
	}
	for a, raw := range row {
		b.values = append(b.values, b.dict.InternPresence(a, raw, present[a]))
	}
	if labelled {
		b.labels = append(b.labels, int32(label))
	}
	b.rows++
	return nil
}

func (b *Builder) add(row []string, label int, labelled bool) error {
	if len(row) != len(b.attrNames) {
		return fmt.Errorf("dataset: row has %d values, want %d", len(row), len(b.attrNames))
	}
	if err := b.checkLabelled(labelled); err != nil {
		return err
	}
	for a, raw := range row {
		b.values = append(b.values, b.dict.Intern(a, raw))
	}
	if labelled {
		b.labels = append(b.labels, int32(label))
	}
	b.rows++
	return nil
}

func (b *Builder) checkLabelled(labelled bool) error {
	if b.rows == 0 {
		b.labelled = labelled
		return nil
	}
	if b.labelled != labelled {
		return fmt.Errorf("dataset: cannot mix labelled and unlabelled rows")
	}
	return nil
}

// NumItems returns the number of rows added so far.
func (b *Builder) NumItems() int { return b.rows }

// Build finalises the dataset. The builder must not be reused afterwards.
func (b *Builder) Build() (*Dataset, error) {
	var labels []int32
	if b.labelled {
		labels = b.labels
	}
	return New(b.attrNames, b.values, labels, b.dict)
}
