// Package dataset provides the categorical data substrate used by every
// other component: items with m categorical attributes, value interning,
// presence filtering and CSV interchange.
//
// Following the paper's formulation (§III-A1), an item is a vector
// X = [x_1 … x_m] of categorical values drawn from per-attribute domains.
// Values are interned to dense integer IDs. Interning is *attribute
// tagged*: the pair (attribute j, raw value) maps to a single ID, so two
// items share an ID exactly when they match on that attribute. With tagged
// IDs the Jaccard similarity of two items' value sets is
//
//	J(X,Y) = matches / (2m − matches)
//
// which is the quantity the paper's error bound (§III-C) is stated in
// terms of: one shared attribute value implies J ≥ 1/(2m−1).
//
// Presence: for sparse binary data (e.g. word-presence vectors) the paper
// filters out "not present" feature values before MinHashing (Algorithm 2,
// lines 2–4) while K-Modes itself still compares all m attributes. Each
// interned value therefore carries a presence flag; ordinary categorical
// values are always present.
package dataset

import (
	"fmt"
	"sync"

	"lshcluster/internal/kernel"
)

// Value is an interned categorical value identifier. The zero Value is
// reserved and never produced by interning, so it can be used as a
// sentinel for "unset".
type Value uint32

// Dataset is an immutable collection of n items, each with m categorical
// attributes, stored row-major in a single flat slice. An optional
// ground-truth label per item supports purity evaluation. Datasets are
// safe for concurrent reads.
type Dataset struct {
	attrNames []string
	m         int
	values    []Value // len n·m, row-major
	labels    []int32 // len n, or nil when unlabelled
	dict      *Dict   // optional; nil for purely numeric-ID data
	present   presence
	// fp/fpOnce cache the lazily computed Fingerprint (see binary.go).
	fp     uint64
	fpOnce sync.Once
}

// presence answers "is this value ID a present feature?" for MinHash
// filtering. A nil table means every value is present.
type presence interface {
	present(v Value) bool
}

type allPresent struct{}

func (allPresent) present(Value) bool { return true }

// New assembles a Dataset from pre-interned values. values must have
// length a multiple of len(attrNames); labels may be nil or have length
// n = len(values)/m. dict may be nil when items were built from numeric
// IDs directly (e.g. synthetic generators). The slices are retained, not
// copied.
func New(attrNames []string, values []Value, labels []int32, dict *Dict) (*Dataset, error) {
	m := len(attrNames)
	if m == 0 {
		return nil, fmt.Errorf("dataset: no attributes")
	}
	if len(values)%m != 0 {
		return nil, fmt.Errorf("dataset: %d values not a multiple of %d attributes", len(values), m)
	}
	n := len(values) / m
	if labels != nil && len(labels) != n {
		return nil, fmt.Errorf("dataset: %d labels for %d items", len(labels), n)
	}
	ds := &Dataset{
		attrNames: attrNames,
		m:         m,
		values:    values,
		labels:    labels,
		dict:      dict,
	}
	if dict != nil {
		ds.present = dict
	} else {
		ds.present = allPresent{}
	}
	return ds, nil
}

// NumItems returns n, the number of items.
func (ds *Dataset) NumItems() int { return len(ds.values) / ds.m }

// NumAttrs returns m, the number of attributes per item.
func (ds *Dataset) NumAttrs() int { return ds.m }

// AttrNames returns the attribute names. The slice must not be modified.
func (ds *Dataset) AttrNames() []string { return ds.attrNames }

// Row returns item i's values as a subslice of the backing store. The
// returned slice must not be modified.
func (ds *Dataset) Row(i int) []Value {
	return ds.values[i*ds.m : (i+1)*ds.m : (i+1)*ds.m]
}

// Values returns the full row-major backing store (n·m values). It must
// not be modified.
func (ds *Dataset) Values() []Value { return ds.values }

// Labeled reports whether ground-truth labels are attached.
func (ds *Dataset) Labeled() bool { return ds.labels != nil }

// Label returns item i's ground-truth label, or -1 when unlabelled.
func (ds *Dataset) Label(i int) int {
	if ds.labels == nil {
		return -1
	}
	return int(ds.labels[i])
}

// Labels returns the label slice (nil when unlabelled). It must not be
// modified.
func (ds *Dataset) Labels() []int32 { return ds.labels }

// Dict returns the interning dictionary, or nil for numeric-ID datasets.
func (ds *Dataset) Dict() *Dict { return ds.dict }

// Present reports whether value v represents a present feature (always
// true for datasets without a dictionary).
func (ds *Dataset) Present(v Value) bool { return ds.present.present(v) }

// PresentValues appends the IDs of item i's present values to buf and
// returns it. This is the item-as-set view consumed by MinHash
// (Algorithm 2 lines 1–5: "filter out any feature values that indicate
// that the feature is not present").
func (ds *Dataset) PresentValues(i int, buf []uint64) []uint64 {
	for _, v := range ds.Row(i) {
		if ds.present.present(v) {
			buf = append(buf, uint64(v))
		}
	}
	return buf
}

// MaxValue returns the largest value ID appearing in the dataset, useful
// for sizing lookup tables. It scans the data once.
func (ds *Dataset) MaxValue() Value {
	var maxV Value
	for _, v := range ds.values {
		if v > maxV {
			maxV = v
		}
	}
	return maxV
}

// String summarises the dataset shape.
func (ds *Dataset) String() string {
	lab := "unlabelled"
	if ds.labels != nil {
		lab = "labelled"
	}
	return fmt.Sprintf("dataset(n=%d, m=%d, %s)", ds.NumItems(), ds.m, lab)
}

// Jaccard returns the exact Jaccard similarity of items i and j viewed as
// sets of present attribute-tagged values. With tagged IDs this equals
// matches/(2m'−matches) over the present attributes.
func (ds *Dataset) Jaccard(i, j int) float64 {
	ri, rj := ds.Row(i), ds.Row(j)
	inter, uni := 0, 0
	for a := range ri {
		pi := ds.present.present(ri[a])
		pj := ds.present.present(rj[a])
		switch {
		case pi && pj:
			if ri[a] == rj[a] {
				inter++
				uni++
			} else {
				uni += 2
			}
		case pi || pj:
			uni++
		}
	}
	if uni == 0 {
		return 0
	}
	return float64(inter) / float64(uni)
}

// Mismatches returns the K-Modes dissimilarity between rows x and y: the
// number of attributes on which they differ (paper Eq. 1–2). Both slices
// must have equal length. The count runs on the unrolled branchless
// kernel (internal/kernel); MismatchesScalar is the value-identical
// scalar reference.
func Mismatches(x, y []Value) int {
	if len(x) != len(y) {
		panic("dataset: Mismatches on rows of different arity")
	}
	return kernel.Mismatches(x, y)
}

// MismatchesScalar is the scalar reference for Mismatches — the oracle
// the kernel equivalence tests (and core.Options.ScalarKernels runs)
// compare against.
func MismatchesScalar(x, y []Value) int {
	if len(x) != len(y) {
		panic("dataset: Mismatches on rows of different arity")
	}
	return kernel.MismatchesScalar(x, y)
}

// MismatchesMaskedBounded counts mismatches between x and y over the
// attributes flagged in present only, returning early with a value ≥
// bound as soon as the count reaches bound. Absent attributes are
// treated as missing data: they contribute nothing to the distance. A
// nil mask compares every attribute (MismatchesBounded, the unrolled
// kernel); the masked loop itself stays scalar — the mask's
// data-dependent skip defeats straight-line unrolling.
func MismatchesMaskedBounded(x, y []Value, present []bool, bound int) int {
	if present == nil {
		return MismatchesBounded(x, y, bound)
	}
	return mismatchesMasked(x, y, present, bound)
}

// MismatchesMaskedBoundedScalar is the scalar reference for
// MismatchesMaskedBounded: identical except that a nil mask runs the
// scalar bounded count.
func MismatchesMaskedBoundedScalar(x, y []Value, present []bool, bound int) int {
	if present == nil {
		return MismatchesBoundedScalar(x, y, bound)
	}
	return mismatchesMasked(x, y, present, bound)
}

//lshvet:ignore kernelcheck masked variant with early-exit bound; no kernel expresses the three-slice mask shape
func mismatchesMasked(x, y []Value, present []bool, bound int) int {
	if len(present) != len(x) {
		panic("dataset: MismatchesMaskedBounded mask arity mismatch")
	}
	d := 0
	for a := range x {
		if present[a] && x[a] != y[a] {
			d++
			if d >= bound {
				return d
			}
		}
	}
	return d
}

// MismatchesBounded counts mismatches between x and y but returns early
// with a value ≥ bound as soon as the count reaches bound. It is the
// early-abandon variant used when a best-so-far distance is known. The
// count runs on the unrolled kernel, whose early-exit return value is
// exactly the scalar reference's (see kernel.MismatchesBounded).
func MismatchesBounded(x, y []Value, bound int) int {
	return kernel.MismatchesBounded(x, y, bound)
}

// MismatchesBoundedScalar is the scalar reference for MismatchesBounded.
func MismatchesBoundedScalar(x, y []Value, bound int) int {
	return kernel.MismatchesBoundedScalar(x, y, bound)
}
