// Binary dataset interchange: a columnar on-disk format (the shared
// internal/lsh/persist section container) that OpenBinary can memory-map,
// so the CLI clusters a file without materialising its rows on the heap
// — the dataset's value store aliases the read-only mapping and pages in
// on demand. WriteBinary is lossless for everything clustering observes:
// attribute names, values, labels and per-value presence flags (the
// interning dictionary itself — raw strings — is not retained; a
// binary-loaded dataset answers Present but not value decoding).
package dataset

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"unsafe"

	"lshcluster/internal/lsh/persist"
)

// Binary-dataset section IDs.
const (
	secHeader  persist.SectionID = 1 // []int64{n, m, labeled, presence}
	secNames   persist.SectionID = 2 // attribute names, 0x00-separated
	secValues  persist.SectionID = 3 // []Value, row-major n·m
	secLabels  persist.SectionID = 4 // []int32, present when labeled
	secPresent persist.SectionID = 5 // presence bitmap over value IDs
)

// rawBytes reinterprets a slice as its backing bytes (zero-copy).
func rawBytes[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(t)))
}

// bitmapPresence answers Present from a packed bitmap over value IDs —
// the on-disk representation of a dictionary's presence flags.
type bitmapPresence []uint64

func (b bitmapPresence) present(v Value) bool {
	w := int(v) >> 6
	if w >= len(b) {
		return false
	}
	return b[w]&(1<<(uint(v)&63)) != 0
}

// WriteBinary persists ds to path in the binary columnar format
// (checksummed, atomically written, 0644). Presence flags are flattened
// to a bitmap, so MinHash filtering behaves identically on reload.
func WriteBinary(ds *Dataset, path string) error {
	n := ds.NumItems()
	hasLabels := int64(0)
	if ds.labels != nil {
		hasLabels = 1
	}
	hasPresent := int64(0)
	var bitmap []uint64
	if ds.dict != nil {
		hasPresent = 1
		maxVal := ds.MaxValue()
		bitmap = make([]uint64, (int(maxVal)+64)/64)
		for v := Value(1); v <= maxVal; v++ {
			if ds.present.present(v) {
				bitmap[int(v)>>6] |= 1 << (uint(v) & 63)
			}
		}
	}
	names := []byte(joinNames(ds.attrNames))
	sections := []persist.Section{
		{ID: secHeader, ElemSize: 8, Data: rawBytes([]int64{int64(n), int64(ds.m), hasLabels, hasPresent})},
		{ID: secNames, ElemSize: 1, Data: names},
		{ID: secValues, ElemSize: 4, Data: rawBytes(ds.values)},
	}
	if hasLabels == 1 {
		sections = append(sections, persist.Section{ID: secLabels, ElemSize: 4, Data: rawBytes(ds.labels)})
	}
	if hasPresent == 1 {
		sections = append(sections, persist.Section{ID: secPresent, ElemSize: 8, Data: rawBytes(bitmap)})
	}
	if err := persist.WriteFile(path, sections); err != nil {
		return fmt.Errorf("dataset: writing binary dataset: %w", err)
	}
	return nil
}

func joinNames(names []string) string {
	var b bytes.Buffer
	for i, s := range names {
		if i > 0 {
			b.WriteByte(0)
		}
		b.WriteString(s)
	}
	return b.String()
}

// OpenBinary loads a binary dataset from path. With useMmap the value
// store (the n·m bulk of the file) aliases a read-only memory mapping —
// rows are never materialised on the heap, pages fault in as clustering
// touches them; otherwise everything is copied to the heap (the
// portable oracle, byte-identical data either way). The returned close
// function releases the mapping; the dataset must not be used after.
func OpenBinary(path string, useMmap bool) (*Dataset, func() error, error) {
	f, err := persist.Open(path, useMmap)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (*Dataset, func() error, error) {
		f.Close()
		return nil, nil, err
	}
	hdr, err := persist.View[int64](f, secHeader)
	if err != nil {
		return fail(err)
	}
	if len(hdr) != 4 {
		return fail(fmt.Errorf("dataset: binary header has %d fields, want 4", len(hdr)))
	}
	n, m, hasLabels, hasPresent := int(hdr[0]), int(hdr[1]), hdr[2] == 1, hdr[3] == 1
	names, err := persist.View[byte](f, secNames)
	if err != nil {
		return fail(err)
	}
	attrNames := splitNames(string(names))
	if m < 1 || len(attrNames) != m {
		return fail(fmt.Errorf("dataset: binary file names %d attributes, header says %d", len(attrNames), m))
	}
	values, err := persist.View[Value](f, secValues)
	if err != nil {
		return fail(err)
	}
	if len(values) != n*m {
		return fail(fmt.Errorf("dataset: binary file holds %d values for %d×%d items", len(values), n, m))
	}
	ds := &Dataset{attrNames: attrNames, m: m, values: values, present: allPresent{}}
	if hasLabels {
		if ds.labels, err = persist.View[int32](f, secLabels); err != nil {
			return fail(err)
		}
		if len(ds.labels) != n {
			return fail(fmt.Errorf("dataset: binary file holds %d labels for %d items", len(ds.labels), n))
		}
	}
	if hasPresent {
		bitmap, err := persist.View[uint64](f, secPresent)
		if err != nil {
			return fail(err)
		}
		ds.present = bitmapPresence(bitmap)
	}
	return ds, f.Close, nil
}

func splitNames(blob string) []string {
	var names []string
	for len(blob) > 0 {
		i := 0
		for i < len(blob) && blob[i] != 0 {
			i++
		}
		names = append(names, blob[:i])
		if i == len(blob) {
			break
		}
		blob = blob[i+1:]
	}
	return names
}

// Fingerprint returns a stable hash of everything LSH signing observes
// — item count, attribute count, every value and its presence flag —
// identifying the dataset a persisted index was built from. Two
// datasets with equal fingerprints produce identical signatures under
// the same scheme, so a saved index is valid for exactly the datasets
// sharing the fingerprint of the one it was built from. Computed once
// and cached (datasets are immutable); safe for concurrent use.
func (ds *Dataset) Fingerprint() uint64 {
	ds.fpOnce.Do(func() {
		h := fnv.New64a()
		var buf [8]byte
		put := func(v uint64) {
			for i := 0; i < 8; i++ {
				buf[i] = byte(v >> (8 * i))
			}
			h.Write(buf[:])
		}
		put(uint64(ds.NumItems()))
		put(uint64(ds.m))
		for _, v := range ds.values {
			w := uint64(v) << 1
			if ds.present.present(v) {
				w |= 1
			}
			put(w)
		}
		ds.fp = h.Sum64()
	})
	return ds.fp
}
