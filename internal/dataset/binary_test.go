package dataset

import (
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"lshcluster/internal/lsh/persist"
)

// buildBinaryFixture makes a labelled dataset with a mix of present and
// absent feature values, so a round trip has to preserve the presence
// bitmap as well as the columnar payload.
func buildBinaryFixture(t *testing.T) *Dataset {
	t.Helper()
	b := NewBuilder([]string{"a", "b", "c", "d"})
	for i := 0; i < 37; i++ {
		row := []string{
			"v" + strconv.Itoa(i%5),
			"w" + strconv.Itoa(i%7),
			"x" + strconv.Itoa(i%3),
			"y" + strconv.Itoa(i%11),
		}
		present := []bool{true, i%4 != 0, true, i%6 != 0}
		if err := b.AddPresence(row, present, i%4, true); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func assertDatasetEqual(t *testing.T, label string, want, got *Dataset) {
	t.Helper()
	if got.NumItems() != want.NumItems() || got.NumAttrs() != want.NumAttrs() {
		t.Fatalf("%s: shape = (%d,%d), want (%d,%d)", label,
			got.NumItems(), got.NumAttrs(), want.NumItems(), want.NumAttrs())
	}
	for i, name := range want.AttrNames() {
		if got.AttrNames()[i] != name {
			t.Fatalf("%s: attr[%d] = %q, want %q", label, i, got.AttrNames()[i], name)
		}
	}
	wv, gv := want.Values(), got.Values()
	for i := range wv {
		if wv[i] != gv[i] {
			t.Fatalf("%s: values[%d] = %d, want %d", label, i, gv[i], wv[i])
		}
	}
	if got.Labeled() != want.Labeled() {
		t.Fatalf("%s: labeled = %v, want %v", label, got.Labeled(), want.Labeled())
	}
	if want.Labeled() {
		for i := 0; i < want.NumItems(); i++ {
			if got.Label(i) != want.Label(i) {
				t.Fatalf("%s: label[%d] = %d, want %d", label, i, got.Label(i), want.Label(i))
			}
		}
	}
	for _, v := range wv {
		if got.Present(v) != want.Present(v) {
			t.Fatalf("%s: Present(%d) = %v, want %v", label, v, got.Present(v), want.Present(v))
		}
	}
	if got.Fingerprint() != want.Fingerprint() {
		t.Fatalf("%s: fingerprint %#x, want %#x", label, got.Fingerprint(), want.Fingerprint())
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	ds := buildBinaryFixture(t)
	path := filepath.Join(t.TempDir(), "data.lshz")
	if err := WriteBinary(ds, path); err != nil {
		t.Fatal(err)
	}

	heap, closeHeap, err := OpenBinary(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeHeap()
	assertDatasetEqual(t, "heap", ds, heap)

	if persist.MmapSupported {
		mapped, closeMapped, err := OpenBinary(path, true)
		if err != nil {
			t.Fatal(err)
		}
		assertDatasetEqual(t, "mmap", ds, mapped)
		if err := closeMapped(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBinaryRoundTripUnlabeled(t *testing.T) {
	b := NewBuilder([]string{"p", "q"})
	for i := 0; i < 9; i++ {
		if err := b.Add([]string{"u" + strconv.Itoa(i%2), "v" + strconv.Itoa(i%3)}); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "data.lshz")
	if err := WriteBinary(ds, path); err != nil {
		t.Fatal(err)
	}
	got, closeFn, err := OpenBinary(path, false)
	if err != nil {
		t.Fatal(err)
	}
	defer closeFn()
	assertDatasetEqual(t, "unlabeled", ds, got)
}

// TestBinaryCorruptRejected flips one byte in the middle of the file:
// the container checksum must refuse the load rather than hand back a
// silently corrupted dataset.
func TestBinaryCorruptRejected(t *testing.T) {
	ds := buildBinaryFixture(t)
	path := filepath.Join(t.TempDir(), "data.lshz")
	if err := WriteBinary(ds, path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x01
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := OpenBinary(path, false); err == nil {
		t.Fatal("OpenBinary accepted a corrupted file")
	}
}

// TestFingerprintDistinguishes: the fingerprint must move when the data
// it guards moves — values and presence flags alike.
func TestFingerprintDistinguishes(t *testing.T) {
	a := buildBinaryFixture(t)

	b := NewBuilder([]string{"a", "b", "c", "d"})
	for i := 0; i < 37; i++ {
		row := []string{
			"v" + strconv.Itoa(i%5),
			"w" + strconv.Itoa(i%7),
			"x" + strconv.Itoa(i%3),
			"y" + strconv.Itoa(i%11),
		}
		// Same raw values, one presence flag pattern shifted.
		present := []bool{true, i%4 != 1, true, i%6 != 0}
		if err := b.AddPresence(row, present, i%4, true); err != nil {
			t.Fatal(err)
		}
	}
	shifted, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if a.Fingerprint() == shifted.Fingerprint() {
		t.Fatal("fingerprint ignored a presence-flag change")
	}
}
