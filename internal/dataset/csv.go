package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// LabelColumn is the reserved header name used for the ground-truth label
// column in CSV interchange files.
const LabelColumn = "_label"

// WriteCSV serialises the dataset as CSV: a header row of attribute names
// (plus LabelColumn when labelled), then one row per item with raw string
// values. Datasets without a dictionary serialise value IDs as decimal
// strings, which round-trips through ReadCSV as plain categories.
func WriteCSV(w io.Writer, ds *Dataset) error {
	cw := csv.NewWriter(w)
	header := append([]string(nil), ds.AttrNames()...)
	if ds.Labeled() {
		header = append(header, LabelColumn)
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("dataset: writing CSV header: %w", err)
	}
	row := make([]string, 0, len(header))
	for i := 0; i < ds.NumItems(); i++ {
		row = row[:0]
		for _, v := range ds.Row(i) {
			row = append(row, rawOf(ds, v))
		}
		if ds.Labeled() {
			row = append(row, strconv.Itoa(ds.Label(i)))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("dataset: writing CSV row %d: %w", i, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("dataset: flushing CSV: %w", err)
	}
	return nil
}

func rawOf(ds *Dataset, v Value) string {
	if d := ds.Dict(); d != nil {
		return d.Raw(v)
	}
	return strconv.FormatUint(uint64(v), 10)
}

// ReadCSV parses a dataset written by WriteCSV (or any compatible CSV with
// a header row). A trailing LabelColumn column, when found, becomes the
// ground-truth labels.
func ReadCSV(r io.Reader) (*Dataset, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading CSV header: %w", err)
	}
	labelled := len(header) > 0 && header[len(header)-1] == LabelColumn
	attrs := header
	if labelled {
		attrs = header[:len(header)-1]
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("dataset: CSV has no attribute columns")
	}
	b := NewBuilder(append([]string(nil), attrs...))
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: reading CSV line %d: %w", line+1, err)
		}
		line++
		if labelled {
			lab, err := strconv.Atoi(rec[len(rec)-1])
			if err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d: bad label %q: %w", line, rec[len(rec)-1], err)
			}
			if err := b.AddLabeled(rec[:len(rec)-1], lab); err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
			}
		} else {
			if err := b.Add(rec); err != nil {
				return nil, fmt.Errorf("dataset: CSV line %d: %w", line, err)
			}
		}
	}
	if b.NumItems() == 0 {
		return nil, fmt.Errorf("dataset: CSV contains no items")
	}
	return b.Build()
}
