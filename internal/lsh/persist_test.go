package lsh

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"path/filepath"
	"reflect"
	"testing"
)

const (
	testPersistSeed = uint64(7)
	testPersistFP   = uint64(0xfeed)
)

// buildPersisted builds a frozen sharded index the way the bootstrap
// does — BuildFrozen from a presigned arena, optional locality reorder,
// foreign-slot spans materialised — ready to Save.
func buildPersisted(t *testing.T, p Params, n, S int, reorder bool) *Sharded {
	t.Helper()
	sh, err := NewSharded(p, testPersistSeed, n, S)
	if err != nil {
		t.Fatal(err)
	}
	sh.SetReorder(reorder)
	keys := signKeysFor(sh, testSets(n, 17), 2)
	if err := sh.BuildFrozen(keys, n, 2); err != nil {
		t.Fatal(err)
	}
	sh.MaterializeForeignSlots(-1)
	return sh
}

// assertShardedEqual asserts that got reproduces want exactly: every
// frozen array byte-identical per shard, same inserted flags, same
// reorder permutation, same foreign-slot spans, and an identical
// candidate stream for every item.
func assertShardedEqual(t *testing.T, want, got *Sharded) {
	t.Helper()
	if len(want.shards) != len(got.shards) {
		t.Fatalf("shard count %d, want %d", len(got.shards), len(want.shards))
	}
	for s := range want.shards {
		assertFrozenIdentical(t, want.shards[s], got.shards[s])
		if !reflect.DeepEqual(want.shards[s].inserted, got.shards[s].inserted) {
			t.Fatalf("shard %d inserted flags differ", s)
		}
		if want.shards[s].numInserted != got.shards[s].numInserted {
			t.Fatalf("shard %d numInserted %d, want %d", s, got.shards[s].numInserted, want.shards[s].numInserted)
		}
	}
	if !reflect.DeepEqual(want.perm, got.perm) || !reflect.DeepEqual(want.inv, got.inv) {
		t.Fatal("reorder permutation differs")
	}
	if !reflect.DeepEqual(want.foreign, got.foreign) {
		t.Fatal("foreign-slot spans differ")
	}
	if !reflect.DeepEqual(want.foreignEmpty, got.foreignEmpty) {
		t.Fatal("foreign-emptiness bitmaps differ")
	}
	wq, gq := want.NewQuery(), got.NewQuery()
	for i := 0; i < want.part.n; i++ {
		w := collectQueryCandidates(wq, int32(i))
		g := collectQueryCandidates(gq, int32(i))
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("item %d candidates: fresh %v, loaded %v", i, w, g)
		}
	}
}

func openOptsFor(sh *Sharded, mmap bool) OpenOptions {
	return OpenOptions{
		Params:      sh.params,
		Seed:        testPersistSeed,
		NumItems:    sh.part.n,
		Shards:      len(sh.shards),
		Reorder:     sh.perm != nil,
		Fingerprint: testPersistFP,
		Mmap:        mmap,
		Workers:     2,
	}
}

// TestPersistRoundTripEquivalence is the tentpole oracle: for every
// shard count, with and without reordering, a saved index loaded back
// — heap copy (Load oracle) or zero-copy mmap — is indistinguishable
// from the fresh build in every frozen array and every query answer.
func TestPersistRoundTripEquivalence(t *testing.T) {
	const n = 260
	p := Params{Bands: 6, Rows: 3}
	for _, S := range []int{1, 2, 4} {
		for _, reorder := range []bool{false, true} {
			t.Run(fmt.Sprintf("s=%d/reorder=%v", S, reorder), func(t *testing.T) {
				fresh := buildPersisted(t, p, n, S, reorder)
				dir := t.TempDir()
				if IndexSaved(dir) {
					t.Fatal("IndexSaved true before Save")
				}
				rep, err := fresh.Save(dir, testPersistSeed, testPersistFP, 2)
				if err != nil {
					t.Fatal(err)
				}
				if rep.Bytes <= 0 {
					t.Fatalf("SaveReport.Bytes = %d", rep.Bytes)
				}
				if !IndexSaved(dir) {
					t.Fatal("IndexSaved false after Save")
				}
				for _, mmap := range []bool{false, true} {
					t.Run(map[bool]string{false: "heap", true: "mmap"}[mmap], func(t *testing.T) {
						loaded, orep, err := OpenSharded(dir, openOptsFor(fresh, mmap))
						if err != nil {
							t.Fatal(err)
						}
						defer loaded.ClosePersist()
						if mmap != (orep.MmapBytes > 0) {
							t.Fatalf("mmap=%v but OpenReport.MmapBytes = %d", mmap, orep.MmapBytes)
						}
						if loaded.MmapBytes() != orep.MmapBytes {
							t.Fatalf("MmapBytes() = %d, report says %d", loaded.MmapBytes(), orep.MmapBytes)
						}
						if !loaded.Frozen() {
							t.Fatal("loaded index not frozen")
						}
						assertShardedEqual(t, fresh, loaded)
					})
				}
			})
		}
	}
}

// TestOpenShardedRejectsStale pins the invalidation rules: any drift
// between the saved index and what the caller would build fresh —
// seed, dataset, shape, shard count, reorder setting — is an error,
// never a silent reuse.
func TestOpenShardedRejectsStale(t *testing.T) {
	const n = 120
	p := Params{Bands: 4, Rows: 2}
	fresh := buildPersisted(t, p, n, 2, true)
	dir := t.TempDir()
	if _, err := fresh.Save(dir, testPersistSeed, testPersistFP, 2); err != nil {
		t.Fatal(err)
	}
	base := openOptsFor(fresh, false)
	if _, _, err := OpenSharded(dir, base); err != nil {
		t.Fatalf("control open failed: %v", err)
	}
	for name, mut := range map[string]func(*OpenOptions){
		"seed":        func(o *OpenOptions) { o.Seed++ },
		"fingerprint": func(o *OpenOptions) { o.Fingerprint++ },
		"items":       func(o *OpenOptions) { o.NumItems++ },
		"shards":      func(o *OpenOptions) { o.Shards++ },
		"bands":       func(o *OpenOptions) { o.Params.Bands++ },
		"rows":        func(o *OpenOptions) { o.Params.Rows++ },
		"reorder":     func(o *OpenOptions) { o.Reorder = false },
	} {
		t.Run(name, func(t *testing.T) {
			opt := base
			mut(&opt)
			sh, _, err := OpenSharded(dir, opt)
			if err == nil {
				sh.ClosePersist()
				t.Fatal("stale index accepted")
			}
		})
	}
	t.Run("missing", func(t *testing.T) {
		if _, _, err := OpenSharded(t.TempDir(), base); err == nil {
			t.Fatal("empty directory accepted")
		}
	})
}

// TestOpenShardedSkipForeign pins the oracle interaction: loading with
// SkipForeign (the DisableForeignSlots path) must leave the key-probe
// oracle in effect, with the same answers.
func TestOpenShardedSkipForeign(t *testing.T) {
	const n = 200
	p := Params{Bands: 6, Rows: 3}
	fresh := buildPersisted(t, p, n, 4, false)
	if fresh.ForeignSlotBytes() <= 0 {
		t.Fatal("reference build has no foreign-slot spans")
	}
	dir := t.TempDir()
	if _, err := fresh.Save(dir, testPersistSeed, testPersistFP, 2); err != nil {
		t.Fatal(err)
	}
	opt := openOptsFor(fresh, true)
	opt.SkipForeign = true
	loaded, _, err := OpenSharded(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.ClosePersist()
	if loaded.ForeignSlotBytes() != 0 {
		t.Fatalf("SkipForeign load still holds %d foreign bytes", loaded.ForeignSlotBytes())
	}
	fq, lq := fresh.NewQuery(), loaded.NewQuery()
	for i := 0; i < n; i++ {
		w := collectQueryCandidates(fq, int32(i))
		g := collectQueryCandidates(lq, int32(i))
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("item %d candidates differ under SkipForeign", i)
		}
	}
}

// TestPersistResidencyBudget runs a mapped index under a budget
// smaller than any shard: every shard but the first starts demoted,
// queries promote shards on use and evict others, and — the "slow,
// not missing" contract — every answer stays identical.
func TestPersistResidencyBudget(t *testing.T) {
	const n = 300
	p := Params{Bands: 6, Rows: 3}
	fresh := buildPersisted(t, p, n, 4, true)
	dir := t.TempDir()
	if _, err := fresh.Save(dir, testPersistSeed, testPersistFP, 2); err != nil {
		t.Fatal(err)
	}
	opt := openOptsFor(fresh, true)
	opt.MemoryBudget = 1
	loaded, _, err := OpenSharded(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.ClosePersist()
	if res, _, dem, ok := loaded.ResidencyStats(); !ok || res != 1 || dem < 3 {
		t.Fatalf("after open: resident=%d demotions=%d ok=%v, want 1 resident, >=3 demoted", res, dem, ok)
	}
	fq, lq := fresh.NewQuery(), loaded.NewQuery()
	for i := 0; i < n; i++ {
		w := collectQueryCandidates(fq, int32(i))
		g := collectQueryCandidates(lq, int32(i))
		if !reflect.DeepEqual(w, g) {
			t.Fatalf("item %d candidates differ under memory budget", i)
		}
	}
	if _, prom, _, _ := loaded.ResidencyStats(); prom < 3 {
		t.Fatalf("sweep over all shards recorded only %d promotions", prom)
	}
	// An unbudgeted heap load must report no residency manager.
	if _, _, _, ok := fresh.ResidencyStats(); ok {
		t.Fatal("fresh index reports a residency manager")
	}
}

// hashFrozen folds every frozen array of every shard (plus reorder and
// foreign arrays) into one platform-independent FNV-1a hash, value by
// value in little-endian order.
func hashFrozen(sh *Sharded) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w32 := func(vs []int32) {
		for _, v := range vs {
			binary.LittleEndian.PutUint32(buf[:4], uint32(v))
			h.Write(buf[:4])
		}
	}
	w64 := func(vs []uint64) {
		for _, v := range vs {
			binary.LittleEndian.PutUint64(buf[:], v)
			h.Write(buf[:])
		}
	}
	for _, ix := range sh.shards {
		fz := ix.frozen
		w32(fz.offsets)
		w32(fz.items)
		w32(fz.slots)
		w64(fz.keys)
		w32(fz.bandStart)
		for _, tb := range fz.tables {
			binary.LittleEndian.PutUint64(buf[:], tb.mask)
			h.Write(buf[:])
			for _, e := range tb.entries {
				binary.LittleEndian.PutUint64(buf[:], e.key)
				h.Write(buf[:])
				binary.LittleEndian.PutUint32(buf[:4], uint32(e.slot))
				h.Write(buf[:4])
			}
		}
	}
	w32(sh.perm)
	w32(sh.inv)
	for _, f := range sh.foreign {
		w32(f)
	}
	for _, f := range sh.foreignEmpty {
		w64(f)
	}
	return h.Sum64()
}

// TestPersistGoldenDeterminism pins the frozen layout to a golden
// hash: the exact array content the on-disk format persists must not
// drift with worker count, rebuilds, or accidental nondeterminism in
// BuildFrozen — a saved index must stay loadable as a byte-exact
// oracle across runs.
func TestPersistGoldenDeterminism(t *testing.T) {
	const (
		n      = 300
		golden = uint64(0x0079e1d067691917)
	)
	p := Params{Bands: 6, Rows: 3}
	for _, workers := range []int{1, 4} {
		sh, err := NewSharded(p, testPersistSeed, n, 4)
		if err != nil {
			t.Fatal(err)
		}
		sh.SetReorder(true)
		keys := signKeysFor(sh, testSets(n, 17), 2)
		if err := sh.BuildFrozen(keys, n, workers); err != nil {
			t.Fatal(err)
		}
		sh.MaterializeForeignSlots(-1)
		if got := hashFrozen(sh); got != golden {
			t.Fatalf("workers=%d: frozen-layout hash %#x, golden %#x — the persisted layout drifted",
				workers, got, golden)
		}
	}
}

// FuzzPersistRoundTrip fuzzes the save/load identity: for any shard
// count, banding shape, signed value sets and reorder setting, a saved
// index loaded back (heap and mmap) is byte-identical to the build
// that saved it.
func FuzzPersistRoundTrip(f *testing.F) {
	f.Add(uint8(2), uint8(6), uint8(3), uint16(60), uint64(21), []byte("persist"))
	f.Add(uint8(1), uint8(1), uint8(1), uint16(3), uint64(0), []byte{})
	f.Add(uint8(4), uint8(8), uint8(2), uint16(130), uint64(9), []byte{0xff, 0x10, 0x7f})
	f.Fuzz(func(t *testing.T, shards, bands, rows uint8, n uint16, seed uint64, data []byte) {
		S := 1 + int(shards)%4
		p := Params{Bands: 1 + int(bands)%8, Rows: 1 + int(rows)%4}
		nn := S + int(n)%130
		reorder := byteAt(data, 0)%2 == 1
		sets := fuzzSets(nn, data)

		sh, err := NewSharded(p, seed, nn, S)
		if err != nil {
			t.Fatal(err)
		}
		sh.SetReorder(reorder)
		keys := signKeysFor(sh, sets, 2)
		if err := sh.BuildFrozen(keys, nn, 2); err != nil {
			t.Fatal(err)
		}
		if byteAt(data, 1)%2 == 0 {
			sh.MaterializeForeignSlots(-1)
		}
		dir := t.TempDir()
		if _, err := sh.Save(dir, seed, seed^0x5bd1e995, 2); err != nil {
			t.Fatal(err)
		}
		for _, mmap := range []bool{false, true} {
			opt := OpenOptions{
				Params:      p,
				Seed:        seed,
				NumItems:    nn,
				Shards:      S,
				Reorder:     sh.perm != nil,
				Fingerprint: seed ^ 0x5bd1e995,
				Mmap:        mmap,
				Workers:     2,
			}
			loaded, _, err := OpenSharded(dir, opt)
			if err != nil {
				t.Fatal(err)
			}
			assertShardedEqual(t, sh, loaded)
			loaded.ClosePersist()
		}
	})
}

// TestSaveRejectsUnfrozen pins Save's preconditions.
func TestSaveRejectsUnfrozen(t *testing.T) {
	sh, err := NewSharded(Params{Bands: 2, Rows: 2}, 1, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sh.Save(filepath.Join(t.TempDir(), "idx"), 1, 2, 1); err == nil {
		t.Fatal("Save on an unfrozen index accepted")
	}
}
