package lsh

// Frozen index layout. Freeze compacts the map-based band buckets into
// flat CSR arrays — a concatenation of every bucket's item IDs plus an
// offsets array — so the per-iteration Candidates lookups walk
// contiguous memory instead of chasing map buckets. Two access paths
// are built:
//
//   - slots[item·bands+band] resolves an *inserted* item directly to
//     its bucket (no hashing at query time): the hot path of the
//     clustering iteration.
//   - an open-addressed key→bucket table per band serves
//     CandidatesOfSet queries for items outside the index (streaming
//     assignment against a frozen batch index).
//
// Bucket IDs are global across bands; each band's buckets occupy a
// contiguous ID range, and every bucket's item order is preserved from
// the build phase, so frozen and unfrozen queries enumerate candidates
// in the identical order.
type frozenIndex struct {
	offsets []int32 // len totalBuckets+1; bucket s holds items[offsets[s]:offsets[s+1]]
	items   []int32 // all buckets' item IDs (global), concatenated
	slots   []int32 // item·bands+band → bucket ID; -1 when not inserted
	// keys[s] is the band key bucket s was filed under (the band is
	// implied by the bucket-ID range). It inverts slots back to keys, so
	// a sharded query can resolve an item's band keys through its owning
	// shard and probe the other shards' key tables without retaining the
	// per-item key arena.
	keys   []uint64
	tables []keyTable
	// bandStart[b] is the first bucket ID of band b (len bands+1, so
	// band b owns slots [bandStart[b], bandStart[b+1])) — the range the
	// foreign-slot materialiser walks to recover each slot's band.
	bandStart []int32
}

// keyTable is a linear-probing open-addressed map from a band key to a
// global bucket ID. Band keys are already avalanche-mixed 64-bit
// hashes, so the raw key masks directly into the table. Load factor is
// kept ≤ 0.5, guaranteeing probe termination. Key and slot are stored
// interleaved so a probe touches one cache line, not one per array —
// the probe-heavy cross-shard fan-out paths are bound by exactly this
// memory traffic.
type keyTable struct {
	entries []keyEntry
	mask    uint64
}

// keyEntry is one table cell; slot −1 means empty.
type keyEntry struct {
	key  uint64
	slot int32
}

func newKeyTable(numKeys int) keyTable {
	size := 2
	for size < 2*numKeys {
		size *= 2
	}
	t := keyTable{
		entries: make([]keyEntry, size),
		mask:    uint64(size - 1),
	}
	for i := range t.entries {
		t.entries[i].slot = -1
	}
	return t
}

func (t *keyTable) put(key uint64, slot int32) {
	i := key & t.mask
	for t.entries[i].slot >= 0 {
		i = (i + 1) & t.mask
	}
	t.entries[i] = keyEntry{key: key, slot: slot}
}

// get returns the bucket ID filed under key, or -1.
func (t *keyTable) get(key uint64) int32 {
	i := key & t.mask
	for {
		e := t.entries[i]
		if e.slot < 0 || e.key == key {
			return e.slot
		}
		i = (i + 1) & t.mask
	}
}

// Frozen reports whether the index has been compacted.
func (ix *Index) Frozen() bool { return ix.frozen != nil }

// Freeze compacts the map-based buckets into the flat CSR layout and
// releases the build-phase storage. After Freeze the index is
// immutable: Insert returns an error, queries are allocation-free and
// return exactly what they returned before freezing (same candidates,
// same enumeration order). Freeze is idempotent.
//
// Bucket IDs are assigned band by band in each key's first-insertion
// order (keyOrder), not map iteration order, so the frozen arrays are
// a deterministic function of the insertion sequence — and, when items
// were inserted in ascending ID order, byte-identical to what
// BuildFrozen produces from the same band keys.
//
// Batch clustering calls this once after bootstrap (via the
// core.Freezer capability); the streaming clusterer, which inserts for
// the lifetime of the stream, never does.
func (ix *Index) Freeze() {
	if ix.frozen != nil {
		return
	}
	bands := ix.params.Bands
	totalBuckets, totalItems := 0, 0
	for _, band := range ix.buckets {
		totalBuckets += len(band)
		for _, items := range band {
			totalItems += len(items)
		}
	}
	fz := &frozenIndex{
		offsets:   make([]int32, 1, totalBuckets+1),
		items:     make([]int32, 0, totalItems),
		keys:      make([]uint64, 0, totalBuckets),
		tables:    make([]keyTable, bands),
		bandStart: make([]int32, bands+1),
	}
	bucketID := int32(0)
	// Iterate band indices, not ix.buckets: with nothing inserted the
	// lazy build storage was never materialised (buckets nil) and every
	// band still needs a valid empty key table for post-freeze queries.
	for b := 0; b < bands; b++ {
		fz.bandStart[b] = bucketID
		var band map[uint64][]int32
		var order []uint64
		if ix.buckets != nil {
			band, order = ix.buckets[b], ix.keyOrder[b]
		}
		tbl := newKeyTable(len(band))
		for _, key := range order {
			fz.items = append(fz.items, band[key]...)
			fz.offsets = append(fz.offsets, int32(len(fz.items)))
			fz.keys = append(fz.keys, key)
			tbl.put(key, bucketID)
			bucketID++
		}
		fz.tables[b] = tbl
	}
	fz.bandStart[bands] = bucketID
	fz.slots = make([]int32, len(ix.inserted)*bands)
	for item, ok := range ix.inserted {
		base := item * bands
		if !ok {
			for b := 0; b < bands; b++ {
				fz.slots[base+b] = -1
			}
			continue
		}
		for b := 0; b < bands; b++ {
			fz.slots[base+b] = fz.tables[b].get(ix.keys[base+b])
		}
	}
	ix.frozen = fz
	ix.buckets = nil // release the build-phase maps
	ix.keyOrder = nil
	ix.keys = nil
}
