package lsh

import (
	"testing"
)

func buildTestIndex(t *testing.T, n int) *Index {
	t.Helper()
	sets := testSets(n, 9)
	ix, err := NewIndex(Params{Bands: 6, Rows: 3}, 41, n)
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range sets {
		if err := ix.Insert(int32(i), set); err != nil {
			t.Fatal(err)
		}
	}
	return ix
}

// TestCandidatesBatchMatchesCandidates pins the batch sweep's per-item
// contract on both layouts: for every block position, concatenating
// the emitted buckets reproduces Candidates' enumeration — same items,
// same order — even though the sweep itself is band-major.
func TestCandidatesBatchMatchesCandidates(t *testing.T) {
	const n = 300
	ix := buildTestIndex(t, n)
	for _, frozen := range []bool{false, true} {
		if frozen {
			ix.Freeze()
		}
		for _, blockLen := range []int{1, 5, 64} {
			for lo := 0; lo < n; lo += blockLen {
				hi := min(lo+blockLen, n)
				blk := make([]int32, 0, hi-lo)
				for i := lo; i < hi; i++ {
					blk = append(blk, int32(i))
				}
				got := make([][]int32, len(blk))
				ix.CandidatesBatch(blk, func(pos int, bucket []int32) {
					got[pos] = append(got[pos], bucket...)
				})
				for pos, item := range blk {
					want := collectCandidates(ix, item)
					if len(got[pos]) != len(want) {
						t.Fatalf("frozen=%v item %d: batch %d candidates, per-item %d",
							frozen, item, len(got[pos]), len(want))
					}
					for j := range want {
						if got[pos][j] != want[j] {
							t.Fatalf("frozen=%v item %d candidate %d: batch %d, per-item %d",
								frozen, item, j, got[pos][j], want[j])
						}
					}
				}
			}
		}
	}
	// Uninserted items are skipped, not reported empty-bucketed.
	ix2 := buildTestIndex(t, 10)
	calls := 0
	ix2.CandidatesBatch([]int32{3, 1000}, func(pos int, bucket []int32) {
		if pos != 0 {
			t.Fatalf("uninserted item produced a bucket at pos %d", pos)
		}
		calls++
	})
	if calls == 0 {
		t.Fatal("inserted item produced no buckets")
	}
}

// TestCandidatesOfSignatureMatchesOfSet pins that signing externally
// and querying by signature reproduces CandidatesOfSet exactly — the
// contract the streaming clusterer's sign-once path relies on.
func TestCandidatesOfSignatureMatchesOfSet(t *testing.T) {
	ix := buildTestIndex(t, 200)
	ix.Freeze()
	probe := []uint64{100, 101, 102, 103}
	want := collectOfSet(ix, probe)
	sig := ix.Scheme().Sign(probe, make([]uint64, ix.Params().SignatureLen()))
	var got []int32
	ix.CandidatesOfSignature(sig, func(other int32) { got = append(got, other) })
	if len(got) != len(want) {
		t.Fatalf("by-signature %d candidates, by-set %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("candidate %d: by-signature %d, by-set %d", i, got[i], want[i])
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on signature length mismatch")
		}
	}()
	ix.CandidatesOfSignature(sig[:3], func(int32) {})
}

// TestReverseMatchesSymmetricCollisions pins the reverse view's
// contract: the set of items emitted for a source set equals the union
// of the sources' candidate enumerations, and bucket-level dedup never
// drops an item.
func TestReverseMatchesSymmetricCollisions(t *testing.T) {
	const n = 300
	ix := buildTestIndex(t, n)
	if ix.NewReverse() != nil {
		t.Fatal("NewReverse on an unfrozen index must return nil")
	}
	ix.Freeze()
	rev := ix.NewReverse()
	if rev == nil {
		t.Fatal("NewReverse returned nil on a frozen index")
	}
	sources := []int32{3, 50, 51, 120}
	want := map[int32]bool{}
	for _, s := range sources {
		for _, other := range collectCandidates(ix, s) {
			want[other] = true
		}
	}
	for round := 0; round < 2; round++ { // second round: marks were reset
		got := map[int32]bool{}
		for _, s := range sources {
			rev.AddSource(s)
		}
		rev.AddSource(10_000) // uninserted: ignored
		rev.Emit(func(item int32) bool {
			got[item] = true
			return true
		})
		if len(got) != len(want) {
			t.Fatalf("round %d: reverse emitted %d distinct items, want %d", round, len(got), len(want))
		}
		for item := range want {
			if !got[item] {
				t.Fatalf("round %d: reverse missed item %d", round, item)
			}
		}
	}
	// Early stop still resets the view.
	rev.AddSource(sources[0])
	emitted := 0
	rev.Emit(func(item int32) bool {
		emitted++
		return false
	})
	if emitted != 1 {
		t.Fatalf("early-stopped Emit delivered %d items, want 1", emitted)
	}
	rev.Emit(func(item int32) bool {
		t.Fatalf("reset view emitted item %d", item)
		return false
	})
}
