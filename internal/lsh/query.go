package lsh

import "time"

// Query is the per-caller planner over a Sharded index. It plans each
// candidate sweep as shard-local sub-queries — the owning shard
// resolves the query item's band keys, every shard is probed for the
// matching bucket — and merges the shard-local shortlists back into
// the exact candidate stream the unsharded index would emit:
//
//   - Range partition: per band, buckets are concatenated in ascending
//     shard order. Shard buckets hold ascending global IDs from
//     disjoint contiguous ranges, so the concatenation IS the
//     ascending-ID merge — order-preserving at zero comparison cost.
//
//   - Stride partition: per band, an S-way ascending merge interleaves
//     the shard buckets back into global-ID order.
//
// Either way a consumer observes exactly the sequence the single-index
// Candidates/CandidatesBatch/CandidatesOfSignature calls would
// deliver — the property the full-run shard-invariance tests pin,
// since the driver's tie-breaking depends on enumeration order.
//
// A Query owns private scratch (block key buffers, merge heads): a
// single Query must not be used concurrently, but distinct Queries
// over one Sharded index may be — the driver creates one per pass
// worker. With a single shard every method delegates straight to the
// underlying Index.
type Query struct {
	sh *Sharded
	// owners/locals/keyBuf/slotBuf are the per-position scratch of the
	// batched block sweep.
	owners  []int32
	locals  []int32
	keyBuf  []uint64
	slotBuf []int32
	// order is the reordered block sweep's position schedule: valid
	// block positions sorted by internal ID, so the sweep walks the
	// permuted arena sequentially (candidatesBatchReordered).
	order []int32
	// sigKeys holds the band keys of an out-of-index query signature.
	sigKeys []uint64
	// heads is the stride-merge cursor scratch.
	heads []mergeHead
	// oneBuf wraps single merged candidates as one-element buckets for
	// the stride-mode batch fallback.
	oneBuf [1]int32
	// pendingNanos/pendingCalls batch per-item merge-time samples
	// locally so the hottest per-item paths (seeded interleave,
	// streaming) pay the shared atomic once per flush, not per query.
	pendingNanos int64
	pendingCalls int
	// pendingProbe/pendingDirect batch the fan-out path counters
	// (cross-shard bucket resolutions by key probe vs foreign-slot
	// load) under the same flush cadence.
	pendingProbe  int64
	pendingDirect int64
	// pendingLocal/pendingForeign batch the shard-locality candidate
	// counters (owner-shard vs foreign-shard shortlist candidates, the
	// shard_local_frac report) under the same flush cadence.
	pendingLocal   int64
	pendingForeign int64
	// Backend-routed sweep state (resilient.go): gather buffers for the
	// per-shard fan-out, replay cursors, and the degradation outcome of
	// the most recent sweep. Unused (and unallocated) on the direct
	// path.
	lastDeg     degradedState
	blockDeg    []degradedState
	perShard    [][]bucketHit
	cursors     []int
	blockKeys   []uint64
	groupLocals []int32
	groupPos    []int32
	posMap      []int32
}

type mergeHead struct {
	bucket []int32
	next   int
}

// NewQuery returns a planner with private scratch.
func (sh *Sharded) NewQuery() *Query {
	return &Query{sh: sh}
}

// addMergeNanos accrues one per-item query's cross-shard sweep time,
// flushing to the shared atomic in batches of mergeFlushEvery. Up to
// mergeFlushEvery−1 samples may still be pending when MergeTime is
// read — a bounded undercount, irrelevant at reporting granularity,
// in exchange for keeping the shared cache line out of the per-query
// path. Block sweeps bypass this and flush directly, once per block.
func (q *Query) addMergeNanos(n int64) {
	q.pendingNanos += n
	if q.pendingCalls++; q.pendingCalls >= mergeFlushEvery {
		sh := q.sh
		sh.mergeNanos.Add(q.pendingNanos)
		if q.pendingProbe > 0 {
			sh.probeOps.Add(q.pendingProbe)
		}
		if q.pendingDirect > 0 {
			sh.directOps.Add(q.pendingDirect)
		}
		if q.pendingLocal > 0 {
			sh.localCands.Add(q.pendingLocal)
		}
		if q.pendingForeign > 0 {
			sh.foreignCands.Add(q.pendingForeign)
		}
		q.pendingNanos, q.pendingCalls = 0, 0
		q.pendingProbe, q.pendingDirect = 0, 0
		q.pendingLocal, q.pendingForeign = 0, 0
	}
}

const mergeFlushEvery = 64

// Candidates invokes fn for every item sharing at least one band
// bucket with the previously inserted global item, with Index.
// Candidates' duplication semantics and enumeration order.
//
//lshvet:noescape
func (q *Query) Candidates(item int32, fn func(other int32)) {
	sh := q.sh
	if sh.res != nil {
		q.backendCandidates(item, fn)
		return
	}
	if perm := sh.perm; perm != nil {
		// Reordered index: translate to internal space; emitted
		// candidates are internal IDs in ascending-original order (see
		// reorder.go).
		if item < 0 || int(item) >= len(perm) {
			return
		}
		if sh.single != nil {
			sh.single.Candidates(perm[item], fn)
			return
		}
		q.candidatesReordered(perm[item], fn)
		return
	}
	if sh.single != nil {
		sh.single.Candidates(item, fn)
		return
	}
	start := time.Now()
	s, local, ok := sh.part.locate(item)
	if !ok || !sh.shards[s].isInserted(local) {
		return
	}
	sh.touchShard(s)
	own := sh.shards[s]
	bands := sh.params.Bands
	if fz := own.frozen; fz != nil && !sh.part.stride {
		// Owner-direct frozen path (range mode freezes every shard in
		// one step): each band resolves the owner's bucket through its
		// freeze-time slot — no owner key-table probe — and reaches
		// foreign shards by foreign-slot load when materialised, key
		// probe otherwise.
		base := int(local) * bands
		for b := 0; b < bands; b++ {
			q.fanOutFrozen(s, fz.slots[base+b], b, fn)
		}
		cross := int64(bands) * int64(len(sh.shards)-1)
		if sh.foreign != nil {
			q.pendingDirect += cross
		} else {
			q.pendingProbe += cross
		}
		q.addMergeNanos(time.Since(start).Nanoseconds())
		return
	}
	for b := 0; b < bands; b++ {
		q.fanOutBand(b, own.itemBandKey(local, b), fn)
	}
	q.pendingProbe += int64(bands) * int64(len(sh.shards)-1)
	q.addMergeNanos(time.Since(start).Nanoseconds())
}

// fanOutFrozen emits one band's bucket across all shards in ascending
// shard order (range partition, all shards frozen): the owner through
// its already-resolved bucket slot, foreign shards through the
// foreign-slot arrays when materialised and by key probe otherwise.
// Ascending-shard concatenation is the ascending-ID merge, exactly as
// in fanOutBand.
//
//lshvet:noescape
func (q *Query) fanOutFrozen(s int, slot int32, b int, fn func(other int32)) {
	sh := q.sh
	if sh.foreign != nil {
		stride := 2 * (len(sh.shards) - 1)
		row := sh.foreign[s][int(slot)*stride : int(slot)*stride+stride]
		ti := 0
		for t, ix := range sh.shards {
			fz := ix.frozen
			if t == s {
				lo, hi := fz.offsets[slot], fz.offsets[slot+1]
				q.pendingLocal += int64(hi - lo)
				for _, g := range fz.items[lo:hi] {
					fn(g)
				}
				continue
			}
			lo, hi := row[2*ti], row[2*ti+1]
			ti++
			q.pendingForeign += int64(hi - lo)
			for _, g := range fz.items[lo:hi] {
				fn(g)
			}
		}
		return
	}
	key := sh.shards[s].frozen.keys[slot]
	for t, ix := range sh.shards {
		if t == s {
			fz := ix.frozen
			lo, hi := fz.offsets[slot], fz.offsets[slot+1]
			q.pendingLocal += int64(hi - lo)
			for _, g := range fz.items[lo:hi] {
				fn(g)
			}
			continue
		}
		bucket := ix.lookupBucket(b, key)
		q.pendingForeign += int64(len(bucket))
		for _, g := range bucket {
			fn(g)
		}
	}
}

// fanOutBand emits one band's colliding items across all shards in
// ascending global-ID order: concatenation for range shards, an S-way
// merge for stride shards.
//
//lshvet:noescape
func (q *Query) fanOutBand(b int, key uint64, fn func(other int32)) {
	sh := q.sh
	if !sh.part.stride {
		for _, ix := range sh.shards {
			for _, g := range ix.lookupBucket(b, key) {
				fn(g)
			}
		}
		return
	}
	q.heads = q.heads[:0]
	for _, ix := range sh.shards {
		if bucket := ix.lookupBucket(b, key); len(bucket) > 0 {
			q.heads = append(q.heads, mergeHead{bucket: bucket})
		}
	}
	q.mergeEmit(fn)
}

// mergeEmit drains q.heads in ascending global-ID order. Every bucket
// is strictly ascending (items insert in ascending global order within
// a shard) and shards hold disjoint IDs, so a repeated min-head scan —
// S is small — reproduces the unsharded bucket exactly.
//
//lshvet:noescape
func (q *Query) mergeEmit(fn func(other int32)) {
	for len(q.heads) > 0 {
		minAt := 0
		for h := 1; h < len(q.heads); h++ {
			if q.heads[h].bucket[q.heads[h].next] < q.heads[minAt].bucket[q.heads[minAt].next] {
				minAt = h
			}
		}
		head := &q.heads[minAt]
		fn(head.bucket[head.next])
		head.next++
		if head.next == len(head.bucket) {
			last := len(q.heads) - 1
			q.heads[minAt] = q.heads[last]
			q.heads = q.heads[:last]
		}
	}
}

// CandidatesBatch invokes fn with each position's buckets in exactly
// the per-position sequence Candidates would deliver, band-major
// across the block so the sweep stays inside one shard's contiguous
// band region at a time (see Index.CandidatesBatch for why that order
// amortises cache misses). On range partitions each (item, band,
// shard) bucket arrives whole, shard-ascending within the band; on
// stride partitions, whose shard buckets interleave in ID space, each
// (item, band) emission is the S-way ascending merge delivered as
// maximal single-shard runs. Bucket slices alias index storage and
// must not be modified. Backend-routed stride sweeps fall back to
// per-item queries to keep their per-position degradation accounting.
func (q *Query) CandidatesBatch(items []int32, fn func(pos int, bucket []int32)) {
	sh := q.sh
	if sh.res != nil && !sh.part.stride {
		q.backendCandidatesBatch(items, fn)
		return
	}
	if sh.perm != nil {
		q.candidatesBatchReordered(items, fn)
		return
	}
	if sh.single != nil {
		sh.single.CandidatesBatch(items, fn)
		return
	}
	if sh.part.stride {
		if sh.res != nil {
			q.ensureBlockDeg(len(items))
			for pos, item := range items {
				q.Candidates(item, func(other int32) {
					q.oneBuf[0] = other
					fn(pos, q.oneBuf[:])
				})
				q.blockDeg[pos] = q.lastDeg
			}
			return
		}
		q.candidatesBatchStride(items, fn)
		return
	}
	start := time.Now()
	n := len(items)
	if cap(q.owners) < n {
		q.owners = make([]int32, n)
		q.locals = make([]int32, n)
		q.keyBuf = make([]uint64, n)
		q.slotBuf = make([]int32, n)
	}
	owners, locals, keyBuf := q.owners[:n], q.locals[:n], q.keyBuf[:n]
	valid := 0
	for pos, item := range items {
		s, local, ok := sh.part.locate(item)
		if ok && sh.shards[s].isInserted(local) {
			owners[pos], locals[pos] = int32(s), local
			valid++
		} else {
			owners[pos] = -1
		}
	}
	sh.touchOwners(owners)
	bands := sh.params.Bands
	cross := int64(valid) * int64(bands) * int64(len(sh.shards)-1)
	frozenAll := true
	for _, ix := range sh.shards {
		if ix.frozen == nil {
			frozenAll = false
			break
		}
	}
	if frozenAll && sh.foreign != nil {
		// Foreign-slot fast path: the owning shard resolves each
		// position's bucket slot directly and every foreign shard's
		// bucket span is one indexed load off that — band keys are
		// never read, tables never probed, foreign offsets never
		// touched. Range blocks are (nearly) sorted by global ID, so
		// positions cluster into runs owned by one shard; each run
		// hoists its shard and foreign-row lookups, and the interleaved
		// rows keep a position's whole fan-out on the cache line its
		// first foreign load pulled in.
		stride := 2 * (len(sh.shards) - 1)
		slotBuf := q.slotBuf[:n]
		var localC, foreignC int64
		for b := 0; b < bands; b++ {
			for pos := 0; pos < n; {
				o := owners[pos]
				if o < 0 {
					pos++
					continue
				}
				end := pos + 1
				for end < n && owners[end] == o {
					end++
				}
				fz := sh.shards[o].frozen
				slots, loc := fz.slots, locals
				for p := pos; p < end; p++ {
					slotBuf[p] = slots[int(loc[p])*bands+b]
				}
				pos = end
			}
			for t, ix := range sh.shards {
				fz := ix.frozen
				offs, bucketed := fz.offsets, fz.items
				for pos := 0; pos < n; {
					o := owners[pos]
					if o < 0 {
						pos++
						continue
					}
					end := pos + 1
					for end < n && owners[end] == o {
						end++
					}
					if o == int32(t) {
						for p := pos; p < end; p++ {
							slot := slotBuf[p]
							if lo, hi := offs[slot], offs[slot+1]; hi > lo {
								localC += int64(hi - lo)
								fn(p, bucketed[lo:hi])
							}
						}
					} else {
						frows := sh.foreign[o]
						ti := t
						if t > int(o) {
							ti = t - 1
						}
						for p := pos; p < end; p++ {
							at := int(slotBuf[p])*stride + 2*ti
							if lo, hi := frows[at], frows[at+1]; hi > lo {
								foreignC += int64(hi - lo)
								fn(p, bucketed[lo:hi])
							}
						}
					}
					pos = end
				}
			}
		}
		sh.directOps.Add(cross)
		sh.localCands.Add(localC)
		sh.foreignCands.Add(foreignC)
		sh.mergeNanos.Add(time.Since(start).Nanoseconds())
		return
	}
	if frozenAll {
		// Frozen probe path: the owning shard resolves each position's
		// bucket slot directly (no probe) and its key feeds the foreign
		// probes, each of which is one interleaved-table cache line.
		slotBuf := q.slotBuf[:n]
		var localC, foreignC int64
		for b := 0; b < bands; b++ {
			for pos := range items {
				if owners[pos] < 0 {
					continue
				}
				fz := sh.shards[owners[pos]].frozen
				slot := fz.slots[int(locals[pos])*bands+b]
				slotBuf[pos] = slot
				keyBuf[pos] = fz.keys[slot]
			}
			for s, ix := range sh.shards {
				fz := ix.frozen
				tbl := &fz.tables[b]
				for pos := range items {
					if owners[pos] < 0 {
						continue
					}
					slot := slotBuf[pos]
					local := owners[pos] == int32(s)
					if !local {
						if slot = tbl.get(keyBuf[pos]); slot < 0 {
							continue
						}
					}
					if lo, hi := fz.offsets[slot], fz.offsets[slot+1]; hi > lo {
						if local {
							localC += int64(hi - lo)
						} else {
							foreignC += int64(hi - lo)
						}
						fn(pos, fz.items[lo:hi])
					}
				}
			}
		}
		sh.probeOps.Add(cross)
		sh.localCands.Add(localC)
		sh.foreignCands.Add(foreignC)
		sh.mergeNanos.Add(time.Since(start).Nanoseconds())
		return
	}
	for b := 0; b < bands; b++ {
		for pos := range items {
			if owners[pos] >= 0 {
				keyBuf[pos] = sh.shards[owners[pos]].itemBandKey(locals[pos], b)
			}
		}
		for _, ix := range sh.shards {
			for pos := range items {
				if owners[pos] < 0 {
					continue
				}
				if bucket := ix.lookupBucket(b, keyBuf[pos]); len(bucket) > 0 {
					fn(pos, bucket)
				}
			}
		}
	}
	sh.probeOps.Add(cross)
	sh.mergeNanos.Add(time.Since(start).Nanoseconds())
}

// candidatesBatchStride is the stride-partition block sweep: band-major
// like the range paths, with each position's (item, band) emission an
// S-way ascending merge of the per-shard buckets delivered as maximal
// single-shard runs (mergeRuns) — the same candidate sequence the
// per-item Candidates fallback produced one element at a time, without
// its per-candidate closure dispatch and with the key resolutions
// hoisted band-major. Equivalence tests pin the sequences identical.
func (q *Query) candidatesBatchStride(items []int32, fn func(pos int, bucket []int32)) {
	sh := q.sh
	start := time.Now()
	n := len(items)
	if cap(q.owners) < n {
		q.owners = make([]int32, n)
		q.locals = make([]int32, n)
		q.keyBuf = make([]uint64, n)
		q.slotBuf = make([]int32, n)
	}
	owners, locals, keyBuf := q.owners[:n], q.locals[:n], q.keyBuf[:n]
	valid := 0
	for pos, item := range items {
		s, local, ok := sh.part.locate(item)
		if ok && sh.shards[s].isInserted(local) {
			owners[pos], locals[pos] = int32(s), local
			valid++
		} else {
			owners[pos] = -1
		}
	}
	bands := sh.params.Bands
	for b := 0; b < bands; b++ {
		for pos := range items {
			if owners[pos] >= 0 {
				keyBuf[pos] = sh.shards[owners[pos]].itemBandKey(locals[pos], b)
			}
		}
		for pos := 0; pos < n; pos++ {
			if owners[pos] < 0 {
				continue
			}
			q.heads = q.heads[:0]
			for _, ix := range sh.shards {
				if bucket := ix.lookupBucket(b, keyBuf[pos]); len(bucket) > 0 {
					q.heads = append(q.heads, mergeHead{bucket: bucket})
				}
			}
			q.mergeRuns(pos, fn)
		}
	}
	sh.probeOps.Add(int64(valid) * int64(bands) * int64(len(sh.shards)-1))
	sh.mergeNanos.Add(time.Since(start).Nanoseconds())
}

// mergeRuns drains q.heads in ascending global-ID order, emitting
// maximal single-shard runs as bucket sub-slices: the head with the
// smallest front ID advances until the next-smallest other head would
// overtake it, and the stretch is handed to fn in one call. Buckets are
// strictly ascending with disjoint IDs across shards, so the
// concatenation of emitted runs is exactly the mergeEmit sequence.
func (q *Query) mergeRuns(pos int, fn func(pos int, bucket []int32)) {
	for len(q.heads) > 0 {
		if len(q.heads) == 1 {
			h := &q.heads[0]
			fn(pos, h.bucket[h.next:])
			q.heads = q.heads[:0]
			return
		}
		minAt := 0
		minV := q.heads[0].bucket[q.heads[0].next]
		limit := int32((1 << 31) - 1)
		for h := 1; h < len(q.heads); h++ {
			v := q.heads[h].bucket[q.heads[h].next]
			if v < minV {
				limit = minV
				minV, minAt = v, h
			} else if v < limit {
				limit = v
			}
		}
		head := &q.heads[minAt]
		runStart := head.next
		for head.next < len(head.bucket) && head.bucket[head.next] < limit {
			head.next++
		}
		fn(pos, head.bucket[runStart:head.next])
		if head.next == len(head.bucket) {
			last := len(q.heads) - 1
			q.heads[minAt] = q.heads[last]
			q.heads = q.heads[:last]
		}
	}
}

// CandidatesOfKeys reports the items colliding with precomputed band
// keys (one per band), with Candidates' duplication semantics and
// enumeration order — the query half of the sharded seeded bootstrap,
// probing every shard's growing (or frozen) tables. On a reordered
// index the emitted IDs are internal, in ascending-original order,
// like every other candidate path.
func (q *Query) CandidatesOfKeys(keys []uint64, fn func(other int32)) {
	sh := q.sh
	if sh.res != nil {
		q.backendCandidatesOfKeys(keys, fn)
		return
	}
	if sh.single != nil {
		sh.single.CandidatesOfKeys(keys, fn)
		return
	}
	if len(keys) != sh.params.Bands {
		panic("lsh: CandidatesOfKeys key count mismatch")
	}
	start := time.Now()
	if sh.inv != nil {
		for b, key := range keys {
			q.heads = q.heads[:0]
			for _, ix := range sh.shards {
				if bucket := ix.lookupBucket(b, key); len(bucket) > 0 {
					q.heads = append(q.heads, mergeHead{bucket: bucket})
				}
			}
			if len(q.heads) == 1 {
				for _, g := range q.heads[0].bucket {
					fn(g)
				}
				q.heads = q.heads[:0]
			} else {
				q.mergeEmitByInv(fn)
			}
		}
	} else {
		for b, key := range keys {
			q.fanOutBand(b, key, fn)
		}
	}
	q.pendingProbe += int64(len(keys)) * int64(len(sh.shards)-1)
	q.addMergeNanos(time.Since(start).Nanoseconds())
}

// CandidatesOfSignature reports the items colliding with a precomputed
// signature of length SignatureLen — the streaming query path, where
// the arriving item is signed once and the signature serves both this
// query and the subsequent InsertSignature.
func (q *Query) CandidatesOfSignature(sig []uint64, fn func(other int32)) {
	sh := q.sh
	if sh.single != nil && sh.res == nil {
		sh.single.CandidatesOfSignature(sig, fn)
		return
	}
	if len(sig) != sh.params.SignatureLen() {
		panic("lsh: CandidatesOfSignature signature length mismatch")
	}
	if cap(q.sigKeys) < sh.params.Bands {
		q.sigKeys = make([]uint64, sh.params.Bands)
	}
	keys := q.sigKeys[:sh.params.Bands]
	for b := range keys {
		keys[b] = bandKeyOf(sh.params, sig, b)
	}
	q.CandidatesOfKeys(keys, fn)
}
