package lsh

import (
	"math/rand"
	"testing"
)

func testSets(n int, seed int64) [][]uint64 {
	rng := rand.New(rand.NewSource(seed))
	sets := make([][]uint64, n)
	for i := range sets {
		// Overlapping value sets so real bucket collisions occur.
		set := make([]uint64, 12)
		base := uint64(rng.Intn(8)) * 100
		for j := range set {
			set[j] = base + uint64(rng.Intn(40))
		}
		sets[i] = set
	}
	return sets
}

func collectCandidates(ix *Index, item int32) []int32 {
	var out []int32
	ix.Candidates(item, func(other int32) { out = append(out, other) })
	return out
}

func collectOfSet(ix *Index, set []uint64) []int32 {
	var out []int32
	ix.CandidatesOfSet(set, func(other int32) { out = append(out, other) })
	return out
}

// TestFreezePreservesQueries pins the central frozen-index property:
// Candidates and CandidatesOfSet return exactly the same candidates in
// exactly the same order before and after Freeze (the clustering
// driver's tie-breaking depends on enumeration order).
func TestFreezePreservesQueries(t *testing.T) {
	sets := testSets(300, 9)
	p := Params{Bands: 6, Rows: 3}
	ix, err := NewIndex(p, 41, len(sets))
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range sets {
		if err := ix.Insert(int32(i), set); err != nil {
			t.Fatal(err)
		}
	}
	before := make([][]int32, len(sets))
	for i := range sets {
		before[i] = collectCandidates(ix, int32(i))
		if len(before[i]) < p.Bands {
			t.Fatalf("item %d: %d candidates, want ≥ bands (self-collision per band)", i, len(before[i]))
		}
	}
	probe := []uint64{100, 101, 102, 103}
	probeBefore := collectOfSet(ix, probe)
	statsBefore := ix.Stats()

	ix.Freeze()
	if !ix.Frozen() {
		t.Fatal("index not frozen after Freeze")
	}
	ix.Freeze() // idempotent

	for i := range sets {
		after := collectCandidates(ix, int32(i))
		if len(after) != len(before[i]) {
			t.Fatalf("item %d: %d candidates frozen, %d unfrozen", i, len(after), len(before[i]))
		}
		for j := range after {
			if after[j] != before[i][j] {
				t.Fatalf("item %d candidate %d: frozen %d, unfrozen %d (order must match)",
					i, j, after[j], before[i][j])
			}
		}
	}
	probeAfter := collectOfSet(ix, probe)
	if len(probeAfter) != len(probeBefore) {
		t.Fatalf("CandidatesOfSet: %d frozen, %d unfrozen", len(probeAfter), len(probeBefore))
	}
	for j := range probeAfter {
		if probeAfter[j] != probeBefore[j] {
			t.Fatalf("CandidatesOfSet[%d]: frozen %d, unfrozen %d", j, probeAfter[j], probeBefore[j])
		}
	}

	statsAfter := ix.Stats()
	if statsAfter != statsBefore {
		t.Fatalf("stats changed across Freeze: %+v vs %+v", statsAfter, statsBefore)
	}
}

func TestFrozenIndexRejectsInsert(t *testing.T) {
	ix, err := NewIndex(Params{Bands: 2, Rows: 2}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(0, []uint64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	ix.Freeze()
	if err := ix.Insert(1, []uint64{4, 5, 6}); err == nil {
		t.Fatal("Insert after Freeze succeeded, want error")
	}
}

func TestFreezeWithGapsAndUnqueriedItems(t *testing.T) {
	ix, err := NewIndex(Params{Bands: 3, Rows: 2}, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Sparse, out-of-order IDs exercise the slots gap handling.
	for _, id := range []int32{7, 2, 19} {
		if err := ix.Insert(id, []uint64{uint64(id), uint64(id) + 1}); err != nil {
			t.Fatal(err)
		}
	}
	ix.Freeze()
	if got := collectCandidates(ix, 3); got != nil {
		t.Fatalf("never-inserted item returned candidates %v", got)
	}
	if got := collectCandidates(ix, 100); got != nil {
		t.Fatalf("out-of-range item returned candidates %v", got)
	}
	for _, id := range []int32{7, 2, 19} {
		found := false
		for _, c := range collectCandidates(ix, id) {
			if c == id {
				found = true
			}
		}
		if !found {
			t.Fatalf("item %d missing from its own candidates after freeze", id)
		}
	}
}

func TestNumInsertedCounter(t *testing.T) {
	ix, err := NewIndex(Params{Bands: 2, Rows: 2}, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumInserted() != 0 {
		t.Fatalf("fresh index NumInserted = %d", ix.NumInserted())
	}
	// Sparse ascending IDs force repeated grow calls.
	ids := []int32{0, 5, 17, 100, 1000}
	for i, id := range ids {
		if err := ix.Insert(id, []uint64{uint64(id), 1}); err != nil {
			t.Fatal(err)
		}
		if got := ix.NumInserted(); got != i+1 {
			t.Fatalf("after %d inserts NumInserted = %d", i+1, got)
		}
	}
	// A duplicate insert fails and must not bump the counter.
	if err := ix.Insert(5, []uint64{9, 9}); err == nil {
		t.Fatal("duplicate insert succeeded")
	}
	if got := ix.NumInserted(); got != len(ids) {
		t.Fatalf("NumInserted = %d after failed duplicate, want %d", got, len(ids))
	}
	// Stats agrees with the counter.
	if st := ix.Stats(); st.Items != len(ids) {
		t.Fatalf("Stats.Items = %d, want %d", st.Items, len(ids))
	}
}

func TestGrowPreservesState(t *testing.T) {
	p := Params{Bands: 4, Rows: 2}
	ix, err := NewIndex(p, 11, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Insert with ascending IDs far past the capacity hint; earlier
	// items' stored keys must survive every grow.
	sets := testSets(200, 3)
	for i, set := range sets {
		if err := ix.Insert(int32(i), set); err != nil {
			t.Fatal(err)
		}
	}
	for i := range sets {
		self := 0
		for _, c := range collectCandidates(ix, int32(i)) {
			if c == int32(i) {
				self++
			}
		}
		if self != p.Bands {
			t.Fatalf("item %d self-collisions = %d, want %d (stored keys corrupted by grow?)",
				i, self, p.Bands)
		}
	}
}

// TestFreezeEmptyIndex pins the lazy-storage edge: freezing an index
// before any insert must still build valid (empty) per-band key
// tables, so post-freeze out-of-index queries return no candidates
// instead of panicking — the same behaviour BuildFrozen with n=0 and
// the eager pre-lazy layout had.
func TestFreezeEmptyIndex(t *testing.T) {
	ix := mustIndex(t, Params{Bands: 4, Rows: 2}, 3, 0)
	ix.Freeze()
	if got := collectOfSet(ix, []uint64{1, 2, 3}); len(got) != 0 {
		t.Fatalf("empty frozen index returned candidates %v", got)
	}
	if got := collectCandidates(ix, 0); len(got) != 0 {
		t.Fatalf("empty frozen index returned item candidates %v", got)
	}

	// The unfrozen empty index takes the lazy-guard path instead.
	ix2 := mustIndex(t, Params{Bands: 4, Rows: 2}, 3, 0)
	if got := collectOfSet(ix2, []uint64{1, 2, 3}); len(got) != 0 {
		t.Fatalf("empty unfrozen index returned candidates %v", got)
	}
}
