package lsh

import (
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sync"
	"time"
	"unsafe"

	"lshcluster/internal/lsh/persist"
	"lshcluster/internal/minhash"
)

// Shard-file section IDs (internal/lsh/persist format). Each section
// is the raw memory of one frozen-index slice, so a memory-mapped
// section is usable as the slice field directly.
const (
	secOffsets      persist.SectionID = 1
	secItems        persist.SectionID = 2
	secSlots        persist.SectionID = 3
	secKeys         persist.SectionID = 4
	secBandStart    persist.SectionID = 5
	secTableSizes   persist.SectionID = 6
	secTableEntries persist.SectionID = 7
	secInserted     persist.SectionID = 8
	secForeign      persist.SectionID = 9
	secForeignEmpty persist.SectionID = 10
	secPerm         persist.SectionID = 11
	secInv          persist.SectionID = 12
)

// The on-disk key-table section stores []keyEntry verbatim; pin the
// 16-byte layout the format documents (8-byte key, 4-byte slot, 4
// bytes padding — zeroed by make, so the bytes are deterministic).
var _ [16 - unsafe.Sizeof(keyEntry{})]byte
var _ [unsafe.Sizeof(keyEntry{}) - 16]byte

func shardFileName(s int) string { return fmt.Sprintf("shard-%d.lshz", s) }

// bytesOf reinterprets a slice as its raw backing bytes (zero-copy).
func bytesOf[T any](s []T) []byte {
	if len(s) == 0 {
		return nil
	}
	var t T
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*int(unsafe.Sizeof(t)))
}

func hashInt32s(vs []int32) uint64 {
	h := fnv.New64a()
	h.Write(bytesOf(vs))
	return h.Sum64()
}

// IndexSaved reports whether dir holds a complete saved index (the
// manifest is written last, so its presence implies every shard file
// landed).
func IndexSaved(dir string) bool {
	_, err := os.Stat(filepath.Join(dir, persist.ManifestName))
	return err == nil
}

// SaveReport summarises a Save: wall time and total bytes written.
type SaveReport struct {
	Duration time.Duration
	Bytes    int64
}

// Save persists every frozen shard to <dir>/shard-<i>.lshz plus a
// manifest, creating dir as needed. seed must be the signing seed the
// index was built with and fingerprint the dataset fingerprint; both
// go into the manifest so OpenSharded can reject a stale index. Shard
// files are written in parallel (workers goroutines), each atomically
// (temp + rename), and the manifest last — a crashed save leaves no
// loadable directory. Only frozen, range-partitioned indexes can be
// saved.
func (sh *Sharded) Save(dir string, seed, fingerprint uint64, workers int) (SaveReport, error) {
	start := time.Now()
	if !sh.Frozen() {
		return SaveReport{}, fmt.Errorf("lsh: Save before the index is frozen")
	}
	if sh.part.stride {
		return SaveReport{}, fmt.Errorf("lsh: Save on a stride-partitioned (streaming) index")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return SaveReport{}, fmt.Errorf("lsh: Save: %w", err)
	}
	S := len(sh.shards)
	if workers < 1 {
		workers = 1
	}
	if workers > S {
		workers = S
	}
	errs := make([]error, S)
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := g; s < S; s += workers {
				errs[s] = sh.saveShard(dir, s)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return SaveReport{}, err
		}
	}
	m := &persist.Manifest{
		FormatVersion: persist.FormatVersion,
		Shards:        S,
		Items:         sh.part.n,
		Bands:         sh.params.Bands,
		Rows:          sh.params.Rows,
		Seed:          persist.Hex64(seed),
		Partitioner:   "range",
		Reordered:     sh.perm != nil,
		PermHash:      persist.Hex64(0),
		Fingerprint:   persist.Hex64(fingerprint),
		ForeignBytes:  sh.foreignBytes,
		ShardFiles:    make([]string, S),
		ShardInserted: make([]int, S),
	}
	if sh.perm != nil {
		m.PermHash = persist.Hex64(hashInt32s(sh.perm))
	}
	var bytes int64
	for s := 0; s < S; s++ {
		m.ShardFiles[s] = shardFileName(s)
		m.ShardInserted[s] = sh.shards[s].numInserted
		if st, err := os.Stat(filepath.Join(dir, shardFileName(s))); err == nil {
			bytes += st.Size()
		}
	}
	if err := persist.WriteManifest(dir, m); err != nil {
		return SaveReport{}, fmt.Errorf("lsh: Save: %w", err)
	}
	return SaveReport{Duration: time.Since(start), Bytes: bytes}, nil
}

// saveShard assembles shard s's sections and writes its file.
func (sh *Sharded) saveShard(dir string, s int) error {
	ix := sh.shards[s]
	fz := ix.frozen
	bands := sh.params.Bands
	sizes := make([]int64, bands)
	total := 0
	for b := range fz.tables {
		sizes[b] = int64(len(fz.tables[b].entries))
		total += len(fz.tables[b].entries)
	}
	entries := make([]keyEntry, 0, total)
	for b := range fz.tables {
		entries = append(entries, fz.tables[b].entries...)
	}
	sections := []persist.Section{
		{ID: secOffsets, ElemSize: 4, Data: bytesOf(fz.offsets)},
		{ID: secItems, ElemSize: 4, Data: bytesOf(fz.items)},
		{ID: secSlots, ElemSize: 4, Data: bytesOf(fz.slots)},
		{ID: secKeys, ElemSize: 8, Data: bytesOf(fz.keys)},
		{ID: secBandStart, ElemSize: 4, Data: bytesOf(fz.bandStart)},
		{ID: secTableSizes, ElemSize: 8, Data: bytesOf(sizes)},
		{ID: secTableEntries, ElemSize: 16, Data: bytesOf(entries)},
		{ID: secInserted, ElemSize: 1, Data: bytesOf(ix.inserted)},
	}
	if sh.foreign != nil {
		sections = append(sections,
			persist.Section{ID: secForeign, ElemSize: 4, Data: bytesOf(sh.foreign[s])},
			persist.Section{ID: secForeignEmpty, ElemSize: 8, Data: bytesOf(sh.foreignEmpty[s])},
		)
	}
	if s == 0 && sh.perm != nil {
		sections = append(sections,
			persist.Section{ID: secPerm, ElemSize: 4, Data: bytesOf(sh.perm)},
			persist.Section{ID: secInv, ElemSize: 4, Data: bytesOf(sh.inv)},
		)
	}
	if err := persist.WriteFile(filepath.Join(dir, shardFileName(s)), sections); err != nil {
		return fmt.Errorf("lsh: saving shard %d: %w", s, err)
	}
	return nil
}

// OpenOptions configures OpenSharded. Params, Seed, NumItems, Shards,
// Reorder and Fingerprint state what the caller would build fresh;
// each is checked against the manifest so a stale index is rejected,
// never silently reused.
type OpenOptions struct {
	Params   Params
	Seed     uint64
	NumItems int
	// Shards is the requested shard count (clamped exactly as
	// NewSharded clamps it).
	Shards int
	// Reorder states whether the caller's fresh build would apply the
	// locality reordering; the saved index must match, or the loaded
	// arrays would not be byte-identical to the oracle build.
	Reorder bool
	// Fingerprint is the dataset fingerprint the index must have been
	// built from.
	Fingerprint uint64
	// Mmap selects the zero-copy mapped load; false is the heap-copy
	// oracle (Load).
	Mmap bool
	// MemoryBudget, when > 0 with Mmap, caps resident shard bytes via
	// the residency manager (see residency.go).
	MemoryBudget int64
	// SkipForeign drops any persisted foreign-slot arrays so the
	// key-probe oracle stays in effect (DisableForeignSlots).
	SkipForeign bool
	// ForeignBudget is the foreign-slot byte budget (0 = default,
	// negative = unlimited); persisted arrays over budget are dropped.
	ForeignBudget int64
	Workers       int
}

// OpenReport summarises an OpenSharded: wall time and, for mapped
// loads, the total mapped bytes.
type OpenReport struct {
	Duration  time.Duration
	MmapBytes int64
}

// OpenSharded loads a saved index from dir, verifying the manifest
// against opt and every shard file's checksums, and reconstructs the
// Sharded exactly as a fresh build would have left it: same partition,
// same shared signing scheme, and frozen arrays byte-identical to
// BuildFrozen's (the persistence equivalence tests pin this). With
// opt.Mmap the frozen slices alias read-only mappings (zero-copy);
// otherwise they live on the heap. Shard files load in parallel.
func OpenSharded(dir string, opt OpenOptions) (*Sharded, OpenReport, error) {
	start := time.Now()
	m, err := persist.ReadManifest(dir)
	if err != nil {
		return nil, OpenReport{}, err
	}
	if err := checkManifest(m, &opt); err != nil {
		return nil, OpenReport{}, fmt.Errorf("lsh: stale index in %s: %w", dir, err)
	}
	p := opt.Params
	n := opt.NumItems
	S := m.Shards
	cuts := ShardCuts(n, S)
	sh := &Sharded{
		params: p,
		part:   partition{n: n, s: S, cuts: cuts},
		shards: make([]*Index, S),
	}
	if S == 1 {
		ix, err := NewIndex(p, opt.Seed, n)
		if err != nil {
			return nil, OpenReport{}, err
		}
		sh.shards[0] = ix
		sh.single = ix
	} else {
		scheme := minhash.NewScheme(p.SignatureLen(), opt.Seed)
		for s := 0; s < S; s++ {
			sh.shards[s] = newShardIndex(p, scheme, int(cuts[s+1]-cuts[s]), cuts[s], 1)
		}
	}

	workers := opt.Workers
	if workers < 1 {
		workers = 1
	}
	if workers > S {
		workers = S
	}
	files := make([]*persist.File, S)
	foreign := make([][]int32, S)
	foreignEmpty := make([][]uint64, S)
	loadTimes := make([]time.Duration, S)
	errs := make([]error, S)
	wantForeign := m.ForeignBytes > 0 && !opt.SkipForeign && S > 1
	if wantForeign {
		budget := opt.ForeignBudget
		if budget == 0 {
			budget = DefaultForeignSlotBudget
		}
		if budget >= 0 && m.ForeignBytes > budget {
			wantForeign = false
		}
	}
	closeAll := func() {
		for _, f := range files {
			if f != nil {
				f.Close()
			}
		}
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := g; s < S; s += workers {
				t0 := time.Now()
				errs[s] = sh.loadShard(dir, m, s, &opt, wantForeign, files, foreign, foreignEmpty)
				loadTimes[s] = time.Since(t0)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			closeAll()
			return nil, OpenReport{}, err
		}
	}
	if wantForeign {
		if err := validateForeign(sh, foreign, foreignEmpty); err != nil {
			closeAll()
			return nil, OpenReport{}, err
		}
		sh.foreign = foreign
		sh.foreignEmpty = foreignEmpty
		sh.foreignBytes = m.ForeignBytes
	}
	if m.Reordered {
		if err := loadReorder(sh, files[0], m); err != nil {
			closeAll()
			return nil, OpenReport{}, err
		}
	}
	sh.buildTimes = loadTimes
	sh.persistFiles = files
	var rep OpenReport
	for _, f := range files {
		if f.Mapped() {
			rep.MmapBytes += f.Size()
		}
	}
	sh.persistBytes = rep.MmapBytes
	if opt.Mmap && opt.MemoryBudget > 0 {
		sh.resi = newResidency(files, opt.MemoryBudget)
	}
	rep.Duration = time.Since(start)
	return sh, rep, nil
}

// checkManifest verifies every invalidation rule: any configuration
// drift between the saved index and what the caller would build fresh
// is an error.
func checkManifest(m *persist.Manifest, opt *OpenOptions) error {
	shards := opt.Shards
	if shards > opt.NumItems {
		shards = opt.NumItems
	}
	if shards < 1 {
		shards = 1
	}
	switch {
	case m.Partitioner != "range":
		return fmt.Errorf("partitioner %q, want range", m.Partitioner)
	case m.Items != opt.NumItems:
		return fmt.Errorf("saved for %d items, dataset has %d", m.Items, opt.NumItems)
	case m.Shards != shards:
		return fmt.Errorf("saved with %d shards, run wants %d", m.Shards, shards)
	case m.Bands != opt.Params.Bands || m.Rows != opt.Params.Rows:
		return fmt.Errorf("saved with bands=%d rows=%d, run wants bands=%d rows=%d",
			m.Bands, m.Rows, opt.Params.Bands, opt.Params.Rows)
	case m.Seed != persist.Hex64(opt.Seed):
		return fmt.Errorf("saved under a different signing seed")
	case m.Fingerprint != persist.Hex64(opt.Fingerprint):
		return fmt.Errorf("saved from a different dataset (fingerprint %s, dataset %s)",
			m.Fingerprint, persist.Hex64(opt.Fingerprint))
	case m.Reordered != opt.Reorder:
		return fmt.Errorf("saved with reorder=%v, run wants reorder=%v", m.Reordered, opt.Reorder)
	}
	return nil
}

// loadShard opens shard s's file, validates its structure and installs
// the frozen arrays (aliasing the file's backing memory — the mapping
// or the heap copy) into the shard Index.
func (sh *Sharded) loadShard(dir string, m *persist.Manifest, s int, opt *OpenOptions, wantForeign bool, files []*persist.File, foreign [][]int32, foreignEmpty [][]uint64) error {
	f, err := persist.Open(filepath.Join(dir, m.ShardFiles[s]), opt.Mmap)
	if err != nil {
		return err
	}
	files[s] = f
	bands := sh.params.Bands
	fz := &frozenIndex{}
	if fz.offsets, err = persist.View[int32](f, secOffsets); err != nil {
		return err
	}
	if fz.items, err = persist.View[int32](f, secItems); err != nil {
		return err
	}
	if fz.slots, err = persist.View[int32](f, secSlots); err != nil {
		return err
	}
	if fz.keys, err = persist.View[uint64](f, secKeys); err != nil {
		return err
	}
	if fz.bandStart, err = persist.View[int32](f, secBandStart); err != nil {
		return err
	}
	sizes, err := persist.View[int64](f, secTableSizes)
	if err != nil {
		return err
	}
	entries, err := persist.View[keyEntry](f, secTableEntries)
	if err != nil {
		return err
	}
	inserted, err := persist.View[bool](f, secInserted)
	if err != nil {
		return err
	}
	wantItems := int(sh.part.cuts[s+1] - sh.part.cuts[s])
	if err := validateShardArrays(fz, sizes, entries, inserted, bands, wantItems); err != nil {
		return fmt.Errorf("lsh: shard %d in %s: %w", s, dir, err)
	}
	fz.tables = make([]keyTable, bands)
	off := 0
	for b := 0; b < bands; b++ {
		size := int(sizes[b])
		fz.tables[b] = keyTable{entries: entries[off : off+size : off+size], mask: uint64(size - 1)}
		off += size
	}
	numInserted := 0
	for _, ok := range inserted {
		if ok {
			numInserted++
		}
	}
	if numInserted != m.ShardInserted[s] {
		return fmt.Errorf("lsh: shard %d in %s: %d inserted items, manifest says %d", s, dir, numInserted, m.ShardInserted[s])
	}
	ix := sh.shards[s]
	ix.frozen = fz
	ix.inserted = inserted
	ix.numInserted = numInserted
	f.AdviseRandom(secTableEntries)
	if wantForeign {
		if !f.Has(secForeign) || !f.Has(secForeignEmpty) {
			return fmt.Errorf("lsh: shard %d in %s: manifest promises foreign-slot arrays, file has none", s, dir)
		}
		if foreign[s], err = persist.View[int32](f, secForeign); err != nil {
			return err
		}
		if foreignEmpty[s], err = persist.View[uint64](f, secForeignEmpty); err != nil {
			return err
		}
	}
	return nil
}

// validateShardArrays structurally validates one shard's loaded
// arrays. The checksums already reject storage corruption; these
// checks reject files whose contents are internally inconsistent (a
// crafted or mismatched file), so no later query can index out of
// bounds — corruption is an error here, never a panic downstream.
func validateShardArrays(fz *frozenIndex, sizes []int64, entries []keyEntry, inserted []bool, bands, wantItems int) error {
	if len(inserted) != wantItems {
		return fmt.Errorf("%d inserted flags for %d partition items", len(inserted), wantItems)
	}
	if len(fz.offsets) < 1 || fz.offsets[0] != 0 {
		return fmt.Errorf("offsets must start at 0")
	}
	numBuckets := len(fz.offsets) - 1
	for i := 0; i < numBuckets; i++ {
		if fz.offsets[i] > fz.offsets[i+1] {
			return fmt.Errorf("offsets not monotone at bucket %d", i)
		}
	}
	if int(fz.offsets[numBuckets]) != len(fz.items) {
		return fmt.Errorf("offsets cover %d items, section holds %d", fz.offsets[numBuckets], len(fz.items))
	}
	if len(fz.keys) != numBuckets {
		return fmt.Errorf("%d bucket keys for %d buckets", len(fz.keys), numBuckets)
	}
	if len(fz.bandStart) != bands+1 || fz.bandStart[0] != 0 || int(fz.bandStart[bands]) != numBuckets {
		return fmt.Errorf("bandStart does not cover %d buckets over %d bands", numBuckets, bands)
	}
	for b := 0; b < bands; b++ {
		if fz.bandStart[b] > fz.bandStart[b+1] {
			return fmt.Errorf("bandStart not monotone at band %d", b)
		}
	}
	if len(fz.slots) != wantItems*bands {
		return fmt.Errorf("%d slots for %d items × %d bands", len(fz.slots), wantItems, bands)
	}
	for i, s := range fz.slots {
		if s < -1 || int(s) >= numBuckets {
			return fmt.Errorf("slot %d out of range at index %d", s, i)
		}
	}
	if len(sizes) != bands {
		return fmt.Errorf("%d key-table sizes for %d bands", len(sizes), bands)
	}
	total := 0
	for b, size := range sizes {
		if size < 2 || size&(size-1) != 0 {
			return fmt.Errorf("band %d key-table size %d not a power of two", b, size)
		}
		total += int(size)
	}
	if total != len(entries) {
		return fmt.Errorf("key tables claim %d entries, section holds %d", total, len(entries))
	}
	for i := range entries {
		if s := entries[i].slot; s < -1 || int(s) >= numBuckets {
			return fmt.Errorf("key-table entry %d references bucket %d of %d", i, s, numBuckets)
		}
	}
	return nil
}

// validateForeign bounds-checks the persisted foreign-slot spans
// against every foreign shard's items array.
func validateForeign(sh *Sharded, foreign [][]int32, foreignEmpty [][]uint64) error {
	S := len(sh.shards)
	stride := 2 * (S - 1)
	for s := range sh.shards {
		numSlots := len(sh.shards[s].frozen.offsets) - 1
		if len(foreign[s]) != numSlots*stride {
			return fmt.Errorf("lsh: shard %d: foreign-slot rows cover %d slots, index has %d", s, len(foreign[s])/max(stride, 1), numSlots)
		}
		if len(foreignEmpty[s]) != (numSlots+63)/64 {
			return fmt.Errorf("lsh: shard %d: foreign-emptiness bitmap sized for %d slots, index has %d", s, len(foreignEmpty[s])*64, numSlots)
		}
		ti := 0
		for t := range sh.shards {
			if t == s {
				continue
			}
			limit := int32(len(sh.shards[t].frozen.items))
			for slot := 0; slot < numSlots; slot++ {
				lo := foreign[s][slot*stride+2*ti]
				hi := foreign[s][slot*stride+2*ti+1]
				if lo < 0 || lo > hi || hi > limit {
					return fmt.Errorf("lsh: shard %d: foreign span [%d,%d) of slot %d exceeds shard %d's %d items", s, lo, hi, slot, t, limit)
				}
			}
			ti++
		}
	}
	return nil
}

// loadReorder restores the locality permutation from shard 0's file,
// verifying the bijection and the manifest's permutation hash.
func loadReorder(sh *Sharded, f0 *persist.File, m *persist.Manifest) error {
	perm, err := persist.View[int32](f0, secPerm)
	if err != nil {
		return err
	}
	inv, err := persist.View[int32](f0, secInv)
	if err != nil {
		return err
	}
	n := sh.part.n
	if len(perm) != n || len(inv) != n {
		return fmt.Errorf("lsh: reorder permutation covers %d items, index has %d", len(perm), n)
	}
	for i, p := range perm {
		if p < 0 || int(p) >= n || int(inv[p]) != i {
			return fmt.Errorf("lsh: reorder permutation is not a bijection at item %d", i)
		}
	}
	if got := persist.Hex64(hashInt32s(perm)); got != m.PermHash {
		return fmt.Errorf("lsh: reorder permutation hash %s does not match manifest %s", got, m.PermHash)
	}
	sh.perm, sh.inv = perm, inv
	return nil
}

// MmapBytes returns the total bytes of read-only file mappings backing
// this index (0 for fresh or heap-loaded indexes).
//
//lshvet:noescape
func (sh *Sharded) MmapBytes() int64 { return sh.persistBytes }

// ClosePersist releases the shard-file mappings (or heap copies) of an
// index loaded with OpenSharded. The index is unusable afterwards; the
// caller must guarantee no queries are in flight. No-op for fresh
// indexes.
func (sh *Sharded) ClosePersist() error {
	files := sh.persistFiles
	sh.persistFiles = nil
	sh.resi = nil
	var first error
	for _, f := range files {
		if f == nil {
			continue
		}
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
