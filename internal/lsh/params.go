// Package lsh implements the banding scheme of locality sensitive hashing
// over MinHash signatures, together with the probability calculus the
// paper uses to choose parameters (§III-A2, §III-D, Tables I and II), and
// the bucket index with per-item cluster references that drives the
// MH-K-Modes shortlist construction (Algorithm 2).
package lsh

import (
	"fmt"
	"math"
)

// Params selects the banding configuration: the signature is divided into
// Bands bands of Rows hash values each (signature length = Bands·Rows).
// In the paper's notation Bands is b and Rows is r.
type Params struct {
	Bands int
	Rows  int
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.Bands < 1 {
		return fmt.Errorf("lsh: bands must be ≥ 1, got %d", p.Bands)
	}
	if p.Rows < 1 {
		return fmt.Errorf("lsh: rows must be ≥ 1, got %d", p.Rows)
	}
	return nil
}

// SignatureLen returns the number of MinHash functions the configuration
// consumes (b·r).
func (p Params) SignatureLen() int { return p.Bands * p.Rows }

// String renders the configuration in the paper's "20b 5r" style.
func (p Params) String() string { return fmt.Sprintf("%db%dr", p.Bands, p.Rows) }

// CandidateProb returns the probability that two items with Jaccard
// similarity s collide in at least one band: 1 − (1 − s^r)^b
// (paper §III-A2).
func (p Params) CandidateProb(s float64) float64 {
	if s <= 0 {
		return 0
	}
	if s >= 1 {
		return 1
	}
	return 1 - math.Pow(1-math.Pow(s, float64(p.Rows)), float64(p.Bands))
}

// ThresholdSimilarity returns the similarity at which the S-curve is
// steepest — approximately where the candidate probability crosses 50 % —
// given by (1/b)^(1/r) (paper §III-A2).
func (p Params) ThresholdSimilarity() float64 {
	return math.Pow(1/float64(p.Bands), 1/float64(p.Rows))
}

// ClusterHitProb returns the probability that a cluster containing
// clusterItems items, each with Jaccard similarity at least s to the
// query, contributes at least one candidate pair — and therefore appears
// on the shortlist: 1 − (1 − CandidateProb(s))^clusterItems.
//
// This is the "MH-K-Modes Probability" column of Tables I and II: the
// framework only needs one collision per relevant cluster, not all item
// pairs, which is why far looser (b, r) settings suffice than in classic
// near-duplicate detection (§III-D).
func (p Params) ClusterHitProb(s float64, clusterItems int) float64 {
	if clusterItems <= 0 {
		return 0
	}
	q := 1 - p.CandidateProb(s)
	return 1 - math.Pow(q, float64(clusterItems))
}

// ErrorBound returns the paper's guaranteed error bound (§III-C): the
// probability that, for an item with m attributes, the true best cluster
// containing clusterItems items is absent from the shortlist, assuming
// only that the best cluster shares at least one attribute value with the
// item (so the pairwise similarity is at least 1/(2m−1)):
//
//	Pr ≤ (1 − (1/(2m−1))^r)^(b·clusterItems)
//
// The paper's worked example (m=100, r=1, b=25, 20 items) evaluates to
// ≈ 0.08.
func (p Params) ErrorBound(m, clusterItems int) float64 {
	if m < 1 || clusterItems < 1 {
		return 1
	}
	s := 1 / float64(2*m-1)
	return math.Pow(1-math.Pow(s, float64(p.Rows)), float64(p.Bands*clusterItems))
}

// SearchParams returns the cheapest configuration (fewest hash functions,
// ties broken by fewer bands) whose cluster-hit probability at similarity
// s with clusterItems same-cluster items reaches targetProb, scanning
// bands in [1, maxBands] and rows in [1, maxRows]. ok is false when no
// configuration qualifies.
func SearchParams(s float64, clusterItems int, targetProb float64, maxBands, maxRows int) (best Params, ok bool) {
	bestCost := math.MaxInt
	for r := 1; r <= maxRows; r++ {
		for b := 1; b <= maxBands; b++ {
			p := Params{Bands: b, Rows: r}
			if p.ClusterHitProb(s, clusterItems) < targetProb {
				continue
			}
			cost := p.SignatureLen()
			if cost < bestCost || (cost == bestCost && b < best.Bands) {
				best, bestCost, ok = p, cost, true
			}
			break // larger b only costs more at this r
		}
	}
	return best, ok
}

// TableRow is one line of a Table I / Table II style probability table.
type TableRow struct {
	Bands       int
	Rows        int
	Jaccard     float64
	PairProb    float64 // probability two such items become candidates
	ClusterProb float64 // probability the cluster reaches the shortlist
}

// ProbabilityTable reproduces the layout of the paper's Tables I and II:
// for each (bands, similarity) combination at the given row count, the
// candidate-pair probability and the cluster-hit probability assuming
// clusterItems similar items in the cluster (the paper uses 10).
func ProbabilityTable(rows int, bands []int, sims map[int][]float64, clusterItems int) []TableRow {
	var out []TableRow
	for _, b := range bands {
		p := Params{Bands: b, Rows: rows}
		for _, s := range sims[b] {
			out = append(out, TableRow{
				Bands:       b,
				Rows:        rows,
				Jaccard:     s,
				PairProb:    p.CandidateProb(s),
				ClusterProb: p.ClusterHitProb(s, clusterItems),
			})
		}
	}
	return out
}

// TableI returns the paper's Table I grid (row value 1, 10 other items in
// the cluster).
func TableI() []TableRow {
	return ProbabilityTable(1,
		[]int{10, 100, 800},
		map[int][]float64{
			10:  {0.01, 0.1, 0.2, 0.5},
			100: {0.001, 0.01, 0.1, 0.5, 0.8},
			800: {0.0001, 0.001, 0.01, 0.1},
		}, 10)
}

// TableII returns the paper's Table II grid (row value 5, 10 other items
// in the cluster).
func TableII() []TableRow {
	return ProbabilityTable(5,
		[]int{10, 100, 800},
		map[int][]float64{
			10:  {0.1, 0.2, 0.5, 0.8},
			100: {0.1, 0.5},
			800: {0.1, 0.2, 0.3},
		}, 10)
}
