package lsh

import (
	"context"
	"time"
)

// This file is the planner half of the fault-tolerant fan-out: when a
// backend layer is attached (Sharded.AttachBackends), every Query
// sweep routes through resilientCall instead of touching shard memory
// directly. The flow is gather-then-emit: each shard's buckets are
// parked in per-shard hit lists first, and only after the fan-out
// settles are they replayed to the caller in the oracle's exact
// enumeration order (band-major; ascending shard concatenation for
// range partitions, a live S-way merge for stride). Gathering buys
// three properties at once: a failed shard's partial emissions never
// leak into the shortlist, hedged attempts never race on caller
// state, and the caller's fn is only ever invoked directly — it never
// escapes into a backend-call closure.
//
// Ownership rule: every slice a backend-call closure captures must be
// privately allocated for that sweep. A lost hedge race or an
// abandoned over-deadline attempt leaves a goroutine that may still
// read the closure's captures after resilientCall returns (backends
// are not required to honour cancellation promptly), so reusable
// Query scratch must never cross into a closure — copy it first.

// bucketHit parks one emitted bucket until replay. The bucket slice
// aliases backend-owned (frozen) storage; nothing is copied.
type bucketHit struct {
	pos, band int32
	bucket    []int32
}

// degradedState records how one item's sweep degraded: partial means
// at least one shard's buckets are missing from the shortlist;
// ownerDown means the item's own shard was unreachable, so the
// shortlist misses even the item's home buckets and the driver should
// fall back to exact evaluation.
type degradedState struct {
	partial   bool
	ownerDown bool
}

// LastDegraded reports the degradation outcome of the most recent
// per-item sweep (Candidates, CandidatesOfKeys, CandidatesOfSignature)
// through the backend layer. Always false on the direct path.
func (q *Query) LastDegraded() (partial, ownerDown bool) {
	if q.sh.res == nil {
		return false, false
	}
	return q.lastDeg.partial, q.lastDeg.ownerDown
}

// BlockDegraded reports position pos's degradation outcome of the most
// recent CandidatesBatch through the backend layer. Always false on
// the direct path.
func (q *Query) BlockDegraded(pos int) (partial, ownerDown bool) {
	if q.sh.res == nil || pos >= len(q.blockDeg) {
		return false, false
	}
	d := q.blockDeg[pos]
	return d.partial, d.ownerDown
}

// ensureBlockDeg sizes and clears the per-position degradation scratch.
func (q *Query) ensureBlockDeg(n int) []degradedState {
	if cap(q.blockDeg) < n {
		q.blockDeg = make([]degradedState, n)
	}
	deg := q.blockDeg[:n]
	for i := range deg {
		deg[i] = degradedState{}
	}
	q.blockDeg = deg
	return deg
}

// ownerKeys resolves shard-local items' band keys through the owner
// shard's backend. The result is allocated per call: hedged attempts
// may run concurrently and each needs a private buffer. locals must be
// private to this call per the ownership rule above.
func ownerKeys(res *resilience, s int, locals []int32, bands int) ([]uint64, error) {
	return resilientCall(res, s, func(ctx context.Context, b ShardBackend) ([]uint64, error) {
		out := make([]uint64, len(locals)*bands)
		if err := b.ItemKeys(ctx, locals, out); err != nil {
			return nil, err
		}
		return out, nil
	})
}

// backendCandidates is Candidates through the backend layer: owner key
// resolution, per-shard gather, order-preserving replay.
func (q *Query) backendCandidates(item int32, fn func(other int32)) {
	sh := q.sh
	q.lastDeg = degradedState{}
	s, local, ok := sh.part.locate(item)
	if !ok || !sh.shards[s].isInserted(local) {
		return
	}
	start := time.Now()
	bands := sh.params.Bands
	keys, err := ownerKeys(sh.res, s, []int32{local}, bands)
	if err != nil {
		q.lastDeg = degradedState{partial: true, ownerDown: true}
		return
	}
	q.gatherShards(keys, s)
	q.emitGathered(fn)
	q.pendingProbe += int64(bands) * int64(len(sh.shards)-1)
	q.addMergeNanos(time.Since(start).Nanoseconds())
}

// backendCandidatesOfKeys is CandidatesOfKeys (and, via key
// computation, CandidatesOfSignature) through the backend layer. There
// is no owner shard: the keys describe an out-of-index query item, so
// failures degrade to partial but never to ownerDown.
func (q *Query) backendCandidatesOfKeys(keys []uint64, fn func(other int32)) {
	sh := q.sh
	if len(keys) != sh.params.Bands {
		panic("lsh: CandidatesOfKeys key count mismatch")
	}
	q.lastDeg = degradedState{}
	start := time.Now()
	// keys is caller-owned (often Query.sigKeys scratch); the gather
	// closures need a private copy per the ownership rule.
	q.gatherShards(append([]uint64(nil), keys...), -1)
	q.emitGathered(fn)
	q.pendingProbe += int64(len(keys)) * int64(len(sh.shards)-1)
	q.addMergeNanos(time.Since(start).Nanoseconds())
}

// gatherShards fans one item's band keys out to every shard backend,
// parking each shard's surviving buckets in q.perShard (nil for a
// failed shard, which degrades the sweep to partial — and to ownerDown
// when the failed shard is the item's owner).
func (q *Query) gatherShards(keys []uint64, owner int) {
	sh := q.sh
	res := sh.res
	nShards := len(sh.shards)
	if cap(q.perShard) < nShards {
		q.perShard = make([][]bucketHit, nShards)
	}
	q.perShard = q.perShard[:nShards]
	for t := 0; t < nShards; t++ {
		if res.ctx.Err() != nil {
			q.perShard[t] = nil
			q.lastDeg.partial = true
			continue
		}
		hits, err := resilientCall(res, t, func(ctx context.Context, b ShardBackend) ([]bucketHit, error) {
			var out []bucketHit
			if err := b.Candidates(ctx, keys, func(band int, bucket []int32) {
				out = append(out, bucketHit{band: int32(band), bucket: bucket})
			}); err != nil {
				return nil, err
			}
			return out, nil
		})
		if err != nil {
			q.perShard[t] = nil
			q.lastDeg.partial = true
			if t == owner {
				q.lastDeg.ownerDown = true
			}
			continue
		}
		q.perShard[t] = hits
	}
}

// emitGathered replays the parked per-shard buckets in the oracle's
// enumeration order. Each shard's hit list is band-ascending (the
// backend contract), so one cursor per shard suffices: per band,
// range partitions concatenate in ascending shard order (which IS the
// ascending-ID merge) and stride partitions feed the surviving buckets
// through the S-way mergeEmit.
func (q *Query) emitGathered(fn func(other int32)) {
	sh := q.sh
	bands := sh.params.Bands
	nShards := len(q.perShard)
	if cap(q.cursors) < nShards {
		q.cursors = make([]int, nShards)
	}
	cur := q.cursors[:nShards]
	for i := range cur {
		cur[i] = 0
	}
	if !sh.part.stride {
		for b := int32(0); b < int32(bands); b++ {
			for t := 0; t < nShards; t++ {
				if hits := q.perShard[t]; cur[t] < len(hits) && hits[cur[t]].band == b {
					for _, g := range hits[cur[t]].bucket {
						fn(g)
					}
					cur[t]++
				}
			}
		}
		return
	}
	for b := int32(0); b < int32(bands); b++ {
		q.heads = q.heads[:0]
		for t := 0; t < nShards; t++ {
			if hits := q.perShard[t]; cur[t] < len(hits) && hits[cur[t]].band == b {
				q.heads = append(q.heads, mergeHead{bucket: hits[cur[t]].bucket})
				cur[t]++
			}
		}
		q.mergeEmit(fn)
	}
}

// backendCandidatesBatch is the range-partition CandidatesBatch through
// the backend layer: owner-grouped key resolution, position compaction
// (positions whose owner is unreachable drop out and are flagged
// ownerDown), per-shard block gather, order-preserving replay.
func (q *Query) backendCandidatesBatch(items []int32, fn func(pos int, bucket []int32)) {
	sh := q.sh
	res := sh.res
	n := len(items)
	deg := q.ensureBlockDeg(n)
	start := time.Now()
	if cap(q.owners) < n {
		q.owners = make([]int32, n)
		q.locals = make([]int32, n)
		q.keyBuf = make([]uint64, n)
		q.slotBuf = make([]int32, n)
	}
	owners, locals := q.owners[:n], q.locals[:n]
	for pos, item := range items {
		s, local, ok := sh.part.locate(item)
		if ok && sh.shards[s].isInserted(local) {
			owners[pos], locals[pos] = int32(s), local
		} else {
			owners[pos] = -1
		}
	}
	bands := sh.params.Bands
	nShards := len(sh.shards)

	// Owner-grouped key resolution: one ItemKeys call per shard that
	// owns any block position, scattered back into position order. A
	// failed owner takes all its positions out of the sweep (ownerDown:
	// the driver evaluates them exactly).
	if cap(q.blockKeys) < n*bands {
		q.blockKeys = make([]uint64, n*bands)
	}
	allKeys := q.blockKeys[:n*bands]
	for s := 0; s < nShards; s++ {
		gl, gp := q.groupLocals[:0], q.groupPos[:0]
		for pos := 0; pos < n; pos++ {
			if owners[pos] == int32(s) {
				gl = append(gl, locals[pos])
				gp = append(gp, int32(pos))
			}
		}
		q.groupLocals, q.groupPos = gl, gp
		if len(gl) == 0 {
			continue
		}
		// gl is regrouped for the next shard while an abandoned attempt
		// may still read it: hand the backend a private copy.
		keys, err := ownerKeys(res, s, append([]int32(nil), gl...), bands)
		if err != nil {
			for _, p := range gp {
				deg[p] = degradedState{partial: true, ownerDown: true}
				owners[p] = -1
			}
			continue
		}
		for i, p := range gp {
			copy(allKeys[int(p)*bands:(int(p)+1)*bands], keys[i*bands:(i+1)*bands])
		}
	}

	// Compact the surviving positions into a dense key block.
	pm := q.posMap[:0]
	for pos := 0; pos < n; pos++ {
		if owners[pos] >= 0 {
			pm = append(pm, int32(pos))
		}
	}
	q.posMap = pm
	m := len(pm)
	if m == 0 {
		sh.mergeNanos.Add(time.Since(start).Nanoseconds())
		return
	}
	// ck crosses into the CandidatesBlock closures, so it is allocated
	// per sweep (not Query scratch) per the ownership rule.
	ck := make([]uint64, m*bands)
	for ci, p := range pm {
		copy(ck[ci*bands:(ci+1)*bands], allKeys[int(p)*bands:(int(p)+1)*bands])
	}

	// Per-shard block gather.
	if cap(q.perShard) < nShards {
		q.perShard = make([][]bucketHit, nShards)
	}
	q.perShard = q.perShard[:nShards]
	for t := 0; t < nShards; t++ {
		if res.ctx.Err() != nil {
			q.perShard[t] = nil
			for _, p := range pm {
				deg[p].partial = true
			}
			continue
		}
		hits, err := resilientCall(res, t, func(ctx context.Context, b ShardBackend) ([]bucketHit, error) {
			var out []bucketHit
			if err := b.CandidatesBlock(ctx, m, ck, func(pos, band int, bucket []int32) {
				out = append(out, bucketHit{pos: int32(pos), band: int32(band), bucket: bucket})
			}); err != nil {
				return nil, err
			}
			return out, nil
		})
		if err != nil {
			q.perShard[t] = nil
			for _, p := range pm {
				deg[p].partial = true
				if owners[p] == int32(t) {
					deg[p].ownerDown = true
				}
			}
			continue
		}
		q.perShard[t] = hits
	}

	// Replay band-major, ascending shard, ascending position — exactly
	// the direct block sweep's order. Each shard's hits are
	// (band, pos)-ascending per the backend contract, so cursors walk
	// each list once.
	if cap(q.cursors) < nShards {
		q.cursors = make([]int, nShards)
	}
	cur := q.cursors[:nShards]
	for i := range cur {
		cur[i] = 0
	}
	for b := int32(0); b < int32(bands); b++ {
		for t := 0; t < nShards; t++ {
			hits := q.perShard[t]
			c := cur[t]
			for c < len(hits) && hits[c].band == b {
				fn(int(pm[hits[c].pos]), hits[c].bucket)
				c++
			}
			cur[t] = c
		}
	}
	sh.probeOps.Add(int64(m) * int64(bands) * int64(nShards-1))
	sh.mergeNanos.Add(time.Since(start).Nanoseconds())
}

// addSourceBackend is ShardedReverse.AddSource through the backend
// layer: the owner resolves the source's band keys, then every shard
// (owner included — its key probe resolves to the same slot its direct
// path would mark) maps them to bucket slots via ReverseSpans. Any
// failure latches the view's Degraded flag until the next Emit cycle:
// the expansion may have missed buckets, so the driver must not trust
// the active set it seeds.
func (r *ShardedReverse) addSourceBackend(global int32) {
	sh := r.sh
	res := sh.res
	if r.emitted {
		r.degraded, r.emitted = false, false
	}
	s, local, ok := sh.part.locate(global)
	if !ok || !sh.shards[s].isInserted(local) {
		return
	}
	bands := sh.params.Bands
	keys, err := ownerKeys(res, s, []int32{local}, bands)
	if err != nil {
		r.degraded = true
		return
	}
	for t := 0; t < len(r.revs); t++ {
		if res.ctx.Err() != nil {
			r.degraded = true
			return
		}
		spans, err := resilientCall(res, t, func(ctx context.Context, b ShardBackend) ([]int32, error) {
			out := make([]int32, bands)
			if err := b.ReverseSpans(ctx, keys, out); err != nil {
				return nil, err
			}
			return out, nil
		})
		if err != nil {
			r.degraded = true
			continue
		}
		for _, slot := range spans {
			if slot >= 0 {
				r.revs[t].markSlot(slot)
			}
		}
	}
}

// Degraded reports whether any reverse expansion since the previous
// Emit failed to cover some shard — meaning the marks (and the active
// set seeded from them) may be incomplete, and the driver should fall
// back to a full pass rather than trust the filter.
func (r *ShardedReverse) Degraded() bool { return r.degraded }
