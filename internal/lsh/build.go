package lsh

import (
	"fmt"
	"sync"
)

// Direct-to-frozen index construction. The batch full-scan bootstrap
// knows every item's band keys up front (SignAll), so the map-based
// build phase — per-band hash maps, per-bucket append slices, a Freeze
// compaction at the end — is pure overhead. BuildFrozen constructs the
// frozen CSR layout straight from the flat key arena in two
// counting passes, each parallel across bands:
//
//  1. Per band, resolve every item's key to a local bucket slot with
//     an open-addressed key table (no sorting, no radix passes),
//     recording first-occurrence key order and bucket sizes.
//  2. Per band, turn the sizes into CSR offsets, scatter items into
//     their buckets in ascending ID order, and build the band's
//     compact query key table.
//
// Bands are independent shards: each owns a contiguous bucket-ID range
// and a contiguous region of the items array (every item appears
// exactly once per band, so band b's items occupy [b·n, (b+1)·n)).
// That is the same per-band sharding a future multi-shard serving
// layout partitions by, and it is why construction parallelises with
// no cross-band synchronisation beyond one barrier between the passes.
//
// The resulting arrays are byte-identical to inserting items 0…n−1 in
// ascending order and calling Freeze — enforced by equivalence tests —
// so every frozen-path consumer (Candidates, CandidatesBatch, Reverse,
// key-table queries) is oblivious to which construction ran.

// bandBuild is one band's state between the two passes.
type bandBuild struct {
	counts []int32  // per local bucket: item count, then reused as scatter cursor
	order  []uint64 // distinct keys in first-occurrence order
}

// buildTable is the pass-1 scratch: a linear-probing key→local-bucket
// table that doubles as it fills (load factor ≤ 0.5), so scratch
// memory tracks the observed distinct-key count instead of the n-keys
// worst case — at tens of millions of items with clustered data the
// difference is gigabytes. Growth rehashes are amortised O(distinct
// keys); each worker grows one table on its first band and reuses it
// (reset, cost proportional to the grown size) for the rest, so the
// growth chain is paid once per worker, not once per band.
type buildTable struct {
	keys  []uint64
	slots []int32
	mask  uint64
	used  int
}

func newBuildTable(hint int) *buildTable {
	size := 64
	for size < 2*hint {
		size *= 2
	}
	t := &buildTable{}
	t.init(size)
	return t
}

func (t *buildTable) init(size int) {
	t.keys = make([]uint64, size)
	t.slots = make([]int32, size)
	t.mask = uint64(size - 1)
	for i := range t.slots {
		t.slots[i] = -1
	}
}

// reset empties the table for the next band without shrinking it.
func (t *buildTable) reset() {
	for i := range t.slots {
		t.slots[i] = -1
	}
	t.used = 0
}

// lookupOrAdd returns the local bucket ID filed under key, adding it
// as next if absent (added reports which).
func (t *buildTable) lookupOrAdd(key uint64, next int32) (slot int32, added bool) {
	i := key & t.mask
	for {
		s := t.slots[i]
		if s < 0 {
			break
		}
		if t.keys[i] == key {
			return s, false
		}
		i = (i + 1) & t.mask
	}
	if 2*(t.used+1) > len(t.slots) {
		t.grow()
		i = key & t.mask
		for t.slots[i] >= 0 {
			i = (i + 1) & t.mask
		}
	}
	t.keys[i] = key
	t.slots[i] = next
	t.used++
	return next, true
}

func (t *buildTable) grow() {
	oldKeys, oldSlots := t.keys, t.slots
	t.init(2 * len(oldSlots))
	for i, s := range oldSlots {
		if s < 0 {
			continue
		}
		j := oldKeys[i] & t.mask
		for t.slots[j] >= 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = oldKeys[i]
		t.slots[j] = s
	}
}

// BuildFrozen builds the frozen index directly from presigned band
// keys — the arena SignAll returns, keys[item·Bands+band] for items
// [0, n) — sharding the per-band work across workers goroutines. The
// index must be freshly created (no items inserted, not frozen); after
// BuildFrozen it is frozen with all n items inserted.
func (ix *Index) BuildFrozen(keys []uint64, n, workers int) error {
	if ix.frozen != nil {
		return fmt.Errorf("lsh: index is frozen")
	}
	if ix.numInserted > 0 {
		return fmt.Errorf("lsh: BuildFrozen on an index with %d items inserted", ix.numInserted)
	}
	if n < 0 {
		return fmt.Errorf("lsh: BuildFrozen with negative n %d", n)
	}
	bands := ix.params.Bands
	if len(keys) != n*bands {
		return fmt.Errorf("lsh: %d band keys for %d items × %d bands", len(keys), n, bands)
	}
	if workers > bands {
		workers = bands
	}
	if workers < 1 {
		workers = 1
	}

	fz := &frozenIndex{
		slots:  make([]int32, n*bands),
		tables: make([]keyTable, bands),
	}
	builds := make([]bandBuild, bands)

	// Pass 1: per-band bucket-slot resolution. Bands write disjoint
	// strided entries of slots (local IDs for now) and disjoint builds
	// elements; each worker lazily grows one table from the same
	// n/Bands cardinality estimate NewIndex uses for its map hints and
	// reuses it across its bands.
	parallelBands(bands, workers, func(bandSeq func() (int, bool)) {
		var tbl *buildTable
		for {
			b, ok := bandSeq()
			if !ok {
				return
			}
			if tbl == nil {
				tbl = newBuildTable(n / bands)
			} else {
				tbl.reset()
			}
			var counts []int32
			var order []uint64
			for item := 0; item < n; item++ {
				key := keys[item*bands+b]
				s, added := tbl.lookupOrAdd(key, int32(len(counts)))
				if added {
					counts = append(counts, 0)
					order = append(order, key)
				}
				counts[s]++
				fz.slots[item*bands+b] = s
			}
			builds[b] = bandBuild{counts: counts, order: order}
		}
	})

	// Barrier: assign each band its global bucket-ID base.
	base := make([]int32, bands+1)
	total := 0
	for b := range builds {
		base[b] = int32(total)
		total += len(builds[b].counts)
	}
	base[bands] = int32(total)
	fz.bandStart = base
	fz.offsets = make([]int32, total+1)
	fz.items = make([]int32, n*bands)
	fz.keys = make([]uint64, total)
	fz.offsets[total] = int32(n * bands)

	// Pass 2: per-band CSR fill. Each band writes its own offsets
	// entries [base[b], base[b+1]), its own items region [b·n, (b+1)·n)
	// and its own strided slots entries (now globalised), so bands
	// remain write-disjoint.
	parallelBands(bands, workers, func(bandSeq func() (int, bool)) {
		for {
			b, ok := bandSeq()
			if !ok {
				return
			}
			bb := &builds[b]
			off := int32(b * n)
			for j, c := range bb.counts {
				fz.offsets[int(base[b])+j] = off
				bb.counts[j] = off // becomes the scatter cursor
				off += c
			}
			gb := base[b]
			for item := 0; item < n; item++ {
				idx := item*bands + b
				s := fz.slots[idx]
				fz.items[bb.counts[s]] = ix.globalID(int32(item))
				bb.counts[s]++
				fz.slots[idx] = gb + s
			}
			tbl := newKeyTable(len(bb.order))
			for j, key := range bb.order {
				tbl.put(key, gb+int32(j))
				fz.keys[int(gb)+j] = key
			}
			fz.tables[b] = tbl
		}
	})

	inserted := make([]bool, n)
	for i := range inserted {
		inserted[i] = true
	}
	ix.inserted = inserted
	ix.numInserted = n
	ix.frozen = fz
	ix.buckets = nil
	ix.keyOrder = nil
	ix.keys = nil
	return nil
}

// parallelBands runs fn on workers goroutines; each invocation pulls
// band indices from its private strided sequence (worker g handles
// bands g, g+workers, …) until exhaustion, so a worker can reuse
// scratch across the bands it owns.
func parallelBands(bands, workers int, fn func(bandSeq func() (int, bool))) {
	if workers < 2 {
		next := 0
		fn(func() (int, bool) {
			if next >= bands {
				return 0, false
			}
			b := next
			next++
			return b, true
		})
		return
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			next := g
			fn(func() (int, bool) {
				if next >= bands {
					return 0, false
				}
				b := next
				next += workers
				return b, true
			})
		}(g)
	}
	wg.Wait()
}
