package lsh

import (
	"sync"
	"sync/atomic"

	"lshcluster/internal/lsh/persist"
)

// Memory-budgeted shard residency. A memory-mapped index costs ~0
// resident memory until its pages are touched; the residency manager
// keeps the *touched* footprint near a byte budget by demoting whole
// shards (madvise MADV_DONTNEED drops their pages) and promoting them
// back on use (MADV_WILLNEED prefetches before the queries fault the
// pages anyway). A demoted shard is never absent — its mapping stays
// valid and accesses simply fault pages back in, so correctness is
// untouched and only latency changes (the same "slow, not missing"
// contract the ShardBackend seam established). The budget is therefore
// best-effort: cross-shard fan-out into a demoted shard refaults pages
// the next demotion drops again, keeping steady-state residency near
// the budget rather than exactly under it.
//
// Queries touch their item's *owning* shard (the source of most
// candidates, overwhelmingly so on reordered builds); the touch is one
// atomic load on the hot path when the shard is already resident, and
// takes a mutex only to promote/evict, which happens at shard-rotation
// granularity, not per item.
type residency struct {
	files []*persist.File
	bytes []int64
	// resident[s] is the hot-path fast check; all slower state below mu.
	resident []atomic.Bool
	lastUse  []atomic.Int64
	clock    atomic.Int64

	mu            sync.Mutex
	budget        int64
	residentBytes int64
	residentCount atomic.Int32
	promotions    atomic.Int64
	demotions     atomic.Int64
}

// newResidency admits shards in index order until the budget is
// exhausted and demotes the rest. At least one shard stays resident —
// a budget smaller than any single shard degrades to round-robin
// thrashing, not a failure.
func newResidency(files []*persist.File, budget int64) *residency {
	r := &residency{
		files:    files,
		bytes:    make([]int64, len(files)),
		resident: make([]atomic.Bool, len(files)),
		lastUse:  make([]atomic.Int64, len(files)),
		budget:   budget,
	}
	for s, f := range files {
		r.bytes[s] = f.Size()
		if s == 0 || r.residentBytes+r.bytes[s] <= budget {
			r.resident[s].Store(true)
			r.residentBytes += r.bytes[s]
			r.residentCount.Add(1)
		} else {
			f.Demote()
			r.demotions.Add(1)
		}
	}
	return r
}

// touch records use of shard s, promoting it (and evicting the
// least-recently-used resident shards) when it is demoted.
func (r *residency) touch(s int) {
	r.lastUse[s].Store(r.clock.Add(1))
	if r.resident[s].Load() {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.resident[s].Load() { // promoted while waiting for the lock
		return
	}
	r.files[s].Promote()
	r.resident[s].Store(true)
	r.residentBytes += r.bytes[s]
	r.residentCount.Add(1)
	r.promotions.Add(1)
	for r.residentBytes > r.budget {
		victim := -1
		var oldest int64
		for t := range r.resident {
			if t == s || !r.resident[t].Load() {
				continue
			}
			if u := r.lastUse[t].Load(); victim < 0 || u < oldest {
				victim, oldest = t, u
			}
		}
		if victim < 0 {
			break // s alone exceeds the budget; keep it resident
		}
		r.resident[victim].Store(false)
		r.files[victim].Demote()
		r.residentBytes -= r.bytes[victim]
		r.residentCount.Add(-1)
		r.demotions.Add(1)
	}
}

// ResidencyStats reports the residency manager's current accounting:
// shards resident now and cumulative promotions/demotions. ok is false
// when no manager is active (fresh, heap-loaded or unbudgeted
// indexes).
func (sh *Sharded) ResidencyStats() (resident int, promotions, demotions int64, ok bool) {
	r := sh.resi
	if r == nil {
		return 0, 0, 0, false
	}
	return int(r.residentCount.Load()), r.promotions.Load(), r.demotions.Load(), true
}

// touchShard feeds the residency manager on the query path; free (one
// nil check) when no budget is active.
func (sh *Sharded) touchShard(s int) {
	if r := sh.resi; r != nil {
		r.touch(s)
	}
}

// touchOwners touches each distinct owner shard of a block sweep.
// Range blocks arrive (nearly) sorted, so deduplicating consecutive
// owners reduces this to ~one touch per shard run.
func (sh *Sharded) touchOwners(owners []int32) {
	r := sh.resi
	if r == nil {
		return
	}
	last := int32(-1)
	for _, o := range owners {
		if o >= 0 && o != last {
			r.touch(int(o))
			last = o
		}
	}
}
