package lsh

import "sync"

// Cross-shard fan-out without key probes. A sharded query resolves the
// query item's bucket in its owning shard directly (freeze-time slots),
// but every *foreign* shard is reached through that shard's per-band
// key table — one open-addressed probe per (item, band, foreign shard),
// the dominant memory traffic of the fan-out once shards are frozen.
//
// The probes recompute a pure function of frozen state: foreign shard
// t's bucket for owner shard s's bucket slot u is tables_t[band(u)].
// get(keys_s[u]), fixed once every shard is frozen — and so is the CSR
// span that bucket occupies. MaterializeForeignSlots evaluates the
// whole chain once per (s, t, u), storing the resolved [lo, hi) spans
// into the foreign shard's items array — one flat array per owner
// shard, row-interleaved so slot u's S−1 foreign spans are adjacent.
// A query's cross-shard fan-out for one band then touches one cache
// line and goes straight to the foreign items: no key read, no table
// probe, no offsets load. Candidate streams are unchanged by
// construction (the arrays cache exactly what the probes would
// return); the probe path remains in place both as the fallback when
// the arrays are over budget and as the bit-identical oracle the
// equivalence tests compare against.
//
// Memory cost is 8·(S−1) bytes per bucket, summed over every shard's
// buckets — quadratic in nothing (buckets are partitioned, not
// replicated), but still worth gating: the budget keeps the arrays from
// dwarfing the CSR layout itself on high-S, high-cardinality runs.

// DefaultForeignSlotBudget is the foreign-slot memory budget (bytes)
// applied when the caller does not choose one: generous next to the
// frozen CSR arrays of the workloads this repo targets, small next to
// the datasets themselves.
const DefaultForeignSlotBudget = 64 << 20

// MaterializeForeignSlots precomputes the cross-shard fan-out arrays,
// provided every shard is frozen, the partition is range-mode and the
// arrays fit the budget (bytes; negative means unlimited). It returns
// the bytes materialised — 0 means the probe path stays in effect
// (single shard, stride partition, unfrozen shards, or over budget).
// Idempotent; must not run concurrently with queries.
func (sh *Sharded) MaterializeForeignSlots(budget int64) int64 {
	if sh.foreign != nil {
		return sh.foreignBytes
	}
	if sh.single != nil || sh.part.stride || !sh.Frozen() {
		return 0
	}
	S := len(sh.shards)
	var need int64
	for _, ix := range sh.shards {
		need += int64(len(ix.frozen.offsets)-1) * int64(S-1) * 8
	}
	if budget >= 0 && need > budget {
		return 0
	}
	foreign := make([][]int32, S)
	foreignEmpty := make([][]uint64, S)
	bands := sh.params.Bands
	stride := 2 * (S - 1)
	var wg sync.WaitGroup
	for s := range sh.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			own := sh.shards[s].frozen
			numSlots := len(own.offsets) - 1
			rows := make([]int32, numSlots*stride)
			ti := 0
			for t := range sh.shards {
				if t == s {
					continue // owner resolves itself; no diagonal column
				}
				tf := sh.shards[t].frozen
				for b := 0; b < bands; b++ {
					tbl := &tf.tables[b]
					for slot := own.bandStart[b]; slot < own.bandStart[b+1]; slot++ {
						if ts := tbl.get(own.keys[slot]); ts >= 0 {
							rows[int(slot)*stride+2*ti] = tf.offsets[ts]
							rows[int(slot)*stride+2*ti+1] = tf.offsets[ts+1]
						}
					}
				}
				ti++
			}
			// Per-slot emptiness bitmap: bit u set when slot u's whole
			// row is empty spans, so queries can skip the row read (see
			// Sharded.foreignEmpty).
			words := make([]uint64, (numSlots+63)/64)
			for slot := 0; slot < numSlots; slot++ {
				empty := true
				for c := 0; c < stride; c += 2 {
					if rows[slot*stride+c] != rows[slot*stride+c+1] {
						empty = false
						break
					}
				}
				if empty {
					words[slot>>6] |= 1 << (slot & 63)
				}
			}
			foreign[s] = rows
			foreignEmpty[s] = words
		}(s)
	}
	wg.Wait()
	sh.foreign = foreign
	sh.foreignEmpty = foreignEmpty
	sh.foreignBytes = need
	return need
}

// ForeignSlotBytes returns the memory the materialised fan-out arrays
// occupy, 0 when the probe path is in effect.
//
//lshvet:noescape
func (sh *Sharded) ForeignSlotBytes() int64 { return sh.foreignBytes }

// FanOutOps returns how many cross-shard bucket resolutions ran through
// each path: key-table probes versus direct foreign-slot loads. Per-item
// query paths flush their counts in small batches (see
// Query.addMergeNanos), so a handful of recent samples may be pending.
//
//lshvet:noescape
func (sh *Sharded) FanOutOps() (probes, direct int64) {
	return sh.probeOps.Load(), sh.directOps.Load()
}
