package lsh

import (
	"math"
	"testing"
	"testing/quick"
)

func TestParamsValidate(t *testing.T) {
	if err := (Params{Bands: 20, Rows: 5}).Validate(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []Params{{0, 1}, {1, 0}, {-2, 3}} {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%v) succeeded, want error", p)
		}
	}
}

func TestSignatureLenAndString(t *testing.T) {
	p := Params{Bands: 20, Rows: 5}
	if p.SignatureLen() != 100 {
		t.Fatalf("SignatureLen = %d, want 100", p.SignatureLen())
	}
	if p.String() != "20b5r" {
		t.Fatalf("String = %q, want 20b5r", p.String())
	}
}

func TestCandidateProbEdges(t *testing.T) {
	p := Params{Bands: 20, Rows: 5}
	if p.CandidateProb(0) != 0 || p.CandidateProb(-0.5) != 0 {
		t.Fatal("P(s≤0) must be 0")
	}
	if p.CandidateProb(1) != 1 || p.CandidateProb(1.5) != 1 {
		t.Fatal("P(s≥1) must be 1")
	}
}

func TestCandidateProbMonotone(t *testing.T) {
	check := func(b8, r8 uint8, s1, s2 float64) bool {
		p := Params{Bands: int(b8%50) + 1, Rows: int(r8%8) + 1}
		s1 = math.Abs(math.Mod(s1, 1))
		s2 = math.Abs(math.Mod(s2, 1))
		if s1 > s2 {
			s1, s2 = s2, s1
		}
		return p.CandidateProb(s1) <= p.CandidateProb(s2)+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// TestTableIAgainstPaper checks every cell of the paper's Table I.
// Two cells in the published table (bands=100 at s=0.001 and s=0.01) are
// inconsistent with the formula 1−(1−s^r)^b the paper itself states —
// the printed 0.009 equals the b=10 value and 0.3 matches no nearby
// configuration. We therefore verify those two against the formula and
// record the discrepancy (see EXPERIMENTS.md).
func TestTableIAgainstPaper(t *testing.T) {
	paper := []struct {
		bands                 int
		s, pairWant, clusWant float64
		erratum               bool
	}{
		{10, 0.01, 0.09, 0.61, false},
		{10, 0.1, 0.65, 1, false},
		{10, 0.2, 0.89, 1, false},
		{10, 0.5, 0.99, 1, false},
		{100, 0.001, 0.009, 0.09, true},
		{100, 0.01, 0.3, 0.97, true},
		{100, 0.1, 0.99, 1, false},
		{100, 0.5, 1, 1, false},
		{100, 0.8, 1, 1, false},
		{800, 0.0001, 0.07, 0.52, false},
		{800, 0.001, 0.55, 0.99, false},
		{800, 0.01, 0.99, 1, false},
		{800, 0.1, 1, 1, false},
	}
	rows := TableI()
	if len(rows) != len(paper) {
		t.Fatalf("TableI has %d rows, want %d", len(rows), len(paper))
	}
	for i, want := range paper {
		got := rows[i]
		if got.Bands != want.bands || got.Rows != 1 || got.Jaccard != want.s {
			t.Fatalf("row %d grid = (%d,%d,%v), want (%d,1,%v)",
				i, got.Bands, got.Rows, got.Jaccard, want.bands, want.s)
		}
		if want.erratum {
			// Verify our value obeys the formula instead.
			formula := 1 - math.Pow(1-want.s, float64(want.bands))
			if math.Abs(got.PairProb-formula) > 1e-12 {
				t.Errorf("row %d pair prob %v deviates from formula %v", i, got.PairProb, formula)
			}
			continue
		}
		if math.Abs(got.PairProb-want.pairWant) > 0.011 {
			t.Errorf("row %d (b=%d s=%v): pair prob %.4f, paper %.2f",
				i, want.bands, want.s, got.PairProb, want.pairWant)
		}
		if math.Abs(got.ClusterProb-want.clusWant) > 0.035 {
			t.Errorf("row %d (b=%d s=%v): cluster prob %.4f, paper %.2f",
				i, want.bands, want.s, got.ClusterProb, want.clusWant)
		}
	}
}

func TestTableIIAgainstPaper(t *testing.T) {
	paper := []struct {
		bands                 int
		s, pairWant, clusWant float64
	}{
		{10, 0.1, 0.0001, 0.001},
		{10, 0.2, 0.003, 0.03},
		{10, 0.5, 0.27, 0.96},
		{10, 0.8, 0.98, 1},
		{100, 0.1, 0.001, 0.01},
		{100, 0.5, 0.95, 1},
		{800, 0.1, 0.008, 0.08},
		{800, 0.2, 0.23, 0.93},
		{800, 0.3, 0.86, 1},
	}
	rows := TableII()
	if len(rows) != len(paper) {
		t.Fatalf("TableII has %d rows, want %d", len(rows), len(paper))
	}
	for i, want := range paper {
		got := rows[i]
		if got.Bands != want.bands || got.Rows != 5 || got.Jaccard != want.s {
			t.Fatalf("row %d grid mismatch", i)
		}
		if math.Abs(got.PairProb-want.pairWant) > 0.011 {
			t.Errorf("row %d (b=%d s=%v): pair prob %.4f, paper %.4f",
				i, want.bands, want.s, got.PairProb, want.pairWant)
		}
		if math.Abs(got.ClusterProb-want.clusWant) > 0.02 {
			t.Errorf("row %d (b=%d s=%v): cluster prob %.4f, paper %.4f",
				i, want.bands, want.s, got.ClusterProb, want.clusWant)
		}
	}
}

// TestFootnoteExample checks the §III-D footnote: 10 % pair probability
// and 50 candidate items give 1 − 0.9^50 ≈ 0.99.
func TestFootnoteExample(t *testing.T) {
	// Construct params whose pair prob at s is exactly 0.1 is awkward;
	// the footnote maths is 1−(1−0.1)^50, test ClusterHitProb's shape by
	// inverting: a Params{1,1} has CandidateProb(s)=s.
	p := Params{Bands: 1, Rows: 1}
	got := p.ClusterHitProb(0.1, 50)
	want := 1 - math.Pow(0.9, 50)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("ClusterHitProb = %v, want %v", got, want)
	}
	if got < 0.99 {
		t.Fatalf("footnote example should be ≥ 0.99, got %v", got)
	}
}

// TestErrorBoundPaperExample reproduces §III-C: m=100, r=1, b=25, a
// cluster of 20 items → error probability ≈ 0.08.
func TestErrorBoundPaperExample(t *testing.T) {
	p := Params{Bands: 25, Rows: 1}
	got := p.ErrorBound(100, 20)
	if math.Abs(got-0.08) > 0.005 {
		t.Fatalf("ErrorBound(100,20) = %v, want ≈ 0.08", got)
	}
}

func TestErrorBoundMonotonicity(t *testing.T) {
	base := Params{Bands: 25, Rows: 1}
	if !(Params{Bands: 50, Rows: 1}.ErrorBound(100, 20) < base.ErrorBound(100, 20)) {
		t.Error("more bands must shrink the bound")
	}
	if !(base.ErrorBound(100, 40) < base.ErrorBound(100, 20)) {
		t.Error("larger clusters must shrink the bound")
	}
	if !(Params{Bands: 25, Rows: 2}.ErrorBound(100, 20) > base.ErrorBound(100, 20)) {
		t.Error("more rows must grow the bound")
	}
	if !(base.ErrorBound(200, 20) > base.ErrorBound(100, 20)) {
		t.Error("more attributes must grow the bound")
	}
	if b := base.ErrorBound(0, 20); b != 1 {
		t.Errorf("degenerate m must give trivial bound 1, got %v", b)
	}
	if b := base.ErrorBound(100, 0); b != 1 {
		t.Errorf("empty cluster must give trivial bound 1, got %v", b)
	}
}

func TestErrorBoundInUnitInterval(t *testing.T) {
	check := func(b8, r8, m8, c8 uint8) bool {
		p := Params{Bands: int(b8%100) + 1, Rows: int(r8%10) + 1}
		v := p.ErrorBound(int(m8)+1, int(c8)+1)
		return v >= 0 && v <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestThresholdSimilarity(t *testing.T) {
	// The paper calls (1/b)^(1/r) the steepest point of the S-curve,
	// "at which there is a 50% chance" — it is an approximation; the
	// exact probability at the threshold tends to 1−1/e. Accept a band
	// around one half.
	for _, p := range []Params{{20, 5}, {50, 5}, {100, 4}, {16, 8}} {
		s := p.ThresholdSimilarity()
		if s <= 0 || s >= 1 {
			t.Fatalf("threshold %v out of (0,1) for %v", s, p)
		}
		prob := p.CandidateProb(s)
		if prob < 0.4 || prob > 0.7 {
			t.Errorf("P(threshold) = %v for %v, want ≈ 0.5–0.63", prob, p)
		}
	}
}

func TestSearchParams(t *testing.T) {
	p, ok := SearchParams(0.3, 10, 0.95, 64, 8)
	if !ok {
		t.Fatal("no parameters found")
	}
	if got := p.ClusterHitProb(0.3, 10); got < 0.95 {
		t.Fatalf("found params %v reach only %v", p, got)
	}
	// Every cheaper configuration must miss the target.
	for r := 1; r <= 8; r++ {
		for b := 1; b <= 64; b++ {
			q := Params{Bands: b, Rows: r}
			if q.SignatureLen() < p.SignatureLen() && q.ClusterHitProb(0.3, 10) >= 0.95 {
				t.Fatalf("cheaper params %v also reach the target", q)
			}
		}
	}
	if _, ok := SearchParams(1e-9, 1, 0.999, 4, 2); ok {
		t.Fatal("impossible target should report !ok")
	}
}

func TestClusterHitProbDegenerate(t *testing.T) {
	p := Params{Bands: 20, Rows: 5}
	if p.ClusterHitProb(0.5, 0) != 0 {
		t.Fatal("zero cluster items must give probability 0")
	}
	if p.ClusterHitProb(0.5, -3) != 0 {
		t.Fatal("negative cluster items must give probability 0")
	}
}
