package lsh

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ShardBackend is the serving boundary of one index shard: every method
// the cross-shard query planner needs, expressed as calls that can
// fail, time out, or be cancelled. The in-process localBackend is the
// zero-overhead default (and the bit-identity oracle); a chaos wrapper
// (internal/lsh/serve) and, in a future PR, a wire-level client
// implement the same contract.
//
// Contract notes:
//
//   - All item addressing is shard-local: ItemKeys resolves locals the
//     planner already routed (the partitioner — which shard owns which
//     global item — is coordinator metadata, not a backend concern).
//   - Emit callbacks run synchronously inside the call, band-ascending
//     (and, for CandidatesBlock, position-ascending within each band).
//     Emitted bucket slices are read-only views owned by the backend
//     and are only valid until the call returns to the planner's
//     gather buffer — the planner copies nothing, so an in-process
//     backend must keep them alive (frozen storage does).
//   - A non-nil error means the results are unusable; the planner
//     never mixes buckets from a failed call into a shortlist.
type ShardBackend interface {
	// ItemKeys writes the band keys of the given shard-local items into
	// keys, len(locals)·Bands entries, item-major. Every local must be
	// inserted (the planner checks before calling).
	ItemKeys(ctx context.Context, locals []int32, keys []uint64) error
	// Candidates probes one item's band keys (len = Bands) and emits
	// each non-empty matching bucket as (band, global items).
	Candidates(ctx context.Context, keys []uint64, emit func(band int, bucket []int32)) error
	// CandidatesBlock probes n items' band keys (n·Bands, item-major)
	// and emits non-empty buckets band-major, position-ascending within
	// each band.
	CandidatesBlock(ctx context.Context, n int, keys []uint64, emit func(pos, band int, bucket []int32)) error
	// ReverseSpans resolves one source item's band keys (len = Bands)
	// to this shard's bucket slots, −1 where the shard has no matching
	// bucket — the reverse-collision marking half of the contract.
	ReverseSpans(ctx context.Context, keys []uint64, spans []int32) error
	// Stats reports the shard's bucket occupancy.
	Stats(ctx context.Context) (Stats, error)
}

// localBackend serves one in-process shard. Calls are sub-microsecond
// and cannot fail, so the ctx parameter is never consulted — deadlines
// and cancellation are enforced by the resilient call layer around the
// backend, which is what makes a stalled *remote* (or chaos-wrapped)
// shard unable to block a cancelled run.
type localBackend struct {
	ix    *Index
	bands int
}

// LocalBackends returns one in-process backend per shard, the
// zero-fault default the resilient planner is bit-identical over.
func (sh *Sharded) LocalBackends() []ShardBackend {
	out := make([]ShardBackend, len(sh.shards))
	for s, ix := range sh.shards {
		out[s] = &localBackend{ix: ix, bands: sh.params.Bands}
	}
	return out
}

func (l *localBackend) ItemKeys(_ context.Context, locals []int32, keys []uint64) error {
	if len(keys) != len(locals)*l.bands {
		return fmt.Errorf("lsh: ItemKeys buffer holds %d keys, want %d", len(keys), len(locals)*l.bands)
	}
	for i, local := range locals {
		for b := 0; b < l.bands; b++ {
			keys[i*l.bands+b] = l.ix.itemBandKey(local, b)
		}
	}
	return nil
}

func (l *localBackend) Candidates(_ context.Context, keys []uint64, emit func(band int, bucket []int32)) error {
	if len(keys) != l.bands {
		return fmt.Errorf("lsh: Candidates got %d keys, want %d", len(keys), l.bands)
	}
	for b, key := range keys {
		if bucket := l.ix.lookupBucket(b, key); len(bucket) > 0 {
			emit(b, bucket)
		}
	}
	return nil
}

func (l *localBackend) CandidatesBlock(_ context.Context, n int, keys []uint64, emit func(pos, band int, bucket []int32)) error {
	if len(keys) != n*l.bands {
		return fmt.Errorf("lsh: CandidatesBlock got %d keys for %d items", len(keys), n)
	}
	for b := 0; b < l.bands; b++ {
		for pos := 0; pos < n; pos++ {
			if bucket := l.ix.lookupBucket(b, keys[pos*l.bands+b]); len(bucket) > 0 {
				emit(pos, b, bucket)
			}
		}
	}
	return nil
}

func (l *localBackend) ReverseSpans(_ context.Context, keys []uint64, spans []int32) error {
	if len(keys) != l.bands || len(spans) != l.bands {
		return fmt.Errorf("lsh: ReverseSpans got %d keys / %d spans, want %d", len(keys), len(spans), l.bands)
	}
	fz := l.ix.frozen
	if fz == nil {
		return errors.New("lsh: ReverseSpans on an unfrozen shard")
	}
	for b, key := range keys {
		spans[b] = fz.tables[b].get(key)
	}
	return nil
}

func (l *localBackend) Stats(_ context.Context) (Stats, error) {
	return l.ix.Stats(), nil
}

// Policy bounds the resilient call layer. The zero value selects the
// defaults below; negative RetryBudget and HedgeAfter mean "none".
type Policy struct {
	// CallTimeout is the per-attempt deadline, derived as a child of
	// the run context so cancellation always wins.
	CallTimeout time.Duration
	// RetryBudget is how many times a failed call is retried (0 selects
	// DefaultRetryBudget, negative disables retries).
	RetryBudget int
	// BackoffBase is the first retry's backoff; each further retry
	// doubles it, jittered ±50%.
	BackoffBase time.Duration
	// HedgeAfter is the straggler threshold: an attempt still pending
	// after this long launches a mirror-backend hedge (first success
	// wins, the loser's context is cancelled). 0 selects
	// DefaultHedgeAfter; negative, DisableHedging, or a nil mirror set
	// disables hedging.
	HedgeAfter     time.Duration
	DisableHedging bool
	// DownAfter is how many consecutive exhausted calls mark a shard
	// down (0 selects DefaultDownAfter).
	DownAfter int
	// ProbeEvery re-probes a down shard every this many skipped calls,
	// so a recovered shard comes back (0 selects DefaultProbeEvery).
	ProbeEvery int
	// Seed drives the backoff jitter PRNG (deterministic runs).
	Seed uint64
}

// Resilient-call policy defaults.
const (
	DefaultCallTimeout = time.Second
	DefaultRetryBudget = 2
	DefaultBackoffBase = 200 * time.Microsecond
	DefaultHedgeAfter  = 5 * time.Millisecond
	DefaultDownAfter   = 1
	DefaultProbeEvery  = 64
)

// withDefaults resolves the zero-value conventions.
func (p Policy) withDefaults() Policy {
	if p.CallTimeout <= 0 {
		p.CallTimeout = DefaultCallTimeout
	}
	switch {
	case p.RetryBudget == 0:
		p.RetryBudget = DefaultRetryBudget
	case p.RetryBudget < 0:
		p.RetryBudget = 0
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = DefaultBackoffBase
	}
	switch {
	case p.HedgeAfter == 0:
		p.HedgeAfter = DefaultHedgeAfter
	case p.HedgeAfter < 0:
		p.DisableHedging = true
	}
	if p.DownAfter <= 0 {
		p.DownAfter = DefaultDownAfter
	}
	if p.ProbeEvery <= 0 {
		p.ProbeEvery = DefaultProbeEvery
	}
	return p
}

// errShardDown is the breaker's fast-skip error: the shard exhausted
// its retry budget recently and calls are being shed until a probe
// succeeds.
var errShardDown = errors.New("lsh: shard marked down, call skipped")

// shardHealth is the per-shard circuit-breaker state.
type shardHealth struct {
	// consec counts consecutive exhausted (post-retry) failures.
	consec atomic.Int32
	// down sheds calls without attempting them.
	down atomic.Bool
	// skips counts shed calls, to pace recovery probes.
	skips atomic.Int64
	// everFailed latches "this shard was skipped at least once" for the
	// run's SkippedShards accounting.
	everFailed atomic.Bool
}

// resilience is the fault-tolerance layer attached to a Sharded index:
// the backends the planner fans out over, the mirrors hedges race, the
// policy, and the run-wide failure accounting. All counters are atomic
// — parallel pass workers share one resilience.
type resilience struct {
	ctx      context.Context
	backends []ShardBackend
	mirrors  []ShardBackend
	pol      Policy

	health []shardHealth

	jmu  sync.Mutex
	jrng *rand.Rand

	retries      atomic.Int64
	timeouts     atomic.Int64
	hedged       atomic.Int64
	hedgeWins    atomic.Int64
	failedCalls  atomic.Int64
	skippedCalls atomic.Int64
}

// ResilienceStats is a snapshot of the fault-tolerance counters.
type ResilienceStats struct {
	// Retries counts re-attempted backend calls; Timeouts the attempts
	// that hit their per-call deadline.
	Retries, Timeouts int64
	// HedgedCalls counts mirror hedges launched past the straggler
	// threshold; HedgeWins how often the hedge finished first.
	HedgedCalls, HedgeWins int64
	// FailedCalls counts calls that exhausted their retry budget;
	// SkippedCalls those shed by the breaker without an attempt.
	FailedCalls, SkippedCalls int64
	// SkippedShards is how many distinct shards ever had a call fail
	// past its budget or shed — each one a measured recall-loss source.
	SkippedShards int
	// DownShards is how many shards the breaker currently holds down.
	DownShards int
}

// AttachBackends routes the planner's cross-shard fan-out through the
// given backends (one per shard) under the policy, with ctx bounding
// every call. mirrors, when non-nil (one per shard), serve hedged
// requests. With all-local backends and no faults the planner is
// bit-identical to the direct path; tests pin that.
func (sh *Sharded) AttachBackends(ctx context.Context, backends, mirrors []ShardBackend, pol Policy) error {
	if len(backends) != len(sh.shards) {
		return fmt.Errorf("lsh: %d backends for %d shards", len(backends), len(sh.shards))
	}
	if mirrors != nil && len(mirrors) != len(sh.shards) {
		return fmt.Errorf("lsh: %d mirror backends for %d shards", len(mirrors), len(sh.shards))
	}
	if sh.perm != nil {
		// The backend replay merges assume identity-ordered shard
		// buckets; callers that want backend routing build with
		// SetReorder(false) (core disables reordering whenever a
		// resilience config is present).
		return fmt.Errorf("lsh: backends cannot attach to a locality-reordered index")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	p := pol.withDefaults()
	sh.res = &resilience{
		ctx:      ctx,
		backends: backends,
		mirrors:  mirrors,
		pol:      p,
		health:   make([]shardHealth, len(backends)),
		jrng:     rand.New(rand.NewSource(int64(p.Seed))),
	}
	return nil
}

// DetachBackends restores the direct in-process fan-out.
func (sh *Sharded) DetachBackends() { sh.res = nil }

// Resilient reports whether a backend layer is attached.
func (sh *Sharded) Resilient() bool { return sh.res != nil }

// ResilienceStats snapshots the fault-tolerance counters (zero without
// attached backends).
func (sh *Sharded) ResilienceStats() ResilienceStats {
	r := sh.res
	if r == nil {
		return ResilienceStats{}
	}
	st := ResilienceStats{
		Retries:      r.retries.Load(),
		Timeouts:     r.timeouts.Load(),
		HedgedCalls:  r.hedged.Load(),
		HedgeWins:    r.hedgeWins.Load(),
		FailedCalls:  r.failedCalls.Load(),
		SkippedCalls: r.skippedCalls.Load(),
	}
	for s := range r.health {
		if r.health[s].everFailed.Load() {
			st.SkippedShards++
		}
		if r.health[s].down.Load() {
			st.DownShards++
		}
	}
	return st
}

// sleep blocks for d jittered ±50%, returning false if the run context
// was cancelled first.
func (r *resilience) sleep(d time.Duration) bool {
	r.jmu.Lock()
	j := d/2 + time.Duration(r.jrng.Int63n(int64(d)))
	r.jmu.Unlock()
	t := time.NewTimer(j)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-r.ctx.Done():
		return false
	}
}

// outcome carries one attempt's result across the gather channel.
type outcome[T any] struct {
	v     T
	err   error
	hedge bool
}

// runGuarded invokes do and delivers its result — or, if the attempt
// context expires first, the context error — to ch. The select is the
// cancellation guarantee of the whole layer: a backend that ignores
// its context (a stalled remote, a chaos stall) cannot block the
// caller past the deadline; its goroutine is abandoned and drains into
// the buffered channel.
func runGuarded[T any](ctx context.Context, b ShardBackend, do func(context.Context, ShardBackend) (T, error), ch chan<- outcome[T], hedge bool) {
	inner := make(chan outcome[T], 1)
	go func() {
		v, err := do(ctx, b)
		inner <- outcome[T]{v: v, err: err, hedge: hedge}
	}()
	select {
	case out := <-inner:
		ch <- out
	case <-ctx.Done():
		ch <- outcome[T]{err: ctx.Err(), hedge: hedge}
	}
}

// attemptOnce runs one deadline-bounded attempt against shard s's
// primary backend, racing a mirror hedge after the straggler threshold
// when hedging is armed. First success wins and the loser's context is
// cancelled.
func attemptOnce[T any](r *resilience, s int, do func(context.Context, ShardBackend) (T, error)) (T, error) {
	var zero T
	pctx, pcancel := context.WithTimeout(r.ctx, r.pol.CallTimeout)
	ch := make(chan outcome[T], 2)
	go runGuarded(pctx, r.backends[s], do, ch, false)
	if r.pol.DisableHedging || r.mirrors == nil {
		out := <-ch
		pcancel()
		return out.v, out.err
	}
	timer := time.NewTimer(r.pol.HedgeAfter)
	defer timer.Stop()
	defer pcancel()
	pending := 1
	hedged := false
	var lastErr error
	for {
		select {
		case out := <-ch:
			pending--
			if out.err == nil {
				if out.hedge {
					r.hedgeWins.Add(1)
				}
				// Returning runs the deferred cancels: the loser — the
				// straggling primary when the hedge won — is cancelled.
				return out.v, nil
			}
			lastErr = out.err
			if pending == 0 {
				return zero, lastErr
			}
		case <-timer.C:
			if hedged {
				continue
			}
			hedged = true
			r.hedged.Add(1)
			hctx, hcancel := context.WithTimeout(r.ctx, r.pol.CallTimeout)
			defer hcancel()
			go runGuarded(hctx, r.mirrors[s], do, ch, true)
			pending++
		}
	}
}

// callWithRetry wraps attemptOnce in the bounded-retry loop: jittered
// exponential backoff between attempts, run-context cancellation
// checked before every attempt and sleep.
func callWithRetry[T any](r *resilience, s int, do func(context.Context, ShardBackend) (T, error)) (T, error) {
	var zero T
	backoff := r.pol.BackoffBase
	var lastErr error
	for a := 0; a <= r.pol.RetryBudget; a++ {
		if err := r.ctx.Err(); err != nil {
			return zero, err
		}
		if a > 0 {
			r.retries.Add(1)
			if !r.sleep(backoff) {
				return zero, r.ctx.Err()
			}
			backoff *= 2
		}
		v, err := attemptOnce(r, s, do)
		if err == nil {
			return v, nil
		}
		if cerr := r.ctx.Err(); cerr != nil {
			return zero, cerr
		}
		if errors.Is(err, context.DeadlineExceeded) {
			r.timeouts.Add(1)
		}
		lastErr = err
	}
	return zero, lastErr
}

// resilientCall is the planner's single entry into a shard backend:
// breaker fast-skip for down shards (with paced recovery probes), then
// the retry/hedge machinery, then health bookkeeping. do must allocate
// its own result — hedged attempts run it concurrently against the
// primary and the mirror, and only the winner's value is returned.
func resilientCall[T any](r *resilience, s int, do func(context.Context, ShardBackend) (T, error)) (T, error) {
	var zero T
	h := &r.health[s]
	if h.down.Load() {
		if n := h.skips.Add(1); n%int64(r.pol.ProbeEvery) != 0 {
			r.skippedCalls.Add(1)
			return zero, errShardDown
		}
	}
	v, err := callWithRetry(r, s, do)
	if err == nil {
		h.consec.Store(0)
		h.down.Store(false)
		return v, nil
	}
	if r.ctx.Err() != nil {
		// The run was cancelled, not the shard failing: leave health be.
		return zero, err
	}
	r.failedCalls.Add(1)
	h.everFailed.Store(true)
	if int(h.consec.Add(1)) >= r.pol.DownAfter {
		h.down.Store(true)
	}
	return zero, err
}
