package lsh

import "testing"

// benchSets is a larger testSets variant for construction benchmarks:
// overlapping sets so buckets have realistic occupancy.
func benchSets(n int) [][]uint64 {
	return testSets(n, 12345)
}

// BenchmarkIndexMapBuild measures the streaming (map-based) build
// path end to end: per-item signing plus bucket filing for n items.
func BenchmarkIndexMapBuild(b *testing.B) {
	const n = 20000
	p := Params{Bands: 10, Rows: 2}
	sets := benchSets(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := NewIndex(p, 7, n)
		if err != nil {
			b.Fatal(err)
		}
		for item := 0; item < n; item++ {
			if err := ix.Insert(int32(item), sets[item]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkIndexMapFile isolates the filing half of the map build —
// presigned keys, InsertKeys only — the path the NewIndex per-band
// capacity hint (n/Bands) targets: pre-sized maps skip the doubling
// rehashes of a from-zero build. Measured at n=20k, 10 bands: on
// high-cardinality streams (distinct keys ≈ n per band) the hint cuts
// allocated bytes ~4.5% at neutral wall time; on tightly clustered
// shapes (distinct ≈ n/19) it overshoots ~2× with a small wall-time
// cost, bounded by the hint being a Bands-th of the worst case. The
// batch path no longer touches these maps at all (BuildFrozen), so
// the hint only affects streaming inserts.
func BenchmarkIndexMapFile(b *testing.B) {
	const n = 20000
	p := Params{Bands: 10, Rows: 2}
	sets := benchSets(n)
	seedIx, err := NewIndex(p, 7, n)
	if err != nil {
		b.Fatal(err)
	}
	keys := SignAll(p, n, 1, setSigner(seedIx, sets), nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := NewIndex(p, 7, n)
		if err != nil {
			b.Fatal(err)
		}
		for item := 0; item < n; item++ {
			if err := ix.InsertKeys(int32(item), keys[item*p.Bands:(item+1)*p.Bands]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// benchBuildFrozen measures the batch construction pipeline end to
// end — SignAll + BuildFrozen — against the serial oracle of per-item
// Insert followed by Freeze, at the given worker count.
func benchBuildFrozen(b *testing.B, workers int, direct bool) {
	const n = 20000
	p := Params{Bands: 10, Rows: 2}
	sets := benchSets(n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix, err := NewIndex(p, 7, n)
		if err != nil {
			b.Fatal(err)
		}
		if direct {
			keys := SignAll(p, n, workers, setSigner(ix, sets), nil)
			if err := ix.BuildFrozen(keys, n, workers); err != nil {
				b.Fatal(err)
			}
		} else {
			for item := 0; item < n; item++ {
				if err := ix.Insert(int32(item), sets[item]); err != nil {
					b.Fatal(err)
				}
			}
			ix.Freeze()
		}
	}
}

func BenchmarkBuildInsertFreezeSerial(b *testing.B) { benchBuildFrozen(b, 1, false) }
func BenchmarkBuildFrozenDirect1(b *testing.B)      { benchBuildFrozen(b, 1, true) }
func BenchmarkBuildFrozenDirect4(b *testing.B)      { benchBuildFrozen(b, 4, true) }
