package lsh

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// noFaultPolicy keeps resilient-path tests deterministic: no retries,
// no hedging, generous deadline.
func noFaultPolicy() Policy {
	return Policy{RetryBudget: -1, DisableHedging: true, CallTimeout: 30 * time.Second}
}

// faultBackend wraps a ShardBackend with per-method scripted failures
// and an optional context-ignoring stall — the minimal in-package fault
// injector (the full chaos harness lives in internal/lsh/serve).
type faultBackend struct {
	inner ShardBackend
	// failMethod names the method to fail ("" = none, "*" = all).
	failMethod string
	// failFirst, when > 0, fails only the first N matching calls.
	failFirst int
	// stall sleeps this long before every call, ignoring the context —
	// the misbehaving-remote case the deadline guard must contain.
	stall time.Duration

	mu    sync.Mutex
	calls int
}

var errInjected = errors.New("injected backend failure")

func (f *faultBackend) roll(method string) error {
	if f.stall > 0 {
		time.Sleep(f.stall)
	}
	if f.failMethod != method && f.failMethod != "*" {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.calls++
	if f.failFirst > 0 && f.calls > f.failFirst {
		return nil
	}
	return errInjected
}

func (f *faultBackend) ItemKeys(ctx context.Context, locals []int32, keys []uint64) error {
	if err := f.roll("ItemKeys"); err != nil {
		return err
	}
	return f.inner.ItemKeys(ctx, locals, keys)
}

func (f *faultBackend) Candidates(ctx context.Context, keys []uint64, emit func(band int, bucket []int32)) error {
	if err := f.roll("Candidates"); err != nil {
		return err
	}
	return f.inner.Candidates(ctx, keys, emit)
}

func (f *faultBackend) CandidatesBlock(ctx context.Context, n int, keys []uint64, emit func(pos, band int, bucket []int32)) error {
	if err := f.roll("CandidatesBlock"); err != nil {
		return err
	}
	return f.inner.CandidatesBlock(ctx, n, keys, emit)
}

func (f *faultBackend) ReverseSpans(ctx context.Context, keys []uint64, spans []int32) error {
	if err := f.roll("ReverseSpans"); err != nil {
		return err
	}
	return f.inner.ReverseSpans(ctx, keys, spans)
}

func (f *faultBackend) Stats(ctx context.Context) (Stats, error) {
	if err := f.roll("Stats"); err != nil {
		return Stats{}, err
	}
	return f.inner.Stats(ctx)
}

// buildSharded constructs a populated index: frozen range partition or
// map-phase stride partition.
func buildSharded(t *testing.T, p Params, sets [][]uint64, shards int, stride bool) *Sharded {
	t.Helper()
	n := len(sets)
	var sh *Sharded
	var err error
	if stride {
		sh, err = NewShardedStream(p, 7, shards, n)
	} else {
		sh, err = NewSharded(p, 7, n, shards)
	}
	if err != nil {
		t.Fatal(err)
	}
	if stride {
		for i, s := range sets {
			if err := sh.Insert(int32(i), s); err != nil {
				t.Fatal(err)
			}
		}
	} else {
		keys := signKeysFor(sh, sets, 2)
		if err := sh.BuildFrozen(keys, n, 2); err != nil {
			t.Fatal(err)
		}
	}
	return sh
}

// TestBackendFanOutMatchesDirect is the resilient planner's
// bit-identity oracle: with all-local backends and zero faults, every
// query path — per-item, batched block sweep, by keys, by signature —
// must reproduce the direct fan-out's candidate stream exactly, for
// range and stride partitions at every shard count, with and without
// hedging armed.
func TestBackendFanOutMatchesDirect(t *testing.T) {
	const n = 240
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 21)
	probe := []uint64{100, 101, 102, 103, 104}
	for _, stride := range []bool{false, true} {
		for _, shards := range []int{1, 2, 4} {
			for _, hedged := range []bool{false, true} {
				t.Run(fmt.Sprintf("stride=%v/s=%d/hedged=%v", stride, shards, hedged), func(t *testing.T) {
					sh := buildSharded(t, p, sets, shards, stride)
					q := sh.NewQuery()

					// Direct-path oracle, gathered before any backends attach.
					wantItems := make([][]int32, n)
					for i := 0; i < n; i++ {
						wantItems[i] = collectQueryCandidates(q, int32(i))
					}
					sig := make([]uint64, p.SignatureLen())
					sh.Scheme().Sign(probe, sig)
					var wantSig []int32
					q.CandidatesOfSignature(sig, func(o int32) { wantSig = append(wantSig, o) })

					pol := noFaultPolicy()
					var mirrors []ShardBackend
					if hedged {
						pol.DisableHedging = false
						pol.HedgeAfter = time.Nanosecond // hedge aggressively: results must not change
						mirrors = sh.LocalBackends()
					}
					if err := sh.AttachBackends(nil, sh.LocalBackends(), mirrors, pol); err != nil {
						t.Fatal(err)
					}
					defer sh.DetachBackends()
					if !sh.Resilient() {
						t.Fatal("Resilient() false after AttachBackends")
					}

					for i := 0; i < n; i++ {
						got := collectQueryCandidates(q, int32(i))
						if !reflect.DeepEqual(wantItems[i], got) {
							t.Fatalf("item %d: want %v, got %v", i, wantItems[i], got)
						}
						if partial, ownerDown := q.LastDegraded(); partial || ownerDown {
							t.Fatalf("item %d degraded (%v, %v) without faults", i, partial, ownerDown)
						}
					}
					var gotSig []int32
					q.CandidatesOfSignature(sig, func(o int32) { gotSig = append(gotSig, o) })
					if !reflect.DeepEqual(wantSig, gotSig) {
						t.Fatalf("of-signature: want %v, got %v", wantSig, gotSig)
					}
					for _, blockLen := range []int{1, 7, 64} {
						for lo := 0; lo < n; lo += blockLen {
							hi := min(lo+blockLen, n)
							blk := make([]int32, 0, hi-lo)
							for i := lo; i < hi; i++ {
								blk = append(blk, int32(i))
							}
							got := make([][]int32, len(blk))
							q.CandidatesBatch(blk, func(pos int, bucket []int32) {
								got[pos] = append(got[pos], bucket...)
							})
							for pos, item := range blk {
								if !reflect.DeepEqual(wantItems[item], got[pos]) {
									t.Fatalf("block item %d: want %v, got %v", item, wantItems[item], got[pos])
								}
								if partial, ownerDown := q.BlockDegraded(pos); partial || ownerDown {
									t.Fatalf("block item %d degraded without faults", item)
								}
							}
						}
					}
					if hedged {
						// Aggressive hedging must never under- or over-count
						// results; stats just record the races.
						st := sh.ResilienceStats()
						if st.FailedCalls != 0 || st.SkippedCalls != 0 || st.SkippedShards != 0 {
							t.Fatalf("failure counters nonzero without faults: %+v", st)
						}
					}
				})
			}
		}
	}
}

// TestBackendReverseMatchesDirect pins the reverse-collision expansion
// through backends against the direct path.
func TestBackendReverseMatchesDirect(t *testing.T) {
	const n = 200
	p := Params{Bands: 5, Rows: 3}
	sets := testSets(n, 5)
	for _, shards := range []int{1, 2, 3} {
		t.Run(fmt.Sprintf("s=%d", shards), func(t *testing.T) {
			sh := buildSharded(t, p, sets, shards, false)
			sources := []int32{0, 3, 17, int32(n - 1)}

			direct := sh.NewReverse()
			if direct == nil {
				t.Fatal("NewReverse returned nil on a frozen index")
			}
			var want []int32
			for _, s := range sources {
				direct.AddSource(s)
			}
			direct.Emit(func(item int32) bool { want = append(want, item); return true })

			if err := sh.AttachBackends(nil, sh.LocalBackends(), nil, noFaultPolicy()); err != nil {
				t.Fatal(err)
			}
			defer sh.DetachBackends()
			rv := sh.NewReverse()
			var got []int32
			for _, s := range sources {
				rv.AddSource(s)
			}
			rv.Emit(func(item int32) bool { got = append(got, item); return true })
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("reverse emission: want %v, got %v", want, got)
			}
			if rv.Degraded() {
				t.Fatal("reverse view degraded without faults")
			}
		})
	}
}

// asSet folds a candidate enumeration into a multiplicity-free set.
func asSet(items []int32) map[int32]bool {
	out := make(map[int32]bool, len(items))
	for _, it := range items {
		out[it] = true
	}
	return out
}

// TestBackendErrorPropagation is the table-driven degradation contract:
// for every fan-out call site, a failing shard must surface as the
// right (partial, ownerDown) report, never as a wrong shortlist — what
// survives is always a subset of the oracle.
func TestBackendErrorPropagation(t *testing.T) {
	const n = 210
	const shards = 3
	p := Params{Bands: 5, Rows: 2}
	sets := testSets(n, 11)
	sh := buildSharded(t, p, sets, shards, false)
	q := sh.NewQuery()
	wantItems := make([][]int32, n)
	for i := 0; i < n; i++ {
		wantItems[i] = collectQueryCandidates(q, int32(i))
	}
	// ownedBy picks an inserted item owned by the given shard.
	ownedBy := func(s int) int32 {
		for i := 0; i < n; i++ {
			if t, _, ok := sh.part.locate(int32(i)); ok && t == s {
				return int32(i)
			}
		}
		t.Fatalf("no item owned by shard %d", s)
		return -1
	}
	const bad = 1 // the shard whose backend fails
	attach := func(method string) {
		backends := sh.LocalBackends()
		backends[bad] = &faultBackend{inner: backends[bad], failMethod: method}
		pol := noFaultPolicy()
		// Keep the breaker out of the way: these cases pin per-call
		// propagation, not the trip-after-failures policy (tested below).
		pol.DownAfter = 1 << 30
		if err := sh.AttachBackends(nil, backends, nil, pol); err != nil {
			t.Fatal(err)
		}
	}

	t.Run("Candidates/foreign-shard-down", func(t *testing.T) {
		attach("Candidates")
		defer sh.DetachBackends()
		item := ownedBy(0)
		got := collectQueryCandidates(q, item)
		partial, ownerDown := q.LastDegraded()
		if !partial || ownerDown {
			t.Fatalf("degraded = (%v, %v), want (true, false)", partial, ownerDown)
		}
		want := asSet(wantItems[item])
		for _, g := range got {
			if !want[g] {
				t.Fatalf("item %d: spurious candidate %d", item, g)
			}
		}
	})
	t.Run("Candidates/owner-shard-down", func(t *testing.T) {
		attach("Candidates")
		defer sh.DetachBackends()
		item := ownedBy(bad)
		collectQueryCandidates(q, item)
		partial, ownerDown := q.LastDegraded()
		if !partial || !ownerDown {
			t.Fatalf("degraded = (%v, %v), want (true, true)", partial, ownerDown)
		}
	})
	t.Run("ItemKeys/owner-down", func(t *testing.T) {
		attach("ItemKeys")
		defer sh.DetachBackends()
		item := ownedBy(bad)
		got := collectQueryCandidates(q, item)
		partial, ownerDown := q.LastDegraded()
		if !partial || !ownerDown {
			t.Fatalf("degraded = (%v, %v), want (true, true)", partial, ownerDown)
		}
		if len(got) != 0 {
			t.Fatalf("unresolvable item emitted %v", got)
		}
		// Other shards' items resolve keys on their own shard: unaffected.
		other := ownedBy(0)
		got = collectQueryCandidates(q, other)
		if partial, ownerDown := q.LastDegraded(); partial || ownerDown {
			t.Fatalf("item %d degraded (%v, %v) by another shard's ItemKeys fault", other, partial, ownerDown)
		}
		if !reflect.DeepEqual(wantItems[other], got) {
			t.Fatalf("item %d: want %v, got %v", other, wantItems[other], got)
		}
	})
	t.Run("CandidatesBlock/block-degrades", func(t *testing.T) {
		attach("CandidatesBlock")
		defer sh.DetachBackends()
		blk := []int32{ownedBy(0), ownedBy(bad), ownedBy(2)}
		got := make([][]int32, len(blk))
		q.CandidatesBatch(blk, func(pos int, bucket []int32) {
			got[pos] = append(got[pos], bucket...)
		})
		for pos, item := range blk {
			partial, ownerDown := q.BlockDegraded(pos)
			if !partial {
				t.Fatalf("pos %d (item %d) not partial", pos, item)
			}
			owner, _, _ := sh.part.locate(item)
			if ownerDown != (owner == bad) {
				t.Fatalf("pos %d (item %d): ownerDown = %v, owner shard %d", pos, item, ownerDown, owner)
			}
			want := asSet(wantItems[item])
			for _, g := range got[pos] {
				if !want[g] {
					t.Fatalf("pos %d: spurious candidate %d", pos, g)
				}
			}
		}
	})
	t.Run("CandidatesOfKeys/partial-never-ownerDown", func(t *testing.T) {
		attach("Candidates")
		defer sh.DetachBackends()
		sig := make([]uint64, p.SignatureLen())
		sh.Scheme().Sign(sets[0], sig)
		q.CandidatesOfSignature(sig, func(int32) {})
		partial, ownerDown := q.LastDegraded()
		if !partial || ownerDown {
			t.Fatalf("degraded = (%v, %v), want (true, false): out-of-index queries have no owner", partial, ownerDown)
		}
	})
	t.Run("ReverseSpans/degrades-view", func(t *testing.T) {
		attach("ReverseSpans")
		defer sh.DetachBackends()
		rv := sh.NewReverse()
		rv.AddSource(ownedBy(0))
		if !rv.Degraded() {
			t.Fatal("reverse view not degraded after a ReverseSpans fault")
		}
		rv.Emit(func(int32) bool { return true })
		// A fresh cycle on a healed view resets the flag.
		sh.DetachBackends()
		if err := sh.AttachBackends(nil, sh.LocalBackends(), nil, noFaultPolicy()); err != nil {
			t.Fatal(err)
		}
		rv.AddSource(ownedBy(0))
		if rv.Degraded() {
			t.Fatal("degraded flag did not reset on the next cycle")
		}
	})
}

// TestBackendRetryRecovers pins the retry loop: a transient failure
// (first call fails, then the shard recovers) must be absorbed by the
// retry budget — identical results, Retries counted, nothing degraded.
func TestBackendRetryRecovers(t *testing.T) {
	const n = 120
	p := Params{Bands: 4, Rows: 2}
	sets := testSets(n, 3)
	sh := buildSharded(t, p, sets, 2, false)
	q := sh.NewQuery()
	want := collectQueryCandidates(q, 0)

	backends := sh.LocalBackends()
	backends[1] = &faultBackend{inner: backends[1], failMethod: "Candidates", failFirst: 1}
	pol := noFaultPolicy()
	pol.RetryBudget = 2
	pol.BackoffBase = time.Microsecond
	if err := sh.AttachBackends(nil, backends, nil, pol); err != nil {
		t.Fatal(err)
	}
	defer sh.DetachBackends()

	got := collectQueryCandidates(q, 0)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("retried query: want %v, got %v", want, got)
	}
	if partial, ownerDown := q.LastDegraded(); partial || ownerDown {
		t.Fatal("absorbed transient fault still degraded the query")
	}
	st := sh.ResilienceStats()
	if st.Retries != 1 {
		t.Fatalf("Retries = %d, want 1", st.Retries)
	}
	if st.FailedCalls != 0 || st.SkippedShards != 0 {
		t.Fatalf("absorbed fault counted as failure: %+v", st)
	}
}

// TestBackendTimeoutCounted pins the deadline guard: a backend that
// stalls past CallTimeout — ignoring its context entirely — fails the
// call as a timeout instead of blocking the planner.
func TestBackendTimeoutCounted(t *testing.T) {
	const n = 80
	p := Params{Bands: 4, Rows: 2}
	sets := testSets(n, 9)
	sh := buildSharded(t, p, sets, 2, false)
	q := sh.NewQuery()

	backends := sh.LocalBackends()
	backends[1] = &faultBackend{inner: backends[1], stall: 200 * time.Millisecond}
	pol := noFaultPolicy()
	pol.CallTimeout = 10 * time.Millisecond
	if err := sh.AttachBackends(nil, backends, nil, pol); err != nil {
		t.Fatal(err)
	}
	defer sh.DetachBackends()

	start := time.Now()
	collectQueryCandidates(q, 0)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled shard blocked the query for %v", elapsed)
	}
	if partial, _ := q.LastDegraded(); !partial {
		t.Fatal("timed-out shard did not degrade the query")
	}
	st := sh.ResilienceStats()
	if st.Timeouts == 0 {
		t.Fatalf("Timeouts = 0 after a stalled call: %+v", st)
	}
}

// TestBackendHedgeWins pins the hedge race: with a stalling primary and
// a healthy instant mirror, the mirror's result arrives first and the
// shortlist is exactly the oracle's.
func TestBackendHedgeWins(t *testing.T) {
	const n = 120
	p := Params{Bands: 4, Rows: 2}
	sets := testSets(n, 17)
	sh := buildSharded(t, p, sets, 2, false)
	q := sh.NewQuery()
	want := collectQueryCandidates(q, 0)

	backends := sh.LocalBackends()
	backends[1] = &faultBackend{inner: backends[1], stall: 300 * time.Millisecond}
	pol := Policy{
		RetryBudget: -1,
		CallTimeout: 10 * time.Second,
		HedgeAfter:  time.Millisecond,
	}
	if err := sh.AttachBackends(nil, backends, sh.LocalBackends(), pol); err != nil {
		t.Fatal(err)
	}
	defer sh.DetachBackends()

	start := time.Now()
	got := collectQueryCandidates(q, 0)
	elapsed := time.Since(start)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("hedged query: want %v, got %v", want, got)
	}
	if partial, ownerDown := q.LastDegraded(); partial || ownerDown {
		t.Fatal("hedged query degraded")
	}
	if elapsed >= 300*time.Millisecond {
		t.Fatalf("hedge did not rescue the stalled call (%v)", elapsed)
	}
	st := sh.ResilienceStats()
	if st.HedgedCalls == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge not recorded: %+v", st)
	}
}

// TestBackendBreakerShedsDeadShard pins the circuit breaker: a shard
// that fails past its budget goes down, later calls shed without an
// attempt, and the run's SkippedShards accounting names it.
func TestBackendBreakerShedsDeadShard(t *testing.T) {
	const n = 150
	p := Params{Bands: 4, Rows: 2}
	sets := testSets(n, 29)
	sh := buildSharded(t, p, sets, 3, false)
	q := sh.NewQuery()

	backends := sh.LocalBackends()
	dead := &faultBackend{inner: backends[2], failMethod: "*"}
	backends[2] = dead
	pol := noFaultPolicy()
	pol.DownAfter = 1
	pol.ProbeEvery = 1 << 30 // no recovery probes inside this test
	if err := sh.AttachBackends(nil, backends, nil, pol); err != nil {
		t.Fatal(err)
	}
	defer sh.DetachBackends()

	for i := 0; i < 20; i++ {
		collectQueryCandidates(q, int32(i))
		if partial, _ := q.LastDegraded(); !partial {
			t.Fatalf("item %d not degraded with a dead shard", i)
		}
	}
	st := sh.ResilienceStats()
	if st.SkippedShards != 1 || st.DownShards != 1 {
		t.Fatalf("SkippedShards/DownShards = %d/%d, want 1/1", st.SkippedShards, st.DownShards)
	}
	if st.SkippedCalls == 0 {
		t.Fatalf("breaker never shed a call: %+v", st)
	}
	dead.mu.Lock()
	attempts := dead.calls
	dead.mu.Unlock()
	if attempts >= 20 {
		t.Fatalf("dead shard attempted %d times; breaker not shedding", attempts)
	}
}

// TestBackendCancellationBeatsStall is the regression test for the
// cancelled-run guarantee: with an effectively unbounded CallTimeout
// and a backend that stalls ignoring its context, cancelling the run
// context must return the in-flight query promptly — the guard
// goroutine abandons the stalled call instead of waiting it out.
func TestBackendCancellationBeatsStall(t *testing.T) {
	const n = 80
	p := Params{Bands: 4, Rows: 2}
	sets := testSets(n, 41)
	sh := buildSharded(t, p, sets, 2, false)
	q := sh.NewQuery()

	backends := sh.LocalBackends()
	backends[1] = &faultBackend{inner: backends[1], stall: 3 * time.Second}
	ctx, cancel := context.WithCancel(context.Background())
	pol := noFaultPolicy()
	pol.CallTimeout = time.Hour
	if err := sh.AttachBackends(ctx, backends, nil, pol); err != nil {
		t.Fatal(err)
	}
	defer sh.DetachBackends()

	done := make(chan struct{})
	start := time.Now()
	go func() {
		collectQueryCandidates(q, 0)
		close(done)
	}()
	time.Sleep(20 * time.Millisecond)
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled run still blocked on a stalled shard after 2s")
	}
	if elapsed := time.Since(start); elapsed >= 3*time.Second {
		t.Fatalf("query waited out the stall (%v) instead of honouring cancellation", elapsed)
	}
}
