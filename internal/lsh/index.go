package lsh

import (
	"fmt"

	"lshcluster/internal/hashfamily"
	"lshcluster/internal/minhash"
)

// Index is the MinHash banding index of paper Algorithm 2. Items are
// inserted once (the single pass over the dataset after centroid
// initialisation); each band of an item's signature is hashed to a bucket
// key, and the item ID is appended to that band's bucket.
//
// Band keys for every inserted item are also retained, so the recurring
// per-iteration query "which items collide with item i" is a pure lookup
// that never re-hashes the item. The paper's per-item *cluster reference*
// lives outside the index, in the caller's assignment slice: because
// buckets store item IDs and the caller maps IDs to clusters at query
// time, "updating the reference" after a move is a single slice store —
// exactly the O(1) pointer update described in §III-B.
//
// An Index is not safe for concurrent mutation. Concurrent queries are
// safe once all insertions are done.
type Index struct {
	params Params
	scheme *minhash.Scheme
	// buckets[band] maps a band key to the IDs of the items whose
	// signature hashed to it. Separate maps per band implement the
	// paper's requirement that "there will be b sets of buckets to map
	// to, one set for each band so no overlapping between bands can
	// occur"; keys are additionally salted with the band number.
	buckets []map[uint64][]int32
	// keys[item·bands+band] is the stored band key of an inserted item.
	keys     []uint64
	inserted []bool
	setBuf   []uint64
	sigBuf   []uint64
}

// NewIndex creates an index for the given banding parameters, seeded
// deterministically; numItems is the capacity hint for stored band keys
// (items with larger IDs may still be inserted).
func NewIndex(p Params, seed uint64, numItems int) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	buckets := make([]map[uint64][]int32, p.Bands)
	for b := range buckets {
		buckets[b] = make(map[uint64][]int32)
	}
	if numItems < 0 {
		numItems = 0
	}
	return &Index{
		params:   p,
		scheme:   minhash.NewScheme(p.SignatureLen(), seed),
		buckets:  buckets,
		keys:     make([]uint64, numItems*p.Bands),
		inserted: make([]bool, numItems),
		sigBuf:   make([]uint64, p.SignatureLen()),
	}, nil
}

// Params returns the banding configuration.
func (ix *Index) Params() Params { return ix.params }

// Scheme exposes the underlying MinHash scheme (e.g. for similarity
// estimation diagnostics).
func (ix *Index) Scheme() *minhash.Scheme { return ix.scheme }

// NumInserted returns how many items have been inserted.
func (ix *Index) NumInserted() int {
	n := 0
	for _, in := range ix.inserted {
		if in {
			n++
		}
	}
	return n
}

// bandKey hashes rows [band·r, (band+1)·r) of sig into a salted 64-bit
// bucket key.
func (ix *Index) bandKey(sig []uint64, band int) uint64 {
	r := ix.params.Rows
	key := uint64(band)*0x9e3779b97f4a7c15 + 0x85ebca6b9d1c5e27
	for _, v := range sig[band*r : (band+1)*r] {
		key = hashfamily.Mix64(key ^ v)
	}
	return key
}

// Insert MinHashes the given present-value set and files item under every
// band bucket (Algorithm 2 lines 5–9 applied at index-construction time).
// Inserting the same item twice is an error.
func (ix *Index) Insert(item int32, presentValues []uint64) error {
	return ix.InsertSignature(item, ix.scheme.Sign(presentValues, ix.sigBuf))
}

// InsertSignature files item under the band buckets of a precomputed
// signature of length SignatureLen. It allows other LSH families — e.g.
// the random-hyperplane (SimHash) signatures of the numeric extension —
// to reuse the banding index.
func (ix *Index) InsertSignature(item int32, sig []uint64) error {
	if item < 0 {
		return fmt.Errorf("lsh: negative item ID %d", item)
	}
	if len(sig) != ix.params.SignatureLen() {
		return fmt.Errorf("lsh: signature length %d, want %d", len(sig), ix.params.SignatureLen())
	}
	ix.grow(int(item) + 1)
	if ix.inserted[item] {
		return fmt.Errorf("lsh: item %d already inserted", item)
	}
	base := int(item) * ix.params.Bands
	for b := 0; b < ix.params.Bands; b++ {
		key := ix.bandKey(sig, b)
		ix.keys[base+b] = key
		ix.buckets[b][key] = append(ix.buckets[b][key], item)
	}
	ix.inserted[item] = true
	return nil
}

func (ix *Index) grow(n int) {
	if n <= len(ix.inserted) {
		return
	}
	for len(ix.inserted) < n {
		ix.inserted = append(ix.inserted, false)
		for i := 0; i < ix.params.Bands; i++ {
			ix.keys = append(ix.keys, 0)
		}
	}
}

// Candidates invokes fn for every item sharing at least one band bucket
// with the previously inserted item. The item itself is reported (it
// trivially collides with itself in every band), and an item sharing
// several bands is reported once per shared band — callers dedupe, which
// the shortlist construction does anyway while mapping items to clusters.
func (ix *Index) Candidates(item int32, fn func(other int32)) {
	if int(item) >= len(ix.inserted) || !ix.inserted[item] {
		return
	}
	base := int(item) * ix.params.Bands
	for b := 0; b < ix.params.Bands; b++ {
		for _, other := range ix.buckets[b][ix.keys[base+b]] {
			fn(other)
		}
	}
}

// CandidatesOfSet MinHashes an arbitrary (possibly un-inserted) value set
// and reports colliding items, with the same duplication semantics as
// Candidates. It is used for out-of-index queries such as assigning new
// items in a streaming setting.
func (ix *Index) CandidatesOfSet(presentValues []uint64, fn func(other int32)) {
	sig := ix.scheme.Sign(presentValues, ix.sigBuf)
	for b := 0; b < ix.params.Bands; b++ {
		for _, other := range ix.buckets[b][ix.bandKey(sig, b)] {
			fn(other)
		}
	}
}

// Stats summarises bucket occupancy for diagnostics.
type Stats struct {
	Bands          int
	Buckets        int     // non-empty buckets across all bands
	Items          int     // inserted items
	MaxBucketLen   int     // largest bucket
	MeanBucketLen  float64 // mean items per non-empty bucket
	SingletonShare float64 // fraction of buckets holding exactly one item
}

// Stats scans the index and returns occupancy statistics.
func (ix *Index) Stats() Stats {
	st := Stats{Bands: ix.params.Bands, Items: ix.NumInserted()}
	singles := 0
	total := 0
	for _, band := range ix.buckets {
		for _, items := range band {
			st.Buckets++
			total += len(items)
			if len(items) > st.MaxBucketLen {
				st.MaxBucketLen = len(items)
			}
			if len(items) == 1 {
				singles++
			}
		}
	}
	if st.Buckets > 0 {
		st.MeanBucketLen = float64(total) / float64(st.Buckets)
		st.SingletonShare = float64(singles) / float64(st.Buckets)
	}
	return st
}
