package lsh

import (
	"fmt"

	"lshcluster/internal/hashfamily"
	"lshcluster/internal/minhash"
)

// Index is the MinHash banding index of paper Algorithm 2. Items are
// inserted once (the single pass over the dataset after centroid
// initialisation); each band of an item's signature is hashed to a bucket
// key, and the item ID is appended to that band's bucket.
//
// Band keys for every inserted item are also retained, so the recurring
// per-iteration query "which items collide with item i" is a pure lookup
// that never re-hashes the item. The paper's per-item *cluster reference*
// lives outside the index, in the caller's assignment slice: because
// buckets store item IDs and the caller maps IDs to clusters at query
// time, "updating the reference" after a move is a single slice store —
// exactly the O(1) pointer update described in §III-B.
//
// The index has three construction lifecycles: a map-based *build*
// phase that accepts streaming inserts, an optional *frozen* phase
// (Freeze) that compacts the buckets into flat CSR arrays for
// cache-friendly, allocation-free candidate lookups during iteration,
// and a *direct-to-frozen* batch build (BuildFrozen) that constructs
// the frozen layout straight from presigned band keys, skipping the
// map phase entirely. Batch clustering either freezes after bootstrap
// (seeded mode, which interleaves queries with inserts) or builds
// frozen directly (full-scan mode); the streaming clusterer keeps
// inserting and never freezes.
//
// An Index is not safe for concurrent mutation. Insert and
// CandidatesOfSet additionally share internal signing scratch
// (sigBuf), so neither may run concurrently with the other even
// though CandidatesOfSet does not mutate buckets; parallel
// constructions sign with per-worker scratch (SignAll) instead.
// Concurrent queries via Candidates/CandidatesBatch/
// CandidatesOfSignature are safe once all insertions (or Freeze /
// BuildFrozen) are done.
type Index struct {
	params Params
	scheme *minhash.Scheme
	// capHint is the NewIndex numItems capacity hint, consumed when the
	// build-phase storage is materialised.
	capHint int
	// buckets[band] maps a band key to the IDs of the items whose
	// signature hashed to it. Separate maps per band implement the
	// paper's requirement that "there will be b sets of buckets to map
	// to, one set for each band so no overlapping between bands can
	// occur"; keys are additionally salted with the band number.
	// Allocated lazily on the first insert (ensureBuild) so the
	// direct-to-frozen batch build, which never files into maps, pays
	// nothing for them; nil once frozen.
	buckets []map[uint64][]int32
	// keyOrder[band] lists the band's distinct keys in first-insertion
	// order. Freeze assigns bucket IDs in this order, which makes the
	// frozen layout a deterministic function of the insertion sequence
	// (map iteration order is randomised) and lets BuildFrozen — which
	// processes items in ascending ID order — reproduce it byte for
	// byte. Nil once frozen.
	keyOrder [][]uint64
	// keys[item·bands+band] is the stored band key of an inserted item.
	// Nil once frozen (the frozen layout resolves items to bucket slots
	// directly).
	keys        []uint64
	inserted    []bool
	numInserted int
	frozen      *frozenIndex
	sigBuf      []uint64
	// idBase/idStride map this index's local item IDs to the global IDs
	// stored in buckets: global = idBase + local·idStride. A standalone
	// index uses (0, 1), where local and global coincide; a shard member
	// of a Sharded index carries its partition's affine map (range
	// shards: base = the shard's first global item, stride 1; stride
	// shards: base = the shard number, stride = the shard count), so
	// bucket scans emit global IDs with no per-item translation.
	idBase   int32
	idStride int32
}

// NewIndex creates an index for the given banding parameters, seeded
// deterministically; numItems is the capacity hint for stored band keys
// (items with larger IDs may still be inserted).
func NewIndex(p Params, seed uint64, numItems int) (*Index, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if numItems < 0 {
		numItems = 0
	}
	return &Index{
		params:   p,
		scheme:   minhash.NewScheme(p.SignatureLen(), seed),
		capHint:  numItems,
		sigBuf:   make([]uint64, p.SignatureLen()),
		idStride: 1,
	}, nil
}

// newShardIndex creates one shard of a Sharded index: the scheme is
// shared (every shard signs identically) and the affine local→global
// map is the shard's slice of the partition.
func newShardIndex(p Params, scheme *minhash.Scheme, capHint int, base, stride int32) *Index {
	return &Index{
		params:   p,
		scheme:   scheme,
		capHint:  capHint,
		sigBuf:   make([]uint64, p.SignatureLen()),
		idBase:   base,
		idStride: stride,
	}
}

// globalID maps a local item ID to the global ID stored in buckets.
func (ix *Index) globalID(local int32) int32 { return ix.idBase + local*ix.idStride }

// isInserted reports whether local item ID has been inserted.
func (ix *Index) isInserted(local int32) bool {
	return int(local) < len(ix.inserted) && ix.inserted[local]
}

// ensureBuild materialises the map-based build storage on first use.
// Deferred out of NewIndex so BuildFrozen — which resolves buckets
// straight into the frozen layout — never allocates the maps, the
// key-order lists or the per-item key arena it would immediately
// discard.
func (ix *Index) ensureBuild() {
	if ix.buckets != nil {
		return
	}
	// Pre-size each band's bucket map so the streaming build phase does
	// not pay log(buckets) incremental rehashes. Distinct keys per band
	// range from ~1 (degenerate all-identical data) to numItems (all
	// singletons); numItems/Bands is a middle-ground hint that removes
	// most growth steps without over-reserving Bands× the worst case.
	hint := ix.capHint / ix.params.Bands
	ix.buckets = make([]map[uint64][]int32, ix.params.Bands)
	for b := range ix.buckets {
		ix.buckets[b] = make(map[uint64][]int32, hint)
	}
	ix.keyOrder = make([][]uint64, ix.params.Bands)
	ix.keys = make([]uint64, ix.capHint*ix.params.Bands)
	ix.inserted = make([]bool, ix.capHint)
}

// Params returns the banding configuration.
func (ix *Index) Params() Params { return ix.params }

// Scheme exposes the underlying MinHash scheme (e.g. for similarity
// estimation diagnostics).
func (ix *Index) Scheme() *minhash.Scheme { return ix.scheme }

// NumInserted returns how many items have been inserted. O(1): the
// count is maintained on insert rather than scanned.
func (ix *Index) NumInserted() int { return ix.numInserted }

// bandKeyOf hashes rows [band·r, (band+1)·r) of sig into a salted
// 64-bit bucket key. A free function so parallel signing workers can
// compute keys without touching an Index.
func bandKeyOf(p Params, sig []uint64, band int) uint64 {
	r := p.Rows
	key := uint64(band)*0x9e3779b97f4a7c15 + 0x85ebca6b9d1c5e27
	for _, v := range sig[band*r : (band+1)*r] {
		key = hashfamily.Mix64(key ^ v)
	}
	return key
}

// bandKey hashes rows [band·r, (band+1)·r) of sig into a salted 64-bit
// bucket key.
func (ix *Index) bandKey(sig []uint64, band int) uint64 {
	return bandKeyOf(ix.params, sig, band)
}

// Insert MinHashes the given present-value set and files item under every
// band bucket (Algorithm 2 lines 5–9 applied at index-construction time).
// Inserting the same item twice is an error.
//
// Insert signs into scratch shared with CandidatesOfSet: it must not be
// called concurrently with itself or with CandidatesOfSet. Parallel
// batch construction signs with per-worker scratch via SignAll +
// BuildFrozen (or InsertKeys) instead.
func (ix *Index) Insert(item int32, presentValues []uint64) error {
	return ix.InsertSignature(item, ix.scheme.Sign(presentValues, ix.sigBuf))
}

// InsertSignature files item under the band buckets of a precomputed
// signature of length SignatureLen. It allows other LSH families — e.g.
// the random-hyperplane (SimHash) signatures of the numeric extension —
// to reuse the banding index.
func (ix *Index) InsertSignature(item int32, sig []uint64) error {
	if item < 0 {
		return fmt.Errorf("lsh: negative item ID %d", item)
	}
	if len(sig) != ix.params.SignatureLen() {
		return fmt.Errorf("lsh: signature length %d, want %d", len(sig), ix.params.SignatureLen())
	}
	if ix.frozen != nil {
		return fmt.Errorf("lsh: index is frozen")
	}
	ix.ensureBuild()
	ix.grow(int(item) + 1)
	if ix.inserted[item] {
		return fmt.Errorf("lsh: item %d already inserted", item)
	}
	base := int(item) * ix.params.Bands
	for b := 0; b < ix.params.Bands; b++ {
		ix.file(b, ix.bandKey(sig, b), item, base)
	}
	ix.inserted[item] = true
	ix.numInserted++
	return nil
}

// InsertKeys files item under precomputed band keys — one per band, as
// produced by SignAll — in the map-based build phase. It is the insert
// half of the seeded bootstrap's query/insert interleave once signing
// has been hoisted out and parallelised: the interleave itself stays
// serial (and semantically identical), but each insert is reduced to
// Bands map appends.
func (ix *Index) InsertKeys(item int32, keys []uint64) error {
	if item < 0 {
		return fmt.Errorf("lsh: negative item ID %d", item)
	}
	if len(keys) != ix.params.Bands {
		return fmt.Errorf("lsh: %d band keys, want %d", len(keys), ix.params.Bands)
	}
	if ix.frozen != nil {
		return fmt.Errorf("lsh: index is frozen")
	}
	ix.ensureBuild()
	ix.grow(int(item) + 1)
	if ix.inserted[item] {
		return fmt.Errorf("lsh: item %d already inserted", item)
	}
	base := int(item) * ix.params.Bands
	for b, key := range keys {
		ix.file(b, key, item, base)
	}
	ix.inserted[item] = true
	ix.numInserted++
	return nil
}

// file adds item (as its global ID) to band b's bucket under key,
// recording the key's first appearance in keyOrder (the deterministic
// Freeze ordering) and retaining it in the per-item key store.
//
// Buckets are kept in ascending global-ID order — an index invariant
// that makes candidate enumeration a function of the bucket's
// *membership*, independent of insertion order, and therefore
// identical across shard partitions (a sharded query concatenates or
// merges per-shard buckets in ascending ID order). Ascending insert
// sequences (the full-scan bootstrap, streaming) take the append path
// unchanged; only out-of-order inserts — the seeded bootstrap's k
// seeds-first interleave — pay the insertion-sort shifts, bounded by
// the handful of larger seeds sharing the bucket.
func (ix *Index) file(b int, key uint64, item int32, base int) {
	ix.keys[base+b] = key
	bucket, ok := ix.buckets[b][key]
	if !ok {
		ix.keyOrder[b] = append(ix.keyOrder[b], key)
	}
	bucket = append(bucket, ix.globalID(item))
	for i := len(bucket) - 1; i > 0 && bucket[i-1] > bucket[i]; i-- {
		bucket[i-1], bucket[i] = bucket[i], bucket[i-1]
	}
	ix.buckets[b][key] = bucket
}

// grow extends the per-item storage to hold at least n items, doubling
// capacity so a stream of ascending inserts stays amortised O(1). The
// extra tail entries are simply "not inserted".
func (ix *Index) grow(n int) {
	if n <= len(ix.inserted) {
		return
	}
	newLen := 2 * len(ix.inserted)
	if newLen < n {
		newLen = n
	}
	inserted := make([]bool, newLen)
	copy(inserted, ix.inserted)
	ix.inserted = inserted
	keys := make([]uint64, newLen*ix.params.Bands)
	copy(keys, ix.keys)
	ix.keys = keys
}

// Candidates invokes fn for every item sharing at least one band bucket
// with the previously inserted item. The item itself is reported (it
// trivially collides with itself in every band), and an item sharing
// several bands is reported once per shared band — callers dedupe, which
// the shortlist construction does anyway while mapping items to clusters.
func (ix *Index) Candidates(item int32, fn func(other int32)) {
	if int(item) >= len(ix.inserted) || !ix.inserted[item] {
		return
	}
	if fz := ix.frozen; fz != nil {
		// Frozen fast path: the item's bucket slots were resolved at
		// Freeze time, so each band is two array reads plus a
		// contiguous scan — no hashing, no map probes, no allocation.
		base := int(item) * ix.params.Bands
		for b := 0; b < ix.params.Bands; b++ {
			slot := fz.slots[base+b]
			for _, other := range fz.items[fz.offsets[slot]:fz.offsets[slot+1]] {
				fn(other)
			}
		}
		return
	}
	base := int(item) * ix.params.Bands
	for b := 0; b < ix.params.Bands; b++ {
		for _, other := range ix.buckets[b][ix.keys[base+b]] {
			fn(other)
		}
	}
}

// CandidatesBatch invokes fn once per (item, band) with the whole band
// bucket of the corresponding block item, skipping items that were
// never inserted. Enumeration is band-major across the block — every
// item's band-0 bucket, then every item's band-1 bucket, and so on — so
// each step of the sweep stays inside one band's contiguous region of
// the frozen CSR layout, amortising cache and TLB misses that a
// per-item band sweep pays once per item. For any single pos the
// buckets still arrive in ascending band order with their build-phase
// item order intact, so a per-pos consumer observes exactly the
// sequence Candidates(items[pos]) would deliver; handing whole bucket
// slices to fn additionally removes Candidates' per-colliding-item
// closure dispatch. The bucket slices alias index storage and must not
// be modified.
func (ix *Index) CandidatesBatch(items []int32, fn func(pos int, bucket []int32)) {
	bands := ix.params.Bands
	if fz := ix.frozen; fz != nil {
		for b := 0; b < bands; b++ {
			for pos, item := range items {
				if int(item) >= len(ix.inserted) || !ix.inserted[item] {
					continue
				}
				slot := fz.slots[int(item)*bands+b]
				fn(pos, fz.items[fz.offsets[slot]:fz.offsets[slot+1]])
			}
		}
		return
	}
	for b := 0; b < bands; b++ {
		for pos, item := range items {
			if int(item) >= len(ix.inserted) || !ix.inserted[item] {
				continue
			}
			fn(pos, ix.buckets[b][ix.keys[int(item)*bands+b]])
		}
	}
}

// CandidatesOfSet MinHashes an arbitrary (possibly un-inserted) value set
// and reports colliding items, with the same duplication semantics as
// Candidates. It is used for out-of-index queries such as assigning new
// items in a streaming setting.
//
// CandidatesOfSet signs into scratch shared with Insert: it must not be
// called concurrently with itself or with Insert. Callers that need
// concurrent out-of-index queries sign externally (with private
// scratch) and use CandidatesOfSignature.
func (ix *Index) CandidatesOfSet(presentValues []uint64, fn func(other int32)) {
	ix.CandidatesOfSignature(ix.scheme.Sign(presentValues, ix.sigBuf), fn)
}

// CandidatesOfSignature reports the items colliding with a precomputed
// signature of length SignatureLen, with the same duplication semantics
// as Candidates. It lets callers that sign externally — the streaming
// clusterer signs once per arriving item, via minhash.Memo when
// memoization is on, and reuses the signature for both this query and
// the subsequent InsertSignature — avoid re-hashing the item per use.
func (ix *Index) CandidatesOfSignature(sig []uint64, fn func(other int32)) {
	if len(sig) != ix.params.SignatureLen() {
		panic("lsh: CandidatesOfSignature signature length mismatch")
	}
	if ix.frozen == nil && ix.buckets == nil {
		return // nothing inserted yet (build storage is lazy)
	}
	if fz := ix.frozen; fz != nil {
		for b := 0; b < ix.params.Bands; b++ {
			slot := fz.tables[b].get(ix.bandKey(sig, b))
			if slot < 0 {
				continue
			}
			for _, other := range fz.items[fz.offsets[slot]:fz.offsets[slot+1]] {
				fn(other)
			}
		}
		return
	}
	for b := 0; b < ix.params.Bands; b++ {
		for _, other := range ix.buckets[b][ix.bandKey(sig, b)] {
			fn(other)
		}
	}
}

// CandidatesOfKeys reports the items colliding with precomputed band
// keys — one per band, as produced by SignAll — with the same
// duplication semantics as Candidates. It is the query half of the
// presigned seeded bootstrap (the keys were computed up front, the
// item itself is not yet inserted) and of cross-shard fan-out, where
// non-owning shards are probed by key.
func (ix *Index) CandidatesOfKeys(keys []uint64, fn func(other int32)) {
	if len(keys) != ix.params.Bands {
		panic("lsh: CandidatesOfKeys key count mismatch")
	}
	for b, key := range keys {
		for _, other := range ix.lookupBucket(b, key) {
			fn(other)
		}
	}
}

// itemBandKey returns the band-b key of a previously inserted local
// item, on either layout: the build phase retains per-item keys, the
// frozen layout resolves the item's bucket slot and reads the bucket's
// key. Callers must check isInserted first.
func (ix *Index) itemBandKey(local int32, b int) uint64 {
	if fz := ix.frozen; fz != nil {
		return fz.keys[fz.slots[int(local)*ix.params.Bands+b]]
	}
	return ix.keys[int(local)*ix.params.Bands+b]
}

// lookupBucket returns band b's bucket filed under key (nil when
// absent), on either layout. The returned slice aliases index storage
// and must not be modified; its entries are global item IDs.
func (ix *Index) lookupBucket(b int, key uint64) []int32 {
	if fz := ix.frozen; fz != nil {
		slot := fz.tables[b].get(key)
		if slot < 0 {
			return nil
		}
		return fz.items[fz.offsets[slot]:fz.offsets[slot+1]]
	}
	if ix.buckets == nil {
		return nil // nothing inserted yet (build storage is lazy)
	}
	return ix.buckets[b][key]
}

// Stats summarises bucket occupancy for diagnostics.
type Stats struct {
	Bands          int
	Buckets        int     // non-empty buckets across all bands
	Items          int     // inserted items
	MaxBucketLen   int     // largest bucket
	MeanBucketLen  float64 // mean items per non-empty bucket
	SingletonShare float64 // fraction of buckets holding exactly one item
}

// Stats scans the index and returns occupancy statistics.
func (ix *Index) Stats() Stats {
	st := Stats{Bands: ix.params.Bands, Items: ix.NumInserted()}
	singles, total := 0, 0
	ix.statsInto(&st, &singles, &total)
	if st.Buckets > 0 {
		st.MeanBucketLen = float64(total) / float64(st.Buckets)
		st.SingletonShare = float64(singles) / float64(st.Buckets)
	}
	return st
}

// statsInto folds this index's bucket occupancy into st with the raw
// singleton/total counters, so a Sharded index can aggregate shards
// exactly instead of re-deriving counts from per-shard ratios.
func (ix *Index) statsInto(st *Stats, singles, total *int) {
	bucketLen := func(n int) {
		st.Buckets++
		*total += n
		if n > st.MaxBucketLen {
			st.MaxBucketLen = n
		}
		if n == 1 {
			*singles++
		}
	}
	if fz := ix.frozen; fz != nil {
		for s := 0; s+1 < len(fz.offsets); s++ {
			bucketLen(int(fz.offsets[s+1] - fz.offsets[s]))
		}
	} else {
		for _, band := range ix.buckets {
			for _, items := range band {
				bucketLen(len(items))
			}
		}
	}
}
