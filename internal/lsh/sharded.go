package lsh

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"lshcluster/internal/lsh/persist"
	"lshcluster/internal/minhash"
)

// Sharded is an item-partitioned LSH index: S independent Index shards,
// each with its own band buckets, frozen CSR arrays, key tables and
// reverse view, tied together by a deterministic item→shard
// partitioner. It is the scale-out layout of the banding index — shards
// build in parallel from disjoint slices of the SignAll arena, stay
// individually cache-resident where one monolithic index would not, and
// are independently freezable (and, in a future serving layout,
// evictable or placeable on separate machines).
//
// Partitioning is by *item*, orthogonal to BuildFrozen's per-band
// layout within each shard: a query for one item fans out to every
// shard (an item's colliding neighbours may live anywhere), and the
// planner (Query) merges the shard-local buckets back into the exact
// candidate stream the unsharded index would produce. Two partitioners
// exist:
//
//   - Range (NewSharded, batch clustering): shard s owns the contiguous
//     global items [cuts[s], cuts[s+1]) with cuts = ShardCuts(n, S).
//     Because each shard's buckets hold ascending global IDs from its
//     own range, concatenating per-band buckets in ascending shard
//     order IS the ascending-ID merge — cross-shard queries are
//     order-preserving without any comparison work.
//
//   - Stride (NewShardedStream, streaming): shard = item mod S, for
//     streams whose length is unknown up front. Per-band buckets from
//     different shards interleave in ID space, so the planner runs a
//     real S-way ascending merge to keep enumeration order identical
//     to the single-index oracle.
//
// With one shard (the default), every operation delegates to the plain
// Index with no translation — the S=1 path is bit-identical to the
// unsharded index by construction, and the equivalence tests pin S>1
// to it.
//
// Shard members store *global* item IDs in their buckets (Index's
// affine local→global map), so the hot candidate-enumeration path
// never translates IDs; only insert routing and per-item addressing
// use shard-local IDs.
//
// Concurrency matches Index: construction is single-writer (or
// internally parallel via BuildFrozen); concurrent queries are safe
// once construction is done, with per-caller scratch held by Query.
type Sharded struct {
	params Params
	part   partition
	shards []*Index
	// single aliases shards[0] when there is exactly one shard: the
	// oracle fast path, bit- and code-path-identical to an unsharded
	// Index.
	single *Index
	// buildTimes records the wall time each shard spent constructing its
	// frozen layout (BuildFrozen, or Freeze for the map-built seeded
	// path) — the per-shard bootstrap-build breakdown runstats reports.
	buildTimes []time.Duration
	// mergeNanos accumulates time spent inside cross-shard candidate
	// sweeps (plan + fan-out + merge), at call granularity; zero when
	// S = 1, where no fan-out exists. Atomic: parallel pass workers
	// query concurrently.
	mergeNanos atomic.Int64
	// foreign, when non-nil, holds the materialised cross-shard fan-out
	// arrays, one per owner shard s, row-interleaved so a bucket's
	// foreign spans share a cache line: foreign[s][u·2(S−1)+2ti] and
	// the following entry are the [lo, hi) span in foreign shard t's
	// items array of the bucket matching owner shard s's bucket slot u
	// (same band, same key), lo == hi when shard t has no such bucket;
	// ti skips the owner (ti = t for t < s, t−1 for t > s — the owner
	// resolves itself through its freeze-time slots). See
	// MaterializeForeignSlots in foreign.go.
	foreign      [][]int32
	foreignBytes int64
	// foreignEmpty[s] is a per-slot bitmap over owner shard s's bucket
	// slots: bit u set when every foreign span of slot u is empty — no
	// other shard has a bucket for that (band, key). Set alongside
	// foreign (MaterializeForeignSlots; ~1/64th of its size, not
	// counted against the budget). The reordered sweeps test the bit
	// before touching the span row: a reordered build makes almost
	// every bucket single-shard (collision components are contiguous),
	// so the common case collapses to one bit read and a direct owner
	// emission. Unreordered paths skip the bitmap — their hit rate is
	// too low to pay for the extra branch.
	foreignEmpty [][]uint64
	// probeOps/directOps count cross-shard bucket resolutions by path —
	// key-table probe versus foreign-slot load — for the runstats
	// fan-out-mode report. Atomic for the same reason as mergeNanos.
	probeOps  atomic.Int64
	directOps atomic.Int64
	// res, when non-nil, routes every cross-shard sweep through the
	// fault-tolerant backend layer (AttachBackends): deadline-bounded,
	// retried, optionally hedged calls with graceful degradation. Nil
	// is the direct in-memory path.
	res *resilience
	// reorder requests locality-preserving item reordering for the next
	// BuildFrozen (SetReorder); perm/inv are the resulting permutation
	// pair — perm[original] = internal, inv[internal] = original — nil
	// until a reordered build ran. See reorder.go.
	reorder    bool
	perm       []int32
	inv        []int32
	reorderDur time.Duration
	// localCands/foreignCands count shortlist candidates the frozen
	// range fan-out served from the owning shard versus foreign shards
	// (the shard_local_frac report). Atomic like mergeNanos.
	localCands   atomic.Int64
	foreignCands atomic.Int64
	// persistFiles/persistBytes/resi are set by OpenSharded: the
	// per-shard backing files the frozen slices alias (mmap or heap
	// copy), the total mapped bytes, and — under a memory budget — the
	// shard residency manager (see persist.go, residency.go). All nil/0
	// for freshly built indexes.
	persistFiles []*persist.File
	persistBytes int64
	resi         *residency
}

// partition routes global item IDs to (shard, local) pairs.
type partition struct {
	// stride selects round-robin routing (shard = item mod s); false is
	// contiguous ranges over [0, n).
	stride bool
	n      int
	s      int
	cuts   []int32 // range mode: len s+1, shard t owns [cuts[t], cuts[t+1])
}

// locate resolves a global item ID to its owning shard and shard-local
// ID. ok is false for negative IDs and, in range mode, IDs at or past
// the partitioned range.
func (p *partition) locate(global int32) (shard int, local int32, ok bool) {
	if global < 0 {
		return 0, 0, false
	}
	if p.stride {
		return int(global) % p.s, global / int32(p.s), true
	}
	if int(global) >= p.n {
		return 0, 0, false
	}
	// Largest t with t·n/s ≤ global, the closed form of a cuts search.
	t := int(((int64(global)+1)*int64(p.s) - 1) / int64(p.n))
	return t, global - p.cuts[t], true
}

// ShardCuts returns the deterministic item partition of a range-sharded
// index: shard s owns global items [cuts[s], cuts[s+1]) with
// cuts[s] = s·n/S. The cuts are a function of n and S alone —
// independent of workers, insertion order or hardware — which is the
// partitioner contract the frozen-array determinism tests pin: the same
// (n, S) always yields the same shard layout.
func ShardCuts(n, shards int) []int32 {
	cuts := make([]int32, shards+1)
	for s := 0; s <= shards; s++ {
		cuts[s] = int32(s * n / shards)
	}
	return cuts
}

// NewSharded creates a range-partitioned index over numItems global
// items, split into the given number of shards (values < 2, or more
// shards than items, collapse to the single-shard oracle). All shards
// share one deterministic signing scheme seeded with seed, so
// signatures — and therefore band keys — are identical to the
// unsharded index's.
func NewSharded(p Params, seed uint64, numItems, shards int) (*Sharded, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if numItems < 0 {
		numItems = 0
	}
	if shards > numItems {
		shards = numItems
	}
	if shards < 1 {
		shards = 1
	}
	cuts := ShardCuts(numItems, shards)
	sh := &Sharded{
		params: p,
		part:   partition{n: numItems, s: shards, cuts: cuts},
	}
	if shards == 1 {
		ix, err := NewIndex(p, seed, numItems)
		if err != nil {
			return nil, err
		}
		sh.shards = []*Index{ix}
		sh.single = ix
		return sh, nil
	}
	scheme := minhash.NewScheme(p.SignatureLen(), seed)
	sh.shards = make([]*Index, shards)
	for s := 0; s < shards; s++ {
		sh.shards[s] = newShardIndex(p, scheme, int(cuts[s+1]-cuts[s]), cuts[s], 1)
	}
	return sh, nil
}

// NewShardedStream creates a stride-partitioned index for streaming
// inserts, where the item count is unknown up front: item i routes to
// shard i mod S, so every shard's map builder grows evenly and no
// single map serialises the stream. capHint is the expected total item
// count (0 for unknown).
func NewShardedStream(p Params, seed uint64, shards, capHint int) (*Sharded, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if shards < 1 {
		shards = 1
	}
	if capHint < 0 {
		capHint = 0
	}
	if shards == 1 {
		ix, err := NewIndex(p, seed, capHint)
		if err != nil {
			return nil, err
		}
		return &Sharded{
			params: p,
			part:   partition{n: capHint, s: 1, cuts: []int32{0, int32(capHint)}},
			shards: []*Index{ix},
			single: ix,
		}, nil
	}
	scheme := minhash.NewScheme(p.SignatureLen(), seed)
	sh := &Sharded{
		params: p,
		part:   partition{stride: true, s: shards},
		shards: make([]*Index, shards),
	}
	for s := 0; s < shards; s++ {
		sh.shards[s] = newShardIndex(p, scheme, (capHint+shards-1)/shards, int32(s), int32(shards))
	}
	return sh, nil
}

// Params returns the banding configuration.
func (sh *Sharded) Params() Params { return sh.params }

// Scheme exposes the signing scheme shared by every shard.
func (sh *Sharded) Scheme() *minhash.Scheme { return sh.shards[0].Scheme() }

// NumShards returns S.
func (sh *Sharded) NumShards() int { return len(sh.shards) }

// NumInserted sums the inserted-item counts across shards.
func (sh *Sharded) NumInserted() int {
	n := 0
	for _, ix := range sh.shards {
		n += ix.NumInserted()
	}
	return n
}

// Frozen reports whether every shard has been compacted.
func (sh *Sharded) Frozen() bool {
	for _, ix := range sh.shards {
		if !ix.Frozen() {
			return false
		}
	}
	return true
}

// BuildTimes returns the per-shard frozen-construction durations
// (nil until BuildFrozen or Freeze ran). The slice is owned by the
// index; callers must not modify it.
func (sh *Sharded) BuildTimes() []time.Duration { return sh.buildTimes }

// MergeTime returns the cumulative wall time spent inside cross-shard
// candidate sweeps (always zero with a single shard). Per-item query
// paths flush their samples in small batches, so a handful of recent
// samples may not be included yet (see Query.addMergeNanos).
func (sh *Sharded) MergeTime() time.Duration {
	return time.Duration(sh.mergeNanos.Load())
}

// Stats aggregates bucket occupancy across all shards.
func (sh *Sharded) Stats() Stats {
	st := Stats{Bands: sh.params.Bands, Items: sh.NumInserted()}
	singles, total := 0, 0
	for _, ix := range sh.shards {
		ix.statsInto(&st, &singles, &total)
	}
	if st.Buckets > 0 {
		st.MeanBucketLen = float64(total) / float64(st.Buckets)
		st.SingletonShare = float64(singles) / float64(st.Buckets)
	}
	return st
}

// ItemKeysOf writes the band keys (len Bands) of an inserted global
// item into keys, reporting false for unknown or uninserted items.
// Read-only: safe for concurrent use once construction is done — the
// key-resolution step a serving client runs before fanning a query out
// to shard backends.
func (sh *Sharded) ItemKeysOf(global int32, keys []uint64) bool {
	if perm := sh.perm; perm != nil {
		if global < 0 || int(global) >= len(perm) {
			return false
		}
		global = perm[global]
	}
	s, local, ok := sh.part.locate(global)
	if !ok || !sh.shards[s].isInserted(local) {
		return false
	}
	for b := 0; b < sh.params.Bands; b++ {
		keys[b] = sh.shards[s].itemBandKey(local, b)
	}
	return true
}

// route resolves a global item for an insert, rejecting IDs outside
// the partition.
func (sh *Sharded) route(global int32) (*Index, int32, error) {
	s, local, ok := sh.part.locate(global)
	if !ok {
		return nil, 0, fmt.Errorf("lsh: item %d outside the sharded range [0, %d)", global, sh.part.n)
	}
	return sh.shards[s], local, nil
}

// Insert signs the present-value set and files the global item in its
// owning shard. Like Index.Insert it shares signing scratch per shard
// and must not run concurrently.
func (sh *Sharded) Insert(global int32, presentValues []uint64) error {
	if sh.single != nil {
		return sh.single.Insert(global, presentValues)
	}
	ix, local, err := sh.route(global)
	if err != nil {
		return err
	}
	return ix.Insert(local, presentValues)
}

// InsertSignature files the global item under the band buckets of a
// precomputed signature, in its owning shard.
func (sh *Sharded) InsertSignature(global int32, sig []uint64) error {
	if sh.single != nil {
		return sh.single.InsertSignature(global, sig)
	}
	ix, local, err := sh.route(global)
	if err != nil {
		return err
	}
	return ix.InsertSignature(local, sig)
}

// InsertKeys files the global item under precomputed band keys (one
// per band, as produced by SignAll), in its owning shard — the insert
// half of the sharded seeded bootstrap's query/insert interleave.
func (sh *Sharded) InsertKeys(global int32, keys []uint64) error {
	if sh.single != nil {
		return sh.single.InsertKeys(global, keys)
	}
	ix, local, err := sh.route(global)
	if err != nil {
		return err
	}
	return ix.InsertKeys(local, keys)
}

// BuildFrozen constructs every shard's frozen layout directly from the
// flat SignAll arena (keys[item·Bands+band] for global items [0, n)).
// The range partitioner makes routing free: shard s's slice of the
// arena is the contiguous keys[cuts[s]·Bands : cuts[s+1]·Bands], so no
// per-item scatter ever runs. Shards build concurrently — each on its
// own goroutine with its share of the worker budget parallelising
// across bands — and each shard's arrays are byte-identical to what a
// standalone index over the same item range would build (the shard
// determinism tests pin this). Per-shard wall times are recorded for
// the bootstrap-build breakdown.
//
// When SetReorder(true) was called, the arena is first permuted into
// locality order (items grouped by shared buckets, see reorder.go) and
// the shards are range-cut over the permuted order; ReorderMap then
// reports the permutation and candidate enumeration emits internal
// IDs. Results observed through the translated boundaries are
// bit-identical either way.
func (sh *Sharded) BuildFrozen(keys []uint64, n, workers int) error {
	if workers < 1 {
		workers = 1
	}
	bands := sh.params.Bands
	if !sh.reorder || sh.part.stride || n < 2 || len(keys) != n*bands {
		// Direct build; mismatched arguments also land here so the
		// direct path surfaces its usual validation errors.
		return sh.buildFrozenDirect(keys, n, workers)
	}
	start := time.Now()
	perm, inv := deriveReorder(keys, n, bands)
	permuted := permuteArena(keys, inv, bands, workers)
	prep := time.Since(start)
	if err := sh.buildFrozenDirect(permuted, n, workers); err != nil {
		return err
	}
	sh.perm, sh.inv = perm, inv
	start = time.Now()
	sh.reorderBucketItems(workers)
	sh.reorderDur = prep + time.Since(start)
	return nil
}

// buildFrozenDirect is the unreordered shard construction: each shard
// builds from its contiguous arena slice in identity order.
func (sh *Sharded) buildFrozenDirect(keys []uint64, n, workers int) error {
	if sh.single != nil {
		start := time.Now()
		err := sh.single.BuildFrozen(keys, n, workers)
		if err == nil {
			sh.buildTimes = []time.Duration{time.Since(start)}
		}
		return err
	}
	if sh.part.stride {
		return fmt.Errorf("lsh: BuildFrozen on a stride-partitioned (streaming) index")
	}
	if n != sh.part.n {
		return fmt.Errorf("lsh: BuildFrozen over %d items, index partitioned over %d", n, sh.part.n)
	}
	bands := sh.params.Bands
	if len(keys) != n*bands {
		return fmt.Errorf("lsh: %d band keys for %d items × %d bands", len(keys), n, bands)
	}
	nShards := len(sh.shards)
	shardConc := workers
	if shardConc > nShards {
		shardConc = nShards
	}
	bandWorkers := workers / shardConc
	if bandWorkers < 1 {
		bandWorkers = 1
	}
	errs := make([]error, nShards)
	times := make([]time.Duration, nShards)
	var wg sync.WaitGroup
	for g := 0; g < shardConc; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for s := g; s < nShards; s += shardConc {
				lo, hi := int(sh.part.cuts[s]), int(sh.part.cuts[s+1])
				start := time.Now()
				errs[s] = sh.shards[s].BuildFrozen(keys[lo*bands:hi*bands], hi-lo, bandWorkers)
				times[s] = time.Since(start)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	sh.buildTimes = times
	return nil
}

// Freeze compacts every not-yet-frozen shard's map buckets into the
// frozen CSR layout (the seeded bootstrap's path; idempotent),
// recording per-shard compaction times when this call did the work.
func (sh *Sharded) Freeze() {
	times := make([]time.Duration, len(sh.shards))
	froze := false
	for s, ix := range sh.shards {
		if ix.Frozen() {
			continue
		}
		start := time.Now()
		ix.Freeze()
		times[s] = time.Since(start)
		froze = true
	}
	if froze && sh.buildTimes == nil {
		sh.buildTimes = times
	}
}

// NewReverse returns a reverse-collision view spanning every shard, or
// nil when any shard is not frozen.
func (sh *Sharded) NewReverse() *ShardedReverse {
	revs := make([]*Reverse, len(sh.shards))
	for s, ix := range sh.shards {
		r := ix.NewReverse()
		if r == nil {
			return nil
		}
		revs[s] = r
	}
	return &ShardedReverse{sh: sh, revs: revs}
}

// ShardedReverse is the cross-shard reverse-collision view: sources
// mark their buckets in every shard (the owning shard through its
// resolved slots, the others by key probe), and Emit enumerates hot
// buckets shard by shard. Like Reverse it owns private scratch and is
// not safe for concurrent use; emitted IDs are global. Enumeration
// order differs from the single-index view (shard-major instead of
// source-marking order), which callers must not rely on — the driver's
// active-set expansion dedupes into flags, making it order-blind.
type ShardedReverse struct {
	sh   *Sharded
	revs []*Reverse
	// degraded latches backend failures during source marking (see
	// Degraded in resilient.go); emitted delimits the mark/Emit cycles
	// the latch resets across.
	degraded bool
	emitted  bool
}

// AddSource marks every bucket the global source item occupies, across
// all shards. Uninserted items are ignored. Sources are original IDs;
// a reordered index translates them to internal space on entry.
func (r *ShardedReverse) AddSource(global int32) {
	sh := r.sh
	if sh.res != nil {
		r.addSourceBackend(global)
		return
	}
	if perm := sh.perm; perm != nil {
		if global < 0 || int(global) >= len(perm) {
			return
		}
		global = perm[global]
	}
	if sh.single != nil {
		r.revs[0].AddSource(global)
		return
	}
	s, local, ok := sh.part.locate(global)
	if !ok || !sh.shards[s].isInserted(local) {
		return
	}
	own := sh.shards[s].frozen
	bands := sh.params.Bands
	base := int(local) * bands
	// The reverse view marks buckets by slot, which the foreign span
	// arrays no longer carry — so sources resolve foreign buckets by
	// key probe. The emptiness bitmap still applies: a set bit means no
	// foreign shard has the key, so all S−1 probes would miss and the
	// fan-out can be skipped outright (on a reordered index that is
	// nearly every bucket). Probing is otherwise acceptable: sources
	// are the changed clusters of a pass (≤ k), not the item stream.
	for b := 0; b < bands; b++ {
		slot := own.slots[base+b]
		r.revs[s].markSlot(slot)
		if sh.foreignEmpty != nil && sh.foreignEmpty[s][slot>>6]&(1<<(slot&63)) != 0 {
			continue
		}
		key := own.keys[slot]
		for t, ix := range sh.shards {
			if t == s {
				continue
			}
			if other := ix.frozen.tables[b].get(key); other >= 0 {
				r.revs[t].markSlot(other)
			}
		}
	}
}

// Emit invokes fn for every item in a hot bucket of any shard, each
// bucket scanned once; fn returning false stops the enumeration early.
// All marks in all shards are reset before Emit returns. Emitted IDs
// are original: a reordered index translates its internal bucket
// contents back through inv — enumeration order is unspecified here
// anyway (callers dedupe into flags), so the translation is free to
// ride the shard-major scan.
func (r *ShardedReverse) Emit(fn func(item int32) bool) {
	r.emitted = true
	if inv := r.sh.inv; inv != nil {
		orig := fn
		fn = func(it int32) bool { return orig(inv[it]) }
	}
	if r.sh.single != nil {
		r.revs[0].Emit(fn)
		return
	}
	stopped := false
	for _, rv := range r.revs {
		rv.Emit(func(it int32) bool {
			if stopped {
				return false
			}
			if !fn(it) {
				stopped = true
				return false
			}
			return true
		})
	}
}
