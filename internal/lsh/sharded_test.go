package lsh

import (
	"fmt"
	"reflect"
	"testing"
)

// signKeysFor computes the SignAll arena for sets through a scheme-
// compatible signer (what the accelerators' SignAll does, minus
// dataset plumbing).
func signKeysFor(sh *Sharded, sets [][]uint64, workers int) []uint64 {
	scheme := sh.Scheme()
	return SignAll(sh.Params(), len(sets), workers, func() SignFunc {
		return func(item int32, sig []uint64) {
			scheme.Sign(sets[item], sig)
		}
	}, nil)
}

// singleReference builds the unsharded oracle: one Index with every
// set inserted in ascending order.
func singleReference(t *testing.T, p Params, seed uint64, sets [][]uint64, freeze bool) *Index {
	t.Helper()
	ix := mustIndex(t, p, seed, len(sets))
	for i, s := range sets {
		if err := ix.Insert(int32(i), s); err != nil {
			t.Fatal(err)
		}
	}
	if freeze {
		ix.Freeze()
	}
	return ix
}

// TestShardCuts pins the partitioner contract: cuts are monotone, cover
// [0, n) exactly, depend only on (n, S), and locate agrees with them
// for every item.
func TestShardCuts(t *testing.T) {
	for _, n := range []int{0, 1, 5, 17, 100, 1001} {
		for _, s := range []int{1, 2, 3, 4, 7} {
			if s > n && n > 0 {
				continue
			}
			cuts := ShardCuts(n, s)
			if len(cuts) != s+1 || cuts[0] != 0 || cuts[s] != int32(n) {
				t.Fatalf("n=%d s=%d: cuts %v", n, s, cuts)
			}
			if !reflect.DeepEqual(cuts, ShardCuts(n, s)) {
				t.Fatalf("n=%d s=%d: cuts not deterministic", n, s)
			}
			part := partition{n: n, s: s, cuts: cuts}
			for i := 0; i < n; i++ {
				shard, local, ok := part.locate(int32(i))
				if !ok {
					t.Fatalf("n=%d s=%d: item %d not located", n, s, i)
				}
				if int32(i) < cuts[shard] || int32(i) >= cuts[shard+1] {
					t.Fatalf("n=%d s=%d: item %d located in shard %d owning [%d,%d)",
						n, s, i, shard, cuts[shard], cuts[shard+1])
				}
				if local != int32(i)-cuts[shard] {
					t.Fatalf("n=%d s=%d: item %d local %d, want %d", n, s, i, local, int32(i)-cuts[shard])
				}
			}
			if _, _, ok := part.locate(int32(n)); ok && n > 0 {
				t.Fatalf("n=%d s=%d: out-of-range item located", n, s)
			}
			if _, _, ok := part.locate(-1); ok {
				t.Fatalf("n=%d s=%d: negative item located", n, s)
			}
		}
	}
}

// TestShardedBuildDeterministic pins per-shard frozen-array
// determinism: for a fixed (n, S) and key arena, every shard's frozen
// arrays are byte-identical whether the sharded index was built
// directly from the arena (BuildFrozen, any worker count) or through
// the map phase (InsertKeys in ascending order, then Freeze) — the
// shard-level analogue of TestBuildFrozenMatchesInsertFreeze.
func TestShardedBuildDeterministic(t *testing.T) {
	const n = 230
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 13)
	for _, shards := range []int{2, 3, 4} {
		ref, err := NewSharded(p, 7, n, shards)
		if err != nil {
			t.Fatal(err)
		}
		keys := signKeysFor(ref, sets, 2)
		for i := 0; i < n; i++ {
			if err := ref.InsertKeys(int32(i), keys[i*p.Bands:(i+1)*p.Bands]); err != nil {
				t.Fatal(err)
			}
		}
		ref.Freeze()
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("s=%d/w=%d", shards, workers), func(t *testing.T) {
				sh, err := NewSharded(p, 7, n, shards)
				if err != nil {
					t.Fatal(err)
				}
				if err := sh.BuildFrozen(keys, n, workers); err != nil {
					t.Fatal(err)
				}
				if sh.NumShards() != shards {
					t.Fatalf("NumShards = %d, want %d", sh.NumShards(), shards)
				}
				if got := sh.NumInserted(); got != n {
					t.Fatalf("NumInserted = %d, want %d", got, n)
				}
				if !sh.Frozen() {
					t.Fatal("not frozen after BuildFrozen")
				}
				if bt := sh.BuildTimes(); len(bt) != shards {
					t.Fatalf("BuildTimes has %d entries, want %d", len(bt), shards)
				}
				for s := 0; s < shards; s++ {
					assertFrozenIdentical(t, ref.shards[s], sh.shards[s])
				}
			})
		}
	}
}

// collectQueryCandidates drains Query.Candidates for one item.
func collectQueryCandidates(q *Query, item int32) []int32 {
	var out []int32
	q.Candidates(item, func(other int32) { out = append(out, other) })
	return out
}

// TestShardedQueriesMatchSingle is the planner's merge-semantics
// oracle: for every shard count, every query path — per-item, batched
// block sweep, by presigned keys, by signature — must reproduce the
// single-index candidate stream exactly (same items, same enumeration
// order), on both the map-built and the frozen layout.
func TestShardedQueriesMatchSingle(t *testing.T) {
	const n = 260
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 21)
	probe := []uint64{100, 101, 102, 103, 104}
	for _, frozen := range []bool{false, true} {
		ref := singleReference(t, p, 7, sets, frozen)
		refKeys := signKeysFor(&Sharded{params: p, shards: []*Index{ref}, single: ref}, sets, 1)
		for _, shards := range []int{1, 2, 3, 4} {
			t.Run(fmt.Sprintf("frozen=%v/s=%d", frozen, shards), func(t *testing.T) {
				sh, err := NewSharded(p, 7, n, shards)
				if err != nil {
					t.Fatal(err)
				}
				if frozen {
					if err := sh.BuildFrozen(refKeys, n, 2); err != nil {
						t.Fatal(err)
					}
				} else {
					for i, s := range sets {
						if err := sh.Insert(int32(i), s); err != nil {
							t.Fatal(err)
						}
					}
				}
				q := sh.NewQuery()
				for i := 0; i < n; i++ {
					want := collectCandidates(ref, int32(i))
					got := collectQueryCandidates(q, int32(i))
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("item %d candidates: want %v, got %v", i, want, got)
					}
				}
				// Unknown items are silent, not panics.
				if got := collectQueryCandidates(q, int32(n+5)); got != nil {
					t.Fatalf("out-of-range item returned %v", got)
				}
				// Batched block sweep: concatenated buckets per position
				// must reproduce per-item enumeration.
				for _, blockLen := range []int{1, 7, 64} {
					for lo := 0; lo < n; lo += blockLen {
						hi := min(lo+blockLen, n)
						blk := make([]int32, 0, hi-lo)
						for i := lo; i < hi; i++ {
							blk = append(blk, int32(i))
						}
						got := make([][]int32, len(blk))
						q.CandidatesBatch(blk, func(pos int, bucket []int32) {
							got[pos] = append(got[pos], bucket...)
						})
						for pos, item := range blk {
							want := collectCandidates(ref, item)
							if !reflect.DeepEqual(want, got[pos]) {
								t.Fatalf("block item %d: want %v, got %v", item, want, got[pos])
							}
						}
					}
				}
				// Out-of-index queries: by signature and by band keys.
				sig := make([]uint64, p.SignatureLen())
				sh.Scheme().Sign(probe, sig)
				var wantSig, gotSig []int32
				ref.CandidatesOfSignature(sig, func(o int32) { wantSig = append(wantSig, o) })
				q.CandidatesOfSignature(sig, func(o int32) { gotSig = append(gotSig, o) })
				if !reflect.DeepEqual(wantSig, gotSig) {
					t.Fatalf("of-signature: want %v, got %v", wantSig, gotSig)
				}
				keys := refKeys[:p.Bands] // item 0's keys
				var wantK, gotK []int32
				ref.CandidatesOfKeys(keys, func(o int32) { wantK = append(wantK, o) })
				q.CandidatesOfKeys(keys, func(o int32) { gotK = append(gotK, o) })
				if !reflect.DeepEqual(wantK, gotK) {
					t.Fatalf("of-keys: want %v, got %v", wantK, gotK)
				}
				if shards > 1 && frozen && sh.MergeTime() <= 0 {
					t.Fatal("cross-shard queries recorded no merge time")
				}
			})
		}
	}
}

// TestShardedStreamMatchesSingle covers the stride partitioner: a
// streaming (map-phase) sharded index must answer signature queries
// with exactly the single-index candidate stream — the S-way ascending
// merge at work — and route inserts without collision.
func TestShardedStreamMatchesSingle(t *testing.T) {
	const n = 240
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 33)
	ref := singleReference(t, p, 7, sets, false)
	for _, shards := range []int{1, 2, 3, 5} {
		t.Run(fmt.Sprintf("s=%d", shards), func(t *testing.T) {
			sh, err := NewShardedStream(p, 7, shards, n)
			if err != nil {
				t.Fatal(err)
			}
			sig := make([]uint64, p.SignatureLen())
			q := sh.NewQuery()
			for i, set := range sets {
				// Query before insert (the stream's order), comparing
				// against the reference restricted to items < i is
				// awkward; instead insert everything first below.
				sh.Scheme().Sign(set, sig)
				if err := sh.InsertSignature(int32(i), sig); err != nil {
					t.Fatal(err)
				}
			}
			if got := sh.NumInserted(); got != n {
				t.Fatalf("NumInserted = %d, want %d", got, n)
			}
			for i, set := range sets {
				sh.Scheme().Sign(set, sig)
				var want, got []int32
				ref.CandidatesOfSignature(sig, func(o int32) { want = append(want, o) })
				q.CandidatesOfSignature(sig, func(o int32) { got = append(got, o) })
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("item %d of-signature: want %v, got %v", i, want, got)
				}
			}
			// Stats aggregate over shard-local buckets: a key spanning
			// shards is several (smaller) buckets, so the bucket count
			// can only grow, while the item total is invariant.
			ws, rs := ref.Stats(), sh.Stats()
			if rs.Items != ws.Items || rs.Bands != ws.Bands {
				t.Fatalf("stats: single %+v, sharded %+v", ws, rs)
			}
			if rs.Buckets < ws.Buckets {
				t.Fatalf("sharded bucket count %d below single %d", rs.Buckets, ws.Buckets)
			}
			wTotal := ws.MeanBucketLen * float64(ws.Buckets)
			rTotal := rs.MeanBucketLen * float64(rs.Buckets)
			if wTotal != rTotal {
				t.Fatalf("bucketed item total: single %v, sharded %v", wTotal, rTotal)
			}
		})
	}
}

// TestShardedReverseMatchesSingle checks the cross-shard reverse view
// emits exactly the single-index collision set for any source set
// (order is not part of the contract; the consumer dedupes).
func TestShardedReverseMatchesSingle(t *testing.T) {
	const n = 220
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 17)
	ref := singleReference(t, p, 7, sets, true)
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("s=%d", shards), func(t *testing.T) {
			sh, err := NewSharded(p, 7, n, shards)
			if err != nil {
				t.Fatal(err)
			}
			for i, s := range sets {
				if err := sh.Insert(int32(i), s); err != nil {
					t.Fatal(err)
				}
			}
			sh.Freeze()
			rv := sh.NewReverse()
			if rv == nil {
				t.Fatal("NewReverse returned nil on a frozen sharded index")
			}
			refRv := ref.NewReverse()
			for _, sources := range [][]int32{{0}, {3, 77, 150}, {n - 1, 0, 42}} {
				want := map[int32]bool{}
				got := map[int32]bool{}
				for _, s := range sources {
					refRv.AddSource(s)
					rv.AddSource(s)
				}
				refRv.Emit(func(it int32) bool { want[it] = true; return true })
				rv.Emit(func(it int32) bool { got[it] = true; return true })
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("sources %v: want %d items, got %d (sets differ)", sources, len(want), len(got))
				}
			}
			// Early stop still resets all marks for reuse.
			rv.AddSource(5)
			rv.Emit(func(int32) bool { return false })
			count := 0
			rv.AddSource(5)
			rv.Emit(func(int32) bool { count++; return true })
			if count == 0 {
				t.Fatal("reverse view not reusable after an early-stopped Emit")
			}
		})
	}
}

// TestShardedInsertErrors pins routing validation: items outside the
// partitioned range are rejected, duplicates are rejected by the
// owning shard, and BuildFrozen enforces the arena shape.
func TestShardedInsertErrors(t *testing.T) {
	p := Params{Bands: 2, Rows: 2}
	sets := testSets(8, 3)
	sh, err := NewSharded(p, 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh.Insert(8, sets[0]); err == nil {
		t.Fatal("out-of-range insert accepted")
	}
	if err := sh.Insert(-1, sets[0]); err == nil {
		t.Fatal("negative insert accepted")
	}
	if err := sh.Insert(3, sets[3]); err != nil {
		t.Fatal(err)
	}
	if err := sh.Insert(3, sets[3]); err == nil {
		t.Fatal("duplicate insert accepted")
	}
	sh2, err := NewSharded(p, 1, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := sh2.BuildFrozen(make([]uint64, 3), 8, 1); err == nil {
		t.Fatal("wrong arena length accepted")
	}
	if err := sh2.BuildFrozen(make([]uint64, 4*p.Bands), 4, 1); err == nil {
		t.Fatal("wrong item count accepted")
	}
	st, err := NewShardedStream(p, 1, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.BuildFrozen(make([]uint64, 0), 0, 1); err == nil {
		t.Fatal("BuildFrozen on a stride-partitioned index accepted")
	}
}
