package lsh

import (
	"reflect"
	"testing"

	"lshcluster/internal/minhash"
)

// byteAt cycles through the fuzz payload, defaulting to 0 on an empty
// one, so derived inputs are total functions of the corpus entry.
func byteAt(data []byte, i int) byte {
	if len(data) == 0 {
		return 0
	}
	return data[i%len(data)]
}

// fuzzSets derives n value sets from raw fuzz bytes, shaped like
// testSets (small overlapping universes so bucket collisions occur)
// but with sizes, bases and values all under the fuzzer's control.
func fuzzSets(n int, data []byte) [][]uint64 {
	sets := make([][]uint64, n)
	for i := range sets {
		size := 1 + int(byteAt(data, i*31))%12
		base := uint64(byteAt(data, i*7+1)%8) * 100
		set := make([]uint64, size)
		for j := range set {
			set[j] = base + uint64(byteAt(data, i*13+j*3+2)%40)
		}
		sets[i] = set
	}
	return sets
}

// setSignerFor adapts sets to a SignAll signer through the index
// scheme, as the accelerators do.
func setSignerFor(scheme *minhash.Scheme, sets [][]uint64) func() SignFunc {
	return func() SignFunc {
		return func(item int32, sig []uint64) {
			scheme.Sign(sets[item], sig)
		}
	}
}

// FuzzBuildFrozenIdentity fuzzes the bootstrap's layout identity: for
// any banding shape, item count, scheme seed, signed value sets and
// worker count, building the frozen index directly from the presigned
// key arena (BuildFrozen) must reproduce, byte for byte, the frozen
// arrays of inserting every item in ascending order and freezing.
func FuzzBuildFrozenIdentity(f *testing.F) {
	f.Add(uint8(4), uint8(2), uint16(17), uint64(7), []byte("seed-corpus"))
	f.Add(uint8(1), uint8(1), uint16(1), uint64(0), []byte{})
	f.Add(uint8(20), uint8(5), uint16(120), uint64(42), []byte{0xff, 0x00, 0x7f})
	f.Add(uint8(8), uint8(4), uint16(100), uint64(3), []byte("collide collide"))
	f.Fuzz(func(t *testing.T, bands, rows uint8, n uint16, seed uint64, data []byte) {
		p := Params{Bands: 1 + int(bands)%12, Rows: 1 + int(rows)%6}
		nn := 1 + int(n)%150
		workers := 1 + int(byteAt(data, 0))%4
		sets := fuzzSets(nn, data)

		ref, err := NewIndex(p, seed, nn)
		if err != nil {
			t.Fatal(err)
		}
		for i, s := range sets {
			if err := ref.Insert(int32(i), s); err != nil {
				t.Fatal(err)
			}
		}
		ref.Freeze()

		ix, err := NewIndex(p, seed, nn)
		if err != nil {
			t.Fatal(err)
		}
		keys := SignAll(p, nn, workers, setSignerFor(ix.Scheme(), sets), nil)
		if err := ix.BuildFrozen(keys, nn, workers); err != nil {
			t.Fatal(err)
		}
		assertFrozenIdentical(t, ref, ix)
	})
}

// FuzzForeignSlotSpans fuzzes the cross-shard fan-out identity: with
// the foreign-slot spans materialised, every per-item query and every
// batched block sweep must reproduce the key-probe oracle's candidate
// stream exactly — same items, same order — for any shard count,
// banding shape and signed value sets.
func FuzzForeignSlotSpans(f *testing.F) {
	f.Add(uint8(2), uint8(6), uint8(3), uint16(60), uint64(21), []byte("spans"))
	f.Add(uint8(3), uint8(4), uint8(2), uint16(90), uint64(7), []byte{1, 2, 3, 4})
	f.Add(uint8(4), uint8(1), uint8(1), uint16(12), uint64(0), []byte{})
	f.Fuzz(func(t *testing.T, shards, bands, rows uint8, n uint16, seed uint64, data []byte) {
		S := 2 + int(shards)%3
		p := Params{Bands: 1 + int(bands)%8, Rows: 1 + int(rows)%4}
		nn := 2*S + int(n)%120
		sets := fuzzSets(nn, data)

		build := func() *Sharded {
			sh, err := NewSharded(p, seed, nn, S)
			if err != nil {
				t.Fatal(err)
			}
			keys := signKeysFor(sh, sets, 2)
			if err := sh.BuildFrozen(keys, nn, 2); err != nil {
				t.Fatal(err)
			}
			return sh
		}
		probe := build()
		fast := build()
		if fast.MaterializeForeignSlots(-1) <= 0 {
			t.Fatal("MaterializeForeignSlots declined with an unlimited budget")
		}

		pq, fq := probe.NewQuery(), fast.NewQuery()
		for i := 0; i < nn; i++ {
			want := collectQueryCandidates(pq, int32(i))
			got := collectQueryCandidates(fq, int32(i))
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("item %d candidates: probe %v, foreign %v", i, want, got)
			}
		}

		blockLen := 1 + int(byteAt(data, 1))%9
		for lo := 0; lo < nn; lo += blockLen {
			hi := min(lo+blockLen, nn)
			blk := make([]int32, 0, hi-lo)
			for i := lo; i < hi; i++ {
				blk = append(blk, int32(i))
			}
			want := make([][]int32, len(blk))
			got := make([][]int32, len(blk))
			pq.CandidatesBatch(blk, func(pos int, bucket []int32) {
				want[pos] = append(want[pos], bucket...)
			})
			fq.CandidatesBatch(blk, func(pos int, bucket []int32) {
				got[pos] = append(got[pos], bucket...)
			})
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("block [%d,%d): probe and foreign batch sweeps differ", lo, hi)
			}
		}
	})
}
