package lsh

import (
	"math"
	"math/rand"
	"testing"
)

func mustIndex(t *testing.T, p Params, seed uint64, n int) *Index {
	t.Helper()
	ix, err := NewIndex(p, seed, n)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func collect(ix *Index, item int32) map[int32]int {
	got := map[int32]int{}
	ix.Candidates(item, func(o int32) { got[o]++ })
	return got
}

func TestIndexSelfCollision(t *testing.T) {
	ix := mustIndex(t, Params{Bands: 5, Rows: 2}, 1, 4)
	sets := [][]uint64{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}, {10, 11, 12}}
	for i, s := range sets {
		if err := ix.Insert(int32(i), s); err != nil {
			t.Fatal(err)
		}
	}
	for i := range sets {
		got := collect(ix, int32(i))
		// An item collides with itself in every band.
		if got[int32(i)] != 5 {
			t.Fatalf("item %d self-collisions = %d, want 5 (one per band)", i, got[int32(i)])
		}
	}
}

func TestIdenticalSetsAlwaysCollide(t *testing.T) {
	ix := mustIndex(t, Params{Bands: 3, Rows: 4}, 9, 2)
	set := []uint64{100, 200, 300, 400}
	if err := ix.Insert(0, set); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(1, append([]uint64(nil), set...)); err != nil {
		t.Fatal(err)
	}
	got := collect(ix, 0)
	if got[1] != 3 {
		t.Fatalf("identical item collides in %d bands, want all 3", got[1])
	}
}

func TestDisjointSetsRarelyCollide(t *testing.T) {
	// With r=8 rows per band a collision requires 8 simultaneous hash
	// agreements between disjoint sets — effectively impossible.
	ix := mustIndex(t, Params{Bands: 4, Rows: 8}, 3, 2)
	a := make([]uint64, 64)
	b := make([]uint64, 64)
	for i := range a {
		a[i] = uint64(i)
		b[i] = uint64(i + 100000)
	}
	if err := ix.Insert(0, a); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(1, b); err != nil {
		t.Fatal(err)
	}
	if got := collect(ix, 0); got[1] != 0 {
		t.Fatalf("disjoint sets collided in %d bands", got[1])
	}
}

func TestDoubleInsertRejected(t *testing.T) {
	ix := mustIndex(t, Params{Bands: 2, Rows: 1}, 1, 1)
	if err := ix.Insert(0, []uint64{1}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Insert(0, []uint64{1}); err == nil {
		t.Fatal("expected error on double insert")
	}
}

func TestNegativeItemRejected(t *testing.T) {
	ix := mustIndex(t, Params{Bands: 2, Rows: 1}, 1, 1)
	if err := ix.Insert(-1, []uint64{1}); err == nil {
		t.Fatal("expected error on negative item ID")
	}
}

func TestGrowBeyondHint(t *testing.T) {
	ix := mustIndex(t, Params{Bands: 3, Rows: 2}, 1, 1)
	set := []uint64{5, 6, 7}
	if err := ix.Insert(10, set); err != nil {
		t.Fatal(err)
	}
	if got := collect(ix, 10); got[10] != 3 {
		t.Fatalf("grown item self-collisions = %d, want 3", got[10])
	}
	if ix.NumInserted() != 1 {
		t.Fatalf("NumInserted = %d, want 1", ix.NumInserted())
	}
}

func TestCandidatesOfUninsertedItemSilent(t *testing.T) {
	ix := mustIndex(t, Params{Bands: 2, Rows: 2}, 1, 4)
	calls := 0
	ix.Candidates(2, func(int32) { calls++ })
	if calls != 0 {
		t.Fatalf("uninserted item produced %d candidates", calls)
	}
}

func TestCandidatesOfSetMatchesStored(t *testing.T) {
	ix := mustIndex(t, Params{Bands: 6, Rows: 2}, 5, 3)
	sets := [][]uint64{{1, 2, 3, 4}, {1, 2, 3, 9}, {50, 60, 70, 80}}
	for i, s := range sets {
		if err := ix.Insert(int32(i), s); err != nil {
			t.Fatal(err)
		}
	}
	stored := collect(ix, 0)
	viaSet := map[int32]int{}
	ix.CandidatesOfSet(sets[0], func(o int32) { viaSet[o]++ })
	if len(stored) != len(viaSet) {
		t.Fatalf("stored query found %v, set query found %v", stored, viaSet)
	}
	for k, v := range stored {
		if viaSet[k] != v {
			t.Fatalf("stored query found %v, set query found %v", stored, viaSet)
		}
	}
}

func TestInvalidParams(t *testing.T) {
	if _, err := NewIndex(Params{Bands: 0, Rows: 1}, 1, 1); err == nil {
		t.Fatal("expected error for invalid params")
	}
}

func TestStats(t *testing.T) {
	ix := mustIndex(t, Params{Bands: 4, Rows: 3}, 11, 3)
	common := []uint64{1, 2, 3, 4, 5}
	for i := 0; i < 3; i++ {
		if err := ix.Insert(int32(i), common); err != nil {
			t.Fatal(err)
		}
	}
	st := ix.Stats()
	if st.Items != 3 || st.Bands != 4 {
		t.Fatalf("stats = %+v", st)
	}
	// All three identical items share one bucket per band.
	if st.Buckets != 4 || st.MaxBucketLen != 3 {
		t.Fatalf("stats = %+v, want 4 buckets of 3", st)
	}
	if st.SingletonShare != 0 {
		t.Fatalf("singleton share = %v, want 0", st.SingletonShare)
	}
	if math.Abs(st.MeanBucketLen-3) > 1e-9 {
		t.Fatalf("mean bucket len = %v, want 3", st.MeanBucketLen)
	}
}

// TestEmpiricalCollisionMatchesSCurve measures the banding collision rate
// over many seeds for pairs of sets with a controlled Jaccard similarity
// and compares it with CandidateProb — the empirical validation of the
// 1−(1−s^r)^b formula the whole framework rests on.
func TestEmpiricalCollisionMatchesSCurve(t *testing.T) {
	if testing.Short() {
		t.Skip("statistical test")
	}
	rng := rand.New(rand.NewSource(4242))
	p := Params{Bands: 8, Rows: 2}
	for _, shared := range []int{6, 12, 18} {
		const total = 24
		a := make([]uint64, 0, total)
		b := make([]uint64, 0, total)
		for i := 0; i < shared; i++ {
			v := rng.Uint64() >> 1
			a = append(a, v)
			b = append(b, v)
		}
		for i := shared; i < total; i++ {
			a = append(a, rng.Uint64()>>1)
			b = append(b, rng.Uint64()>>1)
		}
		j := float64(shared) / float64(2*total-shared)
		want := p.CandidateProb(j)

		const trials = 400
		hits := 0
		for trial := 0; trial < trials; trial++ {
			ix, err := NewIndex(p, uint64(trial)+1, 2)
			if err != nil {
				t.Fatal(err)
			}
			if err := ix.Insert(0, a); err != nil {
				t.Fatal(err)
			}
			if err := ix.Insert(1, b); err != nil {
				t.Fatal(err)
			}
			if collect(ix, 0)[1] > 0 {
				hits++
			}
		}
		got := float64(hits) / trials
		sd := math.Sqrt(want*(1-want)/trials) + 1e-9
		if math.Abs(got-want) > 5*sd+0.02 {
			t.Errorf("shared=%d: empirical collision %.3f, formula %.3f (sd %.3f)",
				shared, got, want, sd)
		}
	}
}

func BenchmarkInsert(b *testing.B) {
	p := Params{Bands: 20, Rows: 5}
	set := make([]uint64, 100)
	for i := range set {
		set[i] = uint64(i) * 7919
	}
	b.ReportAllocs()
	ix, _ := NewIndex(p, 1, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		set[0] = uint64(i) // vary the set slightly
		_ = ix.Insert(int32(i), set)
	}
}

func BenchmarkStoredCandidates(b *testing.B) {
	p := Params{Bands: 20, Rows: 5}
	ix, _ := NewIndex(p, 1, 1000)
	rng := rand.New(rand.NewSource(5))
	set := make([]uint64, 50)
	for i := 0; i < 1000; i++ {
		for j := range set {
			set[j] = uint64(rng.Intn(200)) // heavy overlap → populated buckets
		}
		_ = ix.Insert(int32(i), set)
	}
	b.ReportAllocs()
	b.ResetTimer()
	n := 0
	for i := 0; i < b.N; i++ {
		ix.Candidates(int32(i%1000), func(int32) { n++ })
	}
}
