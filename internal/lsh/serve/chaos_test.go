package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"lshcluster/internal/lsh"
)

// nopBackend is the do-nothing ShardBackend behind the chaos wrapper:
// these tests pin the injection layer, not the shard underneath.
type nopBackend struct{}

func (nopBackend) ItemKeys(context.Context, []int32, []uint64) error { return nil }
func (nopBackend) Candidates(context.Context, []uint64, func(int, []int32)) error {
	return nil
}
func (nopBackend) CandidatesBlock(context.Context, int, []uint64, func(int, int, []int32)) error {
	return nil
}
func (nopBackend) ReverseSpans(context.Context, []uint64, []int32) error { return nil }
func (nopBackend) Stats(context.Context) (lsh.Stats, error)             { return lsh.Stats{}, nil }

func TestParseChaosSpec(t *testing.T) {
	valid := []string{
		"",
		"seed=7",
		"err=0.05",
		"err=0",
		"err=1",
		"lat=300us",
		"lat=300us~200us",
		"stall=0.01:50ms",
		"dead",
		"failn=10",
		"seed=7;err=0.05;lat=300us~200us;shard2.dead;shard0.failn=10",
		" seed=1 ; err=0.5 ",     // whitespace tolerated
		"err=0.05;;shard1.dead",  // empty clause tolerated
		"shard3.stall=0.5:1ms",
	}
	for _, spec := range valid {
		if _, err := ParseChaosSpec(spec); err != nil {
			t.Errorf("ParseChaosSpec(%q) = %v, want nil", spec, err)
		}
	}
	invalid := []string{
		"seed=abc",
		"seed=-1",
		"err=1.5",
		"err=-0.1",
		"err=x",
		"lat=banana",
		"lat=-3ms",
		"lat=1ms~banana",
		"stall=0.5",       // missing :DUR
		"stall=2:1ms",     // rate out of range
		"stall=0.5:-1ms",  // negative duration
		"dead=1",          // dead takes no value
		"failn=-3",
		"failn=x",
		"bogus=1",
		"shardx.dead",     // non-numeric shard index
		"shard-1.dead",    // negative shard index
		"shard2dead",      // missing dot (parses as unknown fault)
	}
	for _, spec := range invalid {
		if _, err := ParseChaosSpec(spec); err == nil {
			t.Errorf("ParseChaosSpec(%q) accepted, want error", spec)
		}
	}
}

func TestChaosSeed(t *testing.T) {
	c, err := ParseChaosSpec("seed=42;err=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if c.Seed() != 42 {
		t.Fatalf("Seed() = %d, want 42", c.Seed())
	}
}

// TestFaultsForOverride pins the clause-resolution semantics: a bare
// fault applies everywhere, a shardI. clause overrides that field for
// its shard only.
func TestFaultsForOverride(t *testing.T) {
	c, err := ParseChaosSpec("err=0.5;lat=1ms;shard1.err=0;shard1.dead;shard2.failn=4")
	if err != nil {
		t.Fatal(err)
	}
	f0 := c.faultsFor(0)
	if f0.errRate != 0.5 || f0.latBase != time.Millisecond || f0.dead || f0.failN != 0 {
		t.Fatalf("shard0 faults = %+v", f0)
	}
	f1 := c.faultsFor(1)
	if f1.errRate != 0 || !f1.dead || f1.latBase != time.Millisecond {
		t.Fatalf("shard1 faults = %+v", f1)
	}
	f2 := c.faultsFor(2)
	if f2.errRate != 0.5 || f2.failN != 4 || f2.dead {
		t.Fatalf("shard2 faults = %+v", f2)
	}
}

// callSequence drives n serial Candidates calls and records which fail.
func callSequence(b *Backend, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		out[i] = b.Candidates(context.Background(), nil, nil) != nil
	}
	return out
}

// TestChaosDeterminism pins the seeded-injection contract: the same
// (faults, seed) over the same serial call sequence injects the same
// faults, and a different seed draws a different stream.
func TestChaosDeterminism(t *testing.T) {
	c, err := ParseChaosSpec("seed=9;err=0.3")
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	a := callSequence(NewBackend(nopBackend{}, c.faultsFor(0), 9), n)
	b := callSequence(NewBackend(nopBackend{}, c.faultsFor(0), 9), n)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d", i)
		}
	}
	other := callSequence(NewBackend(nopBackend{}, c.faultsFor(0), 10), n)
	same := true
	for i := range a {
		if a[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds injected identical fault sequences")
	}
}

// TestChaosWrapSaltsAreIndependent pins the primary/mirror split: the
// same spec wrapped under different salts draws independent streams,
// so a hedge mirror does not fail in lockstep with its primary.
func TestChaosWrapSaltsAreIndependent(t *testing.T) {
	c, err := ParseChaosSpec("seed=5;err=0.4")
	if err != nil {
		t.Fatal(err)
	}
	inner := []lsh.ShardBackend{nopBackend{}, nopBackend{}}
	prim := c.Wrap(inner, 0)
	mirr := c.Wrap(inner, 1)
	const n = 200
	for s := range inner {
		a := callSequence(prim[s].(*Backend), n)
		b := callSequence(mirr[s].(*Backend), n)
		same := true
		for i := range a {
			if a[i] != b[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("shard %d: mirror injection stream mirrors the primary's", s)
		}
	}
}

func TestChaosFailNThenRecover(t *testing.T) {
	c, err := ParseChaosSpec("failn=3")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBackend(nopBackend{}, c.faultsFor(0), 1)
	for i := 1; i <= 3; i++ {
		err := b.Candidates(context.Background(), nil, nil)
		if err == nil || !strings.Contains(err.Error(), "scripted failure") {
			t.Fatalf("call %d: err = %v, want scripted failure", i, err)
		}
	}
	for i := 4; i <= 10; i++ {
		if err := b.Candidates(context.Background(), nil, nil); err != nil {
			t.Fatalf("call %d after recovery: %v", i, err)
		}
	}
	if got := b.InjectedErrors(); got != 3 {
		t.Fatalf("InjectedErrors = %d, want 3", got)
	}
	if got := b.Calls(); got != 10 {
		t.Fatalf("Calls = %d, want 10", got)
	}
}

func TestChaosDeadAlwaysFails(t *testing.T) {
	c, err := ParseChaosSpec("dead")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBackend(nopBackend{}, c.faultsFor(0), 1)
	for i := 0; i < 50; i++ {
		err := b.ItemKeys(context.Background(), nil, nil)
		if err == nil || !strings.Contains(err.Error(), "shard dead") {
			t.Fatalf("call %d: err = %v, want shard dead", i, err)
		}
	}
	if got := b.InjectedErrors(); got != 50 {
		t.Fatalf("InjectedErrors = %d, want 50", got)
	}
}

// TestChaosErrRateBallpark sanity-checks the error rate: 5% over 1000
// draws must land in a generous band around 50.
func TestChaosErrRateBallpark(t *testing.T) {
	c, err := ParseChaosSpec("seed=1;err=0.05")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBackend(nopBackend{}, c.faultsFor(0), 1)
	for i := 0; i < 1000; i++ {
		b.Candidates(context.Background(), nil, nil)
	}
	if got := b.InjectedErrors(); got < 15 || got > 120 {
		t.Fatalf("InjectedErrors = %d over 1000 calls at 5%%, want ~50", got)
	}
}

// TestChaosStallHonoursContext is the stall half of the cancellation
// guarantee: a scripted one-hour stall returns as soon as the caller's
// context is cancelled.
func TestChaosStallHonoursContext(t *testing.T) {
	c, err := ParseChaosSpec("stall=1:1h")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBackend(nopBackend{}, c.faultsFor(0), 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	callErr := b.Candidates(ctx, nil, nil)
	if callErr == nil {
		t.Fatal("stalled call returned nil error after cancellation")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("stalled call held for %v past cancellation", elapsed)
	}
	if got := b.InjectedStalls(); got != 1 {
		t.Fatalf("InjectedStalls = %d, want 1", got)
	}
}

func TestChaosLatencyDelays(t *testing.T) {
	c, err := ParseChaosSpec("lat=10ms")
	if err != nil {
		t.Fatal(err)
	}
	b := NewBackend(nopBackend{}, c.faultsFor(0), 1)
	start := time.Now()
	if err := b.Candidates(context.Background(), nil, nil); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 10*time.Millisecond {
		t.Fatalf("latency injection waited only %v", elapsed)
	}
}
