package serve

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"lshcluster/internal/lsh"
)

// slowShard is a scriptable shard backend for server tests: it emits
// one fixed bucket per band, optionally delays or fails, and tracks
// its concurrent-call high-water mark (the backpressure witness).
type slowShard struct {
	shard int
	bands int
	delay time.Duration
	fail  bool

	mu        sync.Mutex
	inflight  int
	highWater int
}

func (s *slowShard) enter() {
	s.mu.Lock()
	s.inflight++
	if s.inflight > s.highWater {
		s.highWater = s.inflight
	}
	s.mu.Unlock()
}

func (s *slowShard) leave() {
	s.mu.Lock()
	s.inflight--
	s.mu.Unlock()
}

func (s *slowShard) HighWater() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.highWater
}

func (s *slowShard) Candidates(ctx context.Context, keys []uint64, emit func(band int, bucket []int32)) error {
	s.enter()
	defer s.leave()
	if s.delay > 0 {
		if err := sleepCtx(ctx, s.delay); err != nil {
			return err
		}
	}
	if s.fail {
		return errors.New("scripted shard failure")
	}
	for b := 0; b < s.bands; b++ {
		emit(b, []int32{int32(s.shard * 100), int32(s.shard*100 + b)})
	}
	return nil
}

func (s *slowShard) ItemKeys(context.Context, []int32, []uint64) error { return nil }
func (s *slowShard) CandidatesBlock(context.Context, int, []uint64, func(int, int, []int32)) error {
	return nil
}
func (s *slowShard) ReverseSpans(context.Context, []uint64, []int32) error { return nil }
func (s *slowShard) Stats(context.Context) (lsh.Stats, error)             { return lsh.Stats{}, nil }

func newShards(n, bands int) ([]*slowShard, []lsh.ShardBackend) {
	shards := make([]*slowShard, n)
	backends := make([]lsh.ShardBackend, n)
	for i := range shards {
		shards[i] = &slowShard{shard: i, bands: bands}
		backends[i] = shards[i]
	}
	return shards, backends
}

type emitted struct {
	band   int
	bucket []int32
}

// TestServerEmitOrder pins the merge contract: whatever order shards
// respond in, the gathered buckets come out band-major in ascending
// shard order.
func TestServerEmitOrder(t *testing.T) {
	const bands = 3
	shards, backends := newShards(3, bands)
	shards[0].delay = 10 * time.Millisecond // slowest shard must still emit first
	srv := NewServer(backends, bands, 2)
	var got []emitted
	skipped, err := srv.Candidates(context.Background(), make([]uint64, bands), func(band int, bucket []int32) {
		got = append(got, emitted{band, bucket})
	})
	if err != nil || skipped != 0 {
		t.Fatalf("skipped=%d err=%v", skipped, err)
	}
	var want []emitted
	for b := 0; b < bands; b++ {
		for s := 0; s < 3; s++ {
			want = append(want, emitted{b, []int32{int32(s * 100), int32(s*100 + b)}})
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("emission order:\nwant %v\ngot  %v", want, got)
	}
}

// TestServerBackpressure pins the in-flight gate: with many concurrent
// clients against a slow shard, the shard never sees more than
// `inflight` concurrent calls.
func TestServerBackpressure(t *testing.T) {
	const bands = 2
	const inflight = 2
	const clients = 8
	shards, backends := newShards(2, bands)
	for _, s := range shards {
		s.delay = 5 * time.Millisecond
	}
	srv := NewServer(backends, bands, inflight)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for q := 0; q < 3; q++ {
				if _, err := srv.Candidates(context.Background(), make([]uint64, bands), func(int, []int32) {}); err != nil {
					t.Errorf("query failed: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	for i, s := range shards {
		if hw := s.HighWater(); hw > inflight {
			t.Fatalf("shard %d saw %d concurrent calls, gate is %d", i, hw, inflight)
		}
	}
	rep := srv.Report()
	for i := range rep {
		if rep[i].Calls != clients*3 {
			t.Fatalf("shard %d Calls = %d, want %d", i, rep[i].Calls, clients*3)
		}
	}
}

// TestServerSkipsFailedShard pins graceful degradation: a failing
// shard is skipped and counted, the others still serve in order.
func TestServerSkipsFailedShard(t *testing.T) {
	const bands = 2
	shards, backends := newShards(3, bands)
	shards[1].fail = true
	srv := NewServer(backends, bands, 1)
	var got []emitted
	skipped, err := srv.Candidates(context.Background(), make([]uint64, bands), func(band int, bucket []int32) {
		got = append(got, emitted{band, bucket})
	})
	if err != nil {
		t.Fatal(err)
	}
	if skipped != 1 {
		t.Fatalf("skipped = %d, want 1", skipped)
	}
	var want []emitted
	for b := 0; b < bands; b++ {
		for _, s := range []int{0, 2} {
			want = append(want, emitted{b, []int32{int32(s * 100), int32(s*100 + b)}})
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("partial emission:\nwant %v\ngot  %v", want, got)
	}
	rep := srv.Report()
	if rep[1].Errors != 1 || rep[0].Errors != 0 || rep[2].Errors != 0 {
		t.Fatalf("error accounting: %+v", rep)
	}
}

// TestServerStragglerAccounting pins the straggler ledger: the
// consistently slowest shard accumulates the straggler count and leads
// Slowest().
func TestServerStragglerAccounting(t *testing.T) {
	const bands = 2
	const queries = 5
	shards, backends := newShards(3, bands)
	shards[2].delay = 15 * time.Millisecond
	srv := NewServer(backends, bands, 2)
	for q := 0; q < queries; q++ {
		if _, err := srv.Candidates(context.Background(), make([]uint64, bands), func(int, []int32) {}); err != nil {
			t.Fatal(err)
		}
	}
	rep := srv.Report()
	if rep[2].Stragglers != queries {
		t.Fatalf("shard 2 Stragglers = %d, want %d (report: %+v)", rep[2].Stragglers, queries, rep)
	}
	if rep[2].Max < 15*time.Millisecond || rep[2].Mean < 15*time.Millisecond {
		t.Fatalf("shard 2 latency accounting: %+v", rep[2])
	}
	if order := srv.Slowest(); order[0] != 2 {
		t.Fatalf("Slowest() = %v, want shard 2 first", order)
	}
}

// TestServerCancelledContext pins the cancellation path: a cancelled
// query returns the context error instead of a silent partial result.
func TestServerCancelledContext(t *testing.T) {
	const bands = 2
	shards, backends := newShards(2, bands)
	for _, s := range shards {
		s.delay = time.Hour // sleepCtx returns on cancellation
	}
	srv := NewServer(backends, bands, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	skipped, err := srv.Candidates(ctx, make([]uint64, bands), func(int, []int32) {})
	if err == nil {
		t.Fatal("cancelled query returned nil error")
	}
	if skipped != 2 {
		t.Fatalf("skipped = %d, want 2", skipped)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled query blocked for %v", elapsed)
	}
}

// TestServerInflightFloor pins the inflight < 1 → 1 normalisation.
func TestServerInflightFloor(t *testing.T) {
	_, backends := newShards(1, 1)
	srv := NewServer(backends, 1, 0)
	if got, err := srv.Candidates(context.Background(), make([]uint64, 1), func(int, []int32) {}); err != nil || got != 0 {
		t.Fatalf("skipped=%d err=%v", got, err)
	}
}

// Example-style smoke: a chaos-wrapped fleet behind the server — the
// cmd serve demo's composition — serves partial results under faults.
func TestServerOverChaosBackends(t *testing.T) {
	const bands = 2
	_, backends := newShards(3, bands)
	spec, err := ParseChaosSpec("seed=3;shard1.dead")
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(spec.Wrap(backends, 0), bands, 2)
	for q := 0; q < 4; q++ {
		skipped, err := srv.Candidates(context.Background(), make([]uint64, bands), func(int, []int32) {})
		if err != nil {
			t.Fatal(err)
		}
		if skipped != 1 {
			t.Fatalf("query %d: skipped = %d, want 1 (dead shard)", q, skipped)
		}
	}
	rep := srv.Report()
	if rep[1].Errors != 4 {
		t.Fatalf("dead shard Errors = %d, want 4: %+v", rep[1].Errors, fmt.Sprintf("%+v", rep))
	}
}
