package serve

import (
	"context"
	"sort"
	"sync"
	"time"

	"lshcluster/internal/lsh"
)

// Server is a concurrent multi-shard local serving layer: each query
// fans out to every shard backend on its own goroutine (shards are
// goroutine-isolated — a slow shard never blocks another shard's
// work), bounded per shard by an in-flight gate (backpressure: at most
// `inflight` concurrent calls per shard, further callers queue on the
// gate), with per-shard latency and straggler accounting on top. It is
// the in-process stand-in for the networked shard service the roadmap
// targets: the fan-out, isolation, and accounting are exactly what a
// wire transport would need, with the transport itself left to swap
// in.
//
// Safe for concurrent use by many client goroutines.
type Server struct {
	backends []lsh.ShardBackend
	bands    int
	gates    []chan struct{}
	shards   []serverShard
}

// serverShard is one shard's accounting, mutex-guarded (the per-call
// critical sections are tiny next to a backend call).
type serverShard struct {
	mu         sync.Mutex
	calls      int64
	errors     int64
	stragglers int64
	totalNanos int64
	maxNanos   int64
}

// ShardReport is one shard's serving statistics.
type ShardReport struct {
	// Calls and Errors count fan-out calls reaching this shard and how
	// many failed.
	Calls, Errors int64
	// Stragglers counts the queries where this shard was the slowest
	// responder — the hedging trigger a mirror would absorb.
	Stragglers int64
	// Max and Mean are the shard's call latencies.
	Max, Mean time.Duration
}

// NewServer builds a server over one backend per shard. inflight
// bounds each shard's concurrent calls (values < 1 mean 1).
func NewServer(backends []lsh.ShardBackend, bands, inflight int) *Server {
	if inflight < 1 {
		inflight = 1
	}
	s := &Server{
		backends: backends,
		bands:    bands,
		gates:    make([]chan struct{}, len(backends)),
		shards:   make([]serverShard, len(backends)),
	}
	for i := range s.gates {
		s.gates[i] = make(chan struct{}, inflight)
	}
	return s
}

// Candidates serves one query: the band keys (len Bands) fan out to
// every shard concurrently, surviving buckets are gathered, and after
// the fan-out settles they are emitted band-major in ascending shard
// order (the range-partition merge contract). Failed or cancelled
// shards are skipped and counted; skipped > 0 means the shortlist is
// partial. The error is non-nil only when ctx was cancelled.
func (s *Server) Candidates(ctx context.Context, keys []uint64, emit func(band int, bucket []int32)) (skipped int, err error) {
	n := len(s.backends)
	hits := make([][]bucketHit, n)
	fails := make([]bool, n)
	lats := make([]time.Duration, n)
	var wg sync.WaitGroup
	for t := 0; t < n; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			// Backpressure: wait for an in-flight slot or cancellation.
			select {
			case s.gates[t] <- struct{}{}:
			case <-ctx.Done():
				fails[t] = true
				return
			}
			defer func() { <-s.gates[t] }()
			start := time.Now()
			callErr := s.backends[t].Candidates(ctx, keys, func(band int, bucket []int32) {
				hits[t] = append(hits[t], bucketHit{band: int32(band), bucket: bucket})
			})
			lats[t] = time.Since(start)
			st := &s.shards[t]
			st.mu.Lock()
			st.calls++
			st.totalNanos += lats[t].Nanoseconds()
			if lats[t].Nanoseconds() > st.maxNanos {
				st.maxNanos = lats[t].Nanoseconds()
			}
			if callErr != nil {
				st.errors++
				fails[t] = true
				hits[t] = nil
			}
			st.mu.Unlock()
		}(t)
	}
	wg.Wait()

	// Straggler accounting: the slowest responding shard of this query.
	slowest, slowestLat := -1, time.Duration(0)
	for t := 0; t < n; t++ {
		if !fails[t] && lats[t] > slowestLat {
			slowest, slowestLat = t, lats[t]
		}
	}
	if slowest >= 0 && n > 1 {
		st := &s.shards[slowest]
		st.mu.Lock()
		st.stragglers++
		st.mu.Unlock()
	}

	for t := 0; t < n; t++ {
		if fails[t] {
			skipped++
		}
	}
	if err := ctx.Err(); err != nil {
		return skipped, err
	}
	cur := make([]int, n)
	for b := int32(0); b < int32(s.bands); b++ {
		for t := 0; t < n; t++ {
			if h := hits[t]; cur[t] < len(h) && h[cur[t]].band == b {
				emit(int(b), h[cur[t]].bucket)
				cur[t]++
			}
		}
	}
	return skipped, nil
}

// bucketHit parks one emitted bucket until the fan-out settles.
type bucketHit struct {
	band   int32
	bucket []int32
}

// Report returns per-shard serving statistics.
func (s *Server) Report() []ShardReport {
	out := make([]ShardReport, len(s.shards))
	for i := range s.shards {
		st := &s.shards[i]
		st.mu.Lock()
		out[i] = ShardReport{
			Calls:      st.calls,
			Errors:     st.errors,
			Stragglers: st.stragglers,
			Max:        time.Duration(st.maxNanos),
		}
		if st.calls > 0 {
			out[i].Mean = time.Duration(st.totalNanos / st.calls)
		}
		st.mu.Unlock()
	}
	return out
}

// Slowest returns the shard indices ordered by cumulative straggler
// count, worst first — the placement/hedging priority a deployment
// would act on.
func (s *Server) Slowest() []int {
	rep := s.Report()
	idx := make([]int, len(rep))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return rep[idx[a]].Stragglers > rep[idx[b]].Stragglers })
	return idx
}
