// Package serve holds the shard-serving side of the fault-tolerance
// layer: the deterministic chaos backend the tests and soak runs
// inject faults with, and a concurrent multi-shard local server with
// per-shard backpressure and straggler accounting. It sits strictly
// above internal/lsh — everything here wraps or drives
// lsh.ShardBackend implementations.
package serve

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"lshcluster/internal/lsh"
)

// ChaosSpec is a parsed fault-injection script. The grammar
// (ParseChaosSpec) is a semicolon-separated clause list:
//
//	spec    := clause (';' clause)*
//	clause  := 'seed=' N | [ 'shard' INDEX '.' ] fault
//	fault   := 'err=' P            // inject an error with probability P
//	         | 'lat=' DUR['~'DUR]  // add latency DUR, plus uniform jitter
//	         | 'stall=' P ':' DUR  // with probability P, stall for DUR
//	         | 'dead'              // fail every call
//	         | 'failn=' N          // fail the first N calls, then recover
//
// A bare fault applies to every shard; a 'shardI.'-prefixed fault to
// shard I only, overriding the bare value for that field. Example:
//
//	seed=7;err=0.05;lat=300us~200us;shard2.dead;shard0.failn=10
//
// Injection is seeded and deterministic: each wrapped backend draws
// from its own PRNG derived from (seed, shard, salt), so a serial run
// over the same call sequence injects the same faults every time.
// Stalls and latency honour the call context — a cancelled caller
// never waits a stall out.
type ChaosSpec struct {
	seed uint64
	ops  []faultOp
}

// faultOp is one parsed clause, applied in order at Wrap time.
type faultOp struct {
	shard int // -1: every shard
	kind  faultKind
	p     float64
	d1    time.Duration
	d2    time.Duration
	n     int64
}

type faultKind int

const (
	faultErr faultKind = iota
	faultLat
	faultStall
	faultDead
	faultFailN
)

// shardFaults is the effective fault set of one wrapped shard.
type shardFaults struct {
	errRate            float64
	latBase, latJitter time.Duration
	stallRate          float64
	stallDur           time.Duration
	dead               bool
	failN              int64
}

// ParseChaosSpec parses the spec grammar above. The empty string is a
// valid spec injecting nothing (chaos plumbing without faults — the
// bit-identity configuration).
func ParseChaosSpec(spec string) (*ChaosSpec, error) {
	c := &ChaosSpec{}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		if v, ok := strings.CutPrefix(clause, "seed="); ok {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("chaos: bad seed %q: %v", v, err)
			}
			c.seed = seed
			continue
		}
		shard := -1
		fault := clause
		if rest, ok := strings.CutPrefix(clause, "shard"); ok {
			idx, f, found := strings.Cut(rest, ".")
			if !found {
				return nil, fmt.Errorf("chaos: clause %q: want shardI.fault", clause)
			}
			i, err := strconv.Atoi(idx)
			if err != nil || i < 0 {
				return nil, fmt.Errorf("chaos: bad shard index %q in %q", idx, clause)
			}
			shard, fault = i, f
		}
		op, err := parseFault(fault)
		if err != nil {
			return nil, err
		}
		op.shard = shard
		c.ops = append(c.ops, op)
	}
	return c, nil
}

func parseFault(fault string) (faultOp, error) {
	key, val, _ := strings.Cut(fault, "=")
	switch key {
	case "err":
		p, err := strconv.ParseFloat(val, 64)
		if err != nil || p < 0 || p > 1 {
			return faultOp{}, fmt.Errorf("chaos: bad error rate %q", val)
		}
		return faultOp{kind: faultErr, p: p}, nil
	case "lat":
		base, jitter, hasJitter := strings.Cut(val, "~")
		d1, err := time.ParseDuration(base)
		if err != nil || d1 < 0 {
			return faultOp{}, fmt.Errorf("chaos: bad latency %q", val)
		}
		var d2 time.Duration
		if hasJitter {
			if d2, err = time.ParseDuration(jitter); err != nil || d2 < 0 {
				return faultOp{}, fmt.Errorf("chaos: bad latency jitter %q", val)
			}
		}
		return faultOp{kind: faultLat, d1: d1, d2: d2}, nil
	case "stall":
		prob, dur, found := strings.Cut(val, ":")
		if !found {
			return faultOp{}, fmt.Errorf("chaos: stall wants P:DUR, got %q", val)
		}
		p, err := strconv.ParseFloat(prob, 64)
		if err != nil || p < 0 || p > 1 {
			return faultOp{}, fmt.Errorf("chaos: bad stall rate %q", prob)
		}
		d, err := time.ParseDuration(dur)
		if err != nil || d < 0 {
			return faultOp{}, fmt.Errorf("chaos: bad stall duration %q", dur)
		}
		return faultOp{kind: faultStall, p: p, d1: d}, nil
	case "dead":
		if fault != "dead" {
			return faultOp{}, fmt.Errorf("chaos: dead takes no value, got %q", fault)
		}
		return faultOp{kind: faultDead}, nil
	case "failn":
		n, err := strconv.ParseInt(val, 10, 64)
		if err != nil || n < 0 {
			return faultOp{}, fmt.Errorf("chaos: bad failn count %q", val)
		}
		return faultOp{kind: faultFailN, n: n}, nil
	default:
		return faultOp{}, fmt.Errorf("chaos: unknown fault %q", fault)
	}
}

// Seed returns the spec's PRNG seed.
func (c *ChaosSpec) Seed() uint64 { return c.seed }

// faultsFor resolves shard s's effective faults by applying the parsed
// clauses in order (bare clauses first-come, shard-specific ones
// override the matching field).
func (c *ChaosSpec) faultsFor(s int) shardFaults {
	var f shardFaults
	for _, op := range c.ops {
		if op.shard != -1 && op.shard != s {
			continue
		}
		switch op.kind {
		case faultErr:
			f.errRate = op.p
		case faultLat:
			f.latBase, f.latJitter = op.d1, op.d2
		case faultStall:
			f.stallRate, f.stallDur = op.p, op.d1
		case faultDead:
			f.dead = true
		case faultFailN:
			f.failN = op.n
		}
	}
	return f
}

// Wrap returns the backends wrapped in this spec's fault injection,
// one chaos Backend per shard. salt distinguishes independent
// replicas of the same fault environment — primaries and their hedge
// mirrors live under the same spec but draw from different PRNG
// streams (a mirror is a different machine in the same unreliable
// fleet, not a magically healthy one: a 'dead' shard is dead on its
// mirror too, so permanent failures stay visible as recall loss).
func (c *ChaosSpec) Wrap(backends []lsh.ShardBackend, salt uint64) []lsh.ShardBackend {
	out := make([]lsh.ShardBackend, len(backends))
	for s, b := range backends {
		out[s] = NewBackend(b, c.faultsFor(s), c.seed^(uint64(s)*0x9e3779b97f4a7c15+salt*0xbf58476d1ce4e5b9))
	}
	return out
}

// Backend wraps a ShardBackend with seeded, deterministic fault
// injection. Safe for concurrent use (draws are mutex-serialised);
// determinism holds for a serial call sequence, which is what the
// accounting tests pin.
type Backend struct {
	inner lsh.ShardBackend
	f     shardFaults

	mu    sync.Mutex
	rng   *rand.Rand
	calls int64

	injectedErrs   int64
	injectedStalls int64
}

// NewBackend wraps inner with the given faults and PRNG seed.
func NewBackend(inner lsh.ShardBackend, f shardFaults, seed uint64) *Backend {
	return &Backend{inner: inner, f: f, rng: rand.New(rand.NewSource(int64(seed)))}
}

// Calls returns how many calls reached this backend.
func (c *Backend) Calls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.calls
}

// InjectedErrors returns how many calls failed by injection (dead and
// failn included).
func (c *Backend) InjectedErrors() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injectedErrs
}

// InjectedStalls returns how many calls stalled by injection.
func (c *Backend) InjectedStalls() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.injectedStalls
}

// roll draws this call's fate: fail-fast (dead, failn, err), injected
// delay (lat, stall), or clean pass-through. Draw order is fixed so a
// serial call sequence replays identically.
func (c *Backend) roll(ctx context.Context) error {
	c.mu.Lock()
	c.calls++
	call := c.calls
	if c.f.failN > 0 && call <= c.f.failN {
		c.injectedErrs++
		c.mu.Unlock()
		return fmt.Errorf("chaos: scripted failure %d/%d", call, c.f.failN)
	}
	if c.f.dead {
		c.injectedErrs++
		c.mu.Unlock()
		return fmt.Errorf("chaos: shard dead (call %d)", call)
	}
	injectErr := c.f.errRate > 0 && c.rng.Float64() < c.f.errRate
	var lat time.Duration
	if c.f.latBase > 0 || c.f.latJitter > 0 {
		lat = c.f.latBase
		if c.f.latJitter > 0 {
			lat += time.Duration(c.rng.Int63n(int64(c.f.latJitter)))
		}
	}
	stall := c.f.stallRate > 0 && c.rng.Float64() < c.f.stallRate
	if injectErr {
		c.injectedErrs++
	}
	if stall {
		c.injectedStalls++
	}
	c.mu.Unlock()

	if stall {
		if err := sleepCtx(ctx, c.f.stallDur); err != nil {
			return err
		}
	}
	if lat > 0 {
		if err := sleepCtx(ctx, lat); err != nil {
			return err
		}
	}
	if injectErr {
		return fmt.Errorf("chaos: injected error (call %d)", call)
	}
	return ctx.Err()
}

// sleepCtx sleeps d or until ctx is done, whichever is first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (c *Backend) ItemKeys(ctx context.Context, locals []int32, keys []uint64) error {
	if err := c.roll(ctx); err != nil {
		return err
	}
	return c.inner.ItemKeys(ctx, locals, keys)
}

func (c *Backend) Candidates(ctx context.Context, keys []uint64, emit func(band int, bucket []int32)) error {
	if err := c.roll(ctx); err != nil {
		return err
	}
	return c.inner.Candidates(ctx, keys, emit)
}

func (c *Backend) CandidatesBlock(ctx context.Context, n int, keys []uint64, emit func(pos, band int, bucket []int32)) error {
	if err := c.roll(ctx); err != nil {
		return err
	}
	return c.inner.CandidatesBlock(ctx, n, keys, emit)
}

func (c *Backend) ReverseSpans(ctx context.Context, keys []uint64, spans []int32) error {
	if err := c.roll(ctx); err != nil {
		return err
	}
	return c.inner.ReverseSpans(ctx, keys, spans)
}

func (c *Backend) Stats(ctx context.Context) (lsh.Stats, error) {
	if err := c.roll(ctx); err != nil {
		return lsh.Stats{}, err
	}
	return c.inner.Stats(ctx)
}
