package lsh

// Reverse is a reusable reverse-collision view over a frozen index:
// mark a set of *source* items, then enumerate every indexed item that
// shares at least one band bucket with any source. Collision is
// symmetric, so the emitted items are exactly those whose candidate
// enumeration would report a source — the "items touching" relation the
// clustering driver needs to expand a changed cluster neighbourhood
// into the set of items whose shortlist (or shortlist distances) may
// have changed.
//
// Buckets are deduplicated at the bucket level: a bucket shared by many
// sources is scanned exactly once during Emit, so expanding the members
// of a cluster costs O(distinct hot buckets' contents) rather than
// O(sources × bands × bucket size). This is only possible on the frozen
// CSR layout, where buckets have stable global IDs (see frozenIndex);
// NewReverse returns nil for an unfrozen index.
//
// A Reverse owns private scratch and is not safe for concurrent use.
type Reverse struct {
	ix     *Index
	mark   []bool  // per global bucket: hot this round
	marked []int32 // hot bucket IDs, first-marked order
}

// NewReverse returns a reverse view over the index, or nil when the
// index has not been frozen.
func (ix *Index) NewReverse() *Reverse {
	if ix.frozen == nil {
		return nil
	}
	return &Reverse{ix: ix, mark: make([]bool, len(ix.frozen.offsets)-1)}
}

// AddSource marks every bucket of a previously inserted item hot.
// Uninserted items are ignored. The item ID is local to this index; a
// sharded view resolves global sources to (shard, local) pairs and
// marks non-owning shards by key probe (markSlot).
func (r *Reverse) AddSource(item int32) {
	ix := r.ix
	if !ix.isInserted(item) {
		return
	}
	fz := ix.frozen
	base := int(item) * ix.params.Bands
	for b := 0; b < ix.params.Bands; b++ {
		r.markSlot(fz.slots[base+b])
	}
}

// markSlot marks one bucket hot by its global (within this index)
// bucket ID — the cross-shard half of ShardedReverse.AddSource, where
// a source's buckets in non-owning shards are resolved by key probes
// rather than through a slots array.
func (r *Reverse) markSlot(slot int32) {
	if !r.mark[slot] {
		r.mark[slot] = true
		r.marked = append(r.marked, slot)
	}
}

// Emit invokes fn for every item in a hot bucket, each bucket scanned
// once; an item in several hot buckets is reported once per bucket
// (callers dedupe, typically into a flag array). fn returning false
// stops the enumeration early. All marks are reset before Emit
// returns, whether or not it was stopped, so the view is immediately
// reusable.
func (r *Reverse) Emit(fn func(item int32) bool) {
	fz := r.ix.frozen
	stopped := false
	for _, s := range r.marked {
		if !stopped {
			for _, it := range fz.items[fz.offsets[s]:fz.offsets[s+1]] {
				if !fn(it) {
					stopped = true
					break
				}
			}
		}
		r.mark[s] = false
	}
	r.marked = r.marked[:0]
}
