package lsh

import (
	"reflect"
	"testing"

	"lshcluster/internal/minhash"
)

// TestSignAllMatchesInsertKeys pins the arena contents: SignAll must
// compute exactly the band keys per-item Insert signing stores,
// independent of the worker count.
func TestSignAllMatchesInsertKeys(t *testing.T) {
	const n = 150
	p := Params{Bands: 10, Rows: 3}
	sets := testSets(n, 21)
	ix := mustIndex(t, p, 13, n)
	for i, s := range sets {
		if err := ix.Insert(int32(i), s); err != nil {
			t.Fatal(err)
		}
	}
	want := ix.keys // retained band keys, item-major — the arena layout
	for _, workers := range []int{1, 3, 8} {
		got := SignAll(p, n, workers, setSigner(ix, sets), nil)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: SignAll keys differ from Insert keys", workers)
		}
	}
}

// TestSignAllConcurrentMemo exercises the parallel signing path the
// accelerator uses — a shared, pre-filled memo read by every worker —
// under the race detector, and checks the keys are identical to
// direct serial signing. This is the concurrent-signing regression
// test for the shared-sigBuf hazard: the parallel path must never
// touch Index scratch.
func TestSignAllConcurrentMemo(t *testing.T) {
	const n, maxVal = 400, 64
	p := Params{Bands: 8, Rows: 4}
	sets := testSets(n, 77)
	for i := range sets {
		for j := range sets[i] {
			sets[i][j] %= maxVal // keep IDs inside the memo table
		}
	}
	scheme := minhash.NewScheme(p.SignatureLen(), 41)
	memo := scheme.NewMemo(maxVal)
	memo.Fill(4)

	serial := SignAll(p, n, 1, func() SignFunc {
		return func(item int32, sig []uint64) { scheme.Sign(sets[item], sig) }
	}, nil)
	parallel := SignAll(p, n, 8, func() SignFunc {
		return func(item int32, sig []uint64) { memo.Sign(sets[item], sig) }
	}, nil)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatal("memoized parallel keys differ from direct serial keys")
	}
}
