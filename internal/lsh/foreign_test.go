package lsh

import (
	"fmt"
	"reflect"
	"testing"
)

// buildFrozenSharded builds a range-sharded frozen index over sets.
func buildFrozenSharded(t *testing.T, p Params, seed uint64, sets [][]uint64, shards int) *Sharded {
	t.Helper()
	sh, err := NewSharded(p, seed, len(sets), shards)
	if err != nil {
		t.Fatal(err)
	}
	keys := signKeysFor(sh, sets, 2)
	if err := sh.BuildFrozen(keys, len(sets), 2); err != nil {
		t.Fatal(err)
	}
	return sh
}

// TestForeignSlotsMatchProbePath is the foreign-slot equivalence
// oracle: with the arrays materialised, every query path — per-item,
// batched block sweep, reverse view — must reproduce the probe path's
// candidate stream exactly. The probe index is an identically built
// twin that never materialised, so the comparison isolates the fan-out
// mechanism.
func TestForeignSlotsMatchProbePath(t *testing.T) {
	const n = 260
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 21)
	for _, shards := range []int{2, 3, 4} {
		t.Run(fmt.Sprintf("s=%d", shards), func(t *testing.T) {
			probe := buildFrozenSharded(t, p, 7, sets, shards)
			fast := buildFrozenSharded(t, p, 7, sets, shards)
			if got := fast.MaterializeForeignSlots(-1); got <= 0 {
				t.Fatalf("MaterializeForeignSlots = %d, want > 0", got)
			}
			if fast.ForeignSlotBytes() <= 0 {
				t.Fatal("ForeignSlotBytes not recorded")
			}
			pq, fq := probe.NewQuery(), fast.NewQuery()
			for i := 0; i < n; i++ {
				want := collectQueryCandidates(pq, int32(i))
				got := collectQueryCandidates(fq, int32(i))
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("item %d candidates: probe %v, foreign %v", i, want, got)
				}
			}
			for _, blockLen := range []int{1, 7, 64} {
				for lo := 0; lo < n; lo += blockLen {
					hi := min(lo+blockLen, n)
					blk := make([]int32, 0, hi-lo)
					for i := lo; i < hi; i++ {
						blk = append(blk, int32(i))
					}
					want := make([][]int32, len(blk))
					got := make([][]int32, len(blk))
					pq.CandidatesBatch(blk, func(pos int, bucket []int32) {
						want[pos] = append(want[pos], bucket...)
					})
					fq.CandidatesBatch(blk, func(pos int, bucket []int32) {
						got[pos] = append(got[pos], bucket...)
					})
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("block [%d,%d): probe and foreign batch sweeps differ", lo, hi)
					}
				}
			}
			prv, frv := probe.NewReverse(), fast.NewReverse()
			for _, sources := range [][]int32{{0}, {3, 77, 150}, {n - 1, 0, 42}} {
				want := map[int32]bool{}
				got := map[int32]bool{}
				for _, s := range sources {
					prv.AddSource(s)
					frv.AddSource(s)
				}
				prv.Emit(func(it int32) bool { want[it] = true; return true })
				frv.Emit(func(it int32) bool { got[it] = true; return true })
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("sources %v: reverse sets differ (probe %d, foreign %d)",
						sources, len(want), len(got))
				}
			}
			// The fast index served everything by direct loads, the twin
			// by probes.
			if probes, direct := fast.FanOutOps(); direct == 0 || probes != 0 {
				t.Fatalf("foreign index FanOutOps = (%d probes, %d direct)", probes, direct)
			}
			if probes, _ := probe.FanOutOps(); probes == 0 {
				t.Fatal("probe index recorded no probe ops")
			}
		})
	}
}

// TestForeignSlotsBudgetGating pins the budget contract: a budget below
// the need leaves the probe path in effect (return 0, no arrays), a
// sufficient or unlimited budget materialises exactly the predicted
// bytes, and the call is idempotent.
func TestForeignSlotsBudgetGating(t *testing.T) {
	const n = 120
	p := Params{Bands: 4, Rows: 2}
	sets := testSets(n, 9)
	sh := buildFrozenSharded(t, p, 7, sets, 3)
	var need int64
	for _, ix := range sh.shards {
		need += int64(len(ix.frozen.offsets)-1) * int64(len(sh.shards)-1) * 8
	}
	if need <= 0 {
		t.Fatalf("predicted need %d", need)
	}
	if got := sh.MaterializeForeignSlots(need - 1); got != 0 {
		t.Fatalf("under-budget materialisation returned %d", got)
	}
	if sh.foreign != nil || sh.ForeignSlotBytes() != 0 {
		t.Fatal("under-budget call left arrays behind")
	}
	if got := sh.MaterializeForeignSlots(need); got != need {
		t.Fatalf("exact-budget materialisation returned %d, want %d", got, need)
	}
	if got := sh.MaterializeForeignSlots(0); got != need {
		t.Fatalf("repeat materialisation returned %d, want %d (idempotent)", got, need)
	}
	if sh.ForeignSlotBytes() != need {
		t.Fatalf("ForeignSlotBytes = %d, want %d", sh.ForeignSlotBytes(), need)
	}
}

// TestForeignSlotsSkippedLayouts pins the layouts that never
// materialise: single shard, stride partition, unfrozen shards.
func TestForeignSlotsSkippedLayouts(t *testing.T) {
	p := Params{Bands: 4, Rows: 2}
	sets := testSets(40, 5)

	single := buildFrozenSharded(t, p, 7, sets, 1)
	if got := single.MaterializeForeignSlots(-1); got != 0 {
		t.Fatalf("single-shard materialisation returned %d", got)
	}

	stride, err := NewShardedStream(p, 7, 3, len(sets))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sets {
		if err := stride.Insert(int32(i), s); err != nil {
			t.Fatal(err)
		}
	}
	stride.Freeze()
	if got := stride.MaterializeForeignSlots(-1); got != 0 {
		t.Fatalf("stride materialisation returned %d", got)
	}

	unfrozen, err := NewSharded(p, 7, len(sets), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range sets {
		if err := unfrozen.Insert(int32(i), s); err != nil {
			t.Fatal(err)
		}
	}
	if got := unfrozen.MaterializeForeignSlots(-1); got != 0 {
		t.Fatalf("unfrozen materialisation returned %d", got)
	}
}

// TestBandStartRecorded pins the bandStart invariant both construction
// paths rely on: band b's buckets occupy IDs [bandStart[b],
// bandStart[b+1]), covering all buckets, on Freeze and BuildFrozen
// alike.
func TestBandStartRecorded(t *testing.T) {
	const n = 90
	p := Params{Bands: 5, Rows: 2}
	sets := testSets(n, 11)
	frozen := singleReference(t, p, 7, sets, true).frozen
	built := buildFrozenSharded(t, p, 7, sets, 1).shards[0].frozen
	for name, fz := range map[string]*frozenIndex{"freeze": frozen, "build": built} {
		bs := fz.bandStart
		if len(bs) != p.Bands+1 {
			t.Fatalf("%s: bandStart has %d entries, want %d", name, len(bs), p.Bands+1)
		}
		if bs[0] != 0 || int(bs[p.Bands]) != len(fz.offsets)-1 {
			t.Fatalf("%s: bandStart %v does not cover %d buckets", name, bs, len(fz.offsets)-1)
		}
		for b := 0; b < p.Bands; b++ {
			if bs[b] > bs[b+1] {
				t.Fatalf("%s: bandStart not monotone: %v", name, bs)
			}
			for slot := bs[b]; slot < bs[b+1]; slot++ {
				if got := fz.tables[b].get(fz.keys[slot]); got != slot {
					t.Fatalf("%s: band %d slot %d resolves to %d via its own key", name, b, slot, got)
				}
			}
		}
	}
	if !reflect.DeepEqual(frozen.bandStart, built.bandStart) {
		t.Fatalf("freeze/build bandStart differ: %v vs %v", frozen.bandStart, built.bandStart)
	}
}
