package persist

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func testSections() []Section {
	i32 := func(vs ...int32) []byte {
		b := make([]byte, 4*len(vs))
		for i, v := range vs {
			binary.LittleEndian.PutUint32(b[4*i:], uint32(v))
		}
		return b
	}
	u64 := func(vs ...uint64) []byte {
		b := make([]byte, 8*len(vs))
		for i, v := range vs {
			binary.LittleEndian.PutUint64(b[8*i:], v)
		}
		return b
	}
	return []Section{
		{ID: 1, ElemSize: 4, Data: i32(0, 2, 5, 9)},
		{ID: 2, ElemSize: 8, Data: u64(7, 11, 13, 17, 19)},
		{ID: 3, ElemSize: 1, Data: []byte{1, 0, 1}},
		{ID: 4, ElemSize: 4, Data: nil}, // empty sections are legal
	}
}

func writeTestFile(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "shard-0.lshz")
	if err := WriteFile(path, testSections()); err != nil {
		t.Fatal(err)
	}
	return path
}

// loadModes runs a subtest per load path (heap oracle and, where
// supported, mmap); both must behave identically.
func loadModes(t *testing.T, fn func(t *testing.T, useMmap bool)) {
	t.Run("heap", func(t *testing.T) { fn(t, false) })
	if MmapSupported {
		t.Run("mmap", func(t *testing.T) { fn(t, true) })
	}
}

func TestRoundTrip(t *testing.T) {
	path := writeTestFile(t)
	want := testSections()
	loadModes(t, func(t *testing.T, useMmap bool) {
		f, err := Open(path, useMmap)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		if f.Mapped() != useMmap {
			t.Fatalf("Mapped() = %v, want %v", f.Mapped(), useMmap)
		}
		off, err := View[int32](f, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(off) != 4 || off[0] != 0 || off[3] != 9 {
			t.Fatalf("int32 view = %v", off)
		}
		keys, err := View[uint64](f, 2)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 5 || keys[4] != 19 {
			t.Fatalf("uint64 view = %v", keys)
		}
		flags, err := View[bool](f, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(flags) != 3 || !flags[0] || flags[1] {
			t.Fatalf("bool view = %v", flags)
		}
		empty, err := View[int32](f, 4)
		if err != nil || len(empty) != 0 {
			t.Fatalf("empty view = %v, %v", empty, err)
		}
		if _, err := View[int32](f, 9); err == nil {
			t.Fatal("missing section did not error")
		}
		if _, err := View[int64](f, 1); err == nil {
			t.Fatal("element-size mismatch did not error")
		}
		// Advice must be safe on any section and load mode.
		f.AdviseRandom(2)
		f.Demote()
		f.Promote()
		_ = want
	})
}

func TestWriteFileAtomicPermsAndAlignment(t *testing.T) {
	path := writeTestFile(t)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if perm := st.Mode().Perm(); perm != 0o644 {
		t.Fatalf("saved file mode %o, want 644", perm)
	}
	leftovers, _ := filepath.Glob(filepath.Join(filepath.Dir(path), "*.tmp*"))
	if len(leftovers) != 0 {
		t.Fatalf("temp files left behind: %v", leftovers)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	count := binary.LittleEndian.Uint32(data[16:])
	for i := uint32(0); i < count; i++ {
		off := binary.LittleEndian.Uint64(data[headerSize+int(i)*entrySize+16:])
		if off%sectionAlig != 0 {
			t.Fatalf("section %d at offset %d, not 64-byte aligned", i, off)
		}
	}
}

func TestWriteFileRejectsBadSections(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.lshz")
	if err := WriteFile(path, []Section{{ID: 1, ElemSize: 0, Data: []byte{1}}}); err == nil {
		t.Fatal("zero element size accepted")
	}
	if err := WriteFile(path, []Section{{ID: 1, ElemSize: 4, Data: []byte{1, 2, 3}}}); err == nil {
		t.Fatal("ragged section accepted")
	}
	dup := []Section{{ID: 1, ElemSize: 1, Data: []byte{1}}, {ID: 1, ElemSize: 1, Data: []byte{2}}}
	if err := WriteFile(path, dup); err == nil {
		t.Fatal("duplicate section id accepted")
	}
}

// TestOpenRejectsCorruption is the corruption fixture table: every
// damaged variant of a valid file must be rejected with an error —
// never a panic, never a partial load — on both load paths.
func TestOpenRejectsCorruption(t *testing.T) {
	valid, err := os.ReadFile(writeTestFile(t))
	if err != nil {
		t.Fatal(err)
	}
	fixtures := []struct {
		name string
		want string // substring of the expected error
		mut  func(b []byte) []byte
	}{
		{"empty", "truncated", func(b []byte) []byte { return nil }},
		{"truncated-header", "truncated", func(b []byte) []byte { return b[:headerSize-8] }},
		{"truncated-body", "truncated", func(b []byte) []byte { return b[:len(b)-16] }},
		{"bad-magic", "bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }},
		{"wrong-version", "format version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[8:], FormatVersion+1)
			// Re-seal the header so the version check itself is reached.
			resealHeader(b)
			return b
		}},
		{"foreign-byte-order", "byte order", func(b []byte) []byte {
			b[12], b[13], b[14], b[15] = b[15], b[14], b[13], b[12]
			resealHeader(b)
			return b
		}},
		{"header-bit-flip", "checksum", func(b []byte) []byte { b[17] ^= 0x01; return b }},
		{"table-bit-flip", "checksum", func(b []byte) []byte { b[headerSize+4] ^= 0x40; return b }},
		{"section-bit-flip", "checksum", func(b []byte) []byte {
			// Flip a payload byte (not alignment padding): locate the
			// first section via its table entry.
			off := binary.LittleEndian.Uint64(b[headerSize+16:])
			b[off] ^= 0x80
			return b
		}},
		{"grown", "truncated", func(b []byte) []byte { return append(b, 0) }},
	}
	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			data := fx.mut(append([]byte(nil), valid...))
			path := filepath.Join(t.TempDir(), "corrupt.lshz")
			if err := os.WriteFile(path, data, 0o644); err != nil {
				t.Fatal(err)
			}
			loadModes(t, func(t *testing.T, useMmap bool) {
				f, err := Open(path, useMmap)
				if err == nil {
					f.Close()
					t.Fatalf("corrupted file (%s) loaded without error", fx.name)
				}
				if !strings.Contains(err.Error(), fx.want) {
					t.Fatalf("error %q does not mention %q", err, fx.want)
				}
			})
		})
	}
}

// resealHeader recomputes the header CRC after a deliberate header
// mutation, so deeper validation layers are exercised.
func resealHeader(b []byte) {
	binary.LittleEndian.PutUint32(b[36:], crc32.Checksum(b[0:36], castagnoli))
}

func TestManifestRoundTripAndValidation(t *testing.T) {
	dir := t.TempDir()
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("missing manifest did not error")
	}
	m := &Manifest{
		FormatVersion: FormatVersion,
		Shards:        2,
		Items:         100,
		Bands:         4,
		Rows:          2,
		Seed:          Hex64(7),
		Partitioner:   "range",
		Fingerprint:   Hex64(42),
		PermHash:      Hex64(0),
		ShardFiles:    []string{"shard-0.lshz", "shard-1.lshz"},
		ShardInserted: []int{50, 50},
	}
	if err := WriteManifest(dir, m); err != nil {
		t.Fatal(err)
	}
	st, err := os.Stat(filepath.Join(dir, ManifestName))
	if err != nil {
		t.Fatal(err)
	}
	if perm := st.Mode().Perm(); perm != 0o644 {
		t.Fatalf("manifest mode %o, want 644", perm)
	}
	got, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seed != m.Seed || got.Shards != 2 || got.Fingerprint != Hex64(42) {
		t.Fatalf("manifest round trip mismatch: %+v", got)
	}

	for name, mut := range map[string]func(*Manifest){
		"version":     func(m *Manifest) { m.FormatVersion = FormatVersion + 1 },
		"shard-files": func(m *Manifest) { m.ShardFiles = m.ShardFiles[:1] },
		"inserted":    func(m *Manifest) { m.ShardInserted = nil },
	} {
		t.Run(name, func(t *testing.T) {
			bad := *m
			bad.ShardFiles = append([]string(nil), m.ShardFiles...)
			bad.ShardInserted = append([]int(nil), m.ShardInserted...)
			mut(&bad)
			dir2 := t.TempDir()
			if err := WriteManifest(dir2, &bad); err != nil {
				t.Fatal(err)
			}
			if _, err := ReadManifest(dir2); err == nil {
				t.Fatal("inconsistent manifest accepted")
			}
		})
	}

	if err := os.WriteFile(filepath.Join(dir, ManifestName), []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(dir); err == nil {
		t.Fatal("unparsable manifest accepted")
	}
}
