//go:build !unix

package persist

import (
	"fmt"
	"os"
)

// MmapSupported reports whether this build can memory-map shard files.
const MmapSupported = false

const (
	adviceRandom   = 0
	adviceDontNeed = 0
	adviceWillNeed = 0
)

func mmapFile(*os.File, int64) ([]byte, error) {
	return nil, fmt.Errorf("memory mapping is not supported on this platform")
}

func munmapFile([]byte) error { return nil }

func madvise([]byte, int) {}
