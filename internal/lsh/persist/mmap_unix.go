//go:build unix

package persist

import (
	"os"
	"syscall"
)

// MmapSupported reports whether this build can memory-map shard files.
// When false, callers fall back to the heap Load path, which is always
// available.
const MmapSupported = true

const (
	adviceRandom   = syscall.MADV_RANDOM
	adviceDontNeed = syscall.MADV_DONTNEED
	adviceWillNeed = syscall.MADV_WILLNEED
)

func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func munmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}

// madvise applies the access-pattern hint; failures are deliberately
// ignored — advice is an optimisation, never a correctness dependency.
func madvise(data []byte, advice int) {
	_ = syscall.Madvise(data, advice)
}
