// Package persist is the versioned, checksummed on-disk format for
// frozen LSH shards (ROADMAP open item 2: persistent shard storage and
// mmap'd zero-copy loading).
//
// A shard file (<dir>/shard-<i>.lshz) is a fixed 64-byte header, a
// section table, and the sections themselves, each padded to a 64-byte
// boundary:
//
//	header   magic "LSHZIDX\x00" · format version · native byte-order
//	         marker · section count · file size · table CRC · header CRC
//	table    one 40-byte entry per section: id, element size, element
//	         count, absolute offset, byte length, section CRC
//	sections raw little-ended slice memory, 64-byte aligned
//
// Sections carry the frozen arrays exactly as they sit in memory
// (offsets/items/slots/keys/key-table entries/bandStart, plus the
// optional foreign-slot, foreign-emptiness and reorder-permutation
// arrays), so a mapped section is directly usable as the existing
// slice field: LoadMmap aliases the mapping with zero copies, while
// Load reads the same bytes into heap memory — the portable oracle the
// equivalence tests pin the mmap path against. Every integrity check
// is an error, never a panic: bad magic, wrong version, foreign byte
// order, truncation (stored size ≠ actual size), table corruption and
// per-section CRC32-C mismatches all reject the file before any data
// is handed out, so a crashed or corrupted save can never be partially
// loaded.
//
// Alongside the shard files sits manifest.json (written last, after
// every shard file has been renamed into place, so a directory with a
// manifest is complete by construction). The manifest captures the
// build configuration — shard count, banding parameters, signing seed,
// item count, partitioner, reorder permutation hash, dataset
// fingerprint — and loading verifies every field against the caller's
// expectation: a stale index is rejected with an error, never silently
// reused.
package persist

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"unsafe"
)

// FormatVersion is the on-disk format revision. Readers reject any
// other version.
const FormatVersion = 1

const (
	magic       = "LSHZIDX\x00"
	headerSize  = 64
	entrySize   = 40
	sectionAlig = 64
	// orderMark is stored as raw native memory; a reader on a machine
	// with a different byte order sees it scrambled and rejects the file
	// (sections are raw slice memory, meaningless cross-endian).
	orderMark uint32 = 0x01020304
)

// filePerm is the mode saved artifacts are created with:
// world-readable index files, like any other build product.
const filePerm = 0o644

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SectionID identifies one array within a shard file. IDs are assigned
// by the caller (internal/lsh owns the shard layout) and must be
// unique within a file.
type SectionID uint32

// Section is one array scheduled for writing: Data holds the raw slice
// memory, ElemSize the element width it will be reinterpreted at on
// load (View checks it).
type Section struct {
	ID       SectionID
	ElemSize int
	Data     []byte
}

type sectionInfo struct {
	elemSize int
	off      int64
	length   int64
}

// nativeOrderBytes returns orderMark as it lies in this machine's
// memory.
func nativeOrderBytes() [4]byte {
	var b [4]byte
	*(*uint32)(unsafe.Pointer(&b[0])) = orderMark
	return b
}

func align64(n int64) int64 { return (n + sectionAlig - 1) &^ (sectionAlig - 1) }

// WriteFile writes sections to path atomically: the file is assembled
// under a temporary name in the same directory and renamed into place,
// so a crash mid-save never leaves a loadable half-file. Files are
// created 0644.
func WriteFile(path string, sections []Section) (err error) {
	dir, base := filepath.Split(path)
	if dir == "" {
		dir = "."
	}
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: creating %s: %w", path, err)
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()

	// Layout first: section offsets are known before any data is
	// written, so the body streams in one pass and only the header and
	// table are patched afterwards.
	tableLen := int64(len(sections)) * entrySize
	off := align64(headerSize + tableLen)
	table := make([]byte, tableLen)
	seen := make(map[SectionID]bool, len(sections))
	for i, s := range sections {
		if s.ElemSize <= 0 || len(s.Data)%s.ElemSize != 0 {
			return fmt.Errorf("persist: section %d has %d bytes, element size %d", s.ID, len(s.Data), s.ElemSize)
		}
		if seen[s.ID] {
			return fmt.Errorf("persist: duplicate section id %d", s.ID)
		}
		seen[s.ID] = true
		e := table[i*entrySize:]
		binary.LittleEndian.PutUint32(e[0:], uint32(s.ID))
		binary.LittleEndian.PutUint32(e[4:], uint32(s.ElemSize))
		binary.LittleEndian.PutUint64(e[8:], uint64(len(s.Data)/s.ElemSize))
		binary.LittleEndian.PutUint64(e[16:], uint64(off))
		binary.LittleEndian.PutUint64(e[24:], uint64(len(s.Data)))
		binary.LittleEndian.PutUint32(e[32:], crc32.Checksum(s.Data, castagnoli))
		off = align64(off + int64(len(s.Data)))
	}
	fileSize := off

	var hdr [headerSize]byte
	copy(hdr[0:8], magic)
	binary.LittleEndian.PutUint32(hdr[8:], FormatVersion)
	om := nativeOrderBytes()
	copy(hdr[12:16], om[:])
	binary.LittleEndian.PutUint32(hdr[16:], uint32(len(sections)))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(fileSize))
	binary.LittleEndian.PutUint32(hdr[32:], crc32.Checksum(table, castagnoli))
	binary.LittleEndian.PutUint32(hdr[36:], crc32.Checksum(hdr[0:36], castagnoli))

	if _, err = tmp.Write(hdr[:]); err != nil {
		return fmt.Errorf("persist: writing %s: %w", path, err)
	}
	if _, err = tmp.Write(table); err != nil {
		return fmt.Errorf("persist: writing %s: %w", path, err)
	}
	pos := headerSize + tableLen
	var pad [sectionAlig]byte
	for _, s := range sections {
		if n := align64(pos) - pos; n > 0 {
			if _, err = tmp.Write(pad[:n]); err != nil {
				return fmt.Errorf("persist: writing %s: %w", path, err)
			}
			pos += n
		}
		if _, err = tmp.Write(s.Data); err != nil {
			return fmt.Errorf("persist: writing %s: %w", path, err)
		}
		pos += int64(len(s.Data))
	}
	if n := align64(pos) - pos; n > 0 {
		if _, err = tmp.Write(pad[:n]); err != nil {
			return fmt.Errorf("persist: writing %s: %w", path, err)
		}
	}
	if err = tmp.Chmod(filePerm); err != nil {
		return fmt.Errorf("persist: chmod %s: %w", path, err)
	}
	if err = tmp.Close(); err != nil {
		return fmt.Errorf("persist: closing %s: %w", path, err)
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: renaming %s: %w", path, err)
	}
	return nil
}

// File is one opened shard file: either a heap copy (Load, the
// portable oracle) or a read-only memory mapping (LoadMmap) of the
// whole file, with sections resolved to subslices. Section data must
// be treated as immutable; the mmap path enforces it (PROT_READ — a
// stray write faults loudly instead of corrupting the index).
type File struct {
	path     string
	data     []byte
	mapped   bool
	sections map[SectionID]sectionInfo
}

// Open reads and fully verifies the file at path. With useMmap the
// file contents are memory-mapped read-only and section slices alias
// the mapping (zero-copy); otherwise the bytes are copied to the heap.
// Verification — magic, version, byte order, size, table and
// per-section CRC32-C — always runs in full, so a corrupted file is
// rejected here and never partially observed.
func Open(path string, useMmap bool) (*File, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	defer fh.Close()
	st, err := fh.Stat()
	if err != nil {
		return nil, fmt.Errorf("persist: %s: %w", path, err)
	}
	size := st.Size()
	if size < headerSize {
		return nil, fmt.Errorf("persist: %s: truncated (%d bytes, header needs %d)", path, size, headerSize)
	}
	var data []byte
	mapped := false
	if useMmap {
		data, err = mmapFile(fh, size)
		if err != nil {
			return nil, fmt.Errorf("persist: mmap %s: %w", path, err)
		}
		mapped = true
	} else {
		// Back the heap copy with a uint64 slice so every 64-byte-aligned
		// section offset lands on at least 8-byte-aligned memory — the
		// alignment View's reinterpret casts require. A plain []byte
		// carries no alignment guarantee.
		words := make([]uint64, (size+7)/8)
		data = unsafe.Slice((*byte)(unsafe.Pointer(&words[0])), size)
		if _, err := fh.ReadAt(data, 0); err != nil {
			return nil, fmt.Errorf("persist: reading %s: %w", path, err)
		}
	}
	f := &File{path: path, data: data, mapped: mapped}
	if err := f.verify(size); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

func (f *File) verify(size int64) error {
	hdr := f.data[:headerSize]
	if string(hdr[0:8]) != magic {
		return fmt.Errorf("persist: %s: bad magic %q", f.path, hdr[0:8])
	}
	if got := binary.LittleEndian.Uint32(hdr[36:]); got != crc32.Checksum(hdr[0:36], castagnoli) {
		return fmt.Errorf("persist: %s: header checksum mismatch", f.path)
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != FormatVersion {
		return fmt.Errorf("persist: %s: format version %d, this build reads %d", f.path, v, FormatVersion)
	}
	om := nativeOrderBytes()
	if [4]byte(hdr[12:16]) != om {
		return fmt.Errorf("persist: %s: foreign byte order", f.path)
	}
	if stored := binary.LittleEndian.Uint64(hdr[24:]); stored != uint64(size) {
		return fmt.Errorf("persist: %s: truncated (%d of %d bytes)", f.path, size, stored)
	}
	count := int64(binary.LittleEndian.Uint32(hdr[16:]))
	tableEnd := headerSize + count*entrySize
	if tableEnd > size {
		return fmt.Errorf("persist: %s: section table exceeds file", f.path)
	}
	table := f.data[headerSize:tableEnd]
	if got := binary.LittleEndian.Uint32(hdr[32:]); got != crc32.Checksum(table, castagnoli) {
		return fmt.Errorf("persist: %s: section table checksum mismatch", f.path)
	}
	f.sections = make(map[SectionID]sectionInfo, count)
	for i := int64(0); i < count; i++ {
		e := table[i*entrySize:]
		id := SectionID(binary.LittleEndian.Uint32(e[0:]))
		elem := int64(binary.LittleEndian.Uint32(e[4:]))
		n := binary.LittleEndian.Uint64(e[8:])
		off := binary.LittleEndian.Uint64(e[16:])
		length := binary.LittleEndian.Uint64(e[24:])
		crc := binary.LittleEndian.Uint32(e[32:])
		if elem <= 0 || length != n*uint64(elem) {
			return fmt.Errorf("persist: %s: section %d: inconsistent geometry", f.path, id)
		}
		if off%sectionAlig != 0 || off > uint64(size) || length > uint64(size)-off {
			return fmt.Errorf("persist: %s: section %d: out of bounds", f.path, id)
		}
		if _, dup := f.sections[id]; dup {
			return fmt.Errorf("persist: %s: duplicate section id %d", f.path, id)
		}
		body := f.data[off : off+length]
		if crc32.Checksum(body, castagnoli) != crc {
			return fmt.Errorf("persist: %s: section %d: checksum mismatch", f.path, id)
		}
		f.sections[id] = sectionInfo{elemSize: int(elem), off: int64(off), length: int64(length)}
	}
	return nil
}

// Mapped reports whether the file is memory-mapped (LoadMmap) rather
// than heap-copied.
func (f *File) Mapped() bool { return f.mapped }

// Size returns the total byte size of the backing data.
func (f *File) Size() int64 { return int64(len(f.data)) }

// Has reports whether a section with the given id is present.
func (f *File) Has(id SectionID) bool {
	_, ok := f.sections[id]
	return ok
}

// View reinterprets section id as a []T aliasing the file's backing
// memory (the mapping for mmap'd files, the heap copy otherwise). The
// stored element size must match T exactly.
func View[T any](f *File, id SectionID) ([]T, error) {
	info, ok := f.sections[id]
	if !ok {
		return nil, fmt.Errorf("persist: %s: missing section %d", f.path, id)
	}
	var t T
	if sz := int(unsafe.Sizeof(t)); sz != info.elemSize {
		return nil, fmt.Errorf("persist: %s: section %d holds %d-byte elements, want %d", f.path, id, info.elemSize, int(unsafe.Sizeof(t)))
	}
	if info.length == 0 {
		return []T{}, nil
	}
	return unsafe.Slice((*T)(unsafe.Pointer(&f.data[info.off])), info.length/int64(info.elemSize)), nil
}

// AdviseRandom declares random access on a section (madvise
// MADV_RANDOM) — applied to the open-addressed key tables, whose probe
// pattern defeats readahead. No-op on heap copies and non-unix builds.
func (f *File) AdviseRandom(id SectionID) {
	if !f.mapped {
		return
	}
	if info, ok := f.sections[id]; ok && info.length > 0 {
		madvise(f.data[info.off:info.off+info.length], adviceRandom)
	}
}

// Demote tells the kernel the whole mapping's pages are not needed
// (madvise MADV_DONTNEED): resident memory drops to ~0 and later
// accesses fault pages back in from disk — the shard looks slow, not
// absent. No-op on heap copies.
func (f *File) Demote() {
	if f.mapped && len(f.data) > 0 {
		madvise(f.data, adviceDontNeed)
	}
}

// Promote asks the kernel to read the mapping back in (madvise
// MADV_WILLNEED). No-op on heap copies.
func (f *File) Promote() {
	if f.mapped && len(f.data) > 0 {
		madvise(f.data, adviceWillNeed)
	}
}

// Close releases the mapping (or the heap copy). Any slice returned by
// View is invalid afterwards; the caller must guarantee no concurrent
// readers remain.
func (f *File) Close() error {
	data := f.data
	f.data = nil
	f.sections = nil
	if f.mapped && data != nil {
		f.mapped = false
		if err := munmapFile(data); err != nil {
			return fmt.Errorf("persist: munmap %s: %w", f.path, err)
		}
	}
	return nil
}

// ManifestName is the index manifest's file name within a saved index
// directory.
const ManifestName = "manifest.json"

// Manifest records the configuration a saved index directory was built
// under. Every field is verified on load against the opener's
// expectation; any mismatch rejects the directory as stale. Seed,
// PermHash and Fingerprint are hex strings because JSON numbers cannot
// carry a full uint64.
type Manifest struct {
	FormatVersion int      `json:"format_version"`
	Shards        int      `json:"shards"`
	Items         int      `json:"items"`
	Bands         int      `json:"bands"`
	Rows          int      `json:"rows"`
	Seed          string   `json:"seed"`
	Partitioner   string   `json:"partitioner"`
	Reordered     bool     `json:"reordered"`
	PermHash      string   `json:"perm_hash"`
	Fingerprint   string   `json:"dataset_fingerprint"`
	ForeignBytes  int64    `json:"foreign_bytes"`
	ShardFiles    []string `json:"shard_files"`
	ShardInserted []int    `json:"shard_inserted"`
}

// Hex64 formats a uint64 for a manifest field.
func Hex64(v uint64) string { return fmt.Sprintf("%016x", v) }

// WriteManifest writes the manifest atomically into dir. It must be
// called last: a directory without a manifest is treated as absent, so
// a save that crashes before this point leaves nothing loadable.
func WriteManifest(dir string, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("persist: encoding manifest: %w", err)
	}
	data = append(data, '\n')
	tmp, err := os.CreateTemp(dir, ManifestName+".tmp*")
	if err != nil {
		return fmt.Errorf("persist: creating manifest: %w", err)
	}
	path := filepath.Join(dir, ManifestName)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: writing manifest: %w", err)
	}
	if err := tmp.Chmod(filePerm); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: chmod manifest: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: closing manifest: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("persist: renaming manifest: %w", err)
	}
	return nil
}

// ReadManifest reads dir's manifest. A missing manifest returns
// os.ErrNotExist (wrapped): the directory holds no loadable index.
func ReadManifest(dir string) (*Manifest, error) {
	data, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("persist: decoding manifest: %w", err)
	}
	if m.FormatVersion != FormatVersion {
		return nil, fmt.Errorf("persist: manifest format version %d, this build reads %d", m.FormatVersion, FormatVersion)
	}
	if m.Shards < 1 || len(m.ShardFiles) != m.Shards || len(m.ShardInserted) != m.Shards {
		return nil, fmt.Errorf("persist: manifest inconsistent: %d shards, %d files", m.Shards, len(m.ShardFiles))
	}
	return &m, nil
}
