package lsh

import (
	"fmt"
	"reflect"
	"testing"
)

// buildReordered builds a sharded index over sets with locality
// reordering enabled, returning it and the SignAll arena used.
func buildReordered(t *testing.T, p Params, seed uint64, sets [][]uint64, shards, workers int) (*Sharded, []uint64) {
	t.Helper()
	sh, err := NewSharded(p, seed, len(sets), shards)
	if err != nil {
		t.Fatal(err)
	}
	keys := signKeysFor(sh, sets, workers)
	sh.SetReorder(true)
	if err := sh.BuildFrozen(keys, len(sets), workers); err != nil {
		t.Fatal(err)
	}
	return sh, keys
}

// TestReorderMapBijection pins the permutation's shape: perm and inv
// are inverse bijections over [0, n), within each band-0 bucket
// internal order preserves ascending original order (the property
// reorderBucketItems' band-0 skip relies on), and items sharing any
// small bucket land in the same contiguous component run.
func TestReorderMapBijection(t *testing.T) {
	const n = 250
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 51)
	sh, keys := buildReordered(t, p, 7, sets, 3, 2)
	perm, inv := sh.ReorderMap()
	if len(perm) != n || len(inv) != n {
		t.Fatalf("perm/inv lengths %d/%d, want %d", len(perm), len(inv), n)
	}
	for i := 0; i < n; i++ {
		if perm[inv[i]] != int32(i) || inv[perm[i]] != int32(i) {
			t.Fatalf("perm/inv not inverse at %d: perm[inv[%d]]=%d inv[perm[%d]]=%d",
				i, i, perm[inv[i]], i, inv[perm[i]])
		}
	}
	// Within a band-0 bucket, ascending original implies ascending
	// internal — the exact invariant that lets reorderBucketItems skip
	// re-scattering band 0.
	group := map[uint64][]int32{}
	for i := 0; i < n; i++ {
		k := keys[i*p.Bands]
		group[k] = append(group[k], perm[int32(i)])
	}
	for k, ids := range group {
		for j := 1; j < len(ids); j++ {
			if ids[j] <= ids[j-1] {
				t.Fatalf("band-0 key %#x: internal IDs %v not ascending with original order", k, ids)
			}
		}
	}
	// Collision-connected components are contiguous internal runs:
	// recompute the (uncapped — n is far below maxUnionBucket) closure
	// and check each component occupies exactly [min, min+size) in
	// internal space.
	root := make([]int, n)
	for i := range root {
		root[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		if root[x] != x {
			root[x] = find(root[x])
		}
		return root[x]
	}
	for b := 0; b < p.Bands; b++ {
		first := map[uint64]int{}
		for i := 0; i < n; i++ {
			k := keys[i*p.Bands+b]
			if f, ok := first[k]; ok {
				ra, rb := find(f), find(i)
				if ra != rb {
					root[rb] = ra
				}
			} else {
				first[k] = i
			}
		}
	}
	comp := map[int][]int32{}
	for i := 0; i < n; i++ {
		r := find(i)
		comp[r] = append(comp[r], perm[i])
	}
	for r, ids := range comp {
		lo, hi := ids[0], ids[0]
		for _, id := range ids {
			lo, hi = min(lo, id), max(hi, id)
		}
		if int(hi-lo)+1 != len(ids) {
			t.Fatalf("component of %d: internal IDs span [%d,%d] for %d items — not contiguous", r, lo, hi, len(ids))
		}
	}
	if sh.ReorderTime() <= 0 {
		t.Fatal("reordered build recorded no reorder time")
	}
}

// TestReorderedQueriesMatchSingle is the reorder analogue of
// TestShardedQueriesMatchSingle: on a reordered index every query path
// emits *internal* IDs, and mapping each through inv must reproduce
// the unsharded, unreordered oracle's candidate stream exactly — same
// items, same enumeration order — for every shard count, proving the
// ascending-original emission contract.
func TestReorderedQueriesMatchSingle(t *testing.T) {
	const n = 260
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 21)
	ref := singleReference(t, p, 7, sets, true)
	refKeys := signKeysFor(&Sharded{params: p, shards: []*Index{ref}, single: ref}, sets, 1)
	for _, shards := range []int{1, 2, 3, 4} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("s=%d/w=%d", shards, workers), func(t *testing.T) {
				sh, err := NewSharded(p, 7, n, shards)
				if err != nil {
					t.Fatal(err)
				}
				sh.SetReorder(true)
				if err := sh.BuildFrozen(refKeys, n, workers); err != nil {
					t.Fatal(err)
				}
				_, inv := sh.ReorderMap()
				if inv == nil {
					t.Fatal("range BuildFrozen with SetReorder(true) did not reorder")
				}
				toOrig := func(ids []int32) []int32 {
					out := make([]int32, len(ids))
					for i, id := range ids {
						out[i] = inv[id]
					}
					return out
				}
				q := sh.NewQuery()
				for i := 0; i < n; i++ {
					want := collectCandidates(ref, int32(i))
					got := toOrig(collectQueryCandidates(q, int32(i)))
					if !reflect.DeepEqual(want, got) {
						t.Fatalf("item %d candidates: want %v, got %v", i, want, got)
					}
				}
				// Unknown items stay silent.
				if got := collectQueryCandidates(q, int32(n+5)); got != nil {
					t.Fatalf("out-of-range item returned %v", got)
				}
				// Batched block sweep.
				for _, blockLen := range []int{1, 7, 64} {
					for lo := 0; lo < n; lo += blockLen {
						hi := min(lo+blockLen, n)
						blk := make([]int32, 0, hi-lo)
						for i := lo; i < hi; i++ {
							blk = append(blk, int32(i))
						}
						got := make([][]int32, len(blk))
						q.CandidatesBatch(blk, func(pos int, bucket []int32) {
							got[pos] = append(got[pos], bucket...)
						})
						for pos, item := range blk {
							want := collectCandidates(ref, item)
							if !reflect.DeepEqual(want, toOrig(got[pos])) {
								t.Fatalf("block item %d: want %v, got %v", item, want, toOrig(got[pos]))
							}
						}
					}
				}
				// Out-of-index key queries emit internal IDs too.
				keys := refKeys[:p.Bands] // item 0's keys
				var wantK, gotK []int32
				ref.CandidatesOfKeys(keys, func(o int32) { wantK = append(wantK, o) })
				q.CandidatesOfKeys(keys, func(o int32) { gotK = append(gotK, o) })
				if !reflect.DeepEqual(wantK, toOrig(gotK)) {
					t.Fatalf("of-keys: want %v, got %v", wantK, toOrig(gotK))
				}
				// ItemKeysOf answers for original IDs.
				buf := make([]uint64, p.Bands)
				if !sh.ItemKeysOf(0, buf) {
					t.Fatal("ItemKeysOf(0) failed on reordered index")
				}
				if !reflect.DeepEqual(buf, refKeys[:p.Bands]) {
					t.Fatalf("ItemKeysOf(0) = %v, want %v", buf, refKeys[:p.Bands])
				}
				if shards > 1 {
					local, foreign := sh.FanOutLocality()
					if local <= 0 {
						t.Fatalf("no shard-local candidates counted (local=%d foreign=%d)", local, foreign)
					}
				}
			})
		}
	}
}

// TestReorderedReverseMatchesSingle pins the reverse-view boundary:
// sources are original IDs in, emitted items are original IDs out, and
// the emitted set equals the unreordered oracle's.
func TestReorderedReverseMatchesSingle(t *testing.T) {
	const n = 220
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 17)
	ref := singleReference(t, p, 7, sets, true)
	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("s=%d", shards), func(t *testing.T) {
			sh, _ := buildReordered(t, p, 7, sets, shards, 2)
			rv := sh.NewReverse()
			if rv == nil {
				t.Fatal("NewReverse returned nil on a reordered index")
			}
			refRv := ref.NewReverse()
			for _, sources := range [][]int32{{0}, {3, 77, 150}, {n - 1, 0, 42}} {
				want := map[int32]bool{}
				got := map[int32]bool{}
				for _, s := range sources {
					refRv.AddSource(s)
					rv.AddSource(s)
				}
				refRv.Emit(func(it int32) bool { want[it] = true; return true })
				rv.Emit(func(it int32) bool { got[it] = true; return true })
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("sources %v: want %d items, got %d (sets differ)", sources, len(want), len(got))
				}
			}
		})
	}
}

// TestReorderInertLayouts pins the layouts that must never reorder
// even with SetReorder(true): stride partitions (streaming) and the
// map-built Insert/Freeze path.
func TestReorderInertLayouts(t *testing.T) {
	const n = 120
	p := Params{Bands: 4, Rows: 2}
	sets := testSets(n, 9)
	st, err := NewShardedStream(p, 7, 3, n)
	if err != nil {
		t.Fatal(err)
	}
	st.SetReorder(true)
	for i, s := range sets {
		if err := st.Insert(int32(i), s); err != nil {
			t.Fatal(err)
		}
	}
	st.Freeze()
	if perm, _ := st.ReorderMap(); perm != nil {
		t.Fatal("stride index reordered")
	}
	sh, err := NewSharded(p, 7, n, 3)
	if err != nil {
		t.Fatal(err)
	}
	sh.SetReorder(true)
	for i, s := range sets {
		if err := sh.Insert(int32(i), s); err != nil {
			t.Fatal(err)
		}
	}
	sh.Freeze()
	if perm, _ := sh.ReorderMap(); perm != nil {
		t.Fatal("map-built index reordered")
	}
}

// TestStrideBatchBlockMerge is the satellite equivalence test: on
// stride-partitioned (streaming) shards, the batched block sweep must
// reproduce the per-item S-way merge exactly — same items, same order —
// for every block size, now that CandidatesBatch runs its own
// band-major run merge instead of falling back to per-item queries.
func TestStrideBatchBlockMerge(t *testing.T) {
	const n = 240
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 33)
	ref := singleReference(t, p, 7, sets, false)
	for _, frozen := range []bool{false, true} {
		for _, shards := range []int{2, 3, 4} {
			t.Run(fmt.Sprintf("frozen=%v/s=%d", frozen, shards), func(t *testing.T) {
				st, err := NewShardedStream(p, 7, shards, n)
				if err != nil {
					t.Fatal(err)
				}
				for i, s := range sets {
					if err := st.Insert(int32(i), s); err != nil {
						t.Fatal(err)
					}
				}
				if frozen {
					st.Freeze()
				}
				q := st.NewQuery()
				for _, blockLen := range []int{1, 5, 64, 129} {
					for lo := 0; lo < n; lo += blockLen {
						hi := min(lo+blockLen, n)
						blk := make([]int32, 0, hi-lo)
						for i := lo; i < hi; i++ {
							blk = append(blk, int32(i))
						}
						got := make([][]int32, len(blk))
						q.CandidatesBatch(blk, func(pos int, bucket []int32) {
							got[pos] = append(got[pos], bucket...)
						})
						for pos, item := range blk {
							want := collectCandidates(ref, item)
							if !reflect.DeepEqual(want, got[pos]) {
								t.Fatalf("block item %d: want %v, got %v", item, want, got[pos])
							}
						}
					}
				}
				// Blocks containing uninserted items skip them silently.
				q.CandidatesBatch([]int32{3, int32(n + 9)}, func(pos int, bucket []int32) {
					if pos != 0 {
						t.Fatalf("uninserted item produced a bucket at pos %d", pos)
					}
				})
			})
		}
	}
}
