package lsh

// Locality-preserving item reordering. Range-sharded batch builds can
// permute items before shard construction so that items sharing band
// buckets become contiguous: the permutation lays every collision-
// connected component — the transitive closure of "shares a bucket in
// some band", size-capped so junk buckets don't weld the dataset into
// one component (deriveReorder) — out as one contiguous internal-ID
// run, the SignAll arena is permuted once, and the range partitioner
// then cuts shards over the *permuted* order. A query's candidates are
// its co-colliders, i.e. its own component, so collisions concentrate
// in the owning shard — most foreign-slot spans come back empty and a
// fan-out degenerates to a single owner-bucket scan — and the
// per-candidate assignment reads of a shortlist sweep stay
// cache-resident instead of striding the whole assignment array.
//
// Two ID spaces coexist from then on (see internal/README.md, "ID
// spaces"):
//
//   - original IDs — the caller's item numbering. Everything outside
//     the index (assignments, datasets, runstats, CLI output) stays in
//     this space.
//   - internal IDs — the permuted numbering the shards, buckets,
//     foreign-slot spans and reverse marks are built over.
//
// perm[original] = internal and inv[internal] = original map between
// them at the index boundary: queries translate the item argument on
// the way in, candidate enumeration *emits internal IDs* (callers that
// index per-item state by candidate ID must use an internal-space view;
// core's driver mirrors its assignment array), and the reverse view
// translates emitted items back to original IDs. Every ordering
// contract is kept in *original* space: each bucket's items are stored
// in ascending original ID (reorderBucketItems), and cross-shard merges
// compare inv — so enumeration order, and therefore every order-
// dependent tie-break downstream, is bit-identical to the unreordered
// oracle (Options.DisableReorder in core).
//
// Reordering applies only to BuildFrozen on a range partition without
// attached backends; map-built (seeded), stride (streaming) and
// backend-routed indexes never reorder, and SetReorder is off by
// default so the frozen-layout identity tests keep pinning the direct
// build.

import (
	"slices"
	"time"

	"lshcluster/internal/par"
)

// SetReorder requests locality-preserving reordering for a subsequent
// BuildFrozen. It must be called before BuildFrozen; it has no effect
// on stride partitions or the map-built seeded path.
func (sh *Sharded) SetReorder(on bool) { sh.reorder = on }

// ReorderMap returns the active permutation pair — perm[original] =
// internal, inv[internal] = original — or (nil, nil) when the index is
// not reordered. The slices are owned by the index; callers must not
// modify them. A non-nil perm tells callers that candidate enumeration
// emits internal IDs.
func (sh *Sharded) ReorderMap() (perm, inv []int32) { return sh.perm, sh.inv }

// ReorderTime returns the wall time BuildFrozen spent deriving and
// applying the reorder permutation (zero when not reordered).
func (sh *Sharded) ReorderTime() time.Duration { return sh.reorderDur }

// FanOutLocality reports how many shortlist candidates the frozen
// range fan-out paths served from the query item's owning shard versus
// foreign shards — the shard_local_frac numerator/denominator runstats
// reports. Zero with a single shard (no fan-out exists) and on stride
// partitions. Per-item paths flush in small batches like MergeTime.
func (sh *Sharded) FanOutLocality() (local, foreign int64) {
	return sh.localCands.Load(), sh.foreignCands.Load()
}

// maxUnionBucket caps the bucket size that still glues its members
// into one locality component. Oversized buckets are junk keys — a
// degenerate band hashing thousands of unrelated items together — and
// a bucket that large spans every shard under any layout, so feeding
// it to the union would only weld the whole dataset into one giant
// component and destroy the locality the permutation exists to create.
// Band 0 is exempt: reorderBucketItems skips band 0 on the strength of
// every band-0 bucket living inside a single component (see
// deriveReorder), which capping would break.
const maxUnionBucket = 128

// deriveReorder computes the locality permutation from the flat band-
// key arena. Items that share any band bucket are collision-connected;
// the permutation lays each connected component out contiguously —
// union-find over every band's buckets (size-capped, see
// maxUnionBucket), components ordered by their smallest original
// member, items ascending by original ID within each component. A
// shortlist's candidates are the query item's co-colliders, i.e. its
// component (junk buckets aside), so after the range partitioner cuts
// shards over this order almost every candidate lives in the owning
// shard. Because band 0 is never capped, a band-0 bucket lies entirely
// inside one component, and the ascending-original layout within the
// component means internal order equals original order on any subset —
// the property reorderBucketItems exploits to skip band 0.
func deriveReorder(keys []uint64, n, bands int) (perm, inv []int32) {
	return deriveReorderCapped(keys, n, bands, maxUnionBucket)
}

func deriveReorderCapped(keys []uint64, n, bands, bucketCap int) (perm, inv []int32) {
	// Union-find with path halving; unions point the larger root at the
	// smaller, so the root is the component's smallest original ID and
	// the result is independent of union order.
	parent := make([]int32, n)
	for i := range parent {
		parent[i] = int32(i)
	}
	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	tbl := newBuildTable(n / bands)
	firsts := make([]int32, 0, n/4+1)
	sizes := make([]int32, 0, n/4+1)
	for b := 0; b < bands; b++ {
		if b > 0 {
			tbl.reset()
		}
		firsts, sizes = firsts[:0], sizes[:0]
		for item := 0; item < n; item++ {
			id, added := tbl.lookupOrAdd(keys[item*bands+b], int32(len(firsts)))
			if added {
				firsts = append(firsts, int32(item))
				sizes = append(sizes, 1)
				continue
			}
			if b > 0 && int(sizes[id]) >= bucketCap {
				continue
			}
			sizes[id]++
			ra, rb := find(firsts[id]), find(int32(item))
			if ra < rb {
				parent[rb] = ra
			} else if rb < ra {
				parent[ra] = rb
			}
		}
	}
	// Components in ascending-smallest-member order, ascending original
	// within each: because the root IS the smallest member, numbering
	// groups by first root sighting over an ascending item scan gives
	// exactly that order.
	groupIdx := make([]int32, n)
	for i := range groupIdx {
		groupIdx[i] = -1
	}
	groupOf := make([]int32, n)
	counts := make([]int32, 0, n/4+1)
	for item := 0; item < n; item++ {
		r := find(int32(item))
		g := groupIdx[r]
		if g < 0 {
			g = int32(len(counts))
			groupIdx[r] = g
			counts = append(counts, 0)
		}
		counts[g]++
		groupOf[item] = g
	}
	cursor := make([]int32, len(counts))
	next := int32(0)
	for g, c := range counts {
		cursor[g] = next
		next += c
	}
	perm = make([]int32, n)
	inv = make([]int32, n)
	for item := 0; item < n; item++ {
		j := cursor[groupOf[item]]
		cursor[groupOf[item]] = j + 1
		perm[item] = j
		inv[j] = int32(item)
	}
	return perm, inv
}

// permuteArena gathers the band-key arena into internal order:
// out[j·bands : (j+1)·bands] = keys[inv[j]·bands : …].
func permuteArena(keys []uint64, inv []int32, bands, workers int) []uint64 {
	out := make([]uint64, len(keys))
	par.Ranges(len(inv), workers, func(lo, hi int) {
		for j := lo; j < hi; j++ {
			src := int(inv[j]) * bands
			copy(out[j*bands:(j+1)*bands], keys[src:src+bands])
		}
	})
	return out
}

// reorderBucketItems rewrites every frozen bucket's items span from
// ascending internal ID (the build scatter order) to ascending
// *original* ID, restoring the unreordered index's per-bucket
// enumeration order. It is a counting re-scatter, not a sort: each
// shard's internal IDs are listed in ascending-original order (one
// linear pass over perm), then each band's buckets are refilled from
// that list through the existing slots array. Band 0 is skipped — a
// band-0 bucket is one group's contiguous internal run clipped to the
// shard, where internal order already equals original order.
func (sh *Sharded) reorderBucketItems(workers int) {
	n := len(sh.perm)
	nShards := len(sh.shards)
	orders := make([][]int32, nShards)
	for s := 0; s < nShards; s++ {
		lo, hi := sh.part.cuts[s], sh.part.cuts[s+1]
		orders[s] = make([]int32, 0, hi-lo)
	}
	if nShards == 1 {
		order := orders[0]
		for orig := 0; orig < n; orig++ {
			order = append(order, sh.perm[orig])
		}
		orders[0] = order
	} else {
		p := &sh.part
		for orig := 0; orig < n; orig++ {
			j := sh.perm[orig]
			t := int(((int64(j)+1)*int64(p.s) - 1) / int64(p.n))
			orders[t] = append(orders[t], j)
		}
	}
	bands := sh.params.Bands
	shardConc := workers
	if shardConc > nShards {
		shardConc = nShards
	}
	bandWorkers := workers / shardConc
	if bandWorkers < 1 {
		bandWorkers = 1
	}
	par.Ranges(nShards, shardConc, func(sLo, sHi int) {
		for s := sLo; s < sHi; s++ {
			fz := sh.shards[s].frozen
			cutLo := sh.part.cuts[s]
			order := orders[s]
			// Bands 1… refill in parallel; each worker owns a cursor
			// buffer sized for the widest band it sees.
			parallelBands(bands-1, bandWorkers, func(bandSeq func() (int, bool)) {
				var cursor []int32
				for {
					bs, ok := bandSeq()
					if !ok {
						return
					}
					b := bs + 1
					first, last := fz.bandStart[b], fz.bandStart[b+1]
					width := int(last - first)
					if cap(cursor) < width {
						cursor = make([]int32, width)
					}
					cur := cursor[:width]
					copy(cur, fz.offsets[first:last])
					for _, j := range order {
						slot := fz.slots[int(j-cutLo)*bands+b]
						c := cur[slot-first]
						fz.items[c] = j
						cur[slot-first] = c + 1
					}
				}
			})
		}
	})
}

// candidatesReordered is the reordered multi-shard per-item sweep:
// internal is the already-translated query item. Per band the owner
// bucket resolves through its freeze-time slot and foreign spans come
// from the foreign-slot arrays (key probes otherwise); spans merge by
// inv so candidates emit in ascending *original* order, exactly the
// oracle's enumeration — but as internal IDs.
func (q *Query) candidatesReordered(internal int32, fn func(other int32)) {
	sh := q.sh
	start := time.Now()
	s, local, ok := sh.part.locate(internal)
	if !ok {
		return
	}
	sh.touchShard(s)
	own := sh.shards[s].frozen
	bands := sh.params.Bands
	base := int(local) * bands
	nsh := len(sh.shards)
	fstride := 2 * (nsh - 1)
	for b := 0; b < bands; b++ {
		slot := own.slots[base+b]
		ownerBucket := own.items[own.offsets[slot]:own.offsets[slot+1]]
		if sh.foreign != nil && sh.foreignEmpty[s][slot>>6]&(1<<(slot&63)) != 0 {
			// Every foreign span is empty — the bucket is single-shard
			// (the overwhelming case after reordering), so skip the span
			// row and emit the owner bucket directly.
			q.pendingLocal += int64(len(ownerBucket))
			for _, g := range ownerBucket {
				fn(g)
			}
			continue
		}
		q.heads = q.heads[:0]
		foreignLen := 0
		if sh.foreign != nil {
			row := sh.foreign[s][int(slot)*fstride : int(slot)*fstride+fstride]
			ti := 0
			for t := 0; t < nsh; t++ {
				if t == s {
					q.heads = append(q.heads, mergeHead{bucket: ownerBucket})
					continue
				}
				lo, hi := row[2*ti], row[2*ti+1]
				ti++
				if hi > lo {
					q.heads = append(q.heads, mergeHead{bucket: sh.shards[t].frozen.items[lo:hi]})
					foreignLen += int(hi - lo)
				}
			}
		} else {
			key := own.keys[slot]
			for t, ix := range sh.shards {
				if t == s {
					q.heads = append(q.heads, mergeHead{bucket: ownerBucket})
					continue
				}
				if bucket := ix.lookupBucket(b, key); len(bucket) > 0 {
					q.heads = append(q.heads, mergeHead{bucket: bucket})
					foreignLen += len(bucket)
				}
			}
		}
		q.pendingLocal += int64(len(ownerBucket))
		q.pendingForeign += int64(foreignLen)
		if len(q.heads) == 1 {
			for _, g := range ownerBucket {
				fn(g)
			}
		} else {
			q.mergeEmitByInv(fn)
		}
	}
	cross := int64(bands) * int64(nsh-1)
	if sh.foreign != nil {
		q.pendingDirect += cross
	} else {
		q.pendingProbe += cross
	}
	q.addMergeNanos(time.Since(start).Nanoseconds())
}

// mergeEmitByInv drains q.heads in ascending *original* ID order:
// buckets hold internal IDs sorted by inv (reorderBucketItems), shards
// hold disjoint items, so a repeated min-head scan on inv reproduces
// the unreordered bucket order exactly.
func (q *Query) mergeEmitByInv(fn func(other int32)) {
	inv := q.sh.inv
	for len(q.heads) > 0 {
		minAt := 0
		minV := inv[q.heads[0].bucket[q.heads[0].next]]
		for h := 1; h < len(q.heads); h++ {
			if v := inv[q.heads[h].bucket[q.heads[h].next]]; v < minV {
				minAt, minV = h, v
			}
		}
		head := &q.heads[minAt]
		fn(head.bucket[head.next])
		head.next++
		if head.next == len(head.bucket) {
			last := len(q.heads) - 1
			q.heads[minAt] = q.heads[last]
			q.heads = q.heads[:last]
		}
	}
}

// mergeRunsByInv drains q.heads in ascending original order, emitting
// maximal single-shard runs as bucket sub-slices: the head with the
// smallest front inv advances until the next-smallest other head would
// overtake it, and that stretch is handed to fn in one call. With
// reordered shards most buckets collapse to one head before this is
// reached, and the rest are a few long runs — so the batch sweep keeps
// its whole-slice emission granularity.
func (q *Query) mergeRunsByInv(pos int, fn func(pos int, bucket []int32)) {
	inv := q.sh.inv
	for len(q.heads) > 0 {
		if len(q.heads) == 1 {
			h := &q.heads[0]
			fn(pos, h.bucket[h.next:])
			q.heads = q.heads[:0]
			return
		}
		minAt := 0
		minV := inv[q.heads[0].bucket[q.heads[0].next]]
		limit := int32((1 << 31) - 1)
		for h := 1; h < len(q.heads); h++ {
			v := inv[q.heads[h].bucket[q.heads[h].next]]
			if v < minV {
				limit = minV
				minV, minAt = v, h
			} else if v < limit {
				limit = v
			}
		}
		head := &q.heads[minAt]
		runStart := head.next
		for head.next < len(head.bucket) && inv[head.bucket[head.next]] < limit {
			head.next++
		}
		fn(pos, head.bucket[runStart:head.next])
		if head.next == len(head.bucket) {
			last := len(q.heads) - 1
			q.heads[minAt] = q.heads[last]
			q.heads = q.heads[:last]
		}
	}
}

// candidatesBatchReordered is the reordered block sweep: items are
// original IDs, translated on entry; buckets emit internal IDs in
// ascending-original merged order, as runs (mergeRunsByInv). The core
// cuts blocks in original-ID order, which the permutation scatters
// across the arena, so the sweep schedules positions by ascending
// *internal* ID (q.order): slot-row and bucket reads then walk the
// permuted arena forward, exactly the sequential access the direct
// fast path gets for free. Per-position emission is untouched — the
// band-major loop still hands every position its bands in order, so
// each position's candidate stream is bit-identical and only the
// cross-position interleaving (which block gatherers never observe)
// differs. The per-position cross-shard gather reads only the foreign
// row (or probes the key tables when spans are not materialised), so
// empty foreign spans — the overwhelming case after reordering — cost
// one cache line, not a bucket scan.
func (q *Query) candidatesBatchReordered(items []int32, fn func(pos int, bucket []int32)) {
	sh := q.sh
	perm := sh.perm
	n := len(items)
	if cap(q.order) < n {
		q.order = make([]int32, 0, n)
	}
	order := q.order[:0]
	for pos, it := range items {
		if it >= 0 && int(it) < len(perm) {
			order = append(order, int32(pos))
		}
	}
	slices.SortFunc(order, func(a, b int32) int {
		return int(perm[items[a]]) - int(perm[items[b]])
	})
	if sh.single != nil {
		// Single reordered shard: translate the scheduled block and
		// delegate — the one shard's buckets are already in
		// ascending-original order — remapping the callback's position
		// back through the schedule.
		if cap(q.locals) < n {
			q.locals = make([]int32, n)
		}
		tmp := q.locals[:len(order)]
		for j, pos := range order {
			tmp[j] = perm[items[pos]]
		}
		sh.single.CandidatesBatch(tmp, func(j int, bucket []int32) {
			fn(int(order[j]), bucket)
		})
		return
	}
	start := time.Now()
	if cap(q.owners) < n {
		q.owners = make([]int32, n)
		q.locals = make([]int32, n)
		q.keyBuf = make([]uint64, n)
		q.slotBuf = make([]int32, n)
	}
	owners, locals := q.owners[:n], q.locals[:n]
	lastTouched := -1
	for _, pos := range order {
		s, local, _ := sh.part.locate(perm[items[pos]])
		owners[pos], locals[pos] = int32(s), local
		if sh.resi != nil && s != lastTouched {
			// The schedule ascends in internal ID, so owners arrive in
			// runs: one residency touch per run, not per position.
			sh.touchShard(s)
			lastTouched = s
		}
	}
	valid := len(order)
	bands := sh.params.Bands
	nsh := len(sh.shards)
	fstride := 2 * (nsh - 1)
	slotBuf := q.slotBuf[:n]
	var localC, foreignC int64
	for b := 0; b < bands; b++ {
		// Sorted order groups positions by owning shard, so the slots
		// pointer hoists per run.
		for i := 0; i < len(order); {
			o := owners[order[i]]
			j := i
			for j < len(order) && owners[order[j]] == o {
				j++
			}
			slots := sh.shards[o].frozen.slots
			for ; i < j; i++ {
				pos := order[i]
				slotBuf[pos] = slots[int(locals[pos])*bands+b]
			}
		}
		for _, pos32 := range order {
			pos := int(pos32)
			o := owners[pos]
			slot := slotBuf[pos]
			own := sh.shards[o].frozen
			ownerBucket := own.items[own.offsets[slot]:own.offsets[slot+1]]
			if sh.foreign != nil && sh.foreignEmpty[o][slot>>6]&(1<<(slot&63)) != 0 {
				// Single-shard bucket (see candidatesReordered): one bit
				// read instead of the span row and merge-head setup.
				localC += int64(len(ownerBucket))
				fn(pos, ownerBucket)
				continue
			}
			q.heads = q.heads[:0]
			foreignLen := 0
			if sh.foreign != nil {
				row := sh.foreign[o][int(slot)*fstride : int(slot)*fstride+fstride]
				ti := 0
				for t := 0; t < nsh; t++ {
					if int32(t) == o {
						q.heads = append(q.heads, mergeHead{bucket: ownerBucket})
						continue
					}
					lo, hi := row[2*ti], row[2*ti+1]
					ti++
					if hi > lo {
						q.heads = append(q.heads, mergeHead{bucket: sh.shards[t].frozen.items[lo:hi]})
						foreignLen += int(hi - lo)
					}
				}
			} else {
				key := own.keys[slot]
				for t, ix := range sh.shards {
					if int32(t) == o {
						q.heads = append(q.heads, mergeHead{bucket: ownerBucket})
						continue
					}
					if bucket := ix.lookupBucket(b, key); len(bucket) > 0 {
						q.heads = append(q.heads, mergeHead{bucket: bucket})
						foreignLen += len(bucket)
					}
				}
			}
			localC += int64(len(ownerBucket))
			foreignC += int64(foreignLen)
			if len(q.heads) == 1 {
				fn(pos, ownerBucket)
			} else {
				q.mergeRunsByInv(pos, fn)
			}
		}
	}
	cross := int64(valid) * int64(bands) * int64(nsh-1)
	if sh.foreign != nil {
		sh.directOps.Add(cross)
	} else {
		sh.probeOps.Add(cross)
	}
	sh.localCands.Add(localC)
	sh.foreignCands.Add(foreignC)
	sh.mergeNanos.Add(time.Since(start).Nanoseconds())
}
