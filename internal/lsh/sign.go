package lsh

import "lshcluster/internal/par"

// Parallel block signing: the bootstrap's "single pass applying LSH to
// the dataset" (paper §III-B, Algorithm 2 lines 1–9) decomposed so the
// expensive half — computing every item's signature and band keys — is
// sharded across worker goroutines into a flat preallocated arena,
// while the cheap half (filing items under buckets) proceeds either
// serially on the map builder (InsertKeys, seeded bootstrap) or as a
// parallel direct-to-frozen build (BuildFrozen, full-scan bootstrap).

// SignFunc fills sig — a scratch slice of length Params.SignatureLen
// owned by the calling worker — with one item's signature. A SignFunc
// is used by a single worker goroutine at a time, but distinct
// SignFuncs from one factory run concurrently: any mutable state
// (value-set scratch, memo tables) must be private per SignFunc or
// safe for concurrent reads.
type SignFunc func(item int32, sig []uint64)

// signPollEvery is how many items a signing worker processes between
// stop checks — signing is the longest bootstrap phase, so this bounds
// cancellation latency within it.
const signPollEvery = 1024

// SignAll computes the band keys of items [0, n) into a flat arena
// indexed keys[item·Bands+band], sharding the items across workers
// goroutines (values < 2 sign serially). newSigner is invoked once per
// worker, from that worker's goroutine, to obtain a signing function
// with private scratch — no shared sigBuf anywhere on this path, so
// the pass is race-free by construction.
//
// stop, when non-nil, is polled by every worker each signPollEvery
// items; once it returns true the workers stop early and the returned
// arena is partially filled — callers must discard it (the clustering
// driver maps stop to context cancellation and aborts the run).
//
// The arena is exactly what Index.BuildFrozen and Index.InsertKeys
// consume; keys are identical to what Insert would compute for the
// same items, regardless of workers.
func SignAll(p Params, n, workers int, newSigner func() SignFunc, stop func() bool) []uint64 {
	keys := make([]uint64, n*p.Bands)
	par.Ranges(n, workers, func(lo, hi int) {
		sig := make([]uint64, p.SignatureLen())
		sign := newSigner()
		poll := 0
		for item := lo; item < hi; item++ {
			if stop != nil {
				if poll++; poll >= signPollEvery {
					poll = 0
					if stop() {
						return
					}
				}
			}
			sign(int32(item), sig)
			base := item * p.Bands
			for b := 0; b < p.Bands; b++ {
				keys[base+b] = bandKeyOf(p, sig, b)
			}
		}
	})
	return keys
}
