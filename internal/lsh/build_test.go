package lsh

import (
	"fmt"
	"reflect"
	"testing"
)

// setSigner signs sets[item] through the index's scheme — what the
// MinHash accelerator's SignAll does, minus dataset plumbing. Each
// SignFunc is stateless here; scheme signing is concurrency-safe.
func setSigner(ix *Index, sets [][]uint64) func() SignFunc {
	return func() SignFunc {
		return func(item int32, sig []uint64) {
			ix.Scheme().Sign(sets[item], sig)
		}
	}
}

// assertFrozenIdentical compares every frozen CSR array — offsets,
// items, slots and the per-band open-addressed key tables — byte for
// byte.
func assertFrozenIdentical(t *testing.T, want, got *Index) {
	t.Helper()
	fw, fg := want.frozen, got.frozen
	if fw == nil || fg == nil {
		t.Fatalf("frozen: want %v, got %v", fw != nil, fg != nil)
	}
	if !reflect.DeepEqual(fw.offsets, fg.offsets) {
		t.Fatalf("offsets differ:\nwant %v\ngot  %v", fw.offsets, fg.offsets)
	}
	if !reflect.DeepEqual(fw.items, fg.items) {
		t.Fatalf("items differ:\nwant %v\ngot  %v", fw.items, fg.items)
	}
	if !reflect.DeepEqual(fw.slots, fg.slots) {
		t.Fatalf("slots differ:\nwant %v\ngot  %v", fw.slots, fg.slots)
	}
	if !reflect.DeepEqual(fw.keys, fg.keys) {
		t.Fatalf("bucket keys differ:\nwant %v\ngot  %v", fw.keys, fg.keys)
	}
	if len(fw.tables) != len(fg.tables) {
		t.Fatalf("tables: want %d bands, got %d", len(fw.tables), len(fg.tables))
	}
	for b := range fw.tables {
		tw, tg := &fw.tables[b], &fg.tables[b]
		if tw.mask != tg.mask {
			t.Fatalf("band %d table mask: want %d, got %d", b, tw.mask, tg.mask)
		}
		if !reflect.DeepEqual(tw.entries, tg.entries) {
			t.Fatalf("band %d table entries differ", b)
		}
	}
}

// TestBuildFrozenMatchesInsertFreeze is the layout equivalence oracle:
// BuildFrozen over a presigned key arena must reproduce, byte for
// byte, the frozen arrays of inserting items 0…n−1 in ascending order
// and freezing — across banding shapes, sizes and worker counts.
func TestBuildFrozenMatchesInsertFreeze(t *testing.T) {
	for _, tc := range []struct{ bands, rows, n int }{
		{1, 1, 1},
		{4, 2, 17},
		{3, 7, 64},
		{8, 4, 100},
		{20, 5, 250},
	} {
		sets := testSets(tc.n, int64(tc.bands*1000+tc.rows))
		p := Params{Bands: tc.bands, Rows: tc.rows}
		ref := mustIndex(t, p, 7, tc.n)
		for i, s := range sets {
			if err := ref.Insert(int32(i), s); err != nil {
				t.Fatal(err)
			}
		}
		ref.Freeze()
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%db%dr/n=%d/w=%d", tc.bands, tc.rows, tc.n, workers), func(t *testing.T) {
				ix := mustIndex(t, p, 7, tc.n)
				keys := SignAll(p, tc.n, workers, setSigner(ix, sets), nil)
				if err := ix.BuildFrozen(keys, tc.n, workers); err != nil {
					t.Fatal(err)
				}
				assertFrozenIdentical(t, ref, ix)
				if ix.NumInserted() != tc.n {
					t.Fatalf("NumInserted = %d, want %d", ix.NumInserted(), tc.n)
				}
				if !ix.Frozen() {
					t.Fatal("index not frozen after BuildFrozen")
				}
			})
		}
	}
}

// TestInsertKeysMatchesInsert pins the seeded-bootstrap presigned
// path: filing items under SignAll keys (InsertKeys) must produce the
// same map build — and, after Freeze, the same frozen arrays — as
// signing inside Insert, even with an interleave that files seeds out
// of ascending order first.
func TestInsertKeysMatchesInsert(t *testing.T) {
	const n = 120
	p := Params{Bands: 6, Rows: 3}
	sets := testSets(n, 99)
	order := make([]int32, 0, n)
	for i := n / 2; i < n; i += 7 { // a few "seeds" first
		order = append(order, int32(i))
	}
	for i := 0; i < n; i++ {
		dup := false
		for _, o := range order {
			if o == int32(i) {
				dup = true
				break
			}
		}
		if !dup {
			order = append(order, int32(i))
		}
	}

	ref := mustIndex(t, p, 3, n)
	for _, i := range order {
		if err := ref.Insert(i, sets[i]); err != nil {
			t.Fatal(err)
		}
	}
	ref.Freeze()

	ix := mustIndex(t, p, 3, n)
	keys := SignAll(p, n, 4, setSigner(ix, sets), nil)
	for _, i := range order {
		if err := ix.InsertKeys(i, keys[int(i)*p.Bands:(int(i)+1)*p.Bands]); err != nil {
			t.Fatal(err)
		}
	}
	ix.Freeze()
	assertFrozenIdentical(t, ref, ix)
}

func TestBuildFrozenErrors(t *testing.T) {
	p := Params{Bands: 2, Rows: 2}
	sets := testSets(4, 1)
	ix := mustIndex(t, p, 1, 4)
	if err := ix.BuildFrozen(make([]uint64, 3), 4, 1); err == nil {
		t.Fatal("wrong arena length accepted")
	}
	if err := ix.Insert(0, sets[0]); err != nil {
		t.Fatal(err)
	}
	if err := ix.BuildFrozen(make([]uint64, 4*p.Bands), 4, 1); err == nil {
		t.Fatal("BuildFrozen on a non-empty index accepted")
	}

	ix2 := mustIndex(t, p, 1, 4)
	keys := SignAll(p, 4, 1, setSigner(ix2, sets), nil)
	if err := ix2.BuildFrozen(keys, 4, 1); err != nil {
		t.Fatal(err)
	}
	if err := ix2.BuildFrozen(keys, 4, 1); err == nil {
		t.Fatal("BuildFrozen on a frozen index accepted")
	}
	if err := ix2.InsertKeys(5, keys[:p.Bands]); err == nil {
		t.Fatal("InsertKeys on a frozen index accepted")
	}
}

// TestBuildFrozenQueries double-checks the built index behaves
// end-to-end: candidate enumeration, out-of-index key-table queries
// and the reverse view all work on a BuildFrozen index.
func TestBuildFrozenQueries(t *testing.T) {
	const n = 80
	p := Params{Bands: 6, Rows: 2}
	sets := testSets(n, 5)
	ref := mustIndex(t, p, 9, n)
	for i, s := range sets {
		if err := ref.Insert(int32(i), s); err != nil {
			t.Fatal(err)
		}
	}
	ix := mustIndex(t, p, 9, n)
	keys := SignAll(p, n, 2, setSigner(ix, sets), nil)
	if err := ix.BuildFrozen(keys, n, 2); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := collectCandidates(ref, int32(i))
		got := collectCandidates(ix, int32(i))
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("item %d candidates: want %v, got %v", i, want, got)
		}
	}
	for i := 0; i < n; i += 9 {
		want := collectOfSet(ref, sets[i])
		got := collectOfSet(ix, sets[i])
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("set %d of-set candidates: want %v, got %v", i, want, got)
		}
	}
	rv := ix.NewReverse()
	if rv == nil {
		t.Fatal("NewReverse returned nil on a BuildFrozen index")
	}
	rv.AddSource(0)
	seen := map[int32]bool{}
	rv.Emit(func(it int32) bool { seen[it] = true; return true })
	if !seen[0] {
		t.Fatal("reverse view missed the source item")
	}
}
