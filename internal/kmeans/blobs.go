package kmeans

import (
	"fmt"
	"math/rand"
)

// BlobsConfig describes a Gaussian-blob workload for the numeric
// extension's tests, examples and benches.
type BlobsConfig struct {
	// Points is the total number of points.
	Points int
	// Clusters is the number of blobs (and ground-truth classes).
	Clusters int
	// Dim is the dimensionality.
	Dim int
	// CenterBox is the half-width of the uniform cube blob centres are
	// drawn from. Zero defaults to 10.
	CenterBox float64
	// Spread is the per-coordinate standard deviation within a blob.
	// Zero defaults to 0.5.
	Spread float64
	// Seed makes generation deterministic.
	Seed int64
}

// GenerateBlobs returns row-major points and ground-truth labels
// (point i belongs to blob i mod Clusters, so every blob is non-empty and
// balanced).
func GenerateBlobs(cfg BlobsConfig) (points []float64, labels []int32, err error) {
	if cfg.Points < 1 || cfg.Clusters < 1 || cfg.Clusters > cfg.Points || cfg.Dim < 1 {
		return nil, nil, fmt.Errorf("kmeans: invalid blob config %+v", cfg)
	}
	if cfg.CenterBox == 0 {
		cfg.CenterBox = 10
	}
	if cfg.Spread == 0 {
		cfg.Spread = 0.5
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	centers := make([]float64, cfg.Clusters*cfg.Dim)
	for i := range centers {
		centers[i] = (rng.Float64()*2 - 1) * cfg.CenterBox
	}
	points = make([]float64, cfg.Points*cfg.Dim)
	labels = make([]int32, cfg.Points)
	for i := 0; i < cfg.Points; i++ {
		c := i % cfg.Clusters
		labels[i] = int32(c)
		for j := 0; j < cfg.Dim; j++ {
			points[i*cfg.Dim+j] = centers[c*cfg.Dim+j] + rng.NormFloat64()*cfg.Spread
		}
	}
	return points, labels, nil
}
