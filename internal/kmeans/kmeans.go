// Package kmeans implements Lloyd's K-Means over dense numeric vectors
// as a second instantiation of the acceleration framework — the paper's
// stated further work ("extending our framework to work with not only
// categorical data, but numeric data", §VI). It satisfies core.Space, so
// the same driver that runs K-Modes/MH-K-Modes runs K-Means exactly or
// accelerated with the SimHash accelerator of internal/simhash.
package kmeans

import (
	"fmt"
	"math/rand"

	"lshcluster/internal/kernel"
)

// EmptyClusterPolicy selects what happens to clusters that lose all
// members.
type EmptyClusterPolicy int

const (
	// KeepCentroid retains the previous centroid (default).
	KeepCentroid EmptyClusterPolicy = iota
	// ReseedRandomPoint re-centres on a random point.
	ReseedRandomPoint
)

// Config parameterises a Space.
type Config struct {
	// K is the number of clusters.
	K int
	// Seed drives seed-point selection and reseeding.
	Seed int64
	// EmptyCluster selects the empty-cluster policy.
	EmptyCluster EmptyClusterPolicy
}

// Space is a K-Means clustering space: n points of dimension dim with k
// mean centroids, using squared Euclidean distance.
type Space struct {
	data      []float64 // n·dim row-major
	dim       int
	k         int
	centroids []float64 // k·dim
	seeds     []int32
	policy    EmptyClusterPolicy
	rng       *rand.Rand
	sums      []float64
	counts    []int32

	// inc holds the incremental engine state (core.IncrementalSpace);
	// nil until BeginIncremental.
	inc *incremental

	// scalarKernels routes distance evaluations through the scalar
	// reference kernels instead of the unrolled ones — the oracle the
	// kernel equivalence runs compare against (core.KernelConfigurable).
	// The unrolled kernels keep the scalar accumulation order, so
	// results are bit-identical either way.
	scalarKernels bool
}

// SetScalarKernels switches the space between the unrolled distance
// kernels (false, the default) and their scalar references (true, the
// bit-identical oracle). Set before a run, not during one.
func (s *Space) SetScalarKernels(scalar bool) { s.scalarKernels = scalar }

// NewSpace picks cfg.K distinct random points as initial centroids.
func NewSpace(points []float64, dim int, cfg Config) (*Space, error) {
	if dim < 1 {
		return nil, fmt.Errorf("kmeans: dim must be ≥ 1, got %d", dim)
	}
	if len(points)%dim != 0 {
		return nil, fmt.Errorf("kmeans: %d values not a multiple of dim %d", len(points), dim)
	}
	n := len(points) / dim
	if cfg.K < 1 || cfg.K > n {
		return nil, fmt.Errorf("kmeans: k=%d out of range [1,%d]", cfg.K, n)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	for i := 0; i < cfg.K; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return NewSpaceFromSeeds(points, dim, idx[:cfg.K:cfg.K], cfg)
}

// NewSpaceFromSeeds builds a space whose initial centroids are copies of
// the given points.
func NewSpaceFromSeeds(points []float64, dim int, seedItems []int32, cfg Config) (*Space, error) {
	if dim < 1 {
		return nil, fmt.Errorf("kmeans: dim must be ≥ 1, got %d", dim)
	}
	if len(points)%dim != 0 {
		return nil, fmt.Errorf("kmeans: %d values not a multiple of dim %d", len(points), dim)
	}
	n := len(points) / dim
	k := len(seedItems)
	if k < 1 {
		return nil, fmt.Errorf("kmeans: no seed points")
	}
	if cfg.K != 0 && cfg.K != k {
		return nil, fmt.Errorf("kmeans: cfg.K=%d but %d seed points", cfg.K, k)
	}
	s := &Space{
		data:      points,
		dim:       dim,
		k:         k,
		centroids: make([]float64, k*dim),
		seeds:     append([]int32(nil), seedItems...),
		policy:    cfg.EmptyCluster,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		sums:      make([]float64, k*dim),
		counts:    make([]int32, k),
	}
	for c, item := range seedItems {
		if item < 0 || int(item) >= n {
			return nil, fmt.Errorf("kmeans: seed point %d out of range", item)
		}
		copy(s.centroid(c), s.Point(int(item)))
	}
	return s, nil
}

// Point returns point i; the slice aliases the backing store.
func (s *Space) Point(i int) []float64 {
	return s.data[i*s.dim : (i+1)*s.dim : (i+1)*s.dim]
}

func (s *Space) centroid(c int) []float64 {
	return s.centroids[c*s.dim : (c+1)*s.dim : (c+1)*s.dim]
}

// Centroid returns cluster c's centroid; the slice aliases internal
// state and must not be modified.
func (s *Space) Centroid(c int) []float64 { return s.centroid(c) }

// Dim returns the vector dimensionality.
func (s *Space) Dim() int { return s.dim }

// NumItems returns the number of points.
func (s *Space) NumItems() int { return len(s.data) / s.dim }

// NumClusters returns k.
func (s *Space) NumClusters() int { return s.k }

// Seeds returns the points the initial centroids were copied from.
func (s *Space) Seeds() []int32 { return s.seeds }

// Dissimilarity returns the squared Euclidean distance between point
// item and centroid cluster, via the unrolled kernel (bit-identical to
// the scalar reference by construction).
func (s *Space) Dissimilarity(item, cluster int) float64 {
	p := s.Point(item)
	c := s.centroid(cluster)
	if s.scalarKernels {
		return kernel.SquaredDistanceScalar(p, c)
	}
	return kernel.SquaredDistance(p, c)
}

// BoundedDissimilarity accumulates the squared distance but returns as
// soon as the partial sum reaches bound (the sum is monotone in the
// coordinates). The unrolled kernel checks the bound once per block,
// so an early exit may return a larger partial sum than the scalar
// reference's — both ≥ bound, which is all the driver relies on;
// results below the bound are bit-identical.
func (s *Space) BoundedDissimilarity(item, cluster int, bound float64) float64 {
	p := s.Point(item)
	c := s.centroid(cluster)
	if s.scalarKernels {
		return kernel.SquaredDistanceBoundedScalar(p, c, bound)
	}
	return kernel.SquaredDistanceBounded(p, c, bound)
}

// RecomputeCentroids sets every centroid to the mean of its members;
// empty clusters follow the configured policy.
func (s *Space) RecomputeCentroids(assign []int32) {
	if len(assign) != s.NumItems() {
		panic("kmeans: assignment length mismatch")
	}
	for i := range s.sums {
		s.sums[i] = 0
	}
	for i := range s.counts {
		s.counts[i] = 0
	}
	for i, c := range assign {
		p := s.Point(i)
		dst := s.sums[int(c)*s.dim : (int(c)+1)*s.dim]
		//lshvet:ignore kernelcheck centroid sum accumulation, not a distance reduction; this batch loop is itself the incremental engine's oracle
		for j := range p {
			dst[j] += p[j]
		}
		s.counts[c]++
	}
	for c := 0; c < s.k; c++ {
		if s.counts[c] == 0 {
			if s.policy == ReseedRandomPoint {
				copy(s.centroid(c), s.Point(s.rng.Intn(s.NumItems())))
			}
			continue
		}
		dst := s.centroid(c)
		src := s.sums[c*s.dim : (c+1)*s.dim]
		inv := 1 / float64(s.counts[c])
		for j := range dst {
			dst[j] = src[j] * inv
		}
	}
}

// Cost returns the K-Means objective: the total squared distance of
// every point to its assigned centroid.
func (s *Space) Cost(assign []int32) float64 {
	var total float64
	for i, c := range assign {
		total += s.Dissimilarity(i, int(c))
	}
	return total
}
