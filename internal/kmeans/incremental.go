package kmeans

// This file implements core.IncrementalSpace for the K-Means space:
// running member counts plus a dirty-cluster centroid refresh, so that
// after bootstrap each iteration costs O(n) for a light membership scan
// plus O(dirty-members·dim) for the refresh, instead of the full
// O(n·dim) RecomputeCentroids + O(n·dim) Cost the batch path pays.
//
// Exactness contract: bit-identical centroids and cost versus the batch
// path. Floating-point addition is not associative, so a dirty
// cluster's sum is NOT maintained as a running ± delta — it is
// re-accumulated over that cluster's members in ascending item order,
// the exact order RecomputeCentroids uses. Clean clusters keep their
// previous centroid, which equals what a from-scratch recompute would
// produce (same members, same order). The cost is likewise the sum of
// cached per-item distances in ascending item order, matching Cost's
// accumulation order exactly.

// incremental is the engine state attached to a Space.
type incremental struct {
	counts    []int32 // running member counts (exact integers)
	dirty     []bool
	dirtyList []int32
	members   []int32 // scratch: members of dirty clusters, item order
	// changedList records the clusters whose visible centroid may have
	// changed at the most recent publish, retained until the next
	// publish for ChangedClusters.
	changedList []int32
	trackCost   bool
	itemCost    []float64 // cached Dissimilarity(i, assign[i])
}

// BeginIncremental initialises incremental state from a complete
// assignment. It delegates the initial centroid computation (and the
// empty-cluster policy, with identical rand draws) to
// RecomputeCentroids, then snapshots the member counts.
func (s *Space) BeginIncremental(assign []int32, trackCost bool) {
	s.RecomputeCentroids(assign)
	inc := s.inc
	if inc == nil {
		inc = &incremental{}
		s.inc = inc
	}
	inc.counts = append(inc.counts[:0], s.counts...)
	inc.dirty = make([]bool, s.k)
	inc.dirtyList = inc.dirtyList[:0]
	// Every centroid was just (re)published; report them all changed so
	// a consumer never treats pre-Begin state as current.
	inc.changedList = inc.changedList[:0]
	for c := 0; c < s.k; c++ {
		inc.changedList = append(inc.changedList, int32(c))
	}
	inc.trackCost = trackCost
	if trackCost {
		n := s.NumItems()
		if cap(inc.itemCost) < n {
			inc.itemCost = make([]float64, n)
		}
		inc.itemCost = inc.itemCost[:n]
		for i, c := range assign {
			inc.itemCost[i] = s.Dissimilarity(i, int(c))
		}
	}
}

// ApplyMove updates the running counts and marks both clusters dirty.
// Centroids and cached distances are refreshed at FinishPass (the moved
// item's new cluster is dirty, so its distance is re-cached there).
func (s *Space) ApplyMove(item int, from, to int32) {
	inc := s.inc
	inc.counts[from]--
	inc.counts[to]++
	s.markDirty(from)
	s.markDirty(to)
}

func (s *Space) markDirty(c int32) {
	if !s.inc.dirty[c] {
		s.inc.dirty[c] = true
		s.inc.dirtyList = append(s.inc.dirtyList, c)
	}
}

// FinishPass re-accumulates the sums of dirty clusters in ascending
// item order and refreshes only their centroids — the incremental
// equivalent of RecomputeCentroids(assign).
func (s *Space) FinishPass(assign []int32) {
	inc := s.inc
	inc.changedList = inc.changedList[:0]
	if s.policy == ReseedRandomPoint {
		// The batch path redraws a random point for every empty cluster
		// on every recompute, dirty or not; replay that draw-for-draw.
		for c := 0; c < s.k; c++ {
			if inc.counts[c] == 0 {
				copy(s.centroid(c), s.Point(s.rng.Intn(s.NumItems())))
				inc.changedList = append(inc.changedList, int32(c))
			}
		}
	}
	if len(inc.dirtyList) == 0 {
		return
	}
	for _, c := range inc.dirtyList {
		dst := s.sums[int(c)*s.dim : (int(c)+1)*s.dim]
		for j := range dst {
			dst[j] = 0
		}
	}
	inc.members = inc.members[:0]
	for i, c := range assign {
		if inc.dirty[c] {
			p := s.Point(i)
			dst := s.sums[int(c)*s.dim : (int(c)+1)*s.dim]
			//lshvet:ignore kernelcheck centroid sum accumulation, not a distance reduction; order must match the batch path bit-for-bit
			for j := range p {
				dst[j] += p[j]
			}
			inc.members = append(inc.members, int32(i))
		}
	}
	for _, c := range inc.dirtyList {
		if inc.counts[c] == 0 {
			continue // KeepCentroid, or already reseeded above
		}
		dst := s.centroid(int(c))
		src := s.sums[int(c)*s.dim : (int(c)+1)*s.dim]
		inv := 1 / float64(inc.counts[c])
		for j := range dst {
			dst[j] = src[j] * inv
		}
		inc.changedList = append(inc.changedList, c)
	}
	if inc.trackCost {
		for _, i := range inc.members {
			inc.itemCost[i] = s.Dissimilarity(int(i), int(assign[i]))
		}
	}
	for _, c := range inc.dirtyList {
		inc.dirty[c] = false
	}
	inc.dirtyList = inc.dirtyList[:0]
}

// ChangedClusters returns the clusters whose visible centroid may have
// changed during the most recent publish (BeginIncremental or
// FinishPass): every reseeded empty cluster plus every dirty cluster
// that was re-accumulated. Dirty clusters are reported even when the
// refreshed centroid happens to be numerically identical — the report
// is conservative, which costs the consumer spurious activations but
// never a missed change. Valid until the next publish; the slice is
// reused. Implements the core.ChangeReporter capability consumed by
// the driver's active-set filter.
func (s *Space) ChangedClusters() []int32 {
	if s.inc == nil {
		return nil
	}
	return s.inc.changedList
}

// IncrementalCost returns the K-Means objective under assign by summing
// the cached per-item distances in ascending item order — O(n) adds
// with no distance evaluations, bit-identical to Cost(assign).
func (s *Space) IncrementalCost(assign []int32) float64 {
	if s.inc == nil || !s.inc.trackCost {
		return s.Cost(assign)
	}
	var total float64
	for _, d := range s.inc.itemCost {
		total += d
	}
	return total
}
