package kmeans

import (
	"math/rand"
	"testing"
)

// TestIncrementalBitIdenticalToBatch drives a long stateful move
// sequence and asserts, after every pass, bit-identical centroids and
// cost versus a from-scratch recompute on an oracle space — the
// floating-point claim the dirty-cluster refresh is designed around
// (per-cluster sums re-accumulated in ascending item order, never
// maintained as ± deltas).
func TestIncrementalBitIdenticalToBatch(t *testing.T) {
	const n, k, dim = 150, 10, 5
	rng := rand.New(rand.NewSource(77))
	pts := make([]float64, n*dim)
	for i := range pts {
		pts[i] = rng.NormFloat64()
	}
	seeds := make([]int32, k)
	for c := range seeds {
		seeds[c] = int32(c)
	}
	mk := func() *Space {
		s, err := NewSpaceFromSeeds(pts, dim, seeds, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s, oracle := mk(), mk()

	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(i % k)
	}
	s.BeginIncremental(assign, true)
	oracle.RecomputeCentroids(assign)

	for pass := 0; pass < 25; pass++ {
		for j := 0; j < 6; j++ {
			item := rng.Intn(n)
			to := int32(rng.Intn(k))
			from := assign[item]
			if to == from {
				continue
			}
			assign[item] = to
			s.ApplyMove(item, from, to)
		}
		s.FinishPass(assign)
		oracle.RecomputeCentroids(assign)
		for c := 0; c < k; c++ {
			gc, wc := s.Centroid(c), oracle.Centroid(c)
			for j := range gc {
				if gc[j] != wc[j] {
					t.Fatalf("pass %d cluster %d dim %d: incremental %v, batch %v (diff %g)",
						pass, c, j, gc[j], wc[j], gc[j]-wc[j])
				}
			}
		}
		if got, want := s.IncrementalCost(assign), oracle.Cost(assign); got != want {
			t.Fatalf("pass %d: incremental cost %v, batch %v", pass, got, want)
		}
	}
}

// TestIncrementalEmptiedCluster checks KeepCentroid semantics when a
// cluster loses all members mid-run: the centroid must stay exactly
// where the previous pass left it, and refilling must be exact.
func TestIncrementalEmptiedCluster(t *testing.T) {
	pts := []float64{0, 0, 1, 1, 10, 10, 11, 11}
	seeds := []int32{0, 2}
	mk := func() *Space {
		s, err := NewSpaceFromSeeds(pts, 2, seeds, Config{})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	s, oracle := mk(), mk()
	assign := []int32{0, 0, 1, 1}
	s.BeginIncremental(assign, true)
	oracle.RecomputeCentroids(assign)

	histories := [][]int32{
		{1, 1, 1, 1}, // cluster 0 drains
		{0, 1, 1, 1}, // and refills
	}
	for _, next := range histories {
		for i := range next {
			if assign[i] != next[i] {
				s.ApplyMove(i, assign[i], next[i])
				assign[i] = next[i]
			}
		}
		s.FinishPass(assign)
		oracle.RecomputeCentroids(assign)
		for c := 0; c < 2; c++ {
			gc, wc := s.Centroid(c), oracle.Centroid(c)
			for j := range gc {
				if gc[j] != wc[j] {
					t.Fatalf("cluster %d dim %d: incremental %v, batch %v", c, j, gc[j], wc[j])
				}
			}
		}
		if got, want := s.IncrementalCost(assign), oracle.Cost(assign); got != want {
			t.Fatalf("incremental cost %v, batch %v", got, want)
		}
	}
}
