package kmeans

import (
	"math"
	"testing"

	"lshcluster/internal/core"
	"lshcluster/internal/metrics"
)

func TestValidation(t *testing.T) {
	if _, err := NewSpace([]float64{1, 2, 3}, 2, Config{K: 1}); err == nil {
		t.Fatal("expected ragged-data error")
	}
	if _, err := NewSpace([]float64{1, 2}, 2, Config{K: 2}); err == nil {
		t.Fatal("expected k>n error")
	}
	if _, err := NewSpace([]float64{1, 2}, 0, Config{K: 1}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := NewSpaceFromSeeds([]float64{1, 2}, 2, []int32{5}, Config{}); err == nil {
		t.Fatal("expected out-of-range seed error")
	}
	if _, err := NewSpaceFromSeeds([]float64{1, 2}, 2, nil, Config{}); err == nil {
		t.Fatal("expected empty-seed error")
	}
}

func TestDissimilarity(t *testing.T) {
	pts := []float64{0, 0, 3, 4}
	s, err := NewSpaceFromSeeds(pts, 2, []int32{0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.Dissimilarity(1, 0); d != 25 {
		t.Fatalf("d = %v, want 25", d)
	}
	if d := s.Dissimilarity(0, 0); d != 0 {
		t.Fatalf("self distance = %v", d)
	}
	if d := s.BoundedDissimilarity(1, 0, 5); d < 5 {
		t.Fatalf("bounded distance %v below bound", d)
	}
	if d := s.BoundedDissimilarity(1, 0, 100); d != 25 {
		t.Fatalf("bounded distance = %v, want 25", d)
	}
}

func TestRecomputeCentroidsMean(t *testing.T) {
	pts := []float64{0, 0, 2, 2, 10, 10}
	s, err := NewSpaceFromSeeds(pts, 2, []int32{0, 2}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.RecomputeCentroids([]int32{0, 0, 1})
	c0 := s.Centroid(0)
	if c0[0] != 1 || c0[1] != 1 {
		t.Fatalf("centroid 0 = %v, want (1,1)", c0)
	}
	c1 := s.Centroid(1)
	if c1[0] != 10 || c1[1] != 10 {
		t.Fatalf("centroid 1 = %v", c1)
	}
}

func TestEmptyClusterPolicies(t *testing.T) {
	pts := []float64{0, 0, 1, 1}
	s, err := NewSpaceFromSeeds(pts, 2, []int32{0, 1}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.RecomputeCentroids([]int32{0, 0})
	if c := s.Centroid(1); c[0] != 1 || c[1] != 1 {
		t.Fatalf("KeepCentroid failed: %v", c)
	}
	s2, err := NewSpaceFromSeeds(pts, 2, []int32{0, 1},
		Config{EmptyCluster: ReseedRandomPoint, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	s2.RecomputeCentroids([]int32{0, 0})
	c := s2.Centroid(1)
	if !(c[0] == 0 && c[1] == 0) && !(c[0] == 1 && c[1] == 1) {
		t.Fatalf("reseeded centroid %v is not a data point", c)
	}
}

func TestCost(t *testing.T) {
	pts := []float64{0, 0, 1, 0}
	s, err := NewSpaceFromSeeds(pts, 2, []int32{0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if c := s.Cost([]int32{0, 0}); c != 1 {
		t.Fatalf("cost = %v, want 1", c)
	}
}

func TestGenerateBlobs(t *testing.T) {
	pts, labels, err := GenerateBlobs(BlobsConfig{Points: 100, Clusters: 5, Dim: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 300 || len(labels) != 100 {
		t.Fatalf("shape = (%d,%d)", len(pts), len(labels))
	}
	counts := map[int32]int{}
	for _, l := range labels {
		counts[l]++
	}
	for c, n := range counts {
		if n != 20 {
			t.Fatalf("blob %d has %d points", c, n)
		}
	}
	if _, _, err := GenerateBlobs(BlobsConfig{Points: 0, Clusters: 1, Dim: 1}); err == nil {
		t.Fatal("expected config error")
	}
}

func TestBlobsDeterministic(t *testing.T) {
	a, _, err := GenerateBlobs(BlobsConfig{Points: 50, Clusters: 5, Dim: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := GenerateBlobs(BlobsConfig{Points: 50, Clusters: 5, Dim: 2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("blob generation not deterministic")
		}
	}
}

// TestExactKMeansRecoversBlobs runs the shared core driver over the
// K-Means space: the framework must be algorithm-agnostic.
func TestExactKMeansRecoversBlobs(t *testing.T) {
	pts, labels, err := GenerateBlobs(BlobsConfig{Points: 300, Clusters: 6, Dim: 4, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]int32, 6)
	for c := range seeds {
		seeds[c] = int32(c) // one point per true blob
	}
	s, err := NewSpaceFromSeeds(pts, 4, seeds, Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(s, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("K-Means did not converge")
	}
	p, err := metrics.Purity(res.Assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.99 {
		t.Fatalf("purity = %v on well-separated blobs", p)
	}
	// The K-Means objective must be non-increasing.
	prev := math.Inf(1)
	for _, it := range res.Stats.Iterations {
		if it.Cost > prev+1e-9 {
			t.Fatalf("cost rose from %v to %v", prev, it.Cost)
		}
		prev = it.Cost
	}
}
