// Package metrics implements external clustering-quality measures. The
// paper evaluates quality with cluster purity (§IV-A5, Figures 8–9);
// normalised mutual information is provided as an additional check.
package metrics

import (
	"fmt"
	"math"
)

// contingency builds the cluster×class co-occurrence counts.
// assign maps items to clusters; labels to ground-truth classes.
func contingency(assign []int32, labels []int32) (map[[2]int32]int, map[int32]int, map[int32]int, error) {
	if len(assign) != len(labels) {
		return nil, nil, nil, fmt.Errorf("metrics: %d assignments vs %d labels", len(assign), len(labels))
	}
	if len(assign) == 0 {
		return nil, nil, nil, fmt.Errorf("metrics: empty clustering")
	}
	joint := make(map[[2]int32]int)
	byCluster := make(map[int32]int)
	byClass := make(map[int32]int)
	for i, c := range assign {
		l := labels[i]
		joint[[2]int32{c, l}]++
		byCluster[c]++
		byClass[l]++
	}
	return joint, byCluster, byClass, nil
}

// Purity returns the cluster purity of the assignment against ground
// truth: each cluster votes for its majority class, and purity is the
// fraction of items covered by those majorities,
//
//	purity = (1/n) · Σ_c max_l |cluster_c ∩ class_l|.
//
// It lies in (0, 1]; 1 means every cluster is class-pure. Note that
// purity is maximised by degenerate clusterings with many clusters — the
// paper uses it with k fixed to the ground-truth cluster count.
func Purity(assign, labels []int32) (float64, error) {
	joint, byCluster, _, err := contingency(assign, labels)
	if err != nil {
		return 0, err
	}
	best := make(map[int32]int, len(byCluster))
	for key, n := range joint {
		if n > best[key[0]] {
			best[key[0]] = n
		}
	}
	total := 0
	for _, n := range best {
		total += n
	}
	return float64(total) / float64(len(assign)), nil
}

// NMI returns the normalised mutual information between the assignment
// and the ground truth, using arithmetic-mean normalisation:
// NMI = 2·I(C;L) / (H(C)+H(L)). It lies in [0,1]; degenerate cases where
// both partitions are single-cluster return 1, and 0 when only one side
// is degenerate.
func NMI(assign, labels []int32) (float64, error) {
	joint, byCluster, byClass, err := contingency(assign, labels)
	if err != nil {
		return 0, err
	}
	n := float64(len(assign))
	hc := entropy(byCluster, n)
	hl := entropy(byClass, n)
	if hc == 0 && hl == 0 {
		return 1, nil
	}
	if hc == 0 || hl == 0 {
		return 0, nil
	}
	var mi float64
	for key, cnt := range joint {
		pxy := float64(cnt) / n
		px := float64(byCluster[key[0]]) / n
		py := float64(byClass[key[1]]) / n
		mi += pxy * math.Log2(pxy/(px*py))
	}
	nmi := 2 * mi / (hc + hl)
	// Clamp tiny negative float error.
	if nmi < 0 && nmi > -1e-12 {
		nmi = 0
	}
	return nmi, nil
}

func entropy(counts map[int32]int, n float64) float64 {
	var h float64
	for _, c := range counts {
		p := float64(c) / n
		h -= p * math.Log2(p)
	}
	return h
}
