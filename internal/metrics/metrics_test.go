package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPurityPerfect(t *testing.T) {
	assign := []int32{0, 0, 1, 1, 2, 2}
	labels := []int32{5, 5, 9, 9, 7, 7}
	p, err := Purity(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("purity = %v, want 1", p)
	}
}

func TestPurityKnownValue(t *testing.T) {
	// Cluster 0: {a,a,b} majority 2; cluster 1: {b,b,a} majority 2
	// → purity = 4/6.
	assign := []int32{0, 0, 0, 1, 1, 1}
	labels := []int32{0, 0, 1, 1, 1, 0}
	p, err := Purity(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-4.0/6.0) > 1e-12 {
		t.Fatalf("purity = %v, want 2/3", p)
	}
}

func TestPuritySingleCluster(t *testing.T) {
	assign := []int32{0, 0, 0, 0}
	labels := []int32{0, 1, 2, 3}
	p, err := Purity(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if p != 0.25 {
		t.Fatalf("purity = %v, want 0.25", p)
	}
}

func TestPurityBounds(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		assign := make([]int32, len(raw))
		labels := make([]int32, len(raw))
		for i, v := range raw {
			assign[i] = int32(v % 5)
			labels[i] = int32((v / 5) % 7)
		}
		p, err := Purity(assign, labels)
		if err != nil {
			return false
		}
		return p > 0 && p <= 1
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestErrors(t *testing.T) {
	if _, err := Purity([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	if _, err := Purity(nil, nil); err == nil {
		t.Fatal("expected empty-clustering error")
	}
	if _, err := NMI([]int32{0}, []int32{0, 1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestNMIPerfect(t *testing.T) {
	assign := []int32{0, 0, 1, 1, 2, 2}
	labels := []int32{4, 4, 2, 2, 0, 0}
	v, err := NMI(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-1) > 1e-12 {
		t.Fatalf("NMI = %v, want 1", v)
	}
}

func TestNMIIndependent(t *testing.T) {
	// A random assignment against random labels over many items → ≈ 0.
	rng := rand.New(rand.NewSource(3))
	n := 20000
	assign := make([]int32, n)
	labels := make([]int32, n)
	for i := range assign {
		assign[i] = int32(rng.Intn(4))
		labels[i] = int32(rng.Intn(4))
	}
	v, err := NMI(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if v > 0.01 {
		t.Fatalf("NMI of independent partitions = %v, want ≈ 0", v)
	}
}

func TestNMIDegenerate(t *testing.T) {
	v, err := NMI([]int32{0, 0}, []int32{1, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("NMI of two trivial partitions = %v, want 1", v)
	}
	v, err = NMI([]int32{0, 0}, []int32{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v != 0 {
		t.Fatalf("NMI with one trivial side = %v, want 0", v)
	}
}

func TestNMIBounds(t *testing.T) {
	check := func(raw []uint8) bool {
		if len(raw) < 2 {
			return true
		}
		assign := make([]int32, len(raw))
		labels := make([]int32, len(raw))
		for i, v := range raw {
			assign[i] = int32(v % 3)
			labels[i] = int32((v >> 2) % 4)
		}
		v, err := NMI(assign, labels)
		if err != nil {
			return false
		}
		return v >= 0 && v <= 1+1e-9
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPurityLabelPermutationInvariant(t *testing.T) {
	assign := []int32{0, 0, 1, 1, 2, 2, 2}
	labels := []int32{1, 1, 0, 0, 2, 2, 0}
	p1, err := Purity(assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	// Relabel classes 0→7, 1→5, 2→9.
	perm := map[int32]int32{0: 7, 1: 5, 2: 9}
	relabelled := make([]int32, len(labels))
	for i, l := range labels {
		relabelled[i] = perm[l]
	}
	p2, err := Purity(assign, relabelled)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("purity changed under label permutation: %v vs %v", p1, p2)
	}
}
