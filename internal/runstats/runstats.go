// Package runstats holds per-iteration clustering statistics — the
// quantities the paper plots (time per iteration, average shortlist size,
// moves, total time, purity) — and renders them as CSV or markdown.
package runstats

import (
	"encoding/csv"
	"fmt"
	"io"
	"math"
	"strconv"
	"time"
)

// Iteration records one assignment+update pass.
type Iteration struct {
	// Index is 1-based; the bootstrap pass is reported separately.
	Index int
	// Duration is the wall time of the pass (assignment + mode update).
	Duration time.Duration
	// Moves counts items that changed cluster during the pass
	// (paper figures "Moves").
	Moves int
	// Comparisons counts item-to-centroid dissimilarity evaluations.
	Comparisons int64
	// CandidatesTotal sums shortlist sizes over the evaluated items;
	// for the exact algorithm the shortlist is the full cluster set.
	CandidatesTotal int64
	// AvgShortlist is CandidatesTotal divided by ActiveItems — the
	// mean shortlist size per item actually queried (paper figures
	// "Avg. Clusters Returned"). Without active-set filtering every
	// item is queried and the divisor is n.
	AvgShortlist float64
	// ActiveItems counts the items the assignment pass evaluated. With
	// active-set filtering, items whose cluster neighbourhood provably
	// did not change are skipped, so late sparse passes evaluate far
	// fewer than n; without it this is always n.
	ActiveItems int
	// SkippedItems counts the items the active-set filter skipped
	// (n − ActiveItems).
	SkippedItems int
	// Cost is the clustering objective after the pass (K-Modes Eq. 4),
	// NaN when cost tracking is disabled.
	Cost float64
}

// Run aggregates a full clustering execution.
type Run struct {
	// Name identifies the configuration, e.g. "K-Modes" or
	// "MH-K-Modes 20b5r".
	Name string
	// Bootstrap is the time spent before iteration 1: the initial full
	// assignment plus, for accelerated runs, MinHashing the dataset and
	// building the index (the paper's "initial extra step").
	Bootstrap time.Duration
	// BootstrapSign, BootstrapBuild and BootstrapAssign split Bootstrap
	// into its pipeline phases: signing every item (computing MinHash /
	// SimHash band keys), constructing the index, and the first
	// assignment. Phases that a path interleaves into another stay
	// zero: the serial full-scan bootstrap signs inside its insert loop
	// (charged to BootstrapBuild), and the seeded bootstrap interleaves
	// inserts with assignment (charged to BootstrapAssign, with
	// BootstrapSign non-zero only on the presigned parallel path).
	// Their sum is at most Bootstrap; the remainder is untimed setup
	// (accelerator reset, incremental-engine initialisation).
	BootstrapSign   time.Duration
	BootstrapBuild  time.Duration
	BootstrapAssign time.Duration
	// Shards is the accelerator index's item-shard count (0 when the
	// run had no shard-capable accelerator; 1 is the unsharded oracle).
	Shards int
	// BootstrapBuildShards breaks BootstrapBuild down per shard: entry
	// s is the wall time shard s spent constructing its frozen layout
	// (direct build or freeze compaction). Nil when the index never
	// froze. Shards build concurrently, so the entries overlap and
	// their sum may exceed BootstrapBuild; the maximum is the build's
	// critical path (the CLI reports the slowest shard).
	BootstrapBuildShards []time.Duration
	// CrossShardMerge is the cumulative wall time query paths spent in
	// cross-shard candidate sweeps (planning, fan-out and merging
	// shard-local shortlists), measured at call granularity across the
	// whole run. Always zero with a single shard, where no fan-out
	// exists.
	CrossShardMerge time.Duration
	// ForeignSlotBytes is the memory the index spent on materialised
	// cross-shard fan-out arrays (foreign slots); 0 when the key-probe
	// path served every query (single shard, disabled, or over budget).
	ForeignSlotBytes int64
	// CrossShardProbes and CrossShardDirect count cross-shard bucket
	// resolutions by path: key-table probes versus direct foreign-slot
	// loads. Both zero with a single shard.
	CrossShardProbes int64
	CrossShardDirect int64
	// ReorderTime is the wall time the locality-reordering stage spent
	// deriving and applying the item permutation during the bootstrap
	// build (zero when reordering was disabled or inapplicable). Part
	// of BootstrapBuild, reported separately as the reorder overhead.
	ReorderTime time.Duration
	// ShardLocalCands and ShardForeignCands count shortlist candidates
	// by origin: served by the queried item's owning shard versus fanned
	// out from the other shards. Their ratio is the locality measure the
	// reordering stage exists to raise. Both zero with a single shard
	// (no fan-out) and on stride layouts.
	ShardLocalCands   int64
	ShardForeignCands int64
	// ShardRetries and ShardTimeouts count failed shard-backend calls
	// that were retried, and the subset that failed by deadline. All of
	// the resilience counters below stay zero unless the run routed its
	// cross-shard fan-out through the fault-tolerant backend layer
	// (core.Options.ChaosSpec).
	ShardRetries  int64
	ShardTimeouts int64
	// HedgedCalls counts backend calls that launched a hedge to the
	// mirror replica after the straggler threshold; HedgeWins counts the
	// hedges that beat the primary.
	HedgedCalls int64
	HedgeWins   int64
	// DegradedItems counts item evaluations (summed over iteration
	// passes) whose candidate shortlist was degraded by shard failures —
	// partial recall, or an exact-scan fallback when the item's own
	// shard was unreachable.
	DegradedItems int64
	// SkippedShards counts the shards that failed at least one backend
	// call past its retry budget during the run — the shards whose
	// absence DegradedItems measures.
	SkippedShards int
	// IndexSaveTime and IndexLoadTime are the wall times spent
	// persisting the frozen index to disk after a cold bootstrap and
	// warm-loading it back at the start of a later run
	// (core.Options.IndexDir). Zero when persistence was off; a run has
	// at most one of them non-zero (cold runs save, warm runs load).
	IndexSaveTime time.Duration
	IndexLoadTime time.Duration
	// MmapBytes is the total size of the index's live memory mappings —
	// bytes served zero-copy from the page cache instead of the heap.
	// Zero on heap loads (DisableMmap), fresh builds, and platforms
	// without mmap.
	MmapBytes int64
	// WarmStart reports whether the index was loaded from disk instead
	// of built (the run skipped signing, construction and the first full
	// scan).
	WarmStart bool
	// ResumedAt is the first iteration this run executed: 1 normally,
	// higher when the run resumed from a checkpoint
	// (core.Options.SnapshotEvery), whose restored iterations precede
	// the new ones in Iterations.
	ResumedAt int
	// ResidentShards, ShardPromotions and ShardDemotions mirror the
	// memory-budgeted residency manager
	// (core.Options.ShardMemoryBudget): shards resident at run end, and
	// the cumulative page-in/page-out transitions. All zero without a
	// budget.
	ResidentShards  int
	ShardPromotions int64
	ShardDemotions  int64
	// Iterations holds one entry per pass, in order.
	Iterations []Iteration
	// Converged reports whether the run stopped because no item moved
	// (as opposed to hitting the iteration cap).
	Converged bool
	// Purity is the external quality score in [0,1], NaN when no ground
	// truth was available.
	Purity float64
}

// Total returns bootstrap plus all iteration durations.
func (r *Run) Total() time.Duration {
	t := r.Bootstrap
	for _, it := range r.Iterations {
		t += it.Duration
	}
	return t
}

// NumIterations returns the number of passes executed.
func (r *Run) NumIterations() int { return len(r.Iterations) }

// MeanIterationTime returns the average pass duration (0 for no passes).
func (r *Run) MeanIterationTime() time.Duration {
	if len(r.Iterations) == 0 {
		return 0
	}
	var t time.Duration
	for _, it := range r.Iterations {
		t += it.Duration
	}
	return t / time.Duration(len(r.Iterations))
}

// TotalMoves sums moves across all passes.
func (r *Run) TotalMoves() int {
	n := 0
	for _, it := range r.Iterations {
		n += it.Moves
	}
	return n
}

// CrossShardProbeFrac returns the share of cross-shard bucket
// resolutions that went through the key-probe path — 1 with foreign
// slots off, 0 when the materialised arrays served every fan-out, NaN
// when no cross-shard resolution ran (single shard).
func (r *Run) CrossShardProbeFrac() float64 {
	total := r.CrossShardProbes + r.CrossShardDirect
	if total == 0 {
		return math.NaN()
	}
	return float64(r.CrossShardProbes) / float64(total)
}

// ShardLocalFrac returns the share of shortlist candidates served by
// the queried item's owning shard — the locality measure item
// reordering raises. NaN when no multi-shard range fan-out ran (single
// shard, stride layout, or no queries).
func (r *Run) ShardLocalFrac() float64 {
	total := r.ShardLocalCands + r.ShardForeignCands
	if total == 0 {
		return math.NaN()
	}
	return float64(r.ShardLocalCands) / float64(total)
}

// Speedup returns how many times faster r completed than other
// (other.Total / r.Total).
func (r *Run) Speedup(other *Run) float64 {
	if r.Total() <= 0 {
		return 0
	}
	return float64(other.Total()) / float64(r.Total())
}

// column is one CSV column: its header name and how the bootstrap
// pseudo-row (iteration 0) and the per-iteration rows render it. Header
// and both row shapes derive from the one columns table below, so they
// cannot drift apart; statscheck verifies the table against the Run and
// Iteration structs field-for-field.
type column struct {
	name string
	boot func(r *Run) string
	iter func(r *Run, it Iteration) string
}

func f(v float64) string { return strconv.FormatFloat(v, 'g', 6, 64) }

// none renders the empty cell for columns a row shape does not carry.
func none(*Run, Iteration) string { return "" }

// columns is the single source of truth for the CSV layout. The
// pseudo-iteration 0 row carries the bootstrap duration, its per-phase
// split and the shard layout; iteration rows leave those columns empty.
// CrossShardMerge spans the whole run but is a run-level aggregate, so
// it rides on the bootstrap row.
var columns = []column{
	{"run",
		func(r *Run) string { return r.Name },
		func(r *Run, _ Iteration) string { return r.Name }},
	{"iteration",
		func(*Run) string { return "0" },
		func(_ *Run, it Iteration) string { return strconv.Itoa(it.Index) }},
	{"duration_ms",
		func(r *Run) string { return f(ms(r.Bootstrap)) },
		func(_ *Run, it Iteration) string { return f(ms(it.Duration)) }},
	{"moves", bootNone,
		func(_ *Run, it Iteration) string { return strconv.Itoa(it.Moves) }},
	{"comparisons", bootNone,
		func(_ *Run, it Iteration) string { return strconv.FormatInt(it.Comparisons, 10) }},
	{"avg_shortlist", bootNone,
		func(_ *Run, it Iteration) string { return f(it.AvgShortlist) }},
	{"cost", bootNone,
		func(_ *Run, it Iteration) string { return f(it.Cost) }},
	{"active_items", bootNone,
		func(_ *Run, it Iteration) string { return strconv.Itoa(it.ActiveItems) }},
	{"skipped_items", bootNone,
		func(_ *Run, it Iteration) string { return strconv.Itoa(it.SkippedItems) }},
	{"bootstrap_sign_ms",
		func(r *Run) string { return f(ms(r.BootstrapSign)) }, none},
	{"bootstrap_build_ms",
		func(r *Run) string { return f(ms(r.BootstrapBuild)) }, none},
	{"bootstrap_assign_ms",
		func(r *Run) string { return f(ms(r.BootstrapAssign)) }, none},
	{"shards",
		func(r *Run) string { return strconv.Itoa(r.Shards) }, none},
	{"crossshard_merge_ms",
		func(r *Run) string { return f(ms(r.CrossShardMerge)) }, none},
	{"foreignslot_bytes",
		func(r *Run) string { return strconv.FormatInt(r.ForeignSlotBytes, 10) }, none},
	{"crossshard_probe_frac",
		func(r *Run) string { return f(r.CrossShardProbeFrac()) }, none},
	{"reorder_ms",
		func(r *Run) string { return f(ms(r.ReorderTime)) }, none},
	{"shard_local_frac",
		func(r *Run) string { return f(r.ShardLocalFrac()) }, none},
	{"shard_retries",
		func(r *Run) string { return strconv.FormatInt(r.ShardRetries, 10) }, none},
	{"shard_timeouts",
		func(r *Run) string { return strconv.FormatInt(r.ShardTimeouts, 10) }, none},
	{"hedged_calls",
		func(r *Run) string { return strconv.FormatInt(r.HedgedCalls, 10) }, none},
	{"hedge_wins",
		func(r *Run) string { return strconv.FormatInt(r.HedgeWins, 10) }, none},
	{"degraded_items",
		func(r *Run) string { return strconv.FormatInt(r.DegradedItems, 10) }, none},
	{"skipped_shards",
		func(r *Run) string { return strconv.Itoa(r.SkippedShards) }, none},
	{"index_save_ms",
		func(r *Run) string { return f(ms(r.IndexSaveTime)) }, none},
	{"index_load_ms",
		func(r *Run) string { return f(ms(r.IndexLoadTime)) }, none},
	{"mmap_bytes",
		func(r *Run) string { return strconv.FormatInt(r.MmapBytes, 10) }, none},
}

func bootNone(*Run) string { return "" }

// csvExempt names the exported Run/Iteration fields deliberately absent
// from the columns table, with the reason; statscheck requires every
// non-rendered field to appear here.
var csvExempt = map[string]string{
	"CandidatesTotal":      "reported via its per-item mean, avg_shortlist",
	"BootstrapBuildShards": "per-shard breakdown; long format has no per-shard rows, the CLI reports the critical path",
	"CrossShardProbes":     "reported as the crossshard_probe_frac ratio",
	"CrossShardDirect":     "reported as the crossshard_probe_frac ratio",
	"ShardLocalCands":      "reported as the shard_local_frac ratio",
	"ShardForeignCands":    "reported as the shard_local_frac ratio",
	"Iterations":           "expanded into the per-iteration rows themselves",
	"Converged":            "summary-level; rendered by WriteSummaryMarkdown",
	"Purity":               "summary-level; rendered by WriteSummaryMarkdown",
	"WarmStart":            "boolean run mode, implied by index_load_ms > 0; the CLI reports it",
	"ResumedAt":            "run mode; restored iterations already appear as ordinary rows",
	"ResidentShards":       "end-state residency snapshot; the CLI reports it with the promote/demote counters",
	"ShardPromotions":      "residency-manager accounting; the CLI reports it",
	"ShardDemotions":       "residency-manager accounting; the CLI reports it",
}

// Header returns the CSV column names, in order.
func Header() []string {
	names := make([]string, len(columns))
	for i, c := range columns {
		names[i] = c.name
	}
	return names
}

// bootstrapRow renders the pseudo-iteration 0 row for r.
func bootstrapRow(r *Run) []string {
	row := make([]string, len(columns))
	for i, c := range columns {
		row[i] = c.boot(r)
	}
	return row
}

// iterationRow renders one per-iteration row for r.
func iterationRow(r *Run, it Iteration) []string {
	row := make([]string, len(columns))
	for i, c := range columns {
		row[i] = c.iter(r, it)
	}
	return row
}

// WriteCSV emits runs in long format, one row per (run, iteration), with
// a pseudo-iteration 0 row carrying the bootstrap duration. Suitable for
// direct plotting.
func WriteCSV(w io.Writer, runs []*Run) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(Header()); err != nil {
		return fmt.Errorf("runstats: writing CSV header: %w", err)
	}
	for _, r := range runs {
		if err := cw.Write(bootstrapRow(r)); err != nil {
			return fmt.Errorf("runstats: writing CSV: %w", err)
		}
		for _, it := range r.Iterations {
			if err := cw.Write(iterationRow(r, it)); err != nil {
				return fmt.Errorf("runstats: writing CSV: %w", err)
			}
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("runstats: flushing CSV: %w", err)
	}
	return nil
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

// WriteSummaryMarkdown renders a per-run summary table: iterations,
// bootstrap, mean iteration time, total, moves, purity.
func WriteSummaryMarkdown(w io.Writer, runs []*Run) error {
	if _, err := fmt.Fprintln(w, "| run | iters | converged | bootstrap | mean iter | total | moves | purity |"); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, "|---|---|---|---|---|---|---|---|"); err != nil {
		return err
	}
	for _, r := range runs {
		_, err := fmt.Fprintf(w, "| %s | %d | %v | %s | %s | %s | %d | %.4f |\n",
			r.Name, r.NumIterations(), r.Converged,
			r.Bootstrap.Round(time.Millisecond),
			r.MeanIterationTime().Round(time.Millisecond),
			r.Total().Round(time.Millisecond),
			r.TotalMoves(), r.Purity)
		if err != nil {
			return err
		}
	}
	return nil
}
