package runstats

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"
)

func sampleRun() *Run {
	return &Run{
		Name:            "MH-K-Modes 20b 5r",
		Bootstrap:       100 * time.Millisecond,
		BootstrapSign:   40 * time.Millisecond,
		BootstrapBuild:  10 * time.Millisecond,
		BootstrapAssign: 45 * time.Millisecond,
		Shards:          4,
		BootstrapBuildShards: []time.Duration{
			3 * time.Millisecond, 2 * time.Millisecond,
			4 * time.Millisecond, 3 * time.Millisecond,
		},
		CrossShardMerge:   6 * time.Millisecond,
		ForeignSlotBytes:  2048,
		CrossShardProbes:  25,
		CrossShardDirect:  75,
		ReorderTime:       5 * time.Millisecond,
		ShardLocalCands:   90,
		ShardForeignCands: 10,
		ShardRetries:      7,
		ShardTimeouts:     2,
		HedgedCalls:       5,
		HedgeWins:         3,
		DegradedItems:     12,
		SkippedShards:     1,
		IndexSaveTime:     8 * time.Millisecond,
		MmapBytes:         4096,
		ResumedAt:         1,
		ResidentShards:    2,
		ShardPromotions:   9,
		ShardDemotions:    11,
		Iterations: []Iteration{
			{Index: 1, Duration: 50 * time.Millisecond, Moves: 40, Comparisons: 900,
				CandidatesTotal: 120, AvgShortlist: 1.2, Cost: 420},
			{Index: 2, Duration: 30 * time.Millisecond, Moves: 0, Comparisons: 800,
				CandidatesTotal: 110, AvgShortlist: 1.1, Cost: 400},
		},
		Converged: true,
		Purity:    0.91,
	}
}

func TestAggregates(t *testing.T) {
	r := sampleRun()
	if r.Total() != 180*time.Millisecond {
		t.Fatalf("Total = %v", r.Total())
	}
	if r.NumIterations() != 2 {
		t.Fatalf("NumIterations = %d", r.NumIterations())
	}
	if r.MeanIterationTime() != 40*time.Millisecond {
		t.Fatalf("MeanIterationTime = %v", r.MeanIterationTime())
	}
	if r.TotalMoves() != 40 {
		t.Fatalf("TotalMoves = %d", r.TotalMoves())
	}
	empty := &Run{Name: "x"}
	if empty.MeanIterationTime() != 0 {
		t.Fatal("mean of no iterations should be 0")
	}
}

func TestSpeedup(t *testing.T) {
	fast := sampleRun()
	slow := sampleRun()
	slow.Iterations = append(slow.Iterations, Iteration{Index: 3, Duration: 180 * time.Millisecond})
	if got := fast.Speedup(slow); got != 2 {
		t.Fatalf("Speedup = %v, want 2", got)
	}
	zero := &Run{}
	if zero.Speedup(fast) != 0 {
		t.Fatal("zero-duration run should report 0 speedup")
	}
}

func TestWriteCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Run{sampleRun()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + bootstrap row + 2 iterations
		t.Fatalf("CSV has %d lines:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "run,iteration,duration_ms") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[0], "crossshard_merge_ms,foreignslot_bytes,crossshard_probe_frac,reorder_ms,shard_local_frac,shard_retries,shard_timeouts,hedged_calls,hedge_wins,degraded_items,skipped_shards,index_save_ms,index_load_ms,mmap_bytes") {
		t.Fatalf("header missing shard / resilience / persistence columns: %q", lines[0])
	}
	if !strings.Contains(lines[1], ",0,100") {
		t.Fatalf("bootstrap row = %q", lines[1])
	}
	if !strings.HasSuffix(lines[1], ",40,10,45,4,6,2048,0.25,5,0.9,7,2,5,3,12,1,8,0,4096") {
		t.Fatalf("bootstrap row missing phase split, shard and resilience columns: %q", lines[1])
	}
	if !strings.Contains(lines[2], ",1,50,40,900,1.2,420") {
		t.Fatalf("iteration row = %q", lines[2])
	}
	if !strings.HasSuffix(lines[2], ",,,,,,,,,,,,,,,,,,") {
		t.Fatalf("iteration row should leave phase, shard and resilience columns empty: %q", lines[2])
	}
}

// TestWriteCSVGolden pins the exact bytes of the long format: the
// column table refactor (and any future edit to it) must not move,
// rename or reformat a column without this test noticing.
func TestWriteCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Run{sampleRun()}); err != nil {
		t.Fatal(err)
	}
	want := "run,iteration,duration_ms,moves,comparisons,avg_shortlist,cost,active_items,skipped_items,bootstrap_sign_ms,bootstrap_build_ms,bootstrap_assign_ms,shards,crossshard_merge_ms,foreignslot_bytes,crossshard_probe_frac,reorder_ms,shard_local_frac,shard_retries,shard_timeouts,hedged_calls,hedge_wins,degraded_items,skipped_shards,index_save_ms,index_load_ms,mmap_bytes\n" +
		"MH-K-Modes 20b 5r,0,100,,,,,,,40,10,45,4,6,2048,0.25,5,0.9,7,2,5,3,12,1,8,0,4096\n" +
		"MH-K-Modes 20b 5r,1,50,40,900,1.2,420,0,0,,,,,,,,,,,,,,,,,,\n" +
		"MH-K-Modes 20b 5r,2,30,0,800,1.1,400,0,0,,,,,,,,,,,,,,,,,,\n"
	if got := buf.String(); got != want {
		t.Fatalf("CSV bytes changed:\ngot:\n%swant:\n%s", got, want)
	}
}

// TestHeaderMatchesColumns guards the derived accessors against drift
// from the table itself.
func TestHeaderMatchesColumns(t *testing.T) {
	h := Header()
	if len(h) != len(columns) {
		t.Fatalf("Header has %d names for %d columns", len(h), len(columns))
	}
	seen := map[string]bool{}
	for i, c := range columns {
		if h[i] != c.name {
			t.Fatalf("Header[%d] = %q, column %d is %q", i, h[i], i, c.name)
		}
		if c.name == "" || seen[c.name] {
			t.Fatalf("column %d name %q empty or duplicated", i, c.name)
		}
		seen[c.name] = true
		if c.boot == nil || c.iter == nil {
			t.Fatalf("column %q missing a row renderer", c.name)
		}
	}
}

func TestWriteSummaryMarkdown(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummaryMarkdown(&buf, []*Run{sampleRun()}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"| run |", "MH-K-Modes 20b 5r", "0.9100", "| 2 |", "true"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestCSVHandlesNaNCost(t *testing.T) {
	r := sampleRun()
	r.Iterations[0].Cost = math.NaN()
	var buf bytes.Buffer
	if err := WriteCSV(&buf, []*Run{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "NaN") {
		t.Fatal("NaN cost should serialise as NaN")
	}
}
