// Package stream implements the online clustering extension the paper
// names as further work (§VI: "adapting our algorithm to develop an
// online streaming clustering framework").
//
// A Clusterer holds k modes and the MinHash banding index. Each arriving
// item is assigned in one shot:
//
//  1. MinHash the item's present values and query the index: the
//     clusters of colliding *previously seen* items form the shortlist
//     (exactly the batch framework's candidate construction, applied to
//     an out-of-index item via lsh.Index.CandidatesOfSet);
//  2. compare the item against the shortlist modes only, falling back
//     to a full scan when the shortlist is empty (early stream, or an
//     item unlike anything seen);
//  3. insert the item into the index and fold it into its cluster's
//     frequency table, which maintains the mode incrementally (Huang's
//     frequency-based update) — no batch recomputation ever runs.
//
// The result is an any-time clusterer: modes, assignments and statistics
// are valid after every item.
package stream

import (
	"fmt"

	"lshcluster/internal/dataset"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/lsh/serve"
	"lshcluster/internal/minhash"
)

// Config parameterises a streaming clusterer.
type Config struct {
	// Params is the LSH banding configuration.
	Params lsh.Params
	// Seed drives the hash family.
	Seed uint64
	// InitialModes holds the k starting modes (e.g. the first k distinct
	// items of the stream, or a trained kmodes.Model's modes), row-major
	// k·m. Required.
	InitialModes []dataset.Value
	// NumAttrs is m. Required.
	NumAttrs int
	// CapacityHint pre-sizes per-item storage (optional).
	CapacityHint int
	// Memoize enables the per-value MinHash hash-column memo
	// (minhash.Memo) for stream signing: each distinct present value's
	// hash column is computed once and every later occurrence becomes
	// an element-wise min over the cached column. Worthwhile on
	// streams whose value dictionary is compact and heavily reused
	// (the census-like K-Modes regime); signatures — and therefore
	// assignments — are bit-identical with or without it.
	Memoize bool
	// Shards partitions the banding index into this many item shards
	// (item i routes to shard i mod Shards), so inserts no longer all
	// land in one set of map builders: each shard's maps stay smaller
	// and cache-resident, and shards are the unit a future serving
	// layout distributes. Queries fan out across shards and merge the
	// shard-local buckets back into ascending item order, so
	// shortlists — and therefore assignments — are bit-identical to
	// the single-shard default (values < 2).
	Shards int
	// ScalarKernels routes item-to-mode distance evaluations through
	// the scalar reference kernels instead of the unrolled ones
	// (internal/kernel). Assignments are bit-identical either way; the
	// switch is the correctness oracle for the kernels, mirroring the
	// batch driver's core.Options.ScalarKernels.
	ScalarKernels bool
	// ChaosSpec, when non-empty, routes the index's cross-shard
	// shortlist queries through the fault-tolerant backend layer with
	// the given fault-injection script (see internal/lsh/serve for the
	// grammar). A query that loses shards to faults degrades to a
	// partial shortlist — counted in Stats.DegradedQueries — and an
	// empty one falls back to the full mode scan, so the stream keeps
	// absorbing items through shard failures. A spec injecting zero
	// faults (e.g. "seed=1") exercises the resilient path with
	// bit-identical assignments.
	ChaosSpec string
}

// Stats counts the stream-side behaviour of the index.
type Stats struct {
	// Items is the number of items assigned so far.
	Items int
	// FullScans counts items whose shortlist was empty, forcing an
	// exact scan over all k modes.
	FullScans int
	// CandidatesTotal sums shortlist sizes (full scans count k).
	CandidatesTotal int64
	// Comparisons counts item-to-mode distance evaluations.
	Comparisons int64
	// DegradedQueries counts items whose shortlist query lost at least
	// one shard to injected faults (Config.ChaosSpec): the assignment
	// still completed, on a partial shortlist or the full-scan
	// fallback. Always zero without a chaos spec.
	DegradedQueries int
}

// Clusterer assigns a stream of categorical items to k evolving modes.
// It is not safe for concurrent use.
type Clusterer struct {
	k, m   int
	params lsh.Params
	// index is the stride-sharded banding index (a single shard by
	// default); query is its planner, which merges per-shard buckets
	// back into ascending item order so sharding never changes
	// shortlists.
	index   *lsh.Sharded
	query   *lsh.Query
	freq    *kmodes.FreqTable
	memo    *minhash.Memo // nil unless Config.Memoize
	assign  []int32
	stats   Stats
	presBuf []uint64
	sigBuf  []uint64
	stamps  []uint32
	epoch   uint32
	short   []int32
	scalar  bool // Config.ScalarKernels
}

// dist evaluates one item-to-mode distance through the configured
// kernel (Config.ScalarKernels selects the scalar oracle).
func (c *Clusterer) dist(row, mode []dataset.Value, present []bool, bound int) int {
	if c.scalar {
		return dataset.MismatchesMaskedBoundedScalar(row, mode, present, bound)
	}
	return dataset.MismatchesMaskedBounded(row, mode, present, bound)
}

// New creates a streaming clusterer.
func New(cfg Config) (*Clusterer, error) {
	if err := cfg.Params.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumAttrs < 1 {
		return nil, fmt.Errorf("stream: NumAttrs must be ≥ 1, got %d", cfg.NumAttrs)
	}
	if len(cfg.InitialModes) == 0 || len(cfg.InitialModes)%cfg.NumAttrs != 0 {
		return nil, fmt.Errorf("stream: InitialModes length %d not a positive multiple of NumAttrs %d",
			len(cfg.InitialModes), cfg.NumAttrs)
	}
	k := len(cfg.InitialModes) / cfg.NumAttrs
	ix, err := lsh.NewShardedStream(cfg.Params, cfg.Seed, cfg.Shards, cfg.CapacityHint)
	if err != nil {
		return nil, err
	}
	if cfg.ChaosSpec != "" {
		spec, err := serve.ParseChaosSpec(cfg.ChaosSpec)
		if err != nil {
			return nil, err
		}
		locals := ix.LocalBackends()
		// Primaries and hedge mirrors draw independent injection streams
		// under the same fault model (salt 0 and 1; a dead shard is dead
		// on its mirror too).
		if err := ix.AttachBackends(nil, spec.Wrap(locals, 0), spec.Wrap(locals, 1),
			lsh.Policy{Seed: spec.Seed() + 1}); err != nil {
			return nil, err
		}
	}
	c := &Clusterer{
		k:      k,
		m:      cfg.NumAttrs,
		params: cfg.Params,
		index:  ix,
		query:  ix.NewQuery(),
		freq:   kmodes.NewFreqTable(k, cfg.NumAttrs),
		sigBuf: make([]uint64, cfg.Params.SignatureLen()),
		stamps: make([]uint32, k),
		scalar: cfg.ScalarKernels,
	}
	if cfg.Memoize {
		c.memo = ix.Scheme().NewMemo(0)
	}
	for cl := 0; cl < k; cl++ {
		c.freq.SetMode(cl, cfg.InitialModes[cl*c.m:(cl+1)*c.m])
	}
	return c, nil
}

// FromModel creates a streaming clusterer continuing from a trained
// batch model.
func FromModel(model *kmodes.Model, params lsh.Params, seed uint64) (*Clusterer, error) {
	return New(Config{
		Params:       params,
		Seed:         seed,
		InitialModes: model.Modes,
		NumAttrs:     model.M,
	})
}

// NumClusters returns k.
func (c *Clusterer) NumClusters() int { return c.k }

// NumItems returns how many items have been assigned.
func (c *Clusterer) NumItems() int { return len(c.assign) }

// Stats returns stream counters.
func (c *Clusterer) Stats() Stats { return c.stats }

// Mode returns cluster cl's current mode (live view).
func (c *Clusterer) Mode(cl int) []dataset.Value { return c.freq.Mode(cl) }

// Assignments returns the assignment of every item seen so far; the
// slice must not be modified.
func (c *Clusterer) Assignments() []int32 { return c.assign }

// Model snapshots the current modes.
func (c *Clusterer) Model() *kmodes.Model { return c.freq.Model() }

// Add assigns one item and folds it into the clustering. row holds the
// item's m attribute values; present, when non-nil, flags which values
// are actually observed (nil means all present).
//
// Absent attributes are treated as missing data, consistently across
// all three uses of the row: they are invisible to MinHash (only
// present values are signed), they do not vote in the frequency table
// (the evolving mode of an attribute reflects only items that observed
// it — folding unobserved slot values in would let placeholders
// dominate on sparse streams), and they do not count in the
// item-to-mode distance (an unobserved value can neither match nor
// mismatch). Callers for whom absence is itself informative — e.g.
// binary text features, where a missing word separates documents —
// should encode it as an explicit "absent" marker value and pass
// present = nil, exactly as the batch pipeline's datasets do.
//
// Add returns the assigned cluster.
func (c *Clusterer) Add(row []dataset.Value, present []bool) (int, error) {
	if len(row) != c.m {
		return 0, fmt.Errorf("stream: row has %d values, want %d", len(row), c.m)
	}
	if present != nil && len(present) != c.m {
		return 0, fmt.Errorf("stream: presence mask has %d entries, want %d", len(present), c.m)
	}
	c.presBuf = c.presBuf[:0]
	for a, v := range row {
		if present == nil || present[a] {
			c.presBuf = append(c.presBuf, uint64(v))
		}
	}

	// Sign once; the signature serves both the shortlist query and the
	// index insert below (via minhash.Memo when memoization is on).
	var sig []uint64
	if c.memo != nil {
		sig = c.memo.Sign(c.presBuf, c.sigBuf)
	} else {
		sig = c.index.Scheme().Sign(c.presBuf, c.sigBuf)
	}

	// Shortlist via the index (deduplicated with epoch stamps).
	c.epoch++
	if c.epoch == 0 {
		for i := range c.stamps {
			c.stamps[i] = 0
		}
		c.epoch = 1
	}
	c.short = c.short[:0]
	c.query.CandidatesOfSignature(sig, func(other int32) {
		cl := c.assign[other]
		if c.stamps[cl] != c.epoch {
			c.stamps[cl] = c.epoch
			c.short = append(c.short, cl)
		}
	})
	if partial, ownerDown := c.query.LastDegraded(); partial || ownerDown {
		c.stats.DegradedQueries++
	}

	best := -1
	bestD := c.m + 1
	if len(c.short) == 0 {
		c.stats.FullScans++
		c.stats.CandidatesTotal += int64(c.k)
		//lshvet:ignore ctxpollcheck Add handles one item; the fallback scan is bounded by k clusters
		for cl := 0; cl < c.k; cl++ {
			d := c.dist(row, c.freq.Mode(cl), present, bestD)
			c.stats.Comparisons++
			if d < bestD {
				best, bestD = cl, d
			}
		}
	} else {
		c.stats.CandidatesTotal += int64(len(c.short))
		//lshvet:ignore ctxpollcheck Add handles one item; this loop is bounded by its shortlist
		for _, cl := range c.short {
			d := c.dist(row, c.freq.Mode(int(cl)), present, bestD)
			c.stats.Comparisons++
			if d < bestD {
				best, bestD = int(cl), d
			}
		}
	}

	item := int32(len(c.assign))
	c.assign = append(c.assign, int32(best))
	if err := c.index.InsertSignature(item, sig); err != nil {
		return 0, fmt.Errorf("stream: indexing item %d: %w", item, err)
	}
	c.freq.AddMasked(best, row, present)
	c.stats.Items++
	return best, nil
}
