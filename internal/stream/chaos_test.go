package stream

import (
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/lsh"
)

func chaosStreamWorkload(t *testing.T) (*dataset.Dataset, []dataset.Value) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Items: 400, Clusters: 10, Attrs: 14, Domain: 150,
		MinRuleFrac: 0.6, MaxRuleFrac: 0.9, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 10
	modes := make([]dataset.Value, 0, k*ds.NumAttrs())
	for c := 0; c < k; c++ {
		modes = append(modes, ds.Row(c)...)
	}
	return ds, modes
}

func runChaosStream(t *testing.T, ds *dataset.Dataset, modes []dataset.Value, shards int, spec string) *Clusterer {
	t.Helper()
	c, err := New(Config{
		Params:       lsh.Params{Bands: 8, Rows: 2},
		Seed:         5,
		InitialModes: modes,
		NumAttrs:     ds.NumAttrs(),
		Shards:       shards,
		ChaosSpec:    spec,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.NumItems(); i++ {
		if _, err := c.Add(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

// TestStreamChaosZeroFaultBitIdentity pins the stream side of the
// resilient-path oracle: a zero-fault chaos spec routes every
// shortlist query through the backend layer and must leave every
// assignment and counter bit-identical to the direct fan-out.
func TestStreamChaosZeroFaultBitIdentity(t *testing.T) {
	ds, modes := chaosStreamWorkload(t)
	for _, shards := range []int{1, 3} {
		ref := runChaosStream(t, ds, modes, shards, "")
		got := runChaosStream(t, ds, modes, shards, "seed=4")
		refA, gotA := ref.Assignments(), got.Assignments()
		for i := range refA {
			if refA[i] != gotA[i] {
				t.Fatalf("shards=%d item %d: chaos %d, direct %d", shards, i, gotA[i], refA[i])
			}
		}
		if ref.Stats() != got.Stats() {
			t.Fatalf("shards=%d stats diverged: direct %+v, chaos %+v", shards, ref.Stats(), got.Stats())
		}
		if got.Stats().DegradedQueries != 0 {
			t.Fatalf("zero-fault spec degraded %d queries", got.Stats().DegradedQueries)
		}
	}
}

// TestStreamChaosDegradedQueriesCounted pins graceful degradation on
// the stream: with one shard permanently dead, every item is still
// absorbed (partial shortlist or full-scan fallback) and the degraded
// queries are counted.
func TestStreamChaosDegradedQueriesCounted(t *testing.T) {
	ds, modes := chaosStreamWorkload(t)
	c := runChaosStream(t, ds, modes, 3, "seed=1;shard1.dead")
	st := c.Stats()
	if st.Items != ds.NumItems() {
		t.Fatalf("absorbed %d of %d items", st.Items, ds.NumItems())
	}
	if st.DegradedQueries == 0 {
		t.Fatal("DegradedQueries = 0 with a dead shard")
	}
	for i, a := range c.Assignments() {
		if a < 0 || int(a) >= c.NumClusters() {
			t.Fatalf("item %d assigned out of range: %d", i, a)
		}
	}
}

// TestStreamChaosSpecInvalid pins spec validation at construction.
func TestStreamChaosSpecInvalid(t *testing.T) {
	ds, modes := chaosStreamWorkload(t)
	_, err := New(Config{
		Params:       lsh.Params{Bands: 8, Rows: 2},
		Seed:         5,
		InitialModes: modes,
		NumAttrs:     ds.NumAttrs(),
		Shards:       2,
		ChaosSpec:    "bogus=1",
	})
	if err == nil {
		t.Fatal("invalid chaos spec accepted")
	}
}
