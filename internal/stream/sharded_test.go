package stream

import (
	"fmt"
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/lsh"
)

// TestShardedStreamMatchesSingle pins stream sharding to the
// single-builder oracle: routing inserts across S map builders and
// merging per-shard buckets back into ascending item order must leave
// every assignment — and every counter — bit-identical, with and
// without signature memoization.
func TestShardedStreamMatchesSingle(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Items: 500, Clusters: 12, Attrs: 14, Domain: 150,
		MinRuleFrac: 0.6, MaxRuleFrac: 0.9, Seed: 29,
	})
	if err != nil {
		t.Fatal(err)
	}
	const k = 12
	modes := make([]dataset.Value, 0, k*ds.NumAttrs())
	for c := 0; c < k; c++ {
		modes = append(modes, ds.Row(c)...)
	}
	run := func(shards int, memoize bool) *Clusterer {
		c, err := New(Config{
			Params:       lsh.Params{Bands: 8, Rows: 2},
			Seed:         5,
			InitialModes: modes,
			NumAttrs:     ds.NumAttrs(),
			Shards:       shards,
			Memoize:      memoize,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < ds.NumItems(); i++ {
			if _, err := c.Add(ds.Row(i), nil); err != nil {
				t.Fatal(err)
			}
		}
		return c
	}
	for _, memoize := range []bool{false, true} {
		ref := run(1, memoize)
		for _, shards := range []int{2, 3, 5} {
			t.Run(fmt.Sprintf("s=%d/memo=%v", shards, memoize), func(t *testing.T) {
				got := run(shards, memoize)
				refA, gotA := ref.Assignments(), got.Assignments()
				for i := range refA {
					if refA[i] != gotA[i] {
						t.Fatalf("item %d: sharded %d, single %d", i, gotA[i], refA[i])
					}
				}
				if ref.Stats() != got.Stats() {
					t.Fatalf("stats diverged: single %+v, sharded %+v", ref.Stats(), got.Stats())
				}
				for c := 0; c < k; c++ {
					rm, gm := ref.Mode(c), got.Mode(c)
					for a := range rm {
						if rm[a] != gm[a] {
							t.Fatalf("mode %d attr %d: sharded %d, single %d", c, a, gm[a], rm[a])
						}
					}
				}
			})
		}
	}
}
