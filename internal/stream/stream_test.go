package stream

import (
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/metrics"
)

func streamWorkload(t *testing.T) (*dataset.Dataset, []dataset.Value) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Items: 600, Clusters: 20, Attrs: 24, Domain: 500,
		MinRuleFrac: 0.7, MaxRuleFrac: 0.9, Seed: 17,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Initial modes: items 0..19 — one per ground-truth cluster.
	modes := make([]dataset.Value, 0, 20*24)
	for c := 0; c < 20; c++ {
		modes = append(modes, ds.Row(c)...)
	}
	return ds, modes
}

func TestConfigValidation(t *testing.T) {
	_, modes := streamWorkload(t)
	bad := []Config{
		{Params: lsh.Params{Bands: 0, Rows: 1}, NumAttrs: 24, InitialModes: modes},
		{Params: lsh.Params{Bands: 4, Rows: 2}, NumAttrs: 0, InitialModes: modes},
		{Params: lsh.Params{Bands: 4, Rows: 2}, NumAttrs: 24, InitialModes: modes[:5]},
		{Params: lsh.Params{Bands: 4, Rows: 2}, NumAttrs: 24},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: New succeeded, want error", i)
		}
	}
}

func TestStreamingRecoversClusters(t *testing.T) {
	ds, modes := streamWorkload(t)
	c, err := New(Config{
		Params:       lsh.Params{Bands: 20, Rows: 2},
		Seed:         3,
		InitialModes: modes,
		NumAttrs:     24,
		CapacityHint: ds.NumItems(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.NumItems(); i++ {
		if _, err := c.Add(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if c.NumItems() != ds.NumItems() {
		t.Fatalf("NumItems = %d", c.NumItems())
	}
	p, err := metrics.Purity(c.Assignments(), ds.Labels())
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.9 {
		t.Fatalf("streaming purity = %v, want ≥ 0.9 on separable data", p)
	}
	st := c.Stats()
	if st.Items != ds.NumItems() {
		t.Fatalf("stats items = %d", st.Items)
	}
	// Early items full-scan (empty index); later items hit the index.
	if st.FullScans == 0 {
		t.Fatal("expected some full scans at stream start")
	}
	if st.FullScans >= st.Items {
		t.Fatal("index never produced a shortlist")
	}
	avgCand := float64(st.CandidatesTotal) / float64(st.Items)
	if avgCand >= 20 {
		t.Fatalf("avg candidates %v not below k", avgCand)
	}
}

func TestStreamingModesTrackData(t *testing.T) {
	_, modes := streamWorkload(t)
	c, err := New(Config{
		Params: lsh.Params{Bands: 4, Rows: 2}, Seed: 1,
		InitialModes: modes, NumAttrs: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]dataset.Value, 24)
	for a := range row {
		row[a] = dataset.Value(90000 + a) // unlike any mode
	}
	cl, err := c.Add(row, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Add the same row repeatedly: the receiving cluster's mode must
	// converge to it (frequency-based updating).
	for i := 0; i < 5; i++ {
		if _, err := c.Add(row, nil); err != nil {
			t.Fatal(err)
		}
	}
	mode := c.Mode(cl)
	for a := range row {
		if mode[a] != row[a] {
			t.Fatalf("mode attr %d = %v, want %v", a, mode[a], row[a])
		}
	}
}

func TestStreamingPresenceMask(t *testing.T) {
	_, modes := streamWorkload(t)
	c, err := New(Config{
		Params: lsh.Params{Bands: 2, Rows: 1}, Seed: 1,
		InitialModes: modes, NumAttrs: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	row := make([]dataset.Value, 24)
	for a := range row {
		row[a] = dataset.Value(a + 1)
	}
	present := make([]bool, 24) // all absent → empty set → full scan
	if _, err := c.Add(row, present); err != nil {
		t.Fatal(err)
	}
	if c.Stats().FullScans != 1 {
		t.Fatalf("full scans = %d, want 1", c.Stats().FullScans)
	}
	if _, err := c.Add(row, []bool{true}); err == nil {
		t.Fatal("expected presence-arity error")
	}
	if _, err := c.Add(row[:3], nil); err == nil {
		t.Fatal("expected row-arity error")
	}
}

// TestPresenceMaskExcludedFromModes is the regression test for the
// frequency-fold bug: Add used to fold the *full* row into the
// frequency table, so the placeholder values of absent attributes were
// counted as observations and could take over the evolving mode. Only
// present values may vote.
func TestPresenceMaskExcludedFromModes(t *testing.T) {
	c, err := New(Config{
		Params: lsh.Params{Bands: 2, Rows: 1}, Seed: 1,
		InitialModes: []dataset.Value{1, 1, 1, 1}, NumAttrs: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Attribute 0 is observed with value 9; attributes 1–3 carry the
	// placeholder 9 but are absent.
	row := []dataset.Value{9, 9, 9, 9}
	present := []bool{true, false, false, false}
	for i := 0; i < 5; i++ {
		if _, err := c.Add(row, present); err != nil {
			t.Fatal(err)
		}
	}
	mode := c.Mode(0)
	if mode[0] != 9 {
		t.Fatalf("observed attribute: mode[0] = %v, want 9", mode[0])
	}
	for a := 1; a < 4; a++ {
		if mode[a] != 1 {
			t.Fatalf("absent attribute %d: placeholder value leaked into the mode (= %v, want 1)", a, mode[a])
		}
	}
}

// TestPresenceMaskExcludedFromDistance pins the documented
// missing-data distance semantics: an absent attribute neither matches
// nor mismatches.
func TestPresenceMaskExcludedFromDistance(t *testing.T) {
	c, err := New(Config{
		Params: lsh.Params{Bands: 2, Rows: 1}, Seed: 1,
		// Mode 0 = [5 5], mode 1 = [9 7].
		InitialModes: []dataset.Value{5, 5, 9, 7}, NumAttrs: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Attribute 0 = 9 (observed), attribute 1 = 5 (absent). Masked
	// distance: 1 to mode 0, 0 to mode 1. Counting the absent slot
	// would instead tie them at 1 and elect cluster 0.
	cl, err := c.Add([]dataset.Value{9, 5}, []bool{true, false})
	if err != nil {
		t.Fatal(err)
	}
	if cl != 1 {
		t.Fatalf("assigned cluster %d, want 1 (absent attribute must not count)", cl)
	}
}

// TestMemoizedStreamMatchesPlain asserts the memoized signing path is
// behaviour-identical: same assignments, same index statistics.
func TestMemoizedStreamMatchesPlain(t *testing.T) {
	ds, modes := streamWorkload(t)
	mk := func(memoize bool) *Clusterer {
		c, err := New(Config{
			Params:       lsh.Params{Bands: 20, Rows: 2},
			Seed:         3,
			InitialModes: modes,
			NumAttrs:     24,
			CapacityHint: ds.NumItems(),
			Memoize:      memoize,
		})
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	plain, memo := mk(false), mk(true)
	present := make([]bool, 24)
	for a := range present {
		present[a] = a%5 != 0 // exercise the masked path too
	}
	for i := 0; i < ds.NumItems(); i++ {
		mask := present
		if i%2 == 0 {
			mask = nil
		}
		a, err := plain.Add(ds.Row(i), mask)
		if err != nil {
			t.Fatal(err)
		}
		b, err := memo.Add(ds.Row(i), mask)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("item %d: plain cluster %d, memoized %d", i, a, b)
		}
	}
	if plain.Stats() != memo.Stats() {
		t.Fatalf("stats diverged: plain %+v, memoized %+v", plain.Stats(), memo.Stats())
	}
}

func TestFromModel(t *testing.T) {
	ds, modes := streamWorkload(t)
	model := &kmodes.Model{K: 20, M: 24, Modes: modes}
	c, err := FromModel(model, lsh.Params{Bands: 10, Rows: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := c.Add(ds.Row(i), nil); err != nil {
			t.Fatal(err)
		}
	}
	snap := c.Model()
	if snap.K != 20 || snap.M != 24 {
		t.Fatalf("model shape (%d,%d)", snap.K, snap.M)
	}
}
