// Package kmodes implements Huang's K-Modes algorithm for clustering
// categorical data (paper §III-A1): the simple matching dissimilarity
// d(X,Y) = Σ δ(x_j, y_j) (Eq. 1–2), cluster centroids represented by
// modes — the per-attribute most frequent value of the members (Eq. 3) —
// and the cost function P(W,Q) (Eq. 4).
//
// The package provides the clustering *space* (items, modes,
// dissimilarity, mode recomputation); the Lloyd-style iteration loop that
// drives it — exact or LSH-accelerated — lives in internal/core, which
// consumes a Space through interfaces so that the same driver also runs
// the numeric K-Means extension.
package kmodes

import (
	"fmt"
	"math/rand"

	"lshcluster/internal/dataset"
)

// EmptyClusterPolicy selects what happens to a cluster that loses all its
// members during an iteration.
type EmptyClusterPolicy int

const (
	// KeepMode retains the cluster's previous mode, leaving it able to
	// re-attract items later. This is the default and matches the
	// behaviour implied by the paper (clusters are never dropped).
	KeepMode EmptyClusterPolicy = iota
	// ReseedRandomItem re-centres an emptied cluster on a random item.
	ReseedRandomItem
)

// Config parameterises a Space.
type Config struct {
	// K is the number of clusters. Required, 1 ≤ K ≤ NumItems.
	K int
	// Seed drives the initial mode selection and any reseeding.
	Seed int64
	// EmptyCluster selects the empty-cluster policy. Default KeepMode.
	EmptyCluster EmptyClusterPolicy
}

// Space is the K-Modes clustering space over a categorical dataset: k
// modes plus the operations the core driver needs. It satisfies
// core.Space structurally.
type Space struct {
	ds     *dataset.Dataset
	k      int
	m      int
	modes  []dataset.Value // k·m row-major
	seeds  []int32         // the items the initial modes were copied from
	policy EmptyClusterPolicy
	rng    *rand.Rand

	// scratch for mode recomputation
	members  [][]int32
	freq     map[dataset.Value]int32
	sizesBuf []int32

	// inc holds the FreqTable-backed incremental engine state
	// (core.IncrementalSpace); nil until BeginIncremental.
	inc *incremental

	// scalarKernels routes distance evaluations through the scalar
	// reference kernels instead of the unrolled ones — the oracle the
	// kernel equivalence runs compare against (core.KernelConfigurable).
	scalarKernels bool
}

// SetScalarKernels switches the space between the unrolled mismatch
// kernels (false, the default) and their scalar references (true, the
// bit-identical oracle). Set before a run, not during one.
func (s *Space) SetScalarKernels(scalar bool) { s.scalarKernels = scalar }

// mismatches counts full-row mismatches through the configured kernel.
func (s *Space) mismatches(x, y []dataset.Value) int {
	if s.scalarKernels {
		return dataset.MismatchesScalar(x, y)
	}
	return dataset.Mismatches(x, y)
}

// mismatchesBounded counts early-abandon mismatches through the
// configured kernel.
func (s *Space) mismatchesBounded(x, y []dataset.Value, bound int) int {
	if s.scalarKernels {
		return dataset.MismatchesBoundedScalar(x, y, bound)
	}
	return dataset.MismatchesBounded(x, y, bound)
}

// NewSpace selects cfg.K distinct random items as initial modes (the
// paper's initialisation: "A simple selection method would be to choose k
// random items from the dataset") and returns the space.
func NewSpace(ds *dataset.Dataset, cfg Config) (*Space, error) {
	if cfg.K < 1 || cfg.K > ds.NumItems() {
		return nil, fmt.Errorf("kmodes: k=%d out of range [1,%d]", cfg.K, ds.NumItems())
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	seeds := sampleDistinct(rng, ds.NumItems(), cfg.K)
	return NewSpaceFromSeeds(ds, seeds, cfg)
}

// NewSpaceFromSeeds builds a space whose initial modes are copies of the
// given items. Experiments use this to give the baseline and every
// accelerated variant identical initial centroids, as the paper does
// ("the same initial centroid points were selected").
func NewSpaceFromSeeds(ds *dataset.Dataset, seedItems []int32, cfg Config) (*Space, error) {
	k := len(seedItems)
	if k < 1 {
		return nil, fmt.Errorf("kmodes: no seed items")
	}
	if cfg.K != 0 && cfg.K != k {
		return nil, fmt.Errorf("kmodes: cfg.K=%d but %d seed items", cfg.K, k)
	}
	m := ds.NumAttrs()
	s := &Space{
		ds:     ds,
		k:      k,
		m:      m,
		modes:  make([]dataset.Value, k*m),
		seeds:  append([]int32(nil), seedItems...),
		policy: cfg.EmptyCluster,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
		freq:   make(map[dataset.Value]int32),
	}
	for c, item := range seedItems {
		if item < 0 || int(item) >= ds.NumItems() {
			return nil, fmt.Errorf("kmodes: seed item %d out of range", item)
		}
		copy(s.mode(c), ds.Row(int(item)))
	}
	return s, nil
}

// sampleDistinct draws k distinct indices from [0,n) via a partial
// Fisher–Yates shuffle.
func sampleDistinct(rng *rand.Rand, n, k int) []int32 {
	idx := make([]int32, n)
	for i := range idx {
		idx[i] = int32(i)
	}
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k:k]
}

// Dataset returns the underlying dataset.
func (s *Space) Dataset() *dataset.Dataset { return s.ds }

// NumItems returns the number of items being clustered.
func (s *Space) NumItems() int { return s.ds.NumItems() }

// NumClusters returns k.
func (s *Space) NumClusters() int { return s.k }

// Seeds returns the items the initial modes were copied from.
func (s *Space) Seeds() []int32 { return s.seeds }

func (s *Space) mode(c int) []dataset.Value {
	return s.modes[c*s.m : (c+1)*s.m : (c+1)*s.m]
}

// Mode returns cluster c's current mode. The slice aliases internal state
// and must not be modified.
func (s *Space) Mode(c int) []dataset.Value { return s.mode(c) }

// Dissimilarity returns d(item, mode_c): the number of mismatching
// attributes (Eq. 1–2).
func (s *Space) Dissimilarity(item, cluster int) float64 {
	return float64(s.mismatches(s.ds.Row(item), s.mode(cluster)))
}

// BoundedDissimilarity behaves like Dissimilarity but may return any
// value ≥ bound as soon as the running mismatch count reaches bound
// (early abandon). The paper's implementation computes full distances;
// the driver only enables this under the EarlyAbandon option.
func (s *Space) BoundedDissimilarity(item, cluster int, bound float64) float64 {
	ib := int(bound)
	if float64(ib) < bound {
		ib++ // ceil for non-integral bounds
	}
	return float64(s.mismatchesBounded(s.ds.Row(item), s.mode(cluster), ib))
}

// RecomputeCentroids recalculates every cluster's mode as the
// per-attribute most frequent value among its members (the minimiser of
// Eq. 3; ties break towards the smallest value ID for determinism).
// Clusters with no members follow the configured EmptyClusterPolicy.
func (s *Space) RecomputeCentroids(assign []int32) {
	if len(assign) != s.NumItems() {
		panic("kmodes: assignment length mismatch")
	}
	// Bucket items by cluster with a counting sort.
	if s.members == nil {
		s.members = make([][]int32, s.k)
	}
	for c := range s.members {
		s.members[c] = s.members[c][:0]
	}
	for i, c := range assign {
		s.members[c] = append(s.members[c], int32(i))
	}
	for c := 0; c < s.k; c++ {
		items := s.members[c]
		if len(items) == 0 {
			if s.policy == ReseedRandomItem {
				copy(s.mode(c), s.ds.Row(s.rng.Intn(s.NumItems())))
			}
			continue
		}
		mode := s.mode(c)
		for a := 0; a < s.m; a++ {
			clear(s.freq)
			var bestVal dataset.Value
			var bestCount int32 = -1
			for _, it := range items {
				v := s.ds.Row(int(it))[a]
				n := s.freq[v] + 1
				s.freq[v] = n
				if n > bestCount || (n == bestCount && v < bestVal) {
					bestCount, bestVal = n, v
				}
			}
			mode[a] = bestVal
		}
	}
}

// ClusterSizes returns the member count of every cluster under assign,
// reusing an internal buffer.
func (s *Space) ClusterSizes(assign []int32) []int32 {
	if cap(s.sizesBuf) < s.k {
		s.sizesBuf = make([]int32, s.k)
	}
	sizes := s.sizesBuf[:s.k]
	for i := range sizes {
		sizes[i] = 0
	}
	for _, c := range assign {
		sizes[c]++
	}
	return sizes
}

// Cost evaluates the K-Modes objective P(W,Q) (Eq. 4) under the given
// assignment: the total number of item-to-mode mismatches.
func (s *Space) Cost(assign []int32) float64 {
	total := 0
	for i, c := range assign {
		total += s.mismatches(s.ds.Row(i), s.mode(int(c)))
	}
	return float64(total)
}

// Model snapshots the current modes into a standalone, serialisable
// model.
func (s *Space) Model() *Model {
	return &Model{
		K:     s.k,
		M:     s.m,
		Modes: append([]dataset.Value(nil), s.modes...),
	}
}
