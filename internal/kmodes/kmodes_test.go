package kmodes

import (
	"bytes"
	"math/rand"
	"testing"

	"lshcluster/internal/dataset"
)

// toyDataset: 6 items, 3 attributes, two obvious groups.
func toyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	b := dataset.NewBuilder([]string{"x", "y", "z"})
	rows := [][]string{
		{"a", "a", "a"},
		{"a", "a", "b"},
		{"a", "a", "a"},
		{"q", "r", "s"},
		{"q", "r", "t"},
		{"q", "r", "s"},
	}
	for _, r := range rows {
		if err := b.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestNewSpaceValidation(t *testing.T) {
	ds := toyDataset(t)
	if _, err := NewSpace(ds, Config{K: 0}); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := NewSpace(ds, Config{K: 7}); err == nil {
		t.Fatal("expected error for k>n")
	}
	if _, err := NewSpaceFromSeeds(ds, nil, Config{}); err == nil {
		t.Fatal("expected error for no seeds")
	}
	if _, err := NewSpaceFromSeeds(ds, []int32{99}, Config{}); err == nil {
		t.Fatal("expected error for out-of-range seed")
	}
	if _, err := NewSpaceFromSeeds(ds, []int32{0, 1}, Config{K: 3}); err == nil {
		t.Fatal("expected error for K/seed mismatch")
	}
}

func TestSeedsDistinctAndModesCopied(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpace(ds, Config{K: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int32]bool{}
	for c, item := range s.Seeds() {
		if seen[item] {
			t.Fatalf("seed item %d repeated", item)
		}
		seen[item] = true
		mode := s.Mode(c)
		row := ds.Row(int(item))
		for a := range row {
			if mode[a] != row[a] {
				t.Fatalf("mode %d not copied from seed item %d", c, item)
			}
		}
	}
}

func TestDissimilarity(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	// Item 1 = {a,a,b} vs mode 0 = row 0 = {a,a,a}: distance 1.
	if d := s.Dissimilarity(1, 0); d != 1 {
		t.Fatalf("d(1, mode0) = %v, want 1", d)
	}
	// Item 1 vs mode 1 = row 3 = {q,r,s}: distance 3.
	if d := s.Dissimilarity(1, 1); d != 3 {
		t.Fatalf("d(1, mode1) = %v, want 3", d)
	}
}

func TestBoundedDissimilarity(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if d := s.BoundedDissimilarity(1, 1, 2); d < 2 {
		t.Fatalf("bounded distance %v below bound", d)
	}
	if d := s.BoundedDissimilarity(1, 1, 10); d != 3 {
		t.Fatalf("unconstrained bounded distance = %v, want 3", d)
	}
	// Fractional bound must behave like its ceiling.
	if d := s.BoundedDissimilarity(1, 1, 2.5); d < 2.5 {
		t.Fatalf("fractional bound returned %v", d)
	}
}

func TestRecomputeCentroidsMajority(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	assign := []int32{0, 0, 0, 1, 1, 1}
	s.RecomputeCentroids(assign)
	// Cluster 0 members: rows 0–2 → mode {a,a,a} (a:2 beats b:1 on z).
	want0 := ds.Row(0)
	for a, v := range s.Mode(0) {
		if v != want0[a] {
			t.Fatalf("mode 0 attr %d = %v, want %v", a, v, want0[a])
		}
	}
	// Cluster 1 members: rows 3–5 → mode {q,r,s}.
	want1 := ds.Row(3)
	for a, v := range s.Mode(1) {
		if v != want1[a] {
			t.Fatalf("mode 1 attr %d = %v, want %v", a, v, want1[a])
		}
	}
}

// TestModeMinimisesObjective verifies the frequency-argmax mode minimises
// D(X,Q) = Σ_i d(X_i, Q) (paper Eq. 3) by comparing against every member
// row and random probes.
func TestModeMinimisesObjective(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	const n, m = 40, 6
	vals := make([]dataset.Value, n*m)
	for i := range vals {
		// Small per-attribute domains make ties and skew likely.
		attr := i % m
		vals[i] = dataset.Value(attr*10 + rng.Intn(3) + 1)
	}
	ds, err := dataset.New(datasetAttrs(m), vals, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpaceFromSeeds(ds, []int32{0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	assign := make([]int32, n)
	s.RecomputeCentroids(assign)
	mode := s.Mode(0)

	objective := func(q []dataset.Value) int {
		total := 0
		for i := 0; i < n; i++ {
			total += dataset.Mismatches(ds.Row(i), q)
		}
		return total
	}
	base := objective(mode)
	for i := 0; i < n; i++ {
		if objective(ds.Row(i)) < base {
			t.Fatalf("member row %d beats the computed mode", i)
		}
	}
	probe := make([]dataset.Value, m)
	for trial := 0; trial < 200; trial++ {
		for a := range probe {
			probe[a] = dataset.Value(a*10 + rng.Intn(3) + 1)
		}
		if objective(probe) < base {
			t.Fatalf("random probe %v beats the computed mode %v", probe, mode)
		}
	}
}

func datasetAttrs(m int) []string {
	names := make([]string, m)
	for i := range names {
		names[i] = "a"
	}
	return names
}

func TestModeTieBreaksToSmallestID(t *testing.T) {
	// Two values with equal frequency: the smaller ID must win,
	// deterministically.
	vals := []dataset.Value{1, 2, 1, 2} // 4 items × 1 attr? No: 2 items × 2 attrs.
	ds, err := dataset.New([]string{"p", "q"}, vals, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSpaceFromSeeds(ds, []int32{0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	s.RecomputeCentroids([]int32{0, 0})
	if s.Mode(0)[0] != 1 || s.Mode(0)[1] != 2 {
		t.Fatalf("tie-break produced mode %v, want [1 2]", s.Mode(0))
	}
}

func TestEmptyClusterKeepMode(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := append([]dataset.Value(nil), s.Mode(1)...)
	s.RecomputeCentroids([]int32{0, 0, 0, 0, 0, 0}) // cluster 1 empty
	for a, v := range s.Mode(1) {
		if v != before[a] {
			t.Fatal("KeepMode policy must retain the previous mode")
		}
	}
}

func TestEmptyClusterReseed(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3},
		Config{EmptyCluster: ReseedRandomItem, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	s.RecomputeCentroids([]int32{0, 0, 0, 0, 0, 0})
	mode := s.Mode(1)
	found := false
	for i := 0; i < ds.NumItems(); i++ {
		if dataset.Mismatches(mode, ds.Row(i)) == 0 {
			found = true
			break
		}
	}
	if !found {
		t.Fatal("reseeded mode is not a copy of any item")
	}
}

func TestCost(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	assign := []int32{0, 0, 0, 1, 1, 1}
	// Distances to mode 0={a,a,a}: 0,1,0; to mode 1={q,r,s}: 0,1,0 → 2.
	if c := s.Cost(assign); c != 2 {
		t.Fatalf("cost = %v, want 2", c)
	}
}

func TestClusterSizes(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	sizes := s.ClusterSizes([]int32{0, 1, 0, 1, 1, 1})
	if sizes[0] != 2 || sizes[1] != 4 {
		t.Fatalf("sizes = %v, want [2 4]", sizes)
	}
}

func TestAssignmentLengthPanics(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on assignment length mismatch")
		}
	}()
	s.RecomputeCentroids([]int32{0})
}

func TestModelPredict(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Model()
	c, d := m.Predict(ds.Row(1))
	if c != 0 || d != 1 {
		t.Fatalf("Predict(row1) = (%d,%d), want (0,1)", c, d)
	}
	c, d = m.Predict(ds.Row(4))
	if c != 1 || d != 1 {
		t.Fatalf("Predict(row4) = (%d,%d), want (1,1)", c, d)
	}
}

func TestModelPredictArityPanics(t *testing.T) {
	ds := toyDataset(t)
	s, _ := NewSpaceFromSeeds(ds, []int32{0}, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	s.Model().Predict([]dataset.Value{1})
}

func TestModelSaveLoad(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Model()
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.K != m.K || back.M != m.M {
		t.Fatalf("round trip shape (%d,%d)", back.K, back.M)
	}
	for i := range m.Modes {
		if back.Modes[i] != m.Modes[i] {
			t.Fatalf("mode value %d differs after round trip", i)
		}
	}
}

func TestLoadModelErrors(t *testing.T) {
	if _, err := LoadModel(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Fatal("expected decode error")
	}
}

func TestModelIsSnapshot(t *testing.T) {
	ds := toyDataset(t)
	s, err := NewSpaceFromSeeds(ds, []int32{0, 3}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	m := s.Model()
	orig := m.Mode(0)[0]
	s.RecomputeCentroids([]int32{1, 1, 1, 1, 1, 1})
	if m.Mode(0)[0] != orig {
		t.Fatal("model aliases live space state")
	}
}

func TestSampleDistinctCoversRange(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	got := sampleDistinct(rng, 10, 10)
	seen := map[int32]bool{}
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("sampleDistinct produced %v", got)
		}
		seen[v] = true
	}
}
