package kmodes

import (
	"slices"
)

// This file implements core.IncrementalSpace for the K-Modes space:
// Huang's frequency-based mode update (paper §III-A1) driven by the
// per-cluster FreqTable, so that after bootstrap each iteration costs
// O(moves·m) for the moves plus an O(n) membership scan for objective
// bookkeeping, instead of the O(n·m) full RecomputeCentroids + O(n·m)
// full Cost the batch path pays.
//
// Exactness contract: the published modes and the incremental cost are
// bit-identical to RecomputeCentroids/Cost on the same assignment —
// FreqTable maintains the same argmax (highest count, ties to the
// smallest value ID), all objective arithmetic is integral, and the
// empty-cluster policy is replayed with the same rand draws in the same
// cluster order as the batch path. The equivalence tests in
// internal/core assert this across tie-break modes, update modes and
// worker counts.

// incremental is the engine state attached to a Space.
type incremental struct {
	freq      *FreqTable
	dirty     []bool  // clusters whose membership changed this pass
	dirtyList []int32 // the same clusters, in first-touched order
	changed   []bool  // clusters whose visible mode changed at FinishPass
	// changedList records the clusters whose visible mode changed at
	// the most recent publish (BeginIncremental or FinishPass),
	// retained until the next publish for ChangedClusters.
	changedList []int32
	trackCost   bool
	itemCost    []int32 // cached Mismatches(row(i), mode(assign[i]))
	total       int64   // Σ itemCost, maintained exactly in integers
}

// BeginIncremental builds the frequency tables from a complete
// assignment and publishes the induced modes — the incremental
// equivalent of the first RecomputeCentroids(assign) call, including the
// empty-cluster policy (with identical rand draws). trackCost=false
// skips objective bookkeeping; IncrementalCost then falls back to a
// full Cost scan.
func (s *Space) BeginIncremental(assign []int32, trackCost bool) {
	n := s.NumItems()
	if len(assign) != n {
		panic("kmodes: assignment length mismatch")
	}
	inc := s.inc
	if inc == nil {
		inc = &incremental{}
		s.inc = inc
	}
	inc.freq = NewFreqTable(s.k, s.m)
	inc.dirty = make([]bool, s.k)
	inc.changed = make([]bool, s.k)
	inc.dirtyList = inc.dirtyList[:0]
	inc.trackCost = trackCost
	for c := 0; c < s.k; c++ {
		// Current modes become the placeholders an empty cluster keeps.
		inc.freq.SetMode(c, s.mode(c))
	}
	for i, c := range assign {
		inc.freq.Add(int(c), s.ds.Row(i))
	}
	if s.policy == ReseedRandomItem {
		for c := 0; c < s.k; c++ {
			if inc.freq.Size(c) == 0 {
				inc.freq.SetMode(c, s.ds.Row(s.rng.Intn(n)))
			}
		}
	}
	for c := 0; c < s.k; c++ {
		copy(s.mode(c), inc.freq.Mode(c))
	}
	// Every mode was just (re)published from scratch; report them all
	// changed so a consumer never treats pre-Begin state as current.
	inc.changedList = inc.changedList[:0]
	for c := 0; c < s.k; c++ {
		inc.changedList = append(inc.changedList, int32(c))
	}
	if trackCost {
		if cap(inc.itemCost) < n {
			inc.itemCost = make([]int32, n)
		}
		inc.itemCost = inc.itemCost[:n]
		inc.total = 0
		for i, c := range assign {
			d := int32(s.mismatches(s.ds.Row(i), s.mode(int(c))))
			inc.itemCost[i] = d
			inc.total += int64(d)
		}
	}
}

// ApplyMove transfers one item between cluster frequency tables. The
// visible modes are untouched until FinishPass, so moves applied during
// a pass cannot perturb later assignment decisions in that pass.
func (s *Space) ApplyMove(item int, from, to int32) {
	inc := s.inc
	row := s.ds.Row(item)
	inc.freq.Move(int(from), int(to), row)
	s.markDirty(from)
	s.markDirty(to)
	if inc.trackCost {
		// Cost against the pass-frozen mode of the new cluster; if that
		// mode changes at FinishPass the member rescan refreshes it.
		d := int32(s.mismatches(row, s.mode(int(to))))
		inc.total += int64(d - inc.itemCost[item])
		inc.itemCost[item] = d
	}
}

func (s *Space) markDirty(c int32) {
	if !s.inc.dirty[c] {
		s.inc.dirty[c] = true
		s.inc.dirtyList = append(s.inc.dirtyList, c)
	}
}

// FinishPass publishes the modes of every cluster whose membership
// changed since the last pass — the incremental equivalent of
// RecomputeCentroids(assign).
func (s *Space) FinishPass(assign []int32) {
	inc := s.inc
	inc.changedList = inc.changedList[:0]
	if s.policy == ReseedRandomItem {
		// The batch path redraws a random item for every empty cluster
		// on every recompute, dirty or not; replay that draw-for-draw.
		for c := 0; c < s.k; c++ {
			if inc.freq.Size(c) == 0 {
				row := s.ds.Row(s.rng.Intn(s.NumItems()))
				inc.freq.SetMode(c, row)
				copy(s.mode(c), row)
				inc.changedList = append(inc.changedList, int32(c))
			}
		}
	}
	changedAny := false
	for _, c := range inc.dirtyList {
		if inc.freq.Size(int(c)) == 0 {
			if s.policy == KeepMode {
				// A cluster emptied mid-pass keeps the mode of the
				// previous pass (what the batch path does), not the
				// per-attribute leftovers of the removal sequence;
				// resync the table's placeholder to the visible mode.
				inc.freq.SetMode(int(c), s.mode(int(c)))
			}
			continue
		}
		if !slices.Equal(inc.freq.Mode(int(c)), s.mode(int(c))) {
			copy(s.mode(int(c)), inc.freq.Mode(int(c)))
			inc.changed[c] = true
			changedAny = true
			inc.changedList = append(inc.changedList, c)
		}
	}
	if inc.trackCost && changedAny {
		// One light O(n) scan; the O(m) distance refresh touches only
		// members of clusters whose mode actually changed.
		for i, c := range assign {
			if inc.changed[c] {
				d := int32(s.mismatches(s.ds.Row(i), s.mode(int(c))))
				inc.total += int64(d - inc.itemCost[i])
				inc.itemCost[i] = d
			}
		}
	}
	for _, c := range inc.dirtyList {
		inc.dirty[c] = false
		inc.changed[c] = false
	}
	inc.dirtyList = inc.dirtyList[:0]
}

// ChangedClusters returns the clusters whose visible mode changed
// during the most recent publish (BeginIncremental or FinishPass):
// every reseeded empty cluster — each redraw counts as a change, even
// when the same row is redrawn — plus every dirty cluster whose
// recomputed mode actually differs from the published one. Valid until
// the next publish; the slice is reused. This is the
// core.ChangeReporter capability the driver's active-set filter
// consumes: items whose shortlist cannot reach any of these clusters
// (and did not lose or gain a colliding neighbour) provably keep their
// assignment and are skipped.
func (s *Space) ChangedClusters() []int32 {
	if s.inc == nil {
		return nil
	}
	return s.inc.changedList
}

// IncrementalCost returns the K-Modes objective under assign. With cost
// tracking enabled this is O(1): the total is maintained exactly in
// integer arithmetic, so it is bit-identical to Cost(assign).
func (s *Space) IncrementalCost(assign []int32) float64 {
	if s.inc == nil || !s.inc.trackCost {
		return s.Cost(assign)
	}
	return float64(s.inc.total)
}
