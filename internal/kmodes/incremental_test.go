package kmodes

import (
	"testing"

	"lshcluster/internal/dataset"
)

// incTestSpace builds a tiny space over explicit rows with the first k
// items as seeds.
func incTestSpace(t *testing.T, rows [][]dataset.Value, k int, policy EmptyClusterPolicy) *Space {
	t.Helper()
	m := len(rows[0])
	values := make([]dataset.Value, 0, len(rows)*m)
	for _, r := range rows {
		values = append(values, r...)
	}
	ds, err := dataset.New(make([]string, m), values, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]int32, k)
	for c := range seeds {
		seeds[c] = int32(c)
	}
	s, err := NewSpaceFromSeeds(ds, seeds, Config{EmptyCluster: policy})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestEmptiedClusterKeepsPreviousPassMode pins the subtle KeepMode case:
// when a cluster loses all members during a pass, the batch path keeps
// the mode of the *previous* pass (computed from the then-members),
// while naive FreqTable removal would leave per-attribute leftovers of
// the removal order. FinishPass must restore batch semantics.
func TestEmptiedClusterKeepsPreviousPassMode(t *testing.T) {
	// Cluster 0 members hold values {1, 2} on the single attribute:
	// previous-pass mode is 1 (tie to the smaller value). Removing item
	// 0 (value 1) then item 2 (value 2) would leave a FreqTable
	// leftover of 2.
	rows := [][]dataset.Value{{1}, {9}, {2}}
	s := incTestSpace(t, rows, 2, KeepMode)
	assign := []int32{0, 1, 0}
	s.BeginIncremental(assign, true)
	if got := s.Mode(0)[0]; got != dataset.Value(1) {
		t.Fatalf("initial mode = %d, want 1", got)
	}

	// Batch oracle over the same assignment history.
	oracle := incTestSpace(t, rows, 2, KeepMode)
	oracle.RecomputeCentroids(assign)

	// Move both members of cluster 0 to cluster 1, emptying it.
	next := []int32{1, 1, 1}
	s.ApplyMove(0, 0, 1)
	s.ApplyMove(2, 0, 1)
	s.FinishPass(next)
	oracle.RecomputeCentroids(next)

	if got, want := s.Mode(0)[0], oracle.Mode(0)[0]; got != want {
		t.Fatalf("emptied cluster mode = %d, batch keeps %d", got, want)
	}
	if got, want := s.IncrementalCost(next), oracle.Cost(next); got != want {
		t.Fatalf("incremental cost = %v, batch %v", got, want)
	}

	// The emptied cluster must be able to attract and absorb members
	// again with exact mode maintenance.
	again := []int32{0, 1, 1}
	s.ApplyMove(0, 1, 0)
	s.FinishPass(again)
	oracle.RecomputeCentroids(again)
	if got, want := s.Mode(0)[0], oracle.Mode(0)[0]; got != want {
		t.Fatalf("refilled cluster mode = %d, batch %d", got, want)
	}
	if got, want := s.IncrementalCost(again), oracle.Cost(again); got != want {
		t.Fatalf("refilled incremental cost = %v, batch %v", got, want)
	}
}

// TestIncrementalRandomMoveSequence fuzzes a longer stateful move
// sequence against the batch oracle, pass by pass.
func TestIncrementalRandomMoveSequence(t *testing.T) {
	const n, k, m = 120, 8, 6
	rows := make([][]dataset.Value, n)
	// Deterministic pseudo-data with heavy value reuse so modes tie
	// and shift often.
	x := uint64(1)
	for i := range rows {
		r := make([]dataset.Value, m)
		for a := range r {
			x = x*6364136223846793005 + 1442695040888963407
			r[a] = dataset.Value(1 + (x>>33)%5)
		}
		rows[i] = r
	}
	s := incTestSpace(t, rows, k, KeepMode)
	oracle := incTestSpace(t, rows, k, KeepMode)

	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(i % k)
	}
	s.BeginIncremental(assign, true)
	oracle.RecomputeCentroids(assign)

	for pass := 0; pass < 30; pass++ {
		// A handful of pseudo-random moves per pass.
		for j := 0; j < 7; j++ {
			x = x*6364136223846793005 + 1442695040888963407
			item := int((x >> 33) % n)
			to := int32((x >> 13) % k)
			from := assign[item]
			if to == from {
				continue
			}
			assign[item] = to
			s.ApplyMove(item, from, to)
		}
		s.FinishPass(assign)
		oracle.RecomputeCentroids(assign)
		for c := 0; c < k; c++ {
			gm, wm := s.Mode(c), oracle.Mode(c)
			for a := range gm {
				if gm[a] != wm[a] {
					t.Fatalf("pass %d cluster %d attr %d: incremental %d, batch %d",
						pass, c, a, gm[a], wm[a])
				}
			}
		}
		if got, want := s.IncrementalCost(assign), oracle.Cost(assign); got != want {
			t.Fatalf("pass %d: incremental cost %v, batch %v", pass, got, want)
		}
	}
}
