package kmodes

import (
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
)

func benchSpace(b *testing.B, n, k, m int) (*Space, *dataset.Dataset) {
	b.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Items: n, Clusters: k, Attrs: m, Domain: 40000, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	s, err := NewSpace(ds, Config{K: k, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	return s, ds
}

func BenchmarkDissimilarity100Attrs(b *testing.B) {
	s, _ := benchSpace(b, 500, 50, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Dissimilarity(i%500, i%50)
	}
}

func BenchmarkBoundedDissimilarity100Attrs(b *testing.B) {
	s, _ := benchSpace(b, 500, 50, 100)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.BoundedDissimilarity(i%500, i%50, 10)
	}
}

func BenchmarkRecomputeCentroids(b *testing.B) {
	s, ds := benchSpace(b, 2000, 200, 50)
	assign := make([]int32, ds.NumItems())
	for i := range assign {
		assign[i] = int32(i % 200)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RecomputeCentroids(assign)
	}
}

func BenchmarkFreqTableMove(b *testing.B) {
	ds, err := datagen.Generate(datagen.Config{
		Items: 1000, Clusters: 100, Attrs: 50, Domain: 40000, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	ft := NewFreqTable(100, 50)
	for i := 0; i < 1000; i++ {
		ft.Add(i%100, ds.Row(i))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		item := i % 1000
		from := item % 100
		to := (item + 1) % 100
		ft.Move(from, to, ds.Row(item))
		ft.Move(to, from, ds.Row(item))
	}
}
