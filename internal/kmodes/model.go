package kmodes

import (
	"encoding/gob"
	"fmt"
	"io"

	"lshcluster/internal/dataset"
)

// Model is an immutable snapshot of trained cluster modes. Value IDs are
// relative to the dictionary of the dataset the model was trained on, so
// a persisted model is only meaningful together with data interned
// through the same dictionary (or the same generator configuration for
// numeric-ID datasets).
type Model struct {
	K     int
	M     int
	Modes []dataset.Value // K·M row-major
}

// Mode returns cluster c's mode vector. The slice aliases the model.
func (m *Model) Mode(c int) []dataset.Value {
	return m.Modes[c*m.M : (c+1)*m.M]
}

// Predict returns the cluster whose mode is nearest to row (ties towards
// the lowest cluster index), plus the dissimilarity.
func (m *Model) Predict(row []dataset.Value) (cluster, mismatches int) {
	if len(row) != m.M {
		panic("kmodes: Predict row arity mismatch")
	}
	best, bestD := 0, m.M+1
	for c := 0; c < m.K; c++ {
		d := dataset.MismatchesBounded(row, m.Mode(c), bestD)
		if d < bestD {
			best, bestD = c, d
		}
	}
	return best, bestD
}

// modelWire is the gob wire format, versioned for forward evolution.
type modelWire struct {
	Version int
	K, M    int
	Modes   []uint32
}

// Save serialises the model with encoding/gob.
func (m *Model) Save(w io.Writer) error {
	wire := modelWire{Version: 1, K: m.K, M: m.M, Modes: make([]uint32, len(m.Modes))}
	for i, v := range m.Modes {
		wire.Modes[i] = uint32(v)
	}
	if err := gob.NewEncoder(w).Encode(wire); err != nil {
		return fmt.Errorf("kmodes: encoding model: %w", err)
	}
	return nil
}

// LoadModel reads a model previously written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var wire modelWire
	if err := gob.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("kmodes: decoding model: %w", err)
	}
	if wire.Version != 1 {
		return nil, fmt.Errorf("kmodes: unsupported model version %d", wire.Version)
	}
	if wire.K < 1 || wire.M < 1 || len(wire.Modes) != wire.K*wire.M {
		return nil, fmt.Errorf("kmodes: corrupt model (k=%d m=%d len=%d)", wire.K, wire.M, len(wire.Modes))
	}
	m := &Model{K: wire.K, M: wire.M, Modes: make([]dataset.Value, len(wire.Modes))}
	for i, v := range wire.Modes {
		m.Modes[i] = dataset.Value(v)
	}
	return m, nil
}
