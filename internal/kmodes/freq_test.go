package kmodes

import (
	"math/rand"
	"testing"

	"lshcluster/internal/dataset"
)

func TestFreqTableAddRemove(t *testing.T) {
	ft := NewFreqTable(2, 2)
	ft.Add(0, []dataset.Value{1, 5})
	ft.Add(0, []dataset.Value{1, 6})
	ft.Add(0, []dataset.Value{2, 6})
	mode := ft.Mode(0)
	if mode[0] != 1 || mode[1] != 6 {
		t.Fatalf("mode = %v, want [1 6]", mode)
	}
	if ft.Size(0) != 3 || ft.Size(1) != 0 {
		t.Fatalf("sizes = %d,%d", ft.Size(0), ft.Size(1))
	}
	ft.Remove(0, []dataset.Value{1, 6})
	// counts now: attr0 {1:1,2:1} → tie, smaller ID 1; attr1 {5:1,6:1} → 5.
	mode = ft.Mode(0)
	if mode[0] != 1 || mode[1] != 5 {
		t.Fatalf("mode after remove = %v, want [1 5]", mode)
	}
}

func TestFreqTableMove(t *testing.T) {
	ft := NewFreqTable(2, 1)
	ft.Add(0, []dataset.Value{7})
	ft.Add(0, []dataset.Value{7})
	ft.Add(0, []dataset.Value{9})
	ft.Move(0, 1, []dataset.Value{9})
	if ft.Mode(0)[0] != 7 || ft.Mode(1)[0] != 9 {
		t.Fatalf("modes = %v,%v", ft.Mode(0), ft.Mode(1))
	}
	if ft.Size(0) != 2 || ft.Size(1) != 1 {
		t.Fatalf("sizes = %d,%d", ft.Size(0), ft.Size(1))
	}
	// Move to the same cluster is a no-op.
	ft.Move(1, 1, []dataset.Value{9})
	if ft.Size(1) != 1 {
		t.Fatal("self-move changed size")
	}
}

func TestFreqTableEmptyClusterKeepsMode(t *testing.T) {
	ft := NewFreqTable(1, 1)
	ft.Add(0, []dataset.Value{4})
	ft.Remove(0, []dataset.Value{4})
	if ft.Mode(0)[0] != 4 {
		t.Fatalf("emptied cluster lost its mode: %v", ft.Mode(0))
	}
}

func TestFreqTableSetMode(t *testing.T) {
	ft := NewFreqTable(1, 2)
	ft.SetMode(0, []dataset.Value{8, 9})
	if ft.Mode(0)[0] != 8 || ft.Mode(0)[1] != 9 {
		t.Fatal("SetMode did not install")
	}
	// First member overrides the seeded placeholder.
	ft.Add(0, []dataset.Value{3, 9})
	if ft.Mode(0)[0] != 3 || ft.Mode(0)[1] != 9 {
		t.Fatalf("mode = %v, want [3 9]", ft.Mode(0))
	}
}

func TestFreqTableArityPanics(t *testing.T) {
	ft := NewFreqTable(1, 2)
	for _, fn := range []func(){
		func() { ft.Add(0, []dataset.Value{1}) },
		func() { ft.Remove(0, []dataset.Value{1}) },
		func() { ft.SetMode(0, []dataset.Value{1}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected arity panic")
				}
			}()
			fn()
		}()
	}
}

// TestFreqTableMatchesBatchRecompute drives random moves and checks the
// incremental modes stay identical to Space.RecomputeCentroids — the
// invariant that lets the streaming clusterer reuse batch semantics.
func TestFreqTableMatchesBatchRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	const n, m, k = 120, 5, 6
	vals := make([]dataset.Value, n*m)
	for i := range vals {
		attr := i % m
		vals[i] = dataset.Value(attr*10 + rng.Intn(4) + 1)
	}
	ds, err := dataset.New(make([]string, m), vals, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	space, err := NewSpaceFromSeeds(ds, []int32{0, 1, 2, 3, 4, 5}, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ft := NewFreqTable(k, m)
	assign := make([]int32, n)
	for i := 0; i < n; i++ {
		assign[i] = int32(rng.Intn(k))
		ft.Add(int(assign[i]), ds.Row(i))
	}
	check := func(step int) {
		t.Helper()
		space.RecomputeCentroids(assign)
		for c := 0; c < k; c++ {
			batch := space.Mode(c)
			incr := ft.Mode(c)
			for a := 0; a < m; a++ {
				if batch[a] != incr[a] {
					t.Fatalf("step %d cluster %d attr %d: batch %v incremental %v",
						step, c, a, batch[a], incr[a])
				}
			}
		}
	}
	check(0)
	for step := 1; step <= 400; step++ {
		i := rng.Intn(n)
		to := int32(rng.Intn(k))
		// Keep every cluster non-empty so KeepMode semantics (which
		// differ between seeded batch modes and incremental history)
		// never engage.
		if ft.Size(int(assign[i])) == 1 {
			continue
		}
		ft.Move(int(assign[i]), int(to), ds.Row(i))
		assign[i] = to
		if step%50 == 0 {
			check(step)
		}
	}
	check(401)
}

func TestFreqTableModelSnapshot(t *testing.T) {
	ft := NewFreqTable(1, 1)
	ft.Add(0, []dataset.Value{3})
	m := ft.Model()
	ft.Add(0, []dataset.Value{9})
	ft.Add(0, []dataset.Value{9})
	if m.Modes[0] != 3 {
		t.Fatal("model aliases live table")
	}
	if ft.Mode(0)[0] != 9 {
		t.Fatal("mode not updated")
	}
}
