package kmodes

import (
	"fmt"
	"math/rand"

	"lshcluster/internal/dataset"
)

// This file implements the initialisation methods the paper references
// alongside random selection (§III-A1, §IV-A: "K-Modes has a number of
// potential initialisation methods for choosing the initial cluster
// centroids [3] [22]"): Huang's frequency-based method [3] and the
// density-distance method of Cao, Liang & Bai [22]. Each returns seed
// *item indices*, ready for NewSpaceFromSeeds, so experiments can hold
// initial centroids fixed across algorithm variants.

// InitRandom returns k distinct random item indices (the paper's default
// choice, also what NewSpace uses internally).
func InitRandom(ds *dataset.Dataset, k int, seed int64) ([]int32, error) {
	if k < 1 || k > ds.NumItems() {
		return nil, fmt.Errorf("kmodes: k=%d out of range [1,%d]", k, ds.NumItems())
	}
	return sampleDistinct(rand.New(rand.NewSource(seed)), ds.NumItems(), k), nil
}

// InitHuang implements Huang's frequency-based initialisation [3]:
// synthetic modes are formed by sampling attribute values proportionally
// to their global frequencies, then each synthetic mode is replaced by
// the most similar *item* (so modes are actual data points, avoiding
// empty initial clusters), skipping items already chosen.
func InitHuang(ds *dataset.Dataset, k int, seed int64) ([]int32, error) {
	n, m := ds.NumItems(), ds.NumAttrs()
	if k < 1 || k > n {
		return nil, fmt.Errorf("kmodes: k=%d out of range [1,%d]", k, n)
	}
	rng := rand.New(rand.NewSource(seed))
	// Per-attribute value pools: sampling a uniform random *position*
	// over the items' values at attribute a is exactly
	// frequency-proportional sampling of the value.
	synthetic := make([]dataset.Value, m)
	chosen := make([]int32, 0, k)
	used := make(map[int32]bool, k)
	for len(chosen) < k {
		for a := 0; a < m; a++ {
			synthetic[a] = ds.Row(rng.Intn(n))[a]
		}
		best := int32(-1)
		bestD := m + 1
		for i := 0; i < n; i++ {
			if used[int32(i)] {
				continue
			}
			d := dataset.MismatchesBounded(ds.Row(i), synthetic, bestD)
			if d < bestD {
				best, bestD = int32(i), d
			}
		}
		// best is always found: used has fewer than k ≤ n entries.
		used[best] = true
		chosen = append(chosen, best)
	}
	return chosen, nil
}

// InitCao implements the deterministic density–distance initialisation
// of Cao, Liang & Bai (2009) [22]: the first seed is the item of highest
// average similarity to the whole dataset (density); each further seed
// maximises min over chosen seeds of d(candidate, seed) · density(candidate),
// spreading seeds across dense regions. The method is O(n²·m) — intended
// for moderate n or for sampled subsets.
func InitCao(ds *dataset.Dataset, k int) ([]int32, error) {
	n, m := ds.NumItems(), ds.NumAttrs()
	if k < 1 || k > n {
		return nil, fmt.Errorf("kmodes: k=%d out of range [1,%d]", k, n)
	}
	// density(i) = (1/n) Σ_j (1 − d(i,j)/m)
	density := make([]float64, n)
	for i := 0; i < n; i++ {
		var sum float64
		ri := ds.Row(i)
		for j := 0; j < n; j++ {
			sum += 1 - float64(dataset.Mismatches(ri, ds.Row(j)))/float64(m)
		}
		density[i] = sum / float64(n)
	}
	chosen := make([]int32, 0, k)
	used := make([]bool, n)
	// First seed: maximum density (ties to the lowest index).
	first := 0
	for i := 1; i < n; i++ {
		if density[i] > density[first] {
			first = i
		}
	}
	chosen = append(chosen, int32(first))
	used[first] = true
	// minDist[i] tracks min over chosen seeds of d(i, seed)/m.
	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = float64(dataset.Mismatches(ds.Row(i), ds.Row(first))) / float64(m)
	}
	for len(chosen) < k {
		best := -1
		bestScore := -1.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			score := minDist[i] * density[i]
			if score > bestScore {
				best, bestScore = i, score
			}
		}
		chosen = append(chosen, int32(best))
		used[best] = true
		rb := ds.Row(best)
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			d := float64(dataset.Mismatches(ds.Row(i), rb)) / float64(m)
			if d < minDist[i] {
				minDist[i] = d
			}
		}
	}
	return chosen, nil
}
