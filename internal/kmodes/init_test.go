package kmodes

import (
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
)

func initWorkload(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Items: 120, Clusters: 6, Attrs: 12, Domain: 100,
		MinRuleFrac: 0.7, MaxRuleFrac: 0.9, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func assertValidSeeds(t *testing.T, seeds []int32, n, k int) {
	t.Helper()
	if len(seeds) != k {
		t.Fatalf("%d seeds, want %d", len(seeds), k)
	}
	seen := map[int32]bool{}
	for _, s := range seeds {
		if s < 0 || int(s) >= n {
			t.Fatalf("seed %d out of range", s)
		}
		if seen[s] {
			t.Fatalf("seed %d repeated", s)
		}
		seen[s] = true
	}
}

func TestInitRandom(t *testing.T) {
	ds := initWorkload(t)
	seeds, err := InitRandom(ds, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	assertValidSeeds(t, seeds, ds.NumItems(), 6)
	again, err := InitRandom(ds, 6, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("InitRandom not deterministic per seed")
		}
	}
	if _, err := InitRandom(ds, 0, 1); err == nil {
		t.Fatal("expected range error")
	}
}

func TestInitHuang(t *testing.T) {
	ds := initWorkload(t)
	seeds, err := InitHuang(ds, 6, 5)
	if err != nil {
		t.Fatal(err)
	}
	assertValidSeeds(t, seeds, ds.NumItems(), 6)
	if _, err := InitHuang(ds, 1000, 5); err == nil {
		t.Fatal("expected range error")
	}
}

func TestInitCao(t *testing.T) {
	ds := initWorkload(t)
	seeds, err := InitCao(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	assertValidSeeds(t, seeds, ds.NumItems(), 6)
	// Deterministic: no randomness at all.
	again, err := InitCao(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("InitCao not deterministic")
		}
	}
	if _, err := InitCao(ds, 0); err == nil {
		t.Fatal("expected range error")
	}
}

// TestInitCaoSpreadsAcrossClusters: on separable data the density–
// distance method should pick seeds from many distinct ground-truth
// clusters (random picks collide noticeably more often across seeds).
func TestInitCaoSpreadsAcrossClusters(t *testing.T) {
	ds := initWorkload(t)
	seeds, err := InitCao(ds, 6)
	if err != nil {
		t.Fatal(err)
	}
	classes := map[int]bool{}
	for _, s := range seeds {
		classes[ds.Label(int(s))] = true
	}
	if len(classes) < 5 {
		t.Fatalf("Cao seeds cover only %d of 6 ground-truth clusters", len(classes))
	}
}

func TestInitsImproveOrMatchRandomPurity(t *testing.T) {
	// Not a strict guarantee, but on this deterministic workload both
	// informed inits should produce sane spaces end to end.
	ds := initWorkload(t)
	for name, f := range map[string]func() ([]int32, error){
		"huang": func() ([]int32, error) { return InitHuang(ds, 6, 2) },
		"cao":   func() ([]int32, error) { return InitCao(ds, 6) },
	} {
		seeds, err := f()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := NewSpaceFromSeeds(ds, seeds, Config{}); err != nil {
			t.Fatalf("%s seeds rejected: %v", name, err)
		}
	}
}
