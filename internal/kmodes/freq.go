package kmodes

import "lshcluster/internal/dataset"

// FreqTable maintains per-cluster per-attribute value frequencies and
// the induced modes *incrementally* — Huang's "frequency based updating
// of modes" (paper §III-A1) — so that moving one item between clusters
// updates both affected modes in O(m) amortised instead of recomputing
// from members.
//
// The maintained mode matches Space.RecomputeCentroids exactly: per
// attribute, the most frequent value among members, ties to the smallest
// value ID. An empty cluster keeps its last mode (the KeepMode policy).
type FreqTable struct {
	k, m   int
	counts []map[dataset.Value]int32 // k·m maps, indexed c·m+a
	modes  []dataset.Value           // k·m current argmax values
	sizes  []int32
}

// NewFreqTable creates an empty table for k clusters over m attributes.
func NewFreqTable(k, m int) *FreqTable {
	t := &FreqTable{
		k:      k,
		m:      m,
		counts: make([]map[dataset.Value]int32, k*m),
		modes:  make([]dataset.Value, k*m),
		sizes:  make([]int32, k),
	}
	for i := range t.counts {
		t.counts[i] = make(map[dataset.Value]int32)
	}
	return t
}

// NumClusters returns k.
func (t *FreqTable) NumClusters() int { return t.k }

// NumAttrs returns m.
func (t *FreqTable) NumAttrs() int { return t.m }

// Size returns cluster c's current member count.
func (t *FreqTable) Size(c int) int { return int(t.sizes[c]) }

// Mode returns cluster c's current mode. The slice aliases internal
// state, stays up to date as items move, and must not be modified.
func (t *FreqTable) Mode(c int) []dataset.Value {
	return t.modes[c*t.m : (c+1)*t.m : (c+1)*t.m]
}

// SetMode overwrites cluster c's mode without touching frequencies —
// used to install initial centroids before any member is added.
func (t *FreqTable) SetMode(c int, mode []dataset.Value) {
	if len(mode) != t.m {
		panic("kmodes: SetMode arity mismatch")
	}
	copy(t.Mode(c), mode)
}

// Add registers row as a member of cluster c and updates the mode.
func (t *FreqTable) Add(c int, row []dataset.Value) {
	if len(row) != t.m {
		panic("kmodes: Add arity mismatch")
	}
	base := c * t.m
	for a, v := range row {
		counts := t.counts[base+a]
		n := counts[v] + 1
		counts[v] = n
		cur := t.modes[base+a]
		best := counts[cur]
		// With ≥1 member the mode must be a counted value; adopt v on
		// strictly higher count, or on ties when v has a smaller ID or
		// the stored mode is a seeded (uncounted) placeholder.
		if n > best || (n == best && (v < cur || best == 0)) {
			t.modes[base+a] = v
		}
	}
	t.sizes[c]++
}

// AddMasked registers row as a member of cluster c, but counts only the
// attributes flagged in present towards the frequencies (and hence the
// modes). Absent attributes are missing data: their slot value is not
// observed, so it must not vote — folding it in would let placeholder
// values dominate the evolving mode on sparse data. The item still
// counts towards the cluster size. A nil mask is equivalent to Add.
//
// A masked-added row is only partially counted: Remove and Move
// decrement the full row, so calling either on such a row corrupts the
// table (counts of never-incremented values go negative). Rows folded
// in with a mask must be removed or moved with the same mask semantics
// — or, as in the streaming clusterer, never.
func (t *FreqTable) AddMasked(c int, row []dataset.Value, present []bool) {
	if present == nil {
		t.Add(c, row)
		return
	}
	if len(row) != t.m || len(present) != t.m {
		panic("kmodes: AddMasked arity mismatch")
	}
	base := c * t.m
	for a, v := range row {
		if !present[a] {
			continue
		}
		counts := t.counts[base+a]
		n := counts[v] + 1
		counts[v] = n
		cur := t.modes[base+a]
		best := counts[cur]
		if n > best || (n == best && (v < cur || best == 0)) {
			t.modes[base+a] = v
		}
	}
	t.sizes[c]++
}

// Remove unregisters row from cluster c and updates the mode. Removing a
// row that was never added corrupts the table; callers own that
// invariant.
func (t *FreqTable) Remove(c int, row []dataset.Value) {
	if len(row) != t.m {
		panic("kmodes: Remove arity mismatch")
	}
	base := c * t.m
	for a, v := range row {
		counts := t.counts[base+a]
		n := counts[v] - 1
		if n <= 0 {
			delete(counts, v)
		} else {
			counts[v] = n
		}
		// Only a decrement of the current mode value can change the
		// argmax; rescan that attribute's map.
		if t.modes[base+a] == v {
			t.rescan(c, a)
		}
	}
	t.sizes[c]--
}

// Move transfers row from cluster `from` to cluster `to`.
func (t *FreqTable) Move(from, to int, row []dataset.Value) {
	if from == to {
		return
	}
	t.Remove(from, row)
	t.Add(to, row)
}

// rescan recomputes the argmax of (c, a) from the frequency map. An
// emptied attribute keeps the previous mode value (KeepMode semantics).
func (t *FreqTable) rescan(c, a int) {
	counts := t.counts[c*t.m+a]
	if len(counts) == 0 {
		return
	}
	var bestVal dataset.Value
	var bestCount int32 = -1
	for v, n := range counts {
		if n > bestCount || (n == bestCount && v < bestVal) {
			bestCount, bestVal = n, v
		}
	}
	t.modes[c*t.m+a] = bestVal
}

// Model snapshots the current modes.
func (t *FreqTable) Model() *Model {
	return &Model{K: t.k, M: t.m, Modes: append([]dataset.Value(nil), t.modes...)}
}
