package core_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/kmeans"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/simhash"

	"lshcluster/internal/core"
)

// assertActiveEqual runs the same configuration twice — once with
// active-set filtering (the default), once with DisableActiveFilter
// (the full-pass oracle) — and asserts bit-identical outcomes:
// assignments, per-iteration moves and costs, and convergence. It also
// asserts the filter actually engaged (some iteration skipped items);
// otherwise the equivalence would be vacuous.
func assertActiveEqual(t *testing.T, mk func() (core.Space, core.Accelerator), opts core.Options) {
	t.Helper()
	run := func(disable bool) *core.Result {
		o := opts
		o.DisableActiveFilter = disable
		space, accel := mk()
		o.Accelerator = accel
		res, err := core.Run(space, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	act, full := run(false), run(true)
	for i := range act.Assign {
		if act.Assign[i] != full.Assign[i] {
			t.Fatalf("assign[%d]: active %d, full %d", i, act.Assign[i], full.Assign[i])
		}
	}
	if act.Stats.Converged != full.Stats.Converged {
		t.Fatalf("converged: active %v, full %v", act.Stats.Converged, full.Stats.Converged)
	}
	if len(act.Stats.Iterations) != len(full.Stats.Iterations) {
		t.Fatalf("iterations: active %d, full %d",
			len(act.Stats.Iterations), len(full.Stats.Iterations))
	}
	skippedAny := false
	for i := range act.Stats.Iterations {
		a, b := act.Stats.Iterations[i], full.Stats.Iterations[i]
		if a.Moves != b.Moves {
			t.Fatalf("iteration %d moves: active %d, full %d", i+1, a.Moves, b.Moves)
		}
		if !opts.SkipCost && a.Cost != b.Cost {
			t.Fatalf("iteration %d cost: active %v, full %v", i+1, a.Cost, b.Cost)
		}
		if b.SkippedItems != 0 {
			t.Fatalf("iteration %d: oracle run skipped %d items", i+1, b.SkippedItems)
		}
		if a.ActiveItems+a.SkippedItems != len(act.Assign) {
			t.Fatalf("iteration %d: active %d + skipped %d != n %d",
				i+1, a.ActiveItems, a.SkippedItems, len(act.Assign))
		}
		if a.SkippedItems > 0 {
			skippedAny = true
		}
	}
	if len(act.Stats.Iterations) >= 3 && !skippedAny {
		t.Fatal("active-set filter never skipped an item; equivalence test is vacuous")
	}
}

// TestActiveFilterMatchesFullPassKModes drives the MH-K-Modes
// configuration matrix: both tie-break modes, both update modes, serial
// and parallel. The workload converges over several passes with a
// sparse tail, so late passes filter heavily.
func TestActiveFilterMatchesFullPassKModes(t *testing.T) {
	ds := kmodesMatrixWorkload(t)
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	for _, tb := range []core.TieBreak{core.TieBreakPreferCurrent, core.TieBreakLowestIndex} {
		for _, upd := range []core.UpdateMode{core.UpdateImmediate, core.UpdateDeferred} {
			for _, workers := range []int{1, 4} {
				if workers > 1 && upd != core.UpdateDeferred {
					continue // rejected by core.Run
				}
				name := fmt.Sprintf("tb=%d/upd=%d/w=%d", tb, upd, workers)
				t.Run(name, func(t *testing.T) {
					assertActiveEqual(t, mk, core.Options{
						TieBreak: tb, Update: upd, Workers: workers,
						MaxIterations: 15,
					})
				})
			}
		}
	}
}

// TestActiveFilterMatchesFullPassKMeans drives the SimHash-K-Means
// instantiation (floating-point centroids, conservative change
// reports).
func TestActiveFilterMatchesFullPassKMeans(t *testing.T) {
	pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 800, Clusters: 40, Dim: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmeans.NewSpace(pts, 8, kmeans.Config{K: 40, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		a, err := simhash.NewAccelerator(s, lsh.Params{Bands: 8, Rows: 8}, 21)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	for _, upd := range []core.UpdateMode{core.UpdateImmediate, core.UpdateDeferred} {
		for _, workers := range []int{1, 4} {
			if workers > 1 && upd != core.UpdateDeferred {
				continue
			}
			name := fmt.Sprintf("upd=%d/w=%d", upd, workers)
			t.Run(name, func(t *testing.T) {
				assertActiveEqual(t, mk, core.Options{
					Update: upd, Workers: workers, MaxIterations: 15,
				})
			})
		}
	}
}

// TestActiveFilterReseedPolicies exercises the empty-cluster reseed
// paths: reseeded clusters must be reported changed, or items near
// them would hold stale assignments.
func TestActiveFilterReseedPolicies(t *testing.T) {
	t.Run("kmodes", func(t *testing.T) {
		ds := kmodesMatrixWorkload(t)
		mk := func() (core.Space, core.Accelerator) {
			s, err := kmodes.NewSpace(ds, kmodes.Config{
				K: 90, Seed: 5, EmptyCluster: kmodes.ReseedRandomItem,
			})
			if err != nil {
				t.Fatal(err)
			}
			a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
			if err != nil {
				t.Fatal(err)
			}
			return s, a
		}
		assertActiveEqual(t, mk, core.Options{MaxIterations: 12})
	})
}

// TestActiveFilterSparseLateIterations asserts the acceptance
// criterion directly: once the run enters its sparse tail, the
// assignment pass evaluates at most 10% of the items.
func TestActiveFilterSparseLateIterations(t *testing.T) {
	ds, err := datagen.Generate(datagen.Config{
		Items: 4000, Clusters: 40, Attrs: 16, Domain: 400,
		MinRuleFrac: 0.7, MaxRuleFrac: 0.9, Seed: 23,
	})
	if err != nil {
		t.Fatal(err)
	}
	space, err := kmodes.NewSpace(ds, kmodes.Config{K: 40, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(space, core.Options{Accelerator: accel, MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	iters := res.Stats.Iterations
	if len(iters) < 3 {
		t.Fatalf("only %d iterations; workload too easy to show a sparse tail", len(iters))
	}
	if first := iters[0]; first.ActiveItems != ds.NumItems() {
		t.Fatalf("first pass evaluated %d items, want all %d", first.ActiveItems, ds.NumItems())
	}
	last := iters[len(iters)-1]
	if limit := ds.NumItems() / 10; last.ActiveItems > limit {
		t.Fatalf("final pass evaluated %d items, want ≤ %d (10%% of n)", last.ActiveItems, limit)
	}
}

// countdownCtx is a deterministic cancellation source: Err reports
// context.Canceled from the nth call on, so tests can pin exactly when
// a polling loop observes cancellation without depending on timing.
type countdownCtx struct {
	context.Context
	remaining atomic.Int32
}

func newCountdownCtx(calls int32) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.remaining.Store(calls)
	return c
}

func (c *countdownCtx) Err() error {
	if c.remaining.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// countingSpace is a minimal exact Space whose distance evaluations are
// counted atomically; cluster (item+1)%k is always best so passes keep
// moving items and never converge early.
type countingSpace struct {
	n, k  int
	calls atomic.Int64
}

func (s *countingSpace) NumItems() int    { return s.n }
func (s *countingSpace) NumClusters() int { return s.k }
func (s *countingSpace) Dissimilarity(item, cluster int) float64 {
	s.calls.Add(1)
	if cluster == (item+1)%s.k {
		return 0
	}
	return 1
}
func (s *countingSpace) BoundedDissimilarity(item, cluster int, bound float64) float64 {
	return s.Dissimilarity(item, cluster)
}
func (s *countingSpace) RecomputeCentroids(assign []int32) {}
func (s *countingSpace) Cost(assign []int32) float64       { return 0 }

// TestCancellationMidPass verifies that a cancelled context stops the
// assignment pass itself — workers poll inside their loops — instead of
// running every worker to completion and only noticing between passes.
func TestCancellationMidPass(t *testing.T) {
	const n, k = 40_000, 4
	for _, workers := range []int{1, 4} {
		t.Run(fmt.Sprintf("w=%d", workers), func(t *testing.T) {
			space := &countingSpace{n: n, k: k}
			// Bootstrap's full scan runs before the countdown matters:
			// budget the pre-bootstrap Err call, the bootstrap scan's
			// in-shard polls (one per 1024-item chunk per worker, see
			// ctxPollEvery) plus its phase-end check, the iteration-top
			// call, and cancel at the first in-pass poll.
			bootPolls := int32(0)
			for g := 0; g < workers; g++ {
				lo, hi := g*n/workers, (g+1)*n/workers
				bootPolls += int32((hi - lo + 1023) / 1024)
			}
			ctx := newCountdownCtx(1 + bootPolls + 1 + 1)
			res, err := core.Run(space, core.Options{
				Workers:       workers,
				SkipCost:      true,
				MaxIterations: 5,
				Context:       ctx,
			})
			if err == nil {
				t.Fatalf("Run returned %v, want cancellation error", res)
			}
			if err != context.Canceled {
				t.Fatalf("err = %v, want context.Canceled", err)
			}
			// The bootstrap pass legitimately evaluates all n·k
			// distances; the cancelled first iteration must stop after
			// at most one poll interval per worker (plus the items
			// already in flight), far short of another full pass.
			extra := space.calls.Load() - int64(n*k)
			budget := int64(workers) * 2048 * k
			if extra < 0 || extra > budget {
				t.Fatalf("post-bootstrap distance calls = %d, want (0, %d]", extra, budget)
			}
		})
	}
}

// TestCandidatesBlockMatchesCandidates asserts the block querier's
// contract: for every item, CandidatesBlock emits exactly the
// shortlist — contents and order — that the per-item Candidates call
// produces.
func TestCandidatesBlockMatchesCandidates(t *testing.T) {
	ds := kmodesMatrixWorkload(t)
	accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	const k = 30
	if err := accel.Reset(k); err != nil {
		t.Fatal(err)
	}
	n := ds.NumItems()
	assign := make([]int32, n)
	for i := range assign {
		assign[i] = int32(i % k)
	}
	for i := 0; i < n; i++ {
		if err := accel.Insert(int32(i)); err != nil {
			t.Fatal(err)
		}
	}
	for _, frozen := range []bool{false, true} {
		t.Run(fmt.Sprintf("frozen=%v", frozen), func(t *testing.T) {
			if frozen {
				accel.Freeze()
			}
			ref := accel.NewQuerier()
			bq, ok := accel.NewQuerier().(core.BlockQuerier)
			if !ok {
				t.Fatal("IndexQuerier does not implement BlockQuerier")
			}
			// Oddly-sized blocks straddle block boundaries on purpose.
			for _, blockLen := range []int{1, 7, 64, 129} {
				for lo := 0; lo < n; lo += blockLen {
					hi := lo + blockLen
					if hi > n {
						hi = n
					}
					blk := make([]int32, 0, hi-lo)
					for i := lo; i < hi; i++ {
						blk = append(blk, int32(i))
					}
					bq.CandidatesBlock(blk, assign, func(pos int, shortlist []int32) {
						want := ref.Candidates(blk[pos], assign)
						if len(shortlist) != len(want) {
							t.Fatalf("item %d: block shortlist %v, per-item %v", blk[pos], shortlist, want)
						}
						for j := range want {
							if shortlist[j] != want[j] {
								t.Fatalf("item %d pos %d: block %d, per-item %d",
									blk[pos], j, shortlist[j], want[j])
							}
						}
					})
				}
			}
		})
	}
}
