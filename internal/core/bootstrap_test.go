package core_test

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/kmeans"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/simhash"

	"lshcluster/internal/core"
)

// assertBootstrapEqual runs the same configuration twice — once with
// the parallel sign → build → assign bootstrap pipeline (the default),
// once with DisableParallelBootstrap (the serial per-item oracle) —
// and asserts bit-identical outcomes: assignments, per-iteration moves
// and costs, convergence, and the final centroids (via the
// caller-provided fingerprint of the space the run mutated).
func assertBootstrapEqual(t *testing.T, mk func() (core.Space, core.Accelerator), fingerprint func(core.Space) []byte, opts core.Options) {
	t.Helper()
	run := func(disable bool) (*core.Result, []byte) {
		o := opts
		o.DisableParallelBootstrap = disable
		space, accel := mk()
		o.Accelerator = accel
		res, err := core.Run(space, o)
		if err != nil {
			t.Fatal(err)
		}
		return res, fingerprint(space)
	}
	par, parCentroids := run(false)
	ser, serCentroids := run(true)
	for i := range par.Assign {
		if par.Assign[i] != ser.Assign[i] {
			t.Fatalf("assign[%d]: parallel %d, serial %d", i, par.Assign[i], ser.Assign[i])
		}
	}
	if par.Stats.Converged != ser.Stats.Converged {
		t.Fatalf("converged: parallel %v, serial %v", par.Stats.Converged, ser.Stats.Converged)
	}
	if len(par.Stats.Iterations) != len(ser.Stats.Iterations) {
		t.Fatalf("iterations: parallel %d, serial %d",
			len(par.Stats.Iterations), len(ser.Stats.Iterations))
	}
	for i := range par.Stats.Iterations {
		a, b := par.Stats.Iterations[i], ser.Stats.Iterations[i]
		if a.Moves != b.Moves {
			t.Fatalf("iteration %d moves: parallel %d, serial %d", i+1, a.Moves, b.Moves)
		}
		if a.Cost != b.Cost {
			t.Fatalf("iteration %d cost: parallel %v, serial %v", i+1, a.Cost, b.Cost)
		}
	}
	if !bytes.Equal(parCentroids, serCentroids) {
		t.Fatal("final centroids differ between parallel and serial bootstrap")
	}
}

func bootstrapWorkload(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Items: 600, Clusters: 30, Attrs: 16, Domain: 200,
		MinRuleFrac: 0.7, MaxRuleFrac: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func kmodesFingerprint(t *testing.T) func(core.Space) []byte {
	return func(s core.Space) []byte {
		var buf bytes.Buffer
		if err := s.(*kmodes.Space).Model().Save(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
}

// TestParallelBootstrapMatchesSerialKModes is the headline equivalence
// matrix: MinHash-accelerated K-Modes across bootstrap modes, update
// modes and worker counts (including workers=1, where the pipeline
// still takes the presign + direct-to-frozen path).
func TestParallelBootstrapMatchesSerialKModes(t *testing.T) {
	ds := bootstrapWorkload(t)
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	for _, boot := range []core.BootstrapMode{core.BootstrapFullScan, core.BootstrapSeeded} {
		for _, upd := range []core.UpdateMode{core.UpdateImmediate, core.UpdateDeferred} {
			for _, workers := range []int{1, 4} {
				if workers > 1 && upd != core.UpdateDeferred {
					continue // rejected by core.Run
				}
				name := fmt.Sprintf("boot=%d/upd=%d/w=%d", boot, upd, workers)
				t.Run(name, func(t *testing.T) {
					assertBootstrapEqual(t, mk, kmodesFingerprint(t), core.Options{
						Bootstrap: boot, Update: upd, Workers: workers,
						MaxIterations: 15,
					})
				})
			}
		}
	}
}

// TestParallelBootstrapMatchesSerialKMeans covers the SimHash/K-Means
// instantiation of the same pipeline.
func TestParallelBootstrapMatchesSerialKMeans(t *testing.T) {
	pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 800, Clusters: 40, Dim: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmeans.NewSpace(pts, 8, kmeans.Config{K: 40, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		a, err := simhash.NewAccelerator(s, lsh.Params{Bands: 8, Rows: 8}, 21)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	fingerprint := func(s core.Space) []byte {
		var buf bytes.Buffer
		sp := s.(*kmeans.Space)
		for c := 0; c < sp.NumClusters(); c++ {
			fmt.Fprintf(&buf, "%x;", sp.Centroid(c))
		}
		return buf.Bytes()
	}
	for _, boot := range []core.BootstrapMode{core.BootstrapFullScan, core.BootstrapSeeded} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("boot=%d/w=%d", boot, workers), func(t *testing.T) {
				assertBootstrapEqual(t, mk, fingerprint, core.Options{
					Bootstrap: boot, Update: core.UpdateDeferred, Workers: workers,
					MaxIterations: 15,
				})
			})
		}
	}
}

// TestParallelBootstrapExactScan covers the non-accelerated run: the
// bootstrap full scan shards across workers and must stay
// bit-identical to the serial scan.
func TestParallelBootstrapExactScan(t *testing.T) {
	ds := bootstrapWorkload(t)
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return s, nil
	}
	assertBootstrapEqual(t, mk, kmodesFingerprint(t), core.Options{
		Workers: 4, MaxIterations: 10,
	})
}

// TestBootstrapPhaseTimings checks the per-phase bootstrap split is
// recorded: the pipeline path reports a non-zero signing phase, every
// path reports a non-zero assignment phase, and the phases never
// exceed the bootstrap total.
func TestBootstrapPhaseTimings(t *testing.T) {
	ds := bootstrapWorkload(t)
	run := func(disable bool) *core.Result {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(s, core.Options{
			Accelerator: a, Workers: 2, Update: core.UpdateDeferred,
			MaxIterations: 3, DisableParallelBootstrap: disable,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, disable := range []bool{false, true} {
		res := run(disable)
		st := res.Stats
		if disable {
			if st.BootstrapSign != 0 {
				t.Fatalf("serial oracle reported a signing phase: %v", st.BootstrapSign)
			}
		} else if st.BootstrapSign <= 0 {
			t.Fatal("pipeline reported no signing phase")
		}
		if st.BootstrapBuild <= 0 {
			t.Fatalf("disable=%v: no build phase recorded", disable)
		}
		if st.BootstrapAssign <= 0 {
			t.Fatalf("disable=%v: no assignment phase recorded", disable)
		}
		if sum := st.BootstrapSign + st.BootstrapBuild + st.BootstrapAssign; sum > st.Bootstrap {
			t.Fatalf("disable=%v: phase sum %v exceeds bootstrap %v", disable, sum, st.Bootstrap)
		}
	}
}

// TestBootstrapCancellation checks the bootstrap honours
// Options.Context: a cancelled context stops the bootstrap scan after
// at most one poll interval per worker instead of completing the whole
// first assignment, and the accelerated pipeline aborts cleanly at a
// phase boundary.
func TestBootstrapCancellation(t *testing.T) {
	const n, k = 40_000, 4
	for _, workers := range []int{1, 4} {
		space := &countingSpace{n: n, k: k}
		ctx := newCountdownCtx(1) // pre-bootstrap check passes; first in-scan poll cancels
		_, err := core.Run(space, core.Options{
			Workers: workers, SkipCost: true, MaxIterations: 2, Context: ctx,
		})
		if err != context.Canceled {
			t.Fatalf("w=%d: err = %v, want context.Canceled", workers, err)
		}
		// Each worker evaluates at most one poll chunk (1024 items × k
		// distances) before observing the cancellation.
		if calls, budget := space.calls.Load(), int64(workers)*1024*k; calls > budget {
			t.Fatalf("w=%d: %d distance calls after cancellation, want ≤ %d", workers, calls, budget)
		}
	}

	// Accelerated pipeline: cancellation between phases aborts the run.
	ds := bootstrapWorkload(t)
	s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Run(s, core.Options{
		Accelerator: a, Workers: 2, Update: core.UpdateDeferred,
		MaxIterations: 2, Context: newCountdownCtx(1),
	})
	if err != context.Canceled {
		t.Fatalf("accelerated: err = %v, want context.Canceled", err)
	}
}
