package core

import (
	"context"
	"fmt"
	"time"

	"lshcluster/internal/lsh"
	"lshcluster/internal/lsh/serve"
)

// Sharding capabilities. The LSH index layer can partition its hash
// tables by item into S independent shards (lsh.Sharded): shards build
// in parallel from disjoint slices of the signing arena, stay
// individually cache-resident, and are independently freezable — the
// groundwork for serving tens of millions of items, where a future
// layout places shards on separate machines. Queries fan out across
// shards and merge the shard-local shortlists back into the exact
// candidate stream a single index would produce, so sharding never
// changes results: Options.Shards = 1 (the default) IS the unsharded
// oracle, and every shard count is bit-identical to it (pinned by the
// shard-invariance equivalence tests).

// ShardedIndexer is an optional Accelerator capability: accelerators
// whose index supports item partitioning implement it. The driver
// calls SetShards once per Run, before Reset, with max(1,
// Options.Shards); Reset then builds the index with that many shards.
// Accelerators without the capability simply ignore Options.Shards.
type ShardedIndexer interface {
	// SetShards configures the shard count for the next Reset. Values
	// < 2 select the single-shard oracle. Implementations may clamp
	// (e.g. to the item count).
	SetShards(shards int)
}

// UnindexedQuerier is an optional Accelerator capability: produce the
// candidate-cluster shortlist of an item that has *not yet been
// inserted*, by signing the item (or reusing its presigned band keys)
// and probing the growing index. The seeded bootstrap uses it so every
// non-seed item actually consults the index built so far — the
// behaviour the mode describes — instead of the always-empty shortlist
// a Querier.Candidates call on an un-inserted item yields. The result
// follows Querier.Candidates semantics (deduplicated, assignment
// entries < 0 skipped, valid until the next call); the serial oracle
// and the presigned pipeline must produce identical shortlists, which
// the bootstrap equivalence tests enforce.
type UnindexedQuerier interface {
	CandidatesUnindexed(item int32, assign []int32) []int32
}

// ForeignSlotConfigurer is an optional Accelerator capability:
// accelerators whose sharded index can materialise the cross-shard
// foreign-slot arrays (lsh.Sharded.MaterializeForeignSlots) implement
// it. The driver forwards Options.ForeignSlotBudget and
// Options.DisableForeignSlots once per Run, before Reset; the index
// materialises after its frozen layout is built, falling back to the
// key-probe fan-out when disabled or over budget. Accelerators without
// the capability simply keep probing.
type ForeignSlotConfigurer interface {
	// SetForeignSlots configures foreign-slot materialisation for the
	// next Reset: budget is the byte cap (0 = lsh.
	// DefaultForeignSlotBudget, negative = unlimited), disable pins the
	// probe-path oracle.
	SetForeignSlots(budget int64, disable bool)
}

// ReorderConfigurer is an optional Accelerator capability:
// accelerators whose sharded index supports the locality-preserving
// item reordering (lsh.Sharded.SetReorder) implement it. The driver
// forwards Options.DisableReorder once per Run, before Reset; the
// index derives and applies the permutation during its bulk frozen
// build. Accelerators without the capability simply build in original
// order.
type ReorderConfigurer interface {
	// SetReorder configures locality reordering for the next Reset:
	// disable pins the original-order oracle.
	SetReorder(disable bool)
}

// ReorderMapper is an optional Accelerator capability: expose the
// locality permutation the index applied during its frozen build
// (perm[original] = internal, inv[internal] = original), or nil/nil
// when the build ran in original order. The driver uses it to keep an
// internal-ID mirror of the assignment slice so shortlist sweeps read
// assignments in near-sequential order.
type ReorderMapper interface {
	ReorderMap() (perm, inv []int32)
}

// ShardStats is the post-run shard report of a ShardStatsReporter.
type ShardStats struct {
	// Shards is the shard count of the index (0 when none was built).
	Shards int
	// BuildTimes holds the per-shard frozen-build wall times (nil when
	// the index never froze).
	BuildTimes []time.Duration
	// ReorderTime is the wall time the locality-reordering stage spent
	// deriving and applying the permutation (zero when reordering was
	// disabled or inapplicable).
	ReorderTime time.Duration
	// LocalCands/ForeignCands count shortlist candidates by origin:
	// served by the queried item's owning shard versus fanned out from
	// the other shards. Their ratio (runstats' shard_local_frac) is the
	// locality measure reordering exists to raise. Counted only on
	// multi-shard range partitions — zero at S=1 and on stride layouts.
	LocalCands, ForeignCands int64
	// CrossShardMerge is the cumulative time spent in cross-shard
	// candidate sweeps (zero with one shard).
	CrossShardMerge time.Duration
	// ForeignSlotBytes is the memory the materialised fan-out arrays
	// occupy; 0 means the key-probe path served every query.
	ForeignSlotBytes int64
	// ProbeOps/DirectOps count cross-shard bucket resolutions by path:
	// key-table probes versus direct foreign-slot loads.
	ProbeOps, DirectOps int64
	// Retries/Timeouts/HedgedCalls/HedgeWins/SkippedShards mirror the
	// fault-tolerant fan-out's lsh.ResilienceStats — all zero unless a
	// backend layer was attached (Options.ChaosSpec).
	Retries, Timeouts      int64
	HedgedCalls, HedgeWins int64
	SkippedShards          int
	// SaveTime/LoadTime are the wall times spent persisting the frozen
	// index to disk and warm-loading it back (zero when persistence was
	// off, and SaveTime stays zero on warm runs — nothing to save).
	SaveTime, LoadTime time.Duration
	// WarmStart reports whether the index was loaded from disk instead
	// of built.
	WarmStart bool
	// MmapBytes is the total size of the index's live memory mappings
	// (zero on heap loads and fresh builds).
	MmapBytes int64
	// ResidentShards/Promotions/Demotions mirror the residency manager
	// (Options.ShardMemoryBudget): shards currently advised in, and the
	// cumulative demote/promote transitions. All zero without a budget.
	ResidentShards        int
	Promotions, Demotions int64
}

// ResilienceConfig is the fault-tolerance configuration the driver
// forwards to a ResilienceConfigurer before Reset: the run context
// (per-call deadlines and cancellation derive from it), the retry and
// hedging policy knobs, and the chaos spec that — when non-empty —
// routes the cross-shard fan-out through fault-injecting backends.
type ResilienceConfig struct {
	// ChaosSpec is the serve.ParseChaosSpec fault script. Empty keeps
	// the direct in-memory fan-out (no backend layer at all); a
	// non-empty spec — even one injecting zero faults, e.g. "seed=1" —
	// attaches chaos-wrapped backends, which is also how the
	// bit-identity tests exercise the whole resilient path.
	ChaosSpec string
	// RetryBudget/HedgeAfter/DisableHedging map onto lsh.Policy.
	RetryBudget    int
	HedgeAfter     time.Duration
	DisableHedging bool
	// Context bounds every backend call (nil = context.Background()).
	Context context.Context
}

// ResilienceConfigurer is an optional Accelerator capability:
// accelerators whose sharded index supports the fault-tolerant backend
// fan-out implement it. The driver forwards the resilience options
// once per Run, before Reset; the index attaches the backends once its
// frozen layout exists.
type ResilienceConfigurer interface {
	SetResilience(cfg ResilienceConfig)
}

// ShardStatsReporter is an optional Accelerator capability: report the
// index's shard layout and per-shard construction cost after a run, so
// runstats can record the bootstrap-build breakdown, the cross-shard
// merge overhead and the fan-out mode (Run.Shards,
// Run.BootstrapBuildShards, Run.CrossShardMerge, Run.ForeignSlotBytes,
// Run.CrossShardProbes/CrossShardDirect).
type ShardStatsReporter interface {
	ShardStats() ShardStats
}

// ShardedIndexBase is the sharded-index state machine shared by the
// accelerators built on lsh.Sharded (MinHash here, SimHash in
// internal/simhash): one index plus the presigned-arena lifecycle
// behind the BulkIndexer, Freezer, ReverseQuerier, ShardedIndexer,
// UnindexedQuerier and ShardStatsReporter capabilities. Embedding it
// promotes everything signing-agnostic — SetShards, ShardStats,
// Params, Index, BuildFrozen, InsertPresigned, Freeze, NewQuerier,
// NewReverse — so the arena lifecycle lives in exactly one place; the
// embedding accelerator supplies only what varies, the signing: the
// parallel worker factory (SignAllInto) and the serial single-item
// signer (CandidatesUnindexedWith).
type ShardedIndexBase struct {
	params lsh.Params
	index  *lsh.Sharded
	n      int
	k      int
	shards int
	// selfQ serves CandidatesUnindexedWith (the seeded bootstrap's
	// query-before-insert); created lazily, serial use only.
	selfQ *IndexQuerier
	// presigned is the flat band-key arena SignAllInto computed
	// (keys[item·Bands+band]); nil until then, released to the index by
	// BuildFrozen and at Freeze.
	presigned []uint64
	// foreignBudget/foreignOff hold the foreign-slot configuration the
	// driver forwarded (ForeignSlotConfigurer); materialisation runs
	// once the frozen layout exists (BuildFrozen / Freeze).
	foreignBudget int64
	foreignOff    bool
	// reorderOff holds the locality-reordering configuration the driver
	// forwarded (ReorderConfigurer); applied at the next ResetIndex.
	reorderOff bool
	// resCfg/resSpec/resErr hold the resilience configuration the
	// driver forwarded (ResilienceConfigurer): the parsed chaos spec
	// (nil when no spec, i.e. the direct fan-out), or the parse error
	// surfaced at the next ResetIndex.
	resCfg  ResilienceConfig
	resSpec *serve.ChaosSpec
	resErr  error
	// persistCfg/persistOn hold the persistence configuration the driver
	// forwarded (IndexPersister); fpSource supplies the dataset
	// fingerprint the saved index is pinned to (set once by the
	// embedding accelerator via SetFingerprintSource — accelerators
	// without one cannot persist). seed is retained from ResetIndex for
	// the save; warm/saveDur/loadDur describe what the last
	// ResetIndex/BuildFrozen did, for ShardStats.
	persistCfg PersistConfig
	persistOn  bool
	fpSource   func() uint64
	seed       uint64
	warm       bool
	saveDur    time.Duration
	loadDur    time.Duration
}

// SetShards configures the item-shard count for the next ResetIndex
// (core.ShardedIndexer). Values < 2 select the single-shard oracle.
func (b *ShardedIndexBase) SetShards(shards int) {
	if shards < 1 {
		shards = 1
	}
	b.shards = shards
}

// SetForeignSlots configures cross-shard foreign-slot materialisation
// (core.ForeignSlotConfigurer): budget in bytes (0 = lsh.
// DefaultForeignSlotBudget, negative = unlimited), disable pins the
// key-probe oracle.
func (b *ShardedIndexBase) SetForeignSlots(budget int64, disable bool) {
	b.foreignBudget = budget
	b.foreignOff = disable
}

// materializeForeign builds the cross-shard fan-out arrays once the
// frozen layout exists, under the configured budget; a no-op when
// disabled (and, inside the index, for single-shard, stride or
// over-budget layouts).
func (b *ShardedIndexBase) materializeForeign() {
	if b.foreignOff || b.index == nil {
		return
	}
	budget := b.foreignBudget
	if budget == 0 {
		budget = lsh.DefaultForeignSlotBudget
	}
	b.index.MaterializeForeignSlots(budget)
}

// SetReorder stores the locality-reordering configuration for the
// next ResetIndex (core.ReorderConfigurer): disable pins the
// original-order oracle.
func (b *ShardedIndexBase) SetReorder(disable bool) {
	b.reorderOff = disable
}

// ReorderMap exposes the locality permutation of the current index
// (core.ReorderMapper): nil/nil before Reset or when the build ran in
// original order.
func (b *ShardedIndexBase) ReorderMap() (perm, inv []int32) {
	if b.index == nil {
		return nil, nil
	}
	return b.index.ReorderMap()
}

// SetResilience stores the fault-tolerance configuration for the next
// ResetIndex (core.ResilienceConfigurer). An unparsable ChaosSpec is
// surfaced as the next ResetIndex's error.
func (b *ShardedIndexBase) SetResilience(cfg ResilienceConfig) {
	b.resCfg = cfg
	b.resSpec, b.resErr = nil, nil
	if cfg.ChaosSpec == "" {
		return
	}
	spec, err := serve.ParseChaosSpec(cfg.ChaosSpec)
	if err != nil {
		b.resErr = err
		return
	}
	b.resSpec = spec
}

// SetPersist stores the index-persistence configuration for the next
// ResetIndex (core.IndexPersister). An empty Dir disables persistence.
func (b *ShardedIndexBase) SetPersist(cfg PersistConfig) {
	b.persistCfg = cfg
	b.persistOn = cfg.Dir != ""
}

// SetFingerprintSource registers the dataset-fingerprint supplier the
// persisted index is validated against. Embedding accelerators whose
// dataset can be fingerprinted call it once at construction;
// persistence on an accelerator without a source is a ResetIndex error.
func (b *ShardedIndexBase) SetFingerprintSource(fp func() uint64) {
	b.fpSource = fp
}

// WarmLoaded reports whether the last ResetIndex loaded the index from
// disk instead of preparing a fresh build (core.IndexPersister).
func (b *ShardedIndexBase) WarmLoaded() bool { return b.warm }

// attachResilience routes the index's cross-shard fan-out through
// chaos-wrapped backends once the frozen layout exists. Primaries and
// hedge mirrors are independent replicas under the same fault spec
// (different injection streams, same fault model — a dead shard stays
// dead on its mirror, so permanent failures remain measured recall
// loss instead of being masked). A no-op without a chaos spec: the
// zero-overhead direct fan-out stays in place.
func (b *ShardedIndexBase) attachResilience() {
	if b.resSpec == nil || b.index == nil {
		return
	}
	locals := b.index.LocalBackends()
	backends := b.resSpec.Wrap(locals, 0)
	mirrors := b.resSpec.Wrap(locals, 1)
	pol := lsh.Policy{
		RetryBudget:    b.resCfg.RetryBudget,
		HedgeAfter:     b.resCfg.HedgeAfter,
		DisableHedging: b.resCfg.DisableHedging,
		Seed:           b.resSpec.Seed() + 1,
	}
	// AttachBackends only errors on a shard-count mismatch, impossible
	// for backends derived from the index itself.
	_ = b.index.AttachBackends(b.resCfg.Context, backends, mirrors, pol)
}

// ShardStats reports the shard layout, per-shard build costs and
// cross-shard fan-out mode of the current index
// (core.ShardStatsReporter).
func (b *ShardedIndexBase) ShardStats() ShardStats {
	if b.index == nil {
		return ShardStats{}
	}
	probes, direct := b.index.FanOutOps()
	local, foreign := b.index.FanOutLocality()
	res := b.index.ResilienceStats()
	ss := ShardStats{
		Shards:           b.index.NumShards(),
		BuildTimes:       b.index.BuildTimes(),
		ReorderTime:      b.index.ReorderTime(),
		LocalCands:       local,
		ForeignCands:     foreign,
		CrossShardMerge:  b.index.MergeTime(),
		ForeignSlotBytes: b.index.ForeignSlotBytes(),
		ProbeOps:         probes,
		DirectOps:        direct,
		Retries:          res.Retries,
		Timeouts:         res.Timeouts,
		HedgedCalls:      res.HedgedCalls,
		HedgeWins:        res.HedgeWins,
		SkippedShards:    res.SkippedShards,
		SaveTime:         b.saveDur,
		LoadTime:         b.loadDur,
		WarmStart:        b.warm,
		MmapBytes:        b.index.MmapBytes(),
	}
	if resident, prom, dem, ok := b.index.ResidencyStats(); ok {
		ss.ResidentShards, ss.Promotions, ss.Demotions = resident, prom, dem
	}
	return ss
}

// Params returns the banding configuration.
func (b *ShardedIndexBase) Params() lsh.Params { return b.params }

// Index exposes the underlying sharded LSH index (nil before the
// accelerator's Reset), e.g. for bucket-occupancy diagnostics.
func (b *ShardedIndexBase) Index() *lsh.Sharded { return b.index }

// ResetIndex discards any previous index and prepares a fresh one over
// numItems items and numClusters clusters, with the configured shard
// count. Called by the embedding accelerator's Reset.
func (b *ShardedIndexBase) ResetIndex(params lsh.Params, seed uint64, numItems, numClusters int) error {
	if numClusters < 1 {
		return fmt.Errorf("core: numClusters must be ≥ 1, got %d", numClusters)
	}
	if b.resErr != nil {
		return fmt.Errorf("core: invalid chaos spec: %w", b.resErr)
	}
	shards := b.shards
	if shards < 1 {
		shards = 1
	}
	// Release any previous index's memory mappings before dropping the
	// reference (a no-op for heap-built indexes).
	if b.index != nil {
		_ = b.index.ClosePersist()
	}
	b.index = nil
	b.warm = false
	b.saveDur, b.loadDur = 0, 0
	// Locality reordering is incompatible with the backend fan-out
	// (replay merges assume identity item order), so a chaos spec pins
	// the original-order build regardless of DisableReorder.
	reorder := !b.reorderOff && b.resSpec == nil
	if b.persistOn && b.fpSource == nil {
		return fmt.Errorf("core: index persistence requires a dataset fingerprint, which this accelerator does not provide")
	}
	if b.persistOn && lsh.IndexSaved(b.persistCfg.Dir) {
		// Warm start: load the saved frozen index instead of building.
		// The manifest pins parameters, seed, shape, shard count, dataset
		// fingerprint and reorder setting; any mismatch is a hard error —
		// a stale index must never silently serve or silently rebuild.
		ix, rep, err := lsh.OpenSharded(b.persistCfg.Dir, lsh.OpenOptions{
			Params:        params,
			Seed:          seed,
			NumItems:      numItems,
			Shards:        shards,
			Reorder:       reorder && numItems >= 2,
			Fingerprint:   b.fpSource(),
			Mmap:          mmapWanted(b.persistCfg.DisableMmap),
			MemoryBudget:  b.persistCfg.MemoryBudget,
			SkipForeign:   b.foreignOff,
			ForeignBudget: b.foreignBudget,
			Workers:       b.persistCfg.Workers,
		})
		if err != nil {
			return fmt.Errorf("core: loading persisted index: %w", err)
		}
		b.params = params
		b.index = ix
		b.n = numItems
		b.k = numClusters
		b.seed = seed
		b.selfQ = nil
		b.presigned = nil
		b.warm = true
		b.loadDur = rep.Duration
		b.attachResilience()
		return nil
	}
	ix, err := lsh.NewSharded(params, seed, numItems, shards)
	if err != nil {
		return err
	}
	ix.SetReorder(reorder)
	b.params = params
	b.index = ix
	b.n = numItems
	b.k = numClusters
	b.seed = seed
	b.selfQ = nil
	b.presigned = nil
	return nil
}

// SignAllInto computes every item's band keys into the presigned
// arena, sharding the signing across workers goroutines with the
// accelerator-supplied per-worker signer factory (the signing half of
// core.BulkIndexer.SignAll).
func (b *ShardedIndexBase) SignAllInto(workers int, newSigner func() lsh.SignFunc, stop func() bool) error {
	if b.index == nil {
		return fmt.Errorf("core: SignAll before Reset")
	}
	b.presigned = lsh.SignAll(b.params, b.n, workers, newSigner, stop)
	return nil
}

// BuildFrozen constructs every shard's frozen layout directly from the
// presigned keys — shards concurrent, bands parallel within each shard
// (core.BulkIndexer).
func (b *ShardedIndexBase) BuildFrozen(workers int) error {
	if b.presigned == nil {
		return fmt.Errorf("core: BuildFrozen before SignAll")
	}
	err := b.index.BuildFrozen(b.presigned, b.n, workers)
	b.presigned = nil
	if err == nil {
		b.materializeForeign()
		b.attachResilience()
		if b.persistOn && !b.warm {
			rep, serr := b.index.Save(b.persistCfg.Dir, b.seed, b.fpSource(), workers)
			if serr != nil {
				return fmt.Errorf("core: saving index: %w", serr)
			}
			b.saveDur = rep.Duration
		}
	}
	return err
}

// InsertPresigned files one item under its presigned band keys in its
// owning shard's map-based builder (core.BulkIndexer).
func (b *ShardedIndexBase) InsertPresigned(item int32) error {
	if b.presigned == nil {
		return fmt.Errorf("core: InsertPresigned before SignAll")
	}
	bands := b.params.Bands
	return b.index.InsertKeys(item, b.presigned[int(item)*bands:(int(item)+1)*bands])
}

// CandidatesUnindexedWith returns the candidate-cluster shortlist of a
// not-yet-indexed item: by its presigned band keys when SignAllInto
// ran, otherwise by the signature signNow produces on the spot (the
// serial bootstrap oracle) — identical keys either way, so the two
// paths stay bit-identical. Serial use only (shares dedup scratch);
// the embedding accelerator wraps it as CandidatesUnindexed with its
// own signer.
func (b *ShardedIndexBase) CandidatesUnindexedWith(item int32, assign []int32, signNow func(item int32) []uint64) []int32 {
	if b.index == nil {
		return nil
	}
	if b.selfQ == nil {
		b.selfQ = NewIndexQuerier(b.index, b.k)
	}
	if b.presigned != nil {
		bands := b.params.Bands
		return b.selfQ.CandidatesOfKeys(b.presigned[int(item)*bands:(int(item)+1)*bands], assign)
	}
	return b.selfQ.CandidatesOfSignature(signNow(item), assign)
}

// Freeze compacts every shard for the iteration phase (core.Freezer).
// It also releases the presigned key arena: after the seeded
// bootstrap's interleave every key has been filed into the index, so
// retaining the arena through the iterations would only duplicate it.
func (b *ShardedIndexBase) Freeze() {
	if b.index != nil {
		b.index.Freeze()
		b.materializeForeign()
		b.attachResilience()
	}
	b.presigned = nil
}

// NewQuerier returns a query handle with its own deduplication scratch.
func (b *ShardedIndexBase) NewQuerier() Querier {
	return NewIndexQuerier(b.index, b.k)
}

// NewReverse returns a reverse-collision view spanning every shard of
// the frozen index (core.ReverseQuerier), or nil before Reset or
// before the index is frozen — the driver then simply runs without
// active-set filtering.
func (b *ShardedIndexBase) NewReverse() ReverseView {
	if b.index == nil {
		return nil
	}
	if r := b.index.NewReverse(); r != nil {
		return r
	}
	return nil
}
