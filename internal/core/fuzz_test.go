package core_test

import (
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"

	"lshcluster/internal/core"
)

// FuzzReorderIdentity fuzzes the locality-reordering oracle end to
// end: for any workload shape, banding, shard count, worker count and
// update mode, a full MH-K-Modes run on the locality-reordered index
// must produce assignments (in original-ID space), iteration counts
// and move counts byte-identical to the DisableReorder oracle, and the
// permutation the index derived must satisfy perm∘inv = identity.
func FuzzReorderIdentity(f *testing.F) {
	f.Add(uint16(200), uint8(10), uint64(7), uint8(2), uint8(1), false)
	f.Add(uint16(57), uint8(3), uint64(1), uint8(4), uint8(4), true)
	f.Add(uint16(331), uint8(25), uint64(99), uint8(1), uint8(1), true)
	f.Add(uint16(120), uint8(7), uint64(42), uint8(3), uint8(2), false)
	f.Fuzz(func(t *testing.T, nRaw uint16, kRaw uint8, seed uint64, shardsRaw, workersRaw uint8, deferred bool) {
		n := 40 + int(nRaw)%360
		k := 2 + int(kRaw)%30
		if k > n {
			k = n
		}
		shards := 1 + int(shardsRaw)%4
		workers := 1 + int(workersRaw)%4
		ds, err := datagen.Generate(datagen.Config{
			Items: n, Clusters: k, Attrs: 10, Domain: 60,
			MinRuleFrac: 0.5, MaxRuleFrac: 0.9, Seed: int64(seed%1000) + 1,
		})
		if err != nil {
			t.Skip() // degenerate generator shape
		}
		upd := core.UpdateImmediate
		if deferred || workers > 1 {
			upd = core.UpdateDeferred
		}
		run := func(disable bool) (*core.Result, core.Accelerator) {
			space, err := kmodes.NewSpace(ds, kmodes.Config{K: k, Seed: int64(seed % 1000)})
			if err != nil {
				t.Fatal(err)
			}
			accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 6, Rows: 3}, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Run(space, core.Options{
				Accelerator: accel, Update: upd, Workers: workers,
				Shards: shards, MaxIterations: 5, DisableReorder: disable,
			})
			if err != nil {
				t.Fatal(err)
			}
			return res, accel
		}
		ord, accel := run(false)
		ref, _ := run(true)
		perm, inv := accel.(core.ReorderMapper).ReorderMap()
		if perm == nil {
			t.Fatal("bulk bootstrap did not reorder the index")
		}
		if len(perm) != n || len(inv) != n {
			t.Fatalf("perm/inv lengths %d/%d, want %d", len(perm), len(inv), n)
		}
		for i := 0; i < n; i++ {
			if inv[perm[i]] != int32(i) || perm[inv[i]] != int32(i) {
				t.Fatalf("perm/inv not inverse at %d", i)
			}
		}
		for i := range ref.Assign {
			if ref.Assign[i] != ord.Assign[i] {
				t.Fatalf("assign[%d]: reordered %d, oracle %d", i, ord.Assign[i], ref.Assign[i])
			}
		}
		if len(ord.Stats.Iterations) != len(ref.Stats.Iterations) {
			t.Fatalf("iterations: reordered %d, oracle %d",
				len(ord.Stats.Iterations), len(ref.Stats.Iterations))
		}
		for i := range ref.Stats.Iterations {
			if ref.Stats.Iterations[i].Moves != ord.Stats.Iterations[i].Moves {
				t.Fatalf("iteration %d moves: reordered %d, oracle %d",
					i+1, ord.Stats.Iterations[i].Moves, ref.Stats.Iterations[i].Moves)
			}
		}
	})
}
