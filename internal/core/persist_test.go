package core_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/kmeans"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/lsh/persist"
	"lshcluster/internal/simhash"

	"lshcluster/internal/core"
)

// persistSpaceAccel builds the standard persistence workload:
// MinHash-accelerated K-Modes over the shared bootstrap dataset, with
// the accelerator seed and banding exposed so staleness tests can vary
// them.
func persistSpaceAccel(t *testing.T, seed uint64, params lsh.Params) (core.Space, core.Accelerator) {
	t.Helper()
	ds := bootstrapWorkload(t)
	s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewMinHashAccelerator(ds, params, seed)
	if err != nil {
		t.Fatal(err)
	}
	return s, a
}

func persistOpts(dir string, shards int) core.Options {
	return core.Options{
		Bootstrap:     core.BootstrapFullScan,
		Update:        core.UpdateDeferred,
		Workers:       4,
		Shards:        shards,
		MaxIterations: 15,
		IndexDir:      dir,
	}
}

func assertPersistEqual(t *testing.T, label string, ref, got *core.Result, refCentroids, gotCentroids []byte) {
	t.Helper()
	for i := range ref.Assign {
		if ref.Assign[i] != got.Assign[i] {
			t.Fatalf("%s: assign[%d] = %d, reference %d", label, i, got.Assign[i], ref.Assign[i])
		}
	}
	if got.Stats.Converged != ref.Stats.Converged {
		t.Fatalf("%s: converged %v, reference %v", label, got.Stats.Converged, ref.Stats.Converged)
	}
	if len(got.Stats.Iterations) != len(ref.Stats.Iterations) {
		t.Fatalf("%s: %d iterations, reference %d",
			label, len(got.Stats.Iterations), len(ref.Stats.Iterations))
	}
	for i := range ref.Stats.Iterations {
		a, b := ref.Stats.Iterations[i], got.Stats.Iterations[i]
		if a.Moves != b.Moves {
			t.Fatalf("%s iteration %d: %d moves, reference %d", label, i+1, b.Moves, a.Moves)
		}
		if a.Cost != b.Cost {
			t.Fatalf("%s iteration %d: cost %v, reference %v", label, i+1, b.Cost, a.Cost)
		}
	}
	if !bytes.Equal(refCentroids, gotCentroids) {
		t.Fatalf("%s: final centroids differ from the reference run", label)
	}
}

// TestWarmStartMatchesCold is the headline persistence equivalence: a
// cold run that builds and saves the index, a warm mmap run, and a
// warm heap run (DisableMmap, the portable oracle) must produce
// bit-identical assignments, per-iteration moves and costs, and final
// centroids — at every shard count, including the unsharded case.
func TestWarmStartMatchesCold(t *testing.T) {
	for _, shards := range []int{1, 2, 4} {
		t.Run(map[int]string{1: "shards=1", 2: "shards=2", 4: "shards=4"}[shards], func(t *testing.T) {
			dir := t.TempDir()
			run := func(mut func(*core.Options)) (*core.Result, []byte) {
				space, accel := persistSpaceAccel(t, 7, lsh.Params{Bands: 8, Rows: 4})
				o := persistOpts(dir, shards)
				o.Accelerator = accel
				if mut != nil {
					mut(&o)
				}
				res, err := core.Run(space, o)
				if err != nil {
					t.Fatal(err)
				}
				return res, kmodesFingerprint(t)(space)
			}

			cold, coldCentroids := run(nil)
			if cold.Stats.WarmStart {
				t.Fatal("first run reported a warm start")
			}
			if cold.Stats.IndexSaveTime <= 0 {
				t.Fatal("cold run recorded no index save time")
			}
			if !lsh.IndexSaved(dir) {
				t.Fatalf("cold run left no saved index in %s", dir)
			}

			warm, warmCentroids := run(nil)
			if !warm.Stats.WarmStart {
				t.Fatal("second run did not warm-start from the saved index")
			}
			if warm.Stats.IndexLoadTime <= 0 {
				t.Fatal("warm run recorded no index load time")
			}
			if warm.Stats.IndexSaveTime != 0 {
				t.Fatal("warm run should not re-save the index")
			}
			if persist.MmapSupported && warm.Stats.MmapBytes <= 0 {
				t.Fatal("warm mmap run recorded no mapped bytes")
			}
			assertPersistEqual(t, "warm mmap", cold, warm, coldCentroids, warmCentroids)

			heap, heapCentroids := run(func(o *core.Options) { o.DisableMmap = true })
			if !heap.Stats.WarmStart {
				t.Fatal("heap-load run did not warm-start")
			}
			if heap.Stats.MmapBytes != 0 {
				t.Fatalf("DisableMmap run mapped %d bytes", heap.Stats.MmapBytes)
			}
			assertPersistEqual(t, "warm heap", cold, heap, coldCentroids, heapCentroids)
		})
	}
}

// TestWarmStartStaleRejected pins the manifest checks: a saved index
// must be refused — not silently rebuilt — when the accelerator seed,
// the LSH banding, or the dataset itself has changed underneath it.
func TestWarmStartStaleRejected(t *testing.T) {
	dir := t.TempDir()
	space, accel := persistSpaceAccel(t, 7, lsh.Params{Bands: 8, Rows: 4})
	o := persistOpts(dir, 4)
	o.Accelerator = accel
	if _, err := core.Run(space, o); err != nil {
		t.Fatal(err)
	}

	expectStale := func(label string, space core.Space, accel core.Accelerator) {
		t.Helper()
		o := persistOpts(dir, 4)
		o.Accelerator = accel
		_, err := core.Run(space, o)
		if err == nil {
			t.Fatalf("%s: run accepted a stale index", label)
		}
		if !strings.Contains(err.Error(), "stale") {
			t.Fatalf("%s: error = %v, want a stale-index rejection", label, err)
		}
	}

	s2, a2 := persistSpaceAccel(t, 8, lsh.Params{Bands: 8, Rows: 4})
	expectStale("different accelerator seed", s2, a2)

	s3, a3 := persistSpaceAccel(t, 7, lsh.Params{Bands: 4, Rows: 8})
	expectStale("different banding", s3, a3)

	other, err := datagen.Generate(datagen.Config{
		Items: 600, Clusters: 30, Attrs: 16, Domain: 200,
		MinRuleFrac: 0.7, MaxRuleFrac: 0.9, Seed: 12,
	})
	if err != nil {
		t.Fatal(err)
	}
	s4, err := kmodes.NewSpace(other, kmodes.Config{K: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a4, err := core.NewMinHashAccelerator(other, lsh.Params{Bands: 8, Rows: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	expectStale("different dataset", s4, a4)
}

// TestPersistOptionValidation covers the configurations Run must
// refuse up front rather than fail (or silently ignore) mid-run.
func TestPersistOptionValidation(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*core.Options)
		want string
	}{
		{"snapshot without IndexDir", func(o *core.Options) {
			o.IndexDir = ""
			o.SnapshotEvery = 2
		}, "SnapshotEvery"},
		{"negative SnapshotEvery", func(o *core.Options) {
			o.SnapshotEvery = -1
		}, "SnapshotEvery"},
		{"IndexDir without accelerator", func(o *core.Options) {
			o.Accelerator = nil
		}, "IndexDir"},
		{"IndexDir with seeded bootstrap", func(o *core.Options) {
			o.Bootstrap = core.BootstrapSeeded
		}, "IndexDir"},
		{"IndexDir with serial bootstrap", func(o *core.Options) {
			o.DisableParallelBootstrap = true
		}, "IndexDir"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			space, accel := persistSpaceAccel(t, 7, lsh.Params{Bands: 8, Rows: 4})
			o := persistOpts(t.TempDir(), 2)
			o.Accelerator = accel
			tc.mut(&o)
			_, err := core.Run(space, o)
			if err == nil {
				t.Fatal("Run accepted an invalid persistence configuration")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want mention of %q", err, tc.want)
			}
		})
	}
}

// TestPersistRequiresFingerprint: the SimHash accelerator sits on a
// numeric space with no dataset fingerprint, so asking it to persist
// must fail with a clear error instead of saving an unpinnable index.
func TestPersistRequiresFingerprint(t *testing.T) {
	pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 400, Clusters: 20, Dim: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	s, err := kmeans.NewSpace(pts, 8, kmeans.Config{K: 20, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	a, err := simhash.NewAccelerator(s, lsh.Params{Bands: 8, Rows: 8}, 21)
	if err != nil {
		t.Fatal(err)
	}
	o := persistOpts(t.TempDir(), 2)
	o.Accelerator = a
	_, err = core.Run(s, o)
	if err == nil {
		t.Fatal("Run persisted an index for a non-fingerprintable accelerator")
	}
	if !strings.Contains(err.Error(), "fingerprint") {
		t.Fatalf("error = %v, want a fingerprint requirement", err)
	}
}

// TestSnapshotResume interrupts a run at MaxIterations and restarts it
// from the on-disk checkpoint: the resumed run must report where it
// picked up and finish with exactly the state an uninterrupted run
// reaches.
func TestSnapshotResume(t *testing.T) {
	baseSpace, baseAccel := persistSpaceAccel(t, 7, lsh.Params{Bands: 8, Rows: 4})
	baseOpts := persistOpts("", 2)
	baseOpts.Accelerator = baseAccel
	base, err := core.Run(baseSpace, baseOpts)
	if err != nil {
		t.Fatal(err)
	}
	baseCentroids := kmodesFingerprint(t)(baseSpace)

	dir := t.TempDir()
	space1, accel1 := persistSpaceAccel(t, 7, lsh.Params{Bands: 8, Rows: 4})
	o1 := persistOpts(dir, 2)
	o1.Accelerator = accel1
	o1.SnapshotEvery = 2
	o1.MaxIterations = 3
	trunc, err := core.Run(space1, o1)
	if err != nil {
		t.Fatal(err)
	}
	if trunc.Stats.Converged {
		t.Fatal("truncated run converged; raise the workload difficulty")
	}
	if _, err := os.Stat(filepath.Join(dir, "state.snap")); err != nil {
		t.Fatalf("truncated run left no checkpoint: %v", err)
	}

	space2, accel2 := persistSpaceAccel(t, 7, lsh.Params{Bands: 8, Rows: 4})
	o2 := persistOpts(dir, 2)
	o2.Accelerator = accel2
	o2.SnapshotEvery = 2
	resumed, err := core.Run(space2, o2)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Stats.ResumedAt != 3 {
		t.Fatalf("ResumedAt = %d, want 3 (checkpoint after iteration 2)", resumed.Stats.ResumedAt)
	}
	if !resumed.Stats.WarmStart {
		t.Fatal("resumed run should also warm-start from the saved index")
	}
	resumedCentroids := kmodesFingerprint(t)(space2)

	for i := range base.Assign {
		if base.Assign[i] != resumed.Assign[i] {
			t.Fatalf("assign[%d] = %d after resume, uninterrupted run %d",
				i, resumed.Assign[i], base.Assign[i])
		}
	}
	if resumed.Stats.Converged != base.Stats.Converged {
		t.Fatalf("resumed converged %v, uninterrupted %v",
			resumed.Stats.Converged, base.Stats.Converged)
	}
	if len(resumed.Stats.Iterations) != len(base.Stats.Iterations) {
		t.Fatalf("resumed run logged %d iterations, uninterrupted %d",
			len(resumed.Stats.Iterations), len(base.Stats.Iterations))
	}
	if !bytes.Equal(baseCentroids, resumedCentroids) {
		t.Fatal("final centroids differ between resumed and uninterrupted runs")
	}
}

// TestBootstrapAssignCorruptRescans: a damaged bootstrap-assignment
// cache is a performance artifact, not source data — the run must fall
// back to a fresh scan (and identical results), never fail.
func TestBootstrapAssignCorruptRescans(t *testing.T) {
	dir := t.TempDir()
	run := func() (*core.Result, []byte) {
		space, accel := persistSpaceAccel(t, 7, lsh.Params{Bands: 8, Rows: 4})
		o := persistOpts(dir, 2)
		o.Accelerator = accel
		res, err := core.Run(space, o)
		if err != nil {
			t.Fatal(err)
		}
		return res, kmodesFingerprint(t)(space)
	}
	cold, coldCentroids := run()

	path := filepath.Join(dir, "bootstrap-assign.bin")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	warm, warmCentroids := run()
	if !warm.Stats.WarmStart {
		t.Fatal("corrupt assignment cache must not prevent the index warm start")
	}
	assertPersistEqual(t, "rescan after corruption", cold, warm, coldCentroids, warmCentroids)

	healed, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(healed, raw) {
		t.Fatal("rescan did not rewrite the corrupt assignment cache")
	}
}

// TestShardMemoryBudget runs the warm start under a budget far smaller
// than any shard, forcing the residency manager to demote and promote
// on demand — results must stay identical and the accounting visible.
func TestShardMemoryBudget(t *testing.T) {
	if !persist.MmapSupported {
		t.Skip("residency management requires mmap support")
	}
	dir := t.TempDir()
	run := func(budget int64) (*core.Result, []byte) {
		space, accel := persistSpaceAccel(t, 7, lsh.Params{Bands: 8, Rows: 4})
		o := persistOpts(dir, 4)
		o.Accelerator = accel
		o.ShardMemoryBudget = budget
		res, err := core.Run(space, o)
		if err != nil {
			t.Fatal(err)
		}
		return res, kmodesFingerprint(t)(space)
	}
	cold, coldCentroids := run(0)
	tight, tightCentroids := run(1)
	if !tight.Stats.WarmStart {
		t.Fatal("budgeted run did not warm-start")
	}
	assertPersistEqual(t, "budget=1", cold, tight, coldCentroids, tightCentroids)
	if tight.Stats.ShardPromotions <= 0 {
		t.Fatal("tight budget recorded no shard promotions")
	}
	if tight.Stats.ShardDemotions <= 0 {
		t.Fatal("tight budget recorded no shard demotions")
	}
	if tight.Stats.ResidentShards < 1 {
		t.Fatalf("ResidentShards = %d, want at least the pinned shard", tight.Stats.ResidentShards)
	}
}
