// Package core implements the paper's primary contribution: a general
// framework that accelerates centroid-based clustering algorithms by
// using locality sensitive hashing to shrink the cluster search space
// (§III-B).
//
// The framework is expressed as two small interfaces:
//
//   - Space: the clustering algorithm's own geometry — items, centroids,
//     the dissimilarity measure, and centroid recomputation. K-Modes
//     (internal/kmodes) and the numeric K-Means extension
//     (internal/kmeans) both satisfy it.
//
//   - Accelerator: the LSH side — index the items once, then produce,
//     for any item, a shortlist of candidate clusters by mapping the
//     items colliding with it through the current assignment. The
//     MinHash instantiation evaluated in the paper is
//     MinHashAccelerator; the SimHash instantiation for numeric data is
//     in internal/simhash.
//
// Run drives the iterative clustering. With a nil Accelerator it is the
// exact baseline algorithm (every item compared against every centroid);
// with an Accelerator it is the paper's accelerated variant, identical
// except that each item is compared only against its shortlist.
//
// Two optional capabilities shrink the per-iteration hot path further
// without changing results: IncrementalSpace (exact O(moves) centroid
// and objective maintenance in place of full per-pass recomputation)
// and Freezer (post-bootstrap compaction of the accelerator's index
// into a read-optimised layout). See incremental.go.
package core

import (
	"context"
	"fmt"
	"math"
	"path/filepath"
	"slices"
	"sync"
	"time"

	"lshcluster/internal/par"
	"lshcluster/internal/runstats"
)

// Space is the centroid-clustering algorithm being accelerated. All
// methods must be safe for concurrent *reads*; RecomputeCentroids is
// called exclusively.
type Space interface {
	// NumItems returns n, the number of items.
	NumItems() int
	// NumClusters returns k, the number of centroids.
	NumClusters() int
	// Dissimilarity returns d(item, centroid_cluster) ≥ 0.
	Dissimilarity(item, cluster int) float64
	// BoundedDissimilarity behaves like Dissimilarity but may stop early
	// and return any value ≥ bound once the result provably reaches
	// bound. Used only under Options.EarlyAbandon.
	BoundedDissimilarity(item, cluster int, bound float64) float64
	// RecomputeCentroids recalculates every centroid from its members.
	RecomputeCentroids(assign []int32)
	// Cost evaluates the clustering objective under assign.
	Cost(assign []int32) float64
}

// Querier produces cluster shortlists. Each Querier owns private scratch
// space: a single Querier must not be used concurrently, but distinct
// Queriers from one Accelerator may be.
type Querier interface {
	// Candidates returns the candidate clusters for item: the clusters
	// currently containing the indexed items that collide with it
	// (Algorithm 2 lines 10–12). assign maps items to clusters; entries
	// < 0 mean "not yet assigned" and are skipped. The result is
	// deduplicated, includes the item's own cluster whenever the item is
	// indexed and assigned, and remains valid only until the next call.
	Candidates(item int32, assign []int32) []int32
}

// DegradedQuerier is an optional Querier capability: queriers routed
// through the fault-tolerant shard backends (Options.ChaosSpec) report,
// after every shortlist call, whether that shortlist was degraded by
// shard failures. The driver consults it per item to keep a run with
// down shards correct instead of silently lossy.
type DegradedQuerier interface {
	// LastDegraded describes the most recent shortlist: partial means at
	// least one shard's candidates are missing (the shortlist
	// under-recalls); ownerDown means the item's own shard could not be
	// consulted at all, so the shortlist may omit even the item's
	// current cluster — the driver then falls back to an exact scan over
	// all k clusters for that item. Queriers without fault-tolerant
	// routing never degrade and simply don't implement the capability.
	LastDegraded() (partial, ownerDown bool)
}

// Accelerator is the search-space reduction component of the framework.
type Accelerator interface {
	// Reset prepares an empty index for a clustering over numClusters
	// clusters. It is called once per Run before any Insert.
	Reset(numClusters int) error
	// Insert indexes one item (the paper's single pass: "applying
	// MinHash to each item").
	Insert(item int32) error
	// NewQuerier returns a query handle with private scratch.
	NewQuerier() Querier
}

// KernelConfigurable is an optional Space/Accelerator capability:
// implementations whose hot loops run through the unrolled kernels of
// internal/kernel expose the switch back to their scalar references.
// The driver forwards Options.ScalarKernels to both the space and the
// accelerator once per Run, before any distance or signature is
// computed. The unrolled kernels preserve the scalar accumulation
// order, so results are bit-identical either way — the switch is the
// oracle the kernel-equivalence tests run under.
type KernelConfigurable interface {
	SetScalarKernels(scalar bool)
}

// BootstrapMode selects how the initial assignment and the index are
// produced.
type BootstrapMode int

const (
	// BootstrapFullScan follows the paper (§III-B step list): the first
	// assignment compares every item against every centroid exactly;
	// the index is built afterwards in a single pass. Its cost is
	// reported in Run.Bootstrap, matching the paper's remark that the
	// "initial extra step" is captured by total-time analysis.
	BootstrapFullScan BootstrapMode = iota
	// BootstrapSeeded is an ablation variant: the k seed items are
	// indexed and assigned to their own clusters first; every other
	// item is then queried against the growing index — by its own band
	// keys, before its insertion, via the accelerator's
	// UnindexedQuerier capability — falling back to an exact scan when
	// its shortlist is empty, and indexed immediately after. Both
	// built-in accelerators implement the capability (the serial oracle
	// signs the item on the spot; the presigned pipeline reuses the
	// SignAll arena — identical keys, so the paths stay bit-identical).
	// An accelerator without the capability degrades to the historical
	// behaviour, where Querier.Candidates answers only for indexed
	// items, every non-seed shortlist is empty and the exact-scan
	// fallback always runs.
	BootstrapSeeded
)

// UpdateMode selects when cluster references observed by LSH queries are
// refreshed.
type UpdateMode int

const (
	// UpdateImmediate matches the paper: "After each change, update the
	// cluster reference in the MinHash index to the new cluster".
	// Queries within a pass observe moves made earlier in the same pass.
	// Requires single-threaded assignment.
	UpdateImmediate UpdateMode = iota
	// UpdateDeferred has queries read a snapshot of the assignment taken
	// at the start of the pass; moves become visible at the next pass.
	// This decouples items from each other and enables Workers > 1.
	UpdateDeferred
)

// TieBreak selects the winner among equidistant candidate clusters.
type TieBreak int

const (
	// TieBreakPreferCurrent keeps an item in its current cluster when a
	// challenger only ties it. This damps oscillation and is the
	// default.
	TieBreakPreferCurrent TieBreak = iota
	// TieBreakLowestIndex assigns the lowest-indexed cluster among the
	// minima regardless of the current assignment, the behaviour of a
	// numpy-style argmin such as the paper's reference implementation.
	// Items may keep moving between tied clusters, which reproduces the
	// sustained per-iteration move counts of the paper's text
	// experiments (Figures 9c, 10d). EarlyAbandon is ignored for
	// shortlist evaluation under this mode (exact distances are needed
	// to resolve ties).
	TieBreakLowestIndex
)

// Seeder is an optional Space capability: spaces that know which items
// their initial centroids came from expose them for BootstrapSeeded.
type Seeder interface {
	Seeds() []int32
}

// Options configures Run. The zero value runs the exact baseline with
// paper-faithful settings.
type Options struct {
	// Accelerator enables LSH acceleration; nil runs the exact
	// algorithm.
	Accelerator Accelerator
	// MaxIterations caps the number of passes after bootstrap.
	// 0 means DefaultMaxIterations.
	MaxIterations int
	// Bootstrap selects the bootstrap strategy (accelerated runs only).
	Bootstrap BootstrapMode
	// Update selects reference-update semantics (accelerated runs only).
	Update UpdateMode
	// EarlyAbandon enables bounded dissimilarity evaluation. The
	// paper's implementation does not use it; off by default.
	EarlyAbandon bool
	// TieBreak selects tie-breaking among equidistant clusters.
	TieBreak TieBreak
	// SkipCost disables per-iteration objective evaluation (saves an
	// O(n·m) pass per iteration when only timings are needed).
	SkipCost bool
	// Workers parallelises the assignment pass. Values < 2 mean
	// single-threaded. Requires UpdateDeferred when an Accelerator is
	// set.
	Workers int
	// Shards partitions the accelerator's LSH index into this many
	// item shards (ShardedIndexer accelerators only; others ignore it).
	// Values < 2 keep the single-shard index — the bit-identical
	// oracle. Sharding never changes results: queries fan out across
	// shards and merge back into the single-index candidate order, so
	// every shard count produces identical runs (enforced by the
	// shard-invariance equivalence tests).
	Shards int
	// ForeignSlotBudget caps the memory (bytes) the sharded index may
	// spend on materialised cross-shard fan-out arrays (foreign slots),
	// which turn every foreign-shard bucket resolution into one indexed
	// load instead of a key-table probe. 0 selects
	// lsh.DefaultForeignSlotBudget; negative means unlimited. When the
	// arrays would exceed the budget the index transparently stays on
	// the probe path — results are identical either way. Ignored
	// without a ForeignSlotConfigurer accelerator or with Shards < 2.
	ForeignSlotBudget int64
	// DisableForeignSlots keeps the cross-shard fan-out on the
	// key-table probe path even when the foreign-slot arrays would fit
	// the budget. The probe path is the correctness oracle for the
	// materialised arrays; this switch exists for equivalence tests and
	// A/B benchmarks.
	DisableForeignSlots bool
	// ScalarKernels routes the hot-loop distance and signing kernels
	// through their scalar references instead of the unrolled versions
	// (internal/kernel), on every KernelConfigurable space and
	// accelerator. Results are bit-identical either way; the switch is
	// the correctness oracle for the kernels and exists for equivalence
	// tests and A/B benchmarks.
	ScalarKernels bool
	// DisableIncremental forces full RecomputeCentroids/Cost passes
	// even when the Space implements IncrementalSpace. The batch path
	// is the correctness oracle for the incremental engine; this switch
	// exists for equivalence tests and A/B benchmarks. It implies
	// DisableActiveFilter (the filter needs the engine's change
	// reports).
	DisableIncremental bool
	// DisableActiveFilter forces every assignment pass to evaluate all
	// n items even when the run qualifies for active-set filtering
	// (accelerated, incremental engine on, ChangeReporter space,
	// ReverseQuerier accelerator — see active.go). The full pass is
	// the correctness oracle for the filter; this switch exists for
	// equivalence tests and A/B benchmarks.
	DisableActiveFilter bool
	// DisableParallelBootstrap forces the serial bootstrap: the
	// single-threaded first assignment and the per-item sign+insert
	// loop, even when Workers > 1 or the accelerator implements
	// BulkIndexer. By default the bootstrap runs as a parallel
	// sign → build → assign pipeline (bit-identical results); the
	// serial loop is the correctness oracle for that pipeline, and
	// this switch exists for equivalence tests and A/B benchmarks.
	DisableParallelBootstrap bool
	// DisableImmediateBatching forces the immediate-update assignment
	// pass to its per-item loop even when the querier supports block
	// queries. By default the immediate pass gathers shortlists in
	// blocks cut at move boundaries — every position decided before a
	// move uses exactly the live view the per-item loop would have
	// seen, and positions after a move are discarded and re-queried —
	// so results are bit-identical; the per-item loop is the
	// correctness oracle, and this switch exists for equivalence tests
	// and A/B benchmarks.
	DisableImmediateBatching bool
	// DisableReorder forces the sharded index to build in original item
	// order even when the accelerator supports locality-preserving
	// reordering (ReorderConfigurer). By default the bulk frozen build
	// permutes items so co-colliding ones become contiguous — shard
	// fan-out concentrates in the owning shard and shortlist scans turn
	// near-sequential — while every externally visible artifact stays
	// in original-ID space and every tie-break stays on original ID, so
	// results are bit-identical; the original-order build is the
	// correctness oracle, and this switch exists for equivalence tests
	// and A/B benchmarks. Implied by ChaosSpec (the backend fan-out
	// requires identity order).
	DisableReorder bool
	// IndexDir, when non-empty, makes the bootstrap durable (see
	// persist.go): the frozen LSH index and the exact first assignment
	// are saved into this directory after a cold run's bootstrap, and
	// later runs warm-start from them — skipping signing, index
	// construction and the first full scan — with identical results. The
	// saved index is validated against the run's parameters, seed and
	// dataset fingerprint; a mismatch is an error, never a silent
	// rebuild. Requires an IndexPersister + BulkIndexer accelerator, the
	// parallel bootstrap and BootstrapFullScan.
	IndexDir string
	// DisableMmap loads a persisted index by copying it onto the heap
	// instead of memory-mapping it zero-copy. The heap load is the
	// portable correctness oracle for the mapped one (the bytes are
	// identical either way); this switch exists for equivalence tests
	// and A/B benchmarks. Ignored without IndexDir; mapping is also
	// skipped on platforms without mmap support.
	DisableMmap bool
	// ShardMemoryBudget, when > 0, caps the resident bytes of a
	// memory-mapped persisted index: whole shards are advised out when
	// the mapping exceeds the budget and paged back in when queries
	// touch them (best-effort madvise — a non-resident shard is slow,
	// never absent, so results are unchanged). Ignored without IndexDir
	// or under DisableMmap.
	ShardMemoryBudget int64
	// SnapshotEvery, when > 0, checkpoints the run state (assignment +
	// iteration stats) into IndexDir every SnapshotEvery iterations, and
	// resumes from the latest checkpoint on the next run instead of
	// restarting at iteration 1. A checkpoint for a different run shape
	// is an error. Requires IndexDir.
	SnapshotEvery int
	// ChaosSpec, when non-empty, routes the sharded index's cross-shard
	// fan-out through the fault-tolerant backend layer with the given
	// serve.ParseChaosSpec fault-injection script (ResilienceConfigurer
	// accelerators only; others ignore it). Backend calls then carry
	// deadlines, bounded retries and — unless DisableHedging — hedged
	// requests to a mirror replica; shards that stay down past the retry
	// budget degrade the run to partial shortlists instead of failing it
	// (see Run.DegradedItems). A spec injecting zero faults (e.g.
	// "seed=1") exercises the whole resilient path bit-identically to
	// the direct fan-out. Empty keeps the zero-overhead direct fan-out.
	ChaosSpec string
	// RetryBudget is the number of retries after a failed backend call
	// (0 = lsh.DefaultRetryBudget, negative = none). Ignored without
	// ChaosSpec.
	RetryBudget int
	// HedgeAfter is the straggler threshold after which a backend call
	// is hedged to its mirror replica (0 = lsh.DefaultHedgeAfter,
	// negative disables hedging). Ignored without ChaosSpec.
	HedgeAfter time.Duration
	// DisableHedging turns hedged backend requests off entirely, leaving
	// deadlines and retries in place. Unhedged calls are the correctness
	// oracle for the hedge race (first success wins, loser cancelled —
	// results are bit-identical either way); this switch exists for
	// equivalence tests and A/B benchmarks. Ignored without ChaosSpec.
	DisableHedging bool
	// OnIteration, when non-nil, receives each iteration's statistics
	// as it completes (progress reporting).
	OnIteration func(runstats.Iteration)
	// SeedItems overrides the seed items used by BootstrapSeeded; when
	// nil the Space must implement Seeder.
	SeedItems []int32
	// Context, when non-nil, cancels the run: it is checked between
	// passes and polled inside every assignment loop (serial and
	// per-worker, every ctxPollEvery items) and inside the bootstrap
	// (scan shards, signing workers and insert interleaves poll at the
	// same cadence, with a check after each pipeline phase), so
	// cancellation latency is a fraction of a pass or bootstrap, not a
	// whole one. Run returns the context error, discarding partial
	// progress. Large-k runs take minutes to hours; this is the off
	// switch.
	Context context.Context
}

// DefaultMaxIterations caps runs whose options leave MaxIterations zero.
const DefaultMaxIterations = 100

// Result is the outcome of a Run.
type Result struct {
	// Assign maps every item to its final cluster.
	Assign []int32
	// Stats records bootstrap and per-iteration measurements.
	Stats runstats.Run
}

// Run executes centroid-based clustering over space.
//
// Structure (paper §III-B): bootstrap (initial assignment + index
// construction), then repeated passes of (assignment over candidate
// clusters, centroid recomputation) until no item moves or the iteration
// cap is reached.
func Run(space Space, opts Options) (*Result, error) {
	n, k := space.NumItems(), space.NumClusters()
	if n == 0 || k == 0 {
		return nil, fmt.Errorf("core: empty space (n=%d, k=%d)", n, k)
	}
	maxIter := opts.MaxIterations
	if maxIter <= 0 {
		maxIter = DefaultMaxIterations
	}
	if opts.Workers > 1 && opts.Accelerator != nil && opts.Update != UpdateDeferred {
		return nil, fmt.Errorf("core: Workers > 1 requires UpdateDeferred")
	}
	if err := validatePersistOptions(&opts); err != nil {
		return nil, err
	}

	d := &driver{
		space: space,
		opts:  opts,
		n:     n,
		k:     k,
		assign: func() []int32 {
			a := make([]int32, n)
			for i := range a {
				a[i] = -1
			}
			return a
		}(),
	}

	if !opts.DisableIncremental {
		if inc, ok := space.(IncrementalSpace); ok {
			d.inc = inc
		}
	}

	// Kernel selection must precede every distance and signature
	// computation — the bootstrap's exact first assignment included —
	// so it is forwarded before bootstrap, to the space and the
	// accelerator alike.
	if kc, ok := space.(KernelConfigurable); ok {
		kc.SetScalarKernels(opts.ScalarKernels)
	}
	if kc, ok := opts.Accelerator.(KernelConfigurable); ok {
		kc.SetScalarKernels(opts.ScalarKernels)
	}

	if err := ctxErr(opts.Context); err != nil {
		return nil, err
	}
	bootStart := time.Now()
	if err := d.bootstrap(); err != nil {
		return nil, err
	}
	// All items are indexed by now; compact the index for the recurring
	// per-iteration lookups (no-op for accelerators without the
	// capability, and for the direct-to-frozen bootstrap, which built
	// the compact layout up front).
	if f, ok := opts.Accelerator.(Freezer); ok {
		freezeStart := time.Now()
		f.Freeze()
		d.bootBuild += time.Since(freezeStart)
	}
	// Resume point: a checkpointed assignment must be restored before
	// the incremental engine initialises its centroid accumulators from
	// it. The active filter starts its first pass full either way, so a
	// resumed run stays correct (evaluating a would-be-skipped item is a
	// no-op).
	startIter := 1
	var snapPath string
	var restoredIters []runstats.Iteration
	if opts.SnapshotEvery > 0 {
		snapPath = filepath.Join(opts.IndexDir, runStateFile)
		next, iters, err := d.restoreRunState(snapPath)
		if err != nil {
			return nil, err
		}
		if next > 0 {
			startIter = next
			restoredIters = iters
		}
	}
	if d.inc != nil {
		d.inc.BeginIncremental(d.assign, !opts.SkipCost)
	} else {
		space.RecomputeCentroids(d.assign)
	}
	d.initActive()
	res := &Result{Assign: d.assign}
	res.Stats.Iterations = restoredIters
	res.Stats.ResumedAt = startIter
	res.Stats.Bootstrap = time.Since(bootStart)
	res.Stats.BootstrapSign = d.bootSign
	res.Stats.BootstrapBuild = d.bootBuild
	res.Stats.BootstrapAssign = d.bootAssign
	res.Stats.Purity = math.NaN()

	for iter := startIter; iter <= maxIter; iter++ {
		if err := ctxErr(opts.Context); err != nil {
			return nil, err
		}
		start := time.Now()
		ps := d.pass()
		if err := ctxErr(opts.Context); err != nil {
			// A cancelled pass stopped early; don't pay for a centroid
			// publish whose results are discarded anyway.
			return nil, err
		}
		if d.inc != nil {
			d.inc.FinishPass(d.assign)
		} else {
			space.RecomputeCentroids(d.assign)
		}
		it := runstats.Iteration{
			Index:           iter,
			Duration:        time.Since(start),
			Moves:           ps.moves,
			Comparisons:     ps.comps,
			CandidatesTotal: ps.cands,
			ActiveItems:     ps.evaluated,
			SkippedItems:    n - ps.evaluated,
			Cost:            math.NaN(),
		}
		if ps.evaluated > 0 {
			it.AvgShortlist = float64(ps.cands) / float64(ps.evaluated)
		}
		res.Stats.DegradedItems += int64(ps.degraded)
		if !opts.SkipCost {
			if d.inc != nil {
				it.Cost = d.inc.IncrementalCost(d.assign)
			} else {
				it.Cost = space.Cost(d.assign)
			}
		}
		res.Stats.Iterations = append(res.Stats.Iterations, it)
		if opts.OnIteration != nil {
			opts.OnIteration(it)
		}
		if snapPath != "" && iter%opts.SnapshotEvery == 0 {
			if err := d.saveRunState(snapPath, iter+1, res.Stats.Iterations); err != nil {
				return nil, err
			}
		}
		if ps.moves == 0 {
			res.Stats.Converged = true
			break
		}
		if d.act.enabled {
			d.prepareNextActive()
		}
	}
	if sr, ok := opts.Accelerator.(ShardStatsReporter); ok {
		ss := sr.ShardStats()
		res.Stats.Shards = ss.Shards
		res.Stats.BootstrapBuildShards = ss.BuildTimes
		res.Stats.CrossShardMerge = ss.CrossShardMerge
		res.Stats.ForeignSlotBytes = ss.ForeignSlotBytes
		res.Stats.CrossShardProbes = ss.ProbeOps
		res.Stats.CrossShardDirect = ss.DirectOps
		res.Stats.ReorderTime = ss.ReorderTime
		res.Stats.ShardLocalCands = ss.LocalCands
		res.Stats.ShardForeignCands = ss.ForeignCands
		res.Stats.ShardRetries = ss.Retries
		res.Stats.ShardTimeouts = ss.Timeouts
		res.Stats.HedgedCalls = ss.HedgedCalls
		res.Stats.HedgeWins = ss.HedgeWins
		res.Stats.SkippedShards = ss.SkippedShards
		res.Stats.IndexSaveTime = ss.SaveTime
		res.Stats.IndexLoadTime = ss.LoadTime
		res.Stats.MmapBytes = ss.MmapBytes
		res.Stats.WarmStart = ss.WarmStart
		res.Stats.ResidentShards = ss.ResidentShards
		res.Stats.ShardPromotions = ss.Promotions
		res.Stats.ShardDemotions = ss.Demotions
	}
	return res, nil
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// driver carries the mutable state of one Run.
type driver struct {
	space   Space
	opts    Options
	n, k    int
	assign  []int32
	querier Querier
	// inc is non-nil when the space implements IncrementalSpace and the
	// incremental engine is enabled; passes then feed it moves instead
	// of relying on full centroid recomputation.
	inc IncrementalSpace
	// snapshot holds the pass-start assignment under UpdateDeferred.
	snapshot []int32
	// perm/assignInt are the locality-reordering view (nil when the
	// index built in original order): perm[original] = internal, and
	// assignInt mirrors assign in internal-ID space so shortlist sweeps
	// — which emit internal IDs on a reordered index — read assignments
	// in near-sequential order. Every assignment write goes through
	// setAssign to keep the mirror coherent; d.assign stays the
	// original-ID source of truth for every externally visible artifact.
	// inv is perm's inverse (inv[internal] = original); unfiltered
	// deferred passes sweep items in ascending-internal order — the
	// order the reordered arena was built in, so slot rows and buckets
	// stream sequentially — and moveSort re-sorts their collected moves
	// back into ascending-original order before they reach the
	// incremental space (whose float accumulators are order-sensitive).
	perm      []int32
	inv       []int32
	assignInt []int32
	moveSort  []moveRec
	// bootSign/bootBuild/bootAssign split the bootstrap wall time into
	// its signing, index-construction and first-assignment phases
	// (runstats.Run.Bootstrap* — see those fields for which phases stay
	// zero on the serial paths, where signing is interleaved).
	bootSign, bootBuild, bootAssign time.Duration
	// chg and rev are the change-report and reverse-collision
	// capabilities backing the active-set filter; nil unless
	// act.enabled (see active.go).
	chg ChangeReporter
	rev ReverseView
	act activeState
}

// passStats aggregates one assignment pass. evaluated counts the items
// actually queried and compared — n on a full pass, the active-set size
// on a filtered one.
type passStats struct {
	moves     int
	evaluated int
	// degraded counts the evaluated items whose shortlist was degraded
	// by shard failures (partial recall or owner-shard fallback); zero
	// without Options.ChaosSpec.
	degraded int
	comps    int64
	cands    int64
}

func (p *passStats) add(o passStats) {
	p.moves += o.moves
	p.evaluated += o.evaluated
	p.degraded += o.degraded
	p.comps += o.comps
	p.cands += o.cands
}

// bestWithDegraded resolves one item's assignment with degraded-mode
// handling: when the querier reports the shortlist's owner shard down,
// the shortlist may omit even the item's current cluster, so the item
// falls back to an exact scan over all k clusters (correct, just
// unaccelerated); a merely partial shortlist is still evaluated — the
// item's own cluster is present, so the move decision stays sound,
// only recall suffers. Both cases count into ps.degraded. With a nil
// dq (no fault-tolerant routing) this is exactly bestOf.
func (d *driver) bestWithDegraded(dq DegradedQuerier, item, cur int, shortlist []int32, ps *passStats) int32 {
	if dq != nil {
		if partial, ownerDown := dq.LastDegraded(); ownerDown {
			ps.degraded++
			return int32(d.bestExact(item, cur, &ps.comps))
		} else if partial {
			ps.degraded++
		}
	}
	return d.bestOf(item, cur, shortlist, &ps.comps)
}

// bootstrap produces the initial assignment and, for accelerated runs,
// the index.
//
// With a BulkIndexer accelerator (and unless DisableParallelBootstrap
// selects the serial oracle), it runs as an explicit pipeline whose
// phases are individually parallel and individually timed: sign every
// item into a flat key arena across Workers goroutines, build the
// index from the keys (direct to the frozen layout for the full-scan
// mode; the serial presigned interleave for the seeded mode, whose
// query/insert ordering is semantically load-bearing), then the exact
// first assignment, itself sharded across Workers. Every phase is
// bit-identical to its serial counterpart.
func (d *driver) bootstrap() error {
	accel := d.opts.Accelerator
	workers := d.opts.Workers
	if workers < 1 {
		workers = 1
	}
	// Bootstrap is now the dominant wall-clock phase, so it honours
	// Options.Context like the iteration passes do: every long loop
	// (scan shards, signing workers, insert interleaves) polls each
	// ctxPollEvery items, and each pipeline phase ends with a
	// cancellation check, keeping latency a fraction of the bootstrap.
	stop := func() bool { return ctxErr(d.opts.Context) != nil }
	serialOracle := d.opts.DisableParallelBootstrap
	if accel == nil {
		start := time.Now()
		d.bootstrapScan(workers, !serialOracle)
		d.bootAssign = time.Since(start)
		return ctxErr(d.opts.Context)
	}
	if si, ok := accel.(ShardedIndexer); ok {
		shards := d.opts.Shards
		if shards < 1 {
			shards = 1
		}
		si.SetShards(shards)
	}
	if fc, ok := accel.(ForeignSlotConfigurer); ok {
		fc.SetForeignSlots(d.opts.ForeignSlotBudget, d.opts.DisableForeignSlots)
	}
	if ro, ok := accel.(ReorderConfigurer); ok {
		ro.SetReorder(d.opts.DisableReorder)
	}
	if rc, ok := accel.(ResilienceConfigurer); ok {
		rc.SetResilience(ResilienceConfig{
			ChaosSpec:      d.opts.ChaosSpec,
			RetryBudget:    d.opts.RetryBudget,
			HedgeAfter:     d.opts.HedgeAfter,
			DisableHedging: d.opts.DisableHedging,
			Context:        d.opts.Context,
		})
	}
	if ip, ok := accel.(IndexPersister); ok {
		// Forwarded unconditionally (an empty Dir clears any previous
		// configuration on a reused accelerator), before Reset, which is
		// where the warm load happens.
		ip.SetPersist(PersistConfig{
			Dir:          d.opts.IndexDir,
			DisableMmap:  d.opts.DisableMmap,
			MemoryBudget: d.opts.ShardMemoryBudget,
			Workers:      workers,
		})
	}
	if err := accel.Reset(d.k); err != nil {
		return fmt.Errorf("core: resetting accelerator: %w", err)
	}
	bulk, _ := accel.(BulkIndexer)
	if serialOracle {
		bulk = nil
	}
	switch d.opts.Bootstrap {
	case BootstrapFullScan:
		if bulk != nil {
			// A warm-started Reset loaded the frozen index from disk:
			// signing and construction have nothing left to do, and the
			// first assignment restores from the directory too (falling
			// back to the scan if its file fails validation).
			warm := false
			if ip, ok := accel.(IndexPersister); ok {
				warm = ip.WarmLoaded()
			}
			if !warm {
				start := time.Now()
				if err := bulk.SignAll(workers, stop); err != nil {
					return fmt.Errorf("core: signing items: %w", err)
				}
				d.bootSign = time.Since(start)
				if err := ctxErr(d.opts.Context); err != nil {
					return err // the partially signed arena is discarded with the run
				}
				start = time.Now()
				if err := bulk.BuildFrozen(workers); err != nil {
					return fmt.Errorf("core: building frozen index: %w", err)
				}
				d.bootBuild = time.Since(start)
				if err := ctxErr(d.opts.Context); err != nil {
					return err
				}
			}
			start := time.Now()
			if err := d.bootstrapAssign(workers); err != nil {
				return err
			}
			d.bootAssign = time.Since(start)
			break
		}
		start := time.Now()
		d.bootstrapScan(workers, !serialOracle)
		d.bootAssign = time.Since(start)
		if err := ctxErr(d.opts.Context); err != nil {
			return err
		}
		start = time.Now()
		poll := 0
		for i := 0; i < d.n; i++ {
			if poll++; poll >= ctxPollEvery {
				poll = 0
				if err := ctxErr(d.opts.Context); err != nil {
					return err
				}
			}
			if err := accel.Insert(int32(i)); err != nil {
				return fmt.Errorf("core: indexing item %d: %w", i, err)
			}
		}
		d.bootBuild = time.Since(start) // includes interleaved signing
	case BootstrapSeeded:
		seeds := d.opts.SeedItems
		if seeds == nil {
			s, ok := d.space.(Seeder)
			if !ok {
				return fmt.Errorf("core: BootstrapSeeded requires SeedItems or a Seeder space")
			}
			seeds = s.Seeds()
		}
		if len(seeds) != d.k {
			return fmt.Errorf("core: %d seed items for %d clusters", len(seeds), d.k)
		}
		insert := accel.Insert
		if bulk != nil {
			start := time.Now()
			if err := bulk.SignAll(workers, stop); err != nil {
				return fmt.Errorf("core: signing items: %w", err)
			}
			d.bootSign = time.Since(start)
			if err := ctxErr(d.opts.Context); err != nil {
				return err
			}
			insert = bulk.InsertPresigned
		}
		start := time.Now()
		isSeed := make([]bool, d.n)
		//lshvet:ignore ctxpollcheck k seed inserts only, bounded by the cluster count, not by n
		for c, item := range seeds {
			if item < 0 || int(item) >= d.n {
				return fmt.Errorf("core: seed item %d out of range", item)
			}
			d.assign[item] = int32(c)
			isSeed[item] = true
			if err := insert(item); err != nil {
				return fmt.Errorf("core: indexing seed %d: %w", item, err)
			}
		}
		// Query the growing index with each item's own band keys
		// (UnindexedQuerier) so non-seed items genuinely consult what
		// has been indexed so far; a Querier.Candidates call would
		// answer only for already-inserted items and always come back
		// empty. Accelerators without the capability keep the legacy
		// empty-shortlist interleave.
		uq, _ := accel.(UnindexedQuerier)
		var q Querier
		if uq == nil {
			q = accel.NewQuerier()
		}
		poll := 0
		for i := 0; i < d.n; i++ {
			if isSeed[i] {
				continue
			}
			if poll++; poll >= ctxPollEvery {
				poll = 0
				if err := ctxErr(d.opts.Context); err != nil {
					return err
				}
			}
			var shortlist []int32
			if uq != nil {
				shortlist = uq.CandidatesUnindexed(int32(i), d.assign)
			} else {
				shortlist = q.Candidates(int32(i), d.assign)
			}
			if len(shortlist) == 0 {
				d.fullScanRange(i, i+1, d.assign, nil)
			} else {
				d.assign[i] = d.bestOf(i, -1, shortlist, nil)
			}
			if err := insert(int32(i)); err != nil {
				return fmt.Errorf("core: indexing item %d: %w", i, err)
			}
		}
		d.bootAssign = time.Since(start) // includes interleaved inserts and queries
	default:
		return fmt.Errorf("core: unknown bootstrap mode %d", d.opts.Bootstrap)
	}
	d.querier = accel.NewQuerier()
	// A reordered index emits candidates in internal-ID space, so the
	// iteration passes need an internal-ID mirror of the assignment for
	// their query views. The bootstrap itself never queries a reordered
	// index with an assignment view (the bulk path's first assignment
	// is the exact scan; the seeded and serial paths build in original
	// order), so initialising the mirror once here is sufficient.
	if rm, ok := accel.(ReorderMapper); ok {
		if perm, inv := rm.ReorderMap(); perm != nil {
			d.perm, d.inv = perm, inv
			d.assignInt = make([]int32, d.n)
			for i, c := range d.assign {
				d.assignInt[perm[i]] = c
			}
		}
	}
	return ctxErr(d.opts.Context)
}

// setAssign records item i's move to cluster c in the original-ID
// assignment and, when the index is reordered, in the internal-ID
// mirror. Parallel workers may call it concurrently: each item is
// decided by exactly one worker and perm is a bijection, so both
// cells are written by that worker alone.
func (d *driver) setAssign(i int, c int32) {
	d.assign[i] = c
	if d.perm != nil {
		d.assignInt[d.perm[i]] = c
	}
}

// bootstrapScan runs the exact first assignment over all n items —
// every item against every centroid, current assignment −1 — sharded
// across workers goroutines when parallel. Items are independent
// (Space reads are concurrency-safe, each assignment cell written by
// one worker), so the result is bit-identical to the serial scan.
// Moves are not logged: the incremental engine initialises from the
// complete bootstrap assignment afterwards. Every shard polls
// Options.Context each ctxPollEvery items and stops early on
// cancellation; the caller returns the context error, discarding the
// partial assignment with the run.
func (d *driver) bootstrapScan(workers int, parallel bool) {
	if !parallel {
		workers = 1
	}
	par.Ranges(d.n, workers, func(lo, hi int) {
		for next := lo; next < hi; {
			end := next + ctxPollEvery
			if end > hi {
				end = hi
			}
			d.fullScanRange(next, end, d.assign, nil)
			next = end
			if ctxErr(d.opts.Context) != nil {
				return
			}
		}
	})
}

// fullScanRange exactly assigns items in [lo, hi) by scanning all k
// centroids, writing into out. Counters, when non-nil, receive the
// comparison count.
func (d *driver) fullScanRange(lo, hi int, out []int32, comps *int64) {
	for i := lo; i < hi; i++ {
		cur := int(out[i]) // -1 during bootstrap
		best := d.bestExact(i, cur, comps)
		out[i] = int32(best)
	}
}

// bestExact returns the closest cluster to item over all k clusters.
// Under TieBreakPreferCurrent the current cluster wins ties; under
// TieBreakLowestIndex the ascending scan with strict improvement yields
// the lowest-indexed minimum.
func (d *driver) bestExact(item, cur int, comps *int64) int {
	var bestC int
	var bestD float64
	if cur >= 0 && d.opts.TieBreak == TieBreakPreferCurrent {
		bestC, bestD = cur, d.space.Dissimilarity(item, cur)
	} else {
		bestC, bestD = 0, d.space.Dissimilarity(item, 0)
	}
	if comps != nil {
		*comps++
	}
	skipCur := cur
	if d.opts.TieBreak == TieBreakLowestIndex {
		skipCur = -1 // the current cluster gets no special treatment
	}
	for c := 0; c < d.k; c++ {
		if c == bestC || c == skipCur {
			continue
		}
		var dist float64
		if d.opts.EarlyAbandon {
			dist = d.space.BoundedDissimilarity(item, c, bestD)
		} else {
			dist = d.space.Dissimilarity(item, c)
		}
		if comps != nil {
			*comps++
		}
		if dist < bestD {
			bestD, bestC = dist, c
		}
	}
	return bestC
}

// bestOf returns the closest cluster to item among candidates plus the
// current cluster when cur ≥ 0, resolving ties per Options.TieBreak.
// With neither a current cluster nor any candidate there is nothing to
// compare against; rather than silently electing cluster 0 (or −1
// under lowest-index ties), bestOf falls back to an exact scan over
// all k clusters. No current call site reaches this — every bootstrap
// path either supplies cur ≥ 0 or checks for an empty shortlist first
// — but a future bootstrap mode that forgets the check mis-assigns
// silently without it.
func (d *driver) bestOf(item, cur int, candidates []int32, comps *int64) int32 {
	if cur < 0 && len(candidates) == 0 {
		return int32(d.bestExact(item, cur, comps))
	}
	if d.opts.TieBreak == TieBreakLowestIndex {
		return d.bestOfLowestIndex(item, cur, candidates, comps)
	}
	var bestC int32
	var bestD float64
	evaluated := false
	if cur >= 0 {
		bestC, bestD = int32(cur), d.space.Dissimilarity(item, cur)
		evaluated = true
		if comps != nil {
			*comps++
		}
	}
	for _, c := range candidates {
		if evaluated && c == bestC {
			continue
		}
		if cur >= 0 && c == int32(cur) {
			continue
		}
		var dist float64
		if !evaluated {
			dist = d.space.Dissimilarity(item, int(c))
		} else if d.opts.EarlyAbandon {
			dist = d.space.BoundedDissimilarity(item, int(c), bestD)
		} else {
			dist = d.space.Dissimilarity(item, int(c))
		}
		if comps != nil {
			*comps++
		}
		if !evaluated || dist < bestD {
			bestD, bestC = dist, c
			evaluated = true
		}
	}
	return bestC
}

// bestOfLowestIndex is the numpy-argmin variant: the lowest-indexed
// minimum over the union of the current cluster and the candidates wins,
// even when that means moving on a tie.
func (d *driver) bestOfLowestIndex(item, cur int, candidates []int32, comps *int64) int32 {
	bestC := int32(-1)
	bestD := math.Inf(1)
	if cur >= 0 {
		bestC, bestD = int32(cur), d.space.Dissimilarity(item, cur)
		if comps != nil {
			*comps++
		}
	}
	for _, c := range candidates {
		if cur >= 0 && c == int32(cur) {
			continue
		}
		dist := d.space.Dissimilarity(item, int(c))
		if comps != nil {
			*comps++
		}
		if dist < bestD || (dist == bestD && c < bestC) {
			bestD, bestC = dist, c
		}
	}
	return bestC
}

// pass runs one assignment pass.
func (d *driver) pass() passStats {
	if d.opts.Accelerator == nil {
		return d.exactPass()
	}
	// A reordered index emits candidates as internal IDs, so query
	// views must be indexed in internal space; setAssign keeps the
	// mirror coherent with d.assign, which stays the original-ID
	// source of truth (results, stats, active filter).
	src := d.assign
	if d.perm != nil {
		src = d.assignInt
	}
	view := src
	if d.opts.Update == UpdateDeferred {
		d.snapshot = append(d.snapshot[:0], src...)
		view = d.snapshot
	}
	if d.opts.Workers > 1 && d.opts.Update == UpdateDeferred {
		return d.parallelPass(view)
	}
	if d.opts.Update == UpdateDeferred {
		if bq, ok := d.querier.(BlockQuerier); ok {
			return d.serialBlockPass(bq, view)
		}
	}
	if d.opts.Update == UpdateImmediate && !d.opts.DisableImmediateBatching {
		if bq, ok := d.querier.(BlockQuerier); ok {
			return d.immediateBlockPass(bq)
		}
	}
	return d.serialPass(view)
}

// immediateBlockPass is the single-threaded immediate-update pass over
// a block-capable querier: shortlists are gathered queryBlockLen items
// at a time against the *live* assignment, and blocks are cut at move
// boundaries so the live view stays correct. Every shortlist in a
// block is computed against the assignment as of the block's start;
// positions decided before the first move saw exactly the state the
// per-item loop would have shown them (no move happened since the
// block began), and the mover's own shortlist predates its move. The
// moment an item moves, the rest of the block is discarded — those
// positions re-gather from the item after the mover, observing the
// move and any active-set flags it raised, exactly like the per-item
// loop. Late sparse passes move almost nothing, so most blocks
// complete whole and the pass keeps the batched sweep's cache wins;
// Options.DisableImmediateBatching retains the per-item loop as the
// bit-identical oracle.
func (d *driver) immediateBlockPass(bq BlockQuerier) (ps passStats) {
	filtered := d.filtered()
	dq, _ := bq.(DegradedQuerier)
	// The live view the block queries read: the internal-ID mirror on a
	// reordered index (kept current by setAssign below), d.assign
	// otherwise.
	live := d.assign
	if d.perm != nil {
		live = d.assignInt
	}
	var buf [queryBlockLen]int32
	poll := 0
	for next := 0; next < d.n; {
		// Gather the next block, reading active flags live: flags set by
		// an earlier move in this pass are honoured exactly as the
		// per-item loop's cursor would honour them.
		blk := buf[:0]
		i := next
		for ; i < d.n && len(blk) < queryBlockLen; i++ {
			if filtered && !d.act.cur[i] {
				continue
			}
			blk = append(blk, int32(i))
		}
		next = i
		if len(blk) == 0 {
			return ps
		}
		if poll += len(blk); poll >= ctxPollEvery {
			poll = 0
			if ctxErr(d.opts.Context) != nil {
				return ps
			}
		}
		movedAt := -1
		bq.CandidatesBlock(blk, live, func(pos int, shortlist []int32) {
			if movedAt >= 0 {
				return // discarded tail: stale after the move
			}
			it := int(blk[pos])
			cur := d.assign[it]
			ps.cands += int64(len(shortlist))
			best := d.bestWithDegraded(dq, it, int(cur), shortlist, &ps)
			ps.evaluated++
			if best != cur {
				d.setAssign(it, best)
				if d.inc != nil {
					d.inc.ApplyMove(it, cur, best)
				}
				ps.moves++
				d.noteMove(it)
				movedAt = pos
			}
		})
		if movedAt >= 0 {
			next = int(blk[movedAt]) + 1
		}
	}
	return ps
}

// serialPass is the single-threaded per-item pass: the immediate-mode
// oracle (DisableImmediateBatching, or a querier without block
// support), and the deferred fallback for queriers without block
// support. A filtered pass walks the full index range but only
// evaluates flagged items — the O(n) flag scan is noise next to a
// single shortlist query, and it picks up the flags immediate-mode
// moves set ahead of the cursor.
func (d *driver) serialPass(view []int32) (ps passStats) {
	q := d.querier
	filtered := d.filtered()
	dq, _ := q.(DegradedQuerier)
	poll := 0
	for i := 0; i < d.n; i++ {
		if filtered && !d.act.cur[i] {
			continue
		}
		if poll++; poll >= ctxPollEvery {
			poll = 0
			if ctxErr(d.opts.Context) != nil {
				break
			}
		}
		cur := d.assign[i]
		shortlist := q.Candidates(int32(i), view)
		ps.cands += int64(len(shortlist))
		best := d.bestWithDegraded(dq, i, int(cur), shortlist, &ps)
		ps.evaluated++
		if best != cur {
			// The write below *is* the paper's "update the cluster
			// reference in the MinHash index": buckets store item IDs
			// and queries map them through this slice.
			d.setAssign(i, best)
			if d.inc != nil {
				// Immediate mode: fold the move in as it happens.
				// Visible centroids stay frozen until FinishPass, so
				// this cannot perturb later decisions in the pass.
				d.inc.ApplyMove(i, cur, best)
			}
			ps.moves++
			d.noteMove(i)
		}
	}
	return ps
}

// serialBlockPass is the single-threaded deferred pass over a
// block-capable querier: shortlists are gathered queryBlockLen items at
// a time against the snapshot, so the index sweep amortises cache
// misses. Moves decided inside a block cannot affect the block's other
// shortlists — that is exactly the deferred-update semantics. On a
// reordered index the unfiltered sweep walks items in ascending
// *internal* order (see sweepItem) and the moves are re-sorted into
// ascending original order before the incremental space folds them —
// deferred decisions are order-independent, so only the fold order had
// to be preserved.
func (d *driver) serialBlockPass(bq BlockQuerier, view []int32) (ps passStats) {
	filtered := d.filtered()
	var buf [queryBlockLen]int32
	var log *[]moveRec
	if d.perm != nil && d.inc != nil {
		d.moveSort = d.moveSort[:0]
		log = &d.moveSort
	}
	next, poll := 0, 0
	for {
		blk := buf[:0]
		if filtered {
			for next < len(d.act.curList) && len(blk) < queryBlockLen {
				blk = append(blk, d.act.curList[next])
				next++
			}
		} else {
			for next < d.n && len(blk) < queryBlockLen {
				blk = append(blk, d.sweepItem(next))
				next++
			}
		}
		if len(blk) == 0 {
			break
		}
		if poll += len(blk); poll >= ctxPollEvery {
			poll = 0
			if ctxErr(d.opts.Context) != nil {
				break
			}
		}
		d.evalBlock(bq, blk, view, &ps, log)
	}
	if log != nil {
		d.applyMovesOriginalOrder(*log)
	}
	return ps
}

// sweepItem maps an unfiltered deferred-pass cursor position to the
// item evaluated there: position = item on an original-order index,
// and the position'th item of the *internal* order on a reordered one,
// so consecutive positions touch consecutive internal IDs and the
// sweep streams the permuted arena the way it was built. Every item is
// still evaluated exactly once per pass, decisions read only the
// snapshot view, and move side effects are re-ordered where they are
// order-sensitive (applyMovesOriginalOrder), so results are
// bit-identical to the original-order sweep.
func (d *driver) sweepItem(pos int) int32 {
	if d.perm != nil {
		return d.inv[pos]
	}
	return int32(pos)
}

// applyMovesOriginalOrder folds a deferred pass's collected moves into
// the incremental space in ascending original-item order — the order
// the original-order serial pass applies them in. Sorting is what
// makes the internal-order sweep invisible: K-Means' running sums are
// floating-point accumulators, so the fold order is part of the
// bit-identity contract.
func (d *driver) applyMovesOriginalOrder(moves []moveRec) {
	slices.SortFunc(moves, func(a, b moveRec) int { return int(a.item) - int(b.item) })
	for _, mv := range moves {
		d.inc.ApplyMove(int(mv.item), mv.from, mv.to)
	}
}

// evalBlock runs one batched shortlist query and evaluates every item
// in the block. log, when non-nil, receives the moves instead of the
// incremental engine — callers batch moves whenever the pass order is
// not the apply order: parallel workers replay after the join, and
// reordered serial sweeps re-sort to ascending original first. The
// serial caller on an unreordered index passes nil and applies
// immediately.
func (d *driver) evalBlock(bq BlockQuerier, blk []int32, view []int32, ps *passStats, log *[]moveRec) {
	dq, _ := bq.(DegradedQuerier)
	bq.CandidatesBlock(blk, view, func(pos int, shortlist []int32) {
		i := int(blk[pos])
		cur := d.assign[i]
		ps.cands += int64(len(shortlist))
		best := d.bestWithDegraded(dq, i, int(cur), shortlist, ps)
		ps.evaluated++
		if best != cur {
			d.setAssign(i, best)
			if log != nil {
				*log = append(*log, moveRec{int32(i), cur, best})
			} else if d.inc != nil {
				d.inc.ApplyMove(i, cur, best)
			}
			ps.moves++
			d.noteMove(i)
		}
	})
}

func (d *driver) exactPass() (ps passStats) {
	if d.opts.Workers > 1 {
		return d.parallelExactPass()
	}
	poll := 0
	for i := 0; i < d.n; i++ {
		if poll++; poll >= ctxPollEvery {
			poll = 0
			if ctxErr(d.opts.Context) != nil {
				break
			}
		}
		cur := d.assign[i]
		best := int32(d.bestExact(i, int(cur), &ps.comps))
		ps.cands += int64(d.k)
		ps.evaluated++
		if best != cur {
			d.assign[i] = best
			if d.inc != nil {
				d.inc.ApplyMove(i, cur, best)
			}
			ps.moves++
		}
	}
	return ps
}

// segStats is one parallel worker's share of a pass.
type segStats struct {
	ps    passStats
	moved []moveRec
}

// parallelPass splits the accelerated assignment across Workers
// goroutines. Safe because queries read the immutable snapshot and each
// item's assignment cell (and moved flag) is written by exactly one
// worker. A filtered pass partitions the active list instead of the
// index range, so workers stay balanced on the surviving work; both
// partitions are contiguous and ascending, which applyMoveLogs relies
// on.
func (d *driver) parallelPass(view []int32) passStats {
	w := d.opts.Workers
	filtered := d.filtered()
	total := d.n
	if filtered {
		total = len(d.act.curList)
	}
	res := make([]segStats, w)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		lo := g * total / w
		hi := (g + 1) * total / w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			q := d.opts.Accelerator.NewQuerier()
			c := &res[g]
			var log *[]moveRec
			if d.inc != nil {
				log = &c.moved
			}
			if bq, ok := q.(BlockQuerier); ok {
				d.workerBlocks(bq, lo, hi, filtered, view, &c.ps, log)
			} else {
				d.workerItems(q, lo, hi, filtered, view, &c.ps, log)
			}
		}(g, lo, hi)
	}
	wg.Wait()
	var ps passStats
	for i := range res {
		ps.add(res[i].ps)
	}
	d.applyMoveLogs(w, func(g int) []moveRec { return res[g].moved })
	return ps
}

// workerBlocks processes positions [lo, hi) of the worker's domain —
// the active list when filtered, item IDs otherwise — in batched
// blocks.
func (d *driver) workerBlocks(bq BlockQuerier, lo, hi int, filtered bool, view []int32, ps *passStats, log *[]moveRec) {
	var buf [queryBlockLen]int32
	poll := 0
	for next := lo; next < hi; {
		blk := buf[:0]
		for next < hi && len(blk) < queryBlockLen {
			if filtered {
				blk = append(blk, d.act.curList[next])
			} else {
				blk = append(blk, d.sweepItem(next))
			}
			next++
		}
		if poll += len(blk); poll >= ctxPollEvery {
			poll = 0
			if ctxErr(d.opts.Context) != nil {
				return
			}
		}
		d.evalBlock(bq, blk, view, ps, log)
	}
}

// workerItems is the per-item worker loop for queriers without block
// support.
func (d *driver) workerItems(q Querier, lo, hi int, filtered bool, view []int32, ps *passStats, log *[]moveRec) {
	dq, _ := q.(DegradedQuerier)
	poll := 0
	for pos := lo; pos < hi; pos++ {
		i := pos
		if filtered {
			i = int(d.act.curList[pos])
		}
		if poll++; poll >= ctxPollEvery {
			poll = 0
			if ctxErr(d.opts.Context) != nil {
				return
			}
		}
		cur := d.assign[i]
		shortlist := q.Candidates(int32(i), view)
		ps.cands += int64(len(shortlist))
		best := d.bestWithDegraded(dq, i, int(cur), shortlist, ps)
		ps.evaluated++
		if best != cur {
			d.setAssign(i, best)
			if log != nil {
				*log = append(*log, moveRec{int32(i), cur, best})
			}
			ps.moves++
			d.noteMove(i)
		}
	}
}

// applyMoveLogs replays per-worker move batches into the incremental
// space after a parallel pass joins. Worker domains are contiguous and
// ascending, so replaying workers in order applies moves in ascending
// item order — the same order the single-threaded pass uses. On a
// reordered index the unfiltered block sweep walks internal order, so
// the concatenated logs are re-sorted back into ascending original
// order instead (applyMovesOriginalOrder).
func (d *driver) applyMoveLogs(w int, log func(g int) []moveRec) {
	if d.inc == nil {
		return
	}
	if d.perm != nil {
		d.moveSort = d.moveSort[:0]
		for g := 0; g < w; g++ {
			d.moveSort = append(d.moveSort, log(g)...)
		}
		d.applyMovesOriginalOrder(d.moveSort)
		return
	}
	for g := 0; g < w; g++ {
		for _, mv := range log(g) {
			d.inc.ApplyMove(int(mv.item), mv.from, mv.to)
		}
	}
}

func (d *driver) parallelExactPass() passStats {
	w := d.opts.Workers
	res := make([]segStats, w)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		lo := g * d.n / w
		hi := (g + 1) * d.n / w
		if lo == hi {
			continue
		}
		wg.Add(1)
		go func(g, lo, hi int) {
			defer wg.Done()
			c := &res[g]
			poll := 0
			for i := lo; i < hi; i++ {
				if poll++; poll >= ctxPollEvery {
					poll = 0
					if ctxErr(d.opts.Context) != nil {
						return
					}
				}
				cur := d.assign[i]
				best := int32(d.bestExact(i, int(cur), &c.ps.comps))
				c.ps.cands += int64(d.k)
				c.ps.evaluated++
				if best != cur {
					d.assign[i] = best
					if d.inc != nil {
						c.moved = append(c.moved, moveRec{int32(i), cur, best})
					}
					c.ps.moves++
				}
			}
		}(g, lo, hi)
	}
	wg.Wait()
	var ps passStats
	for i := range res {
		ps.add(res[i].ps)
	}
	d.applyMoveLogs(w, func(g int) []moveRec { return res[g].moved })
	return ps
}
