package core

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"unsafe"

	"lshcluster/internal/lsh/persist"
	"lshcluster/internal/runstats"
)

// Index persistence and resumable runs. With Options.IndexDir set, the
// bootstrap's expensive artifacts become durable: the frozen LSH index
// is saved after its first build (internal/lsh persist format) and
// warm-started on the next run — memory-mapped zero-copy by default,
// heap-copied under Options.DisableMmap — and the exact first
// assignment is saved alongside it, so a warm run skips signing, index
// construction AND the full first scan. Everything is
// validate-or-reject: the index manifest pins seed, dataset
// fingerprint, shape, shard count and reorder setting (drift is a hard
// error, never a silent rebuild from stale state), and the restored
// bootstrap assignment is spot-checked by recomputing a sample of items
// exactly (drift falls back to a full rescan that overwrites the stale
// file). Options.SnapshotEvery additionally checkpoints the run state
// every few iterations, so an interrupted long run resumes from its
// last checkpoint instead of iteration 1. Warm and cold runs are
// bit-identical — same assignment, same moves — which the persistence
// equivalence tests pin at the facade level with DisableMmap as the
// plumbed heap-vs-mmap oracle toggle.

// PersistConfig is the index-persistence configuration the driver
// forwards to an IndexPersister accelerator once per Run, before Reset.
type PersistConfig struct {
	// Dir is the index directory (empty disables persistence).
	Dir string
	// DisableMmap selects the heap-copy load path instead of the
	// zero-copy memory mapping (the portable oracle; data is
	// byte-identical either way). Mapping is also skipped on platforms
	// without mmap support.
	DisableMmap bool
	// MemoryBudget, when > 0, caps the resident bytes of a mapped index
	// via the shard residency manager (whole shards demote and promote;
	// a non-resident shard is slow, never absent).
	MemoryBudget int64
	// Workers bounds the parallel per-shard file IO.
	Workers int
}

// IndexPersister is an optional Accelerator capability: accelerators
// whose index supports the versioned on-disk shard format implement it.
// The driver forwards the persistence options once per Run, before
// Reset; Reset then warm-starts from the saved index when the directory
// holds one (stale ⇒ error), or builds cold and saves after the frozen
// build. WarmLoaded reports which path Reset took, so the driver can
// skip the signing and build phases on a warm start.
type IndexPersister interface {
	SetPersist(cfg PersistConfig)
	WarmLoaded() bool
}

// bootstrapAssignFile holds the exact first assignment inside the index
// directory; runStateFile holds the iteration checkpoint.
const (
	bootstrapAssignFile = "bootstrap-assign.bin"
	runStateFile        = "state.snap"
)

// Bootstrap-assignment section IDs (persist container).
const (
	secAssignHeader persist.SectionID = 1 // []int64{n, k}
	secAssignment   persist.SectionID = 2 // []int32 assignment
)

// assignSampleSize is how many items a restored bootstrap assignment is
// spot-checked on (recomputed exactly): the first assignSampleSize
// items plus assignSampleSize evenly spaced ones. Centroid or dataset
// drift that survives a 128-item exact recompute and the index
// manifest's fingerprint check is out of scope.
const assignSampleSize = 64

// rawI32 reinterprets an int32 slice as raw bytes for section writing.
func rawI32(s []int32) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func rawI64(s []int64) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

// bootstrapAssign runs the exact first assignment, restoring it from
// the index directory when a valid saved copy exists and saving it
// there after a fresh scan. Restore is validate-or-rescan: shape must
// match and a sample of items must recompute to the stored values;
// any mismatch discards the file and rescans (the fresh result then
// overwrites it).
func (d *driver) bootstrapAssign(workers int) error {
	if d.opts.IndexDir == "" {
		d.bootstrapScan(workers, true)
		return ctxErr(d.opts.Context)
	}
	path := filepath.Join(d.opts.IndexDir, bootstrapAssignFile)
	if d.restoreBootstrapAssign(path) {
		return nil
	}
	d.bootstrapScan(workers, true)
	if err := ctxErr(d.opts.Context); err != nil {
		return err
	}
	return d.saveBootstrapAssign(path)
}

func (d *driver) saveBootstrapAssign(path string) error {
	sections := []persist.Section{
		{ID: secAssignHeader, ElemSize: 8, Data: rawI64([]int64{int64(d.n), int64(d.k)})},
		{ID: secAssignment, ElemSize: 4, Data: rawI32(d.assign)},
	}
	if err := persist.WriteFile(path, sections); err != nil {
		return fmt.Errorf("core: saving bootstrap assignment: %w", err)
	}
	return nil
}

// restoreBootstrapAssign loads the saved first assignment; false means
// no usable file (missing, corrupt, wrong shape, or failed the sample
// recompute) and the caller must rescan.
func (d *driver) restoreBootstrapAssign(path string) bool {
	f, err := persist.Open(path, false)
	if err != nil {
		return false
	}
	defer f.Close()
	hdr, err := persist.View[int64](f, secAssignHeader)
	if err != nil || len(hdr) != 2 || int(hdr[0]) != d.n || int(hdr[1]) != d.k {
		return false
	}
	saved, err := persist.View[int32](f, secAssignment)
	if err != nil || len(saved) != d.n {
		return false
	}
	for _, c := range saved {
		if c < 0 || int(c) >= d.k {
			return false
		}
	}
	// Spot-check: the bootstrap assignment is a pure function of the
	// space's initial centroids, so recomputing a sample exactly detects
	// a stale file (different space seed, edited data).
	check := func(i int) bool { return d.bestExact(i, -1, nil) == int(saved[i]) }
	for i := 0; i < d.n && i < assignSampleSize; i++ {
		if !check(i) {
			return false
		}
	}
	if stride := d.n / assignSampleSize; stride > 1 {
		for i := 0; i < d.n; i += stride {
			if !check(i) {
				return false
			}
		}
	}
	copy(d.assign, saved)
	return true
}

// runState is the gob-encoded iteration checkpoint of a resumable run.
type runState struct {
	N, K       int
	NextIter   int
	Assign     []int32
	Iterations []runstats.Iteration
}

// saveRunState checkpoints the run after an iteration (atomic: temp +
// rename, 0644).
func (d *driver) saveRunState(path string, nextIter int, iters []runstats.Iteration) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("core: saving run state: %w", err)
	}
	st := runState{N: d.n, K: d.k, NextIter: nextIter, Assign: d.assign, Iterations: iters}
	if err := gob.NewEncoder(tmp).Encode(&st); err == nil {
		err = tmp.Chmod(0o644)
		if err == nil {
			err = tmp.Close()
		}
		if err == nil {
			err = os.Rename(tmp.Name(), path)
		}
		if err == nil {
			return nil
		}
	} else {
		tmp.Close()
	}
	os.Remove(tmp.Name())
	return fmt.Errorf("core: saving run state to %s", path)
}

// restoreRunState loads an iteration checkpoint, overwriting the
// driver's assignment (and its internal-ID mirror) and returning the
// iteration to resume from plus the already-completed iteration stats.
// A missing file returns 0 (start from iteration 1); a checkpoint for a
// different run shape is an error — stale state is rejected, never
// silently reinterpreted.
func (d *driver) restoreRunState(path string) (int, []runstats.Iteration, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil, nil
		}
		return 0, nil, fmt.Errorf("core: reading run state: %w", err)
	}
	defer f.Close()
	var st runState
	if err := gob.NewDecoder(f).Decode(&st); err != nil {
		return 0, nil, fmt.Errorf("core: decoding run state %s: %w", path, err)
	}
	if st.N != d.n || st.K != d.k || len(st.Assign) != d.n || st.NextIter < 1 {
		return 0, nil, fmt.Errorf("core: run state %s was saved for n=%d k=%d, run has n=%d k=%d", path, st.N, st.K, d.n, d.k)
	}
	for _, c := range st.Assign {
		if c < 0 || int(c) >= d.k {
			return 0, nil, fmt.Errorf("core: run state %s holds an out-of-range cluster", path)
		}
	}
	copy(d.assign, st.Assign)
	if d.perm != nil {
		for i, c := range d.assign {
			d.assignInt[d.perm[i]] = c
		}
	}
	return st.NextIter, st.Iterations, nil
}

// validatePersistOptions rejects option combinations index persistence
// cannot serve, before any index work happens.
func validatePersistOptions(opts *Options) error {
	if opts.SnapshotEvery < 0 {
		return fmt.Errorf("core: SnapshotEvery must be ≥ 0, got %d", opts.SnapshotEvery)
	}
	if opts.SnapshotEvery > 0 && opts.IndexDir == "" {
		return fmt.Errorf("core: SnapshotEvery requires IndexDir (the checkpoint lives in the index directory)")
	}
	if opts.IndexDir == "" {
		return nil
	}
	if opts.Accelerator == nil {
		return fmt.Errorf("core: IndexDir requires an accelerator (the exact algorithm builds no index)")
	}
	if _, ok := opts.Accelerator.(IndexPersister); !ok {
		return fmt.Errorf("core: the accelerator does not support index persistence")
	}
	if opts.Bootstrap == BootstrapSeeded {
		return fmt.Errorf("core: IndexDir is incompatible with BootstrapSeeded (the seeded query-before-insert interleave cannot be warm-started)")
	}
	if opts.DisableParallelBootstrap {
		return fmt.Errorf("core: IndexDir requires the parallel bootstrap (drop DisableParallelBootstrap)")
	}
	if _, ok := opts.Accelerator.(BulkIndexer); !ok {
		return fmt.Errorf("core: IndexDir requires a bulk-indexing accelerator")
	}
	return nil
}

// mmapWanted resolves the effective load mode: mapping needs platform
// support and must not be disabled.
func mmapWanted(disable bool) bool { return !disable && persist.MmapSupported }
