package core_test

import (
	"fmt"
	"testing"

	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"

	"lshcluster/internal/core"
)

// countingSeededAccel wraps the MinHash accelerator to observe the
// seeded bootstrap's unindexed queries; embedding forwards every other
// capability (BulkIndexer, Freezer, ReverseQuerier, ShardedIndexer).
type countingSeededAccel struct {
	*core.MinHashAccelerator
	queries  int
	nonEmpty int
}

func (c *countingSeededAccel) CandidatesUnindexed(item int32, assign []int32) []int32 {
	s := c.MinHashAccelerator.CandidatesUnindexed(item, assign)
	c.queries++
	if len(s) > 0 {
		c.nonEmpty++
	}
	return s
}

// TestSeededBootstrapQueriesGrowingIndex pins the repaired seeded
// semantics: non-seed items query the growing index by their own band
// keys, and on a collision-dense workload most of those shortlists are
// non-empty — the exact-scan fallback no longer always runs. Covered
// for both the presigned pipeline and the serial signing oracle (whose
// equivalence the bootstrap tests enforce).
func TestSeededBootstrapQueriesGrowingIndex(t *testing.T) {
	ds := bootstrapWorkload(t)
	for _, serial := range []bool{false, true} {
		t.Run(fmt.Sprintf("serialOracle=%v", serial), func(t *testing.T) {
			space, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
			if err != nil {
				t.Fatal(err)
			}
			inner, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 2}, 7)
			if err != nil {
				t.Fatal(err)
			}
			accel := &countingSeededAccel{MinHashAccelerator: inner}
			_, err = core.Run(space, core.Options{
				Accelerator:              accel,
				Bootstrap:                core.BootstrapSeeded,
				MaxIterations:            3,
				DisableParallelBootstrap: serial,
			})
			if err != nil {
				t.Fatal(err)
			}
			if want := ds.NumItems() - 30; accel.queries != want {
				t.Fatalf("unindexed queries = %d, want one per non-seed item (%d)", accel.queries, want)
			}
			if accel.nonEmpty == 0 {
				t.Fatal("every seeded-bootstrap shortlist was empty: the growing index is not being consulted")
			}
		})
	}
}

// TestImmediateBatchingMatchesPerItem is the equivalence oracle for
// the move-bounded block pass: immediate-update runs with and without
// DisableImmediateBatching must be bit-identical in assignments,
// per-iteration moves, costs, evaluated counts, comparisons and
// shortlist totals — across tie-break modes and the active-set filter.
func TestImmediateBatchingMatchesPerItem(t *testing.T) {
	ds := bootstrapWorkload(t)
	run := func(tb core.TieBreak, noActive, disableBatch bool) *core.Result {
		space, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(space, core.Options{
			Accelerator:              accel,
			Update:                   core.UpdateImmediate,
			TieBreak:                 tb,
			MaxIterations:            15,
			DisableActiveFilter:      noActive,
			DisableImmediateBatching: disableBatch,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	for _, tb := range []core.TieBreak{core.TieBreakPreferCurrent, core.TieBreakLowestIndex} {
		for _, noActive := range []bool{false, true} {
			t.Run(fmt.Sprintf("tb=%d/noActive=%v", tb, noActive), func(t *testing.T) {
				blocked := run(tb, noActive, false)
				oracle := run(tb, noActive, true)
				for i := range oracle.Assign {
					if oracle.Assign[i] != blocked.Assign[i] {
						t.Fatalf("assign[%d]: blocked %d, per-item %d", i, blocked.Assign[i], oracle.Assign[i])
					}
				}
				if blocked.Stats.Converged != oracle.Stats.Converged {
					t.Fatalf("converged: blocked %v, per-item %v",
						blocked.Stats.Converged, oracle.Stats.Converged)
				}
				if len(blocked.Stats.Iterations) != len(oracle.Stats.Iterations) {
					t.Fatalf("iterations: blocked %d, per-item %d",
						len(blocked.Stats.Iterations), len(oracle.Stats.Iterations))
				}
				for i := range oracle.Stats.Iterations {
					a, b := oracle.Stats.Iterations[i], blocked.Stats.Iterations[i]
					if a.Moves != b.Moves || a.Cost != b.Cost {
						t.Fatalf("iteration %d: blocked moves=%d cost=%v, per-item moves=%d cost=%v",
							i+1, b.Moves, b.Cost, a.Moves, a.Cost)
					}
					if a.ActiveItems != b.ActiveItems || a.Comparisons != b.Comparisons ||
						a.CandidatesTotal != b.CandidatesTotal {
						t.Fatalf("iteration %d work: blocked (eval %d, comps %d, cands %d), per-item (eval %d, comps %d, cands %d)",
							i+1, b.ActiveItems, b.Comparisons, b.CandidatesTotal,
							a.ActiveItems, a.Comparisons, a.CandidatesTotal)
					}
				}
			})
		}
	}
}
