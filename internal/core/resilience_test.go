package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"

	"lshcluster/internal/core"
)

// chaosWorkload builds the standard 600-item K-Modes space and MinHash
// accelerator pair the resilience tests run over.
func chaosWorkload(t *testing.T) func() (core.Space, core.Accelerator) {
	t.Helper()
	ds := bootstrapWorkload(t)
	return func() (core.Space, core.Accelerator) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
}

func runChaos(t *testing.T, mk func() (core.Space, core.Accelerator), opts core.Options) (*core.Result, []byte) {
	t.Helper()
	space, accel := mk()
	opts.Accelerator = accel
	res, err := core.Run(space, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res, kmodesFingerprint(t)(space)
}

// TestChaosZeroFaultBitIdentity is the resilient path's oracle: a
// chaos spec injecting nothing routes every cross-shard query through
// the backend/retry/hedging machinery, and the run must be
// bit-identical to the direct path at every shard count — with
// hedging armed and with the Options.DisableHedging baseline.
func TestChaosZeroFaultBitIdentity(t *testing.T) {
	mk := chaosWorkload(t)
	base := core.Options{MaxIterations: 10}
	for _, shards := range []int{1, 2, 4} {
		o := base
		o.Shards = shards
		ref, refPrint := runChaos(t, mk, o)
		variants := []struct {
			label string
			mut   func(*core.Options)
		}{
			{"chaos", func(o *core.Options) { o.ChaosSpec = "seed=3" }},
			{"chaos/no-hedging", func(o *core.Options) {
				o.ChaosSpec = "seed=3"
				o.DisableHedging = true
			}},
			{"chaos/tuned", func(o *core.Options) {
				o.ChaosSpec = "seed=3"
				o.RetryBudget = 1
				o.HedgeAfter = time.Millisecond
			}},
		}
		for _, v := range variants {
			o := base
			o.Shards = shards
			v.mut(&o)
			got, gotPrint := runChaos(t, mk, o)
			for i := range ref.Assign {
				if ref.Assign[i] != got.Assign[i] {
					t.Fatalf("shards=%d/%s: assign[%d] = %d, oracle %d",
						shards, v.label, i, got.Assign[i], ref.Assign[i])
				}
			}
			if string(refPrint) != string(gotPrint) {
				t.Fatalf("shards=%d/%s: final modes differ from the direct path", shards, v.label)
			}
			if len(got.Stats.Iterations) != len(ref.Stats.Iterations) {
				t.Fatalf("shards=%d/%s: %d iterations, oracle %d",
					shards, v.label, len(got.Stats.Iterations), len(ref.Stats.Iterations))
			}
			for i := range ref.Stats.Iterations {
				if ref.Stats.Iterations[i].Moves != got.Stats.Iterations[i].Moves {
					t.Fatalf("shards=%d/%s iteration %d: %d moves, oracle %d", shards, v.label,
						i+1, got.Stats.Iterations[i].Moves, ref.Stats.Iterations[i].Moves)
				}
			}
			if got.Stats.DegradedItems != 0 || got.Stats.SkippedShards != 0 {
				t.Fatalf("shards=%d/%s: zero-fault chaos degraded the run: %d items, %d shards",
					shards, v.label, got.Stats.DegradedItems, got.Stats.SkippedShards)
			}
		}
	}
}

// TestChaosSoakDeterministic is the degraded-mode soak: 5% transient
// errors everywhere plus one permanently dead shard at S=4. The run
// must complete, absorb the transient faults with retries, record the
// dead shard as skipped with a nonzero degraded-item count — and,
// being seeded and serial, replay bit-identically.
func TestChaosSoakDeterministic(t *testing.T) {
	mk := chaosWorkload(t)
	opts := core.Options{
		Shards:         4,
		Workers:        1,
		MaxIterations:  6,
		ChaosSpec:      "seed=1;err=0.05;shard2.dead",
		DisableHedging: true, // hedge launches are timing-dependent; keep the soak a pure replay
	}
	resA, printA := runChaos(t, mk, opts)
	resB, printB := runChaos(t, mk, opts)

	if resA.Stats.SkippedShards < 1 {
		t.Fatalf("SkippedShards = %d, want ≥ 1 (shard 2 is dead)", resA.Stats.SkippedShards)
	}
	if resA.Stats.DegradedItems == 0 {
		t.Fatal("DegradedItems = 0 with a dead shard")
	}
	if resA.Stats.ShardRetries == 0 {
		t.Fatal("ShardRetries = 0 with 5% transient errors")
	}

	for i := range resA.Assign {
		if resA.Assign[i] != resB.Assign[i] {
			t.Fatalf("replay diverged: assign[%d] = %d then %d", i, resA.Assign[i], resB.Assign[i])
		}
	}
	if string(printA) != string(printB) {
		t.Fatal("replay diverged: final modes differ")
	}
	if resA.Stats.DegradedItems != resB.Stats.DegradedItems ||
		resA.Stats.SkippedShards != resB.Stats.SkippedShards ||
		resA.Stats.ShardRetries != resB.Stats.ShardRetries ||
		resA.Stats.ShardTimeouts != resB.Stats.ShardTimeouts {
		t.Fatalf("replay diverged: degraded/skipped/retries/timeouts %d/%d/%d/%d then %d/%d/%d/%d",
			resA.Stats.DegradedItems, resA.Stats.SkippedShards, resA.Stats.ShardRetries, resA.Stats.ShardTimeouts,
			resB.Stats.DegradedItems, resB.Stats.SkippedShards, resB.Stats.ShardRetries, resB.Stats.ShardTimeouts)
	}
}

// TestChaosParallelWorkersComplete is the concurrency smoke (run under
// -race in CI): parallel pass workers sharing one resilience layer
// over a faulty fleet must still complete and account degradation.
func TestChaosParallelWorkersComplete(t *testing.T) {
	mk := chaosWorkload(t)
	res, _ := runChaos(t, mk, core.Options{
		Shards:        4,
		Workers:       4,
		Update:        core.UpdateDeferred,
		MaxIterations: 5,
		ChaosSpec:     "seed=2;err=0.05;shard1.dead",
	})
	if res.Stats.SkippedShards < 1 {
		t.Fatalf("SkippedShards = %d, want ≥ 1", res.Stats.SkippedShards)
	}
	if res.Stats.DegradedItems == 0 {
		t.Fatal("DegradedItems = 0 with a dead shard")
	}
}

// TestChaosCancelledRunReturnsPromptly is the stalled-shard
// cancellation regression at the driver level: every shard stalls
// every call, the run context is cancelled mid-flight, and Run must
// return the context error without waiting any stall out.
func TestChaosCancelledRunReturnsPromptly(t *testing.T) {
	ds := bootstrapWorkload(t)
	s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(100 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = core.Run(s, core.Options{
		Accelerator:   a,
		Shards:        4,
		MaxIterations: 50,
		ChaosSpec:     "seed=1;stall=1:30s",
		Context:       ctx,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed > 10*time.Second {
		t.Fatalf("cancelled run blocked for %v against stalled shards", elapsed)
	}
}

// TestChaosSpecInvalidFailsRun pins spec validation: a bad spec fails
// the run with a diagnostic, before any clustering work starts.
func TestChaosSpecInvalidFailsRun(t *testing.T) {
	ds := bootstrapWorkload(t)
	s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	_, err = core.Run(s, core.Options{
		Accelerator: a, Shards: 2, MaxIterations: 3, ChaosSpec: "bogus=1",
	})
	if err == nil || !strings.Contains(err.Error(), "invalid chaos spec") {
		t.Fatalf("err = %v, want invalid chaos spec", err)
	}
}
