package core

// Active-set assignment filtering (cluster-closure style, after Wang et
// al., "Fast Approximate K-Means via Cluster Closures"): once the
// incremental engine reports which clusters' centroids changed at the
// end of a pass, the next pass only needs to evaluate the items those
// changes can reach. An item's decision depends on exactly two inputs —
// the centroids of its current cluster and shortlist clusters, and the
// shortlist itself (the clusters of the items colliding with it in the
// LSH index). Both inputs are unchanged, and the item therefore
// provably keeps its assignment, unless
//
//   - a colliding item moved (the shortlist's membership, and its
//     dedup enumeration order, may differ), or
//   - a colliding item belongs to a cluster whose centroid changed
//     (a shortlist distance may differ; the item collides with itself,
//     so a change to its *own* cluster is this same condition).
//
// Between passes the driver therefore seeds a reverse-collision view
// (lsh.Reverse via the ReverseQuerier capability) with the pass's moved
// items plus the members of every changed cluster, and the emitted
// colliding items become the next pass's active set; everything else is
// skipped. Skipping never changes results: the active pass is
// bit-identical to the full pass, enforced by equivalence tests against
// the Options.DisableActiveFilter oracle.
//
// Under UpdateImmediate the shortlist view is live, so a move made
// mid-pass additionally activates the mover's colliding items within
// the same pass (later items then observe the move exactly as the full
// pass would). Under UpdateDeferred the view is the pass-start
// snapshot and the between-pass activation alone suffices.

const (
	// queryBlockLen is the number of items gathered per batched
	// shortlist query (BlockQuerier): large enough to amortise the
	// band-major sweep of the frozen index, small enough that the
	// per-block dedup scratch stays cache-resident.
	queryBlockLen = 64

	// ctxPollEvery bounds cancellation latency inside an assignment
	// pass: every worker (and the serial loops) polls Options.Context
	// after this many items.
	ctxPollEvery = 1024

	// activeAllPct caps the filter's bookkeeping: when the prospective
	// active set exceeds this percentage of n, the pass runs full
	// instead — at that density the reverse expansion would cost about
	// as much as the evaluations it saves.
	activeAllPct = 75
)

// BlockQuerier is an optional Querier capability: queriers that can
// compute the shortlists of a whole block of items in one batched index
// sweep (amortising cache misses across the block; see
// lsh.Index.CandidatesBatch) implement it. The driver uses it for
// snapshot-view passes — serial deferred and parallel — where a block's
// shortlists are independent of the moves decided inside the block,
// and for the immediate-update pass, which cuts blocks at move
// boundaries: the moment an item moves, the remaining positions'
// shortlists are discarded and re-gathered against the updated live
// view (see driver.immediateBlockPass).
type BlockQuerier interface {
	Querier
	// CandidatesBlock computes Candidates(items[pos], assign) for every
	// pos — every shortlist against assign as observed at call time —
	// and calls emit once per pos in ascending order. Each shortlist
	// has exactly the contents and enumeration order the per-item
	// Candidates call would produce and is valid only inside its emit
	// invocation. Mutations emit makes to assign must not leak into the
	// same block's other shortlists (the move-boundary pass relies on
	// discarding instead).
	CandidatesBlock(items []int32, assign []int32, emit func(pos int, shortlist []int32))
}

// ReverseView is a reverse-collision view over an accelerator's index
// (lsh.Reverse satisfies it): mark source items, then enumerate every
// indexed item colliding with any source, each underlying bucket
// scanned once. Emit resets the view for reuse; fn returning false
// stops the enumeration early (the reset still happens).
type ReverseView interface {
	AddSource(item int32)
	Emit(fn func(item int32) bool)
}

// ReverseQuerier is an optional Accelerator capability: accelerators
// whose index supports the reverse-collision view implement it. The
// driver calls NewReverse once, after Freeze; a nil result declines the
// capability (e.g. the index could not be frozen).
type ReverseQuerier interface {
	NewReverse() ReverseView
}

// DegradedReverse is an optional ReverseView capability: views routed
// through the fault-tolerant shard backends (Options.ChaosSpec) report
// whether the most recent expansion cycle lost collisions to shard
// failures. An incomplete expansion may omit items whose decision
// inputs changed, so the driver responds by running the next pass full
// — skipping is only sound when the expansion is known complete.
type DegradedReverse interface {
	Degraded() bool
}

// revDegraded reports whether the view's last expansion was degraded
// (false for views without the capability — they never lose sources).
func revDegraded(rv ReverseView) bool {
	dr, ok := rv.(DegradedReverse)
	return ok && dr.Degraded()
}

// activeState is the driver's active-set bookkeeping.
type activeState struct {
	// enabled reports whether filtering is on for this run: an
	// accelerated run with the incremental engine, a ChangeReporter
	// space and a ReverseQuerier accelerator, minus the
	// DisableActiveFilter oracle switch.
	enabled bool
	// allPass forces the current pass to evaluate every item (the
	// first pass after bootstrap, and any pass whose prospective
	// active set crossed activeAllPct).
	allPass bool
	// cur flags the current pass's active items (valid when
	// !allPass). Immediate-mode moves set additional flags mid-pass.
	cur []bool
	// curList is the current pass's active items in ascending order —
	// what deferred serial and parallel passes iterate and partition.
	curList []int32
	// next accumulates the following pass's flags between passes.
	next []bool
	// moved flags the items that changed cluster during the current
	// pass. Parallel workers write disjoint entries concurrently.
	moved []bool
	// changed is k-sized scratch marking the clusters reported by
	// ChangedClusters.
	changed []bool
	// sources is scratch for the between-pass source item list.
	sources []int32
	// degraded poisons the filter until the next full pass: a mid-pass
	// reverse expansion lost collisions to shard failures, so the
	// accumulated activation state cannot be trusted.
	degraded bool
}

// initActive enables active-set filtering when every required
// capability is present. Called once per Run, after the index is frozen
// and the incremental engine is initialised; the first pass always runs
// full (bootstrap recomputed every centroid).
func (d *driver) initActive() {
	if d.opts.DisableActiveFilter || d.opts.Accelerator == nil || d.inc == nil {
		return
	}
	chg, ok := d.space.(ChangeReporter)
	if !ok {
		return
	}
	rq, ok := d.opts.Accelerator.(ReverseQuerier)
	if !ok {
		return
	}
	rev := rq.NewReverse()
	if rev == nil {
		return
	}
	d.chg, d.rev = chg, rev
	d.act = activeState{
		enabled: true,
		allPass: true,
		cur:     make([]bool, d.n),
		next:    make([]bool, d.n),
		moved:   make([]bool, d.n),
		changed: make([]bool, d.k),
	}
}

// filtered reports whether the current pass may skip inactive items.
func (d *driver) filtered() bool { return d.act.enabled && !d.act.allPass }

// noteMove records that item i changed cluster during the current pass.
// In a filtered immediate-mode pass it also activates i's colliding
// items within the pass: their live-view shortlists now differ from
// last pass, so items later in the iteration order must re-evaluate
// (earlier ones are caught by the between-pass expansion of the moved
// set). Deferred passes skip the expansion — their snapshot view cannot
// observe intra-pass moves — which also keeps this callable from
// parallel workers, where only the disjoint moved-flag writes happen.
func (d *driver) noteMove(i int) {
	a := &d.act
	if !a.enabled {
		return
	}
	a.moved[i] = true
	if d.opts.Update == UpdateImmediate && !a.allPass {
		d.rev.AddSource(int32(i))
		d.rev.Emit(func(other int32) bool {
			a.cur[other] = true
			return true
		})
		if revDegraded(d.rev) {
			// Some colliding items may not have been activated; the items
			// already skipped this pass are re-evaluated by the forced
			// full pass that follows.
			a.degraded = true
		}
	}
}

// prepareNextActive computes the next pass's active set. Called after
// FinishPass published the new centroids (so ChangedClusters is
// current) and only when the pass moved at least one item — a moveless
// pass ends the run.
//
// Sources are the items whose state change can invalidate a
// neighbour's decision: the items that moved this pass, plus the
// members — under the post-pass assignment — of every changed cluster.
// The reverse view expands the sources into the set of items colliding
// with any of them; those are exactly the items whose shortlist
// membership or shortlist distances may differ next pass (each source
// collides with itself, so sources are always active too). If either
// the source list or the expansion crosses activeAllPct·n the
// expansion is abandoned and the next pass simply runs full.
func (d *driver) prepareNextActive() {
	a := &d.act
	clear(a.next)
	clear(a.changed)
	for _, c := range d.chg.ChangedClusters() {
		a.changed[c] = true
	}
	limit := d.n * activeAllPct / 100
	full := false
	a.sources = a.sources[:0]
	for i, c := range d.assign {
		if a.moved[i] || a.changed[c] {
			a.sources = append(a.sources, int32(i))
			if len(a.sources) > limit {
				full = true
				break
			}
		}
	}
	clear(a.moved)
	if !full {
		count := 0
		for _, s := range a.sources {
			d.rev.AddSource(s)
		}
		d.rev.Emit(func(item int32) bool {
			if !a.next[item] {
				a.next[item] = true
				count++
			}
			return count <= limit
		})
		// A degraded expansion may have missed colliding items whose
		// shortlists change next pass — skipping is then unsound.
		full = count > limit || revDegraded(d.rev)
	}
	if a.degraded {
		a.degraded = false
		full = true
	}
	if full {
		a.allPass = true
		return
	}
	a.allPass = false
	a.curList = a.curList[:0]
	for i, on := range a.next {
		if on {
			a.curList = append(a.curList, int32(i))
		}
	}
	// The freshly built flags become current; the old current array is
	// recycled as next pass's accumulator (cleared on entry above).
	a.cur, a.next = a.next, a.cur
}
