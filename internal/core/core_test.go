package core

import (
	"context"
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/metrics"
	"lshcluster/internal/runstats"
)

// testWorkload generates a separable synthetic workload plus a K-Modes
// space seeded with one item per true cluster (items 0..k−1 are in
// clusters 0..k−1 by construction of datagen).
func testWorkload(t *testing.T, n, k, m int) (*dataset.Dataset, []int32) {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Items: n, Clusters: k, Attrs: m, Domain: 200,
		MinRuleFrac: 0.7, MaxRuleFrac: 0.9, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]int32, k)
	for c := range seeds {
		seeds[c] = int32(c)
	}
	return ds, seeds
}

func newSpace(t *testing.T, ds *dataset.Dataset, seeds []int32) *kmodes.Space {
	t.Helper()
	s, err := kmodes.NewSpaceFromSeeds(ds, seeds, kmodes.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func purityOf(t *testing.T, ds *dataset.Dataset, assign []int32) float64 {
	t.Helper()
	p, err := metrics.Purity(assign, ds.Labels())
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExactRunRecoversClusters(t *testing.T) {
	ds, seeds := testWorkload(t, 400, 20, 24)
	res, err := Run(newSpace(t, ds, seeds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("exact run did not converge")
	}
	if p := purityOf(t, ds, res.Assign); p < 0.95 {
		t.Fatalf("exact purity = %v, want ≥ 0.95", p)
	}
	// Exact runs consider every cluster for every item.
	for _, it := range res.Stats.Iterations {
		if it.AvgShortlist != float64(20) {
			t.Fatalf("exact avg shortlist = %v, want k=20", it.AvgShortlist)
		}
		if it.Comparisons != int64(400*20) {
			t.Fatalf("exact comparisons = %d, want %d", it.Comparisons, 400*20)
		}
	}
}

func TestAcceleratedMatchesExactQuality(t *testing.T) {
	ds, seeds := testWorkload(t, 400, 20, 24)

	exact, err := Run(newSpace(t, ds, seeds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	accel, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 2}, 7)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := Run(newSpace(t, ds, seeds), Options{Accelerator: accel})
	if err != nil {
		t.Fatal(err)
	}
	pe := purityOf(t, ds, exact.Assign)
	pm := purityOf(t, ds, mh.Assign)
	if pm < pe-0.05 {
		t.Fatalf("accelerated purity %v much below exact %v", pm, pe)
	}
	// The shortlist must be far below k on separable data.
	last := mh.Stats.Iterations[len(mh.Stats.Iterations)-1]
	if last.AvgShortlist >= 10 {
		t.Fatalf("avg shortlist = %v, expected ≪ k=20", last.AvgShortlist)
	}
	if !mh.Stats.Converged {
		t.Fatal("accelerated run did not converge")
	}
}

// allClustersAccel is an Accelerator whose shortlist is always the full
// cluster set: the accelerated driver must then replicate the exact
// algorithm assignment-for-assignment.
type allClustersAccel struct {
	k   int
	buf []int32
}

func (a *allClustersAccel) Reset(k int) error {
	a.k = k
	a.buf = make([]int32, k)
	for i := range a.buf {
		a.buf[i] = int32(i)
	}
	return nil
}
func (a *allClustersAccel) Insert(int32) error { return nil }
func (a *allClustersAccel) NewQuerier() Querier {
	return allQuerier{buf: a.buf}
}

type allQuerier struct{ buf []int32 }

func (q allQuerier) Candidates(int32, []int32) []int32 { return q.buf }

func TestFullShortlistEqualsExact(t *testing.T) {
	ds, seeds := testWorkload(t, 300, 15, 20)
	exact, err := Run(newSpace(t, ds, seeds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	mh, err := Run(newSpace(t, ds, seeds), Options{Accelerator: &allClustersAccel{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(exact.Assign) != len(mh.Assign) {
		t.Fatal("assignment lengths differ")
	}
	for i := range exact.Assign {
		if exact.Assign[i] != mh.Assign[i] {
			t.Fatalf("item %d: exact=%d accelerated-with-full-shortlist=%d",
				i, exact.Assign[i], mh.Assign[i])
		}
	}
	if exact.Stats.NumIterations() != mh.Stats.NumIterations() {
		t.Fatalf("iteration counts differ: %d vs %d",
			exact.Stats.NumIterations(), mh.Stats.NumIterations())
	}
}

func TestShortlistContainsCurrentCluster(t *testing.T) {
	ds, seeds := testWorkload(t, 200, 10, 20)
	accel, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 4, Rows: 4}, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(newSpace(t, ds, seeds), Options{Accelerator: accel, MaxIterations: 3})
	if err != nil {
		t.Fatal(err)
	}
	q := accel.NewQuerier()
	// The bulk bootstrap builds the index locality-reordered, so query
	// views must be indexed in internal-ID space (ReorderMapper).
	view := res.Assign
	if perm, _ := accel.ReorderMap(); perm != nil {
		view = make([]int32, len(res.Assign))
		for i, c := range res.Assign {
			view[perm[i]] = c
		}
	}
	for i := 0; i < ds.NumItems(); i++ {
		cands := q.Candidates(int32(i), view)
		found := false
		for _, c := range cands {
			if c == res.Assign[i] {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("item %d: own cluster %d missing from shortlist %v",
				i, res.Assign[i], cands)
		}
	}
}

func TestDeferredUpdateConverges(t *testing.T) {
	ds, seeds := testWorkload(t, 300, 15, 20)
	accel, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 10, Rows: 2}, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(newSpace(t, ds, seeds), Options{
		Accelerator: accel,
		Update:      UpdateDeferred,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Converged {
		t.Fatal("deferred-update run did not converge")
	}
	if p := purityOf(t, ds, res.Assign); p < 0.9 {
		t.Fatalf("deferred purity = %v", p)
	}
}

func TestParallelDeferredMatchesSequentialDeferred(t *testing.T) {
	ds, seeds := testWorkload(t, 300, 15, 20)
	mk := func(workers int) []int32 {
		accel, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 10, Rows: 2}, 5)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(newSpace(t, ds, seeds), Options{
			Accelerator: accel,
			Update:      UpdateDeferred,
			Workers:     workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Assign
	}
	seq := mk(1)
	par := mk(4)
	for i := range seq {
		if seq[i] != par[i] {
			t.Fatalf("item %d differs between sequential and parallel deferred runs", i)
		}
	}
}

func TestParallelExactMatchesSequentialExact(t *testing.T) {
	ds, seeds := testWorkload(t, 300, 15, 20)
	seq, err := Run(newSpace(t, ds, seeds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Run(newSpace(t, ds, seeds), Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range seq.Assign {
		if seq.Assign[i] != par.Assign[i] {
			t.Fatalf("item %d differs between sequential and parallel exact runs", i)
		}
	}
}

func TestWorkersRequireDeferred(t *testing.T) {
	ds, seeds := testWorkload(t, 100, 5, 20)
	accel, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 5, Rows: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(newSpace(t, ds, seeds), Options{
		Accelerator: accel,
		Update:      UpdateImmediate,
		Workers:     4,
	})
	if err == nil {
		t.Fatal("expected error: immediate updates cannot be parallelised")
	}
}

func TestBootstrapSeeded(t *testing.T) {
	ds, seeds := testWorkload(t, 300, 15, 20)
	accel, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 20, Rows: 2}, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(newSpace(t, ds, seeds), Options{
		Accelerator: accel,
		Bootstrap:   BootstrapSeeded,
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := purityOf(t, ds, res.Assign); p < 0.85 {
		t.Fatalf("seeded-bootstrap purity = %v", p)
	}
}

// hideSeeds wraps a space, masking the Seeder capability.
type hideSeeds struct{ *kmodes.Space }

func (h hideSeeds) Seeds() {} // shadows kmodes.Space.Seeds with a non-conforming method

func TestBootstrapSeededRequiresSeeds(t *testing.T) {
	ds, seeds := testWorkload(t, 100, 5, 20)
	accel, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 5, Rows: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(hideSeeds{newSpace(t, ds, seeds)}, Options{
		Accelerator: accel,
		Bootstrap:   BootstrapSeeded,
	})
	if err == nil {
		t.Fatal("expected error without seed items")
	}
	// Supplying SeedItems explicitly must fix it.
	accel2, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 5, Rows: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(hideSeeds{newSpace(t, ds, seeds)}, Options{
		Accelerator: accel2,
		Bootstrap:   BootstrapSeeded,
		SeedItems:   seeds,
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMaxIterationsCap(t *testing.T) {
	ds, seeds := testWorkload(t, 300, 15, 20)
	res, err := Run(newSpace(t, ds, seeds), Options{MaxIterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.NumIterations() > 1 {
		t.Fatalf("ran %d iterations with cap 1", res.Stats.NumIterations())
	}
}

func TestOnIterationCallback(t *testing.T) {
	ds, seeds := testWorkload(t, 200, 10, 20)
	var seen []runstats.Iteration
	res, err := Run(newSpace(t, ds, seeds), Options{
		OnIteration: func(it runstats.Iteration) { seen = append(seen, it) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != res.Stats.NumIterations() {
		t.Fatalf("callback saw %d iterations, run recorded %d",
			len(seen), res.Stats.NumIterations())
	}
	for i, it := range seen {
		if it.Index != i+1 {
			t.Fatalf("iteration indices out of order: %v", seen)
		}
	}
}

func TestSkipCost(t *testing.T) {
	ds, seeds := testWorkload(t, 100, 5, 20)
	res, err := Run(newSpace(t, ds, seeds), Options{SkipCost: true, MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Stats.Iterations {
		if it.Cost == it.Cost { // NaN check
			t.Fatalf("cost tracked despite SkipCost: %v", it.Cost)
		}
	}
	res2, err := Run(newSpace(t, ds, seeds), Options{MaxIterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res2.Stats.Iterations {
		if it.Cost != it.Cost {
			t.Fatal("cost missing without SkipCost")
		}
	}
}

func TestCostMonotoneNonIncreasing(t *testing.T) {
	ds, seeds := testWorkload(t, 400, 20, 24)
	res, err := Run(newSpace(t, ds, seeds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Stats.Iterations); i++ {
		prev, cur := res.Stats.Iterations[i-1].Cost, res.Stats.Iterations[i].Cost
		if cur > prev {
			t.Fatalf("exact K-Modes cost rose from %v to %v at iteration %d",
				prev, cur, i+1)
		}
	}
}

func TestContextCancellation(t *testing.T) {
	ds, seeds := testWorkload(t, 200, 10, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(newSpace(t, ds, seeds), Options{Context: ctx}); err == nil {
		t.Fatal("expected cancellation error")
	}
	// Cancel mid-run via the iteration callback: unless the run happens
	// to converge on its very first pass, the next pass must abort.
	ctx2, cancel2 := context.WithCancel(context.Background())
	calls := 0
	_, err := Run(newSpace(t, ds, seeds), Options{
		Context:     ctx2,
		OnIteration: func(runstats.Iteration) { calls++; cancel2() },
	})
	if err == nil && calls > 1 {
		t.Fatal("expected mid-run cancellation error")
	}
	// A background context is a no-op.
	if _, err := Run(newSpace(t, ds, seeds), Options{Context: context.Background()}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptySpaceRejected(t *testing.T) {
	if _, err := Run(emptySpace{}, Options{}); err == nil {
		t.Fatal("expected error for empty space")
	}
}

type emptySpace struct{}

func (emptySpace) NumItems() int                                  { return 0 }
func (emptySpace) NumClusters() int                               { return 0 }
func (emptySpace) Dissimilarity(int, int) float64                 { return 0 }
func (emptySpace) BoundedDissimilarity(int, int, float64) float64 { return 0 }
func (emptySpace) RecomputeCentroids([]int32)                     {}
func (emptySpace) Cost([]int32) float64                           { return 0 }

func TestEarlyAbandonSameResult(t *testing.T) {
	ds, seeds := testWorkload(t, 300, 15, 20)
	plain, err := Run(newSpace(t, ds, seeds), Options{})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(newSpace(t, ds, seeds), Options{EarlyAbandon: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Assign {
		if plain.Assign[i] != fast.Assign[i] {
			t.Fatalf("early abandon changed assignment of item %d", i)
		}
	}
}

func TestMinHashAcceleratorValidation(t *testing.T) {
	ds, _ := testWorkload(t, 50, 5, 20)
	if _, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 0, Rows: 1}, 1); err == nil {
		t.Fatal("expected params validation error")
	}
	a, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 2, Rows: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(0); err == nil {
		t.Fatal("expected error inserting before Reset")
	}
	if err := a.Reset(0); err == nil {
		t.Fatal("expected error for zero clusters")
	}
}

func TestRunStatsAccounting(t *testing.T) {
	ds, seeds := testWorkload(t, 200, 10, 20)
	accel, err := NewMinHashAccelerator(ds, lsh.Params{Bands: 10, Rows: 2}, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(newSpace(t, ds, seeds), Options{Accelerator: accel})
	if err != nil {
		t.Fatal(err)
	}
	st := &res.Stats
	if st.Bootstrap <= 0 {
		t.Fatal("bootstrap duration not recorded")
	}
	if st.Total() < st.Bootstrap {
		t.Fatal("total smaller than bootstrap")
	}
	last := st.Iterations[len(st.Iterations)-1]
	if last.Moves != 0 {
		t.Fatal("converged run must end with zero moves")
	}
	for _, it := range st.Iterations {
		if it.AvgShortlist <= 0 {
			t.Fatalf("avg shortlist %v not positive", it.AvgShortlist)
		}
		if it.Comparisons <= 0 {
			t.Fatal("comparisons not counted")
		}
	}
}
