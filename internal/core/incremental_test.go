package core_test

import (
	"fmt"
	"testing"

	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/kmeans"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/simhash"

	"lshcluster/internal/core"
)

// assertRunsEqual runs the same configuration twice — once with the
// incremental engine, once with DisableIncremental (the batch oracle) —
// and asserts bit-identical outcomes: assignments, per-iteration moves
// and costs, and convergence.
func assertRunsEqual(t *testing.T, mkSpace func() core.Space, mkAccel func(core.Space) core.Accelerator, opts core.Options) {
	t.Helper()
	run := func(disable bool) *core.Result {
		o := opts
		o.DisableIncremental = disable
		space := mkSpace()
		if mkAccel != nil {
			o.Accelerator = mkAccel(space)
		}
		res, err := core.Run(space, o)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	inc, batch := run(false), run(true)
	if len(inc.Assign) != len(batch.Assign) {
		t.Fatalf("assign lengths differ: %d vs %d", len(inc.Assign), len(batch.Assign))
	}
	for i := range inc.Assign {
		if inc.Assign[i] != batch.Assign[i] {
			t.Fatalf("assign[%d]: incremental %d, batch %d", i, inc.Assign[i], batch.Assign[i])
		}
	}
	if inc.Stats.Converged != batch.Stats.Converged {
		t.Fatalf("converged: incremental %v, batch %v", inc.Stats.Converged, batch.Stats.Converged)
	}
	if len(inc.Stats.Iterations) != len(batch.Stats.Iterations) {
		t.Fatalf("iterations: incremental %d, batch %d",
			len(inc.Stats.Iterations), len(batch.Stats.Iterations))
	}
	for i := range inc.Stats.Iterations {
		a, b := inc.Stats.Iterations[i], batch.Stats.Iterations[i]
		if a.Moves != b.Moves {
			t.Fatalf("iteration %d moves: incremental %d, batch %d", i+1, a.Moves, b.Moves)
		}
		if !opts.SkipCost && a.Cost != b.Cost {
			// Bit-identical, not approximately equal: the incremental
			// objective must match the full Cost scan exactly.
			t.Fatalf("iteration %d cost: incremental %v, batch %v", i+1, a.Cost, b.Cost)
		}
	}
}

// kmodesMatrixWorkload is sized so that random seeding puts several
// seeds in the same ground-truth cluster: runs take multiple passes,
// clusters drain and refill, and late passes have sparse moves.
func kmodesMatrixWorkload(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := datagen.Generate(datagen.Config{
		Items: 600, Clusters: 30, Attrs: 16, Domain: 200,
		MinRuleFrac: 0.7, MaxRuleFrac: 0.9, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestIncrementalMatchesBatchKModes(t *testing.T) {
	ds := kmodesMatrixWorkload(t)
	mkSpace := func() core.Space {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mkAccel := func(core.Space) core.Accelerator {
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for _, accel := range []bool{false, true} {
		for _, tb := range []core.TieBreak{core.TieBreakPreferCurrent, core.TieBreakLowestIndex} {
			for _, upd := range []core.UpdateMode{core.UpdateImmediate, core.UpdateDeferred} {
				for _, workers := range []int{1, 4} {
					if workers > 1 && accel && upd != core.UpdateDeferred {
						continue // rejected by core.Run
					}
					if !accel && upd == core.UpdateDeferred {
						continue // update mode is accelerated-only
					}
					name := fmt.Sprintf("accel=%v/tb=%d/upd=%d/w=%d", accel, tb, upd, workers)
					t.Run(name, func(t *testing.T) {
						ma := mkAccel
						if !accel {
							ma = nil
						}
						assertRunsEqual(t, mkSpace, ma, core.Options{
							TieBreak: tb, Update: upd, Workers: workers,
							MaxIterations: 15,
						})
					})
				}
			}
		}
	}
}

func TestIncrementalMatchesBatchKMeans(t *testing.T) {
	pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 800, Clusters: 40, Dim: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mkSpace := func() core.Space {
		s, err := kmeans.NewSpace(pts, 8, kmeans.Config{K: 40, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	mkAccel := func(sp core.Space) core.Accelerator {
		a, err := simhash.NewAccelerator(sp.(*kmeans.Space), lsh.Params{Bands: 8, Rows: 8}, 21)
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	for _, accel := range []bool{false, true} {
		for _, upd := range []core.UpdateMode{core.UpdateImmediate, core.UpdateDeferred} {
			for _, workers := range []int{1, 4} {
				if workers > 1 && accel && upd != core.UpdateDeferred {
					continue
				}
				if !accel && upd == core.UpdateDeferred {
					continue
				}
				name := fmt.Sprintf("accel=%v/upd=%d/w=%d", accel, upd, workers)
				t.Run(name, func(t *testing.T) {
					ma := mkAccel
					if !accel {
						ma = nil
					}
					assertRunsEqual(t, mkSpace, ma, core.Options{
						Update: upd, Workers: workers, MaxIterations: 15,
					})
				})
			}
		}
	}
}

// TestIncrementalMatchesBatchReseedPolicy drives both empty-cluster
// reseed policies: the incremental path must replay the batch path's
// random draws exactly (one draw per empty cluster per pass, in cluster
// order), or assignments diverge as soon as a cluster empties.
func TestIncrementalMatchesBatchReseedPolicy(t *testing.T) {
	t.Run("kmodes", func(t *testing.T) {
		ds := kmodesMatrixWorkload(t)
		// k well above the true cluster count: many clusters drain.
		mkSpace := func() core.Space {
			s, err := kmodes.NewSpace(ds, kmodes.Config{
				K: 90, Seed: 5, EmptyCluster: kmodes.ReseedRandomItem,
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		assertRunsEqual(t, mkSpace, nil, core.Options{MaxIterations: 12})
	})
	t.Run("kmeans", func(t *testing.T) {
		pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
			Points: 400, Clusters: 10, Dim: 6, Seed: 4,
		})
		if err != nil {
			t.Fatal(err)
		}
		mkSpace := func() core.Space {
			s, err := kmeans.NewSpace(pts, 6, kmeans.Config{
				K: 60, Seed: 8, EmptyCluster: kmeans.ReseedRandomPoint,
			})
			if err != nil {
				t.Fatal(err)
			}
			return s
		}
		assertRunsEqual(t, mkSpace, nil, core.Options{MaxIterations: 12})
	})
}

// checkedKModes wraps a kmodes space and, after every FinishPass,
// verifies the published modes and incremental cost against a
// from-scratch RecomputeCentroids/Cost on an oracle space fed the same
// assignment history — the per-pass exactness property the driver
// relies on.
type checkedKModes struct {
	*kmodes.Space
	oracle *kmodes.Space
	t      *testing.T
	passes *int
}

func (cs *checkedKModes) BeginIncremental(assign []int32, trackCost bool) {
	cs.Space.BeginIncremental(assign, trackCost)
	cs.oracle.RecomputeCentroids(assign)
	cs.verify(assign)
}

func (cs *checkedKModes) FinishPass(assign []int32) {
	cs.Space.FinishPass(assign)
	cs.oracle.RecomputeCentroids(assign)
	cs.verify(assign)
	*cs.passes++
}

func (cs *checkedKModes) verify(assign []int32) {
	cs.t.Helper()
	for c := 0; c < cs.NumClusters(); c++ {
		got, want := cs.Mode(c), cs.oracle.Mode(c)
		for a := range got {
			if got[a] != want[a] {
				cs.t.Fatalf("cluster %d attr %d: incremental mode %d, recompute %d",
					c, a, got[a], want[a])
			}
		}
	}
	if got, want := cs.IncrementalCost(assign), cs.oracle.Cost(assign); got != want {
		cs.t.Fatalf("incremental cost %v, from-scratch cost %v", got, want)
	}
}

func TestIncrementalInvariantEveryPassKModes(t *testing.T) {
	ds := kmodesMatrixWorkload(t)
	mk := func() (*kmodes.Space, *kmodes.Space) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		o, err := kmodes.NewSpaceFromSeeds(ds, s.Seeds(), kmodes.Config{})
		if err != nil {
			t.Fatal(err)
		}
		return s, o
	}
	passes := 0
	space, oracle := mk()
	accel, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Run(&checkedKModes{Space: space, oracle: oracle, t: t, passes: &passes},
		core.Options{Accelerator: accel, MaxIterations: 15}); err != nil {
		t.Fatal(err)
	}
	if passes < 2 {
		t.Fatalf("only %d passes verified; workload too easy for the property test", passes)
	}
}

// checkedKMeans is the numeric counterpart: sums/centroids and cost
// must match a from-scratch recompute bit-for-bit after every pass.
type checkedKMeans struct {
	*kmeans.Space
	oracle *kmeans.Space
	t      *testing.T
	passes *int
}

func (cs *checkedKMeans) BeginIncremental(assign []int32, trackCost bool) {
	cs.Space.BeginIncremental(assign, trackCost)
	cs.oracle.RecomputeCentroids(assign)
	cs.verify(assign)
}

func (cs *checkedKMeans) FinishPass(assign []int32) {
	cs.Space.FinishPass(assign)
	cs.oracle.RecomputeCentroids(assign)
	cs.verify(assign)
	*cs.passes++
}

func (cs *checkedKMeans) verify(assign []int32) {
	cs.t.Helper()
	for c := 0; c < cs.NumClusters(); c++ {
		got, want := cs.Centroid(c), cs.oracle.Centroid(c)
		for j := range got {
			if got[j] != want[j] {
				cs.t.Fatalf("cluster %d dim %d: incremental centroid %v, recompute %v",
					c, j, got[j], want[j])
			}
		}
	}
	if got, want := cs.IncrementalCost(assign), cs.oracle.Cost(assign); got != want {
		cs.t.Fatalf("incremental cost %v, from-scratch cost %v", got, want)
	}
}

func TestIncrementalInvariantEveryPassKMeans(t *testing.T) {
	pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 800, Clusters: 40, Dim: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	space, err := kmeans.NewSpace(pts, 8, kmeans.Config{K: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	oracle, err := kmeans.NewSpaceFromSeeds(pts, 8, space.Seeds(), kmeans.Config{})
	if err != nil {
		t.Fatal(err)
	}
	passes := 0
	if _, err := core.Run(&checkedKMeans{Space: space, oracle: oracle, t: t, passes: &passes},
		core.Options{MaxIterations: 15}); err != nil {
		t.Fatal(err)
	}
	if passes < 2 {
		t.Fatalf("only %d passes verified; workload too easy for the property test", passes)
	}
}

// TestIncrementalSkipCost exercises the trackCost=false path: the
// engine must still publish exact centroids (assignments identical to
// the batch path) without objective bookkeeping.
func TestIncrementalSkipCost(t *testing.T) {
	ds := kmodesMatrixWorkload(t)
	mkSpace := func() core.Space {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	assertRunsEqual(t, mkSpace, nil, core.Options{SkipCost: true, MaxIterations: 15})
}
