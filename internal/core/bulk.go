package core

// BulkIndexer is an optional Accelerator capability: accelerators that
// can split index construction into a parallel signing pass and a
// parallel (or presigned-serial) filing pass implement it, and the
// driver then runs the bootstrap as an explicit sign → build → assign
// pipeline instead of the serial per-item Insert loop (see
// driver.bootstrap). Results are bit-identical either way — signing is
// deterministic per item and filing order is preserved — with the
// serial loop retained as the equivalence oracle behind
// Options.DisableParallelBootstrap.
//
// Call sequences the driver uses:
//
//   - Full-scan bootstrap: Reset, SignAll, BuildFrozen, then the
//     (parallel) exact first assignment. The index comes up already
//     frozen; the driver's later Freezer call is an idempotent no-op.
//   - Seeded bootstrap: Reset, SignAll, then the paper-faithful serial
//     query/insert interleave with each Insert replaced by
//     InsertPresigned — identical semantics (signing, not filing or
//     querying, is the expensive part), with the signing hoisted out
//     and parallelised. The index stays map-based until the driver's
//     Freezer call.
type BulkIndexer interface {
	// SignAll computes and retains the band keys of every item,
	// sharding the signing across workers goroutines (values < 2 sign
	// serially). Keys are identical to what per-item Insert signing
	// would produce, regardless of workers. Called once per Run, after
	// Reset and before BuildFrozen or any InsertPresigned. stop, when
	// non-nil, is polled periodically by the signing workers; once it
	// returns true they abandon the pass (the driver maps it to
	// context cancellation and discards the partial keys by aborting
	// the bootstrap).
	SignAll(workers int, stop func() bool) error
	// BuildFrozen constructs the accelerator's index directly in its
	// frozen layout from the keys SignAll computed, parallel across
	// workers, with every item inserted — equivalent to inserting items
	// 0…n−1 in ascending order and freezing.
	BuildFrozen(workers int) error
	// InsertPresigned files one item under the band keys SignAll
	// computed, on the streaming (map-based) builder — the seeded
	// bootstrap's interleaved insert with the signing already done.
	InsertPresigned(item int32) error
}
