package core

// IncrementalSpace is an optional Space capability: spaces that can fold
// individual item moves into their centroid state implement it so that
// the driver's per-iteration work after bootstrap is proportional to
// what actually changed — O(moves·m) plus a light O(n) membership scan —
// instead of the full O(n·m) RecomputeCentroids and O(n·m) Cost passes.
//
// The contract mirrors Huang's frequency-based mode update (paper
// §III-A1) generalised to any centroid space, and every method is
// required to be *exact*: after any sequence of
//
//	BeginIncremental(a0); {ApplyMove…; FinishPass(a)}*
//
// the visible centroids (and IncrementalCost) must be bit-identical to
// what RecomputeCentroids (and Cost) would produce on the same
// assignments. The driver relies on this equivalence; it is what lets
// accelerated runs keep the batch path as a correctness oracle (see
// Options.DisableIncremental and the equivalence tests).
//
// Call sequence, enforced by the driver:
//
//  1. BeginIncremental(assign, trackCost) — once, with the complete
//     bootstrap assignment. Replaces the first RecomputeCentroids call:
//     it must leave the centroids exactly as RecomputeCentroids(assign)
//     would (including any empty-cluster policy side effects).
//  2. ApplyMove(item, from, to) — once per item that moved during the
//     assignment pass, in ascending item order, after the assignment
//     slice was updated. Centroids visible through Dissimilarity must
//     NOT change until FinishPass (Lloyd semantics: centroids are
//     frozen during a pass). Never called concurrently.
//  3. FinishPass(assign) — once per pass, after all moves. Publishes
//     the new centroids; equivalent to RecomputeCentroids(assign).
//  4. IncrementalCost(assign) — after FinishPass, when the driver needs
//     the objective; equivalent to Cost(assign). Only meaningful when
//     BeginIncremental was called with trackCost=true (spaces may fall
//     back to a full Cost scan otherwise).
type IncrementalSpace interface {
	Space
	// BeginIncremental initialises incremental state from a complete
	// assignment (no entry may be negative) and publishes the resulting
	// centroids. trackCost=false lets the space skip per-item objective
	// bookkeeping when the driver will never ask for the cost
	// (Options.SkipCost).
	BeginIncremental(assign []int32, trackCost bool)
	// ApplyMove folds one item's move from cluster from to cluster to
	// into the incremental state without touching visible centroids.
	ApplyMove(item int, from, to int32)
	// FinishPass refreshes the centroids of every cluster affected
	// since the previous FinishPass (or BeginIncremental), exactly as
	// RecomputeCentroids(assign) would.
	FinishPass(assign []int32)
	// IncrementalCost returns the clustering objective under assign,
	// exactly as Cost(assign) would.
	IncrementalCost(assign []int32) float64
}

// ChangeReporter is an optional Space capability, expected alongside
// IncrementalSpace: spaces that know which clusters' visible centroids
// changed at the most recent publish (BeginIncremental or FinishPass)
// expose them so the driver can restrict the next assignment pass to
// the items those changes can reach (the active-set filter; see
// active.go). The report may be conservative — naming a cluster whose
// centroid is in fact unchanged only costs spurious re-evaluation —
// but must never omit a cluster whose centroid changed, or skipped
// items could silently hold stale assignments.
type ChangeReporter interface {
	// ChangedClusters returns the clusters whose visible centroid
	// (possibly conservatively) changed at the last publish. Valid
	// until the next publish; the slice may be reused.
	ChangedClusters() []int32
}

// Freezer is an optional Accelerator capability: accelerators whose
// index supports compaction into an immutable, cache-friendly layout
// (lsh.Index.Freeze) implement it. The driver invokes Freeze once, after
// bootstrap has inserted every item and before the iterative passes, so
// the recurring Candidates lookups run on the frozen representation.
// Freeze must be idempotent and must not change query results.
type Freezer interface {
	Freeze()
}

// moveRec is one recorded item move, applied to an IncrementalSpace
// after a parallel pass joins (per-worker batching keeps ApplyMove
// single-threaded without serialising the pass itself).
type moveRec struct {
	item     int32
	from, to int32
}
