package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"lshcluster/internal/kmeans"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/simhash"

	"lshcluster/internal/core"
)

// assertReorderEqual runs the same configuration twice — once with the
// locality-reordered index build (the default) and once with
// DisableReorder (the original-order oracle) — and asserts
// bit-identical outcomes in original-ID space: assignments,
// per-iteration moves, costs and shortlist totals, convergence, and
// the final centroids.
func assertReorderEqual(t *testing.T, mk func() (core.Space, core.Accelerator), fingerprint func(core.Space) []byte, opts core.Options) (reordered *core.Result) {
	t.Helper()
	run := func(disable bool) (*core.Result, []byte) {
		o := opts
		o.DisableReorder = disable
		space, accel := mk()
		o.Accelerator = accel
		res, err := core.Run(space, o)
		if err != nil {
			t.Fatal(err)
		}
		return res, fingerprint(space)
	}
	ord, ordCentroids := run(false)
	ref, refCentroids := run(true)
	if ref.Stats.ReorderTime != 0 {
		t.Fatalf("oracle recorded reorder time %v", ref.Stats.ReorderTime)
	}
	for i := range ref.Assign {
		if ref.Assign[i] != ord.Assign[i] {
			t.Fatalf("assign[%d]: reordered %d, oracle %d", i, ord.Assign[i], ref.Assign[i])
		}
	}
	if ord.Stats.Converged != ref.Stats.Converged {
		t.Fatalf("converged: reordered %v, oracle %v", ord.Stats.Converged, ref.Stats.Converged)
	}
	if len(ord.Stats.Iterations) != len(ref.Stats.Iterations) {
		t.Fatalf("iterations: reordered %d, oracle %d",
			len(ord.Stats.Iterations), len(ref.Stats.Iterations))
	}
	for i := range ref.Stats.Iterations {
		a, b := ref.Stats.Iterations[i], ord.Stats.Iterations[i]
		if a.Moves != b.Moves {
			t.Fatalf("iteration %d moves: reordered %d, oracle %d", i+1, b.Moves, a.Moves)
		}
		if a.Cost != b.Cost {
			t.Fatalf("iteration %d cost: reordered %v, oracle %v", i+1, b.Cost, a.Cost)
		}
		if a.CandidatesTotal != b.CandidatesTotal {
			t.Fatalf("iteration %d candidates: reordered %d, oracle %d",
				i+1, b.CandidatesTotal, a.CandidatesTotal)
		}
		if a.ActiveItems != b.ActiveItems {
			t.Fatalf("iteration %d active items: reordered %d, oracle %d",
				i+1, b.ActiveItems, a.ActiveItems)
		}
	}
	if !bytes.Equal(refCentroids, ordCentroids) {
		t.Fatal("final centroids differ between reordered and original-order builds")
	}
	return ord
}

// TestReorderInvarianceKModes is the headline reorder equivalence
// matrix for MH-K-Modes: full runs on the locality-reordered index
// must be bit-identical (in original-ID space) to the DisableReorder
// oracle across Shards ∈ {1, 2, 4} and workers ∈ {1, 4}.
func TestReorderInvarianceKModes(t *testing.T) {
	ds := bootstrapWorkload(t)
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			upd := core.UpdateImmediate
			if workers > 1 {
				upd = core.UpdateDeferred
			}
			t.Run(fmt.Sprintf("shards=%d/w=%d", shards, workers), func(t *testing.T) {
				res := assertReorderEqual(t, mk, kmodesFingerprint(t), core.Options{
					Update: upd, Workers: workers, Shards: shards,
					MaxIterations: 15,
				})
				if res.Stats.ReorderTime <= 0 {
					t.Fatal("reordered run recorded no reorder time")
				}
				if shards > 1 && res.Stats.ShardLocalCands <= 0 {
					t.Fatal("reordered sharded run recorded no shard-local candidates")
				}
			})
		}
	}
}

// TestReorderInvarianceKMeans covers the SimHash/K-Means instantiation
// of the same matrix (the reorder stage lives in the shared sharded
// index base, so both accelerators must honour the oracle).
func TestReorderInvarianceKMeans(t *testing.T) {
	pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 800, Clusters: 40, Dim: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmeans.NewSpace(pts, 8, kmeans.Config{K: 40, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		a, err := simhash.NewAccelerator(s, lsh.Params{Bands: 8, Rows: 8}, 21)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	fingerprint := func(s core.Space) []byte {
		var buf bytes.Buffer
		sp := s.(*kmeans.Space)
		for c := 0; c < sp.NumClusters(); c++ {
			fmt.Fprintf(&buf, "%x;", sp.Centroid(c))
		}
		return buf.Bytes()
	}
	for _, shards := range []int{1, 2, 4} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("shards=%d/w=%d", shards, workers), func(t *testing.T) {
				assertReorderEqual(t, mk, fingerprint, core.Options{
					Update: core.UpdateDeferred, Workers: workers, Shards: shards,
					MaxIterations: 15,
				})
			})
		}
	}
}

// TestReorderOracleCrosses pins the reorder oracle against the other
// hot-path toggles it interacts with: the active filter off (full
// passes query every item), immediate batching off (per-item live
// queries), and the key-probe fan-out (foreign slots off). Every
// combination must still match the DisableReorder oracle bit for bit.
func TestReorderOracleCrosses(t *testing.T) {
	ds := bootstrapWorkload(t)
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	muts := map[string]func(*core.Options){
		"no-active-filter":      func(o *core.Options) { o.DisableActiveFilter = true },
		"no-immediate-batching": func(o *core.Options) { o.DisableImmediateBatching = true },
		"no-foreign-slots":      func(o *core.Options) { o.DisableForeignSlots = true },
	}
	for name, mut := range muts {
		t.Run(name, func(t *testing.T) {
			opts := core.Options{Shards: 4, MaxIterations: 12}
			mut(&opts)
			assertReorderEqual(t, mk, kmodesFingerprint(t), opts)
		})
	}
}

// TestReorderDisabledPaths checks the layouts that must never reorder:
// the chaos-spec backend fan-out (replay merges assume identity order)
// and the seeded bootstrap (map-built index). Both must run clean and
// record zero reorder time.
func TestReorderDisabledPaths(t *testing.T) {
	ds := bootstrapWorkload(t)
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	cases := map[string]core.Options{
		"chaos-spec": {Shards: 4, MaxIterations: 8, ChaosSpec: "seed=1"},
		"seeded":     {Shards: 4, MaxIterations: 8, Bootstrap: core.BootstrapSeeded},
	}
	for name, opts := range cases {
		t.Run(name, func(t *testing.T) {
			space, accel := mk()
			opts.Accelerator = accel
			res, err := core.Run(space, opts)
			if err != nil {
				t.Fatal(err)
			}
			if res.Stats.ReorderTime != 0 {
				t.Fatalf("%s run recorded reorder time %v", name, res.Stats.ReorderTime)
			}
			if perm, inv := accel.(core.ReorderMapper).ReorderMap(); perm != nil || inv != nil {
				t.Fatalf("%s run built a reordered index", name)
			}
		})
	}
}
