package core

import (
	"fmt"

	"lshcluster/internal/dataset"
	"lshcluster/internal/lsh"
)

// MinHashAccelerator implements Accelerator with the MinHash banding
// index of internal/lsh over a categorical dataset — the instantiation
// the paper evaluates as MH-K-Modes. Items are indexed by the set of
// their *present* attribute values (Algorithm 2 lines 1–5); queries map
// colliding items to their current clusters and deduplicate, yielding the
// candidate-cluster shortlist (lines 10–12).
type MinHashAccelerator struct {
	ds     *dataset.Dataset
	params lsh.Params
	seed   uint64
	index  *lsh.Index
	k      int
	setBuf []uint64
}

// NewMinHashAccelerator creates an accelerator for ds with the given
// banding parameters. seed makes the hash family deterministic.
func NewMinHashAccelerator(ds *dataset.Dataset, params lsh.Params, seed uint64) (*MinHashAccelerator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &MinHashAccelerator{ds: ds, params: params, seed: seed}, nil
}

// Params returns the banding configuration.
func (a *MinHashAccelerator) Params() lsh.Params { return a.params }

// Index exposes the underlying LSH index (nil before Reset), e.g. for
// bucket-occupancy diagnostics.
func (a *MinHashAccelerator) Index() *lsh.Index { return a.index }

// Reset discards any previous index and prepares a fresh one.
func (a *MinHashAccelerator) Reset(numClusters int) error {
	if numClusters < 1 {
		return fmt.Errorf("core: numClusters must be ≥ 1, got %d", numClusters)
	}
	ix, err := lsh.NewIndex(a.params, a.seed, a.ds.NumItems())
	if err != nil {
		return err
	}
	a.index = ix
	a.k = numClusters
	return nil
}

// Insert MinHashes item and files it under its band buckets.
func (a *MinHashAccelerator) Insert(item int32) error {
	if a.index == nil {
		return fmt.Errorf("core: Insert before Reset")
	}
	a.setBuf = a.ds.PresentValues(int(item), a.setBuf[:0])
	return a.index.Insert(item, a.setBuf)
}

// NewQuerier returns a query handle with its own deduplication scratch.
func (a *MinHashAccelerator) NewQuerier() Querier {
	return NewIndexQuerier(a.index, a.k)
}

// IndexQuerier adapts a populated lsh.Index into a Querier: colliding
// items are mapped through the live assignment and deduplicated into a
// cluster shortlist with an epoch-stamp array (no per-query clearing).
// Any LSH family that feeds an lsh.Index — MinHash here, SimHash in the
// numeric extension — gets shortlist semantics from this adapter.
type IndexQuerier struct {
	index  *lsh.Index
	stamps []uint32
	epoch  uint32
	buf    []int32
}

// NewIndexQuerier creates a querier over index for a clustering with
// numClusters clusters.
func NewIndexQuerier(index *lsh.Index, numClusters int) *IndexQuerier {
	return &IndexQuerier{index: index, stamps: make([]uint32, numClusters)}
}

// Candidates returns the deduplicated cluster shortlist for item. The
// returned slice is reused by the next call.
func (q *IndexQuerier) Candidates(item int32, assign []int32) []int32 {
	q.epoch++
	if q.epoch == 0 { // epoch counter wrapped: invalidate all stamps
		for i := range q.stamps {
			q.stamps[i] = 0
		}
		q.epoch = 1
	}
	q.buf = q.buf[:0]
	q.index.Candidates(item, func(other int32) {
		c := assign[other]
		if c < 0 {
			return // not yet assigned (seeded bootstrap)
		}
		if q.stamps[c] != q.epoch {
			q.stamps[c] = q.epoch
			q.buf = append(q.buf, c)
		}
	})
	return q.buf
}
