package core

import (
	"fmt"

	"lshcluster/internal/dataset"
	"lshcluster/internal/lsh"
	"lshcluster/internal/minhash"
)

// MinHashAccelerator implements Accelerator with the MinHash banding
// index of internal/lsh over a categorical dataset — the instantiation
// the paper evaluates as MH-K-Modes. Items are indexed by the set of
// their *present* attribute values (Algorithm 2 lines 1–5); queries map
// colliding items to their current clusters and deduplicate, yielding the
// candidate-cluster shortlist (lines 10–12).
//
// The index is an item-partitioned lsh.Sharded — a single shard by
// default (the bit-identical unsharded oracle), S shards under
// Options.Shards via the ShardedIndexer capability. Shard count never
// changes results; it changes how the index is built (per-shard
// parallel, from disjoint arena slices) and laid out (per-shard
// cache-resident tables). The embedded ShardedIndexBase carries the
// shared index/arena state machine; this type adds the MinHash
// signing (with its hash-column memo).
type MinHashAccelerator struct {
	ShardedIndexBase
	ds      *dataset.Dataset
	mhParam lsh.Params
	seed    uint64
	maxVal  dataset.Value
	memo    *minhash.Memo
	setBuf  []uint64
	sigBuf  []uint64
}

// NewMinHashAccelerator creates an accelerator for ds with the given
// banding parameters. seed makes the hash family deterministic.
func NewMinHashAccelerator(ds *dataset.Dataset, params lsh.Params, seed uint64) (*MinHashAccelerator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	a := &MinHashAccelerator{
		ds:      ds,
		mhParam: params,
		seed:    seed,
		// Sizes the hash-column memo: interned value IDs are dense.
		maxVal: ds.MaxValue(),
	}
	// Categorical datasets are fingerprintable, so a saved index can be
	// pinned to the data it was built from (IndexPersister).
	a.SetFingerprintSource(ds.Fingerprint)
	return a, nil
}

// Params returns the banding configuration (also valid before Reset).
func (a *MinHashAccelerator) Params() lsh.Params { return a.mhParam }

// Reset discards any previous index and prepares a fresh one.
func (a *MinHashAccelerator) Reset(numClusters int) error {
	if err := a.ResetIndex(a.mhParam, a.seed, a.ds.NumItems(), numClusters); err != nil {
		return err
	}
	// Categorical values repeat across items, so each distinct value's
	// hash column can be computed once and signing becomes element-wise
	// mins over cached columns — identical signatures, far cheaper
	// bootstrap. Memoisation only pays when values actually repeat AND
	// the column table stays cache-resident (min-scans over a table
	// that spills past L2 lose to re-hashing in registers); gate on
	// both, falling back to direct hashing otherwise.
	a.memo = nil
	occurrences := int64(a.ds.NumItems()) * int64(a.ds.NumAttrs())
	footprint := (int64(a.maxVal) + 1) * int64(a.mhParam.SignatureLen()) * 8
	if occurrences >= memoMinReuse*(int64(a.maxVal)+1) && footprint <= memoMaxFootprint {
		a.memo = a.Index().Scheme().NewMemo(int(a.maxVal) + 1)
	}
	a.sigBuf = make([]uint64, a.mhParam.SignatureLen())
	return nil
}

// memoMinReuse is the minimum mean occurrences-per-distinct-value at
// which the hash-column memo is enabled: below it the one-off column
// computation outweighs the per-occurrence saving.
const memoMinReuse = 8

// memoMaxFootprint caps the memo column table at a cache-resident size.
// Measured on the synthetic workload (sig len 100), signing is ~2.3×
// faster at an 80 KB table, ~1.3× at 800 KB, and ~1.1× *slower* at
// 1.6 MB, so 1 MB is the crossover-safe bound.
const memoMaxFootprint = 1 << 20

// Insert MinHashes item (via the memoized hash columns when the value
// dictionary is dense enough) and files it in its owning shard.
func (a *MinHashAccelerator) Insert(item int32) error {
	ix := a.Index()
	if ix == nil {
		return fmt.Errorf("core: Insert before Reset")
	}
	a.setBuf = a.ds.PresentValues(int(item), a.setBuf[:0])
	if a.memo != nil {
		return ix.InsertSignature(item, a.memo.Sign(a.setBuf, a.sigBuf))
	}
	return ix.Insert(item, a.setBuf)
}

// SignAll computes every item's band keys into a flat arena, sharding
// the signing across workers goroutines with per-worker scratch
// (core.BulkIndexer). When the hash-column memo is enabled it is
// pre-filled first — each distinct value's column computed exactly
// once, in parallel — after which the shared memo is read-only and
// safe for all signing workers; without the memo each worker hashes
// with its own buffers. Keys are bit-identical to per-item Insert
// signing.
func (a *MinHashAccelerator) SignAll(workers int, stop func() bool) error {
	ix := a.Index()
	if ix == nil {
		return fmt.Errorf("core: SignAll before Reset")
	}
	if a.memo != nil {
		a.memo.Fill(workers)
	}
	scheme := ix.Scheme()
	return a.SignAllInto(workers, func() lsh.SignFunc {
		var set []uint64
		if a.memo != nil {
			return func(item int32, sig []uint64) {
				set = a.ds.PresentValues(int(item), set[:0])
				a.memo.Sign(set, sig)
			}
		}
		return func(item int32, sig []uint64) {
			set = a.ds.PresentValues(int(item), set[:0])
			scheme.Sign(set, sig)
		}
	}, stop)
}

// CandidatesUnindexed returns the candidate-cluster shortlist of a
// not-yet-indexed item by querying the growing index with the item's
// band keys (core.UnindexedQuerier): the presigned arena when SignAll
// ran, a fresh signing otherwise (the serial bootstrap oracle). Serial
// use only (shares signing and dedup scratch).
func (a *MinHashAccelerator) CandidatesUnindexed(item int32, assign []int32) []int32 {
	return a.CandidatesUnindexedWith(item, assign, func(item int32) []uint64 {
		a.setBuf = a.ds.PresentValues(int(item), a.setBuf[:0])
		if a.memo != nil {
			return a.memo.Sign(a.setBuf, a.sigBuf)
		}
		return a.Index().Scheme().Sign(a.setBuf, a.sigBuf)
	})
}

// IndexQuerier adapts a populated lsh.Sharded index into a Querier:
// colliding items are mapped through the live assignment and
// deduplicated into a cluster shortlist with an epoch-stamp array (no
// per-query clearing). Candidate enumeration goes through the
// lsh.Query planner, which fans sub-queries out across shards and
// merges them back into the single-index order — so shortlist contents
// and first-occurrence order are independent of the shard count. Any
// LSH family that feeds an lsh.Index — MinHash here, SimHash in the
// numeric extension — gets shortlist semantics from this adapter.
type IndexQuerier struct {
	q      *lsh.Query
	stamps []uint32
	epoch  uint32
	buf    []int32
	// marks and lists are the per-block dedup scratch of
	// CandidatesBlock: one k-bit set and one shortlist buffer per block
	// position.
	marks []uint64
	lists [][]int32
	// degPartial/degOwnerDown mirror the lsh.Query's degradation report
	// for the most recent shortlist (core.DegradedQuerier); always false
	// without fault-tolerant backend routing.
	degPartial, degOwnerDown bool
}

// NewIndexQuerier creates a querier over index for a clustering with
// numClusters clusters.
func NewIndexQuerier(index *lsh.Sharded, numClusters int) *IndexQuerier {
	return &IndexQuerier{q: index.NewQuery(), stamps: make([]uint32, numClusters)}
}

// beginDedup starts a fresh epoch and resets the shortlist buffer.
func (q *IndexQuerier) beginDedup() {
	q.epoch++
	if q.epoch == 0 { // epoch counter wrapped: invalidate all stamps
		for i := range q.stamps {
			q.stamps[i] = 0
		}
		q.epoch = 1
	}
	q.buf = q.buf[:0]
}

// collect folds one colliding item into the deduplicated cluster
// shortlist under assign.
func (q *IndexQuerier) collect(other int32, assign []int32) {
	c := assign[other]
	if c < 0 {
		return // not yet assigned (seeded bootstrap)
	}
	if q.stamps[c] != q.epoch {
		q.stamps[c] = q.epoch
		q.buf = append(q.buf, c)
	}
}

// Candidates returns the deduplicated cluster shortlist for item. The
// returned slice is reused by the next call.
func (q *IndexQuerier) Candidates(item int32, assign []int32) []int32 {
	q.beginDedup()
	q.q.Candidates(item, func(other int32) { q.collect(other, assign) })
	q.degPartial, q.degOwnerDown = q.q.LastDegraded()
	return q.buf
}

// LastDegraded reports whether the most recent shortlist was degraded
// by shard failures (core.DegradedQuerier): partial means at least one
// shard's candidates are missing, ownerDown that the item's own shard
// was unreachable. Both stay false on the direct in-memory fan-out.
// For CandidatesBlock the report covers the position most recently
// emitted, so it is valid inside each emit invocation.
func (q *IndexQuerier) LastDegraded() (partial, ownerDown bool) {
	return q.degPartial, q.degOwnerDown
}

// CandidatesOfKeys returns the deduplicated cluster shortlist of an
// un-inserted item identified by its presigned band keys — the seeded
// bootstrap's query-before-insert. The returned slice is reused by the
// next call.
func (q *IndexQuerier) CandidatesOfKeys(keys []uint64, assign []int32) []int32 {
	q.beginDedup()
	q.q.CandidatesOfKeys(keys, func(other int32) { q.collect(other, assign) })
	q.degPartial, q.degOwnerDown = q.q.LastDegraded()
	return q.buf
}

// CandidatesOfSignature returns the deduplicated cluster shortlist of
// an un-inserted item identified by its signature. The returned slice
// is reused by the next call.
func (q *IndexQuerier) CandidatesOfSignature(sig []uint64, assign []int32) []int32 {
	q.beginDedup()
	q.q.CandidatesOfSignature(sig, func(other int32) { q.collect(other, assign) })
	q.degPartial, q.degOwnerDown = q.q.LastDegraded()
	return q.buf
}

// CandidatesBlock computes the shortlists of a whole block of items in
// one band-major index sweep (core.BlockQuerier; see
// lsh.Index.CandidatesBatch for why that order amortises cache
// misses). Buckets for the block's positions arrive interleaved, so
// deduplication uses a k-bit mark set per position instead of the
// sequential epoch stamps; per position the buckets still arrive in
// ascending band order (and ascending shard order within a band),
// making each emitted shortlist — contents and first-occurrence order
// — identical to Candidates. Shortlists are valid only inside their
// emit invocation.
func (q *IndexQuerier) CandidatesBlock(items []int32, assign []int32, emit func(pos int, shortlist []int32)) {
	nb := len(items)
	words := (len(q.stamps) + 63) / 64
	if len(q.marks) < nb*words {
		q.marks = make([]uint64, nb*words)
	}
	for len(q.lists) < nb {
		q.lists = append(q.lists, nil)
	}
	for pos := 0; pos < nb; pos++ {
		q.lists[pos] = q.lists[pos][:0]
	}
	q.q.CandidatesBatch(items, func(pos int, bucket []int32) {
		row := q.marks[pos*words : (pos+1)*words]
		list := q.lists[pos]
		for _, other := range bucket {
			c := assign[other]
			if c < 0 {
				continue // not yet assigned (seeded bootstrap)
			}
			w, bit := int(c)>>6, uint64(1)<<(uint(c)&63)
			if row[w]&bit == 0 {
				row[w] |= bit
				list = append(list, c)
			}
		}
		q.lists[pos] = list
	})
	for pos := 0; pos < nb; pos++ {
		q.degPartial, q.degOwnerDown = q.q.BlockDegraded(pos)
		emit(pos, q.lists[pos])
		// Clear only the bits this position set, keeping the block's
		// dedup cost proportional to shortlist sizes, not to nb·k.
		row := q.marks[pos*words : (pos+1)*words]
		for _, c := range q.lists[pos] {
			row[int(c)>>6] &^= uint64(1) << (uint(c) & 63)
		}
	}
}
