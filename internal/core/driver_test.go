package core

import "testing"

// rankedSpace is a minimal Space whose best cluster for every item is
// k-1 (distance decreases with the cluster index), making "silently
// returns cluster 0" distinguishable from a correct exact fallback.
type rankedSpace struct{ n, k int }

func (s *rankedSpace) NumItems() int    { return s.n }
func (s *rankedSpace) NumClusters() int { return s.k }
func (s *rankedSpace) Dissimilarity(item, cluster int) float64 {
	return float64(s.k - cluster)
}
func (s *rankedSpace) BoundedDissimilarity(item, cluster int, bound float64) float64 {
	return s.Dissimilarity(item, cluster)
}
func (s *rankedSpace) RecomputeCentroids(assign []int32) {}
func (s *rankedSpace) Cost(assign []int32) float64       { return 0 }

// TestBestOfEmptyShortlistFallsBackToExact pins the defensive contract
// of bestOf: with no current cluster and an empty candidate list it
// must run an exact scan instead of electing cluster 0 (under
// prefer-current ties) or returning the -1 sentinel (under
// lowest-index ties). No current bootstrap mode reaches this state —
// the seeded bootstrap checks for an empty shortlist first — so the
// test drives the driver directly.
func TestBestOfEmptyShortlistFallsBackToExact(t *testing.T) {
	space := &rankedSpace{n: 4, k: 5}
	for _, tb := range []TieBreak{TieBreakPreferCurrent, TieBreakLowestIndex} {
		d := &driver{space: space, opts: Options{TieBreak: tb}, n: space.n, k: space.k}
		var comps int64
		got := d.bestOf(2, -1, nil, &comps)
		if got != int32(space.k-1) {
			t.Fatalf("tiebreak %d: bestOf(cur=-1, no candidates) = %d, want exact best %d",
				tb, got, space.k-1)
		}
		if comps == 0 {
			t.Fatalf("tiebreak %d: fallback did not evaluate any distances", tb)
		}
		// The non-empty and cur-supplied paths are unchanged by the
		// fallback: a real candidate list still wins over the scan.
		if got := d.bestOf(2, -1, []int32{1, 3}, nil); got != 3 {
			t.Fatalf("tiebreak %d: bestOf over {1,3} = %d, want 3", tb, got)
		}
		if got := d.bestOf(2, 4, nil, nil); got != 4 {
			t.Fatalf("tiebreak %d: bestOf(cur=4, no candidates) = %d, want 4", tb, got)
		}
	}
}
