package core_test

import (
	"bytes"
	"fmt"
	"testing"

	"lshcluster/internal/kmeans"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/lsh"
	"lshcluster/internal/simhash"

	"lshcluster/internal/core"
)

// assertShardsEqual runs the same configuration at every given shard
// count, with Shards=1 (the unsharded oracle) as reference, and
// asserts bit-identical outcomes: assignments, per-iteration moves and
// costs, convergence, and final centroids. Each sharded count is
// additionally run against its two hot-path oracles — the key-probe
// fan-out (DisableForeignSlots, checking the materialised foreign-slot
// arrays) and the scalar kernels (ScalarKernels, checking the unrolled
// distance/signing loops) — which must also match the reference.
func assertShardsEqual(t *testing.T, mk func() (core.Space, core.Accelerator), fingerprint func(core.Space) []byte, opts core.Options, shardCounts []int) {
	t.Helper()
	run := func(shards int, mut func(*core.Options)) (*core.Result, []byte) {
		o := opts
		o.Shards = shards
		space, accel := mk()
		o.Accelerator = accel
		if mut != nil {
			mut(&o)
		}
		res, err := core.Run(space, o)
		if err != nil {
			t.Fatal(err)
		}
		return res, fingerprint(space)
	}
	ref, refCentroids := run(1, nil)
	compare := func(label string, got *core.Result, gotCentroids []byte) {
		t.Helper()
		for i := range ref.Assign {
			if ref.Assign[i] != got.Assign[i] {
				t.Fatalf("%s: assign[%d] = %d, oracle %d", label, i, got.Assign[i], ref.Assign[i])
			}
		}
		if got.Stats.Converged != ref.Stats.Converged {
			t.Fatalf("%s: converged %v, oracle %v", label, got.Stats.Converged, ref.Stats.Converged)
		}
		if len(got.Stats.Iterations) != len(ref.Stats.Iterations) {
			t.Fatalf("%s: %d iterations, oracle %d",
				label, len(got.Stats.Iterations), len(ref.Stats.Iterations))
		}
		for i := range ref.Stats.Iterations {
			a, b := ref.Stats.Iterations[i], got.Stats.Iterations[i]
			if a.Moves != b.Moves {
				t.Fatalf("%s iteration %d: %d moves, oracle %d", label, i+1, b.Moves, a.Moves)
			}
			if a.Cost != b.Cost {
				t.Fatalf("%s iteration %d: cost %v, oracle %v", label, i+1, b.Cost, a.Cost)
			}
			if a.CandidatesTotal != b.CandidatesTotal {
				t.Fatalf("%s iteration %d: %d candidates, oracle %d",
					label, i+1, b.CandidatesTotal, a.CandidatesTotal)
			}
		}
		if !bytes.Equal(refCentroids, gotCentroids) {
			t.Fatalf("%s: final centroids differ from the unsharded oracle", label)
		}
	}
	for _, shards := range shardCounts {
		if shards == 1 {
			continue
		}
		got, gotCentroids := run(shards, nil)
		compare(fmt.Sprintf("shards=%d", shards), got, gotCentroids)
		if got.Stats.Shards != shards {
			t.Fatalf("shards=%d: stats recorded %d shards", shards, got.Stats.Shards)
		}
		// These workloads fit the default foreign-slot budget, so the
		// default sharded run must have materialised and fanned out by
		// direct loads.
		if got.Stats.ForeignSlotBytes <= 0 {
			t.Fatalf("shards=%d: no foreign-slot bytes recorded", shards)
		}
		if got.Stats.CrossShardDirect <= 0 {
			t.Fatalf("shards=%d: no direct fan-out ops recorded", shards)
		}
		probeRun, probeCentroids := run(shards, func(o *core.Options) { o.DisableForeignSlots = true })
		compare(fmt.Sprintf("shards=%d/probe-oracle", shards), probeRun, probeCentroids)
		if probeRun.Stats.ForeignSlotBytes != 0 {
			t.Fatalf("shards=%d: probe oracle recorded %d foreign-slot bytes",
				shards, probeRun.Stats.ForeignSlotBytes)
		}
		if probeRun.Stats.CrossShardDirect != 0 {
			t.Fatalf("shards=%d: probe oracle recorded %d direct fan-out ops",
				shards, probeRun.Stats.CrossShardDirect)
		}
		scalarRun, scalarCentroids := run(shards, func(o *core.Options) { o.ScalarKernels = true })
		compare(fmt.Sprintf("shards=%d/scalar-kernels", shards), scalarRun, scalarCentroids)
	}
	// The kernel oracle must hold on the unsharded reference path too.
	scalarRef, scalarRefCentroids := run(1, func(o *core.Options) { o.ScalarKernels = true })
	compare("shards=1/scalar-kernels", scalarRef, scalarRefCentroids)
}

// TestShardInvarianceKModes is the headline shard-count equivalence
// matrix for MH-K-Modes: full runs must be bit-identical across
// Shards ∈ {1, 2, 4} for both bootstrap modes and both worker counts.
func TestShardInvarianceKModes(t *testing.T) {
	ds := bootstrapWorkload(t)
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	for _, boot := range []core.BootstrapMode{core.BootstrapFullScan, core.BootstrapSeeded} {
		for _, workers := range []int{1, 4} {
			upd := core.UpdateImmediate
			if workers > 1 {
				upd = core.UpdateDeferred
			}
			t.Run(fmt.Sprintf("boot=%d/w=%d", boot, workers), func(t *testing.T) {
				assertShardsEqual(t, mk, kmodesFingerprint(t), core.Options{
					Bootstrap: boot, Update: upd, Workers: workers,
					MaxIterations: 15,
				}, []int{1, 2, 4})
			})
		}
	}
}

// TestShardInvarianceKMeans covers the SimHash/K-Means instantiation
// of the same matrix.
func TestShardInvarianceKMeans(t *testing.T) {
	pts, _, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 800, Clusters: 40, Dim: 8, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmeans.NewSpace(pts, 8, kmeans.Config{K: 40, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		a, err := simhash.NewAccelerator(s, lsh.Params{Bands: 8, Rows: 8}, 21)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	fingerprint := func(s core.Space) []byte {
		var buf bytes.Buffer
		sp := s.(*kmeans.Space)
		for c := 0; c < sp.NumClusters(); c++ {
			fmt.Fprintf(&buf, "%x;", sp.Centroid(c))
		}
		return buf.Bytes()
	}
	for _, boot := range []core.BootstrapMode{core.BootstrapFullScan, core.BootstrapSeeded} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("boot=%d/w=%d", boot, workers), func(t *testing.T) {
				assertShardsEqual(t, mk, fingerprint, core.Options{
					Bootstrap: boot, Update: core.UpdateDeferred, Workers: workers,
					MaxIterations: 15,
				}, []int{1, 2, 4})
			})
		}
	}
}

// TestShardInvarianceSerialOracle crosses sharding with the serial
// bootstrap oracle: even the per-item sign+insert path must be
// shard-blind.
func TestShardInvarianceSerialOracle(t *testing.T) {
	ds := bootstrapWorkload(t)
	mk := func() (core.Space, core.Accelerator) {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		return s, a
	}
	for _, boot := range []core.BootstrapMode{core.BootstrapFullScan, core.BootstrapSeeded} {
		t.Run(fmt.Sprintf("boot=%d", boot), func(t *testing.T) {
			assertShardsEqual(t, mk, kmodesFingerprint(t), core.Options{
				Bootstrap: boot, MaxIterations: 12, DisableParallelBootstrap: true,
			}, []int{1, 4})
		})
	}
}

// TestShardStatsRecorded checks the ShardStatsReporter plumbing: a
// sharded run records the shard count, one build time per shard, and
// (having fanned queries out across shards) a non-zero cross-shard
// merge time; the unsharded oracle records exactly one shard and no
// merge time.
func TestShardStatsRecorded(t *testing.T) {
	ds := bootstrapWorkload(t)
	run := func(shards int) *core.Result {
		s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		a, err := core.NewMinHashAccelerator(ds, lsh.Params{Bands: 8, Rows: 4}, 7)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.Run(s, core.Options{
			Accelerator: a, Shards: shards, MaxIterations: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	st := run(4).Stats
	if st.Shards != 4 {
		t.Fatalf("Shards = %d, want 4", st.Shards)
	}
	if len(st.BootstrapBuildShards) != 4 {
		t.Fatalf("BootstrapBuildShards has %d entries, want 4", len(st.BootstrapBuildShards))
	}
	if st.CrossShardMerge <= 0 {
		t.Fatal("sharded run recorded no cross-shard merge time")
	}
	if st.ForeignSlotBytes <= 0 {
		t.Fatal("sharded run under the default budget recorded no foreign-slot bytes")
	}
	if st.CrossShardDirect <= 0 {
		t.Fatal("sharded run recorded no direct fan-out ops")
	}
	st = run(1).Stats
	if st.Shards != 1 {
		t.Fatalf("oracle Shards = %d, want 1", st.Shards)
	}
	if st.CrossShardMerge != 0 {
		t.Fatalf("oracle recorded cross-shard merge time %v", st.CrossShardMerge)
	}
	if st.ForeignSlotBytes != 0 || st.CrossShardProbes != 0 || st.CrossShardDirect != 0 {
		t.Fatalf("oracle recorded cross-shard fan-out state: %d bytes, %d probes, %d direct",
			st.ForeignSlotBytes, st.CrossShardProbes, st.CrossShardDirect)
	}
}

// TestShardsIgnoredWithoutCapability checks Options.Shards degrades to
// a no-op for accelerators without the ShardedIndexer capability.
func TestShardsIgnoredWithoutCapability(t *testing.T) {
	ds := bootstrapWorkload(t)
	s, err := kmodes.NewSpace(ds, kmodes.Config{K: 30, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(s, core.Options{
		Accelerator: &fixedShortlistAccel{k: 30}, Shards: 4, MaxIterations: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Shards != 0 {
		t.Fatalf("capability-less accelerator reported %d shards", res.Stats.Shards)
	}
}

// fixedShortlistAccel always shortlists every cluster (no sharding,
// no unindexed queries — the minimal Accelerator surface).
type fixedShortlistAccel struct {
	k   int
	buf []int32
}

func (a *fixedShortlistAccel) Reset(k int) error {
	a.k = k
	a.buf = make([]int32, k)
	for i := range a.buf {
		a.buf[i] = int32(i)
	}
	return nil
}
func (a *fixedShortlistAccel) Insert(int32) error { return nil }
func (a *fixedShortlistAccel) NewQuerier() core.Querier {
	return fixedShortlistQuerier{buf: a.buf}
}

type fixedShortlistQuerier struct{ buf []int32 }

func (q fixedShortlistQuerier) Candidates(int32, []int32) []int32 { return q.buf }
