package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// tinySuite runs at 1% of paper scale with logging captured, fast enough
// for CI while keeping the comparative shape intact.
func tinySuite(buf *bytes.Buffer) *Suite {
	return NewSuite(Config{Scale: 0.01, Seed: 11, Out: buf, Quiet: true})
}

func TestScaledSpec(t *testing.T) {
	s := SynthA.Scaled(0.01)
	if s.Items != 900 || s.Clusters != 200 || s.Attrs != 100 {
		t.Fatalf("scaled spec = %+v", s)
	}
	tiny := SynthA.Scaled(0.00001)
	if tiny.Items < 50 || tiny.Clusters < 5 {
		t.Fatalf("minimum clamps not applied: %+v", tiny)
	}
	if tiny.Clusters > tiny.Items {
		t.Fatalf("clusters exceed items: %+v", tiny)
	}
}

func TestVariantNames(t *testing.T) {
	if MH(20, 5).Name != "MH-K-Modes 20b 5r" {
		t.Fatalf("variant name = %q", MH(20, 5).Name)
	}
	if Baseline.Params != nil {
		t.Fatal("baseline must have nil params")
	}
}

func TestTables(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Table(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Table(2); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"Table I", "Table II",
		"0.6513", // b=10, s=0.1, r=1
		"0.9990", // b=10, s=0.5, r=1
		"0.2720", // b=10, s=0.5, r=5 pair prob
	} {
		if !strings.Contains(out, want) {
			t.Errorf("tables output missing %q", want)
		}
	}
	if err := s.Table(3); err == nil {
		t.Fatal("expected error for unknown table")
	}
}

func TestFigureUnknown(t *testing.T) {
	var buf bytes.Buffer
	if err := tinySuite(&buf).Figure(11); err == nil {
		t.Fatal("expected error for unknown figure")
	}
}

// TestFigure2Shape checks the paper's qualitative claims on dataset A:
// every MH variant spends less time per iteration than K-Modes, produces
// shortlists orders of magnitude below k, and loses little purity.
func TestFigure2Shape(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Figure2(); err != nil {
		t.Fatal(err)
	}
	cmp, err := s.synthComparison(SynthA, variants2, s.cfg.MaxIterations)
	if err != nil {
		t.Fatal(err)
	}
	base := cmp.BaselineRun()
	if base == nil {
		t.Fatal("baseline run missing")
	}
	k := float64(cmp.Spec.Clusters)
	for _, r := range cmp.Runs {
		if r == base {
			for _, it := range r.Iterations {
				if it.AvgShortlist != k {
					t.Fatalf("baseline shortlist %v != k", it.AvgShortlist)
				}
			}
			continue
		}
		if r.MeanIterationTime() >= base.MeanIterationTime() {
			t.Errorf("%s mean iteration %v not below baseline %v",
				r.Name, r.MeanIterationTime(), base.MeanIterationTime())
		}
		for _, it := range r.Iterations {
			if it.AvgShortlist > k/10 {
				t.Errorf("%s shortlist %v not ≪ k=%v", r.Name, it.AvgShortlist, k)
			}
		}
		if r.Purity < base.Purity-0.1 {
			t.Errorf("%s purity %v far below baseline %v", r.Name, r.Purity, base.Purity)
		}
		if !r.Converged {
			t.Errorf("%s did not converge", r.Name)
		}
	}
}

func TestComparisonCaching(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	a, err := s.synthComparison(SynthA, variants2, s.cfg.MaxIterations)
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.synthComparison(SynthA, variants2, s.cfg.MaxIterations)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("identical requests were not cached")
	}
}

func TestFigure9Shape(t *testing.T) {
	var buf bytes.Buffer
	s := tinySuite(&buf)
	if err := s.Figure9(); err != nil {
		t.Fatal(err)
	}
	cmp, err := s.yahooComparison(0.7, variants9, s.cfg.MaxIterations)
	if err != nil {
		t.Fatal(err)
	}
	base := cmp.BaselineRun()
	mh := cmp.Run(MH(1, 1).Name)
	if base == nil || mh == nil {
		t.Fatal("runs missing")
	}
	// Figure 9b: the 1b1r shortlist is well below the full cluster set.
	lastMH := mh.Iterations[len(mh.Iterations)-1]
	if lastMH.AvgShortlist >= float64(base.Iterations[0].AvgShortlist)/2 {
		t.Errorf("text shortlist %v not well below k=%v",
			lastMH.AvgShortlist, base.Iterations[0].AvgShortlist)
	}
	// Figure 9e: purity within a few points of the baseline.
	if mh.Purity < base.Purity-0.1 {
		t.Errorf("MH purity %v far below baseline %v", mh.Purity, base.Purity)
	}
	out := buf.String()
	for _, want := range []string{"9a:", "9b:", "9c:", "9d:", "9e:"} {
		if !strings.Contains(out, want) {
			t.Errorf("figure 9 output missing %q", want)
		}
	}
}

// TestRemainingFiguresRun exercises every figure runner the shape tests
// above don't cover, at an ultra-tiny scale, checking the printed
// structure of each.
func TestRemainingFiguresRun(t *testing.T) {
	var buf bytes.Buffer
	s := NewSuite(Config{Scale: 0.004, Seed: 4, Out: &buf, Quiet: true, MaxIterations: 8})
	wants := map[int][]string{
		3:  {"Figure 3", "3a:", "3b:", "3c:", "3d:"},
		4:  {"Figure 4", "4a:", "4b:", "4c:"},
		5:  {"Figure 5", "5a:", "5b:"},
		6:  {"Figure 6", "6a:", "6b:", "6c:"},
		7:  {"Figure 7", "7a:", "7e:", "speedup"},
		8:  {"Figure 8", "8a:", "8e:", "purity"},
		10: {"Figure 10", "10a:", "10b:", "10c:", "10d:"},
	}
	for fig := 3; fig <= 10; fig++ {
		if fig == 9 {
			continue // covered by TestFigure9Shape
		}
		if err := s.Figure(fig); err != nil {
			t.Fatalf("figure %d: %v", fig, err)
		}
	}
	out := buf.String()
	for fig, strs := range wants {
		for _, w := range strs {
			if !strings.Contains(out, w) {
				t.Errorf("figure %d output missing %q", fig, w)
			}
		}
	}
}

func TestCSVDump(t *testing.T) {
	dir := t.TempDir()
	var buf bytes.Buffer
	s := NewSuite(Config{Scale: 0.01, Seed: 11, Out: &buf, Quiet: true, CSVDir: dir})
	if err := s.Figure2(); err != nil {
		t.Fatal(err)
	}
	data, err := readFile(dir + "/fig2.csv")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(data, "run,iteration,duration_ms") {
		t.Fatalf("CSV header missing: %q", firstLine(data))
	}
	if !strings.Contains(data, "K-Modes") {
		t.Fatal("CSV missing baseline rows")
	}
}

func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i]
	}
	return s
}
