package experiments

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"text/tabwriter"
	"time"

	"lshcluster/internal/runstats"
)

// Figure runs the numbered paper figure (2–10) and prints its series.
func (s *Suite) Figure(n int) error {
	switch n {
	case 2:
		return s.Figure2()
	case 3:
		return s.Figure3()
	case 4:
		return s.Figure4()
	case 5:
		return s.Figure5()
	case 6:
		return s.Figure6()
	case 7:
		return s.Figure7()
	case 8:
		return s.Figure8()
	case 9:
		return s.Figure9()
	case 10:
		return s.Figure10()
	default:
		return fmt.Errorf("experiments: no figure %d in the paper's evaluation", n)
	}
}

// Tables runs the numbered paper table (1 or 2).
func (s *Suite) Table(n int) error {
	switch n {
	case 1:
		return s.Table1()
	case 2:
		return s.Table2()
	default:
		return fmt.Errorf("experiments: no table %d in the paper", n)
	}
}

// All regenerates both tables and every figure.
func (s *Suite) All() error {
	for _, t := range []int{1, 2} {
		if err := s.Table(t); err != nil {
			return err
		}
	}
	for f := 2; f <= 10; f++ {
		if err := s.Figure(f); err != nil {
			return err
		}
	}
	return nil
}

// ---- Figures 2–5: per-iteration series on the synthetic datasets ----

// Figure2 reproduces Figure 2 (a–e): dataset A (90 000 items, 100
// attributes, 20 000 clusters), variants 20b2r / 20b5r / 50b5r vs
// K-Modes.
func (s *Suite) Figure2() error {
	cmp, err := s.synthComparison(SynthA, variants2, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	w := s.cfg.Out
	header(w, "Figure 2 — %v", cmp.Spec)
	printSeries(w, "2a: time per iteration (ms)", cmp.Runs, colDuration)
	printSeries(w, "2b: average shortlist size (clusters returned)", cmp.Runs, colShortlist)
	printSeries(w, "2c: moves per iteration", cmp.Runs, colMoves)
	zoom := []*runstats.Run{cmp.Run(MH(20, 5).Name), cmp.Run(MH(50, 5).Name)}
	printSeries(w, "2d: closer look at 2a (MH variants only)", zoom, colDuration)
	printSeries(w, "2e: closer look at 2b (MH variants only)", zoom, colShortlist)
	printSummary(w, cmp)
	return s.dumpCSV("fig2", cmp)
}

// Figure3 reproduces Figure 3 (a–d): dataset B (40 000 clusters).
func (s *Suite) Figure3() error {
	cmp, err := s.synthComparison(SynthB, variants2, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	w := s.cfg.Out
	header(w, "Figure 3 — %v", cmp.Spec)
	printSeries(w, "3a: time per iteration (ms)", cmp.Runs, colDuration)
	var mhOnly []*runstats.Run
	for _, r := range cmp.Runs {
		if r.Name != Baseline.Name {
			mhOnly = append(mhOnly, r)
		}
	}
	printSeries(w, "3b: time per iteration excluding K-Modes (ms)", mhOnly, colDuration)
	printSeries(w, "3c: average shortlist size", cmp.Runs, colShortlist)
	printSeries(w, "3d: moves per iteration", cmp.Runs, colMoves)
	printSummary(w, cmp)
	return s.dumpCSV("fig3", cmp)
}

// Figure4 reproduces Figure 4 (a–c): dataset C (250 000 items).
func (s *Suite) Figure4() error {
	cmp, err := s.synthComparison(SynthC, variants4, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	w := s.cfg.Out
	header(w, "Figure 4 — %v", cmp.Spec)
	printSeries(w, "4a: average shortlist size", cmp.Runs, colShortlist)
	printSeries(w, "4b: moves per iteration", cmp.Runs, colMoves)
	printSeries(w, "4c: time per iteration (ms)", cmp.Runs, colDuration)
	printSummary(w, cmp)
	return s.dumpCSV("fig4", cmp)
}

// Figure5 reproduces Figure 5 (a–b): dataset D (200 attributes).
func (s *Suite) Figure5() error {
	cmp, err := s.synthComparison(SynthD, variants5, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	w := s.cfg.Out
	header(w, "Figure 5 — %v", cmp.Spec)
	printSeries(w, "5a: time per iteration (ms)", cmp.Runs, colDuration)
	printSeries(w, "5b: average shortlist size", cmp.Runs, colShortlist)
	printSummary(w, cmp)
	return s.dumpCSV("fig5", cmp)
}

// ---- Figure 6: scaling comparisons ----

// Figure6 reproduces Figure 6 (a–c): total clustering time as items,
// clusters and attributes grow, for MH-K-Modes 20b5r vs K-Modes.
func (s *Suite) Figure6() error {
	w := s.cfg.Out
	header(w, "Figure 6 — scaling of total clustering time")

	// 6a: items 90k → 250k (datasets A and C).
	a, err := s.synthComparison(SynthA, variants6, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	c, err := s.synthComparison(SynthC, variants6, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	printScaling(w, "6a: scaling items (total time, ms)", "items",
		[]string{itemsLabel(a), itemsLabel(c)}, []*Comparison{a, c})

	// 6b: clusters 20k → 40k at 250k items (datasets C and F).
	f, err := s.synthComparison(SynthF, variants6, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	printScaling(w, "6b: scaling clusters at 250k items (total time, ms)", "clusters",
		[]string{clustersLabel(c), clustersLabel(f)}, []*Comparison{c, f})

	// 6c: attributes 100 → 200 → 400 (datasets A, D, E).
	d, err := s.synthComparison(SynthD, variants5, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	e, err := s.synthComparison(SynthE, variants5, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	printScaling(w, "6c: scaling attributes (total time, ms)", "attrs",
		[]string{attrsLabel(a), attrsLabel(d), attrsLabel(e)}, []*Comparison{a, d, e})
	return s.dumpCSV("fig6", a, c, f, d, e)
}

func itemsLabel(c *Comparison) string    { return strconv.Itoa(c.Spec.Items) }
func clustersLabel(c *Comparison) string { return strconv.Itoa(c.Spec.Clusters) }
func attrsLabel(c *Comparison) string    { return strconv.Itoa(c.Spec.Attrs) }

// ---- Figures 7 and 8: totals and purity over the five datasets ----

// figure78sets lists the per-dataset variant sets of Figures 7 and 8.
func (s *Suite) figure78sets() ([]string, [][]Variant, []SynthSpec) {
	names := []string{
		"a: 90k items, 100 attrs, 20k clusters",
		"b: 90k items, 200 attrs, 20k clusters",
		"c: 90k items, 400 attrs, 20k clusters",
		"d: 90k items, 100 attrs, 40k clusters",
		"e: 250k items, 100 attrs, 20k clusters",
	}
	sets := [][]Variant{variants2, variants5, variants5, variants2, variants4}
	specs := []SynthSpec{SynthA, SynthD, SynthE, SynthB, SynthC}
	return names, sets, specs
}

// Figure7 reproduces Figure 7 (a–e): total time to cluster each
// synthetic dataset, including the MinHash indexing bootstrap ("initial
// extra step … captured by this analysis").
func (s *Suite) Figure7() error {
	w := s.cfg.Out
	header(w, "Figure 7 — total time to cluster each synthetic dataset")
	names, sets, specs := s.figure78sets()
	var all []*Comparison
	for i := range names {
		cmp, err := s.synthComparison(specs[i], sets[i], s.cfg.MaxIterations)
		if err != nil {
			return err
		}
		all = append(all, cmp)
		fmt.Fprintf(w, "\n7%s — %v\n", names[i], cmp.Spec)
		printTotals(w, cmp)
	}
	return s.dumpCSV("fig7", all...)
}

// Figure8 reproduces Figure 8 (a–e): cluster purity on each synthetic
// dataset.
func (s *Suite) Figure8() error {
	w := s.cfg.Out
	header(w, "Figure 8 — cluster purity on each synthetic dataset")
	names, sets, specs := s.figure78sets()
	var all []*Comparison
	for i := range names {
		cmp, err := s.synthComparison(specs[i], sets[i], s.cfg.MaxIterations)
		if err != nil {
			return err
		}
		all = append(all, cmp)
		fmt.Fprintf(w, "\n8%s — %v\n", names[i], cmp.Spec)
		printPurity(w, cmp)
	}
	return s.dumpCSV("fig8", all...)
}

// ---- Figures 9 and 10: the Yahoo!-style text workload ----

// Figure9 reproduces Figure 9 (a–e): the Yahoo!-style corpus with
// TF-IDF threshold 0.7, MH-K-Modes 1b1r vs K-Modes.
func (s *Suite) Figure9() error {
	cmp, err := s.yahooComparison(0.7, variants9, s.cfg.MaxIterations)
	if err != nil {
		return err
	}
	w := s.cfg.Out
	header(w, "Figure 9 — Yahoo!-style questions, TF-IDF threshold 0.7")
	printSeries(w, "9a: time per iteration (ms)", cmp.Runs, colDuration)
	printSeries(w, "9b: average shortlist size", cmp.Runs, colShortlist)
	printSeries(w, "9c: moves per iteration", cmp.Runs, colMoves)
	fmt.Fprintln(w, "\n9d: total time")
	printTotals(w, cmp)
	fmt.Fprintln(w, "\n9e: cluster purity")
	printPurity(w, cmp)
	return s.dumpCSV("fig9", cmp)
}

// Figure10 reproduces Figure 10 (a–d): the Yahoo!-style corpus with
// TF-IDF threshold 0.3 and the paper's cap of 10 iterations.
func (s *Suite) Figure10() error {
	const paperCap = 10 // "Due to time constraints we set the maximum iterations to 10"
	cmp, err := s.yahooComparison(0.3, variants10, paperCap)
	if err != nil {
		return err
	}
	w := s.cfg.Out
	header(w, "Figure 10 — Yahoo!-style questions, TF-IDF threshold 0.3 (max 10 iterations)")
	printSeries(w, "10a: time per iteration (ms)", cmp.Runs, colDuration)
	fmt.Fprintln(w, "\n10b: total time to converge")
	printTotals(w, cmp)
	printSeries(w, "10c: average shortlist size", cmp.Runs, colShortlist)
	printSeries(w, "10d: moves per iteration", cmp.Runs, colMoves)
	fmt.Fprintln(w, "\ncluster purity")
	printPurity(w, cmp)
	return s.dumpCSV("fig10", cmp)
}

// ---- rendering helpers ----

func header(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, "\n%s\n%s\n", fmt.Sprintf(format, args...),
		strings.Repeat("=", len(fmt.Sprintf(format, args...))))
}

func colDuration(it runstats.Iteration) string {
	return strconv.FormatFloat(float64(it.Duration)/float64(time.Millisecond), 'f', 2, 64)
}

func colShortlist(it runstats.Iteration) string {
	return strconv.FormatFloat(it.AvgShortlist, 'f', 3, 64)
}

func colMoves(it runstats.Iteration) string { return strconv.Itoa(it.Moves) }

// printSeries renders one paper subfigure: iterations down the rows, one
// column per run.
func printSeries(w io.Writer, title string, runs []*runstats.Run, col func(runstats.Iteration) string) {
	fmt.Fprintf(w, "\n%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprint(tw, "iter")
	maxIter := 0
	for _, r := range runs {
		fmt.Fprintf(tw, "\t%s", r.Name)
		if r.NumIterations() > maxIter {
			maxIter = r.NumIterations()
		}
	}
	fmt.Fprintln(tw)
	for i := 0; i < maxIter; i++ {
		fmt.Fprintf(tw, "%d", i+1)
		for _, r := range runs {
			if i < r.NumIterations() {
				fmt.Fprintf(tw, "\t%s", col(r.Iterations[i]))
			} else {
				fmt.Fprint(tw, "\t-")
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

// printTotals renders a total-time bar-chart equivalent with speedups
// against the baseline.
func printTotals(w io.Writer, cmp *Comparison) {
	base := cmp.BaselineRun()
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "run\tbootstrap\titerations\ttotal\tspeedup vs K-Modes")
	for _, r := range cmp.Runs {
		speed := "-"
		if base != nil && r != base {
			speed = fmt.Sprintf("%.2fx", r.Speedup(base))
		}
		fmt.Fprintf(tw, "%s\t%v\t%d\t%v\t%s\n",
			r.Name, r.Bootstrap.Round(time.Millisecond), r.NumIterations(),
			r.Total().Round(time.Millisecond), speed)
	}
	tw.Flush()
}

// printPurity renders the purity bars of Figures 8 and 9e.
func printPurity(w io.Writer, cmp *Comparison) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "run\tpurity")
	for _, r := range cmp.Runs {
		fmt.Fprintf(tw, "%s\t%.4f\n", r.Name, r.Purity)
	}
	tw.Flush()
}

// printScaling renders one Figure 6 panel: total time per variant at
// each point of the scaled dimension.
func printScaling(w io.Writer, title, dim string, points []string, cmps []*Comparison) {
	fmt.Fprintf(w, "\n%s\n", title)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintf(tw, "%s", dim)
	for _, r := range cmps[0].Runs {
		fmt.Fprintf(tw, "\t%s", r.Name)
	}
	fmt.Fprintln(tw)
	for i, c := range cmps {
		fmt.Fprintf(tw, "%s", points[i])
		for _, name := range runNames(cmps[0]) {
			r := c.Run(name)
			if r == nil {
				fmt.Fprint(tw, "\t-")
				continue
			}
			fmt.Fprintf(tw, "\t%.0f", float64(r.Total())/float64(time.Millisecond))
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
}

func runNames(c *Comparison) []string {
	names := make([]string, len(c.Runs))
	for i, r := range c.Runs {
		names[i] = r.Name
	}
	return names
}

// printSummary appends the convergence summary below a figure.
func printSummary(w io.Writer, cmp *Comparison) {
	fmt.Fprintln(w, "\nsummary")
	if err := runstats.WriteSummaryMarkdown(w, cmp.Runs); err != nil {
		fmt.Fprintf(w, "summary error: %v\n", err)
	}
}
