package experiments

import (
	"fmt"
	"io"
	"text/tabwriter"

	"lshcluster/internal/lsh"
)

// Table1 prints the paper's Table I: candidate-pair and cluster-hit
// probabilities at row value 1 across bands and Jaccard similarities
// (assuming 10 similar items in the cluster).
func (s *Suite) Table1() error {
	header(s.cfg.Out, "Table I — candidate probabilities, 1 row per band")
	printProbTable(s.cfg.Out, lsh.TableI())
	fmt.Fprintln(s.cfg.Out, "\nNote: the published Table I cells (b=100, s=0.001) and (b=100, s=0.01)")
	fmt.Fprintln(s.cfg.Out, "are inconsistent with the paper's own formula 1-(1-s^r)^b; this table")
	fmt.Fprintln(s.cfg.Out, "reports the formula values (see EXPERIMENTS.md).")
	return nil
}

// Table2 prints the paper's Table II: the same grid at row value 5.
func (s *Suite) Table2() error {
	header(s.cfg.Out, "Table II — candidate probabilities, 5 rows per band")
	printProbTable(s.cfg.Out, lsh.TableII())
	return nil
}

func printProbTable(w io.Writer, rows []lsh.TableRow) {
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "Bands\tJaccard-similarity\tProbability\tMH-K-Modes Probability")
	for _, r := range rows {
		fmt.Fprintf(tw, "%d\t%g\t%.4f\t%.4f\n", r.Bands, r.Jaccard, r.PairProb, r.ClusterProb)
	}
	tw.Flush()
}
