package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"

	"lshcluster/internal/core"
	"lshcluster/internal/datagen"
	"lshcluster/internal/dataset"
	"lshcluster/internal/kmodes"
	"lshcluster/internal/metrics"
	"lshcluster/internal/runstats"
	"lshcluster/internal/yahoogen"
)

// Config parameterises a Suite.
type Config struct {
	// Scale multiplies paper workload sizes (items, clusters, topics).
	// Zero defaults to 0.05; 1.0 is paper scale.
	Scale float64
	// Seed drives dataset generation, centroid selection and hashing.
	Seed int64
	// MaxIterations caps iteration counts for the synthetic experiments
	// (Figure 10 independently applies the paper's cap of 10).
	// Zero defaults to 30.
	MaxIterations int
	// Out receives the printed tables and series. Nil defaults to
	// os.Stdout.
	Out io.Writer
	// CSVDir, when non-empty, additionally writes each figure's raw
	// per-iteration series as CSV files into this directory.
	CSVDir string
	// Quiet suppresses progress logging.
	Quiet bool
	// Domain overrides the categorical domain size (paper: 40 000).
	Domain int
}

func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = 0.05
	}
	if c.MaxIterations <= 0 {
		c.MaxIterations = 30
	}
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.Domain <= 0 {
		c.Domain = 40000
	}
	return c
}

// Comparison holds the outcome of running several variants on one
// workload from identical initial centroids.
type Comparison struct {
	Workload string
	Spec     SynthSpec // zero value for text workloads
	Runs     []*runstats.Run
}

// Run returns the named run, or nil.
func (c *Comparison) Run(name string) *runstats.Run {
	for _, r := range c.Runs {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// BaselineRun returns the exact K-Modes run, or nil.
func (c *Comparison) BaselineRun() *runstats.Run { return c.Run(Baseline.Name) }

// Suite runs experiments with memoisation, so composite figures (6, 7, 8)
// reuse the comparisons computed for earlier figures within one process.
type Suite struct {
	cfg   Config
	cache map[string]*Comparison
}

// NewSuite creates a suite for cfg.
func NewSuite(cfg Config) *Suite {
	return &Suite{cfg: cfg.withDefaults(), cache: make(map[string]*Comparison)}
}

// Config returns the defaulted configuration.
func (s *Suite) Config() Config { return s.cfg }

func (s *Suite) logf(format string, args ...any) {
	if !s.cfg.Quiet {
		fmt.Fprintf(os.Stderr, format+"\n", args...)
	}
}

// synthComparison generates (or reuses) the scaled synthetic dataset for
// spec and runs every variant on it.
func (s *Suite) synthComparison(spec SynthSpec, variants []Variant, maxIter int) (*Comparison, error) {
	scaled := spec.Scaled(s.cfg.Scale)
	key := fmt.Sprintf("synth:%s:%d:%d:%d:%v:%d", spec.Name, scaled.Items,
		scaled.Attrs, scaled.Clusters, variantKey(variants), maxIter)
	if c, ok := s.cache[key]; ok {
		return c, nil
	}
	s.logf("experiments: generating %v (scale %.3g)", scaled, s.cfg.Scale)
	ds, err := datagen.Generate(datagen.Config{
		Items:    scaled.Items,
		Clusters: scaled.Clusters,
		Attrs:    scaled.Attrs,
		Domain:   s.cfg.Domain,
		Seed:     s.cfg.Seed + int64(spec.Name[0]),
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: dataset %s: %w", spec.Name, err)
	}
	c, err := s.compare(fmt.Sprintf("synth-%s", spec.Name), ds, scaled.Clusters, variants, maxIter)
	if err != nil {
		return nil, err
	}
	c.Spec = scaled
	s.cache[key] = c
	return c, nil
}

// yahooComparison generates (or reuses) the Yahoo!-style corpus at the
// given TF-IDF threshold and runs every variant on it.
func (s *Suite) yahooComparison(threshold float64, variants []Variant, maxIter int) (*Comparison, error) {
	key := fmt.Sprintf("yahoo:%v:%v:%d", threshold, variantKey(variants), maxIter)
	if c, ok := s.cache[key]; ok {
		return c, nil
	}
	topics := clampMin(int(2916*s.cfg.Scale), 12)
	perTopic := 100 // the paper extracts up to 100 questions per topic
	s.logf("experiments: generating yahoo-like corpus (topics=%d, threshold=%.1f)", topics, threshold)
	corpus, err := yahoogen.Generate(yahoogen.Config{
		Topics:            topics,
		QuestionsPerTopic: perTopic,
		MislabelProb:      0.25, // the paper observes noisy user-chosen topics
		Seed:              s.cfg.Seed + 1000,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: corpus: %w", err)
	}
	ds, vocab, err := corpus.BuildDataset(yahoogen.PipelineConfig{
		Threshold:        threshold,
		MaxWordsPerTopic: 10000,
	})
	if err != nil {
		return nil, fmt.Errorf("experiments: pipeline: %w", err)
	}
	s.logf("experiments: corpus dataset n=%d m=%d k=%d (vocab %d words)",
		ds.NumItems(), ds.NumAttrs(), topics, vocab.Size())
	c, err := s.compare(fmt.Sprintf("yahoo-%.1f", threshold), ds, topics, variants, maxIter)
	if err != nil {
		return nil, err
	}
	s.cache[key] = c
	return c, nil
}

func variantKey(variants []Variant) string {
	key := ""
	for _, v := range variants {
		key += v.Name + ";"
	}
	return key
}

// compare runs every variant on ds from identical initial centroids
// (paper §IV-A: "the same initial centroid points were selected") and
// fills purity from the ground truth.
func (s *Suite) compare(workload string, ds *dataset.Dataset, k int, variants []Variant, maxIter int) (*Comparison, error) {
	rng := rand.New(rand.NewSource(s.cfg.Seed + 7))
	seeds := make([]int32, 0, k)
	seen := make(map[int32]bool, k)
	for len(seeds) < k {
		item := int32(rng.Intn(ds.NumItems()))
		if !seen[item] {
			seen[item] = true
			seeds = append(seeds, item)
		}
	}
	cmp := &Comparison{Workload: workload}
	for _, v := range variants {
		space, err := kmodes.NewSpaceFromSeeds(ds, seeds, kmodes.Config{Seed: s.cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("experiments: %s space: %w", workload, err)
		}
		opts := core.Options{MaxIterations: maxIter}
		if v.Params != nil {
			accel, err := core.NewMinHashAccelerator(ds, *v.Params, uint64(s.cfg.Seed)+99)
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s: %w", workload, v.Name, err)
			}
			opts.Accelerator = accel
		}
		s.logf("experiments: %s: running %s", workload, v.Name)
		res, err := core.Run(space, opts)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s %s: %w", workload, v.Name, err)
		}
		run := res.Stats
		run.Name = v.Name
		if ds.Labeled() {
			p, err := metrics.Purity(res.Assign, ds.Labels())
			if err != nil {
				return nil, fmt.Errorf("experiments: %s %s purity: %w", workload, v.Name, err)
			}
			run.Purity = p
		}
		cmp.Runs = append(cmp.Runs, &run)
	}
	return cmp, nil
}

// dumpCSV writes the comparison's per-iteration series to
// CSVDir/<name>.csv when CSVDir is configured.
func (s *Suite) dumpCSV(name string, cmps ...*Comparison) error {
	if s.cfg.CSVDir == "" {
		return nil
	}
	if err := os.MkdirAll(s.cfg.CSVDir, 0o755); err != nil {
		return fmt.Errorf("experiments: creating CSV dir: %w", err)
	}
	var runs []*runstats.Run
	for _, c := range cmps {
		runs = append(runs, c.Runs...)
	}
	path := filepath.Join(s.cfg.CSVDir, name+".csv")
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("experiments: creating %s: %w", path, err)
	}
	defer f.Close()
	if err := runstats.WriteCSV(f, runs); err != nil {
		return err
	}
	return f.Close()
}
