package experiments

import "os"

func readFile(path string) (string, error) {
	b, err := os.ReadFile(path)
	return string(b), err
}
