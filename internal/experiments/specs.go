// Package experiments regenerates every table and figure of the paper's
// evaluation (§III-D Tables I–II, §IV Figures 2–10). Each runner builds
// the corresponding workload, executes the baseline K-Modes and the
// paper's MH-K-Modes parameter variants from identical initial centroids,
// and prints the same rows/series the paper reports.
//
// Workload sizes scale with Config.Scale (default 0.05): the paper's runs
// took days of single-threaded CPU time; the scaled runs preserve the
// comparative shape — who wins, by what factor, how the curves move —
// which is what a reproduction on different hardware can check.
package experiments

import (
	"fmt"

	"lshcluster/internal/lsh"
)

// SynthSpec describes one synthetic dataset of the paper (§IV-A).
type SynthSpec struct {
	Name     string
	Items    int
	Attrs    int
	Clusters int
}

// The paper's five synthetic datasets plus the sixth configuration that
// only appears in Figure 6b (250k items at 40k clusters).
var (
	SynthA = SynthSpec{Name: "A", Items: 90000, Attrs: 100, Clusters: 20000}
	SynthB = SynthSpec{Name: "B", Items: 90000, Attrs: 100, Clusters: 40000}
	SynthC = SynthSpec{Name: "C", Items: 250000, Attrs: 100, Clusters: 20000}
	SynthD = SynthSpec{Name: "D", Items: 90000, Attrs: 200, Clusters: 20000}
	SynthE = SynthSpec{Name: "E", Items: 90000, Attrs: 400, Clusters: 20000}
	SynthF = SynthSpec{Name: "F", Items: 250000, Attrs: 100, Clusters: 40000}
)

// Scaled multiplies item and cluster counts by factor (attribute count is
// preserved: the per-comparison cost is part of the paper's claims),
// clamping to sane minimums.
func (s SynthSpec) Scaled(factor float64) SynthSpec {
	out := s
	out.Items = clampMin(int(float64(s.Items)*factor), 50)
	out.Clusters = clampMin(int(float64(s.Clusters)*factor), 5)
	if out.Clusters > out.Items {
		out.Clusters = out.Items
	}
	return out
}

func clampMin(v, lo int) int {
	if v < lo {
		return lo
	}
	return v
}

func (s SynthSpec) String() string {
	return fmt.Sprintf("synth-%s (n=%d, m=%d, k=%d)", s.Name, s.Items, s.Attrs, s.Clusters)
}

// Variant is one algorithm configuration in a comparison: the exact
// baseline (nil Params) or MH-K-Modes with the given banding parameters.
type Variant struct {
	Name   string
	Params *lsh.Params
}

// Baseline is the exact K-Modes variant.
var Baseline = Variant{Name: "K-Modes"}

// MH constructs the MH-K-Modes variant named in the paper's style
// ("MH-K-Modes 20b 5r").
func MH(bands, rows int) Variant {
	p := lsh.Params{Bands: bands, Rows: rows}
	return Variant{Name: fmt.Sprintf("MH-K-Modes %db %dr", bands, rows), Params: &p}
}

// The paper's recurring variant sets.
var (
	variants2  = []Variant{MH(20, 2), MH(20, 5), MH(50, 5), Baseline} // Figs 2, 3, 7a, 7d, 8a, 8d
	variants4  = []Variant{MH(1, 1), MH(20, 5), Baseline}             // Figs 4, 7e, 8e
	variants5  = []Variant{MH(20, 5), MH(50, 5), Baseline}            // Figs 5, 7b, 7c, 8b, 8c
	variants6  = []Variant{MH(20, 5), Baseline}                       // Fig 6 scaling
	variants9  = []Variant{MH(1, 1), Baseline}                        // Fig 9
	variants10 = []Variant{MH(1, 1), MH(20, 5), MH(50, 5), Baseline}  // Fig 10
)
