package textproc

import (
	"math"
	"strings"
	"testing"
)

func TestTokenize(t *testing.T) {
	cases := []struct {
		in   string
		want string // space-joined
	}{
		{"Hello, World!", "hello world"},
		{"im interested in being a zoologist?Does zoologist work", "im interested in being a zoologist does zoologist work"},
		{"don't stop", "dont stop"},
		{"x2  +  y2", "x2 y2"},
		{"", ""},
		{"...", ""},
		{"ÜBER-cool", "über cool"},
	}
	for _, c := range cases {
		got := strings.Join(Tokenize(c.in), " ")
		if got != c.want {
			t.Errorf("Tokenize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDefaultStopwordsCopy(t *testing.T) {
	a := DefaultStopwords()
	b := DefaultStopwords()
	a["zoologist"] = true
	if b["zoologist"] {
		t.Fatal("DefaultStopwords shares state between calls")
	}
	if !a["the"] || !a["and"] {
		t.Fatal("stopword set missing basics")
	}
}

// zooScorer models the paper's example: a zoology topic where "zoo" words
// dominate, plus other topics sharing only common words.
func zooScorer() *Scorer {
	s := NewScorer()
	s.AddTopic("zoology", strings.Fields(
		"zoologist zoo zoologist animals what does a zoologist do work zoo"))
	s.AddTopic("cooking", strings.Fields(
		"recipe oven what does a chef do work kitchen recipe"))
	s.AddTopic("cars", strings.Fields(
		"engine wheel what does a mechanic do work garage engine"))
	return s
}

func TestIDFShape(t *testing.T) {
	s := zooScorer()
	// "what" appears in all 3 topics: IDF = log(3/3) = 0.
	if idf := s.IDF("what"); idf != 0 {
		t.Fatalf("IDF(what) = %v, want 0", idf)
	}
	// "zoologist" appears in 1 topic: IDF = log 3.
	if idf := s.IDF("zoologist"); math.Abs(idf-math.Log(3)) > 1e-12 {
		t.Fatalf("IDF(zoologist) = %v, want log 3", idf)
	}
	// Unknown word gets max IDF.
	if idf := s.IDF("quark"); math.Abs(idf-math.Log(3)) > 1e-12 {
		t.Fatalf("IDF(unknown) = %v, want log 3", idf)
	}
}

func TestScoreRanksTopicalWords(t *testing.T) {
	s := zooScorer()
	zoo := s.Score(0, "zoologist")
	common := s.Score(0, "what")
	if zoo <= common {
		t.Fatalf("Score(zoologist)=%v not above Score(what)=%v", zoo, common)
	}
	// "zoologist" is the most frequent word of its topic and unique to
	// it → normalised score exactly 1.
	if math.Abs(zoo-1) > 1e-12 {
		t.Fatalf("Score(zoologist) = %v, want 1", zoo)
	}
	if got := s.Score(0, "recipe"); got != 0 {
		t.Fatalf("score of absent word = %v, want 0", got)
	}
	if s.Score(1, "recipe") <= 0 {
		t.Fatal("topical word of another topic must score there")
	}
}

func TestScoreBounds(t *testing.T) {
	s := zooScorer()
	for tpc := 0; tpc < s.NumTopics(); tpc++ {
		for _, w := range []string{"zoologist", "zoo", "what", "does", "work", "recipe", "engine"} {
			sc := s.Score(tpc, w)
			if sc < 0 || sc > 1 {
				t.Fatalf("Score(%d,%q) = %v outside [0,1]", tpc, w, sc)
			}
		}
	}
}

func TestSelectVocabulary(t *testing.T) {
	s := zooScorer()
	v, err := s.SelectVocabulary(VocabConfig{Threshold: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	mustHave := []string{"zoologist", "recipe", "engine"}
	for _, w := range mustHave {
		if _, ok := v.Index(w); !ok {
			t.Errorf("vocabulary missing topical word %q", w)
		}
	}
	if _, ok := v.Index("what"); ok {
		t.Error("vocabulary contains cross-topic word \"what\"")
	}
	// Lower threshold must never shrink the vocabulary.
	v2, err := s.SelectVocabulary(VocabConfig{Threshold: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	if v2.Size() < v.Size() {
		t.Fatalf("lower threshold shrank vocabulary: %d < %d", v2.Size(), v.Size())
	}
}

func TestSelectVocabularyCapAndStopwords(t *testing.T) {
	s := zooScorer()
	v, err := s.SelectVocabulary(VocabConfig{Threshold: 0.1, MaxWordsPerTopic: 1})
	if err != nil {
		t.Fatal(err)
	}
	// One word per topic at most, and unions may overlap → ≤ 3.
	if v.Size() > 3 {
		t.Fatalf("cap violated: vocabulary has %d words", v.Size())
	}
	stop := map[string]bool{"zoologist": true}
	v2, err := s.SelectVocabulary(VocabConfig{Threshold: 0.1, Stopwords: stop})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := v2.Index("zoologist"); ok {
		t.Fatal("stopword survived selection")
	}
}

func TestSelectVocabularyErrors(t *testing.T) {
	s := zooScorer()
	if _, err := s.SelectVocabulary(VocabConfig{Threshold: 1.5}); err == nil {
		t.Fatal("expected threshold range error")
	}
	one := NewScorer()
	one.AddTopic("only", []string{"word"})
	if _, err := one.SelectVocabulary(VocabConfig{Threshold: 0.5}); err == nil {
		t.Fatal("expected error with a single topic")
	}
	if _, err := s.SelectVocabulary(VocabConfig{Threshold: 1.0}); err == nil {
		// zoologist scores exactly 1.0, so threshold 1.0 still selects it;
		// push over with stopwords.
		t.Log("threshold 1.0 selected maximal words (fine)")
	}
}

func TestVocabulary(t *testing.T) {
	v := NewVocabulary([]string{"b", "a", "c"})
	if v.Size() != 3 {
		t.Fatalf("Size = %d", v.Size())
	}
	i, ok := v.Index("a")
	if !ok || v.Words()[i] != "a" {
		t.Fatal("Index/Words inconsistent")
	}
	if _, ok := v.Index("zzz"); ok {
		t.Fatal("Index invented a word")
	}
}

func TestBuildBinaryDataset(t *testing.T) {
	vocab := NewVocabulary([]string{"engine", "recipe", "zoo"})
	docs := []Document{
		{Tokens: []string{"zoo", "animals", "zoo"}, Label: 0},
		{Tokens: []string{"recipe", "oven"}, Label: 1},
		{Tokens: []string{"nothing", "relevant"}, Label: 2},
	}
	ds, err := BuildBinaryDataset(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumItems() != 3 || ds.NumAttrs() != 3 {
		t.Fatalf("shape = (%d,%d)", ds.NumItems(), ds.NumAttrs())
	}
	// Document 0: only "zoo" present → exactly one present value.
	if got := len(ds.PresentValues(0, nil)); got != 1 {
		t.Fatalf("doc 0 present values = %d, want 1", got)
	}
	// Document 2 has no vocabulary words → empty present set.
	if got := len(ds.PresentValues(2, nil)); got != 0 {
		t.Fatalf("doc 2 present values = %d, want 0", got)
	}
	// K-Modes still sees all attributes: docs 1 and 2 agree on engine=0
	// and zoo=0 → 1 mismatch (recipe).
	d := 0
	r1, r2 := ds.Row(1), ds.Row(2)
	for a := range r1 {
		if r1[a] != r2[a] {
			d++
		}
	}
	if d != 1 {
		t.Fatalf("rows 1,2 mismatch on %d attrs, want 1", d)
	}
	if ds.Label(0) != 0 || ds.Label(2) != 2 {
		t.Fatal("labels lost")
	}
}

func TestBuildBinaryDatasetUnlabelled(t *testing.T) {
	vocab := NewVocabulary([]string{"x"})
	docs := []Document{{Tokens: []string{"x"}, Label: -1}}
	ds, err := BuildBinaryDataset(docs, vocab)
	if err != nil {
		t.Fatal(err)
	}
	if ds.Labeled() {
		t.Fatal("dataset should be unlabelled")
	}
}

func TestBuildBinaryDatasetErrors(t *testing.T) {
	vocab := NewVocabulary([]string{"x"})
	if _, err := BuildBinaryDataset(nil, vocab); err == nil {
		t.Fatal("expected error for no documents")
	}
	if _, err := BuildBinaryDataset([]Document{{Tokens: nil, Label: 0}}, NewVocabulary(nil)); err == nil {
		t.Fatal("expected error for empty vocabulary")
	}
	mixed := []Document{{Tokens: nil, Label: 0}, {Tokens: nil, Label: -1}}
	if _, err := BuildBinaryDataset(mixed, vocab); err == nil {
		t.Fatal("expected error for mixed labelling")
	}
}
