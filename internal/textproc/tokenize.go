// Package textproc implements the text preparation pipeline of the
// paper's Yahoo! Answers experiment (§IV-B): tokenisation, per-topic
// TF-IDF scoring (Eq. 7) with threshold-based vocabulary selection, and
// conversion of documents into binary word-presence feature vectors whose
// absence markers are invisible to MinHash (the `word-0` / `word-1`
// augmentation the paper describes).
package textproc

import (
	"strings"
	"unicode"
)

// Tokenize lower-cases text and splits it into maximal runs of letters
// and digits. Apostrophes inside words are dropped (so "don't" becomes
// "dont"), matching the bag-of-words treatment a question title receives
// in the paper's pipeline.
func Tokenize(text string) []string {
	var tokens []string
	var b strings.Builder
	flush := func() {
		if b.Len() > 0 {
			tokens = append(tokens, b.String())
			b.Reset()
		}
	}
	for _, r := range text {
		switch {
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			b.WriteRune(unicode.ToLower(r))
		case r == '\'':
			// skip: joins the surrounding word
		default:
			flush()
		}
	}
	flush()
	return tokens
}

// DefaultStopwords returns a fresh copy of a small English stopword set
// used to keep function words out of TF-IDF vocabularies. Callers may add
// or remove entries freely.
func DefaultStopwords() map[string]bool {
	words := []string{
		"a", "an", "and", "are", "as", "at", "be", "but", "by", "can",
		"do", "does", "for", "from", "had", "has", "have", "how", "i",
		"if", "im", "in", "is", "it", "its", "me", "my", "no", "not",
		"of", "on", "or", "so", "that", "the", "their", "them", "they",
		"this", "to", "was", "we", "were", "what", "when", "where",
		"which", "who", "why", "will", "with", "you", "your",
	}
	set := make(map[string]bool, len(words))
	for _, w := range words {
		set[w] = true
	}
	return set
}
