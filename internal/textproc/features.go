package textproc

import (
	"fmt"

	"lshcluster/internal/dataset"
)

// Document is one text item to be clustered: its tokens and its
// ground-truth topic label (−1 when unknown).
type Document struct {
	Tokens []string
	Label  int32
}

// BuildBinaryDataset converts documents into the paper's categorical
// representation (§IV-B): one attribute per vocabulary word, value "1"
// when the word occurs in the document and "0" otherwise. Both values are
// interned per attribute — the paper's `zoo-1` / `zoo-0` augmentation —
// and the "0" values are flagged as absent so that MinHash ignores them
// (Algorithm 2 lines 2–4) while the K-Modes dissimilarity still compares
// all attributes.
//
// Documents must all be labelled or all unlabelled.
func BuildBinaryDataset(docs []Document, vocab *Vocabulary) (*dataset.Dataset, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("textproc: no documents")
	}
	if vocab == nil || vocab.Size() == 0 {
		return nil, fmt.Errorf("textproc: empty vocabulary")
	}
	labelled := docs[0].Label >= 0
	b := dataset.NewBuilder(vocab.Words())
	m := vocab.Size()
	row := make([]string, m)
	present := make([]bool, m)
	for i, doc := range docs {
		if (doc.Label >= 0) != labelled {
			return nil, fmt.Errorf("textproc: document %d mixes labelled and unlabelled", i)
		}
		for a := 0; a < m; a++ {
			row[a] = "0"
			present[a] = false
		}
		for _, w := range doc.Tokens {
			if a, ok := vocab.Index(w); ok {
				row[a] = "1"
				present[a] = true
			}
		}
		if err := b.AddPresence(row, present, int(doc.Label), labelled); err != nil {
			return nil, fmt.Errorf("textproc: document %d: %w", i, err)
		}
	}
	return b.Build()
}
