package textproc

import (
	"fmt"
	"math"
	"sort"
)

// Scorer computes TF-IDF scores over a collection of topic documents,
// where — following the paper's setup — each *topic* is treated as one
// document formed by all of its questions, so IDF penalises words common
// across topics and rewards words concentrated in few topics (the
// "zoologist"/"zoo" example of §IV-B1).
//
// Scores are normalised per topic by the topic's maximum raw TF-IDF, so
// every topic's most discriminative word scores exactly 1 and the
// paper's absolute thresholds (0.7, 0.3) select words relative to it.
// This keeps the thresholds meaningful regardless of corpus size or
// background-word volume.
type Scorer struct {
	topics []string
	counts []map[string]int // word counts per topic
	maxTF  []int            // highest word count per topic
	df     map[string]int   // number of topics containing each word

	// maxRaw caches the per-topic maximum raw TF-IDF; invalidated by
	// AddTopic because IDF is global.
	maxRaw []float64
	dirty  bool
}

// NewScorer creates an empty scorer.
func NewScorer() *Scorer {
	return &Scorer{df: make(map[string]int)}
}

// AddTopic registers a topic with the tokens of all its questions and
// returns its index. Topic names are not required to be unique, but each
// call creates a new topic document.
func (s *Scorer) AddTopic(name string, tokens []string) int {
	counts := make(map[string]int)
	for _, w := range tokens {
		counts[w]++
	}
	maxTF := 0
	for w, c := range counts {
		if c > maxTF {
			maxTF = c
		}
		s.df[w]++
	}
	s.topics = append(s.topics, name)
	s.counts = append(s.counts, counts)
	s.maxTF = append(s.maxTF, maxTF)
	s.dirty = true
	return len(s.topics) - 1
}

// NumTopics returns the number of topic documents added.
func (s *Scorer) NumTopics() int { return len(s.topics) }

// TopicName returns topic t's name.
func (s *Scorer) TopicName(t int) string { return s.topics[t] }

// IDF returns the inverse document frequency of word (Eq. 7):
// log(N / n_word), with N the number of topics. Unknown words get the
// maximum, log N.
func (s *Scorer) IDF(word string) float64 {
	n := s.df[word]
	if n == 0 {
		return math.Log(float64(len(s.topics)))
	}
	return math.Log(float64(len(s.topics)) / float64(n))
}

// rawScore is the unnormalised TF-IDF of word in topic t:
// (count/maxCount) · IDF (Eq. 7 applied to topic documents).
func (s *Scorer) rawScore(t int, word string) float64 {
	c := s.counts[t][word]
	if c == 0 || s.maxTF[t] == 0 {
		return 0
	}
	tf := float64(c) / float64(s.maxTF[t])
	return tf * s.IDF(word)
}

// topicMax returns the maximum raw TF-IDF within topic t, recomputing
// the per-topic cache when topics were added since the last call.
func (s *Scorer) topicMax(t int) float64 {
	if s.dirty || len(s.maxRaw) != len(s.topics) {
		s.maxRaw = make([]float64, len(s.topics))
		for i := range s.topics {
			for w := range s.counts[i] {
				if r := s.rawScore(i, w); r > s.maxRaw[i] {
					s.maxRaw[i] = r
				}
			}
		}
		s.dirty = false
	}
	return s.maxRaw[t]
}

// Score returns the normalised TF-IDF score of word within topic t:
// rawTFIDF(t, word) / max_w rawTFIDF(t, w) ∈ [0,1]. The topic's most
// discriminative word scores exactly 1; words shared by every topic
// score 0 (their IDF vanishes).
func (s *Scorer) Score(t int, word string) float64 {
	if len(s.topics) < 2 {
		return 0 // IDF is undefined with fewer than two documents
	}
	maxRaw := s.topicMax(t)
	if maxRaw == 0 {
		return 0
	}
	return s.rawScore(t, word) / maxRaw
}

// VocabConfig controls vocabulary selection.
type VocabConfig struct {
	// Threshold is the minimum normalised TF-IDF score for a word to
	// enter the vocabulary (the paper tests 0.7 and 0.3).
	Threshold float64
	// MaxWordsPerTopic caps how many words each topic may contribute,
	// best-scored first (the paper caps at 10 000). 0 means unlimited.
	MaxWordsPerTopic int
	// Stopwords are excluded outright. Nil means no stopword filtering.
	Stopwords map[string]bool
}

// SelectVocabulary returns the union over topics of words scoring at or
// above the threshold, sorted lexicographically for determinism.
func (s *Scorer) SelectVocabulary(cfg VocabConfig) (*Vocabulary, error) {
	if cfg.Threshold < 0 || cfg.Threshold > 1 {
		return nil, fmt.Errorf("textproc: threshold %v outside [0,1]", cfg.Threshold)
	}
	if len(s.topics) < 2 {
		return nil, fmt.Errorf("textproc: need at least 2 topics, have %d", len(s.topics))
	}
	type scored struct {
		word  string
		score float64
	}
	selected := make(map[string]bool)
	for t := range s.topics {
		var cand []scored
		for w := range s.counts[t] {
			if cfg.Stopwords[w] {
				continue
			}
			if sc := s.Score(t, w); sc >= cfg.Threshold {
				cand = append(cand, scored{w, sc})
			}
		}
		sort.Slice(cand, func(i, j int) bool {
			if cand[i].score != cand[j].score {
				return cand[i].score > cand[j].score
			}
			return cand[i].word < cand[j].word
		})
		if cfg.MaxWordsPerTopic > 0 && len(cand) > cfg.MaxWordsPerTopic {
			cand = cand[:cfg.MaxWordsPerTopic]
		}
		for _, c := range cand {
			selected[c.word] = true
		}
	}
	if len(selected) == 0 {
		return nil, fmt.Errorf("textproc: vocabulary empty at threshold %v", cfg.Threshold)
	}
	words := make([]string, 0, len(selected))
	for w := range selected {
		words = append(words, w)
	}
	sort.Strings(words)
	return NewVocabulary(words), nil
}

// Vocabulary is an ordered word list with O(1) membership lookup. Each
// word becomes one attribute of the binary feature vectors.
type Vocabulary struct {
	words []string
	index map[string]int
}

// NewVocabulary builds a vocabulary from words, which must be free of
// duplicates.
func NewVocabulary(words []string) *Vocabulary {
	v := &Vocabulary{
		words: append([]string(nil), words...),
		index: make(map[string]int, len(words)),
	}
	for i, w := range v.words {
		v.index[w] = i
	}
	return v
}

// Size returns the number of words (feature-vector width).
func (v *Vocabulary) Size() int { return len(v.words) }

// Words returns the ordered word list; the slice must not be modified.
func (v *Vocabulary) Words() []string { return v.words }

// Index returns word's attribute index and whether it is in the
// vocabulary.
func (v *Vocabulary) Index(word string) (int, bool) {
	i, ok := v.index[word]
	return i, ok
}
