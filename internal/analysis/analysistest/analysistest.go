// Package analysistest is the golden-file test harness for the
// analyzers in internal/analysis: the stdlib-only equivalent of
// golang.org/x/tools/go/analysis/analysistest.
//
// A fixture is a self-contained module under the analyzer's testdata
// directory (its own go.mod, so the go tool builds it independently of
// the real repository). Expected findings are marked in the fixture
// source with trailing comments:
//
//	sum += x[i] // want `hand-rolled float accumulation`
//
// Each `// want` comment holds one or more backquoted or quoted regular
// expressions; every diagnostic reported on that line must match one of
// them, every expectation must be matched by exactly one diagnostic,
// and diagnostics on lines without expectations fail the test.
package analysistest

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"lshcluster/internal/analysis"
)

// wantRe matches one quoted or backquoted expectation.
var wantRe = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads the fixture module rooted at dir, applies the analyzer, and
// compares its diagnostics against the fixture's // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	RunWithPatterns(t, dir, a, "./...")
}

// RunWithPatterns is Run with explicit load patterns.
func RunWithPatterns(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	prog, err := analysis.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	expects := collectWants(t, prog)
	for _, d := range diags {
		matched := false
		for _, e := range expects {
			if e.met || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.met = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

// collectWants parses every // want comment in the loaded fixture.
func collectWants(t *testing.T, prog *analysis.Program) []*expectation {
	t.Helper()
	var expects []*expectation
	seen := make(map[string]bool) // file set may list a file in two package variants
	for _, pkg := range prog.Pkgs {
		for _, f := range pkg.Files {
			name := prog.Fset.Position(f.Pos()).Filename
			if seen[name] {
				continue
			}
			seen[name] = true
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					idx := strings.Index(text, "// want ")
					if idx < 0 {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, m := range wantRe.FindAllStringSubmatch(text[idx+len("// want "):], -1) {
						raw := m[1]
						if raw == "" && m[2] != "" {
							unq, err := strconv.Unquote(`"` + m[2] + `"`)
							if err != nil {
								t.Fatalf("%s:%d: bad want string: %v", pos.Filename, pos.Line, err)
							}
							raw = unq
						}
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, raw, err)
						}
						expects = append(expects, &expectation{
							file: pos.Filename,
							line: pos.Line,
							re:   re,
							raw:  raw,
						})
					}
				}
			}
		}
	}
	return expects
}

// Format renders diagnostics one per line, for failure messages and the
// multichecker.
func Format(diags []analysis.Diagnostic) string {
	var b strings.Builder
	for _, d := range diags {
		fmt.Fprintf(&b, "%s\n", d)
	}
	return b.String()
}
