package analysis

import "testing"

// TestLoadModule loads the real repository: every package must parse
// and type-check from source against export data, including in-package
// and external test files. This is the foundation every analyzer test
// builds on.
func TestLoadModule(t *testing.T) {
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatal(err)
	}
	if prog.ModulePath != "lshcluster" {
		t.Fatalf("module path = %q, want lshcluster", prog.ModulePath)
	}
	for _, path := range []string{
		"lshcluster",
		"lshcluster/internal/core",
		"lshcluster/internal/core_test",
		"lshcluster/internal/runstats",
		"lshcluster/cmd/lshcluster",
	} {
		pkg := prog.Lookup(path)
		if pkg == nil {
			t.Fatalf("package %s not loaded", path)
		}
		if len(pkg.Files) == 0 || pkg.Pkg == nil || pkg.Info == nil {
			t.Fatalf("package %s loaded without syntax or types", path)
		}
	}
	// The core package variant must include its in-package test files:
	// oraclecheck's "referenced from a test" requirement reads them.
	core := prog.Lookup("lshcluster/internal/core")
	hasTest := false
	for _, f := range core.Files {
		if prog.IsTestFile(f.Pos()) {
			hasTest = true
			break
		}
	}
	if !hasTest {
		t.Fatal("core package loaded without its in-package test files")
	}
}
