// Package analysis is the repo's static-analysis framework: a small,
// dependency-free re-implementation of the golang.org/x/tools/go/analysis
// API shape, backed by go/parser and go/types with export-data imports.
//
// The module vendors no third-party code, so the x/tools analysis driver
// is unavailable; this package provides the same architectural pieces —
// an Analyzer with a Run function over a typed Pass, a diagnostic sink,
// a multichecker driver (cmd/lshvet) and a golden-file test harness
// (internal/analysis/analysistest) — with an API deliberately close
// enough that porting an analyzer to x/tools is a mechanical rename.
//
// The analyzers themselves live in subpackages (oraclecheck,
// kernelcheck, ctxpollcheck, statscheck); see internal/README.md for
// what each one enforces and which //lshvet: annotations they honour.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //lshvet:ignore annotations.
	Name string
	// Doc is a one-line description.
	Doc string
	// Run executes the check. Per-package analyzers are invoked once
	// per loaded package with Pass.Pkg set; whole-program analyzers
	// (WholeProgram true) are invoked exactly once with Pass.Pkg nil
	// and must navigate Pass.Prog themselves.
	Run func(*Pass) error
	// WholeProgram marks analyzers whose invariants span packages
	// (e.g. oraclecheck ties core, the facade, cmd/ and tests
	// together).
	WholeProgram bool
}

// Pass carries one analyzer invocation's view of the code.
type Pass struct {
	Analyzer *Analyzer
	// Prog is the full loaded program (always set).
	Prog *Program
	// Pkg is the package under analysis; nil for whole-program
	// analyzers.
	Pkg *Package
	// Report records a diagnostic at pos.
	Report func(pos token.Pos, format string, args ...any)
}

// Reportf is sugar over Pass.Report.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(pos, format, args...)
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Run executes analyzers over prog and returns their findings sorted by
// position. Analyzer errors (not findings) abort the run.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		report := func(pos token.Pos, format string, args ...any) {
			diags = append(diags, Diagnostic{
				Pos:      prog.Fset.Position(pos),
				Analyzer: a.Name,
				Message:  fmt.Sprintf(format, args...),
			})
		}
		if a.WholeProgram {
			pass := &Pass{Analyzer: a, Prog: prog, Report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %w", a.Name, err)
			}
			continue
		}
		for _, pkg := range prog.Pkgs {
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, Report: report}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}

// HasPathSuffix reports whether the import path equals suffix or ends
// with "/"+suffix — how analyzers recognise the packages they govern,
// so that test fixtures (whose module path differs) are matched by the
// same rule as the real tree.
func HasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// NamedType reports whether t (or the pointee, for pointers) is the
// named type pkgSuffix.name, matching the package by import-path
// suffix. Cross-package identity cannot rely on *types.Package pointer
// equality here: a package loaded from source for analysis and the
// same package loaded from export data as a dependency are distinct
// objects.
func NamedType(t types.Type, pkgSuffix, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj == nil || obj.Name() != name || obj.Pkg() == nil {
		return false
	}
	return HasPathSuffix(obj.Pkg().Path(), pkgSuffix)
}

// StructNamed returns the struct type declared as name in pkg, or nil.
func StructNamed(pkg *Package, name string) (*types.TypeName, *types.Struct) {
	obj := pkg.Pkg.Scope().Lookup(name)
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil, nil
	}
	st, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return nil, nil
	}
	return tn, st
}

// WalkFuncs calls fn for every function or method declaration with a
// body in the package, including test files.
func WalkFuncs(pkg *Package, fn func(file *ast.File, decl *ast.FuncDecl)) {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(f, fd)
			}
		}
	}
}
