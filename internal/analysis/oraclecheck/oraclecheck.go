// Package oraclecheck enforces the repo's oracle discipline end to end.
//
// Every ablation toggle on core.Options — the Disable* switches and
// ScalarKernels — exists so that a fast path can be checked bit-for-bit
// against its reference twin. A toggle that users cannot reach, or that
// no test flips, is an oracle in name only. oraclecheck therefore
// requires, for each oracle field on core.Options:
//
//   - a field of the same name on the facade Config struct (the module
//     root package), so library users can reach the toggle;
//   - an assignment into core.Options somewhere in the facade (the
//     Config → Options plumbing actually carries it);
//   - a reference from a main package under cmd/, so the CLI exposes a
//     flag for it;
//   - a reference from at least one _test.go file anywhere, so some
//     test actually exercises the toggle.
//
// It also flags the reverse rot: an oracle-named field on the facade
// Config with no counterpart on core.Options.
//
// The analyzer is whole-program: the invariant ties four parts of the
// tree together and cannot be checked one package at a time.
package oraclecheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"lshcluster/internal/analysis"
)

// Name is the analyzer's name, as used in diagnostics.
const Name = "oraclecheck"

// Analyzer is the oraclecheck instance.
var Analyzer = &analysis.Analyzer{
	Name:         Name,
	Doc:          "every Disable*/ScalarKernels oracle toggle on core.Options must reach the facade Config, a CLI flag and a test",
	Run:          run,
	WholeProgram: true,
}

// CorePackage is the import-path suffix of the package declaring
// Options.
const CorePackage = "internal/core"

// isOracleField reports whether an exported field name is an oracle
// toggle.
func isOracleField(name string) bool {
	return strings.HasPrefix(name, "Disable") || name == "ScalarKernels"
}

// reach is the set of contexts a field reference was seen in.
type reach struct {
	facade bool // assigned into core.Options inside the facade package
	cli    bool // referenced from a main package under cmd/
	test   bool // referenced from any _test.go file
}

func run(pass *analysis.Pass) error {
	prog := pass.Prog
	core := findCore(prog)
	if core == nil {
		// Fixture or tree without a core package: nothing to enforce.
		return nil
	}
	_, options := analysis.StructNamed(core, "Options")
	if options == nil {
		pass.Reportf(core.Files[0].Pos(),
			"%s declares no Options struct; oraclecheck cannot verify the oracle toggles", core.Path)
		return nil
	}

	// The oracle fields, with their declaration positions.
	oracle := map[string]token.Pos{}
	for i := 0; i < options.NumFields(); i++ {
		f := options.Field(i)
		if f.Exported() && isOracleField(f.Name()) {
			oracle[f.Name()] = f.Pos()
		}
	}
	if len(oracle) == 0 {
		return nil
	}

	seen := map[string]*reach{}
	for name := range oracle {
		seen[name] = &reach{}
	}

	var configStruct *types.Struct
	for _, pkg := range prog.Pkgs {
		if pkg.Path == prog.ModulePath {
			if _, st := analysis.StructNamed(pkg, "Config"); st != nil {
				configStruct = st
			}
		}
	}

	for _, pkg := range prog.Pkgs {
		isFacade := pkg.Path == prog.ModulePath
		isCLI := pkg.Name == "main" && strings.Contains(pkg.Path, "/cmd/")
		for _, file := range pkg.Files {
			inTest := prog.IsTestFile(file.Pos())
			if !isFacade && !isCLI && !inTest {
				continue
			}
			ast.Inspect(file, func(n ast.Node) bool {
				for _, name := range optionsFieldRefs(pkg, n, oracle) {
					r := seen[name]
					if inTest {
						r.test = true
					}
					if isFacade && !inTest {
						r.facade = true
					}
					if isCLI && !inTest {
						r.cli = true
					}
				}
				return true
			})
		}
	}

	for name, pos := range oracle {
		r := seen[name]
		if configStruct == nil {
			// Reported once below against the module root.
		} else if !configFieldExists(configStruct, name) {
			pass.Reportf(pos,
				"oracle toggle Options.%s is not mirrored on the facade Config struct; library users cannot reach it", name)
		}
		if !r.facade {
			pass.Reportf(pos,
				"oracle toggle Options.%s is never assigned into core.Options by the facade; the Config plumbing does not carry it", name)
		}
		if !r.cli {
			pass.Reportf(pos,
				"oracle toggle Options.%s is not referenced from any cmd/ main package; the CLI exposes no flag for it", name)
		}
		if !r.test {
			pass.Reportf(pos,
				"oracle toggle Options.%s is not referenced from any _test.go file; no test exercises the oracle", name)
		}
	}

	if configStruct == nil {
		root := prog.Lookup(prog.ModulePath)
		if root != nil && len(root.Files) > 0 {
			pass.Reportf(root.Files[0].Pos(),
				"module root package declares no Config struct; the %d oracle toggles on core.Options are unreachable for library users", len(oracle))
		}
	} else {
		// Reverse rot: oracle-named Config fields with no Options twin.
		for i := 0; i < configStruct.NumFields(); i++ {
			f := configStruct.Field(i)
			if !f.Exported() || !isOracleField(f.Name()) {
				continue
			}
			if _, ok := oracle[f.Name()]; !ok {
				pass.Reportf(f.Pos(),
					"facade Config.%s has no counterpart field on core.Options; remove the stale toggle or plumb it", f.Name())
			}
		}
	}
	return nil
}

// findCore returns the source-checked core package (the non-xtest
// variant whose path ends in internal/core), or nil.
func findCore(prog *analysis.Program) *analysis.Package {
	for _, pkg := range prog.Pkgs {
		if analysis.HasPathSuffix(pkg.Path, CorePackage) && !strings.HasSuffix(pkg.Path, "_test") {
			return pkg
		}
	}
	return nil
}

// optionsFieldRefs returns the oracle-field names n references, via
// either a core.Options composite-literal key or a selector on an
// Options-typed expression.
func optionsFieldRefs(pkg *analysis.Package, n ast.Node, oracle map[string]token.Pos) []string {
	var names []string
	switch e := n.(type) {
	case *ast.CompositeLit:
		if t := pkg.Info.TypeOf(e); t == nil || !analysis.NamedType(t, CorePackage, "Options") {
			return nil
		}
		for _, el := range e.Elts {
			kv, ok := el.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			if id, ok := kv.Key.(*ast.Ident); ok {
				if _, isOracle := oracle[id.Name]; isOracle {
					names = append(names, id.Name)
				}
			}
		}
	case *ast.SelectorExpr:
		if _, isOracle := oracle[e.Sel.Name]; !isOracle {
			return nil
		}
		if t := pkg.Info.TypeOf(e.X); t != nil && analysis.NamedType(t, CorePackage, "Options") {
			names = append(names, e.Sel.Name)
		}
	}
	return names
}

// configFieldExists reports whether the facade Config struct declares an
// exported field with the given name.
func configFieldExists(st *types.Struct, name string) bool {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return true
		}
	}
	return false
}
