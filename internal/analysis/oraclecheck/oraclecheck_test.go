package oraclecheck_test

import (
	"testing"

	"lshcluster/internal/analysis/analysistest"
	"lshcluster/internal/analysis/oraclecheck"
)

func TestOracleCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/oraclefix", oraclecheck.Analyzer)
}
