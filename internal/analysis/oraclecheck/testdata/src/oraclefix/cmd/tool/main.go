// Command tool is the fixture CLI: it exposes flags for every oracle
// toggle except DisableNoCLI.
package main

import (
	"flag"
	"fmt"

	"oraclefix/internal/core"
)

func main() {
	noGood := flag.Bool("no-good", false, "disable the good path")
	noConfig := flag.Bool("no-config", false, "disable the configless path")
	noTest := flag.Bool("no-test", false, "disable the untested path")
	unplumbed := flag.Bool("unplumbed", false, "disable the unplumbed path")
	scalar := flag.Bool("scalar-kernels", false, "use scalar kernels")
	flag.Parse()
	opts := core.Options{
		DisableGood:      *noGood,
		DisableNoConfig:  *noConfig,
		DisableNoTest:    *noTest,
		DisableUnplumbed: *unplumbed,
		ScalarKernels:    *scalar,
	}
	fmt.Println(core.Run(opts))
}
