// Package oraclefix is the fixture's facade: Config mirrors the oracle
// toggles and coreOptions plumbs them into core.Options.
package oraclefix

import "oraclefix/internal/core"

// Config is the user-facing configuration.
type Config struct {
	Clusters int

	DisableGood      bool
	DisableNoCLI     bool
	DisableNoTest    bool
	DisableUnplumbed bool
	ScalarKernels    bool
	// DisableStale has no counterpart on core.Options.
	DisableStale bool // want `Config\.DisableStale has no counterpart field on core\.Options`
}

func (c Config) coreOptions() core.Options {
	return core.Options{
		Clusters:        c.Clusters,
		DisableGood:     c.DisableGood,
		DisableNoConfig: false,
		DisableNoCLI:    c.DisableNoCLI,
		DisableNoTest:   c.DisableNoTest,
		ScalarKernels:   c.ScalarKernels,
	}
}

// Cluster runs the fixture engine.
func Cluster(c Config) int { return core.Run(c.coreOptions()) }
