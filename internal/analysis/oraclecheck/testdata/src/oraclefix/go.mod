module oraclefix

go 1.22
