// Package core is an oraclecheck fixture mimicking the engine Options.
package core

// Options mirrors the real driver options: each oracle toggle below
// exercises one of the analyzer's reach requirements.
type Options struct {
	Clusters int

	// DisableGood is plumbed everywhere: facade Config, CLI, tests.
	DisableGood bool
	// DisableNoConfig is set by the facade and CLI and tested, but the
	// facade Config struct has no mirror field.
	DisableNoConfig bool // want `Options\.DisableNoConfig is not mirrored on the facade Config struct`
	// DisableNoCLI is mirrored, plumbed and tested, but no cmd/ main
	// references it.
	DisableNoCLI bool // want `Options\.DisableNoCLI is not referenced from any cmd/ main package`
	// DisableNoTest is mirrored, plumbed and flagged, but no test
	// flips it.
	DisableNoTest bool // want `Options\.DisableNoTest is not referenced from any _test\.go file`
	// DisableUnplumbed is mirrored on Config, but coreOptions never
	// copies it into Options.
	DisableUnplumbed bool // want `Options\.DisableUnplumbed is never assigned into core\.Options by the facade`
	// ScalarKernels checks the non-Disable oracle name; fully plumbed.
	ScalarKernels bool

	// threshold is unexported: not an oracle toggle.
	threshold float64
}

// Run consumes the options so the fixture has some behaviour.
func Run(o Options) int {
	if o.DisableGood || o.DisableNoConfig || o.DisableNoCLI || o.DisableNoTest || o.DisableUnplumbed || o.ScalarKernels {
		return o.Clusters
	}
	_ = o.threshold
	return 0
}
