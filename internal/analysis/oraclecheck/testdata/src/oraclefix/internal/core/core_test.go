package core

import "testing"

func TestOracles(t *testing.T) {
	var o Options
	o.DisableGood = true
	o.DisableNoConfig = true
	o.DisableNoCLI = true
	o.DisableUnplumbed = true
	o.ScalarKernels = true
	if Run(o) != 0 {
		t.Log("exercised")
	}
}
