// Package core is a ctxpollcheck fixture mimicking the driver shapes.
package core

import "context"

type space struct{}

func (space) Dissimilarity(item, cluster int) float64 { return 0 }

type querier struct{}

func (querier) Candidates(item int32, assign []int32) []int32 { return nil }

type driver struct {
	space space
	q     querier
	ctx   context.Context
	n, k  int
}

func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// unpolledPass is the PR 2 bug shape: per-item queries, no poll.
func (d *driver) unpolledPass(assign []int32) {
	for i := 0; i < d.n; i++ { // want `per-item loop performs driver work without polling`
		_ = d.q.Candidates(int32(i), assign)
	}
}

// polledPass polls through the package ctxErr helper.
func (d *driver) polledPass(assign []int32) {
	poll := 0
	for i := 0; i < d.n; i++ {
		if poll++; poll >= 1024 {
			poll = 0
			if ctxErr(d.ctx) != nil {
				return
			}
		}
		_ = d.q.Candidates(int32(i), assign)
	}
}

// directErrPass polls ctx.Err directly.
func (d *driver) directErrPass(assign []int32) {
	for i := 0; i < d.n; i++ {
		if d.ctx != nil && d.ctx.Err() != nil {
			return
		}
		_ = d.q.Candidates(int32(i), assign)
	}
}

// stopPass polls a stop callback (the SignAll shape).
func (d *driver) stopPass(stop func() bool, assign []int32) {
	for i := 0; i < d.n; i++ {
		if stop() {
			return
		}
		_ = d.q.Candidates(int32(i), assign)
	}
}

// wgDoneIsNotAPoll spawns workers whose own loops poll, but the outer
// spawn body's Done call must not count as one.
func (d *driver) wgDoneIsNotAPoll(assign []int32) {
	type waitGroup struct{}
	done := func(waitGroup) {}
	var wg waitGroup
	for g := 0; g < 4; g++ { // want `per-item loop performs driver work without polling`
		go func() {
			defer done(wg)
			_ = d.q.Candidates(0, assign)
		}()
	}
}

// seedLoop is k-bounded and annotated.
func (d *driver) seedLoop(seeds []int32, assign []int32) {
	//lshvet:ignore ctxpollcheck k seeds only, bounded by the cluster count
	for _, s := range seeds {
		_ = d.q.Candidates(s, assign)
	}
}

// bestOf is a work unit: its candidate loop is bounded by the shortlist
// and the caller polls.
func (d *driver) bestOf(item int, candidates []int32) int32 {
	best := int32(-1)
	bestD := 1e300
	for _, c := range candidates {
		if dist := d.space.Dissimilarity(item, int(c)); dist < bestD {
			bestD, best = dist, c
		}
	}
	return best
}

// plainLoop does no per-item driver work; no poll needed.
func (d *driver) plainLoop(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}
