// Package ctxpollcheck enforces the cancellation discipline on
// driver-reachable per-item loops: a loop that performs per-item work —
// shortlist queries, distance evaluations, index inserts, signing —
// must poll for cancellation inside the loop, not merely between
// passes. This is the static form of the "Context was only polled
// between passes" bug fixed in PR 2: on 100k-item workloads a single
// unpolled pass holds cancellation hostage for seconds to minutes.
//
// A loop is per-item work when its body (including function literals it
// spawns) calls one of the WorkMarkers. It satisfies the discipline
// when the same subtree contains a poll: a call to a function named
// ctxErr, ctx.Err()/ctx.Done() on a context.Context, or a stop()
// callback. Functions named like a work marker are exempt as a whole —
// they are the per-item work unit itself (bestOf, Candidates, ...),
// bounded by shortlist or cluster count and polled by their callers.
//
// Loops that are genuinely bounded by something small (k seeds, a
// fixed-size block) carry the escape hatch:
//
//	//lshvet:ignore ctxpollcheck <why this loop needs no poll>
package ctxpollcheck

import (
	"go/ast"

	"lshcluster/internal/analysis"
)

// Name is the analyzer's name, as used in diagnostics and
// //lshvet:ignore annotations.
const Name = "ctxpollcheck"

// Analyzer is the ctxpollcheck instance.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "per-item loops reachable from the clustering driver must poll Options.Context",
	Run:  run,
}

// GovernedPackages lists the import-path suffixes whose loops the
// discipline covers: the driver, the index and the streaming engine.
var GovernedPackages = []string{
	"internal/core",
	"internal/lsh",
	"internal/stream",
}

// WorkMarkers names the calls that make a loop "per-item work". A
// function whose own name is in this set is the work unit itself and is
// exempt (its callers poll).
var WorkMarkers = map[string]bool{
	// shortlist queries
	"Candidates": true, "CandidatesBlock": true, "CandidatesBatch": true,
	"CandidatesUnindexed": true, "CandidatesOfKeys": true,
	"CandidatesOfSignature": true, "CandidatesOfSet": true,
	// distance evaluation
	"Dissimilarity": true, "BoundedDissimilarity": true,
	"bestOf": true, "bestExact": true, "bestOfLowestIndex": true,
	"fullScanRange": true, "dist": true,
	// indexing and signing
	"Insert": true, "InsertKeys": true, "InsertSignature": true,
	"InsertPresigned": true, "insert": true, "sign": true,
}

func governed(path string) bool {
	for _, s := range GovernedPackages {
		if analysis.HasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !governed(pass.Pkg.Path) {
		return nil
	}
	ig := analysis.NewIgnorer(pass.Pkg, pass.Prog.Fset, Name, pass.Report)
	analysis.WalkFuncs(pass.Pkg, func(file *ast.File, decl *ast.FuncDecl) {
		if pass.Prog.IsTestFile(decl.Pos()) {
			return
		}
		if WorkMarkers[decl.Name.Name] {
			// The work unit itself: its loops are bounded by the
			// shortlist / cluster count and its callers poll.
			return
		}
		checkFunc(pass, ig, decl)
	})
	return nil
}

func checkFunc(pass *analysis.Pass, ig *analysis.Ignorer, decl *ast.FuncDecl) {
	anchors := analysis.FuncAnchors(decl)
	var flagged []ast.Node
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
		default:
			return true
		}
		// A loop nested inside an already-flagged loop is covered by
		// the outer finding.
		for _, f := range flagged {
			if n.Pos() >= f.Pos() && n.End() <= f.End() {
				return true
			}
		}
		if !callsWork(n) || polls(pass, n) {
			return true
		}
		flagged = append(flagged, n)
		if !ig.Ignored(Name, n.Pos(), anchors...) {
			pass.Reportf(n.Pos(),
				"per-item loop performs driver work without polling for cancellation; poll Options.Context inside the loop (ctxErr/ctx.Err every few hundred items) or annotate it `%s %s <reason>`",
				analysis.IgnorePrefix, Name)
		}
		return true
	})
}

// callsWork reports whether the subtree calls a work marker.
func callsWork(loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		if WorkMarkers[calleeName(call)] {
			found = true
		}
		return !found
	})
	return found
}

// polls reports whether the subtree contains a cancellation poll.
func polls(pass *analysis.Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return !found
		}
		switch fun := call.Fun.(type) {
		case *ast.Ident:
			if fun.Name == "ctxErr" || fun.Name == "stop" {
				found = true
			}
		case *ast.SelectorExpr:
			switch fun.Sel.Name {
			case "Err", "Done":
				// Only on a context.Context receiver: wg.Done() and
				// friends are not polls.
				if t := pass.Pkg.Info.TypeOf(fun.X); t != nil && analysis.NamedType(t, "context", "Context") {
					found = true
				}
			case "stop":
				found = true
			}
		}
		return !found
	})
	return found
}

func calleeName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}
