package ctxpollcheck_test

import (
	"testing"

	"lshcluster/internal/analysis/analysistest"
	"lshcluster/internal/analysis/ctxpollcheck"
)

func TestCtxPollCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctxfix", ctxpollcheck.Analyzer)
}
