// Package other is outside the governed package list: identical loops
// are not the kernel's business here.
package other

// SquaredDistance would be flagged in a governed package.
func SquaredDistance(x, y []float64) float64 {
	var sum float64
	for i := range x {
		d := x[i] - y[i]
		sum += d * d
	}
	return sum
}
