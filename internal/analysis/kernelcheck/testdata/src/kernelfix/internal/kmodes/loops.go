// Package kmodes is a kernelcheck fixture: its import-path suffix
// matches a governed package, so the kernel discipline applies.
package kmodes

// SquaredDistance hand-rolls a float accumulation over indexed loads.
func SquaredDistance(x, y []float64) float64 {
	var sum float64
	for i := range x { // want `hand-rolled float accumulation loop`
		d := x[i] - y[i]
		sum += d * d
	}
	return sum
}

// Mismatches hand-rolls a categorical mismatch count.
func Mismatches(x, y []uint32) int {
	n := 0
	for i := range x { // want `hand-rolled categorical mismatch-count loop`
		if x[i] != y[i] {
			n++
		}
	}
	return n
}

// MismatchesMasked is deliberately scalar: the mask makes the shape
// inexpressible by the kernels; the annotation suppresses the finding.
func MismatchesMasked(x, y []uint32, present []bool) int {
	n := 0
	//lshvet:ignore kernelcheck masked loop shape not expressible by the kernels
	for i := range x {
		if present[i] && x[i] != y[i] {
			n++
		}
	}
	return n
}

// CentroidAccumulate carries a function-level annotation.
//
//lshvet:ignore kernelcheck centroid accumulation, not a distance kernel
func CentroidAccumulate(sums []float64, p []float64) {
	for j := range p {
		sums[j] += p[j]
	}
}

// UnjustifiedIgnore has an annotation without a reason: the annotation
// itself is reported and does not suppress the loop finding.
func UnjustifiedIgnore(x, y []float64) float64 {
	var sum float64
	//lshvet:ignore kernelcheck // want `has no reason`
	for i := range x { // want `hand-rolled float accumulation loop`
		d := x[i] - y[i]
		sum += d * d
	}
	return sum
}

// IntSum accumulates integers: not a kernel shape, not flagged.
func IntSum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// OuterReduce only reduces already-computed scalars in its outer loop;
// the inner loop is the kernel shape and gets the single finding.
func OuterReduce(rows [][]float64, y []float64) float64 {
	var total float64
	for _, row := range rows {
		var sum float64
		for j := range row { // want `hand-rolled float accumulation loop`
			d := row[j] - y[j]
			sum += d * d
		}
		total += sum
	}
	return total
}
