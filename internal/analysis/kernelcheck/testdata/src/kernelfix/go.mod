module kernelfix

go 1.22
