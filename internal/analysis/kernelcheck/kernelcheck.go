// Package kernelcheck reports hand-rolled hot-loop distance work in the
// packages that are supposed to route it through internal/kernel.
//
// The repo's kernel discipline: inner loops that accumulate floating
// point (squared distance, dot products) or count categorical
// mismatches live in internal/kernel, in two forms — an unrolled kernel
// and a scalar reference — selected by core.Options.ScalarKernels. A
// new fast path that hand-rolls such a loop in kmodes/kmeans/simhash/
// dataset/stream silently bypasses both the kernel and its oracle, so
// this analyzer flags the two recognisable loop shapes:
//
//   - float accumulation: a `+=`/`-=` on a float alongside indexed
//     float loads in the same loop body;
//   - categorical mismatch counting: `if a[i] != b[i] { n++ }`.
//
// Loops that are deliberately scalar (masked variants whose shape the
// kernels cannot express, centroid accumulation that is not a distance)
// carry the escape hatch:
//
//	//lshvet:ignore kernelcheck <why this loop stays scalar>
//
// on the loop, the line above it, or the enclosing function
// declaration.
package kernelcheck

import (
	"go/ast"
	"go/token"
	"go/types"

	"lshcluster/internal/analysis"
)

// Name is the analyzer's name, as used in diagnostics and
// //lshvet:ignore annotations.
const Name = "kernelcheck"

// Analyzer is the kernelcheck instance.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "flags hand-rolled float-accumulation and mismatch-count inner loops that bypass internal/kernel",
	Run:  run,
}

// GovernedPackages lists the import-path suffixes the kernel discipline
// applies to. internal/kernel itself is exempt: it is where the loops
// are supposed to live.
var GovernedPackages = []string{
	"internal/kmodes",
	"internal/kmeans",
	"internal/simhash",
	"internal/dataset",
	"internal/stream",
}

func governed(path string) bool {
	for _, s := range GovernedPackages {
		if analysis.HasPathSuffix(path, s) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !governed(pass.Pkg.Path) {
		return nil
	}
	ig := analysis.NewIgnorer(pass.Pkg, pass.Prog.Fset, Name, pass.Report)
	analysis.WalkFuncs(pass.Pkg, func(file *ast.File, decl *ast.FuncDecl) {
		if pass.Prog.IsTestFile(decl.Pos()) {
			// Tests hand-roll reference loops on purpose.
			return
		}
		checkFunc(pass, ig, decl)
	})
	return nil
}

func checkFunc(pass *analysis.Pass, ig *analysis.Ignorer, decl *ast.FuncDecl) {
	anchors := analysis.FuncAnchors(decl)
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		body := loopBody(n)
		if body == nil {
			return true
		}
		kind := classify(pass, body)
		if kind == "" {
			return true
		}
		if !ig.Ignored(Name, n.Pos(), anchors...) {
			pass.Reportf(n.Pos(),
				"hand-rolled %s loop bypasses internal/kernel; call a kernel (keeping its scalar twin as the ScalarKernels oracle) or annotate the loop `%s %s <reason>`",
				kind, analysis.IgnorePrefix, Name)
		}
		return true
	})
}

func loopBody(n ast.Node) *ast.BlockStmt {
	switch l := n.(type) {
	case *ast.ForStmt:
		return l.Body
	case *ast.RangeStmt:
		return l.Body
	}
	return nil
}

// classify inspects the loop's direct region — its body minus any
// nested loops, which are classified on their own — and names the
// kernel-shaped pattern it finds, or returns "".
func classify(pass *analysis.Pass, body *ast.BlockStmt) string {
	var floatAccum, floatIndex, mismatchCount bool
	walkDirect(body, func(n ast.Node) {
		switch s := n.(type) {
		case *ast.AssignStmt:
			if (s.Tok == token.ADD_ASSIGN || s.Tok == token.SUB_ASSIGN) &&
				len(s.Lhs) == 1 && isFloat(pass, s.Lhs[0]) {
				floatAccum = true
			}
		case *ast.IndexExpr:
			if isFloat(pass, s) {
				floatIndex = true
			}
		case *ast.IfStmt:
			if condComparesIndexed(s.Cond) && incrementsCounter(pass, s.Body) {
				mismatchCount = true
			}
		}
	})
	switch {
	case mismatchCount:
		return "categorical mismatch-count"
	case floatAccum && floatIndex:
		return "float accumulation"
	}
	return ""
}

// walkDirect visits the subtree of body, stopping at nested for/range
// loops (their bodies belong to the nested loop's own classification).
func walkDirect(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			return false
		case nil:
			return false
		}
		fn(n)
		return true
	})
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// condComparesIndexed reports whether the condition contains a !=
// comparison with an indexed operand — the mismatch-count shape.
func condComparesIndexed(cond ast.Expr) bool {
	found := false
	ast.Inspect(cond, func(n ast.Node) bool {
		if b, ok := n.(*ast.BinaryExpr); ok && b.Op == token.NEQ {
			if hasIndexExpr(b.X) || hasIndexExpr(b.Y) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func hasIndexExpr(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if _, ok := n.(*ast.IndexExpr); ok {
			found = true
			return false
		}
		return true
	})
	return found
}

// incrementsCounter reports whether the block increments an integer
// (n++ or n += 1) — the counting half of the mismatch shape.
func incrementsCounter(pass *analysis.Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.IncDecStmt:
			if s.Tok == token.INC && isInteger(pass, s.X) {
				found = true
			}
		case *ast.AssignStmt:
			if s.Tok == token.ADD_ASSIGN && len(s.Lhs) == 1 && isInteger(pass, s.Lhs[0]) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isInteger(pass *analysis.Pass, e ast.Expr) bool {
	t := pass.Pkg.Info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}
