package kernelcheck_test

import (
	"testing"

	"lshcluster/internal/analysis/analysistest"
	"lshcluster/internal/analysis/kernelcheck"
)

func TestKernelCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/kernelfix", kernelcheck.Analyzer)
}
