package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one module package loaded from source: its syntax
// (including in-package _test.go files) and its type information.
// External test packages (package foo_test) are loaded as their own
// Package whose Path carries the "_test" suffix.
type Package struct {
	// Path is the import path ("modpath/internal/lsh"; external test
	// packages get "modpath/internal/lsh_test").
	Path string
	// Name is the package name from the source.
	Name string
	// Dir is the absolute directory.
	Dir string
	// Files holds the parsed syntax, with comments; in-package test
	// files are included. Order follows the go list file order.
	Files []*ast.File
	// Pkg and Info are the type-checked package and its use/def maps.
	Pkg  *types.Package
	Info *types.Info
}

// Program is a loaded module slice: the packages matched by the load
// patterns, type-checked against export data for everything else.
type Program struct {
	Fset *token.FileSet
	// Pkgs is sorted by Path.
	Pkgs []*Package
	// ModulePath and ModuleDir identify the containing module.
	ModulePath string
	ModuleDir  string
}

// Lookup returns the package with the given import path, or nil.
func (p *Program) Lookup(path string) *Package {
	for _, pkg := range p.Pkgs {
		if pkg.Path == path {
			return pkg
		}
	}
	return nil
}

// IsTestFile reports whether pos lies in a _test.go file.
func (p *Program) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath   string
	Name         string
	Dir          string
	ForTest      string
	Export       string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
	Module       *struct {
		Path string
		Dir  string
	}
	Error *struct {
		Err string
	}
}

func goList(dir string, args ...string) ([]listPackage, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.StdoutPipe()
	if err != nil {
		return nil, err
	}
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	var pkgs []listPackage
	dec := json.NewDecoder(out)
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			cmd.Wait()
			return nil, fmt.Errorf("go list %s: decoding output: %v", strings.Join(args, " "), err)
		}
		pkgs = append(pkgs, p)
	}
	if err := cmd.Wait(); err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(args, " "), err, stderr.String())
	}
	return pkgs, nil
}

// Load parses and type-checks the module packages matched by patterns
// (relative to dir, e.g. "./..."). Imports — standard library and
// module-internal alike — are resolved from compiler export data via
// `go list -export`, so only the analyzed packages themselves are
// type-checked from source. External test packages see the source
// variant of their package under test (so export_test.go helpers
// resolve).
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	roots, err := goList(dir, append([]string{"-json=ImportPath,Name,Dir,Module,GoFiles,TestGoFiles,XTestGoFiles,Error"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("analysis: no packages match %v in %s", patterns, dir)
	}
	for _, p := range roots {
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
	}
	// Export data for every dependency, including test-only ones
	// (testing, etc.). Entries for test variants ("pkg [pkg.test]")
	// carry ForTest and are skipped: analyzed packages come from
	// source, and nothing imports another package's test variant.
	deps, err := goList(dir, append([]string{"-deps", "-test", "-export", "-json=ImportPath,Export,ForTest"}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range deps {
		if p.ForTest == "" && p.Export != "" && !strings.HasSuffix(p.ImportPath, ".test") {
			exports[p.ImportPath] = p.Export
		}
	}

	prog := &Program{Fset: token.NewFileSet()}
	if roots[0].Module != nil {
		prog.ModulePath = roots[0].Module.Path
		prog.ModuleDir = roots[0].Module.Dir
	}

	imp := &exportImporter{
		base: importer.ForCompiler(prog.Fset, "gc", lookupFrom(exports)),
	}

	parse := func(dir string, names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			path := filepath.Join(dir, name)
			f, err := parser.ParseFile(prog.Fset, path, nil, parser.ParseComments)
			if err != nil {
				return nil, err
			}
			files = append(files, f)
		}
		return files, nil
	}
	check := func(path string, files []*ast.File) (*types.Package, *types.Info, error) {
		info := &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
			Implicits:  make(map[ast.Node]types.Object),
			Scopes:     make(map[ast.Node]*types.Scope),
			Instances:  make(map[*ast.Ident]types.Instance),
		}
		conf := types.Config{Importer: imp}
		pkg, err := conf.Check(path, prog.Fset, files, info)
		if err != nil {
			return nil, nil, err
		}
		return pkg, info, nil
	}

	for _, lp := range roots {
		// The package proper, augmented with its in-package test files:
		// analyzers reason about tests (oraclecheck requires oracle
		// fields to be exercised by one), so the test variant is the
		// source of truth for the package.
		files, err := parse(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...))
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", lp.ImportPath, err)
		}
		if len(files) == 0 {
			continue
		}
		tpkg, info, err := check(lp.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", lp.ImportPath, err)
		}
		pkg := &Package{
			Path:  lp.ImportPath,
			Name:  lp.Name,
			Dir:   lp.Dir,
			Files: files,
			Pkg:   tpkg,
			Info:  info,
		}
		prog.Pkgs = append(prog.Pkgs, pkg)

		if len(lp.XTestGoFiles) > 0 {
			xfiles, err := parse(lp.Dir, lp.XTestGoFiles)
			if err != nil {
				return nil, fmt.Errorf("analysis: parsing %s external tests: %v", lp.ImportPath, err)
			}
			// The external test package imports the package under test
			// by path. Resolving that import from export data keeps
			// type identities consistent with the other dependencies'
			// own export references, but hides in-package test
			// declarations (the export_test.go pattern); resolving it
			// from the source-checked test variant is the reverse
			// trade. Try export data first and fall back to the source
			// override — one of the two suffices for any tree the go
			// tool itself can build.
			xpkg, xinfo, err := check(lp.ImportPath+"_test", xfiles)
			if err != nil {
				imp.overridePath, imp.overridePkg = lp.ImportPath, tpkg
				xpkg, xinfo, err = check(lp.ImportPath+"_test", xfiles)
				imp.overridePath, imp.overridePkg = "", nil
			}
			if err != nil {
				return nil, fmt.Errorf("analysis: type-checking %s external tests: %v", lp.ImportPath, err)
			}
			prog.Pkgs = append(prog.Pkgs, &Package{
				Path:  lp.ImportPath + "_test",
				Name:  lp.Name + "_test",
				Dir:   lp.Dir,
				Files: xfiles,
				Pkg:   xpkg,
				Info:  xinfo,
			})
		}
	}
	sort.Slice(prog.Pkgs, func(i, j int) bool { return prog.Pkgs[i].Path < prog.Pkgs[j].Path })
	return prog, nil
}

// exportImporter resolves imports from compiler export data, with a
// single temporary override: while an external test package is being
// checked, its package under test resolves to the source-checked test
// variant (so export_test.go declarations are visible).
type exportImporter struct {
	base         types.Importer
	overridePath string
	overridePkg  *types.Package
}

func (im *exportImporter) Import(path string) (*types.Package, error) {
	if path == im.overridePath && im.overridePkg != nil {
		return im.overridePkg, nil
	}
	return im.base.Import(path)
}

func lookupFrom(exports map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}
