package statscheck_test

import (
	"testing"

	"lshcluster/internal/analysis/analysistest"
	"lshcluster/internal/analysis/statscheck"
)

func TestStatsCheck(t *testing.T) {
	analysistest.Run(t, "testdata/src/statsfix", statscheck.Analyzer)
}
