// Package runstats is a statscheck fixture: a miniature of the real
// stats package with one violation of each checked rule seeded in.
package runstats

import "strconv"

// Iteration mimics the per-pass record.
type Iteration struct {
	Index  int
	Moves  int
	Orphan int // want `Iteration\.Orphan reaches neither the CSV columns table nor csvExempt`
}

// Run mimics the per-run record.
type Run struct {
	Name   string
	Shards int
	Hidden int64
	Silent int64
	Direct int64
}

type column struct {
	name string
	boot func(r *Run) string
	iter func(r *Run, it Iteration) string
}

func none(*Run, Iteration) string { return "" }

func bootNone(*Run) string { return "" }

var columns = []column{
	{"run",
		func(r *Run) string { return r.Name },
		func(r *Run, _ Iteration) string { return r.Name }},
	{"iteration", bootNone,
		func(_ *Run, it Iteration) string { return strconv.Itoa(it.Index) }},
	{"moves", bootNone,
		func(_ *Run, it Iteration) string { return strconv.Itoa(it.Moves) }},
	{"moves", bootNone, // want `duplicate column name "moves"`
		func(_ *Run, it Iteration) string { return strconv.Itoa(it.Moves) }},
	{"", // want `column has an empty name`
		func(r *Run) string { return strconv.Itoa(r.Shards) }, none},
	{"direct",
		func(r *Run) string { return strconv.FormatInt(r.Direct, 10) }, none},
}

var csvExempt = map[string]string{
	"Hidden": "kept out of the long format on purpose",
	"Silent": "", // want `csvExempt entry "Silent" has an empty reason`
	"Direct": "already gone", // want `csvExempt entry "Direct" is redundant`
	"Gone":   "this field was deleted", // want `csvExempt entry "Gone" names no exported field`
}
