module statsfix

go 1.22
