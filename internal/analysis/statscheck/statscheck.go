// Package statscheck keeps the runstats CSV layout honest. The package
// renders its CSV header and both row shapes from a single `columns`
// table, so header/row drift is impossible by construction — what can
// still rot is the table's coverage of the structs themselves: a field
// added to Run or Iteration that never reaches the table silently drops
// a statistic from every artifact the paper plots are built from.
//
// statscheck therefore checks, field-for-field:
//
//   - every exported field of Run and Iteration is either referenced
//     inside the `columns` table or listed in `csvExempt` with a reason;
//   - every `csvExempt` entry names a real exported field, carries a
//     non-empty reason, and is not redundant with a table reference;
//   - column names are non-empty and unique.
//
// There is no //lshvet:ignore escape hatch here on purpose: the exempt
// map is the escape hatch, and it lives next to the table it amends.
package statscheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"

	"lshcluster/internal/analysis"
)

// Name is the analyzer's name, as used in diagnostics.
const Name = "statscheck"

// Analyzer is the statscheck instance.
var Analyzer = &analysis.Analyzer{
	Name: Name,
	Doc:  "runstats Run/Iteration fields, the CSV columns table and csvExempt must agree field-for-field",
	Run:  run,
}

// GovernedPackage is the import-path suffix of the stats package.
const GovernedPackage = "internal/runstats"

// statStructs are the structs whose exported fields feed the CSV.
var statStructs = []string{"Run", "Iteration"}

func run(pass *analysis.Pass) error {
	if !analysis.HasPathSuffix(pass.Pkg.Path, GovernedPackage) {
		return nil
	}

	// The exported fields the table must cover, keyed by name, with the
	// declaration position for diagnostics.
	type field struct {
		strct string
		pos   token.Pos
	}
	fields := map[string]field{}
	for _, name := range statStructs {
		_, st := analysis.StructNamed(pass.Pkg, name)
		if st == nil {
			pass.Reportf(pass.Pkg.Files[0].Pos(),
				"stats package declares no struct %s; statscheck cannot verify the CSV layout", name)
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			fv := st.Field(i)
			if fv.Exported() {
				fields[fv.Name()] = field{strct: name, pos: fv.Pos()}
			}
		}
	}

	columnsDecl := findVar(pass.Pkg, "columns")
	if columnsDecl == nil {
		pass.Reportf(pass.Pkg.Files[0].Pos(),
			"stats package declares no `columns` table; the CSV header and rows must derive from one")
		return nil
	}
	exemptDecl := findVar(pass.Pkg, "csvExempt")

	// Field references inside the columns table: selector expressions
	// whose base is Run/Iteration-typed and whose Sel names a stat field.
	referenced := map[string]bool{}
	ast.Inspect(columnsDecl, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if _, isField := fields[sel.Sel.Name]; !isField {
			return true
		}
		if t := pass.Pkg.Info.TypeOf(sel.X); t != nil && isStatType(t) {
			referenced[sel.Sel.Name] = true
		}
		return true
	})

	// Column names: non-empty and unique.
	seenNames := map[string]bool{}
	ast.Inspect(columnsDecl, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, el := range lit.Elts {
			col, ok := el.(*ast.CompositeLit)
			if !ok {
				continue
			}
			name, pos, ok := columnName(col)
			if !ok {
				continue
			}
			switch {
			case name == "":
				pass.Reportf(pos, "column has an empty name")
			case seenNames[name]:
				pass.Reportf(pos, "duplicate column name %q", name)
			default:
				seenNames[name] = true
			}
		}
		return false
	})

	// Exemptions: real fields, non-empty reasons, not redundant.
	exempted := map[string]bool{}
	if exemptDecl != nil {
		ast.Inspect(exemptDecl, func(n ast.Node) bool {
			kv, ok := n.(*ast.KeyValueExpr)
			if !ok {
				return true
			}
			key, ok := stringLit(kv.Key)
			if !ok {
				return true
			}
			f, isField := fields[key]
			switch {
			case !isField:
				pass.Reportf(kv.Key.Pos(),
					"csvExempt entry %q names no exported field of Run or Iteration; remove the stale entry", key)
			case referenced[key]:
				pass.Reportf(kv.Key.Pos(),
					"csvExempt entry %q is redundant: %s.%s is already rendered by the columns table", key, f.strct, key)
			default:
				exempted[key] = true
			}
			if reason, ok := stringLit(kv.Value); ok && reason == "" {
				pass.Reportf(kv.Value.Pos(), "csvExempt entry %q has an empty reason", key)
			}
			return true
		})
	}

	// Coverage: every exported stat field rendered or exempted.
	for name, f := range fields {
		if !referenced[name] && !exempted[name] {
			pass.Reportf(f.pos,
				"%s.%s reaches neither the CSV columns table nor csvExempt; render it or exempt it with a reason", f.strct, name)
		}
	}
	return nil
}

// isStatType reports whether t is (a pointer to) one of the stat structs
// in a runstats package.
func isStatType(t types.Type) bool {
	for _, name := range statStructs {
		if analysis.NamedType(t, GovernedPackage, name) {
			return true
		}
	}
	return false
}

// findVar returns the package-level ValueSpec declaring name, or nil.
func findVar(pkg *analysis.Package, name string) *ast.ValueSpec {
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, id := range vs.Names {
					if id.Name == name {
						return vs
					}
				}
			}
		}
	}
	return nil
}

// columnName extracts the header-name string of one column literal,
// whether positional ({"run", ...}) or keyed ({name: "run", ...}).
func columnName(col *ast.CompositeLit) (string, token.Pos, bool) {
	for i, el := range col.Elts {
		if kv, ok := el.(*ast.KeyValueExpr); ok {
			if id, ok := kv.Key.(*ast.Ident); ok && id.Name == "name" {
				if s, ok := stringLit(kv.Value); ok {
					return s, kv.Value.Pos(), true
				}
			}
			continue
		}
		if i == 0 {
			if s, ok := stringLit(el); ok {
				return s, el.Pos(), true
			}
		}
	}
	return "", token.NoPos, false
}

func stringLit(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
