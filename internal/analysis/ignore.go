package analysis

import (
	"go/ast"
	"go/token"
	"strconv"
	"strings"
)

// IgnorePrefix introduces an analyzer escape hatch:
//
//	//lshvet:ignore <analyzer>[,<analyzer>...] <reason>
//
// placed on the flagged line, on the line directly above it, or on the
// enclosing declaration's doc comment. The analyzer list is mandatory
// (a bare ignore would silently widen as analyzers are added) and so
// is the reason — an unexplained suppression is itself reported by the
// analyzers that honour the annotation.
const IgnorePrefix = "//lshvet:ignore"

// ignoreAnnotation is one parsed //lshvet:ignore comment.
type ignoreAnnotation struct {
	analyzers []string
	reason    string
	pos       token.Pos
}

// Ignorer answers "is this position suppressed for this analyzer?" for
// one package. Build it once per pass with NewIgnorer.
type Ignorer struct {
	fset *token.FileSet
	// byLine maps file:line (of the annotation comment itself) to the
	// parsed annotation.
	byLine map[string][]ignoreAnnotation
}

// NewIgnorer parses every //lshvet:ignore annotation in the package.
// Malformed annotations (no analyzer list or no reason) are reported
// immediately through report, attributed to name — so each analyzer
// that honours the escape hatch also polices it.
func NewIgnorer(pkg *Package, fset *token.FileSet, name string, report func(pos token.Pos, format string, args ...any)) *Ignorer {
	ig := &Ignorer{fset: fset, byLine: make(map[string][]ignoreAnnotation)}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, IgnorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, IgnorePrefix)
				// A second "//" ends the annotation (a trailing comment
				// inside the comment, e.g. the test harness's "// want"
				// markers); reasons therefore cannot contain "//".
				if i := strings.Index(rest, "//"); i >= 0 {
					rest = rest[:i]
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					if report != nil {
						report(c.Pos(), "malformed %s: want %q", IgnorePrefix, IgnorePrefix+" <analyzer>[,<analyzer>...] <reason>")
					}
					continue
				}
				ann := ignoreAnnotation{
					analyzers: strings.Split(fields[0], ","),
					reason:    strings.TrimSpace(strings.Join(fields[1:], " ")),
					pos:       c.Pos(),
				}
				if ann.reason == "" {
					if report != nil && ann.matches(name) {
						report(c.Pos(), "%s %s has no reason; justify the suppression", IgnorePrefix, fields[0])
					}
					// Reasonless annotations do not suppress: the
					// finding they tried to hide is still reported.
					continue
				}
				p := fset.Position(c.Pos())
				key := lineKey(p.Filename, p.Line)
				ig.byLine[key] = append(ig.byLine[key], ann)
			}
		}
	}
	return ig
}

func (a ignoreAnnotation) matches(analyzer string) bool {
	for _, name := range a.analyzers {
		if name == analyzer {
			return true
		}
	}
	return false
}

func lineKey(file string, line int) string {
	return file + "\x00" + strconv.Itoa(line)
}

// ignoredAt reports whether an annotation for analyzer sits on the
// given file line.
func (ig *Ignorer) ignoredAt(file string, line int, analyzer string) bool {
	for _, ann := range ig.byLine[lineKey(file, line)] {
		if ann.matches(analyzer) {
			return true
		}
	}
	return false
}

// Ignored reports whether pos is suppressed for analyzer: an annotation
// on the same line, on the line above, or on any of the extra anchor
// positions (typically the enclosing function declaration, where the
// annotation may sit in or directly above the doc comment).
func (ig *Ignorer) Ignored(analyzer string, pos token.Pos, anchors ...token.Pos) bool {
	p := ig.fset.Position(pos)
	if ig.ignoredAt(p.Filename, p.Line, analyzer) || ig.ignoredAt(p.Filename, p.Line-1, analyzer) {
		return true
	}
	for _, a := range anchors {
		ap := ig.fset.Position(a)
		if ig.ignoredAt(ap.Filename, ap.Line, analyzer) || ig.ignoredAt(ap.Filename, ap.Line-1, analyzer) {
			return true
		}
	}
	return false
}

// FuncAnchors returns the positions at which a function-level ignore
// annotation may sit for decl: the declaration itself and its doc
// comment.
func FuncAnchors(decl *ast.FuncDecl) []token.Pos {
	anchors := []token.Pos{decl.Pos()}
	if decl.Doc != nil {
		anchors = append(anchors, decl.Doc.Pos())
	}
	return anchors
}
