package datagen

import (
	"testing"

	"lshcluster/internal/dataset"
)

func cfg() Config {
	return Config{Items: 300, Clusters: 20, Attrs: 30, Domain: 500, Seed: 7}
}

func TestGenerateShape(t *testing.T) {
	ds, err := Generate(cfg())
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumItems() != 300 || ds.NumAttrs() != 30 {
		t.Fatalf("shape = (%d,%d)", ds.NumItems(), ds.NumAttrs())
	}
	if !ds.Labeled() {
		t.Fatal("synthetic data must carry ground truth")
	}
}

func TestEveryClusterNonEmptyAndBalanced(t *testing.T) {
	ds, err := Generate(cfg())
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for i := 0; i < ds.NumItems(); i++ {
		counts[ds.Label(i)]++
	}
	if len(counts) != 20 {
		t.Fatalf("%d clusters populated, want 20", len(counts))
	}
	for c, n := range counts {
		if n != 15 {
			t.Fatalf("cluster %d has %d items, want 15", c, n)
		}
	}
}

func TestRuleConsistency(t *testing.T) {
	g, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < ds.NumItems(); i++ {
		rule := g.Rule(ds.Label(i))
		row := ds.Row(i)
		for j, a := range rule.Attrs {
			if row[a] != rule.Values[j] {
				t.Fatalf("item %d violates its cluster rule at attr %d", i, a)
			}
		}
	}
}

func TestRuleLengthsWithinFractions(t *testing.T) {
	g, err := New(cfg())
	if err != nil {
		t.Fatal(err)
	}
	m := g.Config().Attrs
	lo, hi := int(0.4*float64(m)), int(0.8*float64(m))
	for c := 0; c < g.Config().Clusters; c++ {
		l := len(g.Rule(c).Attrs)
		if l < lo || l > hi {
			t.Fatalf("cluster %d rule length %d outside [%d,%d]", c, l, lo, hi)
		}
		seen := map[int32]bool{}
		for _, a := range g.Rule(c).Attrs {
			if seen[a] {
				t.Fatalf("cluster %d rule repeats attribute %d", c, a)
			}
			seen[a] = true
			if a < 0 || int(a) >= m {
				t.Fatalf("cluster %d rule attribute %d out of range", c, a)
			}
		}
	}
}

func TestValueIDsAttributeTagged(t *testing.T) {
	ds, err := Generate(cfg())
	if err != nil {
		t.Fatal(err)
	}
	domain := 500
	for i := 0; i < 50; i++ {
		row := ds.Row(i)
		for a, v := range row {
			lo := dataset.Value(a*domain + 1)
			hi := dataset.Value((a + 1) * domain)
			if v < lo || v > hi {
				t.Fatalf("item %d attr %d value %d outside its attribute band [%d,%d]",
					i, a, v, lo, hi)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := Generate(cfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg())
	if err != nil {
		t.Fatal(err)
	}
	av, bv := a.Values(), b.Values()
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("value %d differs across identically seeded generations", i)
		}
	}
	c2 := cfg()
	c2.Seed = 8
	c, err := Generate(c2)
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for i := range av {
		if av[i] == c.Values()[i] {
			same++
		}
	}
	if same == len(av) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestIntraClusterSimilarityExceedsInter(t *testing.T) {
	ds, err := Generate(cfg())
	if err != nil {
		t.Fatal(err)
	}
	// Items 0 and 20 share cluster 0 (i mod k); 0 and 1 do not.
	sameJ := ds.Jaccard(0, 20)
	diffJ := ds.Jaccard(0, 1)
	if sameJ <= diffJ {
		t.Fatalf("intra-cluster Jaccard %v not above inter-cluster %v", sameJ, diffJ)
	}
	// Rule covers ≥ 40% of attributes → J ≥ 0.4m/(2m−0.4m) = 0.25.
	if sameJ < 0.2 {
		t.Fatalf("intra-cluster Jaccard %v suspiciously low", sameJ)
	}
}

func TestFlipProbCorruption(t *testing.T) {
	c := cfg()
	c.FlipProb = 0.5
	g, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	ds, err := g.Generate()
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	total := 0
	for i := 0; i < ds.NumItems(); i++ {
		rule := g.Rule(ds.Label(i))
		row := ds.Row(i)
		for j, a := range rule.Attrs {
			total++
			if row[a] != rule.Values[j] {
				violations++
			}
		}
	}
	frac := float64(violations) / float64(total)
	// Each rule attribute is corrupted w.p. 0.5·(1−1/Domain) ≈ 0.499.
	if frac < 0.4 || frac > 0.6 {
		t.Fatalf("corruption rate %v, want ≈ 0.5", frac)
	}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Items: 0, Clusters: 1, Attrs: 1, Domain: 2},
		{Items: 5, Clusters: 6, Attrs: 1, Domain: 2},
		{Items: 5, Clusters: 0, Attrs: 1, Domain: 2},
		{Items: 5, Clusters: 2, Attrs: 0, Domain: 2},
		{Items: 5, Clusters: 2, Attrs: 1, Domain: 1},
		{Items: 5, Clusters: 2, Attrs: 1, Domain: 2, MinRuleFrac: 0.9, MaxRuleFrac: 0.5},
		{Items: 5, Clusters: 2, Attrs: 1, Domain: 2, FlipProb: 1.5},
	}
	for i, c := range bad {
		if _, err := New(c); err == nil {
			t.Errorf("case %d: New(%+v) succeeded, want error", i, c)
		}
	}
}

func TestAttrNames(t *testing.T) {
	names := AttrNames(3)
	want := []string{"a0", "a1", "a2"}
	for i := range want {
		if names[i] != want[i] {
			t.Fatalf("AttrNames = %v", names)
		}
	}
}
