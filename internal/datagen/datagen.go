// Package datagen generates the synthetic categorical workloads of the
// paper's evaluation (§IV-A). The original experiments used the `datgen`
// tool (datasetgenerator.com, no longer available); this package
// reimplements the distribution the paper describes:
//
//   - a shared domain of categorical values usable by every attribute
//     (40 000 in the paper),
//   - each item associated with one of k clusters,
//   - the association expressed as a conjunctive rule fixing the values
//     of a random subset of attributes (40–80 of 100 in the paper's base
//     setup, "scaled in proportion" for wider items),
//   - the remaining attributes free to take any other value.
//
// Generated datasets carry ground-truth labels (the generating cluster)
// for purity evaluation, use attribute-tagged numeric value IDs directly
// (no dictionary), and are fully deterministic per seed.
package datagen

import (
	"fmt"
	"math/rand"

	"lshcluster/internal/dataset"
)

// Config describes a synthetic workload.
type Config struct {
	// Items is n, the number of items.
	Items int
	// Clusters is k, the number of generating clusters.
	Clusters int
	// Attrs is m, the number of attributes per item.
	Attrs int
	// Domain is the number of distinct categorical values available to
	// each attribute (the paper uses 40 000).
	Domain int
	// MinRuleFrac and MaxRuleFrac bound the fraction of attributes fixed
	// by a cluster's conjunctive rule. Zero values default to the
	// paper's 0.4 and 0.8.
	MinRuleFrac float64
	MaxRuleFrac float64
	// FlipProb optionally corrupts each rule attribute of each item to a
	// random domain value with this probability. The paper's generator
	// has no such noise (0); the knob supports robustness experiments.
	FlipProb float64
	// Seed makes generation deterministic.
	Seed int64
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Items < 1 {
		return out, fmt.Errorf("datagen: Items must be ≥ 1, got %d", out.Items)
	}
	if out.Clusters < 1 || out.Clusters > out.Items {
		return out, fmt.Errorf("datagen: Clusters=%d out of range [1,%d]", out.Clusters, out.Items)
	}
	if out.Attrs < 1 {
		return out, fmt.Errorf("datagen: Attrs must be ≥ 1, got %d", out.Attrs)
	}
	if out.Domain < 2 {
		return out, fmt.Errorf("datagen: Domain must be ≥ 2, got %d", out.Domain)
	}
	if out.MinRuleFrac == 0 && out.MaxRuleFrac == 0 {
		out.MinRuleFrac, out.MaxRuleFrac = 0.4, 0.8
	}
	if out.MinRuleFrac < 0 || out.MaxRuleFrac > 1 || out.MinRuleFrac > out.MaxRuleFrac {
		return out, fmt.Errorf("datagen: rule fractions [%v,%v] invalid", out.MinRuleFrac, out.MaxRuleFrac)
	}
	if out.FlipProb < 0 || out.FlipProb >= 1 {
		return out, fmt.Errorf("datagen: FlipProb=%v out of [0,1)", out.FlipProb)
	}
	return out, nil
}

// Rule is one cluster's conjunctive rule: Attrs[i] must carry Values[i].
type Rule struct {
	Attrs  []int32
	Values []dataset.Value
}

// Generator produces items for a fixed rule set. Use New to construct.
type Generator struct {
	cfg   Config
	rules []Rule
}

// New draws the per-cluster rules for cfg.
func New(cfg Config) (*Generator, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(full.Seed))
	m := full.Attrs
	minLen := int(full.MinRuleFrac * float64(m))
	maxLen := int(full.MaxRuleFrac * float64(m))
	if minLen < 1 {
		minLen = 1
	}
	if maxLen < minLen {
		maxLen = minLen
	}
	g := &Generator{cfg: full, rules: make([]Rule, full.Clusters)}
	attrIdx := make([]int32, m)
	for i := range attrIdx {
		attrIdx[i] = int32(i)
	}
	for c := range g.rules {
		ruleLen := minLen + rng.Intn(maxLen-minLen+1)
		rng.Shuffle(m, func(i, j int) { attrIdx[i], attrIdx[j] = attrIdx[j], attrIdx[i] })
		rule := Rule{
			Attrs:  append([]int32(nil), attrIdx[:ruleLen]...),
			Values: make([]dataset.Value, ruleLen),
		}
		for i, a := range rule.Attrs {
			rule.Values[i] = valueID(int(a), rng.Intn(full.Domain), full.Domain)
		}
		g.rules[c] = rule
	}
	return g, nil
}

// valueID encodes (attribute, raw value) as an attribute-tagged numeric
// ID, so equality of IDs across items means equality on the same
// attribute (IDs start at 1; 0 is the dataset sentinel).
func valueID(attr, raw, domain int) dataset.Value {
	return dataset.Value(attr*domain + raw + 1)
}

// Rule returns cluster c's conjunctive rule.
func (g *Generator) Rule(c int) Rule { return g.rules[c] }

// Config returns the (defaulted) configuration.
func (g *Generator) Config() Config { return g.cfg }

// Generate materialises the dataset: item i belongs to cluster i mod k
// (every cluster non-empty, sizes balanced to ±1 as with datgen's
// per-cluster quotas), rule attributes carry the rule values (subject to
// FlipProb), and the remaining attributes take uniform random values.
func (g *Generator) Generate() (*dataset.Dataset, error) {
	cfg := g.cfg
	rng := rand.New(rand.NewSource(cfg.Seed + 1))
	n, m, k := cfg.Items, cfg.Attrs, cfg.Clusters
	values := make([]dataset.Value, n*m)
	labels := make([]int32, n)
	attrNames := AttrNames(m)
	for i := 0; i < n; i++ {
		c := i % k
		labels[i] = int32(c)
		row := values[i*m : (i+1)*m]
		for a := 0; a < m; a++ {
			row[a] = valueID(a, rng.Intn(cfg.Domain), cfg.Domain)
		}
		rule := g.rules[c]
		for j, a := range rule.Attrs {
			if cfg.FlipProb > 0 && rng.Float64() < cfg.FlipProb {
				continue // leave the random value in place
			}
			row[a] = rule.Values[j]
		}
	}
	return dataset.New(attrNames, values, labels, nil)
}

// Generate is the convenience one-shot: draw rules and materialise the
// dataset in one call.
func Generate(cfg Config) (*dataset.Dataset, error) {
	g, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return g.Generate()
}

// AttrNames returns the canonical attribute names a0 … a{m−1}.
func AttrNames(m int) []string {
	names := make([]string, m)
	for i := range names {
		names[i] = fmt.Sprintf("a%d", i)
	}
	return names
}
