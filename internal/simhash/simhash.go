// Package simhash implements random-hyperplane locality sensitive
// hashing (Charikar 2002) for dense numeric vectors, and an accelerator
// that plugs it into the clustering framework of internal/core. It
// demonstrates the framework's generality beyond MinHash/K-Modes — the
// numeric-data extension the paper names as further work (§VI).
//
// Each hash bit is the sign of the dot product with a random Gaussian
// hyperplane: P[bit_i(x) = bit_i(y)] = 1 − θ(x,y)/π, so banding over sign
// bits plays the role banding over MinHash values plays for Jaccard
// similarity. Note the collision probability is governed by the *angle*
// between vectors while K-Means minimises Euclidean distance; for the
// well-separated workloads the extension targets the two agree closely
// (near points subtend small angles), and the framework's shortlist
// fallback keeps the algorithm total either way.
package simhash

import (
	"fmt"
	"math"
	"math/rand"

	"lshcluster/internal/core"
	"lshcluster/internal/kernel"
	"lshcluster/internal/kmeans"
	"lshcluster/internal/lsh"
)

// Scheme is a seeded set of random hyperplanes producing sign-bit
// signatures of a fixed length. The hyperplanes are immutable and
// signing is safe for concurrent use; the kernel switch
// (SetScalarKernels) must only be flipped while no signing runs.
type Scheme struct {
	planes []float64 // bits·dim row-major
	dim    int
	bits   int
	// scalarKernels routes the per-hyperplane dot products through the
	// scalar reference instead of the unrolled kernel. The unrolled
	// kernel keeps the scalar accumulation order, so the sign bits —
	// and every signature-derived structure — are bit-identical either
	// way; the switch is the oracle for that claim.
	scalarKernels bool
}

// NewScheme creates a scheme of `bits` hyperplanes in `dim` dimensions,
// deterministically from seed.
func NewScheme(bits, dim int, seed int64) (*Scheme, error) {
	if bits < 1 || dim < 1 {
		return nil, fmt.Errorf("simhash: bits=%d dim=%d must be ≥ 1", bits, dim)
	}
	rng := rand.New(rand.NewSource(seed))
	planes := make([]float64, bits*dim)
	for i := range planes {
		planes[i] = rng.NormFloat64()
	}
	return &Scheme{planes: planes, dim: dim, bits: bits}, nil
}

// Bits returns the signature length.
func (s *Scheme) Bits() int { return s.bits }

// Dim returns the expected vector dimensionality.
func (s *Scheme) Dim() int { return s.dim }

// Sign writes the sign-bit signature of vec into dst (one uint64 per
// bit: 0 or 1, the row-value format the banding index consumes) and
// returns dst. vec must have length Dim and dst length Bits.
func (s *Scheme) Sign(vec []float64, dst []uint64) []uint64 {
	if len(vec) != s.dim {
		panic("simhash: vector dimensionality mismatch")
	}
	if len(dst) != s.bits {
		panic("simhash: Sign dst length mismatch")
	}
	if s.scalarKernels {
		for b := 0; b < s.bits; b++ {
			if kernel.DotScalar(s.planes[b*s.dim:(b+1)*s.dim], vec) >= 0 {
				dst[b] = 1
			} else {
				dst[b] = 0
			}
		}
		return dst
	}
	for b := 0; b < s.bits; b++ {
		if kernel.Dot(s.planes[b*s.dim:(b+1)*s.dim], vec) >= 0 {
			dst[b] = 1
		} else {
			dst[b] = 0
		}
	}
	return dst
}

// SetScalarKernels switches signing between the unrolled dot-product
// kernel (false, the default) and its scalar reference (true, the
// bit-identical oracle). Flip only while no signing is in flight.
func (s *Scheme) SetScalarKernels(scalar bool) { s.scalarKernels = scalar }

// PackedWords returns the number of uint64 words a packed signature of
// this scheme occupies.
func (s *Scheme) PackedWords() int { return kernel.PackedWords(s.bits) }

// PackSignature packs a Sign output (one 0/1 uint64 per sign bit) into
// 64 bits per word, growing dst as needed and returning the packed
// signature — the compact form Hamming and EstimateAngle consume.
// Storing signatures packed costs 1/64th of the Sign format.
func PackSignature(sig []uint64, dst []uint64) []uint64 {
	return kernel.PackBits(sig, dst)
}

// Hamming returns the number of differing sign bits between two packed
// signatures of equal length, one XOR + popcount per 64 bits
// (word-at-a-time bits.OnesCount64 via internal/kernel).
func Hamming(a, b []uint64) int { return kernel.Hamming(a, b) }

// EstimateAngle estimates the angle (radians) between the two vectors
// behind packed signatures a and b: each hyperplane separates the
// vectors with probability θ/π (Charikar 2002), so θ̂ = π·hamming/bits —
// the SimHash analogue of minhash.EstimateJaccard, useful for
// similarity diagnostics without touching the original vectors.
func EstimateAngle(a, b []uint64, bits int) float64 {
	if bits < 1 {
		return 0
	}
	return math.Pi * float64(Hamming(a, b)) / float64(bits)
}

// Accelerator is the numeric counterpart of core.MinHashAccelerator:
// SimHash signatures over a kmeans point set, banded into an
// item-partitioned lsh.Sharded index (a single shard by default — the
// bit-identical oracle — or S shards via core.ShardedIndexer), queried
// for candidate-cluster shortlists. The embedded core.ShardedIndexBase
// carries the shared index/arena state machine; this type adds the
// SimHash signing.
type Accelerator struct {
	core.ShardedIndexBase
	space  *kmeans.Space
	params lsh.Params
	seed   int64
	scheme *Scheme
	sigBuf []uint64
}

// NewAccelerator creates a SimHash accelerator for the given K-Means
// space.
func NewAccelerator(space *kmeans.Space, params lsh.Params, seed int64) (*Accelerator, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	scheme, err := NewScheme(params.SignatureLen(), space.Dim(), seed)
	if err != nil {
		return nil, err
	}
	return &Accelerator{
		space:  space,
		params: params,
		seed:   seed,
		scheme: scheme,
		sigBuf: make([]uint64, params.SignatureLen()),
	}, nil
}

// Reset prepares an empty index.
func (a *Accelerator) Reset(numClusters int) error {
	return a.ResetIndex(a.params, uint64(a.seed), a.space.NumItems(), numClusters)
}

// SetScalarKernels forwards the kernel-oracle switch to the signing
// scheme (core.KernelConfigurable): true signs with the scalar
// reference dot product, false (the default) with the unrolled kernel —
// signatures are bit-identical either way.
func (a *Accelerator) SetScalarKernels(scalar bool) { a.scheme.SetScalarKernels(scalar) }

// SignAll computes every point's band keys into a flat arena, sharding
// the signing across workers goroutines (core.BulkIndexer). The scheme
// is immutable and point reads are concurrency-safe, so workers need
// only private signature scratch.
func (a *Accelerator) SignAll(workers int, stop func() bool) error {
	return a.SignAllInto(workers, func() lsh.SignFunc {
		return func(item int32, sig []uint64) {
			a.scheme.Sign(a.space.Point(int(item)), sig)
		}
	}, stop)
}

// CandidatesUnindexed returns the candidate-cluster shortlist of a
// not-yet-indexed point by querying the growing index with the point's
// band keys (core.UnindexedQuerier): the presigned arena when SignAll
// ran, a fresh signing otherwise. Serial use only (shares signing and
// dedup scratch).
func (a *Accelerator) CandidatesUnindexed(item int32, assign []int32) []int32 {
	return a.CandidatesUnindexedWith(item, assign, func(item int32) []uint64 {
		return a.scheme.Sign(a.space.Point(int(item)), a.sigBuf)
	})
}

// Insert signs point item and files it under its band buckets.
func (a *Accelerator) Insert(item int32) error {
	ix := a.Index()
	if ix == nil {
		return fmt.Errorf("simhash: Insert before Reset")
	}
	sig := a.scheme.Sign(a.space.Point(int(item)), a.sigBuf)
	return ix.InsertSignature(item, sig)
}
