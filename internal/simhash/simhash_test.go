package simhash

import (
	"math"
	"testing"

	"lshcluster/internal/core"
	"lshcluster/internal/kmeans"
	"lshcluster/internal/lsh"
	"lshcluster/internal/metrics"
)

func TestSchemeValidation(t *testing.T) {
	if _, err := NewScheme(0, 3, 1); err == nil {
		t.Fatal("expected bits error")
	}
	if _, err := NewScheme(4, 0, 1); err == nil {
		t.Fatal("expected dim error")
	}
}

func TestSignDeterministicAndBinary(t *testing.T) {
	s, err := NewScheme(32, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	vec := []float64{1, -2, 3, 0.5}
	a := s.Sign(vec, make([]uint64, 32))
	b := s.Sign(vec, make([]uint64, 32))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("signatures differ across calls")
		}
		if a[i] != 0 && a[i] != 1 {
			t.Fatalf("bit %d = %d, want 0/1", i, a[i])
		}
	}
}

func TestSignPanics(t *testing.T) {
	s, _ := NewScheme(4, 2, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dim mismatch")
		}
	}()
	s.Sign([]float64{1}, make([]uint64, 4))
}

// TestAngleCollisionProperty: for random hyperplanes,
// P[bit agrees] = 1 − θ/π. Check opposite vectors disagree everywhere and
// identical vectors agree everywhere, and a 90° pair agrees about half
// the time.
func TestAngleCollisionProperty(t *testing.T) {
	s, err := NewScheme(4096, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	sig := func(v []float64) []uint64 { return s.Sign(v, make([]uint64, 4096)) }
	agree := func(a, b []uint64) float64 {
		n := 0
		for i := range a {
			if a[i] == b[i] {
				n++
			}
		}
		return float64(n) / float64(len(a))
	}
	x := sig([]float64{1, 0})
	same := sig([]float64{2, 0}) // same direction, different magnitude
	opp := sig([]float64{-1, 0})
	perp := sig([]float64{0, 1})
	if got := agree(x, same); got != 1 {
		t.Fatalf("same-direction agreement = %v, want 1", got)
	}
	if got := agree(x, opp); got > 0.001 {
		t.Fatalf("opposite agreement = %v, want ≈ 0", got)
	}
	if got := agree(x, perp); math.Abs(got-0.5) > 0.05 {
		t.Fatalf("perpendicular agreement = %v, want ≈ 0.5", got)
	}
}

func blobSpace(t *testing.T) (*kmeans.Space, []int32) {
	t.Helper()
	pts, labels, err := kmeans.GenerateBlobs(kmeans.BlobsConfig{
		Points: 400, Clusters: 8, Dim: 6, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := make([]int32, 8)
	for c := range seeds {
		seeds[c] = int32(c)
	}
	s, err := kmeans.NewSpaceFromSeeds(pts, 6, seeds, kmeans.Config{})
	if err != nil {
		t.Fatal(err)
	}
	return s, labels
}

func TestAcceleratedKMeansMatchesExact(t *testing.T) {
	space, labels := blobSpace(t)
	exact, err := core.Run(space, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	space2, _ := blobSpace(t)
	accel, err := NewAccelerator(space2, lsh.Params{Bands: 8, Rows: 4}, 11)
	if err != nil {
		t.Fatal(err)
	}
	mh, err := core.Run(space2, core.Options{Accelerator: accel})
	if err != nil {
		t.Fatal(err)
	}
	pe, err := metrics.Purity(exact.Assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := metrics.Purity(mh.Assign, labels)
	if err != nil {
		t.Fatal(err)
	}
	if pm < pe-0.05 {
		t.Fatalf("accelerated purity %v far below exact %v", pm, pe)
	}
	last := mh.Stats.Iterations[len(mh.Stats.Iterations)-1]
	if last.AvgShortlist >= 8 {
		t.Fatalf("shortlist %v not below k", last.AvgShortlist)
	}
}

func TestAcceleratorValidation(t *testing.T) {
	space, _ := blobSpace(t)
	if _, err := NewAccelerator(space, lsh.Params{Bands: 0, Rows: 1}, 1); err == nil {
		t.Fatal("expected params error")
	}
	a, err := NewAccelerator(space, lsh.Params{Bands: 2, Rows: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Insert(0); err == nil {
		t.Fatal("expected Insert-before-Reset error")
	}
	if err := a.Reset(0); err == nil {
		t.Fatal("expected cluster-count error")
	}
}
