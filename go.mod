module lshcluster

go 1.22
